"""//TRACE trace replay fidelity (§4.3, Table 2 row).

Paper: fidelity error "as low as 6%", "trace replay accuracy is the
central focus of //TRACE", with "user-control over replay accuracy by
using sampling".  Verified with both §3.1 methods: end-to-end run time
(the ``time`` utility) and re-tracing the pseudo-application.
"""

from repro.frameworks.ptrace import PTrace, PTraceCollector, build_replayable
from repro.harness.experiment import measure_overhead
from repro.harness.figures import paper_testbed
from repro.replay import compare_end_to_end, compare_traces, replay
from repro.units import KiB
from repro.workloads import AccessPattern, mpi_io_test

NP = 4
ARGS = {
    "pattern": AccessPattern.N_TO_1_NONSTRIDED,
    "block_size": 256 * KiB,
    "nobj": 240,
    "path": "/pfs/out",
    "barrier_every": 16,
}


def _collect_and_replay(sampling):
    coll = PTraceCollector(sampling=sampling, epoch_duration=0.2)
    holder = {}

    def factory():
        holder["c"] = coll
        return coll

    m = measure_overhead(
        factory, mpi_io_test, ARGS, config=paper_testbed(nprocs=NP), nprocs=NP
    )
    res = holder["c"].result
    app = build_replayable(res, per_event_overhead=coll.base.config.per_event_cost)
    rr = replay(app, config=paper_testbed(nprocs=NP), seed=99)
    fid = compare_end_to_end(m.untraced.elapsed, rr.elapsed)
    return m, res, app, rr, fid


def test_replay_fidelity_at_full_sampling(once):
    m, res, app, rr, fid = once(_collect_and_replay, 1.0)
    print(
        "\nfull sampling: original %.2fs, replay %.2fs, error %.1f%% "
        "(paper: as low as 6%%)"
        % (m.untraced.elapsed, rr.elapsed, fid.error_percent)
    )
    assert app.metadata["sync_inserted"]
    # "as low as 6%": the well-informed replay lands in single digits
    assert fid.error_percent < 8.0
    # volume reproduced exactly
    assert rr.bytes_replayed == sum(r.bytes_written for r in m.traced.job.results)


def test_fidelity_degrades_without_dependency_knowledge(once):
    """The sampling dial's other end: a blind dependency map means no
    synchronization in the replay, and fidelity suffers.

    Measured on a load-imbalanced checkpoint application — when ranks
    finish compute at different times, barrier waits carry real weight,
    and a replay that does not re-synchronize underestimates the run."""
    from repro.frameworks.ptrace import PTraceCollector, build_replayable
    from repro.workloads.generators import checkpoint

    imbalanced = {
        "path": "/pfs/ck",
        "phases": 6,
        "compute_time": 0.25,
        "imbalance": 0.5,  # slowest rank computes ~2.5x the fastest
        "block_size": 128 * KiB,
        "blocks_per_phase": 8,
    }

    def run_one(sampling):
        coll = PTraceCollector(sampling=sampling, epoch_duration=0.2)
        holder = {}

        def factory():
            holder["c"] = coll
            return coll

        m = measure_overhead(
            factory, checkpoint, imbalanced, config=paper_testbed(nprocs=NP),
            nprocs=NP,
        )
        app = build_replayable(
            holder["c"].result,
            per_event_overhead=coll.base.config.per_event_cost,
        )
        rr = replay(app, config=paper_testbed(nprocs=NP), seed=99)
        return app, compare_end_to_end(m.untraced.elapsed, rr.elapsed)

    def measure_both():
        app_full, fid_full = run_one(1.0)
        app_blind, fid_blind = run_one(0.0)
        return fid_full, fid_blind, app_full, app_blind

    fid_full, fid_blind, app_full, app_blind = once(measure_both)
    print(
        "\nimbalanced workload replay error: full discovery %.1f%%, "
        "no discovery %.1f%%" % (fid_full.error_percent, fid_blind.error_percent)
    )
    assert app_full.metadata["sync_inserted"]
    assert not app_blind.metadata["sync_inserted"]
    assert fid_blind.error_percent > 3 * fid_full.error_percent
    assert fid_full.error_percent < 20.0


def test_replayed_trace_signature_matches(once):
    """§3.1's first verification method: trace the pseudo-application and
    compare the traces."""

    def run():
        _, res, app, _, _ = _collect_and_replay(1.0)
        from repro.harness.testbed import build_testbed
        from repro.replay.replayer import _replay_rank
        from repro.simmpi import mpirun

        tb = build_testbed(paper_testbed(nprocs=NP), seed=55)
        fw = PTrace()
        job = mpirun(
            tb.cluster, tb.vfs, _replay_rank, nprocs=app.nprocs,
            args={"pseudoapp": app, "honor_sync": True}, setup=fw.setup_rank,
        )
        return compare_traces(res.bundle, fw.finalize(job))

    similarity = once(run)
    print("\ntrace-vs-trace similarity: %r" % (similarity,))
    assert similarity["byte_similarity"] > 0.99
    assert similarity["offset_coverage"] > 0.99
    assert similarity["op_count_similarity"] > 0.95
