"""Extension experiment: client-side caching vs the read-back workload.

Not a paper figure — the paper's traced benchmark writes; its read-back
variant is where a client cache reshapes the curves Figures 2-4 are built
on.  The ablation stacks :class:`~repro.simfs.cache.CachingFS` over the
node-local scratch FS and measures the re-read speedup and hit rates.
"""

from repro.harness.testbed import TestbedConfig, build_testbed
from repro.simfs.cache import CacheParams, CachingFS
from repro.simmpi import mpirun
from repro.units import KiB, MiB
from repro.workloads.generators import io_intensive

ARGS = {
    "base": "/tmp/cachework",
    "n_files": 8,
    "file_size": 512 * KiB,
    "block_size": 64 * KiB,
    "keep": True,
}


def _run(with_cache, write_back=False):
    tb = build_testbed(TestbedConfig())
    cache = None
    if with_cache:
        lower = tb.vfs.unmount("/tmp")
        cache = CachingFS(
            tb.sim, lower,
            CacheParams(capacity=16 * MiB, block_size=64 * KiB, write_back=write_back),
        )
        tb.vfs.mount("/tmp", cache)
    job = mpirun(tb.cluster, tb.vfs, io_intensive, nprocs=1, args=ARGS)
    return job.elapsed, cache


def test_cache_ablation(once):
    def measure():
        plain, _ = _run(False)
        through, c1 = _run(True, write_back=False)
        back, c2 = _run(True, write_back=True)
        return plain, (through, c1.stats()), (back, c2.stats())

    plain, (through, st1), (back, st2) = once(measure)
    print()
    print("no cache:            %.3fs" % plain)
    print("write-through cache: %.3fs  (hit rate %.0f%%)" % (through, 100 * st1["hit_rate"]))
    print("write-back cache:    %.3fs  (hit rate %.0f%%, %d writebacks)"
          % (back, 100 * st2["hit_rate"], st2["writebacks"]))

    # read-back after write is fully cached: the re-read phase is free
    assert st1["hit_rate"] > 0.9
    assert through < plain
    # write-back absorbs the writes too: faster still
    assert back < through
