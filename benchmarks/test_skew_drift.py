"""Time skew and drift accounting (§3.1 feature; Figure 1 middle output).

LANL-Trace's barrier timing jobs exist so tools can "account for different
nodes having clocks that are off by a constant difference (skew) and
different nodes whose clocks are off by a changing difference (drift)".
This benchmark runs the full pipeline on a cluster with aggressively bad
clocks and quantifies the correction.
"""

import statistics

from repro.analysis.skew import correct_timestamp, estimate_clocks
from repro.analysis.timeline import global_timeline
from repro.cluster.cluster import ClusterConfig
from repro.frameworks.lanltrace import LANLTrace, LANLTraceConfig
from repro.harness.experiment import run_traced
from repro.harness.testbed import TestbedConfig
from repro.units import KiB
from repro.workloads import AccessPattern, mpi_io_test

NP = 8
BAD_CLOCKS = TestbedConfig(
    cluster=ClusterConfig(
        n_nodes=NP,
        clock_skew_stddev=0.8,  # hundreds of ms of disagreement
        clock_drift_stddev=5e-5,  # tens of ppm
        seed=21,
    )
)
ARGS = {
    "pattern": AccessPattern.N_TO_1_NONSTRIDED,
    "block_size": 128 * KiB,
    "nobj": 24,
    "path": "/pfs/out",
}


def test_skew_drift_pipeline(once):
    def run():
        _, traced = run_traced(
            lambda: LANLTrace(LANLTraceConfig()),
            mpi_io_test, ARGS, config=BAD_CLOCKS, nprocs=NP,
        )
        return traced

    traced = once(run)
    bundle = traced.bundle
    tb_clocks = [
        # ground truth from an identically-seeded machine
        node.clock
        for node in __import__("repro.harness.testbed", fromlist=["build_testbed"])
        .build_testbed(BAD_CLOCKS)
        .cluster.nodes
    ]

    estimates = estimate_clocks(bundle.barrier_stamps)

    # Residual error after correction, sampled mid-run, vs raw skew.
    t_mid = 0.5
    raw_errors, corrected_errors = [], []
    for rank in range(NP):
        local = tb_clocks[rank].local(t_mid)
        ref = tb_clocks[0].local(t_mid)
        raw_errors.append(abs(local - ref))
        corrected_errors.append(abs(correct_timestamp(estimates, rank, local) - ref))
    print(
        "\nclock disagreement vs rank 0 at t=%.1fs:  raw median %.1f ms, "
        "corrected median %.4f ms"
        % (
            t_mid,
            1e3 * statistics.median(raw_errors),
            1e3 * statistics.median(corrected_errors),
        )
    )
    drifting = sum(1 for e in estimates.values() if e.has_drift)
    print("ranks with detected drift: %d/%d" % (drifting, NP))

    # Clocks really were bad (hundreds of ms), and the correction
    # collapses that to the barrier-exit jitter floor — a few ms, set by
    # the tracer's own per-event cost between barrier exit and the stamp.
    assert statistics.median(raw_errors) > 0.05
    assert statistics.median(corrected_errors) < 0.01
    assert statistics.median(corrected_errors) < statistics.median(raw_errors) / 20
    assert drifting >= NP // 2  # drift is observable from two barriers

    # ordering sanity on the merged timeline: every rank's open precedes
    # every close once corrected
    timeline = global_timeline(bundle, estimates)
    t_opens = [t for t, e in timeline if e.name == "SYS_open"]
    t_closes = [t for t, e in timeline if e.name == "SYS_close"]
    assert max(t_opens) < max(t_closes)


def test_frameworks_without_accounting_cannot_correct(once):
    """Tracefs (N/A) and //TRACE (No) produce no barrier stamps — the
    taxonomy row is observable as an absent capability."""
    from repro.frameworks.ptrace import PTrace

    def run():
        _, traced = run_traced(
            PTrace, mpi_io_test, ARGS, config=BAD_CLOCKS, nprocs=NP
        )
        return traced

    traced = once(run)
    assert traced.bundle.barrier_stamps == []
    import pytest

    from repro.errors import TraceError

    with pytest.raises(TraceError):
        estimate_clocks(traced.bundle.barrier_stamps)
