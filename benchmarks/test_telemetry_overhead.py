"""Tier-2 bench: disabled telemetry costs <= 2% on the DES hot loop.

The observability PR's contract: all tracepoints compile down to a
single ``STATE.collector is None`` branch (and the run loops pay it once
per ``run()`` call, not per event), so simulations with telemetry off
keep the fast-path numbers of the pre-telemetry simulator.

The guard drains an identical event storm through ``run_fast()`` (the
shipped loop, telemetry disabled) and through an inline replica of the
pre-telemetry hot loop, interleaved min-of-N to shed scheduler noise,
and fails if the shipped loop is more than 2% slower (plus a small
absolute epsilon so sub-millisecond jitter cannot fail the build on its
own).
"""

import gc
from time import perf_counter

import pytest

from repro.des.simulator import Simulator
from repro.obs.tracepoints import enabled

pytestmark = pytest.mark.slow

N_EVENTS = 200_000
REPEATS = 9
MAX_OVERHEAD = 0.02
EPSILON_SECONDS = 2e-3


def _nop():
    pass


def _storm(n=N_EVENTS):
    """A simulator with ``n`` trivial events queued directly (no processes)."""
    sim = Simulator()
    push = sim._queue.push
    for i in range(n):
        push(i * 1e-6, _nop, ())
    return sim


def _baseline_drain(sim, until=None, check_first=512):
    """Inline replica of the telemetry-free ``run_fast`` batch drain.

    Identical to the shipped loop minus the ``STATE.collector`` check and
    wall-clock accounting — i.e. exactly the costs the telemetry layer is
    allowed to add.  The per-batch ``try/finally`` stays: it is the
    kernel's exception-resumability contract, not telemetry.
    """
    queue = sim._queue
    times = queue._times
    buckets = queue._buckets
    release = queue.release_bucket
    executed = 0
    while times:
        t = times[0]
        if until is not None and t > until:
            sim._now = until
            return until
        if executed < check_first and t < sim._now:
            raise AssertionError("backwards time")
        sim._now = t
        bucket = buckets[t]
        i = bucket[0]
        try:
            while i < len(bucket):
                callback = bucket[i]
                args = bucket[i + 1]
                i += 2
                executed += 1
                callback(*args)
        finally:
            release(t, bucket, i)
    sim._events_executed += executed
    return sim._now


def _time(fn):
    sim = _storm()
    gc.collect()
    gc.disable()
    try:
        t0 = perf_counter()
        fn(sim)
        elapsed = perf_counter() - t0
    finally:
        gc.enable()
    assert sim.events_executed == N_EVENTS
    return elapsed


def test_disabled_telemetry_overhead_within_two_percent():
    assert not enabled(), "telemetry must be off for the overhead guard"
    shipped, baseline = [], []
    for _ in range(REPEATS):
        # Interleave so clock drift and cache state hit both loops alike.
        shipped.append(_time(Simulator.run_fast))
        baseline.append(_time(_baseline_drain))
    best_shipped, best_baseline = min(shipped), min(baseline)
    overhead = best_shipped / best_baseline - 1.0
    print(
        "\ntelemetry-off overhead: shipped %.4fs vs baseline %.4fs "
        "(%+.2f%%, %d events, min of %d)"
        % (best_shipped, best_baseline, overhead * 100, N_EVENTS, REPEATS)
    )
    assert best_shipped <= best_baseline * (1.0 + MAX_OVERHEAD) + EPSILON_SECONDS, (
        "telemetry-disabled run_fast is %.2f%% slower than the pre-telemetry "
        "loop (budget: %.0f%%)" % (overhead * 100, MAX_OVERHEAD * 100)
    )


def test_wall_time_rates_come_for_free():
    """The satellite counters the loops now maintain are populated..."""
    sim = _storm(10_000)
    sim.run_fast()
    assert sim.wall_seconds > 0
    assert sim.events_per_sec > 0
    assert sim.wall_time_per_sim_second > 0
