"""Ablation benches for design choices DESIGN.md calls out.

Not paper figures — these isolate the knobs the reproduction's cost model
turns, so a reader can see *why* the figures come out as they do:

* LANL-Trace per-event cost ablation — overhead scales linearly in the
  per-event price at fixed block size;
* ptrace residual cpu_factor ablation — sets the large-block floor;
* Tracefs output-buffering ablation — bigger blocks amortize framing;
* codec micro-benchmarks — binary vs text encode/decode throughput.
"""

import pytest

from repro.frameworks.lanltrace import LANLTrace, LANLTraceConfig
from repro.harness.experiment import measure_overhead
from repro.harness.figures import paper_testbed
from repro.trace import binary_format, text_format
from repro.trace.events import EventLayer, TraceEvent
from repro.trace.records import TraceFile
from repro.units import KiB, MiB
from repro.workloads import AccessPattern, mpi_io_test

NP = 8
ARGS = {
    "pattern": AccessPattern.N_TO_N,
    "block_size": 64 * KiB,
    "nobj": 64,
    "path": "/pfs/out",
}


def test_per_event_cost_ablation(once):
    """Halving/doubling the per-event stop cost moves overhead almost
    proportionally at small blocks — the paper's 'constant number of
    traced events per block' mechanism."""

    def sweep():
        out = {}
        for cost in (1e-3, 2e-3, 4e-3):
            cfg = LANLTraceConfig(
                syscall_event_cost=cost, libcall_event_cost=cost / 2, cpu_factor=1.0
            )
            m = measure_overhead(
                lambda c=cfg: LANLTrace(c), mpi_io_test, ARGS,
                config=paper_testbed(nprocs=NP), nprocs=NP,
            )
            out[cost] = m.elapsed_overhead
        return out

    rows = once(sweep)
    print()
    for cost, ovh in rows.items():
        print("per-event cost %.1fms -> elapsed overhead %5.1f%%" % (cost * 1e3, 100 * ovh))
    values = list(rows.values())
    assert values == sorted(values)
    # roughly proportional: 4x the cost gives >2.5x the overhead
    assert values[-1] > 2.5 * values[0]


def test_cpu_factor_sets_large_block_floor(once):
    """At 8 MiB blocks, per-event costs have amortized away; what remains
    is the residual ptrace slowdown factor."""
    big = dict(ARGS, block_size=8 * MiB, nobj=4)

    def sweep():
        out = {}
        for factor in (1.0, 1.08, 1.25):
            cfg = LANLTraceConfig(cpu_factor=factor)
            m = measure_overhead(
                lambda c=cfg: LANLTrace(c), mpi_io_test, big,
                config=paper_testbed(nprocs=NP), nprocs=NP,
            )
            out[factor] = m.elapsed_overhead
        return out

    rows = once(sweep)
    print()
    for factor, ovh in rows.items():
        print("cpu_factor %.2f -> elapsed overhead %5.1f%%" % (factor, 100 * ovh))
    values = list(rows.values())
    assert values == sorted(values)


def _sample_trace(n=2000):
    return TraceFile(
        [
            TraceEvent(
                timestamp=1159808385.0 + i * 1e-3,
                duration=3.4e-5,
                layer=EventLayer.SYSCALL,
                name="SYS_write",
                args=(3, "0x8000003", 65536),
                result=65536,
                pid=10378,
                rank=i % 32,
                hostname="host13.lanl.gov",
                user="jdoe",
                path="/pfs/mpi_io_test.out",
                fd=3,
                nbytes=65536,
                offset=i * 65536,
            )
            for i in range(n)
        ],
        hostname="host13.lanl.gov",
        pid=10378,
        rank=0,
        framework="bench",
    )


def test_binary_encode_throughput(benchmark):
    tf = _sample_trace()
    blob = benchmark(binary_format.encode_trace_file, tf)
    assert binary_format.decode_trace_file(blob).events == tf.events


def test_binary_decode_throughput(benchmark):
    tf = _sample_trace()
    blob = binary_format.encode_trace_file(tf)
    out = benchmark(binary_format.decode_trace_file, blob)
    assert len(out) == len(tf)


def test_text_encode_throughput(benchmark):
    tf = _sample_trace()
    text = benchmark(text_format.encode_trace_file, tf)
    assert "SYS_write" in text


def test_text_decode_throughput(benchmark):
    tf = _sample_trace()
    text = text_format.encode_trace_file(tf)
    out = benchmark(text_format.decode_trace_file, text)
    assert len(out) == len(tf)


def test_buffering_ablation():
    """Bigger output blocks make the binary trace smaller (less framing)
    and are the 'buffering (to improve performance)' of §2.2."""
    tf = _sample_trace(4000)
    sizes = {
        n: len(binary_format.encode_trace_file(tf, block_records=n, compressed=True))
        for n in (1, 16, 256)
    }
    print("\nblock_records -> bytes: %r" % sizes)
    assert sizes[256] < sizes[16] < sizes[1]


def test_des_kernel_event_rate(benchmark):
    """Raw simulator throughput: events dispatched per second."""
    from repro.des import Simulator, Timeout

    def run():
        sim = Simulator()

        def worker():
            for _ in range(2000):
                yield Timeout(0.001)

        for i in range(10):
            sim.spawn(worker(), name="w%d" % i)
        sim.run()
        return sim.events_executed

    events = benchmark(run)
    assert events >= 20000
