"""LANL-Trace elapsed-time overhead range (§4.1.1, Table 2 row).

Paper: "The measured elapsed time was observed to be highly variable
ranging from 24% to 222%.  The variability was observed to relate directly
to the block size of the I/O performed by the application."
"""

from repro.harness.figures import FIGURE_PATTERNS, figure_series
from repro.harness.report import render_overhead_range
from repro.units import KiB, MiB

BLOCKS = [32 * KiB, 64 * KiB, 256 * KiB, 1024 * KiB, 8192 * KiB]


def test_elapsed_time_overhead_range(once):
    def measure():
        rows = {}
        for figno, pattern in FIGURE_PATTERNS.items():
            series = figure_series(
                figno, block_sizes=BLOCKS, total_bytes_per_rank=16 * MiB,
                nprocs=32, seed=0,
            )
            rows[pattern] = series
        return rows

    rows = once(measure)
    all_points = [
        (pattern, p.block_size, p.elapsed_overhead)
        for pattern, series in rows.items()
        for p in series.points
    ]
    overheads = [o for _, _, o in all_points]
    bounds = {"min": min(overheads), "max": max(overheads)}
    print()
    for pattern, series in rows.items():
        print(
            "%-22s " % pattern.value
            + "  ".join(
                "%dK:%5.1f%%" % (p.block_size // 1024, 100 * p.elapsed_overhead)
                for p in series.points
            )
        )
    print(render_overhead_range(bounds, 24, 222))

    # the paper's two key claims:
    # 1. the range is wide (order-of-magnitude spread, tens to hundreds %)
    assert bounds["min"] < 0.25
    assert bounds["max"] > 1.0
    # 2. variability relates directly to block size: within every pattern,
    #    the largest block has (near-)minimal overhead and a small block
    #    has the maximum.
    for pattern, series in rows.items():
        ovh = series.elapsed_overheads()
        assert ovh[-1] == min(ovh), pattern
        assert max(ovh) >= 4 * ovh[-1], pattern
