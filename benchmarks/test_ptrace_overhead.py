"""//TRACE elapsed-time overhead (§4.3, Table 2 row).

Paper: "the user can control the tradeoff between trace replay fidelity
and elapsed time overhead.  The overhead is thus highly variable ...
ranging between ~0% to 205%."  The dial is the throttling sample rate.
"""

from repro.frameworks.ptrace import PTrace, PTraceCollector
from repro.harness.experiment import measure_overhead
from repro.harness.figures import paper_testbed
from repro.units import KiB
from repro.workloads import AccessPattern, mpi_io_test

NP = 8
ARGS = {
    "pattern": AccessPattern.N_TO_1_NONSTRIDED,
    "block_size": 256 * KiB,
    "nobj": 256,
    "path": "/pfs/out",
    "barrier_every": 16,
}


def test_overhead_controlled_by_sampling(once):
    def measure():
        rows = {}
        rows["interposition only"] = measure_overhead(
            PTrace, mpi_io_test, ARGS, config=paper_testbed(nprocs=NP), nprocs=NP
        ).elapsed_overhead
        for sampling in (0.25, 0.5, 1.0):
            m = measure_overhead(
                lambda s=sampling: PTraceCollector(
                    sampling=s, epoch_duration=0.15
                ),
                mpi_io_test, ARGS, config=paper_testbed(nprocs=NP), nprocs=NP,
            )
            rows["sampling %.2f" % sampling] = m.elapsed_overhead
        return rows

    rows = once(measure)
    print()
    for label, ovh in rows.items():
        print("%-22s elapsed overhead %6.1f%%" % (label, 100 * ovh))
    print("paper: ~0% to 205%, adjustable by design")

    values = list(rows.values())
    # floor ~0% (the in-process interposition itself)
    assert values[0] < 0.02
    # strictly increasing with sampling
    assert values == sorted(values)
    assert values[-1] > 5 * max(values[0], 0.005)


def test_aggressive_discovery_reaches_the_paper_ceiling(once):
    """Full causality discovery on a short run: the expensive end of the
    dial.  The paper's 205% corresponds to discovery dominating run time."""

    def measure():
        short = dict(ARGS, nobj=96)
        return measure_overhead(
            lambda: PTraceCollector(
                sampling=1.0,
                epoch_duration=0.1,
                throttle_delay=60e-3,
                probe_epochs=8,  # discovery dominates the duty cycle
                passes=4,
            ),
            mpi_io_test, short, config=paper_testbed(nprocs=NP), nprocs=NP,
        )

    m = once(measure)
    print(
        "\naggressive discovery: %.0f%% elapsed overhead (paper ceiling: 205%%)"
        % (100 * m.elapsed_overhead)
    )
    assert m.elapsed_overhead > 1.0  # comfortably into the hundreds of %
