"""Tier-2 bench: archive-scale diagnosis has to keep up with the archive.

``repro obs diagnose`` claims it scales to thousands of archived runs by
fingerprinting from column-projected scans instead of re-executing
anything.  This bench builds a synthetic 40-run archive (a realistic
sweep shape: 4 ranks, a few dozen ops per rank, a handful of runs with an
inflated write path), measures end-to-end ``diagnose_archive`` wall time
— fingerprints, grouping, MAD scoring, clustering, and the auto-slices
for every flagged outlier — and records ``diagnose_runs_per_sec`` into
``BENCH_diagnose.json`` (the ``repro obs check`` metric of the same
name tracks it across history).

Timings use min-of-N: this box jitters, the minimum is the least-noisy
estimator.  Lives in ``benchmarks/`` (outside tier-1 ``testpaths``) and
is marked ``slow`` so the fast suite never pays for it.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.obs.diagnose import diagnose_archive
from repro.store.bank import TraceBank
from repro.trace.events import EventLayer, TraceEvent
from repro.trace.records import TraceBundle, TraceFile

pytestmark = pytest.mark.slow

N_RUNS = 40
N_RANKS = 4
WRITES_PER_RANK = 24
SLOW_RUNS = (7, 23, 31)  # seeds whose write path is inflated
REPS = 3
FLOOR_RUNS_PER_SEC = 2.0
BENCH_OUT = Path(os.environ.get("BENCH_DIAGNOSE_OUT", "BENCH_diagnose.json"))


def _event(name, layer, ts, dur, rank, offset=0):
    return TraceEvent(
        timestamp=ts,
        duration=dur,
        layer=layer,
        name=name,
        args=(3, 65536),
        result=65536,
        pid=100 + rank,
        rank=rank,
        hostname="node%03d" % rank,
        user="mpi",
        path="/pfs/out",
        fd=3,
        nbytes=65536,
        offset=offset,
    )


def _run_file(rank, seed, slow=False):
    """One rank's capture: an open, a write loop, a close — sweep-shaped.

    ``seed`` jitters the timestamps so every run has distinct content
    (the archive is content-addressed; identical runs dedup to one).
    """
    base = 1e-5 * seed
    write_dur = 0.004 if slow else 0.002
    events = [
        _event("SYS_open", EventLayer.SYSCALL, base, 0.001, rank),
    ]
    t = base + 0.001
    for i in range(WRITES_PER_RANK):
        events.append(
            _event("MPI_File_write_at", EventLayer.LIBCALL, t,
                   write_dur + 0.001, rank, offset=65536 * i)
        )
        events.append(
            _event("SYS_write", EventLayer.SYSCALL, t + 0.0005, write_dur,
                   rank, offset=65536 * i)
        )
        t += write_dur + 0.002
    events.append(_event("SYS_close", EventLayer.SYSCALL, t, 0.001, rank))
    return TraceFile(events, hostname="node%03d" % rank, pid=100 + rank,
                     rank=rank, framework="bench")


def build_archive(root):
    bank = TraceBank(root)
    for seed in range(N_RUNS):
        slow = seed in SLOW_RUNS
        bundle = TraceBundle(
            files={r: _run_file(r, seed, slow=slow) for r in range(N_RANKS)},
            metadata={"workload": "bench"},
        )
        bank.ingest_bundle(
            bundle,
            meta={
                "kind": "bench",
                "framework": "bench",
                "workload": "diagnose-bench",
                "nprocs": N_RANKS,
                "seed": seed,
                "scenario": "disk-slow" if slow else "baseline",
            },
            codec="v2",
        )
    return bank


def _write_bench(record):
    bench = {"schema": "repro/bench_diagnose/v1", "command": "benchmarks"}
    if BENCH_OUT.exists():
        try:
            bench = json.loads(BENCH_OUT.read_text())
        except ValueError:
            pass
    bench.setdefault("diagnose", {}).update(record)
    BENCH_OUT.write_text(json.dumps(bench, indent=2, sort_keys=True) + "\n")


def test_diagnose_throughput_meets_the_floor(tmp_path):
    bank = build_archive(tmp_path / "store")
    assert len(bank.manifests()) == N_RUNS

    best = float("inf")
    report = None
    for _ in range(REPS):
        t0 = time.perf_counter()
        report = diagnose_archive(str(tmp_path / "store"), jobs=1)
        best = min(best, time.perf_counter() - t0)

    # The measured pass has to do the real work: the inflated runs are
    # flagged and sliced.
    flagged = {o["meta"]["seed"] for o in report["outliers"]}
    assert flagged == set(SLOW_RUNS)
    assert all(o["suspect_layer"] == "simfs" for o in report["outliers"])
    assert all(o["slice"] is not None for o in report["outliers"])

    runs_per_sec = N_RUNS / best
    n_events = sum(m.n_events for m in bank.manifests())
    print(
        "\ndiagnose over %d run(s) (%d events): %.2fs -> %.1f runs/s"
        % (N_RUNS, n_events, best, runs_per_sec)
    )
    _write_bench(
        {
            "n_runs": N_RUNS,
            "n_events": n_events,
            "diagnose_seconds": best,
            "diagnose_runs_per_sec": runs_per_sec,
            "outliers": len(report["outliers"]),
        }
    )
    assert runs_per_sec >= FLOOR_RUNS_PER_SEC, (
        "diagnose at %.2f runs/s is under the %.1f floor"
        % (runs_per_sec, FLOOR_RUNS_PER_SEC)
    )
