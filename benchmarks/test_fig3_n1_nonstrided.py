"""Figure 3 — LANL-Trace overhead, N processes -> one file, non-strided.

Paper: "Bandwidth overhead approaches a constant factor of untraced
application bandwidth as block size is increased."
Anchors: 64.7% bandwidth overhead at 64 KiB, 6.1% at 8192 KiB.
"""

from repro.harness.figures import figure_series
from repro.harness.report import render_figure
from repro.units import MiB
from repro.workloads import AccessPattern


def test_figure3(once):
    series = once(
        figure_series, 3, total_bytes_per_rank=32 * MiB, nprocs=32, seed=0
    )
    print("\n" + render_figure(series))
    print(
        "paper anchors: 64.7%% BW overhead @64KiB, 6.1%% @8192KiB; "
        "measured: %.1f%% and %.1f%%"
        % (
            100 * series.points[0].bandwidth_overhead,
            100 * series.points[-1].bandwidth_overhead,
        )
    )
    assert series.pattern is AccessPattern.N_TO_1_NONSTRIDED

    ovh = series.bandwidth_overheads()
    assert ovh[0] == max(ovh) and ovh[-1] == min(ovh)
    assert 0.40 <= ovh[0] <= 0.80  # paper: 64.7%
    assert ovh[-1] <= 0.15  # paper: 6.1%

    # "approaches a constant factor": the overhead does not vanish at
    # large blocks — the residual ptrace slowdown keeps a nonzero floor
    # (the paper's 6.1% at 8 MiB), an order below the small-block peak.
    assert 0.01 <= ovh[-1]
    assert ovh[0] / ovh[-1] > 4

    # non-strided is faster than strided untraced (no per-op seeks) —
    # cross-figure consistency check against Figure 2's physics
    from repro.harness.figures import figure_series as fs

    strided = fs(2, block_sizes=[64 * 1024], total_bytes_per_rank=8 * MiB, nprocs=32)
    nonstrided = fs(3, block_sizes=[64 * 1024], total_bytes_per_rank=8 * MiB, nprocs=32)
    assert nonstrided.points[0].untraced_bandwidth > strided.points[0].untraced_bandwidth
