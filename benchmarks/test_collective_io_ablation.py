"""Extension experiment: two-phase collective I/O vs independent writes.

Not a paper figure — the paper's mpich-1.2.6-era MPI-IO wrote each block
independently (seek+write), which is exactly why its Figure 2 pattern
(N-to-1 strided, small blocks) is so slow.  This ablation adds the ROMIO
two-phase optimization (``MPI_File_write_at_all``) and quantifies how
much of the strided penalty it removes, across block sizes.
"""

from repro.harness.figures import paper_testbed
from repro.harness.testbed import build_testbed
from repro.simmpi import MPIFile, MPI_MODE_CREATE, MPI_MODE_WRONLY, mpirun
from repro.units import KiB, MiB
from repro.workloads.patterns import AccessPattern, block_offset

NP = 16
TOTAL_PER_RANK = 8 * MiB


def _app(collective, nobj, bs):
    def app(mpi, args):
        f = yield from MPIFile.open(
            mpi, "/pfs/out", MPI_MODE_WRONLY | MPI_MODE_CREATE, collective=True
        )
        if collective:
            extents = [
                (
                    block_offset(
                        AccessPattern.N_TO_1_STRIDED, mpi.rank, mpi.size, j, bs, nobj
                    ),
                    bs,
                )
                for j in range(nobj)
            ]
            yield from f.write_at_all(extents=extents)
        else:
            for j in range(nobj):
                off = block_offset(
                    AccessPattern.N_TO_1_STRIDED, mpi.rank, mpi.size, j, bs, nobj
                )
                yield from f.write_at(off, bs)
        yield from f.close()
        yield from mpi.barrier()
        return nobj * bs

    return app


def _elapsed(collective, bs):
    nobj = max(1, TOTAL_PER_RANK // bs)
    tb = build_testbed(paper_testbed(nprocs=NP))
    job = mpirun(
        tb.cluster, tb.vfs, _app(collective, nobj, bs), nprocs=NP, args={}
    )
    assert tb.pfs.ns.lookup("out").size == NP * nobj * bs
    return job.elapsed


def test_collective_buffering_ablation(once):
    def sweep():
        rows = {}
        for bs in (32 * KiB, 64 * KiB, 256 * KiB):
            rows[bs] = (_elapsed(False, bs), _elapsed(True, bs))
        return rows

    rows = once(sweep)
    print()
    print("%-10s %14s %14s %10s" % ("block", "independent", "write_at_all", "speedup"))
    for bs, (indep, coll) in rows.items():
        print(
            "%-10s %13.3fs %13.3fs %9.2fx"
            % ("%dKiB" % (bs // 1024), indep, coll, indep / coll)
        )

    # the optimization wins at small strided blocks...
    small_indep, small_coll = rows[32 * KiB]
    assert small_coll < 0.8 * small_indep
    # ...and the win shrinks as blocks grow (less to aggregate)
    speedups = [indep / coll for indep, coll in rows.values()]
    assert speedups[0] >= speedups[-1]
