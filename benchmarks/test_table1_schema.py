"""Table 1 — the taxonomy summary-table template.

Regenerates the single-framework reference table of §3.2 and checks the
schema matches the paper's thirteen rows with the paper's value domains.
"""

from repro.core import FEATURES, Feature, render_summary_table
from repro.core.casestudy import lanl_trace_classification


def test_table1_template(once):
    table = once(render_summary_table, lanl_trace_classification())
    print("\n" + table)
    lines = table.strip().splitlines()
    # header + separator + 13 feature rows
    assert len(lines) == 2 + 13
    for feature in FEATURES:
        assert feature.display_name in table
    # the paper's Table 1 row order
    order = [f.display_name for f in FEATURES]
    assert order[0] == "Parallel file system compatibility"
    assert order[-1] == "Elapsed time overhead"


def test_table1_value_domains():
    """Each domain renders in the bracketed style Table 1 documents."""
    from repro.core.values import (
        AnonymizationLevel,
        GranularityControl,
        Likert,
        TraceFormat,
        YesNo,
    )

    assert YesNo.YES.render() in ("Yes", "No")
    assert Likert(1, "V. Easy").render() == "1 (V. Easy)"
    assert Likert(5, "V. Difficult").render() == "5 (V. Difficult)"
    assert AnonymizationLevel(0).render() == "No"
    assert AnonymizationLevel(5).render() == "5 (V. Advanced)"
    assert GranularityControl(0).render() == "No"
    assert TraceFormat.BINARY.render() == "Binary"
    assert TraceFormat.HUMAN_READABLE.render() == "Human readable"
