"""Figure 2 — LANL-Trace overhead, N processes -> one file, strided.

Paper: "This is the benchmark parameterization most demanding on the
parallel I/O file system.  We observe bandwidth as a logarithmic function
of block size and an approximately constant I/O bandwidth overhead."
Anchors: 51.3% bandwidth overhead at 64 KiB, 5.5% at 8192 KiB.
"""

from repro.harness.figures import figure_series
from repro.harness.report import render_figure
from repro.units import MiB
from repro.workloads import AccessPattern

PAPER_64K = 0.513
PAPER_8M = 0.055


def test_figure2(once):
    series = once(
        figure_series, 2, total_bytes_per_rank=32 * MiB, nprocs=32, seed=0
    )
    print("\n" + render_figure(series))
    print(
        "paper anchors: 51.3%% BW overhead @64KiB, 5.5%% @8192KiB; "
        "measured: %.1f%% and %.1f%%"
        % (
            100 * series.points[0].bandwidth_overhead,
            100 * series.points[-1].bandwidth_overhead,
        )
    )
    assert series.pattern is AccessPattern.N_TO_1_STRIDED

    # untraced bandwidth grows monotonically with block size (log-like)
    bws = [p.untraced_bandwidth for p in series.points]
    assert bws == sorted(bws)
    assert bws[-1] / bws[0] > 3  # substantial growth across the sweep

    # bandwidth overhead decreases with block size
    ovh = series.bandwidth_overheads()
    assert ovh[0] == max(ovh)
    assert ovh[-1] == min(ovh)

    # anchors: same regime as the paper's 51.3% -> 5.5%
    assert 0.30 <= ovh[0] <= 0.70
    assert ovh[-1] <= 0.15
