"""Tracefs elapsed-time overhead (§2.2, §4.2, Table 2 row).

Paper: "Tracefs manifests up to 12.4% elapsed time overhead for tracing
all file system operations on an I/O intensive workload, and additional
overhead for advanced features such as encryption and checksum
calculation."  Also: "Performance overhead varies greatly depending on
which functionality is employed."
"""

from repro.frameworks.tracefs import Tracefs, TracefsConfig
from repro.harness.experiment import measure_overhead
from repro.units import KiB

KEY = b"0123456789abcdef"
IO_ARGS = {
    "base": "/tmp/work",
    "n_files": 32,
    "file_size": 256 * KiB,
    "block_size": 16 * KiB,
}

CONFIGS = [
    ("counters-only", TracefsConfig(target_mount="/tmp", counters_only=True)),
    ("metadata-only", TracefsConfig(target_mount="/tmp", spec="omit read, write\ntrace *")),
    ("full tracing", TracefsConfig(target_mount="/tmp")),
    ("full + checksum", TracefsConfig(target_mount="/tmp", checksum=True)),
    (
        "full + checksum + encryption",
        TracefsConfig(
            target_mount="/tmp",
            checksum=True,
            encrypt_fields=("user", "path"),
            encryption_key=KEY,
        ),
    ),
]


def test_tracefs_overhead_by_functionality(once):
    from repro.workloads.generators import io_intensive

    def measure_all():
        return {
            label: measure_overhead(
                lambda cfg=cfg: Tracefs(cfg), io_intensive, IO_ARGS, nprocs=1
            )
            for label, cfg in CONFIGS
        }

    results = once(measure_all)
    print()
    for label, m in results.items():
        print("%-30s elapsed overhead %5.1f%%" % (label, 100 * m.elapsed_overhead))
    print("paper: full tracing <= 12.4%, advanced features add more")

    full = results["full tracing"].elapsed_overhead
    # the headline ceiling
    assert 0.0 < full <= 0.124
    # granularity control reduces overhead (the taxonomy's rationale for
    # the feature: "collection of only as much information as is required")
    assert results["counters-only"].elapsed_overhead < full
    assert results["metadata-only"].elapsed_overhead < full
    # advanced features add overhead beyond full tracing
    assert results["full + checksum"].elapsed_overhead > full
    assert (
        results["full + checksum + encryption"].elapsed_overhead
        > results["full + checksum"].elapsed_overhead
    )


def test_tracefs_overhead_is_small_next_to_lanl_trace(once):
    """The survey's core contrast: in-kernel buffered binary tracing vs
    per-event ptrace stops, on the same workload."""
    from repro.frameworks.lanltrace import LANLTrace, LANLTraceConfig
    from repro.workloads.generators import io_intensive

    def measure_both():
        tracefs = measure_overhead(
            lambda: Tracefs(TracefsConfig(target_mount="/tmp")),
            io_intensive, IO_ARGS, nprocs=1,
        )
        lanl = measure_overhead(
            lambda: LANLTrace(LANLTraceConfig()),
            io_intensive, IO_ARGS, nprocs=1,
        )
        return tracefs, lanl

    tracefs, lanl = once(measure_both)
    print(
        "\nsame workload: tracefs %.1f%%, lanl-trace %.1f%% elapsed overhead"
        % (100 * tracefs.elapsed_overhead, 100 * lanl.elapsed_overhead)
    )
    assert lanl.elapsed_overhead > 3 * tracefs.elapsed_overhead
