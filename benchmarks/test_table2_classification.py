"""Table 2 — classification summary for LANL-Trace, Tracefs, //TRACE.

Regenerates the case-study comparison table (§4, Table 2) two ways:

1. the published feature values, verbatim;
2. with the overhead row *measured live* on the simulated testbed for
   each framework, demonstrating the taxonomy's quantitative element.
"""

import pytest

from repro.core import Feature, render_summary_table
from repro.core.casestudy import (
    lanl_trace_classification,
    paper_table2,
    ptrace_classification,
    tracefs_classification,
)
from repro.core.overhead import measure_overhead_report
from repro.core.values import OverheadReport
from repro.frameworks.lanltrace import LANLTrace, LANLTraceConfig
from repro.frameworks.ptrace import PTrace
from repro.frameworks.tracefs import Tracefs, TracefsConfig
from repro.harness.experiment import measure_overhead
from repro.harness.figures import paper_testbed
from repro.units import KiB, MiB
from repro.workloads import AccessPattern, mpi_io_test
from repro.workloads.generators import io_intensive


def test_table2_published(once):
    table = once(lambda: render_summary_table(list(paper_table2().values())))
    print("\n" + table)
    for name in ("LANL-Trace", "Tracefs", "//TRACE"):
        assert name in table
    # the distinguishing cells the Conclusion reasons from
    assert "24% - 222%" in table
    assert "12.4" in table
    assert "As low as 6%" in table
    assert "205" in table


def _measure_lanl():
    return measure_overhead_report(
        lambda: LANLTrace(LANLTraceConfig()),
        block_sizes=[64 * KiB, 1 * MiB],
        patterns=[AccessPattern.N_TO_1_STRIDED, AccessPattern.N_TO_N],
        total_bytes_per_rank=8 * MiB,
        config=paper_testbed(nprocs=16),
        nprocs=16,
        note="measured (simulated testbed)",
    )


def _measure_tracefs():
    m = measure_overhead(
        lambda: Tracefs(TracefsConfig(target_mount="/tmp")),
        io_intensive,
        {"base": "/tmp/w", "n_files": 16, "file_size": 256 * KiB, "block_size": 32 * KiB},
        nprocs=1,
    )
    return OverheadReport(
        max_percent=round(100 * m.elapsed_overhead, 1),
        note="measured, full tracing (simulated)",
    )


def _measure_ptrace():
    base = measure_overhead(
        PTrace,
        mpi_io_test,
        {"pattern": AccessPattern.N_TO_1_NONSTRIDED, "block_size": 256 * KiB,
         "nobj": 32, "path": "/pfs/out"},
        config=paper_testbed(nprocs=8),
        nprocs=8,
    )
    return OverheadReport(
        min_percent=round(100 * max(0.0, base.elapsed_overhead), 1),
        max_percent=205.0,
        note="floor measured; ceiling by throttling design",
    )


def test_table2_with_measured_overheads(once):
    def build():
        return render_summary_table(
            [
                lanl_trace_classification(overhead=_measure_lanl()),
                tracefs_classification(overhead=_measure_tracefs()),
                ptrace_classification(overhead=_measure_ptrace()),
            ]
        )

    table = once(build)
    print("\n" + table)
    assert "measured" in table


def test_conclusion_recommendations():
    """§5's three conclusions, via the requirements engine."""
    from repro.core import Requirements, recommend

    cls = list(paper_table2().values())
    # replayable + parallel -> //TRACE
    r1 = recommend(Requirements(need_replayable=True, need_parallel_fs=True), cls)
    assert r1[0].framework_name == "//TRACE" and r1[0].qualifies
    # advanced anonymization -> LANL-Trace inadequate
    r2 = recommend(Requirements(min_anonymization=3), cls)
    assert not [r for r in r2 if r.framework_name == "LANL-Trace"][0].qualifies
    # low-friction install -> not Tracefs
    r3 = recommend(Requirements(max_install_difficulty=3), cls)
    assert not [r for r in r3 if r.framework_name == "Tracefs"][0].qualifies
    print("\n" + "\n".join(r.render() for r in r1))
