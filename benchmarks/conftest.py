"""Shared fixtures/helpers for the paper-reproduction benchmarks.

Every benchmark regenerates one table or figure from the paper.  The
convention: each test prints the reproduced series/table (captured into
``bench_output.txt`` by the top-level run script) and asserts the *shape*
properties the paper reports — orderings, trends, crossovers, and rough
magnitudes — rather than absolute simulator numbers.
"""

import pytest


def pytest_configure(config):
    """Register the tier-2 ``slow`` marker used by the heavier benchmarks."""
    config.addinivalue_line(
        "markers", "slow: tier-2 benchmark, excluded from the fast suite"
    )


def run_once(benchmark, fn, *args, **kwargs):
    """Run an expensive simulation exactly once under pytest-benchmark.

    These are minutes-scale discrete-event simulations; statistical
    repetition adds nothing (the simulator is deterministic), so one
    round with one iteration is the honest measurement.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    def _run(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _run
