"""Figure 1 — LANL-Trace's three output types.

Runs the traced ``mpi_io_test`` (the figure's own command line uses
``-type 1 -strided 1 -size 32768``) and regenerates the three
human-readable outputs: raw trace data, aggregate timing information, and
the call summary.
"""

import re

from repro.frameworks.lanltrace import (
    LANLTrace,
    LANLTraceConfig,
    render_aggregate_timing,
    render_call_summary,
    render_raw_trace,
)
from repro.harness.experiment import run_traced
from repro.harness.figures import paper_testbed
from repro.workloads import AccessPattern, mpi_io_test

# Figure 1's command line: mpi_io_test.exe -type 1 -strided 1 -size 32768 -nobj 1
ARGS = {
    "pattern": AccessPattern.N_TO_1_STRIDED,
    "block_size": 32768,
    "nobj": 1,
    "path": "/pfs/mpi_io_test.out",
    "barrier_every": 1,
}


def _trace():
    cfg = LANLTraceConfig(
        command_line='/mpi_io_test.exe "-type" "1" "-strided" "1" "-size" "32768" "-nobj" "1"'
    )
    _, traced = run_traced(
        lambda: LANLTrace(cfg), mpi_io_test, ARGS,
        config=paper_testbed(nprocs=8), nprocs=8,
    )
    return traced.bundle


def test_figure1_three_outputs(once):
    bundle = once(_trace)

    raw = render_raw_trace(bundle, rank=3)
    timing = render_aggregate_timing(bundle)
    summary = render_call_summary(bundle)
    print("\nRaw Trace Data\n" + "\n".join(raw.splitlines()[:8]))
    print("\nAggregate Timing Information\n" + "\n".join(timing.splitlines()[:6]))
    print("\nCall Summary\n" + summary)

    # --- raw trace: epoch timestamps, SYS_* calls, <duration> suffixes ---
    line_re = re.compile(r"^\d{3,}\.\d{6} \w+\(.*\) = .* <\d+\.\d{6}>$")
    raw_lines = raw.strip().splitlines()
    assert sum(1 for l in raw_lines if line_re.match(l)) >= len(raw_lines) - 2
    assert any("MPI_File_open" in l for l in raw_lines)
    assert any("SYS_statfs64" in l for l in raw_lines)
    assert any("SYS_open" in l for l in raw_lines)
    assert any("SYS_fcntl64" in l for l in raw_lines)

    # --- aggregate timing: barrier brackets with per-rank stamps ---
    assert '# Barrier before /mpi_io_test.exe "-type" "1"' in timing
    assert "# Barrier after" in timing
    stamp_re = re.compile(r"^\d+: \S+ \(\d+\) Entered barrier at \d+\.\d{6}$", re.M)
    assert len(stamp_re.findall(timing)) == 8 * 2  # 8 ranks x 2 barriers

    # --- call summary: header + per-function counts ---
    assert "SUMMARY COUNT OF TRACED CALL(S)" in summary
    assert "MPI_Barrier" in summary
    assert "SYS_open" in summary


def test_figure1_timing_info_supports_skew_accounting(once):
    """The aggregate timing output exists so 'analysis and replay tools
    [can] account for time drift and skew' — verify it actually can."""
    from repro.analysis.skew import estimate_clocks

    bundle = once(_trace)
    estimates = estimate_clocks(bundle.barrier_stamps)
    assert set(estimates) == set(range(8))
