"""Tier-2 bench: the columnar codec earns its two acceptance numbers.

The columnar-fast-path PR claims, measured here and recorded into
``BENCH_codec.json`` so the trajectory is tracked:

* an aggregate scan over a v2 segment (projected column read: decompress
  only the columns the aggregate touches) beats a v1 scan (full
  row-major decode to :class:`TraceEvent` objects) by >= 5x;
* v2 spends <= 0.8x the encoded bytes per event of v1 (dictionary
  interning + delta-packed integer columns).

Timings use min-of-N over interleaved repetitions — this box jitters by
+/-20%, and the minimum is the least-noisy estimator of the true cost.
Both scans compute the same per-name (count, total-duration) aggregate
over the same logical events, so the comparison is work-for-work.

Lives in ``benchmarks/`` (outside the tier-1 ``testpaths``) and is
marked ``slow`` so the fast suite never pays for it.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.store.segments import encode_segment
from repro.trace.binary_format import decode_trace_file
from repro.trace.columnar import read_columns
from repro.trace.events import EventLayer, TraceEvent
from repro.trace.records import TraceFile

pytestmark = pytest.mark.slow

N_EVENTS = 50_000
REPS = 5
BENCH_OUT = Path(os.environ.get("BENCH_CODEC_OUT", "BENCH_codec.json"))

NAMES = ("SYS_read", "SYS_write", "SYS_open", "SYS_close", "MPI_File_write_at")
PATHS = ("/pfs/out/shard-0", "/pfs/out/shard-1", "/scratch/tmp")


def synthetic_trace_file(n=N_EVENTS):
    """A sweep-shaped trace file: few distinct names/paths, hot columns."""
    events = [
        TraceEvent(
            timestamp=i * 1e-4,
            duration=5e-6 * (1 + i % 7),
            layer=EventLayer.SYSCALL if i % 3 else EventLayer.LIBCALL,
            name=NAMES[i % len(NAMES)],
            args=(3, 65536),
            result=65536,
            pid=4242,
            rank=i % 8,
            hostname="node%03d" % (i % 8),
            user="mpi",
            path=PATHS[i % len(PATHS)] if i % 4 else None,
            fd=3 + i % 4,
            nbytes=65536,
            offset=65536 * i,
        )
        for i in range(n)
    ]
    return TraceFile(events, hostname="node000", pid=4242, rank=0, framework="bench")


def ops_from_events(tf):
    """The v1 scan: full decode already done, row loop over event objects."""
    ops = {}
    for e in tf.events:
        cell = ops.setdefault(e.name, [0, 0.0])
        cell[0] += 1
        cell[1] += e.duration
    return ops


def ops_from_columns(cols):
    """The v2 scan: same aggregate from two projected columns."""
    ops = {}
    names, durations = cols["name"], cols["duration"]
    for i in range(len(names)):
        cell = ops.setdefault(names[i], [0, 0.0])
        cell[0] += 1
        cell[1] += durations[i]
    return ops


def min_of_n_interleaved(tasks, reps=REPS):
    """Best-of-``reps`` wall time per task, interleaving to share drift."""
    best = {name: float("inf") for name, _fn in tasks}
    results = {}
    for _ in range(reps):
        for name, fn in tasks:
            t0 = time.perf_counter()
            results[name] = fn()
            best[name] = min(best[name], time.perf_counter() - t0)
    return best, results


def _write_bench(record):
    """Merge this module's measurements into the BENCH_codec.json artifact."""
    bench = {"schema": "repro/bench_codec/v1", "command": "benchmarks"}
    if BENCH_OUT.exists():
        try:
            bench = json.loads(BENCH_OUT.read_text())
        except ValueError:
            pass
    bench.setdefault("codec", {}).update(record)
    BENCH_OUT.write_text(json.dumps(bench, indent=2, sort_keys=True) + "\n")


def test_projected_scan_beats_full_decode_5x():
    tf = synthetic_trace_file()
    blob_v1, _ = encode_segment(tf, codec="v1")
    blob_v2, _ = encode_segment(tf, codec="v2")

    best, results = min_of_n_interleaved(
        [
            ("v1", lambda: ops_from_events(decode_trace_file(blob_v1))),
            ("v2", lambda: ops_from_columns(
                read_columns(blob_v2, ("name", "duration")))),
        ]
    )
    assert results["v2"] == results["v1"]  # identical aggregate first

    speedup = best["v1"] / best["v2"]
    ev_per_sec_v2 = N_EVENTS / best["v2"]
    scan_mb_per_sec = {
        "v1": len(blob_v1) / best["v1"] / 1e6,
        "v2": len(blob_v2) / best["v2"] / 1e6,
    }
    print(
        "\nops scan over %d events: v1 full decode %.1fms, v2 projected "
        "%.1fms -> %.1fx (v2 scans %.1fM events/s)"
        % (N_EVENTS, best["v1"] * 1e3, best["v2"] * 1e3, speedup,
           ev_per_sec_v2 / 1e6)
    )
    _write_bench(
        {
            "n_events": N_EVENTS,
            "v1_scan_seconds": best["v1"],
            "v2_scan_seconds": best["v2"],
            "scan_speedup_v2_over_v1": speedup,
            "v2_events_per_sec": ev_per_sec_v2,
            "scan_mb_per_sec": scan_mb_per_sec,
        }
    )
    assert speedup >= 5.0, "projected scan only %.2fx faster" % speedup


def test_v2_spends_at_most_080x_bytes_per_event():
    tf = synthetic_trace_file()
    blob_v1, _ = encode_segment(tf, codec="v1")
    blob_v2, _ = encode_segment(tf, codec="v2")
    bpe_v1 = len(blob_v1) / N_EVENTS
    bpe_v2 = len(blob_v2) / N_EVENTS
    ratio = bpe_v2 / bpe_v1
    print(
        "\nencoded size: v1 %.1f B/event, v2 %.1f B/event -> %.2fx"
        % (bpe_v1, bpe_v2, ratio)
    )
    _write_bench(
        {
            "v1_bytes_per_event": bpe_v1,
            "v2_bytes_per_event": bpe_v2,
            "bytes_per_event_ratio": ratio,
        }
    )
    assert ratio <= 0.8, "v2 spends %.2fx the bytes of v1" % ratio
