"""Figure 4 — LANL-Trace overhead, N processes -> N files.

Paper: "We observe bandwidth overhead similar to that of N to 1,
non-strided."  Anchors: 68.6% bandwidth overhead at 64 KiB, 0.6% at
8192 KiB; at small blocks N-to-N shows the *highest* relative overhead of
the three patterns (its untraced baseline is fastest).
"""

from repro.harness.figures import figure_series
from repro.harness.report import render_figure
from repro.units import KiB, MiB
from repro.workloads import AccessPattern


def test_figure4(once):
    series = once(
        figure_series, 4, total_bytes_per_rank=32 * MiB, nprocs=32, seed=0
    )
    print("\n" + render_figure(series))
    print(
        "paper anchors: 68.6%% BW overhead @64KiB, 0.6%% @8192KiB; "
        "measured: %.1f%% and %.1f%%"
        % (
            100 * series.points[0].bandwidth_overhead,
            100 * series.points[-1].bandwidth_overhead,
        )
    )
    assert series.pattern is AccessPattern.N_TO_N

    ovh = series.bandwidth_overheads()
    assert ovh[0] == max(ovh) and ovh[-1] == min(ovh)
    assert 0.40 <= ovh[0] <= 0.85  # paper: 68.6%
    assert ovh[-1] <= 0.12  # paper: 0.6%


def test_pattern_ordering_at_64k(once):
    """The paper's cross-figure result at 64 KiB: strided has the LOWEST
    relative overhead (51.3%), N-to-N the highest (68.6%), non-strided in
    between (64.7%) — because relative overhead tracks how fast the
    untraced baseline is."""

    def measure_all():
        out = {}
        for figno in (2, 3, 4):
            s = figure_series(
                figno, block_sizes=[64 * KiB], total_bytes_per_rank=16 * MiB,
                nprocs=32, seed=0,
            )
            out[s.pattern] = s.points[0]
        return out

    points = once(measure_all)
    strided = points[AccessPattern.N_TO_1_STRIDED]
    nonstrided = points[AccessPattern.N_TO_1_NONSTRIDED]
    ntn = points[AccessPattern.N_TO_N]
    print(
        "\n64KiB BW overhead: strided=%.1f%% nonstrided=%.1f%% n-to-n=%.1f%%"
        " (paper: 51.3 / 64.7 / 68.6)"
        % (
            100 * strided.bandwidth_overhead,
            100 * nonstrided.bandwidth_overhead,
            100 * ntn.bandwidth_overhead,
        )
    )
    # strided strictly lowest, as in the paper
    assert strided.bandwidth_overhead < nonstrided.bandwidth_overhead
    assert strided.bandwidth_overhead < ntn.bandwidth_overhead
    # non-strided and N-to-N close together ("similar", §4.1.2)
    assert abs(nonstrided.bandwidth_overhead - ntn.bandwidth_overhead) < 0.15
    # and strided is the slowest untraced configuration
    assert strided.untraced_bandwidth < nonstrided.untraced_bandwidth
    assert strided.untraced_bandwidth < ntn.untraced_bandwidth
