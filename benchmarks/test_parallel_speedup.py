"""Tier-2 bench: the parallel executor and run cache earn their keep.

Two claims from the sweep-engine PR, measured on a real multi-point sweep
and recorded into ``BENCH_sweep.json`` so the perf trajectory is tracked:

* fanning sweep points over worker processes beats the serial wall-clock
  (needs >= 2 CPUs; skipped on single-core runners);
* a warm-cache rerun of the same sweep is >= 10x faster than the cold run
  (determinism makes every point a pure disk lookup).

Lives in ``benchmarks/`` (outside the tier-1 ``testpaths``) and is marked
``slow`` so the fast suite never pays for it.
"""

import json
import os
from pathlib import Path

import pytest

from repro.harness.figures import run_figures
from repro.harness.runcache import RunCache
from repro.units import KiB, MiB

pytestmark = pytest.mark.slow

N_CPUS = os.cpu_count() or 1
SWEEP = dict(
    figures=(2, 3, 4),
    block_sizes=[64 * KiB, 256 * KiB],
    total_bytes_per_rank=8 * MiB,
    nprocs=16,
    seed=0,
)
BENCH_OUT = Path(os.environ.get("BENCH_SWEEP_OUT", "BENCH_sweep.json"))


def _write_bench(records):
    """Merge this module's measurements into the BENCH_sweep.json artifact."""
    bench = {"schema": "repro/bench_sweep/v1", "command": "benchmarks"}
    if BENCH_OUT.exists():
        try:
            bench = json.loads(BENCH_OUT.read_text())
        except ValueError:
            pass
    bench.setdefault("speedup", {}).update(records)
    BENCH_OUT.write_text(json.dumps(bench, indent=2) + "\n")


def test_parallel_beats_serial(once):
    if N_CPUS < 2:
        pytest.skip("parallel speedup needs >= 2 CPUs (found %d)" % N_CPUS)
    serial = run_figures(jobs=1, **SWEEP)
    parallel = once(run_figures, jobs=min(4, N_CPUS), **SWEEP)
    t_s, t_p = serial.report.wall_seconds, parallel.report.wall_seconds
    print(
        "\nserial %.2fs vs parallel(jobs=%d) %.2fs -> %.2fx"
        % (t_s, parallel.report.jobs, t_p, t_s / t_p)
    )
    _write_bench(
        {
            "serial_wall_seconds": t_s,
            "parallel_wall_seconds": t_p,
            "parallel_jobs": parallel.report.jobs,
        }
    )
    assert parallel.series == serial.series  # identical output first
    assert t_p < t_s


def test_warm_cache_rerun_is_10x_faster(once, tmp_path):
    cache = RunCache(tmp_path / "cache")
    cold = run_figures(jobs=1, cache=cache, **SWEEP)
    warm = once(run_figures, jobs=1, cache=cache, **SWEEP)
    t_cold, t_warm = cold.report.wall_seconds, warm.report.wall_seconds
    print(
        "\ncold %.2fs vs warm %.4fs -> %.0fx (hit rate %.0f%%)"
        % (t_cold, t_warm, t_cold / t_warm, 100 * warm.report.cache_hit_rate)
    )
    _write_bench({"cold_wall_seconds": t_cold, "warm_wall_seconds": t_warm})
    assert warm.series == cold.series
    assert warm.report.cache_hit_rate == 1.0
    assert t_warm * 10 <= t_cold
