"""Legacy setup shim.

All metadata lives in pyproject.toml; this file exists so that editable
installs work on hosts without the ``wheel`` package (offline clusters),
via ``pip install -e . --no-build-isolation --no-use-pep517``.
"""

from setuptools import setup

setup()
