"""CLI tests (argparse wiring + trace file round trips through commands)."""

import pytest

from repro.cli import main
from repro.trace.binary_format import decode_trace_file as decode_bin
from repro.trace.events import EventLayer, TraceEvent
from repro.trace.records import TraceFile
from repro.trace.text_format import decode_trace_file as decode_text
from repro.trace.text_format import encode_trace_file


@pytest.fixture
def trace_file(tmp_path):
    tf = TraceFile(
        [
            TraceEvent(
                timestamp=1.0 + i,
                duration=0.01,
                layer=EventLayer.SYSCALL,
                name="SYS_write" if i % 2 else "SYS_read",
                args=(3, "0x800", 4096),
                result=4096,
                pid=99,
                rank=0,
                hostname="n01",
                user="jdoe",
                path="/pfs/secret/data.out",
                nbytes=4096,
            )
            for i in range(6)
        ],
        hostname="n01",
        pid=99,
        rank=0,
        framework="test",
    )
    path = tmp_path / "run.trace"
    path.write_text(encode_trace_file(tf))
    return path


class TestTable2:
    def test_text(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "LANL-Trace" in out and "//TRACE" in out

    def test_markdown(self, capsys):
        assert main(["table2", "--format", "markdown"]) == 0
        assert capsys.readouterr().out.startswith("| Feature |")

    def test_csv(self, capsys):
        assert main(["table2", "--format", "csv"]) == 0
        assert "Feature,LANL-Trace" in capsys.readouterr().out

    def test_extensions_included(self, capsys):
        assert main(["table2", "--include-extensions"]) == 0
        assert "MsgTrace" in capsys.readouterr().out


class TestClassify:
    @pytest.mark.parametrize("name", ["lanl-trace", "tracefs", "ptrace", "msgtrace"])
    def test_known(self, capsys, name):
        assert main(["classify", name]) == 0
        assert "Feature" in capsys.readouterr().out

    def test_unknown(self, capsys):
        assert main(["classify", "dtrace"]) == 2
        assert "unknown framework" in capsys.readouterr().err


class TestRecommend:
    def test_replayable_parallel(self, capsys):
        assert main(["recommend", "--replayable", "--parallel-fs"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0].startswith("//TRACE")
        assert "RECOMMENDED" in out

    def test_no_constraints(self, capsys):
        assert main(["recommend"]) == 0
        assert capsys.readouterr().out.count("RECOMMENDED") == 3


class TestSummarize:
    def test_summary_output(self, capsys, trace_file):
        assert main(["summarize", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "SYS_write" in out and "SYS_read" in out
        assert "6 events" in out

    def test_missing_file(self, capsys, tmp_path):
        assert main(["summarize", str(tmp_path / "absent.trace")]) == 1


class TestConvert:
    def test_text_to_binary_and_back(self, capsys, trace_file, tmp_path):
        binary = tmp_path / "run.bin"
        assert main(["convert", str(trace_file), str(binary)]) == 0
        tf_bin = decode_bin(binary.read_bytes())
        assert len(tf_bin) == 6

        text2 = tmp_path / "run2.trace"
        assert main(["convert", str(binary), str(text2)]) == 0
        tf_text = decode_text(text2.read_text())
        assert tf_text.events == tf_bin.events

    def test_corrupt_input_fails_cleanly(self, capsys, tmp_path):
        bad = tmp_path / "bad.bin"
        bad.write_bytes(b"RTBF\x01\x00garbage")
        assert main(["convert", str(bad), str(tmp_path / "out.trace")]) == 1
        assert "error:" in capsys.readouterr().err


class TestAnonymize:
    def test_randomize(self, capsys, trace_file, tmp_path):
        out_path = tmp_path / "anon.trace"
        assert main(["anonymize", str(trace_file), str(out_path)]) == 0
        anon = decode_text(out_path.read_text())
        assert all("secret" not in (e.path or "") for e in anon)
        assert all(e.user != "jdoe" for e in anon)

    def test_encrypt_requires_key(self, capsys, trace_file, tmp_path):
        rc = main(
            ["anonymize", str(trace_file), str(tmp_path / "x.trace"), "--mode", "encrypt"]
        )
        assert rc == 2

    def test_encrypt_with_key(self, capsys, trace_file, tmp_path):
        out_path = tmp_path / "enc.trace"
        rc = main(
            [
                "anonymize", str(trace_file), str(out_path),
                "--mode", "encrypt", "--key", "00112233445566778899aabbccddeeff",
                "--fields", "user",
            ]
        )
        assert rc == 0
        anon = decode_text(out_path.read_text())
        assert all(e.user.startswith("enc:") for e in anon)
        # unselected fields untouched
        assert all("secret" in e.path for e in anon)
