"""SimProcess syscall interface tests."""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.errors import (
    BadFileDescriptor,
    FileNotFound,
    InvalidArgument,
    NotMounted,
)
from repro.simfs.localfs import LocalFS
from repro.simfs.vfs import O_APPEND, O_CREAT, O_RDONLY, O_RDWR, O_WRONLY, VFS
from repro.simos.process import SEEK_CUR, SEEK_END, SEEK_SET, SimProcess


def make_env(n_nodes=1):
    cluster = Cluster(
        ClusterConfig(n_nodes=n_nodes, clock_skew_stddev=0, clock_drift_stddev=0)
    )
    vfs = VFS(cluster.sim)
    vfs.mount("/", LocalFS(cluster.sim))
    proc = SimProcess(cluster.sim, cluster.node(0), vfs, pid=100)
    return cluster.sim, proc


class TestFdTable:
    def test_open_returns_increasing_fds_from_3(self):
        sim, proc = make_env()

        def body():
            a = yield from proc.open("/a", O_WRONLY | O_CREAT)
            b = yield from proc.open("/b", O_WRONLY | O_CREAT)
            return a, b

        assert sim.run_process(body()) == (3, 4)

    def test_close_invalidates_fd(self):
        sim, proc = make_env()

        def body():
            fd = yield from proc.open("/a", O_WRONLY | O_CREAT)
            yield from proc.close(fd)
            try:
                yield from proc.write(fd, 10)
            except BadFileDescriptor:
                return "EBADF"

        assert sim.run_process(body()) == "EBADF"

    def test_double_close_is_ebadf(self):
        sim, proc = make_env()

        def body():
            fd = yield from proc.open("/a", O_WRONLY | O_CREAT)
            yield from proc.close(fd)
            try:
                yield from proc.close(fd)
            except BadFileDescriptor:
                return "EBADF"

        assert sim.run_process(body()) == "EBADF"


class TestReadWrite:
    def test_write_advances_position(self):
        sim, proc = make_env()

        def body():
            fd = yield from proc.open("/f", O_WRONLY | O_CREAT)
            yield from proc.write(fd, 100)
            yield from proc.write(fd, 100)
            st = yield from proc.fstat(fd)
            return st.size

        assert sim.run_process(body()) == 200

    def test_pwrite_does_not_move_position(self):
        sim, proc = make_env()

        def body():
            fd = yield from proc.open("/f", O_RDWR | O_CREAT)
            yield from proc.pwrite(fd, 100, 1000)
            yield from proc.write(fd, 50)  # at position 0
            st = yield from proc.fstat(fd)
            return st.size

        assert sim.run_process(body()) == 1100

    def test_read_respects_eof_and_position(self):
        sim, proc = make_env()

        def body():
            fd = yield from proc.open("/f", O_RDWR | O_CREAT)
            yield from proc.write(fd, 100)
            yield from proc.lseek(fd, 0, SEEK_SET)
            a = yield from proc.read(fd, 60)
            b = yield from proc.read(fd, 60)
            c = yield from proc.read(fd, 60)
            return a, b, c

        assert sim.run_process(body()) == (60, 40, 0)

    def test_write_to_readonly_fd_rejected(self):
        sim, proc = make_env()

        def body():
            fd = yield from proc.open("/f", O_WRONLY | O_CREAT)
            yield from proc.close(fd)
            fd = yield from proc.open("/f", O_RDONLY)
            try:
                yield from proc.write(fd, 10)
            except BadFileDescriptor:
                return "rejected"

        assert sim.run_process(body()) == "rejected"

    def test_append_mode_writes_at_end(self):
        sim, proc = make_env()

        def body():
            fd = yield from proc.open("/f", O_WRONLY | O_CREAT)
            yield from proc.write(fd, 100)
            yield from proc.close(fd)
            fd = yield from proc.open("/f", O_WRONLY | O_APPEND)
            yield from proc.write(fd, 10)
            st = yield from proc.fstat(fd)
            return st.size

        assert sim.run_process(body()) == 110


class TestLseek:
    def test_whence_modes(self):
        sim, proc = make_env()

        def body():
            fd = yield from proc.open("/f", O_RDWR | O_CREAT)
            yield from proc.write(fd, 100)
            end = yield from proc.lseek(fd, 0, SEEK_END)
            back = yield from proc.lseek(fd, -10, SEEK_CUR)
            absolute = yield from proc.lseek(fd, 5, SEEK_SET)
            return end, back, absolute

        assert sim.run_process(body()) == (100, 90, 5)

    def test_seek_before_start_rejected(self):
        sim, proc = make_env()

        def body():
            fd = yield from proc.open("/f", O_WRONLY | O_CREAT)
            try:
                yield from proc.lseek(fd, -1, SEEK_SET)
            except InvalidArgument:
                return "EINVAL"

        assert sim.run_process(body()) == "EINVAL"


class TestMetadataSyscalls:
    def test_stat_unlink_mkdir_readdir_rename(self):
        sim, proc = make_env()

        def body():
            yield from proc.mkdir("/d")
            fd = yield from proc.open("/d/x", O_WRONLY | O_CREAT)
            yield from proc.close(fd)
            st = yield from proc.stat("/d/x")
            names = yield from proc.readdir("/d")
            yield from proc.rename("/d/x", "/d/y")
            names2 = yield from proc.readdir("/d")
            yield from proc.unlink("/d/y")
            names3 = yield from proc.readdir("/d")
            return st.size, names, names2, names3

        assert sim.run_process(body()) == (0, ["x"], ["y"], [])

    def test_statfs_and_fcntl(self):
        sim, proc = make_env()

        def body():
            out = yield from proc.statfs("/")
            fd = yield from proc.open("/f", O_WRONLY | O_CREAT)
            rc = yield from proc.fcntl(fd, 1)
            return out["files"], rc

        files, rc = sim.run_process(body())
        assert files >= 1 and rc == 0

    def test_stat_missing_file(self):
        sim, proc = make_env()

        def body():
            try:
                yield from proc.stat("/missing")
            except FileNotFound:
                return "ENOENT"

        assert sim.run_process(body()) == "ENOENT"

    def test_unmounted_path_surfaces_as_simos_error(self):
        sim, proc = make_env()
        proc.vfs.unmount("/")

        def body():
            try:
                yield from proc.open("/f", O_WRONLY | O_CREAT)
            except NotMounted:
                return "ENODEV"

        assert sim.run_process(body()) == "ENODEV"


class TestSyscallAccounting:
    def test_syscall_count_increments(self):
        sim, proc = make_env()

        def body():
            fd = yield from proc.open("/f", O_WRONLY | O_CREAT)
            yield from proc.write(fd, 10)
            yield from proc.close(fd)

        sim.run_process(body())
        assert proc.syscall_count == 3

    def test_syscalls_cost_time(self):
        sim, proc = make_env()

        def body():
            t0 = sim.now
            fd = yield from proc.open("/f", O_WRONLY | O_CREAT)
            return sim.now - t0

        assert sim.run_process(body()) > 0
