"""Syscall naming/formatting helper tests."""

from repro.simfs.vfs import O_APPEND, O_CREAT, O_EXCL, O_RDONLY, O_RDWR, O_TRUNC, O_WRONLY
from repro.simos import syscalls as sc


def test_figure1_spellings():
    # These exact names appear in the paper's Figure 1 raw trace.
    assert sc.SYS_OPEN == "SYS_open"
    assert sc.SYS_STATFS == "SYS_statfs64"
    assert sc.SYS_FCNTL == "SYS_fcntl64"
    assert sc.SYS_READ == "SYS_read"


def test_all_syscalls_is_complete():
    for name in dir(sc):
        if name.startswith("SYS_") and name.isupper():
            assert getattr(sc, name) in sc.ALL_SYSCALLS


def test_io_data_subset():
    assert sc.IO_DATA_SYSCALLS <= sc.ALL_SYSCALLS
    assert sc.SYS_WRITE in sc.IO_DATA_SYSCALLS
    assert sc.SYS_OPEN not in sc.IO_DATA_SYSCALLS


class TestFormatOpenFlags:
    def test_access_modes(self):
        assert sc.format_open_flags(O_RDONLY) == "O_RDONLY"
        assert sc.format_open_flags(O_WRONLY) == "O_WRONLY"
        assert sc.format_open_flags(O_RDWR) == "O_RDWR"

    def test_combined_flags(self):
        rendered = sc.format_open_flags(O_WRONLY | O_CREAT | O_TRUNC)
        assert rendered == "O_WRONLY|O_CREAT|O_TRUNC"

    def test_all_bits(self):
        rendered = sc.format_open_flags(O_RDWR | O_CREAT | O_EXCL | O_APPEND)
        for part in ("O_RDWR", "O_CREAT", "O_EXCL", "O_APPEND"):
            assert part in rendered
