"""Interposition mechanism tests: costs, filters, recording, blind spots."""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.errors import FileNotFound
from repro.simfs.localfs import LocalFS
from repro.simfs.vfs import O_CREAT, O_WRONLY, VFS
from repro.simos import syscalls as sc
from repro.simos.interpose import Interposer
from repro.simos.process import SimProcess
from repro.trace.events import EventLayer
from repro.trace.records import TraceFile


def make_env():
    cluster = Cluster(
        ClusterConfig(n_nodes=1, clock_skew_stddev=0, clock_drift_stddev=0)
    )
    vfs = VFS(cluster.sim)
    vfs.mount("/", LocalFS(cluster.sim))
    proc = SimProcess(cluster.sim, cluster.node(0), vfs, pid=7, rank=0)
    return cluster.sim, proc


def test_interposer_validation():
    with pytest.raises(ValueError):
        Interposer(TraceFile(), per_event_cost=-1)
    with pytest.raises(ValueError):
        Interposer(TraceFile(), cpu_factor=0.5)


def test_events_recorded_with_identity_and_typing():
    sim, proc = make_env()
    sink = TraceFile()
    proc.attach(Interposer(sink, per_event_cost=0), EventLayer.SYSCALL)

    def body():
        fd = yield from proc.open("/data.bin", O_WRONLY | O_CREAT)
        yield from proc.write(fd, 4096)
        yield from proc.close(fd)

    sim.run_process(body())
    names = [e.name for e in sink]
    assert names == [sc.SYS_OPEN, sc.SYS_WRITE, sc.SYS_CLOSE]
    open_ev = sink[0]
    assert open_ev.pid == 7 and open_ev.rank == 0
    assert open_ev.path == "/data.bin"
    assert open_ev.result == 3
    write_ev = sink[1]
    assert write_ev.nbytes == 4096 and write_ev.fd == 3 and write_ev.offset == 0
    assert write_ev.result == 4096


def test_per_event_cost_slows_traced_process():
    def run(cost):
        sim, proc = make_env()
        proc.attach(Interposer(TraceFile(), per_event_cost=cost), EventLayer.SYSCALL)

        def body():
            t0 = sim.now
            fd = yield from proc.open("/f", O_WRONLY | O_CREAT)
            yield from proc.close(fd)
            return sim.now - t0

        return sim.run_process(body())

    assert run(1e-3) == pytest.approx(run(0.0) + 2e-3)


def test_cpu_factor_slows_cpu_side_work():
    sim, proc = make_env()
    assert proc.cpu_factor == 1.0
    proc.attach(
        Interposer(TraceFile(), per_event_cost=0, cpu_factor=2.0), EventLayer.SYSCALL
    )
    assert proc.cpu_factor == 2.0


def test_failed_syscalls_recorded_with_errno():
    sim, proc = make_env()
    sink = TraceFile()
    proc.attach(Interposer(sink, per_event_cost=0), EventLayer.SYSCALL)

    def body():
        try:
            yield from proc.stat("/missing")
        except FileNotFound:
            pass

    sim.run_process(body())
    assert sink[0].result == "-1 ENOENT"


def test_filter_drops_records_but_ptrace_still_pays_stop():
    sim, proc = make_env()
    sink = TraceFile()
    ip = Interposer(
        sink, per_event_cost=1e-3, filter=lambda n: n == sc.SYS_WRITE
    )
    proc.attach(ip, EventLayer.SYSCALL)

    def body():
        t0 = sim.now
        fd = yield from proc.open("/f", O_WRONLY | O_CREAT)
        yield from proc.write(fd, 10)
        yield from proc.close(fd)
        return sim.now - t0

    sim.run_process(body())
    assert [e.name for e in sink] == [sc.SYS_WRITE]
    assert ip.events_intercepted == 3  # stop cost paid 3 times
    assert ip.events_recorded == 1


def test_charge_filtered_only_skips_unmatched_costs():
    """Preload interposition never sees calls it did not wrap."""

    def run(charge_filtered_only):
        sim, proc = make_env()
        ip = Interposer(
            TraceFile(),
            per_event_cost=1e-3,
            filter=lambda n: n == sc.SYS_WRITE,
            charge_filtered_only=charge_filtered_only,
        )
        proc.attach(ip, EventLayer.SYSCALL)

        def body():
            t0 = sim.now
            fd = yield from proc.open("/f", O_WRONLY | O_CREAT)
            yield from proc.write(fd, 10)
            yield from proc.close(fd)
            return sim.now - t0

        return sim.run_process(body()), ip

    t_preload, ip_preload = run(True)
    t_ptrace, ip_ptrace = run(False)
    assert t_ptrace == pytest.approx(t_preload + 2e-3)
    assert ip_preload.events_intercepted == 1
    assert ip_ptrace.events_intercepted == 3


def test_multiple_interposers_stack():
    sim, proc = make_env()
    a, b = TraceFile(), TraceFile()
    proc.attach(Interposer(a, per_event_cost=0), EventLayer.SYSCALL)
    proc.attach(Interposer(b, per_event_cost=0), EventLayer.SYSCALL)

    def body():
        fd = yield from proc.open("/f", O_WRONLY | O_CREAT)
        yield from proc.close(fd)

    sim.run_process(body())
    assert len(a) == len(b) == 2


def test_detach_all_stops_recording_and_costs():
    sim, proc = make_env()
    sink = TraceFile()
    proc.attach(Interposer(sink, per_event_cost=1.0), EventLayer.SYSCALL)
    proc.detach_all()

    def body():
        fd = yield from proc.open("/f", O_WRONLY | O_CREAT)
        yield from proc.close(fd)
        return sim.now

    assert sim.run_process(body()) < 0.5
    assert len(sink) == 0


def test_timestamps_use_local_clock():
    cluster = Cluster(ClusterConfig(n_nodes=1, clock_skew_stddev=0, clock_drift_stddev=0, clock_epoch=5000.0))
    vfs = VFS(cluster.sim)
    vfs.mount("/", LocalFS(cluster.sim))
    proc = SimProcess(cluster.sim, cluster.node(0), vfs, pid=1)
    sink = TraceFile()
    proc.attach(Interposer(sink, per_event_cost=0), EventLayer.SYSCALL)

    def body():
        fd = yield from proc.open("/f", O_WRONLY | O_CREAT)
        yield from proc.close(fd)

    cluster.sim.run_process(body())
    assert all(e.timestamp >= 5000.0 for e in sink)


class TestMmapBlindSpot:
    """§4.1.1/§4.3: ptrace-style tracers cannot track memory-mapped I/O."""

    def test_mmap_io_invisible_at_syscall_seam(self):
        sim, proc = make_env()
        sink = TraceFile()
        proc.attach(Interposer(sink, per_event_cost=0), EventLayer.SYSCALL)

        def body():
            fd = yield from proc.open("/f", O_WRONLY | O_CREAT)
            yield from proc.mmap(fd, 1 << 20)
            written = yield from proc.mmap_write(fd, 0, 65536)
            yield from proc.close(fd)
            return written

        assert sim.run_process(body()) == 65536
        names = [e.name for e in sink]
        # The mmap call itself is visible; the store through it is not.
        assert sc.SYS_MMAP in names
        assert sc.SYS_WRITE not in names
        # ...but the file really did grow (the FS saw the write).
        assert proc.vfs.resolve("/f")[0].ns.lookup("f").size == 65536

    def test_mmap_read_also_invisible(self):
        sim, proc = make_env()
        sink = TraceFile()
        proc.attach(Interposer(sink, per_event_cost=0), EventLayer.SYSCALL)

        def body():
            fd = yield from proc.open("/f", O_WRONLY | O_CREAT)
            yield from proc.mmap_write(fd, 0, 1000)
            yield from proc.mmap(fd, 1000)
            n = yield from proc.mmap_read(fd, 0, 1000)
            yield from proc.close(fd)
            return n

        assert sim.run_process(body()) == 1000
        assert sc.SYS_READ not in [e.name for e in sink]
