"""Crash corpus for the strace parser: hostile real-world shapes.

Pins the contract from :mod:`repro.host.parser`: ``parse_strace`` never
raises — every line either becomes an event or a counted warning — and
stitched/interrupted/undecodable lines produce exactly the events and
tallies a forensic user needs to trust the parse.
"""

from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.host.parser import StraceParseResult, parse_strace, parse_strace_output

CORPUS = Path(__file__).parent / "corpus"
CORPUS_FILES = sorted(CORPUS.iterdir())


class TestCorpusNeverRaises:
    @pytest.mark.parametrize("path", CORPUS_FILES, ids=lambda p: p.name)
    def test_parses_without_raising(self, path):
        result = parse_strace(path.read_bytes())
        assert isinstance(result, StraceParseResult)
        assert result.n_lines > 0
        # every event the parse produced is a mapped, timestamped syscall
        for e in result.events:
            assert e.name.startswith("SYS_")
            assert e.timestamp > 0

    @pytest.mark.parametrize("path", CORPUS_FILES, ids=lambda p: p.name)
    def test_text_and_bytes_inputs_agree(self, path):
        raw = path.read_bytes()
        as_bytes = parse_strace(raw)
        as_text = parse_strace(raw.decode("utf-8", errors="backslashreplace"))
        assert [e.name for e in as_text.events] == [e.name for e in as_bytes.events]

    @settings(max_examples=50, deadline=None)
    @given(data=st.binary(max_size=2048))
    def test_arbitrary_bytes_never_raise(self, data):
        parse_strace(data)


class TestCleanCapture:
    def test_all_lines_become_events(self):
        result = parse_strace((CORPUS / "basic.strace").read_bytes())
        assert result.warnings == {}
        assert result.n_events == result.n_lines == 8
        names = [e.name for e in result.events]
        assert names.count("SYS_open") == 2
        assert names.count("SYS_close") == 2
        assert "SYS_fsync" in names

    def test_io_sizes_come_from_results(self):
        events = parse_strace_output((CORPUS / "basic.strace").read_text())
        by_name = {e.name: e for e in reversed(events)}  # first occurrence wins
        assert by_name["SYS_read"].nbytes == 4096
        assert by_name["SYS_pread64"].nbytes == 512
        assert by_name["SYS_write"].nbytes == 2048
        assert by_name["SYS_open"].path == "/data/in.bin"
        assert by_name["SYS_read"].fd == 3


class TestUnfinishedResumed:
    def test_pairs_stitch_across_pids(self):
        result = parse_strace((CORPUS / "unfinished_resumed.strace").read_bytes())
        assert result.n_events == 4
        stitched = [e for e in result.events if e.name in ("SYS_write", "SYS_read")]
        assert len(stitched) == 2
        # the stitched event keeps the *start* timestamp and the result's
        # byte count and duration
        write = next(e for e in stitched if e.name == "SYS_write")
        assert write.timestamp == pytest.approx(1700000001.0001)
        assert write.nbytes == 100
        assert write.duration == pytest.approx(0.0002)
        assert write.pid == 2001

    def test_orphans_are_counted_not_fatal(self):
        result = parse_strace((CORPUS / "unfinished_resumed.strace").read_bytes())
        assert result.warnings == {
            "unmatched_resumed": 1,  # capture started mid-syscall (pid 2003)
            "unresolved_unfinished": 1,  # capture ended mid-syscall (pid 2001)
        }


class TestInterruptedAndNoise:
    def test_errno_and_question_mark_returns(self):
        result = parse_strace((CORPUS / "interrupted.strace").read_bytes())
        assert result.n_events == 2
        failed_open, killed_read = result.events
        assert failed_open.result == "-1 ENOENT"
        assert killed_read.result is None  # `= ?`: no return materialized
        assert killed_read.nbytes is None

    def test_signal_and_exit_markers_are_not_warned(self):
        result = parse_strace((CORPUS / "interrupted.strace").read_bytes())
        # the `--- SIGTERM ---` and `+++ exited +++` lines are expected
        # noise; only exit_group (unmapped) and `<detached ...>` warn
        assert result.warnings == {"unmapped_syscall": 1, "unparsed_line": 1}


class TestGarbage:
    def test_pure_garbage_yields_warnings_only(self):
        result = parse_strace((CORPUS / "garbage.strace").read_bytes())
        assert result.n_events == 0
        assert result.warnings == {"unparsed_line": result.n_lines}


class TestHostileBytes:
    def test_invalid_utf8_lines_survive_escaped(self):
        result = parse_strace((CORPUS / "hostile.bin").read_bytes())
        assert result.n_events == 3  # open, read, close around the junk
        assert result.warnings["undecodable_bytes"] == 3
        assert result.warnings["unparsed_line"] == 1  # the binary junk line
        opened = result.events[0]
        assert opened.name == "SYS_open"
        # the raw path bytes round-trip as backslash escapes
        assert opened.path.startswith("/data/caf")

    def test_str_input_takes_the_text_path(self):
        text = (CORPUS / "basic.strace").read_text()
        assert parse_strace(text).warnings == {}
