"""Host tracing tests: strace parser, in-process interposer, wrapper."""

import os
import tempfile

import pytest

from repro.errors import HostTracingError, StraceNotAvailable
from repro.host.parser import parse_strace_line, parse_strace_output
from repro.host.pyio import PyIOTracer
from repro.host.strace_wrapper import run_under_strace, strace_available

SAMPLE = """\
12345 1699999999.123456 openat(AT_FDCWD, "/etc/hosts", O_RDONLY) = 3 <0.000034>
12345 1699999999.123999 read(3, "127.0.0.1 localhost"..., 4096) = 212 <0.000017>
12345 1699999999.124100 write(1, "hi\\n", 3) = 3 <0.000008>
12345 1699999999.124500 close(3) = 0 <0.000005>
12345 1699999999.124800 stat("/missing", 0x7ffd) = -1 ENOENT (No such file) <0.000012>
12345 1699999999.125000 exit_group(0) = ?
12345 1699999999.125500 clock_gettime(CLOCK_MONOTONIC, {...}) = 0 <0.000002>
"""


class TestParser:
    def test_parses_known_calls(self):
        events = parse_strace_output(SAMPLE)
        names = [e.name for e in events]
        assert names == ["SYS_open", "SYS_read", "SYS_write", "SYS_close", "SYS_stat64"]

    def test_unknown_calls_skipped(self):
        events = parse_strace_output(SAMPLE)
        assert all("clock_gettime" not in e.name for e in events)

    def test_fields_extracted(self):
        events = parse_strace_output(SAMPLE)
        open_ev = events[0]
        assert open_ev.path == "/etc/hosts"
        assert open_ev.result == 3
        assert open_ev.pid == 12345
        assert open_ev.duration == pytest.approx(0.000034)
        read_ev = events[1]
        assert read_ev.fd == 3
        assert read_ev.nbytes == 212

    def test_errno_results(self):
        events = parse_strace_output(SAMPLE)
        stat_ev = [e for e in events if e.name == "SYS_stat64"][0]
        assert stat_ev.result == "-1 ENOENT"

    def test_unfinished_resumed_stitching(self):
        text = (
            "100 5.000000 write(4, \"data\", 1024 <unfinished ...>\n"
            "101 5.000100 read(5, \"x\", 1) = 1 <0.000010>\n"
            "100 5.002000 <... write resumed>) = 1024 <0.002000>\n"
        )
        events = parse_strace_output(text)
        writes = [e for e in events if e.name == "SYS_write"]
        assert len(writes) == 1
        assert writes[0].timestamp == pytest.approx(5.0)
        assert writes[0].duration == pytest.approx(0.002)
        assert writes[0].nbytes == 1024

    def test_single_line_helper(self):
        e = parse_strace_line('1.5 close(7) = 0 <0.001>')
        assert e.name == "SYS_close" and e.fd == 7
        assert parse_strace_line("garbage") is None

    def test_empty_input(self):
        assert parse_strace_output("") == []


class TestPyIOTracer:
    def test_traces_real_file_io(self):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "f.bin")
            with PyIOTracer() as tracer:
                fd = os.open(path, os.O_WRONLY | os.O_CREAT)
                os.write(fd, b"x" * 1000)
                os.close(fd)
                fd = os.open(path, os.O_RDONLY)
                data = os.read(fd, 1000)
                os.close(fd)
            assert data == b"x" * 1000
        names = [e.name for e in tracer.trace]
        assert names == [
            "SYS_open", "SYS_write", "SYS_close",
            "SYS_open", "SYS_read", "SYS_close",
        ]
        writes = [e for e in tracer.trace if e.name == "SYS_write"]
        assert writes[0].nbytes == 1000
        assert writes[0].path == path
        assert writes[0].duration >= 0

    def test_restores_os_functions_on_exit(self):
        before = os.write
        with PyIOTracer():
            assert os.write is not before
        assert os.write is before

    def test_restores_on_exception(self):
        before = os.open
        with pytest.raises(RuntimeError):
            with PyIOTracer():
                raise RuntimeError("inside")
        assert os.open is before

    def test_not_reentrant(self):
        with PyIOTracer() as t:
            with pytest.raises(HostTracingError):
                t.__enter__()

    def test_errors_recorded_and_reraised(self):
        with PyIOTracer() as tracer:
            with pytest.raises(OSError):
                os.open("/definitely/not/here/xyz", os.O_RDONLY)
        errs = [e for e in tracer.trace if str(e.result).startswith("-1")]
        assert len(errs) == 1

    def test_trace_feeds_library_tools(self):
        """The point of host tracing: downstream tools just work."""
        from repro.analysis.summary import summarize_calls
        from repro.trace.text_format import encode_trace_file

        with tempfile.TemporaryDirectory() as tmp:
            with PyIOTracer() as tracer:
                fd = os.open(os.path.join(tmp, "f"), os.O_WRONLY | os.O_CREAT)
                os.write(fd, b"abc")
                os.close(fd)
        summary = summarize_calls(tracer.trace.events)
        assert summary["SYS_write"].n_calls == 1
        text = encode_trace_file(tracer.trace)
        assert "SYS_write" in text


class TestStraceWrapper:
    def test_empty_command_rejected(self):
        if strace_available():
            with pytest.raises(HostTracingError):
                run_under_strace([])
        else:
            with pytest.raises(StraceNotAvailable):
                run_under_strace([])

    @pytest.mark.skipif(not strace_available(), reason="strace not installed")
    def test_real_strace_round_trip(self):
        result = run_under_strace(
            ["python3", "-c", "open('/etc/hostname').read()"]
        )
        assert result.returncode == 0
        names = {e.name for e in result.bundle.all_events()}
        assert "SYS_open" in names

    @pytest.mark.skipif(strace_available(), reason="strace IS installed")
    def test_missing_strace_raises_cleanly(self):
        with pytest.raises(StraceNotAvailable):
            run_under_strace(["true"])


class TestWrapperHelpers:
    def test_strace_available_is_boolean(self):
        assert isinstance(strace_available(), bool)

    def test_host_trace_result_shape(self):
        from repro.host.strace_wrapper import HostTraceResult
        from repro.trace.records import TraceBundle

        r = HostTraceResult(returncode=0, bundle=TraceBundle(), raw_output="")
        assert r.returncode == 0
        assert r.bundle.total_events() == 0
