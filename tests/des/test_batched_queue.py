"""Direct tests of the calendar-bucket :class:`EventQueue` and the
batched fast paths built on it.

The queue contract under test is the classic ``(time, sequence)``
discipline: distinct times drain in heap order, same-time events drain
in global insertion order (FIFO *is* the sequence), and the in-bucket
cursor makes partial drains — including an exception thrown mid-batch —
resumable without losing or reordering events.
"""

import pytest

from repro.des import Simulator, Timeout
from repro.des.queue import EventQueue
from repro.errors import SimulationError


def drain(queue):
    """Pop everything, returning the (time, args) history."""
    out = []
    while queue:
        t, cb, args = queue.pop()
        out.append((t, args))
        cb(*args)
    return out


class TestEventQueueOrdering:
    def test_distinct_times_drain_in_heap_order(self):
        q = EventQueue()
        seen = []
        for t in (3.0, 1.0, 2.0, 0.5):
            q.push(t, seen.append, (t,))
        assert [t for t, _args in drain(q)] == [0.5, 1.0, 2.0, 3.0]
        assert seen == [0.5, 1.0, 2.0, 3.0]

    def test_same_time_events_are_fifo(self):
        q = EventQueue()
        seen = []
        for i in range(32):
            q.push(1.0, seen.append, (i,))
        drain(q)
        assert seen == list(range(32))

    def test_interleaved_times_preserve_insertion_within_each(self):
        q = EventQueue()
        seen = []
        for i in range(12):
            q.push(float(i % 3), seen.append, ((i % 3, i),))
        drain(q)
        assert seen == sorted(seen)  # (time, insertion-index) lexicographic

    def test_len_and_bool_track_pushes_and_pops(self):
        q = EventQueue()
        assert len(q) == 0 and not q
        q.push(1.0, lambda: None)
        q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        assert len(q) == 3 and q
        q.pop()
        assert len(q) == 2
        drain(q)
        assert len(q) == 0 and not q

    def test_peek_time_does_not_consume(self):
        q = EventQueue()
        q.push(2.0, lambda: None)
        q.push(1.0, lambda: None)
        assert q.peek_time() == 1.0
        assert q.peek_time() == 1.0
        assert len(q) == 2
        t, _cb, _args = q.pop()
        assert t == 1.0
        assert q.peek_time() == 2.0

    def test_push_during_pop_drain_lands_after_queued_same_time(self):
        # A callback scheduling "now" must fire after everything already
        # queued at that time — the old higher-sequence-number behaviour.
        q = EventQueue()
        seen = []

        def first():
            seen.append("first")
            q.push(1.0, seen.append, ("injected",))

        q.push(1.0, first)
        q.push(1.0, seen.append, ("second",))
        drain(q)
        assert seen == ["first", "second", "injected"]


class TestBucketClaiming:
    def test_claim_and_full_release_retires_bucket(self):
        q = EventQueue()
        seen = []
        for i in range(3):
            q.push(1.0, seen.append, (i,))
        q.push(2.0, seen.append, ("later",))
        t, bucket = q.claim_bucket()
        assert t == 1.0
        cursor = bucket[0]
        while cursor < len(bucket):
            cb, args = bucket[cursor], bucket[cursor + 1]
            cursor += 2
            cb(*args)
        q.release_bucket(t, bucket, cursor)
        assert seen == [0, 1, 2]
        assert len(q) == 1
        assert q.peek_time() == 2.0

    def test_partial_release_resumes_where_it_stopped(self):
        q = EventQueue()
        seen = []
        for i in range(4):
            q.push(1.0, seen.append, (i,))
        t, bucket = q.claim_bucket()
        cursor = bucket[0]
        for _ in range(2):  # drain only half the bucket
            cb, args = bucket[cursor], bucket[cursor + 1]
            cursor += 2
            cb(*args)
        q.release_bucket(t, bucket, cursor)
        assert seen == [0, 1]
        assert len(q) == 2
        drain(q)
        assert seen == [0, 1, 2, 3]

    def test_same_time_push_lands_in_claimed_bucket(self):
        q = EventQueue()
        q.push(1.0, lambda: None)
        t, bucket = q.claim_bucket()
        before = len(bucket)
        q.push(1.0, lambda: None)
        assert len(bucket) == before + 2  # cb + args slots, same live list


class TestBareNumberSleeps:
    def test_float_and_int_yields_sleep_like_timeouts(self):
        sim = Simulator()
        stamps = []

        def body():
            yield 1.5
            stamps.append(sim.now)
            yield 2  # bare int
            stamps.append(sim.now)
            yield Timeout(0.5)
            stamps.append(sim.now)

        sim.run_process(body())
        assert stamps == [pytest.approx(1.5), pytest.approx(3.5), pytest.approx(4.0)]

    def test_bare_zero_yield_is_a_zero_delay_hop(self):
        sim = Simulator()
        order = []

        def hopper(tag):
            order.append((tag, "before"))
            yield 0
            order.append((tag, "after"))

        sim.spawn(hopper("a"))
        sim.spawn(hopper("b"))
        sim.run()
        assert sim.now == 0.0
        assert order == [
            ("a", "before"),
            ("b", "before"),
            ("a", "after"),
            ("b", "after"),
        ]

    def test_negative_bare_yield_fails_the_process(self):
        sim = Simulator()

        def body():
            yield -0.5

        with pytest.raises(SimulationError):
            sim.run_process(body())

    def test_bare_yields_match_timeout_yields_exactly(self):
        def workload(sim, bare):
            trace = []

            def body(delays):
                for d in delays:
                    yield d if bare else Timeout(d)
                    trace.append((sim.now, sim.events_executed))

            for k in range(3):
                sim.spawn(body([0.25 * (k + 1)] * 4))
            sim.run()
            return trace

        a, b = Simulator(), Simulator()
        assert workload(a, bare=True) == workload(b, bare=False)
        assert a.events_executed == b.events_executed


class TestMidBatchExceptions:
    def test_exception_mid_batch_leaves_queue_consistent(self):
        # Three same-time processes; the middle one explodes inside a
        # run_fast() batch drain.  The queue must stay consistent so a
        # plain run() afterwards finishes the survivors.
        sim = Simulator()
        seen = []

        def ok(tag):
            yield 1.0
            seen.append(tag)

        def boom():
            yield 1.0
            raise RuntimeError("mid-batch")

        sim.spawn(ok("a"))
        proc = sim.spawn(boom(), name="boom")
        sim.spawn(ok("b"))
        sim.run_fast()
        assert proc.completion.done and not proc.completion.ok
        assert seen == ["a", "b"]
        assert sim.pending_events == 0
        assert sim.now == pytest.approx(1.0)

    def test_run_after_mid_batch_failure_drains_remainder(self):
        sim = Simulator()
        seen = []

        def watcher():
            # An unfailed daemon observing later times proves the heap /
            # bucket bookkeeping survived the earlier in-bucket failure.
            for _ in range(3):
                yield 1.0
                seen.append(sim.now)

        def boom():
            yield 1.0
            raise ValueError("kaboom")

        sim.spawn(watcher(), daemon=True)
        proc = sim.spawn(boom(), name="boom")
        sim.run_fast()
        assert proc.completion.done and not proc.completion.ok
        assert isinstance(proc.completion.exception, ValueError)
        assert seen == [pytest.approx(t) for t in (1.0, 2.0, 3.0)]

    def test_run_fast_until_peeks_without_popping_boundary(self):
        sim = Simulator()
        seen = []

        def body():
            for _ in range(4):
                yield 1.0
                seen.append(sim.now)

        sim.spawn(body(), daemon=True)
        assert sim.run_fast(until=2.5) == 2.5
        assert seen == [pytest.approx(1.0), pytest.approx(2.0)]
        # The 3.0 event was peeked, not popped: still pending, runs next.
        assert sim.pending_events == 1
        assert sim.run_fast() == pytest.approx(4.0)
        assert seen[-1] == pytest.approx(4.0)
