"""Property-based tests for the DES kernel: determinism and invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.des import Resource, Simulator, Store, Timeout
from repro.errors import SimulationError


@st.composite
def schedules(draw):
    """A random multi-process workload: per-process lists of step delays."""
    n_procs = draw(st.integers(1, 6))
    return [
        draw(st.lists(st.floats(0.0, 2.0, allow_nan=False), min_size=1, max_size=8))
        for _ in range(n_procs)
    ]


def _run_schedule(schedule, capacity):
    """Run the workload through a shared resource; return its full history."""
    sim = Simulator(seed=1)
    res = Resource(sim, capacity=capacity)
    history = []

    def worker(name, delays):
        for i, d in enumerate(delays):
            yield Timeout(d)
            yield res.acquire()
            history.append((sim.now, name, i, "acq"))
            yield Timeout(0.1)
            res.release()
            history.append((sim.now, name, i, "rel"))

    for i, delays in enumerate(schedule):
        sim.spawn(worker("p%d" % i, delays), name="p%d" % i)
    sim.run()
    return history, sim.now, sim.events_executed


class TestDeterminism:
    @given(schedule=schedules(), capacity=st.integers(1, 3))
    @settings(max_examples=50, deadline=None)
    def test_identical_runs_identical_histories(self, schedule, capacity):
        a = _run_schedule(schedule, capacity)
        b = _run_schedule(schedule, capacity)
        assert a == b

    @given(schedule=schedules())
    @settings(max_examples=40, deadline=None)
    def test_time_never_goes_backwards(self, schedule):
        history, final, _ = _run_schedule(schedule, capacity=1)
        times = [h[0] for h in history]
        assert times == sorted(times)
        assert not history or final >= times[-1]


class TestResourceInvariants:
    @given(
        schedule=schedules(),
        capacity=st.integers(1, 3),
    )
    @settings(max_examples=50, deadline=None)
    def test_capacity_never_exceeded(self, schedule, capacity):
        sim = Simulator()
        res = Resource(sim, capacity=capacity)
        peak = [0]

        def worker(delays):
            for d in delays:
                yield Timeout(d)
                yield res.acquire()
                peak[0] = max(peak[0], res.in_use)
                assert res.in_use <= capacity
                yield Timeout(0.05)
                res.release()

        for i, delays in enumerate(schedule):
            sim.spawn(worker(delays), name="w%d" % i)
        sim.run()
        assert res.in_use == 0  # all released at the end
        assert 0 < peak[0] <= capacity

    @given(n_items=st.integers(0, 20), n_consumers=st.integers(1, 5))
    @settings(max_examples=40, deadline=None)
    def test_store_conserves_items(self, n_items, n_consumers):
        sim = Simulator()
        store = Store(sim)
        received = []

        def consumer():
            while True:
                item = yield store.get()
                if item is None:
                    return
                received.append(item)

        def producer():
            for i in range(n_items):
                yield Timeout(0.01)
                store.put(i)
            for _ in range(n_consumers):
                store.put(None)  # poison pills
            yield Timeout(0)

        for c in range(n_consumers):
            sim.spawn(consumer(), name="c%d" % c)
        sim.spawn(producer(), name="p")
        sim.run()
        assert sorted(received) == list(range(n_items))


class TestRandomStreamProperties:
    @given(names=st.lists(st.text(min_size=1, max_size=10), min_size=2, max_size=5, unique=True))
    @settings(max_examples=30, deadline=None)
    def test_streams_order_independent(self, names):
        import numpy as np

        sim1, sim2 = Simulator(seed=9), Simulator(seed=9)
        draws1 = {n: sim1.random.stream(n).random(3).tolist() for n in names}
        draws2 = {
            n: sim2.random.stream(n).random(3).tolist() for n in reversed(names)
        }
        assert draws1 == draws2
