"""Unit tests for Resource (FIFO server pools) and Store (channels)."""

import pytest

from repro.des import Resource, Simulator, Store, Timeout
from repro.errors import SimulationError


def test_resource_capacity_one_serializes():
    sim = Simulator()
    res = Resource(sim, capacity=1, name="disk")
    done = []

    def worker(name):
        yield res.acquire()
        try:
            yield Timeout(1.0)
        finally:
            res.release()
        done.append((sim.now, name))

    sim.spawn(worker("a"), name="a")
    sim.spawn(worker("b"), name="b")
    sim.spawn(worker("c"), name="c")
    sim.run()
    assert done == [(1.0, "a"), (2.0, "b"), (3.0, "c")]


def test_resource_capacity_two_overlaps():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    done = []

    def worker(name):
        yield from res.serve(1.0)
        done.append((sim.now, name))

    for name in "abcd":
        sim.spawn(worker(name), name=name)
    sim.run()
    assert done == [(1.0, "a"), (1.0, "b"), (2.0, "c"), (2.0, "d")]


def test_resource_fifo_ordering():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def worker(name, arrive):
        yield Timeout(arrive)
        yield res.acquire()
        order.append(name)
        yield Timeout(0.5)
        res.release()

    sim.spawn(worker("late", 0.2), name="late")
    sim.spawn(worker("early", 0.1), name="early")
    sim.spawn(worker("first", 0.0), name="first")
    sim.run()
    assert order == ["first", "early", "late"]


def test_release_without_acquire_raises():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    with pytest.raises(SimulationError):
        res.release()


def test_resource_capacity_validation():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Resource(sim, capacity=0)


def test_serve_releases_on_exception():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def failing():
        try:
            yield res.acquire()
            raise RuntimeError("mid-hold")
        finally:
            res.release()

    def after():
        yield Timeout(0.1)
        yield res.acquire()
        res.release()
        return "got it"

    sim.spawn(failing(), name="failing")
    assert sim.run_process(after(), name="after") == "got it"


def test_utilization_accounting():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def worker():
        yield from res.serve(2.0)
        yield Timeout(2.0)  # idle period

    sim.run_process(worker())
    assert res.utilization() == pytest.approx(0.5)
    assert res.total_acquires == 1


def test_store_put_then_get():
    sim = Simulator()
    store = Store(sim)
    store.put("x")
    store.put("y")

    def getter():
        a = yield store.get()
        b = yield store.get()
        return [a, b]

    assert sim.run_process(getter()) == ["x", "y"]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)

    def producer():
        yield Timeout(3.0)
        store.put("late-item")

    def consumer():
        item = yield store.get()
        return (sim.now, item)

    sim.spawn(producer(), name="producer")
    assert sim.run_process(consumer()) == (3.0, "late-item")


def test_store_getters_served_in_order():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer(name):
        item = yield store.get()
        got.append((name, item))

    def producer():
        yield Timeout(1.0)
        store.put(1)
        store.put(2)

    sim.spawn(consumer("first"), name="c1")
    sim.spawn(consumer("second"), name="c2")
    sim.spawn(producer(), name="p")
    sim.run()
    assert got == [("first", 1), ("second", 2)]


def test_store_try_get():
    sim = Simulator()
    store = Store(sim)
    assert store.try_get() is None
    store.put(9)
    assert len(store) == 1
    assert store.try_get() == 9
    assert store.try_get() is None


def test_random_streams_independent_and_stable():
    sim1 = Simulator(seed=42)
    sim2 = Simulator(seed=42)
    a1 = sim1.random.stream("disk").random(5)
    # Interleave another stream in sim2 before asking for "disk":
    _ = sim2.random.stream("network").random(3)
    a2 = sim2.random.stream("disk").random(5)
    assert a1 == pytest.approx(a2)


def test_random_streams_differ_across_seeds():
    import numpy as np

    s1 = Simulator(seed=1).random.stream("x").random(4)
    s2 = Simulator(seed=2).random.stream("x").random(4)
    assert not np.allclose(s1, s2)
