"""Deadlock reports: wait reasons, ring-buffer dump, enable-telemetry hint."""

import pytest

from repro.des.simulator import Simulator
from repro.errors import DeadlockError
from repro.obs.tracepoints import TelemetryConfig, session


def _deadlocking_sim():
    """A sim with some real activity, then a process stuck forever."""
    sim = Simulator(seed=3)

    def worker():
        for _ in range(80):
            yield sim.timeout(0.01)

    def stuck():
        yield sim.completion("never-signalled")

    def idle_daemon():
        yield sim.completion("daemon-idle")

    sim.spawn(worker(), name="worker")
    sim.spawn(stuck(), name="stuck-proc")
    sim.spawn(idle_daemon(), name="heartbeat", daemon=True)
    return sim


class TestWithTelemetry:
    def test_report_dumps_ring_and_wait_reasons(self):
        sim = _deadlocking_sim()
        with session(TelemetryConfig(ring_size=50)):
            with pytest.raises(DeadlockError) as err:
                sim.run()
        msg = str(err.value)
        assert "last 50 dispatched events (oldest first):" in msg
        assert msg.count("t=") == 50
        assert "blocked processes:" in msg
        assert "stuck-proc" in msg and "never-signalled" in msg
        # Daemons appear in the wait-reason dump, marked as such...
        assert "heartbeat [daemon]" in msg
        # ...but never among the culprits.
        assert not any("heartbeat" in b for b in err.value.blocked)

    def test_ring_smaller_than_history_keeps_newest(self):
        sim = _deadlocking_sim()
        with session(TelemetryConfig(ring_size=5)):
            with pytest.raises(DeadlockError) as err:
                sim.run()
        assert len(err.value.recent_events) == 5

    def test_no_hint_when_telemetry_was_on(self):
        sim = _deadlocking_sim()
        with session():
            with pytest.raises(DeadlockError) as err:
                sim.run()
        assert "enable telemetry" not in str(err.value)


class TestFaultKilledCollective:
    """A fault-killed rank mid-collective leaves its peers blocked forever;
    the deadlock dump must name every blocked rank and its wait reason."""

    def _crash_mid_barrier(self):
        from repro.faults import FaultPlane, FaultSchedule, NodeCrash
        from repro.harness.figures import paper_testbed
        from repro.harness.testbed import build_testbed
        from repro.simmpi.runtime import mpirun

        tb = build_testbed(paper_testbed(seed=0, nprocs=4), seed=0)
        plane = FaultPlane(
            FaultSchedule.of(NodeCrash(at=0.05, node=1), name="kill-mid-collective")
        ).install(tb.cluster, tb.vfs)

        def app(mpi, args):
            # Rank 1 is still computing when the crash fires at t=0.05;
            # everyone else is already parked in the barrier.
            if mpi.rank == 1:
                yield mpi.sim.timeout(0.2)
            yield from mpi.barrier()

        job = mpirun(tb.cluster, tb.vfs, app, nprocs=4, run=False)
        with pytest.raises(DeadlockError) as err:
            tb.cluster.sim.run_fast()
        return err.value, job, plane

    def test_every_surviving_rank_named_with_wait_reason(self):
        err, job, _ = self._crash_mid_barrier()
        for rank in (0, 2, 3):
            entry = next(b for b in err.blocked if "rank%d" % rank in b)
            assert "waiting on" in entry
            assert "collective:barrier" in entry
        # The crashed rank is dead, not blocked — it must not be a culprit.
        assert not any("rank1" in b for b in err.blocked)

    def test_crashed_rank_completion_carries_the_root_cause(self):
        from repro.errors import NodeCrashed

        err, job, plane = self._crash_mid_barrier()
        comp = job.des_processes[1].completion
        assert comp.done
        assert isinstance(comp.exception, NodeCrashed)
        assert plane.counters.get("node.crashes") == 1


class TestWithoutTelemetry:
    def test_report_hints_at_telemetry(self):
        sim = _deadlocking_sim()
        with pytest.raises(DeadlockError) as err:
            sim.run()
        msg = str(err.value)
        assert err.value.recent_events is None
        assert "enable telemetry" in msg
        assert "--telemetry" in msg
        assert "blocked processes:" in msg

    def test_blocked_list_format_unchanged(self):
        sim = _deadlocking_sim()
        with pytest.raises(DeadlockError) as err:
            sim.run()
        assert any("stuck-proc" in b for b in err.value.blocked)
        assert any("waiting on" in b for b in err.value.blocked)
