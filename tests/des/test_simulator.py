"""Unit tests for the DES kernel run loop, processes, and commands."""

import pytest

from repro.des import AllOf, AnyOf, Completion, Simulator, Timeout
from repro.errors import DeadlockError, ProcessError, SimTimeError, SimulationError


def test_empty_simulation_runs_to_time_zero():
    sim = Simulator()
    assert sim.run() == 0.0
    assert sim.now == 0.0


def test_timeout_advances_time():
    sim = Simulator()

    def body():
        yield Timeout(1.5)
        yield Timeout(0.5)
        return sim.now

    result = sim.run_process(body())
    assert result == pytest.approx(2.0)
    assert sim.now == pytest.approx(2.0)


def test_timeout_carries_value():
    sim = Simulator()

    def body():
        got = yield Timeout(1.0, value="wakeup")
        return got

    assert sim.run_process(body()) == "wakeup"


def test_negative_timeout_rejected():
    with pytest.raises(SimulationError):
        Timeout(-1.0)


def test_process_return_value_via_completion():
    sim = Simulator()

    def body():
        yield Timeout(1)
        return 42

    proc = sim.spawn(body(), name="answer")
    sim.run()
    assert proc.completion.value == 42
    assert not proc.alive


def test_spawn_requires_generator():
    sim = Simulator()

    def not_a_generator():
        return 1

    with pytest.raises(ProcessError):
        sim.spawn(not_a_generator)  # passed the function itself
    with pytest.raises(ProcessError):
        sim.spawn(not_a_generator())


def test_processes_interleave_deterministically():
    sim = Simulator()
    log = []

    def worker(name, delay):
        yield Timeout(delay)
        log.append((sim.now, name))
        yield Timeout(delay)
        log.append((sim.now, name))

    sim.spawn(worker("a", 1.0), name="a")
    sim.spawn(worker("b", 1.5), name="b")
    sim.run()
    assert log == [(1.0, "a"), (1.5, "b"), (2.0, "a"), (3.0, "b")]


def test_simultaneous_events_fire_in_spawn_order():
    sim = Simulator()
    log = []

    def worker(name):
        yield Timeout(1.0)
        log.append(name)

    for name in ["first", "second", "third"]:
        sim.spawn(worker(name), name=name)
    sim.run()
    assert log == ["first", "second", "third"]


def test_wait_on_completion_receives_value():
    sim = Simulator()
    comp = sim.completion("door")

    def opener():
        yield Timeout(2.0)
        comp.succeed("opened")

    def waiter():
        value = yield comp
        return (sim.now, value)

    sim.spawn(opener(), name="opener")
    result = sim.run_process(waiter(), name="waiter")
    assert result == (2.0, "opened")


def test_wait_on_already_settled_completion():
    sim = Simulator()
    comp = sim.completion()
    comp.succeed(7)

    def waiter():
        value = yield comp
        return value

    assert sim.run_process(waiter()) == 7


def test_completion_failure_is_thrown_into_waiter():
    sim = Simulator()
    comp = sim.completion()

    class Boom(Exception):
        pass

    def failer():
        yield Timeout(1.0)
        comp.fail(Boom("bang"))

    def waiter():
        try:
            yield comp
        except Boom:
            return "caught"
        return "not caught"

    sim.spawn(failer(), name="failer")
    assert sim.run_process(waiter()) == "caught"


def test_completion_cannot_settle_twice():
    sim = Simulator()
    comp = sim.completion()
    comp.succeed(1)
    with pytest.raises(SimulationError):
        comp.succeed(2)
    with pytest.raises(SimulationError):
        comp.fail(ValueError("late"))


def test_completion_value_while_pending_raises():
    sim = Simulator()
    comp = sim.completion("pending")
    with pytest.raises(SimulationError):
        _ = comp.value


def test_fail_requires_exception_instance():
    sim = Simulator()
    comp = sim.completion()
    with pytest.raises(TypeError):
        comp.fail("not an exception")


def test_all_of_waits_for_everything():
    sim = Simulator()
    comps = [sim.completion(str(i)) for i in range(3)]

    def settler(i, delay):
        yield Timeout(delay)
        comps[i].succeed(i * 10)

    def waiter():
        values = yield AllOf(comps)
        return (sim.now, values)

    sim.spawn(settler(0, 3.0), name="s0")
    sim.spawn(settler(1, 1.0), name="s1")
    sim.spawn(settler(2, 2.0), name="s2")
    when, values = sim.run_process(waiter())
    assert when == 3.0
    assert values == [0, 10, 20]  # input order, not settle order


def test_all_of_empty_resumes_immediately():
    sim = Simulator()

    def waiter():
        values = yield AllOf([])
        return values

    assert sim.run_process(waiter()) == []


def test_any_of_returns_first_settler():
    sim = Simulator()
    comps = [sim.completion(str(i)) for i in range(3)]

    def settler(i, delay):
        yield Timeout(delay)
        comps[i].succeed("v%d" % i)

    def waiter():
        index, value = yield AnyOf(comps)
        return (sim.now, index, value)

    sim.spawn(settler(0, 3.0), name="s0")
    sim.spawn(settler(1, 1.0), name="s1")
    sim.spawn(settler(2, 2.0), name="s2")
    assert sim.run_process(waiter()) == (1.0, 1, "v1")


def test_any_of_empty_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        AnyOf([])


def test_deadlock_detection_names_blocked_process():
    sim = Simulator()
    comp = sim.completion("never")

    def stuck():
        yield comp

    sim.spawn(stuck(), name="stuck-proc")
    with pytest.raises(DeadlockError) as err:
        sim.run()
    assert any("stuck-proc" in b for b in err.value.blocked)


def test_daemon_processes_do_not_deadlock():
    sim = Simulator()
    comp = sim.completion("never")

    def server():
        yield comp

    def client():
        yield Timeout(1.0)
        return "done"

    sim.spawn(server(), name="server", daemon=True)
    assert sim.run_process(client()) == "done"


def test_run_until_stops_early():
    sim = Simulator()

    def body():
        yield Timeout(10.0)

    sim.spawn(body(), name="long")
    final = sim.run(until=3.0)
    assert final == 3.0
    assert sim.live_processes  # still pending


def test_yield_from_composes_subactivities():
    sim = Simulator()

    def sub(duration):
        yield Timeout(duration)
        return duration * 2

    def body():
        a = yield from sub(1.0)
        b = yield from sub(2.0)
        return a + b

    assert sim.run_process(body()) == 6.0
    assert sim.now == 3.0


def test_yielding_garbage_fails_the_process():
    sim = Simulator()

    def body():
        yield "nonsense"

    proc = sim.spawn(body(), name="bad")
    sim.run()
    assert isinstance(proc.completion.exception, ProcessError)


def test_process_body_exception_fails_completion():
    sim = Simulator()

    def body():
        yield Timeout(1.0)
        raise ValueError("inside")

    proc = sim.spawn(body(), name="raiser")
    sim.run()
    assert isinstance(proc.completion.exception, ValueError)


def test_joining_another_process():
    sim = Simulator()

    def child():
        yield Timeout(5.0)
        return "child-result"

    def parent():
        proc = sim.spawn(child(), name="child")
        value = yield proc.completion
        return (sim.now, value)

    assert sim.run_process(parent()) == (5.0, "child-result")


def test_interrupt_throws_into_process():
    sim = Simulator()
    comp = sim.completion("never")

    def body():
        try:
            yield comp
        except ProcessError:
            return "interrupted"

    def killer(proc):
        yield Timeout(1.0)
        proc.interrupt()

    proc = sim.spawn(body(), name="victim")
    sim.spawn(killer(proc), name="killer")
    sim.run()
    assert proc.completion.value == "interrupted"


def test_schedule_into_past_rejected():
    sim = Simulator()
    with pytest.raises(SimTimeError):
        sim.schedule(-0.1, lambda: None)


def test_events_executed_is_deterministic():
    def build_and_run():
        sim = Simulator(seed=7)

        def worker(n):
            for _ in range(n):
                yield Timeout(0.1)

        for i in range(5):
            sim.spawn(worker(i + 1), name="w%d" % i)
        sim.run()
        return sim.events_executed, sim.now

    assert build_and_run() == build_and_run()


def test_pending_events_and_is_idle():
    sim = Simulator()
    assert sim.is_idle
    assert sim.pending_events == 0

    def body():
        yield Timeout(1.0)
        yield Timeout(1.0)

    sim.spawn(body())
    assert sim.pending_events == 1  # the spawn's first step
    assert not sim.is_idle
    sim.run()
    assert sim.is_idle
    assert sim.pending_events == 0


def test_run_until_leaves_pending_events_queryable():
    sim = Simulator()
    log = []

    def body():
        yield Timeout(1.0)
        log.append("early")
        yield Timeout(9.0)
        log.append("late")
        return sim.now

    proc = sim.spawn(body(), name="two-phase")
    assert sim.run(until=5.0) == 5.0
    assert sim.now == 5.0
    assert log == ["early"]
    assert sim.pending_events == 1  # the 10.0s resume is still queued
    assert not sim.is_idle
    assert proc.alive


def test_run_resumes_after_until_stop():
    sim = Simulator()

    def body():
        yield Timeout(1.0)
        yield Timeout(9.0)
        return sim.now

    proc = sim.spawn(body(), name="two-phase")
    sim.run(until=5.0)
    # A second run() picks the queued event back up and drains to the end.
    assert sim.run() == pytest.approx(10.0)
    assert sim.is_idle
    assert proc.completion.value == pytest.approx(10.0)


def test_run_fast_matches_run_exactly():
    def history(fast):
        sim = Simulator(seed=3)
        log = []

        def worker(n, dt):
            for i in range(n):
                yield Timeout(dt)
                log.append((sim.now, n, i))

        for i in range(4):
            sim.spawn(worker(i + 1, 0.5 + 0.25 * i), name="w%d" % i)
        end = sim.run_fast() if fast else sim.run()
        return log, end, sim.events_executed

    assert history(fast=True) == history(fast=False)


def test_run_fast_honors_until_and_resumes():
    sim = Simulator()

    def body():
        yield Timeout(1.0)
        yield Timeout(9.0)
        return sim.now

    proc = sim.spawn(body())
    assert sim.run_fast(until=5.0) == 5.0
    assert sim.pending_events == 1
    assert sim.run_fast() == pytest.approx(10.0)
    assert proc.completion.value == pytest.approx(10.0)


def test_run_fast_still_checks_warmup_window():
    sim = Simulator()
    # Schedule an event, advance time past it manually, then corrupt the
    # clock: the warm-up window must still catch backwards time.
    sim._queue.push(1.0, lambda: None, ())
    sim._now = 2.0
    with pytest.raises(SimTimeError):
        sim.run_fast(check_first=10)


def test_run_fast_skips_check_after_window():
    sim = Simulator()
    for i in range(5):
        sim._queue.push(float(i), lambda: None, ())
    sim._now = 100.0  # all events are "in the past"
    # check_first=0 disables the backwards-time check entirely: the loop
    # must dispatch anyway (and rewind now), demonstrating the check is
    # really gone from the hot path.
    assert sim.run_fast(check_first=0) == 4.0
    assert sim.events_executed == 5


def test_wall_time_rates_exposed_after_run():
    sim = Simulator()

    def body():
        for _ in range(100):
            yield Timeout(0.5)

    sim.spawn(body())
    assert sim.wall_seconds == 0.0
    assert sim.events_per_sec == 0.0
    assert sim.wall_time_per_sim_second == 0.0
    sim.run()
    assert sim.wall_seconds > 0.0
    assert sim.events_per_sec > 0.0
    assert sim.wall_time_per_sim_second > 0.0
    assert sim.events_per_sec == pytest.approx(
        sim.events_executed / sim.wall_seconds
    )
    assert sim.wall_time_per_sim_second == pytest.approx(
        sim.wall_seconds / sim.now
    )


def test_wall_time_accumulates_across_runs():
    sim = Simulator()

    def body():
        yield Timeout(1.0)
        yield Timeout(9.0)

    sim.spawn(body())
    sim.run_fast(until=5.0)
    first = sim.wall_seconds
    assert first > 0.0
    sim.run_fast()
    assert sim.wall_seconds > first


def test_events_per_sec_clamps_sub_resolution_wall_time():
    # Regression: a run whose events all dispatch inside one timer tick
    # (wall_seconds ~ 0) must report a large finite rate, not divide by
    # zero or pretend nothing ran.
    sim = Simulator()
    sim._events_executed = 1000
    sim._wall_seconds = 0.0
    assert sim.events_per_sec == pytest.approx(1000 / 1e-9)
    sim._wall_seconds = 2.0
    assert sim.events_per_sec == pytest.approx(500.0)


def test_events_per_sec_is_zero_before_any_dispatch():
    sim = Simulator()
    sim._wall_seconds = 0.5  # wall time without events stays a zero rate
    assert sim.events_per_sec == 0.0
