"""Property: slicing a faulted run ranks the faulted layer in the top 2.

Whatever the injected fault's timing and magnitude, the slice's suspect
ranking must point at the fault plane's stack layer — a disk slowdown
indicts ``simfs``, a degraded link indicts ``network``.  The fault
events ride in as the archived schedule JSON, exactly as
``slice_from_store`` reads them back.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import (
    DiskSlowdown,
    FaultSchedule,
    LinkDegradation,
    NetworkPartition,
    run_under_faults,
)
from repro.harness.figures import paper_testbed
from repro.obs.slice import causal_slice
from repro.obs.tracepoints import session
from repro.units import KiB
from repro.workloads import mpi_io_test

ARGS = {"path": "/pfs/x.out", "block_size": 64 * KiB, "nobj": 4}


def _slice_under(schedule):
    with session() as col:
        outcome = run_under_faults(
            schedule, None, mpi_io_test, dict(ARGS),
            config=paper_testbed(seed=0, nprocs=2), nprocs=2, seed=0,
            horizon=120.0,
        )
        assert outcome.status == "completed"
        payload = col.export(end_time=outcome.stats.elapsed)
    return causal_slice(
        payload, fault_events=schedule.to_json()["events"]
    )


def _top2(report):
    return [s["layer"] for s in report["suspects"][:2]]


class TestFaultedLayerRanksTop2:
    @settings(max_examples=6, deadline=None)
    @given(
        at=st.floats(0.0, 0.05),
        extra=st.floats(0.0005, 0.005),
    )
    def test_disk_slowdown_indicts_simfs(self, at, extra):
        schedule = FaultSchedule.of(
            DiskSlowdown(at=at, duration=60.0, extra_latency=extra),
            name="slow-disk",
        )
        report = _slice_under(schedule)
        assert "simfs" in _top2(report)
        assert any(
            c["type"] == "DiskSlowdown" for c in report["fault_candidates"]
        )

    @settings(max_examples=6, deadline=None)
    @given(
        at=st.floats(0.0, 0.05),
        extra=st.floats(0.0005, 0.005),
        node=st.integers(0, 1),
    )
    def test_link_degradation_indicts_network(self, at, extra, node):
        schedule = FaultSchedule.of(
            LinkDegradation(at=at, duration=60.0, node=node, extra_latency=extra),
            name="slow-link",
        )
        report = _slice_under(schedule)
        assert "network" in _top2(report)

    def test_healed_partition_indicts_network(self):
        schedule = FaultSchedule.of(
            NetworkPartition(at=0.01, nodes=(1,), heal_after=0.05),
            name="partition",
        )
        report = _slice_under(schedule)
        assert "network" in _top2(report)
        assert report["fault_candidates"][0]["type"] == "NetworkPartition"
