"""Metrics instruments: bucketing, decimation, snapshot purity."""

import json
import math

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timeline,
    canonical_json,
    quantile_from_snapshot,
)


class TestCounterGauge:
    def test_counter_accumulates(self):
        c = Counter()
        c.inc()
        c.inc(41)
        assert c.value == 42

    def test_gauge_last_write_wins(self):
        g = Gauge()
        g.set(3.5)
        g.set(-1.0)
        assert g.value == -1.0


class TestHistogram:
    def test_log2_buckets_positive(self):
        h = Histogram()
        for v in (1, 2, 3, 4, 1024):
            h.observe(v)
        snap = h.snapshot()
        # 1 -> bucket 0; 2,3 -> bucket 1; 4 -> 2; 1024 -> 10
        assert snap["buckets"] == {"0": 1, "1": 2, "2": 1, "10": 1}
        assert snap["count"] == 5
        assert snap["sum"] == 1034

    def test_negative_exponents_for_subsecond_durations(self):
        h = Histogram()
        h.observe(0.25)  # 2^-2
        h.observe(0.0005)  # in [2^-11, 2^-10)
        buckets = h.snapshot()["buckets"]
        assert buckets["-2"] == 1
        assert buckets[str(math.floor(math.log2(0.0005)))] == 1

    def test_zero_and_negative_get_the_zero_bucket(self):
        h = Histogram()
        h.observe(0.0)
        h.observe(-3.0)
        assert h.snapshot()["buckets"] == {"zero": 2}

    def test_mean(self):
        h = Histogram()
        assert h.mean == 0.0
        h.observe(2.0)
        h.observe(4.0)
        assert h.mean == 3.0


class TestHistogramQuantile:
    """quantile(q) against exact log2 bucket bounds.

    The estimator is nearest-rank over the buckets with linear
    interpolation inside the winning bucket [2^e, 2^(e+1)) — every
    assertion here is derivable by hand from those bounds.
    """

    def test_empty_histogram_is_zero(self):
        assert Histogram().quantile(0.5) == 0.0

    def test_single_bucket_interpolates_linearly(self):
        h = Histogram()
        for _ in range(4):
            h.observe(5.0)  # all in bucket e=2 -> [4, 8)
        # ranks 1..4 of 4 -> frac 1/4 .. 4/4 across the 4-wide bucket
        assert h.quantile(0.25) == pytest.approx(4 + 0.25 * 4)
        assert h.quantile(0.50) == pytest.approx(4 + 0.50 * 4)
        assert h.quantile(1.00) == pytest.approx(8.0)

    def test_quantile_walks_buckets_in_value_order(self):
        h = Histogram()
        for v in (1.5, 1.5, 6.0, 20.0):  # buckets e=0 (x2), e=2, e=4
            h.observe(v)
        # rank(0.5 * 4) = 2 -> second obs of bucket [1,2) -> 1 + (2/2)*1
        assert h.quantile(0.5) == pytest.approx(2.0)
        # rank(0.75 * 4) = 3 -> sole obs of bucket [4,8)
        assert h.quantile(0.75) == pytest.approx(8.0)

    def test_quantile_one_is_top_bucket_upper_bound(self):
        h = Histogram()
        h.observe(0.004)  # e=-8 -> [2^-8, 2^-7)
        h.observe(0.020)  # e=-6 -> [2^-6, 2^-5)
        assert h.quantile(1.0) == pytest.approx(2.0 ** -5)

    def test_zero_bucket_quantiles_are_zero(self):
        h = Histogram()
        h.observe(0.0)
        h.observe(0.0)
        h.observe(4.0)
        assert h.quantile(0.5) == 0.0  # rank 2 of 3 still in zero bucket
        assert h.quantile(0.9) == pytest.approx(8.0)

    def test_q_is_clamped(self):
        h = Histogram()
        h.observe(1.0)
        assert h.quantile(-3.0) == h.quantile(0.0)
        assert h.quantile(7.0) == h.quantile(1.0) == pytest.approx(2.0)

    def test_quantile_from_snapshot_matches_live_histogram(self):
        h = Histogram()
        for v in (0.0, 0.3, 0.3, 1.7, 40.0):
            h.observe(v)
        snap = h.snapshot()
        for q in (0.0, 0.25, 0.5, 0.9, 0.99, 1.0):
            assert quantile_from_snapshot(snap, q) == pytest.approx(h.quantile(q))

    def test_quantile_from_snapshot_empty(self):
        assert quantile_from_snapshot({}, 0.5) == 0.0
        assert quantile_from_snapshot({"count": 0, "buckets": {}}, 0.5) == 0.0


class TestTimeline:
    def test_records_steps(self):
        tl = Timeline()
        tl.add(0.0, 1)
        tl.add(2.0, 3)
        assert tl.snapshot()["samples"] == [[0.0, 1], [2.0, 3]]
        assert tl.last_value == 3

    def test_decimation_is_deterministic_and_bounded(self):
        tl = Timeline(max_samples=8)
        for i in range(1000):
            tl.add(float(i), i)
        assert len(tl.samples) <= 8
        assert tl.stride > 1
        # Replaying the identical sequence gives the identical retained set.
        tl2 = Timeline(max_samples=8)
        for i in range(1000):
            tl2.add(float(i), i)
        assert tl.snapshot() == tl2.snapshot()

    def test_time_weighted_mean(self):
        tl = Timeline()
        tl.add(0.0, 0)
        tl.add(1.0, 2)  # value 0 over [0,1), value 2 over [1,2)
        assert tl.time_weighted_mean(2.0) == pytest.approx(1.0)

    def test_time_weighted_mean_empty(self):
        assert Timeline().time_weighted_mean(5.0) == 0.0


class TestRegistry:
    def test_instruments_created_on_first_use(self):
        m = MetricsRegistry()
        assert m.counter("x") is m.counter("x")
        assert m.gauge("g") is m.gauge("g")
        assert m.histogram("h") is m.histogram("h")
        assert m.timeline("t") is m.timeline("t")

    def test_shorthands(self):
        m = MetricsRegistry()
        m.inc("ops", 3)
        m.observe("lat", 0.5)
        m.sample("depth", 1.0, 7)
        snap = m.snapshot(end_time=2.0)
        assert snap["counters"]["ops"] == 3
        assert snap["histograms"]["lat"]["count"] == 1
        assert snap["timelines"]["depth"]["samples"] == [[1.0, 7]]
        assert snap["end_time"] == 2.0

    def test_snapshot_is_json_pure(self):
        m = MetricsRegistry()
        m.inc("a")
        m.observe("b", 3.0)
        m.sample("c", 0.0, 1)
        m.gauge("d").set(2.5)
        snap = m.snapshot(end_time=1.0)
        # A JSON round trip must be the identity (the cache byte-identity
        # contract rests on this).
        assert json.loads(canonical_json(snap)) == snap

    def test_canonical_json_is_byte_stable(self):
        a = canonical_json({"b": 1, "a": [1, 2]})
        b = canonical_json({"a": [1, 2], "b": 1})
        assert a == b == '{"a":[1,2],"b":1}'

    def test_canonical_json_rejects_nan(self):
        with pytest.raises(ValueError):
            canonical_json({"x": float("nan")})
