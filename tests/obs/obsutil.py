"""Shared builders for the observatory (compare/critpath) tests.

Hand-built payloads (no simulator runs) keep the unit tests fast; the
builders go through the real producers (:class:`SpanRecorder`,
:class:`MetricsRegistry`, :func:`to_chrome_trace`) so the synthetic
payloads have exactly the live export's shape.
"""

import json

from repro.obs.metrics import MetricsRegistry, canonical_json
from repro.obs.perfetto import to_chrome_trace
from repro.obs.spans import SpanRecorder


def make_payload(spans=(), counters=None, observations=None, end_time=None):
    """A ``repro/telemetry/v1`` payload from ``(pid, tid, name, cat, ts,
    dur)`` spans plus optional counters / histogram observations."""
    rec = SpanRecorder()
    last = 0.0
    for pid, tid, name, cat, ts, dur in spans:
        rec.name_track(pid, "node%d host%02d" % (pid, pid), tid, "rank %d" % tid)
        rec.complete(pid, tid, name, cat, ts, dur)
        last = max(last, ts + dur)
    reg = MetricsRegistry()
    for cname, value in (counters or {}).items():
        reg.inc(cname, value)
    for hname, values in (observations or {}).items():
        for v in values:
            reg.observe(hname, v)
    payload = {
        "schema": "repro/telemetry/v1",
        "metrics": reg.snapshot(end_time=last if end_time is None else end_time),
        "trace": to_chrome_trace(rec),
    }
    return json.loads(canonical_json(payload))
