"""Causal slicing: anchors, window rollup, chain, faults, renderings."""

import pytest

from obsutil import make_payload

from repro.errors import TelemetryError
from repro.obs.metrics import canonical_json
from repro.obs.slice import (
    ANCHOR_KINDS,
    FAULT_SUSPECT_LAYER,
    SLICE_SCHEMA,
    causal_slice,
    render_slice,
    slice_flamegraph_lines,
    slice_trace,
)

# Rank 0 finishes at 0.012 (MPI write wrapping a data syscall, then a
# close); rank 1 is the straggler at 0.016 with a bigger write.
SPANS = [
    (0, 0, "MPI_File_write_at", "libcall", 0.0, 0.010),
    (0, 0, "SYS_write", "syscall", 0.002, 0.006),
    (0, 0, "SYS_close", "syscall", 0.011, 0.001),
    (1, 1, "MPI_File_write_at", "libcall", 0.0, 0.016),
    (1, 1, "SYS_write", "syscall", 0.002, 0.012),
]

EVENTS = [
    {"rank": 0, "ts": 0.002, "dur": 0.006, "path": "/pfs/a"},
    {"rank": 1, "ts": 0.002, "dur": 0.012, "path": "/pfs/b"},
    {"rank": 0, "ts": 0.011, "dur": 0.001, "path": "/scratch/c"},
]


class TestAnchors:
    def test_straggler_default_picks_latest_track(self):
        report = causal_slice(make_payload(SPANS))
        assert report["schema"] == SLICE_SCHEMA
        assert report["anchor"] == {"kind": "straggler", "value": None}
        assert (report["track"]["node"], report["track"]["rank"]) == (1, 1)
        assert report["window"] == [pytest.approx(0.0), pytest.approx(0.016)]
        assert report["elapsed"] == pytest.approx(0.016)

    def test_rank_anchor_selects_that_track(self):
        report = causal_slice(make_payload(SPANS), anchor="rank", value=0)
        assert report["track"]["rank"] == 0
        assert report["window"][1] == pytest.approx(0.012)

    def test_missing_rank_names_the_present_ones(self):
        with pytest.raises(TelemetryError, match=r"rank 9.*\[0, 1\]"):
            causal_slice(make_payload(SPANS), anchor="rank", value=9)

    def test_op_anchor_takes_the_slowest_instance(self):
        report = causal_slice(make_payload(SPANS), anchor="op", value="SYS_write")
        assert report["track"]["rank"] == 1  # 0.012 beats 0.006
        assert report["anchor_span"]["name"] == "SYS_write"
        assert report["window"] == [pytest.approx(0.002), pytest.approx(0.014)]

    def test_unknown_op_raises(self):
        with pytest.raises(TelemetryError, match="no span named"):
            causal_slice(make_payload(SPANS), anchor="op", value="SYS_nope")

    def test_path_anchor_uses_event_paths(self):
        report = causal_slice(
            make_payload(SPANS), anchor="path", value="/pfs/*", events=EVENTS
        )
        # Rank 1 owns more matching-path time; the window spans the matches.
        assert report["track"]["rank"] == 1
        assert report["window"] == [pytest.approx(0.002), pytest.approx(0.014)]

    def test_path_anchor_without_events_raises(self):
        with pytest.raises(TelemetryError, match="store-archived"):
            causal_slice(make_payload(SPANS), anchor="path", value="/pfs/*")

    def test_path_anchor_with_no_matches_raises(self):
        with pytest.raises(TelemetryError, match="no events with a path"):
            causal_slice(
                make_payload(SPANS), anchor="path", value="/nope/*", events=EVENTS
            )

    def test_unknown_anchor_kind_raises(self):
        with pytest.raises(TelemetryError, match="unknown anchor kind"):
            causal_slice(make_payload(SPANS), anchor="vibe")
        assert set(ANCHOR_KINDS) == {"straggler", "rank", "op", "path"}

    def test_empty_payload_raises(self):
        with pytest.raises(TelemetryError, match="--telemetry"):
            causal_slice(make_payload([]))


class TestAttribution:
    def test_window_layers_are_self_time(self):
        report = causal_slice(make_payload(SPANS), anchor="rank", value=0)
        track = report["layers"]["track"]
        assert track["simmpi"] == pytest.approx(0.004)  # libcall minus child
        assert track["simfs"] == pytest.approx(0.006)
        assert track["simos"] == pytest.approx(0.001)
        # The all-tracks rollup adds rank 1's time inside the window.
        assert report["layers"]["all"]["simfs"] == pytest.approx(0.006 + 0.012)

    def test_chain_extends_roots_down_dominant_descendants(self):
        report = causal_slice(make_payload(SPANS))
        names = [(link["depth"], link["name"]) for link in report["chain"]]
        assert names == [(0, "MPI_File_write_at"), (1, "SYS_write")]
        assert report["layers_crossed"] == ["simfs", "simmpi"]
        assert report["chain_coverage"] == pytest.approx(1.0)
        assert report["roots_dropped"] == 0

    def test_rank0_chain_crosses_three_layers(self):
        report = causal_slice(make_payload(SPANS), anchor="rank", value=0)
        assert report["layers_crossed"] == ["simfs", "simmpi", "simos"]

    def test_max_roots_truncation_keeps_widest_in_time_order(self):
        spans = [
            (0, 0, "op%d" % i, "syscall", 0.01 * i, 0.001 * (i + 1))
            for i in range(5)
        ]
        report = causal_slice(make_payload(spans), max_roots=3)
        assert report["chain_roots"] == 3
        assert report["roots_dropped"] == 2
        kept = [link["name"] for link in report["chain"]]
        assert kept == ["op2", "op3", "op4"]  # widest three, time-sorted

    def test_record_order_does_not_matter(self):
        a = causal_slice(make_payload(SPANS))
        b = causal_slice(make_payload(list(reversed(SPANS))))
        assert canonical_json(a) == canonical_json(b)


class TestFaultSuspects:
    FAULT = {
        "type": "DiskSlowdown",
        "window": [0.0, 0.02],
        "at": 0.0,
        "duration": 0.02,
        "extra_latency": 0.002,
        "mount": "/pfs",
    }

    def test_overlapping_fault_boosts_its_layer_to_the_top(self):
        report = causal_slice(
            make_payload(SPANS), anchor="rank", value=0,
            fault_events=[self.FAULT],
        )
        assert report["fault_candidates"][0]["type"] == "DiskSlowdown"
        top = report["suspects"][0]
        assert top["layer"] == "simfs"
        assert top["fault_overlap"] is True
        assert top["score"] == pytest.approx(1.0 + 0.006 / 0.011)

    def test_fault_window_is_shifted_by_the_capture_origin(self):
        # Archived stamps carry an epoch base; fault windows are relative
        # to sim start.  The overlap test must shift by the origin.
        shifted = [(p, t, n, c, ts + 100.0, d) for p, t, n, c, ts, d in SPANS]
        report = causal_slice(
            make_payload(shifted), anchor="rank", value=0,
            fault_events=[self.FAULT],
        )
        assert len(report["fault_candidates"]) == 1
        assert report["window_rel"] == [pytest.approx(0.0), pytest.approx(0.012)]

    def test_non_overlapping_fault_is_dropped(self):
        late = dict(self.FAULT, window=[5.0, 6.0])
        report = causal_slice(make_payload(SPANS), fault_events=[late])
        assert report["fault_candidates"] == []
        assert all(not s["fault_overlap"] for s in report["suspects"])

    def test_unhealed_fault_window_overlaps_forever(self):
        cut = {"type": "NetworkPartition", "window": [0.001, None], "nodes": [1]}
        report = causal_slice(make_payload(SPANS), fault_events=[cut])
        assert report["fault_candidates"][0]["layer"] == "network"
        # Network had no self time, but the fault still indicts it.
        assert report["suspects"][0]["layer"] == "network"
        assert report["suspects"][0]["share"] == 0.0

    def test_every_fault_type_maps_to_a_stack_layer(self):
        assert set(FAULT_SUSPECT_LAYER) == {
            "DiskSlowdown", "DiskErrorStorm", "NetworkPartition",
            "LinkDegradation", "NodeCrash",
        }


class TestRenderings:
    def test_text_rendering_names_the_parts(self):
        report = causal_slice(
            make_payload(SPANS), fault_events=[TestFaultSuspects.FAULT],
            meta={"scenario": "disk-storm", "seed": 7},
        )
        text = render_slice(report)
        assert "causal slice [straggler]" in text
        assert "scenario=disk-storm" in text
        assert "fault-plane candidates" in text
        assert "bounding chain" in text
        assert "suspects (ranked):" in text
        assert "[fault overlap]" in text

    def test_slice_trace_keeps_anchor_track_window_only(self):
        payload = make_payload(SPANS)
        report = causal_slice(payload, anchor="rank", value=0)
        trace = slice_trace(payload, report)
        xs = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert xs and all(e["pid"] == 0 for e in xs)
        assert {e["name"] for e in xs} == {
            "MPI_File_write_at", "SYS_write", "SYS_close"
        }
        # Metadata events survive so track names render in Perfetto.
        assert any(e["ph"] == "M" for e in trace["traceEvents"])

    def test_slice_flamegraph_lines_cover_the_chain(self):
        payload = make_payload(SPANS)
        report = causal_slice(payload)
        lines = slice_flamegraph_lines(payload, report)
        assert lines == sorted(lines)
        assert any("MPI_File_write_at;SYS_write" in line for line in lines)
        # Rank 0 is outside the anchor track: no stacks from it.
        assert all(line.startswith("node1") for line in lines)
