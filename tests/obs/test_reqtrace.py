"""Unit tests for the request-tracing core (repro.obs.reqtrace).

Everything here runs without sockets: trace-context parsing, the span
ring's eviction/retention contract, and the three exporters (Perfetto
JSON, collapsed-stack flamegraph, terminal rendering).  The live
propagation path is exercised in tests/service/test_service_obs.py.
"""

import pytest

from repro.obs.perfetto import validate_chrome_trace
from repro.obs.reqtrace import (
    REQTRACE_SCHEMA,
    TRACKS,
    RequestTrace,
    RequestTraceLog,
    child_span_id,
    make_context,
    parse_traceparent,
    render_top,
    render_trace,
    trace_flamegraph_lines,
    trace_to_chrome,
)


class TestTraceContext:
    def test_make_context_is_deterministic(self):
        a = make_context("repro-loadgen", 42, 3, 7)
        b = make_context("repro-loadgen", 42, 3, 7)
        c = make_context("repro-loadgen", 42, 3, 8)
        assert (a.trace_id, a.span_id) == (b.trace_id, b.span_id)
        assert a.trace_id != c.trace_id
        assert len(a.trace_id) == 32 and len(a.span_id) == 16
        int(a.trace_id, 16), int(a.span_id, 16)

    def test_header_round_trips_through_parser(self):
        ctx = make_context("x")
        parsed = parse_traceparent(ctx.header())
        assert parsed is not None
        assert parsed.trace_id == ctx.trace_id
        assert parsed.span_id == ctx.span_id

    @pytest.mark.parametrize(
        "value",
        [
            None,
            "",
            "not-a-header",
            "00-short-abcdef0123456789-01",
            "00-" + "g" * 32 + "-" + "a" * 16 + "-01",  # non-hex
            "00-" + "0" * 32 + "-" + "a" * 16 + "-01",  # all-zero trace id
            "00-" + "a" * 32 + "-" + "0" * 16 + "-01",  # all-zero span id
            "00-" + "a" * 32 + "-" + "a" * 16,  # missing flags
        ],
    )
    def test_malformed_headers_parse_to_none(self, value):
        assert parse_traceparent(value) is None

    def test_parser_lowercases(self):
        header = "00-" + "AB" * 16 + "-" + "CD" * 8 + "-01"
        parsed = parse_traceparent(header)
        assert parsed is not None
        assert parsed.trace_id == "ab" * 16

    def test_child_span_ids_are_distinct_per_seq(self):
        tid = "a" * 32
        assert child_span_id(tid, "wal.append", 0) != child_span_id(tid, "wal.append", 1)
        assert len(child_span_id(tid, "x")) == 16


def _trace(trace_id="a" * 32, wall_us=1000, route="ingest"):
    rt = RequestTrace(trace_id, client_span_id="b" * 16)
    rt.route = route
    rt.tenant = "acme"
    rt.status = 202
    rt.wall_us = wall_us
    http_sid = rt.add("http", "http.request", 0.001, 0.004)
    wal_sid = rt.add("wal", "wal.append", 0.002, 0.001, parent_span_id=http_sid)
    commit_sid = rt.add(
        "commit", "commit", 0.006, 0.003, parent_span_id=wal_sid
    )
    rt.add("bank", "bank.ingest", 0.007, 0.002, parent_span_id=commit_sid)
    return rt


class TestRequestTrace:
    def test_report_synthesizes_client_envelope(self):
        report = _trace().report()
        assert report["schema"] == REQTRACE_SCHEMA
        client = report["spans"][0]
        assert client["track"] == "client"
        assert client["span_id"] == "b" * 16
        assert client["parent_span_id"] is None
        # envelope covers every recorded span
        assert client["ts_us"] == 1000
        assert client["ts_us"] + client["dur_us"] == 9000
        # all other spans ultimately parent under the client span
        ids = {s["span_id"] for s in report["spans"]}
        for span in report["spans"][1:]:
            assert span["parent_span_id"] in ids

    def test_spans_sorted_by_time_then_track(self):
        report = _trace().report()
        ts = [s["ts_us"] for s in report["spans"]]
        assert ts == sorted(ts)

    def test_default_parent_is_client_span(self):
        rt = RequestTrace("c" * 32, "d" * 16)
        rt.add("http", "http.request", 0.0, 0.001)
        assert rt.spans[0]["parent_span_id"] == "d" * 16

    def test_summary_counts_envelope_span(self):
        rt = _trace()
        assert rt.summary()["n_spans"] == 5
        assert rt.summary()["trace_id"] == rt.trace_id


class TestRequestTraceLog:
    def test_ring_evicts_oldest_but_retains_slowest(self):
        log = RequestTraceLog(ring_size=4, slowest_per_route=2)
        slow_ids = []
        for i in range(16):
            wall = 10_000_000 if i in (2, 5) else 100 + i
            rt = _trace(trace_id=("%032x" % i), wall_us=wall)
            if i in (2, 5):
                slow_ids.append(rt.trace_id)
            log.finish(rt)
        stats = log.stats()
        assert stats["ring"] == 4
        assert stats["finished"] == 16
        assert stats["evicted"] == 12
        # slow outliers survived eviction as route exemplars
        for tid in slow_ids:
            assert log.get(tid) is not None
        # a fast, evicted trace is gone
        assert log.get("%032x" % 0) is None

    def test_slowest_listing_sorted_and_scoped_by_route(self):
        log = RequestTraceLog(ring_size=64, slowest_per_route=3)
        for i, wall in enumerate([500, 9000, 100, 7000, 300]):
            log.finish(_trace(trace_id=("%032x" % i), wall_us=wall))
        log.finish(_trace(trace_id=("%032x" % 99), wall_us=50_000, route="query"))
        top = log.slowest(route="ingest")
        assert [s["wall_us"] for s in top] == [9000, 7000, 500]
        assert all(s["route"] == "ingest" for s in top)
        merged = log.slowest(limit=2)
        assert merged[0]["wall_us"] == 50_000
        assert len(merged) == 2

    def test_attach_after_finish_adds_span(self):
        log = RequestTraceLog(ring_size=4)
        rt = _trace()
        log.finish(rt)
        sid = log.attach(rt.trace_id, "commit", "late", 0.5, 0.1)
        assert sid is not None
        assert any(s["name"] == "late" for s in log.get(rt.trace_id).spans)

    def test_attach_after_eviction_is_noop(self):
        log = RequestTraceLog(ring_size=1, slowest_per_route=1)
        log.finish(_trace(trace_id="1" * 32, wall_us=100))
        log.finish(_trace(trace_id="2" * 32, wall_us=50_000))
        log.finish(_trace(trace_id="3" * 32, wall_us=60_000))
        assert log.attach("1" * 32, "commit", "late", 0.5, 0.1) is None


class TestExport:
    def test_chrome_trace_validates_and_tracks_map_to_pids(self):
        report = _trace().report()
        chrome = trace_to_chrome(report)
        validate_chrome_trace(chrome)  # raises on failure
        events = chrome["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == len(report["spans"])
        meta_names = {
            e["args"]["name"] for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert set(TRACKS) <= meta_names
        # span/parent ids ride in args for UI inspection
        for e in complete:
            assert e["args"]["trace_id"] == report["trace_id"]
            assert "span_id" in e["args"]

    def test_flamegraph_lines_nest_by_parent_links(self):
        lines = trace_flamegraph_lines(_trace().report())
        assert lines == sorted(lines)
        assert all(" " in line for line in lines)
        stacks = dict(line.rsplit(" ", 1) for line in lines)
        # route is the root frame; explicit parents give the deep chain
        deep = "ingest;client.request;http.request;wal.append;commit;bank.ingest"
        assert deep in stacks
        assert int(stacks[deep]) == 2000  # bank.ingest self time in µs
        assert all(int(v) > 0 for v in stacks.values())

    def test_flamegraph_semicolons_in_names_are_sanitized(self):
        rt = RequestTrace("e" * 32, "f" * 16)
        rt.route = "ingest"
        rt.add("http", "a;b", 0.0, 0.001)
        lines = trace_flamegraph_lines(rt.report())
        assert any("a,b" in line for line in lines)

    def test_render_trace_mentions_all_tracks(self):
        text = render_trace(_trace().report())
        assert "tracks crossed: client -> http -> wal -> commit -> bank" in text
        for name in ("client.request", "http.request", "wal.append", "commit",
                     "bank.ingest"):
            assert name in text

    def test_render_top_smoke(self):
        stats = {
            "queue": {"depth": 1, "capacity": 64, "committed": 5, "discarded": 0},
            "tenants": 2,
        }
        metrics = {
            "end_time": 12.5,
            "counters": {"service.requests": 10, "service.status.202": 9,
                         "service.status.404": 1},
            "histograms": {
                "service.route_seconds{route=ingest}": {
                    "count": 9, "sum": 0.09, "min": 0.004, "max": 0.02,
                    "buckets": {"-8": 9},
                },
            },
        }
        slowest = [_trace().summary()]
        frame = render_top(stats, metrics, slowest,
                           prev_counters={"service.requests": 0}, interval=2.0)
        assert "10 requests" in frame
        assert "5.0 req/s" in frame
        assert "ingest" in frame
        assert "202=9" in frame
        assert "slowest requests:" in frame
        assert "tenants 2" in frame
