"""Chrome trace-event export shape and validator behaviour."""

import json

import pytest

from repro.errors import TelemetryError
from repro.obs.perfetto import dumps_trace, to_chrome_trace, validate_chrome_trace
from repro.obs.spans import KERNEL_PID, SpanRecorder


def _recorder():
    rec = SpanRecorder()
    rec.name_track(KERNEL_PID, "sim-kernel")
    rec.name_track(0, "node0 n0", 3, "rank 3")
    rec.complete(0, 3, "write", "vfs", 1.0, 0.5, {"nbytes": 4096})
    rec.complete(0, 3, "read", "vfs", 2.0, 0.25)
    rec.counter(KERNEL_PID, "des.queue_depth", 0.5, 7)
    return rec


class TestExport:
    def test_metadata_sorts_before_spans_and_counters(self):
        trace = to_chrome_trace(_recorder())
        phases = [e["ph"] for e in trace["traceEvents"]]
        first_non_meta = phases.index("X")
        assert all(p == "M" for p in phases[:first_non_meta])
        assert phases.count("X") == 2
        assert phases.count("C") == 1
        assert trace["displayTimeUnit"] == "ms"

    def test_timestamps_scale_to_microseconds(self):
        trace = to_chrome_trace(_recorder())
        span = next(e for e in trace["traceEvents"] if e["ph"] == "X")
        assert span["ts"] == 1.0e6
        assert span["dur"] == 0.5e6
        counter = next(e for e in trace["traceEvents"] if e["ph"] == "C")
        assert counter["ts"] == 0.5e6
        assert counter["args"] == {"value": 7}

    def test_span_args_only_when_present(self):
        trace = to_chrome_trace(_recorder())
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert spans[0]["args"] == {"nbytes": 4096}
        assert "args" not in spans[1]

    def test_export_validates_and_round_trips(self):
        trace = to_chrome_trace(_recorder())
        validate_chrome_trace(trace)
        text = dumps_trace(trace)
        reloaded = json.loads(text)
        validate_chrome_trace(reloaded)
        assert dumps_trace(reloaded) == text


class TestValidator:
    def test_accepts_bare_event_array(self):
        validate_chrome_trace(
            [{"ph": "I", "name": "mark", "ts": 0.0, "pid": 1, "tid": 0}]
        )

    def test_rejects_non_trace_values(self):
        with pytest.raises(TelemetryError):
            validate_chrome_trace("not a trace")
        with pytest.raises(TelemetryError):
            validate_chrome_trace({"events": []})

    def test_rejects_unknown_phase(self):
        with pytest.raises(TelemetryError, match="bad phase"):
            validate_chrome_trace([{"ph": "Z", "name": "x", "ts": 0, "pid": 0}])

    def test_rejects_missing_ts(self):
        with pytest.raises(TelemetryError, match="needs numeric 'ts'"):
            validate_chrome_trace([{"ph": "X", "name": "x", "pid": 0, "dur": 1}])

    def test_rejects_negative_duration(self):
        with pytest.raises(TelemetryError, match="negative 'dur'"):
            validate_chrome_trace(
                [{"ph": "X", "name": "x", "ts": 0, "pid": 0, "dur": -1}]
            )

    def test_rejects_non_numeric_counter_args(self):
        with pytest.raises(TelemetryError, match="numeric 'args'"):
            validate_chrome_trace(
                [{"ph": "C", "name": "c", "ts": 0, "pid": 0, "args": {"v": "hi"}}]
            )

    def test_caps_reported_problems(self):
        bad = [{"ph": "Z", "name": "x"} for _ in range(40)]
        with pytest.raises(TelemetryError, match="suppressed"):
            validate_chrome_trace(bad)
