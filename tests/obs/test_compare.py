"""Cross-run diffing: counters, histograms, span alignment, track drift."""

import pytest

from obsutil import make_payload

from repro.errors import TelemetryError
from repro.faults import DiskSlowdown, FaultSchedule
from repro.harness.figures import paper_testbed
from repro.harness.parallel import RunSpec, execute_spec
from repro.obs.compare import compare_payloads, render_diff
from repro.obs.metrics import canonical_json
from repro.units import KiB

SPANS = [
    (0, 0, "MPI_File_write_all", "libcall", 0.0, 0.010),
    (0, 0, "SYS_write", "syscall", 0.002, 0.006),
    (1, 1, "MPI_File_write_all", "libcall", 0.0, 0.012),
]


class TestIdenticalPayloads:
    def test_diff_is_empty_and_deterministic(self):
        payload = make_payload(SPANS, counters={"os.calls.syscall": 1})
        a = compare_payloads(payload, payload)
        b = compare_payloads(payload, payload)
        assert canonical_json(a) == canonical_json(b)
        assert a["schema"] == "repro/obs/diff/v1"
        assert a["end_time_delta"] == 0.0
        assert a["counters"] == []
        assert a["histograms"] == []
        assert a["spans"] == []
        assert a["dominant_layer"] is None
        assert a["tracks"] == {"only_a": [], "only_b": []}
        assert a["tracepoints"] == {"only_a": [], "only_b": []}


class TestCounters:
    def test_deltas_and_ratios(self):
        a = make_payload(counters={"x": 2})
        b = make_payload(counters={"x": 5, "y": 1})
        rows = {r["name"]: r for r in compare_payloads(a, b)["counters"]}
        assert rows["x"]["delta"] == 3
        assert rows["x"]["ratio"] == pytest.approx(2.5)
        assert rows["y"]["a"] == 0
        assert rows["y"]["ratio"] is None

    def test_tracepoint_drift_tracks_what_fired(self):
        a = make_payload(counters={"both": 1, "gone": 2})
        b = make_payload(counters={"both": 1, "new": 3})
        tp = compare_payloads(a, b)["tracepoints"]
        assert tp == {"only_a": ["gone"], "only_b": ["new"]}


class TestHistograms:
    def test_disjoint_shapes_diverge_fully(self):
        a = make_payload(observations={"os.call_seconds": [1e-6] * 4})
        b = make_payload(observations={"os.call_seconds": [1.0] * 4})
        (row,) = compare_payloads(a, b)["histograms"]
        assert row["divergence"] == pytest.approx(1.0)

    def test_same_shape_different_count_has_zero_divergence(self):
        a = make_payload(observations={"h": [0.5] * 2})
        b = make_payload(observations={"h": [0.5] * 4})
        (row,) = compare_payloads(a, b)["histograms"]
        assert row["divergence"] == 0.0
        assert (row["count_a"], row["count_b"]) == (2, 4)

    def test_missing_histogram_counts_as_disjoint(self):
        a = make_payload()
        b = make_payload(observations={"h": [0.5]})
        (row,) = compare_payloads(a, b)["histograms"]
        assert row["divergence"] == pytest.approx(1.0)


class TestSpanAlignment:
    def test_keyed_by_node_rank_name(self):
        slower = [
            (0, 0, "MPI_File_write_all", "libcall", 0.0, 0.010),
            (0, 0, "SYS_write", "syscall", 0.002, 0.008),
            (1, 1, "MPI_File_write_all", "libcall", 0.0, 0.012),
        ]
        report = compare_payloads(make_payload(SPANS), make_payload(slower))
        rows = {(r["node"], r["rank"], r["name"]): r for r in report["spans"]}
        key = (0, 0, "SYS_write")
        assert rows[key]["self_delta"] == pytest.approx(0.002)
        # Rank 1 is identical in both runs: no row for it.
        assert (1, 1, "MPI_File_write_all") not in rows

    def test_dominant_layer_is_largest_self_time_mover(self):
        slower = [
            (0, 0, "MPI_File_write_all", "libcall", 0.0, 0.030),
            (0, 0, "SYS_write", "syscall", 0.002, 0.026),
            (1, 1, "MPI_File_write_all", "libcall", 0.0, 0.012),
        ]
        report = compare_payloads(make_payload(SPANS), make_payload(slower))
        assert report["dominant_layer"]["layer"] == "simfs"
        assert report["dominant_layer"]["delta"] == pytest.approx(0.020)
        layers = {r["layer"]: r for r in report["layers"]}
        assert layers["simfs"]["delta"] == pytest.approx(0.020)

    def test_missing_rank_is_reported_not_raised(self):
        # Crashed-rank capture: payload B simply lacks rank 1's track.
        report = compare_payloads(make_payload(SPANS), make_payload(SPANS[:2]))
        assert report["a"]["n_tracks"] == 2
        assert report["b"]["n_tracks"] == 1
        (row,) = report["tracks"]["only_a"]
        assert (row["node"], row["rank"]) == (1, 1)
        assert "rank 1" in row["track"]
        assert report["tracks"]["only_b"] == []

    def test_rejects_non_payload_inputs(self):
        good = make_payload(SPANS)
        with pytest.raises(TelemetryError):
            compare_payloads({"schema": "nope"}, good)
        with pytest.raises(TelemetryError):
            compare_payloads(good, {"hello": "world"})


class TestRendering:
    def test_text_and_markdown(self):
        slower = [(0, 0, "SYS_write", "syscall", 0.0, 0.02)]
        base = [(0, 0, "SYS_write", "syscall", 0.0, 0.01)]
        report = compare_payloads(
            make_payload(base), make_payload(slower), "before", "after"
        )
        text = render_diff(report)
        assert "telemetry diff: before -> after" in text
        assert "dominant self-time delta: simfs" in text
        md = render_diff(report, markdown=True)
        assert md.startswith("# telemetry diff")
        assert "| layer | before | after | delta |" in md

    def test_row_limit_is_announced(self):
        a = make_payload(counters={"c%02d" % i: 1 for i in range(30)})
        b = make_payload(counters={"c%02d" % i: 2 for i in range(30)})
        text = render_diff(compare_payloads(a, b), limit=5)
        assert "... 25 more rows in the JSON report" in text


class TestDiskSlowdownAcceptance:
    """The ISSUE's acceptance scenario: a DiskSlowdown fault must show up
    as a dominant simfs self-time delta against the clean baseline."""

    ARGS = {"path": "/pfs/chaos.out", "block_size": 64 * KiB, "nobj": 4}

    def _spec(self, faults=None):
        return RunSpec.create(
            "lanl-trace",
            "mpi_io_test",
            dict(self.ARGS),
            config=paper_testbed(seed=0, nprocs=2),
            nprocs=2,
            seed=0,
            telemetry=True,
            faults=faults,
            sim_timeout=30.0 if faults is not None else None,
        )

    def test_disk_slowdown_pinpoints_simfs(self):
        baseline = execute_spec(self._spec())
        slowdown = FaultSchedule.of(
            DiskSlowdown(at=0.0, duration=0.5, extra_latency=2e-3),
            name="slow-disk",
        )
        faulted = execute_spec(self._spec(faults=slowdown))
        assert faulted.telemetry is not None  # chaos path exports telemetry too
        report = compare_payloads(
            baseline.telemetry["traced"], faulted.telemetry["traced"]
        )
        assert report["dominant_layer"]["layer"] == "simfs"
        assert report["dominant_layer"]["delta"] > 0.0
        assert report["end_time_delta"] > 0.0
