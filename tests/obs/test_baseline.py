"""Baseline perf sentinel: history round-trip and median/MAD gating."""

import json

import pytest

from repro.errors import TelemetryError
from repro.obs.baseline import (
    CHECK_SCHEMA,
    HISTORY_SCHEMA,
    METRIC_SPECS,
    append_history,
    check_history,
    load_history,
    make_record,
    render_check,
)
from repro.obs.metrics import canonical_json


def _record(elapsed_traced=1.0, events_per_sec=1e6, **extra):
    point = {
        "figure": 2,
        "block_size": 65536,
        "elapsed_untraced": 0.5,
        "elapsed_traced": elapsed_traced,
        "overhead_pct": 100.0 * (elapsed_traced / 0.5 - 1.0),
        "events_per_sec": events_per_sec,
        "wall_seconds": 0.25,
        "wall_time_per_sim_second": 0.2,
        "scan_mb_per_sec": 400.0,
        "bytes_per_event": 40.0,
        "diagnose_runs_per_sec": 50.0,
        "service_req_per_sec": 300.0,
        "service_p99_ms": 50.0,
        "zoo_replay_events_per_sec": 200.0,
    }
    point.update(extra)
    return make_record([point], quick=True, nprocs=4, jobs=1)


class TestHistoryFile:
    def test_append_and_load_round_trip(self, tmp_path):
        path = tmp_path / "BENCH_history.jsonl"
        assert append_history(path, _record(1.0)) == 0
        assert append_history(path, _record(1.1)) == 1
        records = load_history(path)
        assert len(records) == 2
        assert all(r["schema"] == HISTORY_SCHEMA for r in records)
        assert records[1]["points"][0]["elapsed_traced"] == 1.1

    def test_records_are_canonical_and_clock_free(self):
        record = _record()
        assert canonical_json(record) == canonical_json(
            json.loads(canonical_json(record))
        )
        assert "timestamp" not in record  # callers stamp via label only
        assert record["label"] is None

    def test_append_refuses_foreign_schema(self, tmp_path):
        with pytest.raises(TelemetryError):
            append_history(tmp_path / "h.jsonl", {"schema": "nope", "points": []})

    def test_load_rejects_unparseable_line(self, tmp_path):
        path = tmp_path / "h.jsonl"
        path.write_text(canonical_json(_record()) + "\n{not json\n")
        with pytest.raises(TelemetryError, match="unparseable"):
            load_history(path)

    def test_load_rejects_foreign_schema_line(self, tmp_path):
        path = tmp_path / "h.jsonl"
        path.write_text('{"schema": "other/v1"}\n')
        with pytest.raises(TelemetryError, match="not a"):
            load_history(path)

    def test_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "h.jsonl"
        path.write_text(canonical_json(_record()) + "\n\n")
        assert len(load_history(path)) == 1


class TestCheckHistory:
    def _statuses(self, report):
        return {r["metric"]: r["status"] for r in report["rows"]}

    def test_stable_history_is_all_ok(self):
        report = check_history([_record(1.0)] * 4)
        assert report["schema"] == CHECK_SCHEMA
        assert report["summary"]["regressions"] == 0
        assert set(self._statuses(report).values()) == {"ok"}
        assert set(self._statuses(report)) == set(METRIC_SPECS)

    def test_elapsed_increase_is_a_regression(self):
        report = check_history([_record(1.0)] * 3 + [_record(1.2)])
        statuses = self._statuses(report)
        assert statuses["elapsed_traced"] == "regression"
        assert statuses["overhead_pct"] == "regression"
        assert statuses["elapsed_untraced"] == "ok"
        assert report["summary"]["regressions"] >= 2

    def test_elapsed_decrease_is_an_improvement(self):
        report = check_history([_record(1.0)] * 3 + [_record(0.8)])
        assert self._statuses(report)["elapsed_traced"] == "improvement"
        assert report["summary"]["regressions"] == 0

    def test_rate_metric_direction_is_inverted(self):
        # Fewer events/sec is the regression for rate-like metrics.
        slower = check_history(
            [_record(events_per_sec=1e6)] * 3 + [_record(events_per_sec=5e5)]
        )
        assert self._statuses(slower)["events_per_sec"] == "regression"
        faster = check_history(
            [_record(events_per_sec=1e6)] * 3 + [_record(events_per_sec=2e6)]
        )
        assert self._statuses(faster)["events_per_sec"] == "improvement"

    def test_scan_rate_drop_is_a_regression_growth_an_improvement(self):
        # Archive-scan throughput is rate-like: less MB/s is worse.
        slower = check_history(
            [_record()] * 3 + [_record(scan_mb_per_sec=100.0)]
        )
        assert self._statuses(slower)["scan_mb_per_sec"] == "regression"
        faster = check_history(
            [_record()] * 3 + [_record(scan_mb_per_sec=900.0)]
        )
        assert self._statuses(faster)["scan_mb_per_sec"] == "improvement"

    def test_bytes_per_event_gates_tightly(self):
        # Codec output size is deterministic: +5% growth must gate even
        # though host-clock metrics would shrug it off.
        grew = check_history([_record()] * 3 + [_record(bytes_per_event=42.5)])
        assert self._statuses(grew)["bytes_per_event"] == "regression"
        shrank = check_history([_record()] * 3 + [_record(bytes_per_event=30.0)])
        assert self._statuses(shrank)["bytes_per_event"] == "improvement"

    def test_host_clock_jitter_stays_inside_the_floor(self):
        # 20% wall-clock wobble is hardware noise (rel_floor=0.30), not a
        # regression — the deterministic metrics still gate tightly.
        report = check_history(
            [_record()] * 3 + [_record(wall_seconds=0.3)]
        )
        assert self._statuses(report)["wall_seconds"] == "ok"

    def test_short_history_is_flagged_not_gated(self):
        report = check_history([_record(1.0), _record(9.9)])
        assert set(self._statuses(report).values()) == {"insufficient-history"}
        assert report["summary"]["regressions"] == 0
        assert report["summary"]["insufficient_history"] == len(METRIC_SPECS)

    def test_empty_history_raises(self):
        with pytest.raises(TelemetryError):
            check_history([])

    def test_mad_widens_the_threshold_for_noisy_series(self):
        # A series that historically swings by 50% has a wide MAD: the
        # same +20% move that gates a stable series passes here.
        noisy = [_record(1.0), _record(1.5), _record(0.9), _record(1.6)]
        report = check_history(noisy + [_record(1.2)])
        assert self._statuses(report)["elapsed_traced"] == "ok"

    def test_report_is_canonical(self):
        records = [_record(1.0)] * 3 + [_record(1.2)]
        assert canonical_json(check_history(records)) == canonical_json(
            check_history(records)
        )


class TestRenderCheck:
    def test_regression_rows_are_shown(self):
        text = render_check(check_history([_record(1.0)] * 3 + [_record(1.2)]))
        assert "REGRESSION" in text
        assert "elapsed_traced" in text
        assert "(+20.0%)" in text

    def test_clean_history_says_so(self):
        text = render_check(check_history([_record(1.0)] * 4))
        assert "no regressions detected" in text
