"""Archive-scale diagnosis: the E2E acceptance path.

One chaos sweep archived with ``--store``: four clean runs (distinct
seeds — the archive is content-addressed, identical runs dedup) plus one
DiskSlowdown run.  ``diagnose_archive`` must flag exactly the faulted
run, indict the ``simfs`` layer and the write op, and hand back a causal
slice whose bounding chain crosses at least three stack layers —
byte-identically across job counts and cache temperature.
"""

import pytest

from repro.errors import StoreError
from repro.faults import DiskSlowdown, FaultSchedule
from repro.harness.parallel import FrameworkSpec, RunSpec, run_sweep
from repro.harness.runcache import RunCache
from repro.obs.diagnose import (
    DIAGNOSE_SCHEMA,
    cluster_fingerprints,
    diagnose_archive,
    fingerprint_distance,
    fingerprint_run,
    render_diagnose,
)
from repro.obs.metrics import canonical_json
from repro.store.bank import TraceBank

ARGS = (("block_size", 65536), ("nobj", 8), ("total_mb", 1))
CLEAN_SEEDS = (0, 1, 2, 3)
FAULT_SEED = 7


def _spec(store, seed, faults):
    return RunSpec(
        framework=FrameworkSpec("lanl-trace", ()),
        workload="mpi_io_test",
        workload_args=ARGS,
        nprocs=4,
        seed=seed,
        faults=faults,
        store=str(store),
    )


def _slow_schedule():
    return FaultSchedule.of(
        DiskSlowdown(at=0.05, duration=0.15, extra_latency=0.002),
        name="disk-slow",
    )


def _archive_specs(store):
    specs = [_spec(store, seed, FaultSchedule()) for seed in CLEAN_SEEDS]
    specs.append(_spec(store, FAULT_SEED, _slow_schedule()))
    return specs


@pytest.fixture(scope="module")
def archive(tmp_path_factory):
    store = tmp_path_factory.mktemp("diagnose") / "store"
    result = run_sweep(_archive_specs(store), jobs=2)
    assert all(p.error is None for p in result.points)
    return store


def _faulted_run_id(store):
    bank = TraceBank(store, create=False)
    (m,) = [m for m in bank.manifests() if m.meta.get("scenario") == "disk-slow"]
    return m.run_id


class TestAcceptance:
    def test_flags_exactly_the_faulted_run(self, archive):
        report = diagnose_archive(str(archive), jobs=1)
        assert report["schema"] == DIAGNOSE_SCHEMA
        assert report["summary"]["runs"] == 5
        assert [o["run_id"] for o in report["outliers"]] == [
            _faulted_run_id(archive)
        ]

    def test_top_suspect_is_the_disk_layer_and_the_write_op(self, archive):
        (outlier,) = diagnose_archive(str(archive), jobs=1)["outliers"]
        assert outlier["suspect_layer"] == "simfs"
        assert outlier["suspect_op"]["op"] == "SYS_write"
        assert isinstance(outlier["suspect_rank"], int)
        assert outlier["score"] > 1.0

    def test_outlier_slice_crosses_three_layers(self, archive):
        (outlier,) = diagnose_archive(str(archive), jobs=1)["outliers"]
        sl = outlier["slice"]
        assert sl is not None
        assert len(sl["layers_crossed"]) >= 3
        assert {"simmpi", "simos", "simfs"} <= set(sl["layers_crossed"])

    def test_injected_schedule_surfaces_as_fault_candidate(self, archive):
        # The chaos executor archives the structured schedule in the
        # manifest; the auto-slice reads it back and the fault-overlap
        # boost marks the indicted layer.
        (outlier,) = diagnose_archive(str(archive), jobs=1)["outliers"]
        candidates = outlier["slice"]["fault_candidates"]
        assert [c["type"] for c in candidates] == ["DiskSlowdown"]
        assert candidates[0]["layer"] == "simfs"
        (top,) = [s for s in outlier["suspects"] if s["layer"] == "simfs"][:1]
        assert top.get("fault_overlap") is True

    def test_render_prints_the_ranked_suspect_table(self, archive):
        report = diagnose_archive(str(archive), jobs=1)
        text = render_diagnose(report)
        assert "1 outlier(s)" in text
        assert "disk-slow" in text
        assert "simfs" in text
        assert "SYS_write" in text
        assert "chain crosses" in text

    def test_against_pinned_baseline_flags_the_same_run(self, archive):
        clean_prefix = sorted(
            m.run_id for m in TraceBank(archive, create=False).manifests()
            if m.meta.get("scenario") == "baseline"
        )[0][:12]
        report = diagnose_archive(str(archive), against=clean_prefix, jobs=1)
        assert _faulted_run_id(archive) in [
            o["run_id"] for o in report["outliers"]
        ]
        assert report["params"]["against"] is not None

    def test_prefix_filter_shrinks_group_below_gating(self, archive):
        faulted = _faulted_run_id(archive)
        report = diagnose_archive(
            str(archive), run_prefixes=[faulted[:12]], slice_outliers=False
        )
        assert report["summary"]["runs"] == 1
        assert report["summary"]["insufficient_groups"] == 1
        assert report["outliers"] == []

    def test_no_matching_runs_raises(self, archive):
        with pytest.raises(StoreError, match="no archived runs"):
            diagnose_archive(str(archive), run_prefixes=["zzzz"])


class TestFingerprints:
    def test_fingerprint_reads_shape_and_time(self, archive):
        bank = TraceBank(archive, create=False)
        fp = fingerprint_run(bank, _faulted_run_id(archive))
        assert fp["n_events"] > 0
        assert fp["elapsed"] > 0
        assert "SYS__llseek->SYS_write" in fp["edges"]
        assert fp["layers"]["simfs"] > 0
        assert len(fp["ranks"]) == 4
        assert canonical_json(fp) == canonical_json(
            fingerprint_run(bank, _faulted_run_id(archive))
        )

    def test_distance_is_a_metric_like_score(self, archive):
        bank = TraceBank(archive, create=False)
        ids = sorted(m.run_id for m in bank.manifests())
        a, b = fingerprint_run(bank, ids[0]), fingerprint_run(bank, ids[1])
        assert fingerprint_distance(a, a) == 0.0
        d = fingerprint_distance(a, b)
        assert 0.0 <= d <= 1.0
        assert fingerprint_distance(b, a) == pytest.approx(d)

    def test_same_workload_runs_cluster_together(self, archive):
        bank = TraceBank(archive, create=False)
        fps = [fingerprint_run(bank, m.run_id) for m in bank.manifests()]
        clusters = cluster_fingerprints(fps)
        assert sum(c["size"] for c in clusters) == 5
        # A latency-only fault does not change the DFG shape: one shape.
        assert len(clusters) == 1


class TestDeterminism:
    def test_report_is_byte_identical_across_jobs(self, archive):
        serial = canonical_json(diagnose_archive(str(archive), jobs=1))
        fanned = canonical_json(diagnose_archive(str(archive), jobs=4))
        assert serial == fanned

    def test_report_survives_cold_and_warm_cache_rebuilds(self, tmp_path):
        # The same sweep replayed from a warm run cache re-archives the
        # identical bundles (content-addressed dedup), so the diagnosis
        # must not move by a byte.
        store = tmp_path / "store"
        cache = RunCache(tmp_path / "cache")
        specs = _archive_specs(store)
        run_sweep(specs, jobs=2, cache=cache)
        cold = canonical_json(diagnose_archive(str(store), jobs=2))
        warm_result = run_sweep(specs, jobs=1, cache=cache)
        assert all(p.cached for p in warm_result.points)
        warm = canonical_json(diagnose_archive(str(store), jobs=1))
        assert warm == cold
        outliers = diagnose_archive(str(store))["outliers"]
        assert [o["meta"]["scenario"] for o in outliers] == ["disk-slow"]
