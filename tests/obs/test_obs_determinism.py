"""Observatory determinism: diff/flamegraph byte-identity across executors.

Satellite of the telemetry determinism contract
(``tests/harness/test_telemetry_determinism.py``): the *derived*
artifacts — ``compare_payloads`` reports and collapsed flamegraph
stacks — must also be byte-identical across ``jobs=1`` / ``jobs=4`` and
cold / warm cache, because CI diffs them across machines.
"""

from repro.harness.parallel import build_sweep_specs, run_sweep
from repro.harness.runcache import RunCache
from repro.obs.compare import compare_payloads
from repro.obs.critpath import critical_path, flamegraph_lines
from repro.obs.metrics import canonical_json
from repro.units import KiB, MiB
from repro.workloads import AccessPattern


def _specs():
    return build_sweep_specs(
        "lanl-trace",
        "mpi_io_test",
        {"pattern": AccessPattern.N_TO_N, "path": "/pfs/out"},
        [64 * KiB],
        1 * MiB,
        nprocs=4,
        seed=0,
        telemetry=True,
    )


def _observatory_bytes(result):
    """Everything the observatory derives from one sweep, canonicalized."""
    rows = []
    for p in result.points:
        diff = compare_payloads(
            p.telemetry["untraced"], p.telemetry["traced"], "untraced", "traced"
        )
        rows.append(diff)
        rows.append(critical_path(p.telemetry["traced"]))
        rows.append(flamegraph_lines(p.telemetry["traced"]))
    return canonical_json(rows)


class TestObservatoryByteIdentity:
    def test_diff_and_flamegraph_identical_across_jobs_and_cache(self, tmp_path):
        specs = _specs()
        serial = run_sweep(specs, jobs=1)
        fanned = run_sweep(specs, jobs=4)
        cache = RunCache(tmp_path / "cache")
        cold = run_sweep(specs, jobs=2, cache=cache)
        warm = run_sweep(specs, jobs=1, cache=cache)
        assert all(p.cached for p in warm.points)
        reference = _observatory_bytes(serial)
        assert _observatory_bytes(fanned) == reference
        assert _observatory_bytes(cold) == reference
        assert _observatory_bytes(warm) == reference
        # Same payload bytes from two executors => an all-zero diff.
        cross = compare_payloads(
            serial.points[0].telemetry["traced"],
            fanned.points[0].telemetry["traced"],
        )
        assert cross["counters"] == []
        assert cross["spans"] == []
        assert cross["end_time_delta"] == 0.0

    def test_traced_run_diff_surfaces_the_tracer(self, tmp_path):
        point = run_sweep(_specs(), jobs=1).points[0]
        diff = compare_payloads(
            point.telemetry["untraced"], point.telemetry["traced"]
        )
        # Tracing slows the run down and the diff's headline says so.
        assert diff["end_time_delta"] > 0.0
        assert diff["dominant_layer"] is not None
        assert diff["b"]["n_spans"] > diff["a"]["n_spans"]

    def test_headline_exposes_the_sentinel_metrics(self):
        point = run_sweep(_specs(), jobs=1).points[0]
        headline = point.headline()
        assert set(headline) >= {
            "elapsed_untraced",
            "elapsed_traced",
            "overhead_pct",
            "events_executed",
            "events_per_sec",
            "wall_seconds",
            "wall_time_per_sim_second",
        }
        assert headline["elapsed_traced"] > headline["elapsed_untraced"]
        assert headline["events_per_sec"] > 0.0
        assert headline["wall_seconds"] > 0.0
