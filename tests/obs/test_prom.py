"""Prometheus exposition: golden format, escaping, cumulativity, round-trip.

The exposition is what off-the-shelf scrapers consume, so its format is
pinned hard: HELP/TYPE headers per family, escaped label values, strictly
cumulative histogram buckets, and byte-stable rendering.  The matching
parser must round-trip everything the renderer emits — that equivalence
is what the CI live-smoke job asserts against a real server.
"""

import math

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.prom import (
    escape_label_value,
    parse_prometheus,
    prom_name,
    render_prometheus,
    split_labels,
)


def _snapshot():
    reg = MetricsRegistry()
    reg.inc("service.requests", 7)
    reg.inc("service.status.202", 4)
    reg.gauge("service.up").set(1.0)
    reg.observe("service.route_seconds{route=ingest}", 0.004)
    reg.observe("service.route_seconds{route=ingest}", 0.020)
    reg.observe("service.route_seconds{route=ingest}", 0.021)
    reg.observe("service.route_seconds{route=query}", 0.5)
    reg.observe("service.request_seconds{route=ingest,status=202}", 0.004)
    reg.sample("service.queue_depth", 0.0, 0.0)
    reg.sample("service.queue_depth", 1.0, 4.0)
    return reg.snapshot(end_time=2.0)


class TestSplitLabels:
    def test_plain_name_has_no_labels(self):
        assert split_labels("service.requests") == ("service.requests", {})

    def test_labels_split_into_map(self):
        base, labels = split_labels("a.b{route=ingest,status=202}")
        assert base == "a.b"
        assert labels == {"route": "ingest", "status": "202"}

    def test_unterminated_brace_is_left_alone(self):
        assert split_labels("a.b{oops") == ("a.b{oops", {})


class TestEscaping:
    def test_backslash_quote_newline(self):
        assert escape_label_value('a\\b"c\nd') == 'a\\\\b\\"c\\nd'

    def test_escaped_value_round_trips_through_parser(self):
        reg = MetricsRegistry()
        reg.inc('weird{path=/pfs/"x"\\y}', 3)
        text = render_prometheus(reg.snapshot())
        parsed = parse_prometheus(text)
        (sample,) = parsed["samples"]
        assert sample["labels"]["path"] == '/pfs/"x"\\y'
        assert sample["value"] == 3.0


class TestGoldenFormat:
    def test_every_family_has_help_and_type(self):
        text = render_prometheus(_snapshot())
        lines = text.splitlines()
        seen = set()
        for i, line in enumerate(lines):
            if line.startswith("# HELP "):
                name = line.split(" ")[2]
                assert lines[i + 1].startswith("# TYPE %s " % name)
                seen.add(name)
        assert "repro_service_requests_total" in seen
        assert "repro_service_route_seconds" in seen
        # Every sample's family appeared in a header.
        for line in lines:
            if line.startswith("#") or not line.strip():
                continue
            name = line.split("{")[0].split(" ")[0]
            base = name
            for suffix in ("_bucket", "_sum", "_count"):
                if name.endswith(suffix):
                    base = name[: -len(suffix)]
            assert base in seen, name

    def test_counter_families_end_in_total(self):
        text = render_prometheus(_snapshot())
        for line in text.splitlines():
            if line.startswith("# TYPE ") and line.endswith(" counter"):
                assert line.split(" ")[2].endswith("_total")

    def test_histogram_buckets_are_cumulative_and_end_at_count(self):
        text = render_prometheus(_snapshot())
        lines = [
            line for line in text.splitlines()
            if line.startswith("repro_service_route_seconds_bucket")
            and 'route="ingest"' in line
        ]
        counts = [int(line.rsplit(" ", 1)[1]) for line in lines]
        assert counts == sorted(counts)
        assert '+Inf' in lines[-1]
        assert counts[-1] == 3  # == _count

    def test_bucket_le_is_the_log2_upper_bound(self):
        reg = MetricsRegistry()
        reg.observe("lat", 0.004)  # bucket e=-8 -> le = 2^-7
        text = render_prometheus(reg.snapshot())
        assert 'le="%s"' % repr(2.0 ** -7) in text

    def test_rendering_is_byte_stable(self):
        assert render_prometheus(_snapshot()) == render_prometheus(_snapshot())

    def test_prom_name_sanitizes(self):
        assert prom_name("a.b-c/d") == "repro_a_b_c_d"
        assert prom_name("x", namespace="") == "x"


class TestParseRoundTrip:
    def test_full_snapshot_round_trips(self):
        snap = _snapshot()
        text = render_prometheus(snap)
        parsed = parse_prometheus(text)
        by_name = {}
        for s in parsed["samples"]:
            by_name.setdefault(s["name"], []).append(s)
        assert by_name["repro_service_requests_total"][0]["value"] == 7.0
        ingest_count = [
            s for s in by_name["repro_service_route_seconds_count"]
            if s["labels"] == {"route": "ingest"}
        ]
        assert ingest_count[0]["value"] == 3.0
        # timeline -> .last/.mean gauges
        assert by_name["repro_service_queue_depth_last"][0]["value"] == 4.0
        mean = by_name["repro_service_queue_depth_mean"][0]["value"]
        assert mean == pytest.approx(2.0)  # 0 for 1s, then 4 for 1s
        assert by_name["repro_end_time_seconds"][0]["value"] == 2.0

    def test_malformed_sample_raises(self):
        with pytest.raises(ValueError):
            parse_prometheus("# TYPE x counter\nx one\n")

    def test_sample_without_type_header_raises(self):
        with pytest.raises(ValueError):
            parse_prometheus("orphan_metric 1\n")

    def test_non_cumulative_buckets_raise(self):
        bad = (
            "# HELP h x\n# TYPE h histogram\n"
            'h_bucket{le="1"} 5\nh_bucket{le="2"} 3\n'
            'h_bucket{le="+Inf"} 5\nh_sum 1\nh_count 5\n'
        )
        with pytest.raises(ValueError, match="cumulative"):
            parse_prometheus(bad)

    def test_infinity_bucket_sorts_last(self):
        ok = (
            "# HELP h x\n# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 5\nh_bucket{le="1"} 2\n'
            "h_sum 1\nh_count 5\n"
        )
        parse_prometheus(ok)  # out-of-order lines, still cumulative by le
