"""Pytest path setup for the obs tests' shared ``obsutil`` helpers."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
