"""Critical-path attribution: forest recovery, layer map, straggler chain."""

import pytest

from obsutil import make_payload

from repro.errors import TelemetryError
from repro.obs.critpath import (
    DATA_SYSCALLS,
    STACK_LAYERS,
    SpanNode,
    build_forest,
    critical_path,
    flamegraph_lines,
    payload_spans,
    render_critical_path,
    stack_layer,
    track_stats,
)
from repro.obs.metrics import canonical_json
from repro.obs.spans import KERNEL_PID

# Two ranks: rank 0 runs an MPI-IO libcall wrapping a data syscall; rank 1
# runs a longer bare libcall and finishes last (the straggler).
SPANS = [
    (0, 0, "MPI_File_write_all", "libcall", 0.0, 0.010),
    (0, 0, "SYS_write", "syscall", 0.002, 0.006),
    (1, 1, "MPI_File_write_all", "libcall", 0.0, 0.012),
]


class TestStackLayer:
    @pytest.mark.parametrize(
        "cat,name,pid,layer",
        [
            ("kernel", "des.drain", KERNEL_PID, "des"),
            ("collective", "MPI_Barrier:wait", 0, "simmpi"),
            ("net", "net.send", 0, "network"),
            ("vfs", "vfs_write", 0, "simfs"),
            ("libcall", "MPI_File_open", 0, "simmpi"),
            ("libcall", "MPIO_Wait", 0, "simmpi"),
            ("libcall", "lt_record", 0, "framework"),
            ("syscall", "SYS_write", 0, "simfs"),
            ("syscall", "SYS_open", 0, "simos"),
            ("weird", "anything", 0, "framework"),
        ],
    )
    def test_attribution_table(self, cat, name, pid, layer):
        assert stack_layer(cat, name, pid) == layer
        assert layer in STACK_LAYERS

    def test_every_data_syscall_charges_simfs(self):
        for name in DATA_SYSCALLS:
            assert stack_layer("syscall", name, 0) == "simfs"


class TestBuildForest:
    def test_containment_becomes_nesting(self):
        forest = build_forest(payload_spans(make_payload(SPANS)))
        assert set(forest) == {(0, 0), (1, 1)}
        (root,) = forest[(0, 0)]
        assert root.name == "MPI_File_write_all"
        assert [c.name for c in root.children] == ["SYS_write"]
        assert root.self_time == pytest.approx(0.010 - 0.006)
        assert root.children[0].self_time == pytest.approx(0.006)

    def test_sequential_siblings_stay_siblings(self):
        spans = [
            (0, 0, "first", "syscall", 0.0, 0.001),
            (0, 0, "second", "syscall", 0.001, 0.001),
        ]
        forest = build_forest(payload_spans(make_payload(spans)))
        assert [r.name for r in forest[(0, 0)]] == ["first", "second"]

    def test_zero_duration_span_at_parent_end_stays_nested(self):
        # A 0-duration marker recorded exactly at its parent's completion
        # instant belongs inside the parent, not after it.
        spans = [
            (0, 0, "parent", "libcall", 0.0, 0.004),
            (0, 0, "marker", "syscall", 0.004, 0.0),
        ]
        forest = build_forest(payload_spans(make_payload(spans)))
        (root,) = forest[(0, 0)]
        assert [c.name for c in root.children] == ["marker"]

    def test_tied_zero_duration_spans_order_by_name_not_record_order(self):
        # Two zero-duration markers at the same instant: the recorder may
        # interleave them either way, but the recovered forest (and every
        # artifact derived from it) must not depend on record order.
        tied = [
            (0, 0, "b_marker", "syscall", 0.001, 0.0),
            (0, 0, "a_marker", "syscall", 0.001, 0.0),
        ]
        for spans in (tied, list(reversed(tied))):
            forest = build_forest(payload_spans(make_payload(spans)))
            assert [r.name for r in forest[(0, 0)]] == ["a_marker", "b_marker"]

    def test_tied_identical_intervals_nest_deterministically(self):
        tied = [
            (0, 0, "beta", "libcall", 0.0, 0.002),
            (0, 0, "alpha", "libcall", 0.0, 0.002),
        ]
        reports = [
            critical_path(make_payload(spans))
            for spans in (tied, list(reversed(tied)))
        ]
        assert canonical_json(reports[0]) == canonical_json(reports[1])
        forest = build_forest(payload_spans(make_payload(tied)))
        (root,) = forest[(0, 0)]
        assert root.name == "alpha"  # name breaks the (ts, dur) tie
        assert [c.name for c in root.children] == ["beta"]

    def test_self_time_clamps_at_zero(self):
        node = SpanNode("n", "syscall", 0.0, 0.001)
        node.children.append(SpanNode("c", "syscall", 0.0, 0.002))
        assert node.self_time == 0.0


class TestTrackStats:
    def test_busy_layers_and_names(self):
        stats = track_stats(make_payload(SPANS))
        s = stats[(0, 0)]
        assert s["busy"] == pytest.approx(0.010)
        assert s["end"] == pytest.approx(0.010)
        assert s["layers"]["simmpi"] == pytest.approx(0.004)
        assert s["layers"]["simfs"] == pytest.approx(0.006)
        assert s["names"]["SYS_write"] == {
            "count": 1,
            "total": pytest.approx(0.006),
            "self": pytest.approx(0.006),
        }


class TestCriticalPath:
    def test_straggler_and_chain(self):
        report = critical_path(make_payload(SPANS))
        assert report["schema"] == "repro/obs/critpath/v1"
        assert report["end_time"] == pytest.approx(0.012)
        assert report["n_spans"] == 3
        assert report["straggler"]["node"] == 1
        assert report["straggler"]["rank"] == 1
        assert [link["name"] for link in report["chain"]] == ["MPI_File_write_all"]
        assert report["chain"][0]["layer"] == "simmpi"
        assert report["layers"]["simmpi"] == pytest.approx(0.004 + 0.012)
        assert report["layers"]["simfs"] == pytest.approx(0.006)

    def test_kernel_track_charges_des(self):
        spans = [(KERNEL_PID, 0, "des.drain", "kernel", 0.0, 0.5)]
        report = critical_path(make_payload(spans))
        assert report["layers"] == {"des": 0.5}

    def test_straggler_ties_break_to_smallest_track(self):
        spans = [
            (1, 1, "a", "syscall", 0.0, 0.010),
            (0, 0, "b", "syscall", 0.0, 0.010),
        ]
        report = critical_path(make_payload(spans))
        assert (report["straggler"]["node"], report["straggler"]["rank"]) == (0, 0)

    def test_record_order_does_not_matter(self):
        a = critical_path(make_payload(SPANS))
        b = critical_path(make_payload(list(reversed(SPANS))))
        assert canonical_json(a) == canonical_json(b)

    def test_empty_payload_reports_nothing_to_attribute(self):
        report = critical_path(make_payload([]))
        assert report["straggler"] is None
        assert report["chain"] == []
        text = render_critical_path(report)
        assert "nothing to attribute" in text
        assert "--telemetry" in text

    def test_rejects_non_payload(self):
        with pytest.raises(TelemetryError):
            payload_spans({"schema": "something/else"})
        with pytest.raises(TelemetryError):
            payload_spans([1, 2, 3])


class TestFlamegraph:
    def test_collapsed_stacks_are_self_time_weighted(self):
        lines = flamegraph_lines(make_payload(SPANS))
        assert lines == sorted(lines)
        assert "node0 host00 rank 0;MPI_File_write_all 4000" in lines
        assert "node0 host00 rank 0;MPI_File_write_all;SYS_write 6000" in lines
        assert "node1 host01 rank 1;MPI_File_write_all 12000" in lines

    def test_zero_weight_stacks_dropped(self):
        spans = [(0, 0, "instant", "syscall", 0.0, 0.0)]
        assert flamegraph_lines(make_payload(spans)) == []

    def test_render_names_the_straggler(self):
        text = render_critical_path(critical_path(make_payload(SPANS)))
        assert "straggler: node1 host01 rank 1" in text
        assert "slowest-rank chain" in text
