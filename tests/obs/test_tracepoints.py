"""Tracepoint state, collector domain methods, and payload export."""

import pytest

from repro.des.simulator import Simulator
from repro.obs.tracepoints import (
    STATE,
    TelemetryCollector,
    TelemetryConfig,
    current,
    describe_event,
    enabled,
    session,
)


class TestSessionState:
    def test_off_by_default(self):
        assert current() is None
        assert not enabled()

    def test_session_installs_and_restores(self):
        with session() as col:
            assert current() is col
            assert enabled()
        assert current() is None

    def test_sessions_nest_and_shadow(self):
        with session() as outer:
            with session() as inner:
                assert inner is not outer
                assert current() is inner
            assert current() is outer
        assert current() is None

    def test_session_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with session():
                raise RuntimeError("boom")
        assert STATE.collector is None


class TestCollectorDomains:
    def test_des_events_and_queue_depth(self):
        col = TelemetryCollector()
        col.des_events(10)
        col.des_events(5)
        col.des_queue_depth(1.0, 3)
        snap = col.metrics.snapshot()
        assert snap["counters"]["des.events_dispatched"] == 15
        assert snap["counters"]["des.run_calls"] == 2
        assert snap["timelines"]["des.queue_depth"]["samples"] == [[1.0, 3]]
        assert col.spans.counters == [(-1, "des.queue_depth", 1.0, 3)]

    def test_os_call_feeds_metrics_and_spans(self):
        col = TelemetryCollector()
        col.os_track(0, "n0", 2, "rank 2")
        col.os_call(0, 2, "vfs", "write", 1.0, 0.25, 4096)
        snap = col.metrics.snapshot()
        assert snap["counters"]["os.calls.vfs"] == 1
        assert snap["counters"]["os.vfs.write"] == 1
        assert snap["histograms"]["os.io_request_bytes"]["count"] == 1
        assert col.spans.spans == [(0, 2, "write", "vfs", 1.0, 0.25, {"nbytes": 4096})]
        assert col.spans.thread_names[(0, 2)] == "rank 2"

    def test_os_call_without_spans(self):
        col = TelemetryCollector(TelemetryConfig(spans=False))
        col.os_call(0, 2, "vfs", "read", 0.0, 0.1, None)
        assert col.spans.spans == []
        assert col.metrics.snapshot()["counters"]["os.vfs.read"] == 1

    def test_cpu_busy_tracks_nesting_level(self):
        col = TelemetryCollector()
        col.cpu_busy(0, 0.0, +1)
        col.cpu_busy(0, 0.5, +1)
        col.cpu_busy(0, 1.0, -1)
        samples = col.metrics.snapshot()["timelines"]["cpu.node0.busy"]["samples"]
        assert samples == [[0.0, 1], [0.5, 2], [1.0, 1]]

    def test_network_and_storage_counters(self):
        col = TelemetryCollector()
        col.net_transfer(1024, 0.0, 0.5)
        col.net_nic("nic0", 0.1, 1)
        col.net_fabric(0.1, 4)
        col.disk_op("sda", 0.2, 512, False, 1)
        col.pfs_chunk("oss0", 0.3, 65536, True, 2)
        col.pfs_meta_rpc()
        col.pfs_lock_wait(0.01)
        col.cache_access("page", 3, 1)
        col.cache_writeback("page", 7)
        col.mpi_collective("barrier", 0, 0, 0.0, 0.2)
        col.mpi_message(256)
        c = col.metrics.snapshot()["counters"]
        assert c["net.transfers"] == 1 and c["net.bytes"] == 1024
        assert c["disk.sda.ops"] == 1 and c["disk.sda.seeks"] == 1
        assert c["pfs.oss0.ops"] == 1 and "pfs.oss0.seeks" not in c
        assert c["pfs.meta_rpcs"] == 1 and c["pfs.extent_locks"] == 1
        assert c["fscache.page.hits"] == 3 and c["fscache.page.misses"] == 1
        assert c["fscache.page.writebacks"] == 7
        assert c["mpi.collective.barrier"] == 1
        assert c["mpi.messages"] == 1 and c["mpi.message_bytes"] == 256

    def test_store_ingest_and_scan_counters(self):
        col = TelemetryCollector()
        col.store_ingest(4, 3, 1, 120)
        col.store_ingest(4, 0, 4, 120)
        col.store_scan(6, 2, 300)
        c = col.metrics.snapshot()["counters"]
        assert c["store.ingest.runs"] == 2
        assert c["store.ingest.segments"] == 8
        assert c["store.ingest.new_segments"] == 3
        assert c["store.ingest.deduped_segments"] == 5
        assert c["store.ingest.events"] == 240
        assert c["store.scan.queries"] == 1
        assert c["store.scan.segments_scanned"] == 6
        assert c["store.scan.segments_pruned"] == 2
        assert c["store.scan.events_matched"] == 300

    def test_ingest_inside_session_hits_store_counters(self, tmp_path):
        from repro.store import Query, TraceBank, run_query
        from repro.trace.records import TraceBundle, TraceFile
        from repro.trace.events import EventLayer, TraceEvent

        e = TraceEvent(timestamp=0.0, duration=0.001,
                       layer=EventLayer.SYSCALL, name="SYS_write")
        bank = TraceBank(tmp_path / "store")
        with session() as col:
            bank.ingest_bundle(TraceBundle(files={0: TraceFile([e])}))
            run_query(bank, Query(agg="ops"))
        c = col.metrics.snapshot()["counters"]
        assert c["store.ingest.runs"] == 1
        assert c["store.scan.queries"] == 1
        assert c["store.scan.events_matched"] == 1


class TestExport:
    def test_export_schema_and_purity(self):
        import json

        from repro.obs.metrics import canonical_json

        col = TelemetryCollector()
        col.des_events(3)
        col.os_track(0, "n0", 0, "rank 0")
        col.os_call(0, 0, "vfs", "open", 0.0, 0.001, None)
        payload = col.export(end_time=1.5)
        assert payload["schema"] == "repro/telemetry/v1"
        assert payload["metrics"]["end_time"] == 1.5
        assert payload["trace"]["traceEvents"]
        # export() promises JSON-normal form: round trip is the identity.
        assert json.loads(canonical_json(payload)) == payload


class TestObservedRun:
    def _run(self, col_config=None):
        sim = Simulator(seed=7)
        fired = []
        for i in range(200):
            sim.schedule(i * 0.01, fired.append, i)
        if col_config is None:
            sim.run()
            return sim, fired, None
        with session(col_config) as col:
            sim.run()
        return sim, fired, col

    def test_ring_buffer_holds_last_events(self):
        _sim, _fired, col = self._run(TelemetryConfig(ring_size=50))
        assert len(col.ring) == 50
        lines = col.format_ring()
        assert len(lines) == 50
        assert all(line.startswith("t=") for line in lines)
        # Oldest retained entry is dispatch #150 of 200.
        assert col.ring[0][0] == pytest.approx(150 * 0.01)

    def test_queue_depth_sampled_periodically(self):
        _sim, _fired, col = self._run(TelemetryConfig(queue_sample_every=64))
        samples = col.metrics.timeline("des.queue_depth").samples
        assert samples  # 200 events / 64 -> at least 3 samples
        assert all(depth >= 0 for (_t, depth) in samples)

    def test_events_executed_identical_with_and_without_telemetry(self):
        sim_off, fired_off, _ = self._run(None)
        sim_on, fired_on, col = self._run(TelemetryConfig())
        assert sim_off.events_executed == sim_on.events_executed == 200
        assert fired_off == fired_on
        assert (
            col.metrics.counter("des.events_dispatched").value
            == sim_on.events_executed
        )


class TestDescribeEvent:
    def test_bound_method_with_named_owner(self):
        class Disk:
            name = "sda"

            def _service(self):
                pass

        line = describe_event(1.25, Disk()._service, (4096,))
        assert line == "t=1.250000000 service<sda>(4096)"

    def test_plain_function(self):
        def tick():
            pass

        line = describe_event(0.0, tick, ())
        assert "tick" in line and line.startswith("t=0.000000000")
