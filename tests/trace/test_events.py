"""TraceEvent model and container tests."""

import pytest

from repro.trace.events import EventLayer, TraceEvent
from repro.trace.records import BarrierStamp, TraceBundle, TraceFile


def ev(name="SYS_write", ts=1.0, dur=0.01, **kw):
    defaults = dict(
        timestamp=ts,
        duration=dur,
        layer=EventLayer.SYSCALL,
        name=name,
        args=(3, "0x800", 4096),
        result=4096,
        pid=10,
        rank=2,
        hostname="h",
        user="u",
        nbytes=4096,
    )
    defaults.update(kw)
    return TraceEvent(**defaults)


class TestTraceEvent:
    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            ev(dur=-0.1)

    def test_layer_coerced_from_string(self):
        e = ev(layer="vfs")
        assert e.layer is EventLayer.VFS

    def test_args_coerced_to_tuple(self):
        e = ev(args=[1, 2])
        assert e.args == (1, 2)

    def test_end_timestamp(self):
        assert ev(ts=5.0, dur=0.25).end_timestamp == 5.25

    def test_is_io(self):
        assert ev().is_io
        assert not ev(nbytes=None).is_io

    def test_with_fields_copies(self):
        a = ev()
        b = a.with_fields(user="anon")
        assert b.user == "anon" and a.user == "u"
        assert b.name == a.name

    def test_brief_rendering(self):
        text = ev(name="SYS_open", args=("/etc/hosts", 0), result=3).brief()
        assert "SYS_open" in text and "'/etc/hosts'" in text and "= 3" in text


class TestTraceFile:
    def test_append_iterate_index(self):
        tf = TraceFile()
        tf.append(ev(ts=1.0))
        tf.append(ev(ts=2.0))
        assert len(tf) == 2
        assert tf[1].timestamp == 2.0
        assert [e.timestamp for e in tf] == [1.0, 2.0]

    def test_filter_and_by_layer(self):
        tf = TraceFile([ev(), ev(layer=EventLayer.LIBCALL, name="MPI_Barrier", nbytes=None)])
        sys_only = tf.by_layer(EventLayer.SYSCALL)
        assert sys_only.names() == ["SYS_write"]
        big = tf.filter(lambda e: (e.nbytes or 0) > 0)
        assert len(big) == 1

    def test_total_bytes_and_span(self):
        tf = TraceFile([ev(ts=1.0, dur=0.5), ev(ts=3.0, dur=0.25)])
        assert tf.total_bytes() == 8192
        assert tf.span() == pytest.approx(2.25)
        assert TraceFile().span() == 0.0

    def test_map_preserves_metadata(self):
        tf = TraceFile([ev()], hostname="h1", pid=5, rank=1, framework="x")
        out = tf.map(lambda e: e.with_fields(user="z"))
        assert out.hostname == "h1" and out.rank == 1
        assert out[0].user == "z"


class TestBarrierStamp:
    def test_exit_before_entry_rejected(self):
        with pytest.raises(ValueError):
            BarrierStamp("b", 0, "h", 1, entered_at=2.0, exited_at=1.0)


class TestTraceBundle:
    def test_all_events_source_order(self):
        b = TraceBundle()
        b.add_file(1, TraceFile([ev(ts=10.0)], rank=1))
        b.add_file(0, TraceFile([ev(ts=20.0)], rank=0))
        events = b.all_events()
        # key order, not time order
        assert [e.timestamp for e in events] == [20.0, 10.0]
        assert b.total_events() == 2
        assert b.n_sources == 2

    def test_map_events(self):
        b = TraceBundle(files={0: TraceFile([ev()])}, metadata={"k": "v"})
        out = b.map_events(lambda e: e.with_fields(user="anon"))
        assert out.files[0][0].user == "anon"
        assert out.metadata == {"k": "v"}
        # original untouched
        assert b.files[0][0].user == "u"
