"""Columnar codec (v2): lossless round trips, projection, robustness.

The satellite acceptance property: for any trace file, ``v2 decode ∘ v2
encode`` is the identity on events, and agrees with the v1 codec's round
trip wherever v1 is itself lossless.  Projection (:func:`read_columns`)
must return exactly the per-field views a full decode would.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TraceError, TraceFormatError, TraceTruncatedError
from repro.trace.binary_format import decode_trace_file, encode_trace_file
from repro.trace.columnar import (
    COLUMNS,
    MAGIC,
    decode_trace_file_columnar,
    encode_trace_file_columnar,
    is_columnar,
    read_columns,
    read_header,
)
from repro.trace.events import EventLayer, TraceEvent
from repro.trace.records import TraceFile

LAYERS = tuple(EventLayer)

# v1 renders results as text and re-parses ("5" and 5 collapse); drawing
# ints and non-numeric strings keeps both codecs lossless, so their round
# trips must agree exactly.
result_strategy = st.one_of(
    st.none(),
    st.integers(min_value=-(1 << 40), max_value=1 << 40),
    st.text(alphabet="EINTRAGAIN/_ o", min_size=1, max_size=8).filter(
        lambda s: not s.lstrip("-").isdigit()
    ),
)

finite = dict(allow_nan=False, allow_infinity=False)

event_strategy = st.builds(
    TraceEvent,
    timestamp=st.floats(min_value=0.0, max_value=1e6, **finite),
    duration=st.floats(min_value=0.0, max_value=1e3, **finite),
    layer=st.sampled_from(LAYERS),
    name=st.sampled_from(("SYS_read", "SYS_write", "MPI_File_open", "vfs_write")),
    args=st.lists(
        st.one_of(st.integers(-100, 1 << 30), st.text(max_size=6)), max_size=3
    ).map(tuple),
    result=result_strategy,
    pid=st.integers(min_value=0, max_value=1 << 31),
    rank=st.one_of(st.none(), st.integers(min_value=0, max_value=4096)),
    hostname=st.sampled_from(("", "host01", "node-7.example")),
    user=st.sampled_from(("", "u1", "alice")),
    path=st.one_of(st.none(), st.sampled_from(("/pfs/out", "/tmp/x", "/mnt/a b"))),
    fd=st.one_of(st.none(), st.integers(min_value=0, max_value=1 << 20)),
    nbytes=st.one_of(st.none(), st.integers(min_value=0, max_value=1 << 50)),
    offset=st.one_of(st.none(), st.integers(min_value=0, max_value=1 << 60)),
)

tracefile_strategy = st.builds(
    TraceFile,
    events=st.lists(event_strategy, max_size=24),
    hostname=st.sampled_from(("", "host00")),
    pid=st.integers(min_value=0, max_value=1 << 20),
    rank=st.one_of(st.none(), st.integers(min_value=0, max_value=64)),
    framework=st.sampled_from(("", "lanl-trace", "tracefs")),
)


def same_file(a: TraceFile, b: TraceFile) -> bool:
    return (
        a.events == b.events
        and a.hostname == b.hostname
        and a.pid == b.pid
        and a.rank == b.rank
        and a.framework == b.framework
    )


class TestRoundTrip:
    @given(tf=tracefile_strategy, compressed=st.booleans(), checksum=st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_v2_roundtrip_is_identity(self, tf, compressed, checksum):
        blob = encode_trace_file_columnar(tf, compressed=compressed, checksum=checksum)
        assert is_columnar(blob)
        assert same_file(decode_trace_file_columnar(blob), tf)

    @given(tf=tracefile_strategy)
    @settings(max_examples=40, deadline=None)
    def test_v1_and_v2_roundtrips_agree(self, tf):
        via_v1 = decode_trace_file(encode_trace_file(tf))
        via_v2 = decode_trace_file_columnar(encode_trace_file_columnar(tf))
        assert via_v2.events == via_v1.events

    @given(tf=tracefile_strategy)
    @settings(max_examples=30, deadline=None)
    def test_encoding_is_deterministic(self, tf):
        assert encode_trace_file_columnar(tf) == encode_trace_file_columnar(tf)

    def test_v2_preserves_result_type_v1_cannot(self):
        # v1 renders results as text, so the string "5" decodes as the
        # int 5; the columnar flags column keeps the distinction.
        e = TraceEvent(0.0, 0.0, EventLayer.SYSCALL, "SYS_read", result="5")
        tf = TraceFile([e], hostname="h", pid=1, rank=0, framework="f")
        via_v1 = decode_trace_file(encode_trace_file(tf)).events[0].result
        via_v2 = decode_trace_file_columnar(
            encode_trace_file_columnar(tf)
        ).events[0].result
        assert via_v1 == 5  # the v1 collapse
        assert via_v2 == "5"  # v2 keeps the string

    def test_empty_trace_file(self):
        tf = TraceFile([], hostname="h", pid=9, rank=None, framework="x")
        blob = encode_trace_file_columnar(tf)
        assert same_file(decode_trace_file_columnar(blob), tf)
        assert read_header(blob)["n_events"] == 0
        assert read_columns(blob, ["name", "timestamp"]) == {
            "name": [],
            "timestamp": [],
        }

    def test_delta_overflow_falls_back_to_raw(self):
        # Alternating 0 / 2^62 offsets overflow a signed-64 delta; the
        # column must fall back to raw packing and still round trip.
        events = [
            TraceEvent(0.0, 0.0, EventLayer.SYSCALL, "x",
                       offset=(1 << 62) if i % 2 else 0)
            for i in range(8)
        ]
        tf = TraceFile(events, hostname="h", pid=1, rank=0, framework="f")
        assert decode_trace_file_columnar(
            encode_trace_file_columnar(tf)
        ).events == events


class TestProjection:
    def build(self, n=64):
        events = [
            TraceEvent(
                timestamp=i * 0.5,
                duration=0.001 * i,
                layer=LAYERS[i % len(LAYERS)],
                name="op%d" % (i % 5),
                args=("a", i),
                result=None if i % 3 == 0 else ("E" if i % 3 == 1 else i),
                pid=7,
                rank=None if i % 4 == 0 else i % 4,
                hostname="h%d" % (i % 2),
                user="u",
                path=None if i % 2 == 0 else "/p/%d" % (i % 3),
                fd=None if i % 5 == 0 else i,
                nbytes=None if i % 6 == 0 else 1024 * i,
                offset=None if i % 7 == 0 else (1 << 33) * i,
            )
            for i in range(n)
        ]
        tf = TraceFile(events, hostname="h0", pid=7, rank=None, framework="f")
        return tf, encode_trace_file_columnar(tf)

    def test_every_field_matches_full_decode(self):
        tf, blob = self.build()
        fields = [name for name, _enc in COLUMNS if name != "flags"]
        cols = read_columns(blob, fields)
        for f in fields:
            if f == "layer":
                want = [e.layer.value for e in tf.events]
            elif f == "args":
                want = [
                    json.dumps(list(e.args), separators=(",", ":"))
                    for e in tf.events
                ]
            else:
                want = [getattr(e, f) for e in tf.events]
            assert cols[f] == want, f

    def test_header_stats_and_name_sets(self):
        tf, blob = self.build()
        h = read_header(blob)
        assert h["n_events"] == len(tf.events)
        assert h["names"] == sorted({e.name for e in tf.events})
        assert h["paths"] == sorted({e.path for e in tf.events if e.path})
        ts = [e.timestamp for e in tf.events]
        assert h["stats"]["timestamp"] == {"min": min(ts), "max": max(ts)}
        present_nb = [e.nbytes for e in tf.events if e.nbytes is not None]
        assert h["stats"]["nbytes"] == {"min": min(present_nb), "max": max(present_nb)}

    def test_unknown_column_rejected(self):
        _tf, blob = self.build(4)
        with pytest.raises(TraceFormatError):
            read_columns(blob, ["name", "no_such_column"])


class TestRobustness:
    def blob(self):
        _tf, blob = TestProjection().build(32)
        return blob

    def test_truncations_raise_trace_errors(self):
        blob = self.blob()
        for cut in (0, 2, 5, len(blob) // 3, len(blob) - 1):
            with pytest.raises(TraceError):
                decode_trace_file_columnar(blob[:cut])

    def test_bad_magic_rejected(self):
        blob = self.blob()
        with pytest.raises(TraceFormatError):
            decode_trace_file_columnar(b"XXXX" + blob[4:])
        assert not is_columnar(b"")
        assert not is_columnar(b"RTB1....")

    def test_unsupported_version_rejected(self):
        blob = bytearray(self.blob())
        blob[len(MAGIC)] = 0xEE
        with pytest.raises(TraceFormatError):
            decode_trace_file_columnar(bytes(blob))

    def test_flipped_column_byte_detected(self):
        # With checksums on, any corrupt column frame must surface as a
        # TraceError (checksum or format), never a wrong-answer decode.
        blob = self.blob()
        original = decode_trace_file_columnar(blob)
        for pos in range(len(MAGIC) + 2, len(blob), max(1, len(blob) // 40)):
            mutated = bytearray(blob)
            mutated[pos] ^= 0x01
            try:
                got = decode_trace_file_columnar(bytes(mutated))
            except TraceError:
                continue
            # json header bytes can flip harmlessly inside string values;
            # events must still never silently change.
            assert got.events == original.events

    def test_trailing_garbage_rejected(self):
        blob = self.blob()
        with pytest.raises(TraceFormatError):
            decode_trace_file_columnar(blob + b"\x00\x00\x00\x00")
