"""XTEA-CBC tests: inverses, avalanche, mode properties, validation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AnonymizationError
from repro.trace.crypto import (
    BLOCK_SIZE,
    KEY_SIZE,
    cbc_decrypt,
    cbc_encrypt,
    xtea_decrypt_block,
    xtea_encrypt_block,
)

KEY = bytes(range(16))
IV = bytes(range(8))


class TestBlockCipher:
    def test_encrypt_decrypt_inverse(self):
        block = b"8bytes!!"
        assert xtea_decrypt_block(KEY, xtea_encrypt_block(KEY, block)) == block

    def test_known_nontrivial_output(self):
        # ciphertext differs from plaintext and is deterministic
        c1 = xtea_encrypt_block(KEY, b"\x00" * 8)
        c2 = xtea_encrypt_block(KEY, b"\x00" * 8)
        assert c1 == c2 != b"\x00" * 8

    def test_key_sensitivity(self):
        other = bytes(range(1, 17))
        assert xtea_encrypt_block(KEY, b"A" * 8) != xtea_encrypt_block(other, b"A" * 8)

    def test_avalanche(self):
        a = xtea_encrypt_block(KEY, b"\x00" * 8)
        b = xtea_encrypt_block(KEY, b"\x01" + b"\x00" * 7)
        differing_bits = sum(bin(x ^ y).count("1") for x, y in zip(a, b))
        assert differing_bits > 16  # a single-bit change flips many output bits

    def test_validation(self):
        with pytest.raises(AnonymizationError):
            xtea_encrypt_block(b"short", b"8bytes!!")
        with pytest.raises(AnonymizationError):
            xtea_encrypt_block(KEY, b"toolongblock")

    @given(
        key=st.binary(min_size=KEY_SIZE, max_size=KEY_SIZE),
        block=st.binary(min_size=BLOCK_SIZE, max_size=BLOCK_SIZE),
    )
    @settings(max_examples=80, deadline=None)
    def test_inverse_property(self, key, block):
        assert xtea_decrypt_block(key, xtea_encrypt_block(key, block)) == block


class TestCBC:
    def test_round_trip(self):
        msg = b"The quick brown fox jumps over the lazy dog"
        assert cbc_decrypt(KEY, IV, cbc_encrypt(KEY, IV, msg)) == msg

    def test_empty_plaintext(self):
        assert cbc_decrypt(KEY, IV, cbc_encrypt(KEY, IV, b"")) == b""

    def test_equal_blocks_encrypt_differently(self):
        """The whole point of CBC over ECB."""
        msg = b"AAAAAAAA" * 4
        ct = cbc_encrypt(KEY, IV, msg)
        blocks = [ct[i : i + 8] for i in range(0, len(ct), 8)]
        assert len(set(blocks)) == len(blocks)

    def test_iv_changes_ciphertext(self):
        msg = b"hello world"
        other_iv = bytes(range(1, 9))
        assert cbc_encrypt(KEY, IV, msg) != cbc_encrypt(KEY, other_iv, msg)

    def test_wrong_key_fails_padding_or_garbles(self):
        ct = cbc_encrypt(KEY, IV, b"secret data here")
        other = bytes(range(16, 32))
        try:
            out = cbc_decrypt(other, IV, ct)
        except AnonymizationError:
            return  # padding check caught it
        assert out != b"secret data here"

    def test_ciphertext_length_validation(self):
        with pytest.raises(AnonymizationError):
            cbc_decrypt(KEY, IV, b"notablockmultiple")

    def test_iv_length_validation(self):
        with pytest.raises(AnonymizationError):
            cbc_encrypt(KEY, b"short", b"data")

    def test_corrupted_padding_detected(self):
        ct = bytearray(cbc_encrypt(KEY, IV, b"x"))
        ct[-1] ^= 0xFF
        with pytest.raises(AnonymizationError):
            cbc_decrypt(KEY, IV, bytes(ct))

    @given(
        key=st.binary(min_size=16, max_size=16),
        iv=st.binary(min_size=8, max_size=8),
        msg=st.binary(max_size=300),
    )
    @settings(max_examples=60, deadline=None)
    def test_round_trip_property(self, key, iv, msg):
        assert cbc_decrypt(key, iv, cbc_encrypt(key, iv, msg)) == msg

    @given(msg=st.binary(max_size=100))
    @settings(max_examples=30, deadline=None)
    def test_ciphertext_is_block_padded(self, msg):
        ct = cbc_encrypt(KEY, IV, msg)
        assert len(ct) % BLOCK_SIZE == 0
        assert len(ct) >= len(msg)
