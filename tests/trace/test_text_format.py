"""Human-readable codec tests, including property-based round-trips."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TraceFormatError
from repro.trace.events import EventLayer, TraceEvent
from repro.trace.records import TraceFile
from repro.trace.text_format import (
    decode_event,
    decode_trace_file,
    encode_event,
    encode_trace_file,
)


def sample_event(**kw):
    defaults = dict(
        timestamp=1159808385.170918,
        duration=0.000034,
        layer=EventLayer.SYSCALL,
        name="SYS_open",
        args=("/etc/hosts", 0, 438),
        result=3,
        pid=10378,
        rank=7,
        hostname="host13.lanl.gov",
        user="jdoe",
        path="/etc/hosts",
        fd=3,
    )
    defaults.update(kw)
    return TraceEvent(**defaults)


class TestEncodeEvent:
    def test_figure1_style_line(self):
        line = encode_event(sample_event(), annotated=False)
        assert line == '1159808385.170918 SYS_open("/etc/hosts", 0, 438) = 3 <0.000034>'

    def test_unfinished_rendering(self):
        line = encode_event(sample_event(result=None), annotated=False)
        assert line.endswith("<unfinished ...>")

    def test_annotated_line_has_machine_tail(self):
        line = encode_event(sample_event(), annotated=True)
        assert "\t# {" in line and '"rank":7' in line


class TestDecode:
    def test_round_trip_annotated(self):
        e = sample_event()
        assert decode_event(encode_event(e)) == e

    def test_bare_line_loses_only_identity(self):
        e = sample_event()
        got = decode_event(encode_event(e, annotated=False))
        assert got.name == e.name
        assert got.args == e.args
        assert got.result == e.result
        assert got.timestamp == pytest.approx(e.timestamp)
        assert got.rank is None  # identity not present in bare dialect

    def test_error_result_round_trips(self):
        e = sample_event(result="-1 ENOENT")
        assert decode_event(encode_event(e)).result == "-1 ENOENT"

    def test_garbage_rejected(self):
        with pytest.raises(TraceFormatError):
            decode_event("not a trace line at all")

    def test_bad_annotation_rejected(self):
        with pytest.raises(TraceFormatError):
            decode_event('1.0 SYS_open("/x") = 3 <0.1>\t# {broken json')

    def test_string_args_with_commas_and_quotes(self):
        e = sample_event(args=('weird, "path"', 1), path=None, fd=None)
        assert decode_event(encode_event(e)).args == ('weird, "path"', 1)


_names = st.sampled_from(
    ["SYS_open", "SYS_write", "SYS_read", "MPI_File_open", "MPI_Barrier", "vfs_write"]
)
_texts = st.text(
    alphabet=st.characters(blacklist_categories=("Cs", "Cc")), max_size=30
)
_args = st.tuples() | st.tuples(_texts) | st.tuples(_texts, st.integers(-5, 1 << 30), st.integers(0, 512))


@st.composite
def events(draw):
    return TraceEvent(
        timestamp=round(draw(st.floats(0, 2e9)), 6),
        duration=round(draw(st.floats(0, 100)), 6),
        layer=draw(st.sampled_from(list(EventLayer))),
        name=draw(_names),
        args=draw(_args),
        result=draw(st.none() | st.integers(-1, 1 << 40) | st.just("-1 EIO")),
        pid=draw(st.integers(0, 1 << 30)),
        rank=draw(st.none() | st.integers(0, 4096)),
        hostname=draw(st.sampled_from(["", "n01", "host13.lanl.gov"])),
        user=draw(st.sampled_from(["", "jdoe", "u123"])),
        path=draw(st.none() | st.just("/pfs/file.out")),
        fd=draw(st.none() | st.integers(0, 1 << 16)),
        nbytes=draw(st.none() | st.integers(0, 1 << 40)),
        offset=draw(st.none() | st.integers(0, 1 << 50)),
    )


class TestPropertyRoundTrip:
    @given(e=events())
    @settings(max_examples=120, deadline=None)
    def test_event_round_trip(self, e):
        assert decode_event(encode_event(e)) == e

    @given(
        evs=st.lists(events(), max_size=20),
        rank=st.none() | st.integers(0, 100),
    )
    @settings(max_examples=40, deadline=None)
    def test_trace_file_round_trip(self, evs, rank):
        tf = TraceFile(evs, hostname="n01", pid=42, rank=rank, framework="lanl-trace")
        got = decode_trace_file(encode_trace_file(tf))
        assert got.events == tf.events
        assert (got.hostname, got.pid, got.rank, got.framework) == (
            "n01",
            42,
            rank,
            "lanl-trace",
        )


class TestTraceFileFormat:
    def test_header_lines_present(self):
        tf = TraceFile([sample_event()], hostname="h", pid=1, rank=0, framework="f")
        text = encode_trace_file(tf)
        assert text.startswith("## repro-trace text v1\n")
        assert "## hostname=h pid=1 rank=0 framework=f" in text

    def test_comment_and_blank_lines_skipped(self):
        text = (
            "## repro-trace text v1\n"
            "\n"
            "# a stray comment\n"
            + encode_event(sample_event())
            + "\n"
        )
        tf = decode_trace_file(text)
        assert len(tf) == 1
