"""Fuzz / failure-injection properties for the trace codecs.

The contract under corruption: decoders either succeed or raise from the
:class:`~repro.errors.TraceError` family — never a bare ``struct.error``,
``UnicodeDecodeError``, ``KeyError``, hang, or silent garbage acceptance
for checksummed data.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TraceError
from repro.trace.binary_format import decode_trace_file, encode_trace_file
from repro.trace.checksum import unframe
from repro.trace.compressio import decompress
from repro.trace.events import EventLayer, TraceEvent
from repro.trace.records import TraceFile
from repro.trace.text_format import decode_trace_file as decode_text


def _sample_blob(n=20, **kw) -> bytes:
    tf = TraceFile(
        [
            TraceEvent(
                timestamp=float(i),
                duration=0.001,
                layer=EventLayer.SYSCALL,
                name="SYS_write",
                args=(3, "buf", 4096),
                result=4096,
                pid=1,
                rank=0,
                hostname="n",
                user="u",
                path="/f",
                nbytes=4096,
            )
            for i in range(n)
        ],
        hostname="n",
        pid=1,
        rank=0,
        framework="fuzz",
    )
    return encode_trace_file(tf, **kw)


class TestBinaryFuzz:
    @given(data=st.binary(max_size=400))
    @settings(max_examples=150, deadline=None)
    def test_arbitrary_bytes_never_crash(self, data):
        try:
            decode_trace_file(data)
        except TraceError:
            pass  # the only acceptable failure mode

    @given(
        position=st.integers(0, 10_000),
        flip=st.integers(1, 255),
        compressed=st.booleans(),
    )
    @settings(max_examples=120, deadline=None)
    def test_single_byte_corruption_detected_or_decoded(self, position, flip, compressed):
        blob = bytearray(_sample_blob(compressed=compressed))
        position %= len(blob)
        blob[position] ^= flip
        try:
            tf = decode_trace_file(bytes(blob))
        except TraceError:
            return
        # Corruption inside a checksummed frame must not survive; the only
        # byte positions allowed to decode are those the checksum does not
        # cover (magic/version are validated separately, so: none besides
        # changes that cancel out — impossible for a single flip).  If we
        # got here, the flip must have hit the header frame's *contents*
        # in a way that still checksums?  No: CRC covers it.  Therefore
        # reaching here is only legal if decode output equals the original.
        original = decode_trace_file(_sample_blob(compressed=compressed))
        assert tf.events == original.events

    @given(cut=st.integers(0, 5000))
    @settings(max_examples=80, deadline=None)
    def test_truncation_never_crashes(self, cut):
        blob = _sample_blob()
        cut %= len(blob)
        with pytest.raises(TraceError):
            decode_trace_file(blob[:cut])

    @given(garbage=st.binary(min_size=1, max_size=64))
    @settings(max_examples=60, deadline=None)
    def test_trailing_garbage_detected(self, garbage):
        blob = _sample_blob()
        try:
            decode_trace_file(blob + garbage)
        except TraceError:
            pass


class TestFramingFuzz:
    @given(data=st.binary(max_size=200), offset=st.integers(0, 64))
    @settings(max_examples=100, deadline=None)
    def test_unframe_never_crashes(self, data, offset):
        try:
            unframe(data, offset % (len(data) + 1))
        except TraceError:
            pass

    @given(data=st.binary(max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_decompress_never_crashes(self, data):
        try:
            decompress(data)
        except TraceError:
            pass


class TestCrashTruncationFuzz:
    """Fault-plane-generated corpus: a *real* crash-truncated capture.

    :func:`~repro.faults.corrupt.crashed_rank_blob` runs a traced job
    under a scheduled node crash and encodes the crashed rank's surviving
    (tail-truncated) capture; the corpus then applies crash-shaped
    corruptions (torn writes, unsynced-tail bit flips).  The decoder
    contract is the usual one: decode successfully or raise a clean
    :class:`~repro.errors.TraceError` — never hang, never index-error.
    """

    @pytest.fixture(scope="class")
    def crashed_blob(self):
        from repro.faults.corrupt import crashed_rank_blob

        return crashed_rank_blob(crash_node=1, crash_at=0.03, nprocs=2, seed=0)

    def test_crashed_capture_itself_decodes(self, crashed_blob):
        tf = decode_trace_file(crashed_blob)
        assert len(tf.events) > 0  # a partial capture survived the crash

    def test_corpus_is_deterministic(self, crashed_blob):
        from repro.faults.corrupt import crash_truncation_corpus

        a = crash_truncation_corpus(crashed_blob, seed=7, n=16)
        b = crash_truncation_corpus(crashed_blob, seed=7, n=16)
        assert a == b
        assert crash_truncation_corpus(crashed_blob, seed=8, n=16) != a

    def test_corpus_decodes_cleanly_or_raises_trace_errors(self, crashed_blob):
        from repro.faults.corrupt import crash_truncation_corpus

        for variant in crash_truncation_corpus(crashed_blob, seed=0, n=48):
            try:
                decode_trace_file(variant)
            except TraceError:
                pass  # the only acceptable failure mode

    @given(cut=st.integers(1, 10_000), flip=st.integers(1, 255))
    @settings(max_examples=60, deadline=None)
    def test_torn_and_flipped_variants_never_crash(self, crashed_blob, cut, flip):
        from repro.faults.corrupt import bit_flip, torn_write

        torn = torn_write(crashed_blob, cut % len(crashed_blob))
        blobs = [torn]
        if torn:
            blobs.append(bit_flip(torn, cut % len(torn), flip))
        for blob in blobs:
            try:
                decode_trace_file(blob)
            except TraceError:
                pass


class TestTypedDecodeErrors:
    """Targeted regressions for decode paths that once leaked bare
    exceptions (``UnicodeDecodeError``, ``TypeError``, ``AttributeError``)
    instead of the :class:`~repro.errors.TraceError` family.
    """

    def test_corrupt_utf8_string_field_is_format_error(self):
        from repro.errors import TraceFormatError
        from repro.trace.binary_format import decode_event_record, encode_event_record

        event = TraceEvent(
            timestamp=0.0, duration=0.0, layer=EventLayer.SYSCALL,
            name="SYS_write", hostname="node", user="u",
        )
        rec = bytearray(encode_event_record(event))
        # The name string body starts right after fixed part + rank + u16 len.
        name_at = rec.index(b"SYS_write")
        rec[name_at] = 0xFF  # 0xFF is never valid UTF-8
        with pytest.raises(TraceFormatError):
            decode_event_record(bytes(rec))

    def test_scalar_args_json_is_format_error(self):
        import json as _json
        import struct as _struct

        from repro.errors import TraceFormatError
        from repro.trace.binary_format import decode_event_record, encode_event_record

        event = TraceEvent(
            timestamp=0.0, duration=0.0, layer=EventLayer.SYSCALL,
            name="SYS_write", args=(3, 4096),
        )
        rec = encode_event_record(event)
        # The args JSON string is the final field; swap it for a bare
        # scalar ("5"), which json-parses fine but is not an args list.
        old = _json.dumps(list(event.args), separators=(",", ":")).encode()
        old_field = _struct.pack("<H", len(old)) + old
        assert rec.endswith(old_field)
        mangled = rec[: -len(old_field)] + _struct.pack("<H", 1) + b"5"
        with pytest.raises(TraceFormatError):
            decode_event_record(mangled)

    def test_non_object_header_is_format_error(self):
        import struct as _struct

        from repro.errors import TraceFormatError
        from repro.trace.checksum import frame as _frame

        blob = b"RTBF" + _struct.pack("<H", 1) + _frame(b"[1,2,3]")
        with pytest.raises(TraceFormatError):
            decode_trace_file(blob)


class TestCorpusCodecMatrix:
    """Crash-truncation corpus across the codec flag matrix.

    Checksummed blobs must *detect* corruption; unchecksummed blobs may
    decode damaged data — but both must stay inside the TraceError
    contract for every corpus variant.
    """

    @pytest.mark.parametrize("compressed", [True, False])
    @pytest.mark.parametrize("checksum", [True, False])
    def test_corpus_stays_typed(self, compressed, checksum):
        from repro.faults.corrupt import crash_truncation_corpus

        blob = _sample_blob(compressed=compressed, checksum=checksum)
        for variant in crash_truncation_corpus(blob, seed=3, n=24):
            try:
                decode_trace_file(variant)
            except TraceError:
                pass  # the only acceptable failure mode


class TestTextFuzz:
    @given(text=st.text(max_size=300))
    @settings(max_examples=120, deadline=None)
    def test_arbitrary_text_never_crashes(self, text):
        try:
            decode_text(text)
        except TraceError:
            pass

    @given(
        line_to_mangle=st.integers(0, 19),
        insertion=st.text(min_size=1, max_size=10),
        column=st.integers(0, 60),
    )
    @settings(max_examples=80, deadline=None)
    def test_mangled_lines_raise_cleanly(self, line_to_mangle, insertion, column):
        from repro.trace.text_format import encode_trace_file as encode_text

        tf = TraceFile(
            [
                TraceEvent(
                    timestamp=float(i), duration=0.0,
                    layer=EventLayer.SYSCALL, name="SYS_read",
                )
                for i in range(20)
            ]
        )
        lines = encode_text(tf).splitlines()
        idx = 2 + line_to_mangle  # skip headers
        line = lines[idx]
        col = column % (len(line) + 1)
        lines[idx] = line[:col] + insertion + line[col:]
        try:
            decode_text("\n".join(lines))
        except TraceError:
            pass
