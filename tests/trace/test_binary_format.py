"""Binary codec tests: round-trips, buffering, compression, failure injection."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TraceChecksumError, TraceFormatError, TraceTruncatedError
from repro.trace.binary_format import (
    decode_event_record,
    decode_trace_file,
    encode_event_record,
    encode_trace_file,
)
from repro.trace.events import EventLayer, TraceEvent
from repro.trace.records import TraceFile


def sample_event(**kw):
    defaults = dict(
        timestamp=1159808385.170918,
        duration=0.011131,
        layer=EventLayer.VFS,
        name="vfs_write",
        args=(5, 0, 65536),
        result=65536,
        pid=4242,
        rank=None,
        hostname="node03",
        user="jdoe",
        path="/tmp/out.dat",
        fd=5,
        nbytes=65536,
        offset=0,
    )
    defaults.update(kw)
    return TraceEvent(**defaults)


class TestRecordRoundTrip:
    def test_single_record(self):
        e = sample_event()
        data = encode_event_record(e)
        got, consumed = decode_event_record(data)
        assert got == e
        assert consumed == len(data)

    def test_optional_fields_none(self):
        e = sample_event(rank=None, fd=None, nbytes=None, offset=None, path=None, result=None)
        got, _ = decode_event_record(encode_event_record(e))
        assert got == e

    def test_zero_valued_optionals_distinct_from_none(self):
        e = sample_event(rank=0, fd=0, nbytes=0, offset=0)
        got, _ = decode_event_record(encode_event_record(e))
        assert got.rank == 0 and got.fd == 0 and got.nbytes == 0 and got.offset == 0

    def test_truncated_record_detected(self):
        data = encode_event_record(sample_event())
        with pytest.raises(TraceTruncatedError):
            decode_event_record(data[: len(data) // 2])


_names = st.sampled_from(["vfs_write", "SYS_open", "MPI_File_read_at"])


@st.composite
def events(draw):
    return TraceEvent(
        timestamp=draw(st.floats(0, 2e9, allow_nan=False)),
        duration=draw(st.floats(0, 1e4, allow_nan=False)),
        layer=draw(st.sampled_from(list(EventLayer))),
        name=draw(_names),
        args=tuple(draw(st.lists(st.integers(-(1 << 31), 1 << 31) | st.text(max_size=20), max_size=4))),
        result=draw(st.none() | st.integers(-(1 << 40), 1 << 40)),
        pid=draw(st.integers(0, (1 << 32) - 1)),
        rank=draw(st.none() | st.integers(-1, 1 << 20)),
        hostname=draw(st.text(max_size=20)),
        user=draw(st.text(max_size=10)),
        path=draw(st.none() | st.text(min_size=1, max_size=40)),
        fd=draw(st.none() | st.integers(0, 1 << 30)),
        nbytes=draw(st.none() | st.integers(0, 1 << 50)),
        offset=draw(st.none() | st.integers(0, 1 << 50)),
    )


class TestFileRoundTripProperties:
    @given(
        evs=st.lists(events(), max_size=30),
        compressed=st.booleans(),
        block=st.sampled_from([1, 3, 128]),
    )
    @settings(max_examples=50, deadline=None)
    def test_round_trip(self, evs, compressed, block):
        tf = TraceFile(evs, hostname="n", pid=9, rank=3, framework="tracefs")
        blob = encode_trace_file(tf, compressed=compressed, block_records=block)
        got = decode_trace_file(blob)
        assert got.events == tf.events
        assert got.rank == 3 and got.framework == "tracefs"

    @given(evs=st.lists(events(), min_size=1, max_size=10))
    @settings(max_examples=20, deadline=None)
    def test_compression_only_changes_size(self, evs):
        tf = TraceFile(evs)
        a = decode_trace_file(encode_trace_file(tf, compressed=True))
        b = decode_trace_file(encode_trace_file(tf, compressed=False))
        assert a.events == b.events


class TestBinaryProperties:
    def test_compression_shrinks_repetitive_traces(self):
        tf = TraceFile([sample_event(timestamp=float(i)) for i in range(500)])
        packed = encode_trace_file(tf, compressed=True)
        raw = encode_trace_file(tf, compressed=False)
        assert len(packed) < len(raw) / 2

    def test_binary_is_smaller_than_text(self):
        """The point of a binary format: 'save space' (§3.1)."""
        from repro.trace.text_format import encode_trace_file as encode_text

        tf = TraceFile([sample_event(timestamp=float(i)) for i in range(200)])
        assert len(encode_trace_file(tf, compressed=False)) < len(
            encode_text(tf).encode()
        )

    def test_block_records_validated(self):
        with pytest.raises(TraceFormatError):
            encode_trace_file(TraceFile(), block_records=0)


class TestFailureInjection:
    def blob(self, n=10, **kw):
        tf = TraceFile([sample_event(timestamp=float(i)) for i in range(n)])
        return encode_trace_file(tf, **kw)

    def test_bad_magic(self):
        with pytest.raises(TraceFormatError):
            decode_trace_file(b"NOPE" + self.blob()[4:])

    def test_bad_version(self):
        blob = bytearray(self.blob())
        blob[4] = 99
        with pytest.raises(TraceFormatError):
            decode_trace_file(bytes(blob))

    def test_truncation_detected_everywhere(self):
        blob = self.blob(n=20, block_records=4)
        for cut in (5, len(blob) // 3, len(blob) - 1):
            with pytest.raises((TraceTruncatedError, TraceFormatError)):
                decode_trace_file(blob[:cut])

    def test_single_bit_flip_detected(self):
        blob = bytearray(self.blob(n=8, compressed=False))
        # flip a bit inside the last block's payload (past header frame)
        blob[-3] ^= 0x40
        with pytest.raises((TraceChecksumError, TraceFormatError)):
            decode_trace_file(bytes(blob))

    def test_event_count_mismatch_detected(self):
        # corrupt by appending a duplicate final frame: count no longer matches
        blob = self.blob(n=4, block_records=2, compressed=False)
        # find the last frame and duplicate it
        import struct

        # header: magic(4) + version(2); then frames of (len,crc,payload)
        pos = 6
        frames = []
        while pos < len(blob):
            (length, _crc) = struct.unpack_from("<II", blob, pos)
            frames.append((pos, 8 + length))
            pos += 8 + length
        start, size = frames[-1]
        with pytest.raises(TraceFormatError):
            decode_trace_file(blob + blob[start : start + size])
