"""Checksum framing and compression tag tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TraceChecksumError, TraceFormatError, TraceTruncatedError
from repro.trace.checksum import crc32, frame, unframe
from repro.trace.compressio import TAG_RAW, TAG_ZLIB, compress, decompress


class TestFraming:
    def test_round_trip(self):
        payload = b"hello frames"
        data = frame(payload)
        got, end = unframe(data)
        assert got == payload and end == len(data)

    def test_multiple_frames_sequential(self):
        data = frame(b"one") + frame(b"two") + frame(b"three")
        out = []
        pos = 0
        while pos < len(data):
            payload, pos = unframe(data, pos)
            out.append(payload)
        assert out == [b"one", b"two", b"three"]

    def test_corruption_detected(self):
        data = bytearray(frame(b"payload bytes"))
        data[-1] ^= 0x01
        with pytest.raises(TraceChecksumError):
            unframe(bytes(data))

    def test_checksum_disabled_skips_verification(self):
        data = bytearray(frame(b"payload bytes", with_checksum=False))
        data[-1] ^= 0x01  # silently accepted: crc field is zero
        got, _ = unframe(bytes(data))
        assert got != b"payload bytes"

    def test_truncated_header(self):
        with pytest.raises(TraceTruncatedError):
            unframe(b"\x01\x02")

    def test_truncated_payload(self):
        data = frame(b"full payload")
        with pytest.raises(TraceTruncatedError):
            unframe(data[:-3])

    @given(payload=st.binary(max_size=1000))
    @settings(max_examples=60, deadline=None)
    def test_round_trip_property(self, payload):
        got, end = unframe(frame(payload))
        assert got == payload

    def test_crc32_stable(self):
        assert crc32(b"") == 0
        assert crc32(b"abc") == crc32(b"abc")
        assert crc32(b"abc") != crc32(b"abd")


class TestCompression:
    def test_round_trip_compressible(self):
        data = b"abc" * 1000
        packed = compress(data)
        assert packed[0] == TAG_ZLIB
        assert len(packed) < len(data)
        assert decompress(packed) == data

    def test_incompressible_falls_back_to_raw(self):
        import os

        data = os.urandom(64)
        packed = compress(data)
        assert packed[0] == TAG_RAW
        assert decompress(packed) == data

    def test_disabled_compression(self):
        packed = compress(b"abc" * 100, enabled=False)
        assert packed[0] == TAG_RAW

    def test_empty_payload(self):
        with pytest.raises(TraceFormatError):
            decompress(b"")

    def test_unknown_tag(self):
        with pytest.raises(TraceFormatError):
            decompress(b"\x7fwhatever")

    def test_corrupt_zlib_stream(self):
        packed = bytearray(compress(b"abcdef" * 100))
        assert packed[0] == TAG_ZLIB
        packed[5] ^= 0xFF
        with pytest.raises(TraceFormatError):
            decompress(bytes(packed))

    @given(payload=st.binary(max_size=2000), enabled=st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_round_trip_property(self, payload, enabled):
        assert decompress(compress(payload, enabled=enabled)) == payload
