"""Anonymization engine tests: both taxonomy levels."""

import base64

import pytest

from repro.errors import AnonymizationError
from repro.trace.anonymize import (
    ANONYMIZABLE_FIELDS,
    FieldSelectiveAnonymizer,
    RandomizingAnonymizer,
    anonymize_bundle,
)
from repro.trace.crypto import cbc_decrypt
from repro.trace.events import EventLayer, TraceEvent
from repro.trace.records import TraceBundle, TraceFile

KEY = b"0123456789abcdef"


def ev(**kw):
    defaults = dict(
        timestamp=1.0,
        duration=0.1,
        layer=EventLayer.SYSCALL,
        name="SYS_open",
        args=("/pfs/projects/secret-app/run42.out", 0),
        result=3,
        pid=10,
        rank=0,
        hostname="host13.lanl.gov",
        user="jdoe",
        path="/pfs/projects/secret-app/run42.out",
        nbytes=None,
    )
    defaults.update(kw)
    return TraceEvent(**defaults)


class TestRandomizing:
    def test_sensitive_fields_replaced(self):
        anon = RandomizingAnonymizer()
        out = anon(ev())
        assert out.user != "jdoe"
        assert out.hostname != "host13.lanl.gov"
        assert "secret-app" not in (out.path or "")
        assert all("secret-app" not in str(a) for a in out.args)

    def test_consistent_pseudonyms(self):
        """Same input maps to the same token — structure survives."""
        anon = RandomizingAnonymizer()
        a = anon(ev())
        b = anon(ev(name="SYS_stat64"))
        assert a.path == b.path
        assert a.user == b.user

    def test_different_inputs_differ(self):
        anon = RandomizingAnonymizer()
        a = anon(ev(user="alice"))
        b = anon(ev(user="bob"))
        assert a.user != b.user

    def test_mount_prefix_preserved(self):
        out = RandomizingAnonymizer()(ev())
        assert out.path.startswith("/pfs/")

    def test_fresh_instances_produce_unlinkable_tokens(self):
        a = RandomizingAnonymizer()(ev()).user
        b = RandomizingAnonymizer()(ev()).user
        assert a != b  # mapping not derivable across runs

    def test_field_selection(self):
        anon = RandomizingAnonymizer(fields={"user"})
        out = anon(ev())
        assert out.user != "jdoe"
        assert out.path == ev().path  # untouched

    def test_unknown_field_rejected(self):
        with pytest.raises(AnonymizationError):
            RandomizingAnonymizer(fields={"nonsense"})

    def test_untouched_event_returned_as_is(self):
        anon = RandomizingAnonymizer(fields={"user"})
        e = ev(user="")
        assert anon(e) is e

    def test_non_path_args_preserved(self):
        out = RandomizingAnonymizer()(ev(args=("/pfs/x", 42, "flagtext")))
        assert out.args[1] == 42
        assert out.args[2] == "flagtext"


class TestFieldSelective:
    def test_encrypt_mode_is_recoverable_with_key(self):
        """Tracefs's design: encryption, not true anonymization (§4.2)."""
        anon = FieldSelectiveAnonymizer({"user"}, mode="encrypt", key=KEY)
        out = anon(ev())
        assert out.user.startswith("enc:")
        blob = base64.urlsafe_b64decode(out.user[4:])
        iv, ct = blob[:8], blob[8:]
        assert cbc_decrypt(KEY, iv, ct) == b"jdoe"

    def test_equal_values_stay_joinable(self):
        anon = FieldSelectiveAnonymizer({"path"}, mode="encrypt", key=KEY)
        a, b = anon(ev()), anon(ev(name="SYS_stat64"))
        assert a.path == b.path

    def test_encrypt_requires_key(self):
        with pytest.raises(AnonymizationError):
            FieldSelectiveAnonymizer({"user"}, mode="encrypt")
        with pytest.raises(AnonymizationError):
            FieldSelectiveAnonymizer({"user"}, mode="encrypt", key=b"short")

    def test_randomize_mode_delegates(self):
        anon = FieldSelectiveAnonymizer({"user"}, mode="randomize")
        out = anon(ev())
        assert out.user != "jdoe" and not out.user.startswith("enc:")

    def test_bad_mode_rejected(self):
        with pytest.raises(AnonymizationError):
            FieldSelectiveAnonymizer({"user"}, mode="shred")

    def test_unselected_fields_untouched(self):
        anon = FieldSelectiveAnonymizer({"user"}, mode="encrypt", key=KEY)
        out = anon(ev())
        assert out.hostname == "host13.lanl.gov"
        assert out.path == ev().path


class TestBundleAnonymization:
    def test_whole_bundle(self):
        bundle = TraceBundle(
            files={
                0: TraceFile([ev(rank=0)], rank=0),
                1: TraceFile([ev(rank=1)], rank=1),
            },
            metadata={"workload": "mpi_io_test"},
        )
        out = anonymize_bundle(bundle, RandomizingAnonymizer())
        assert all(
            e.user != "jdoe" for e in out.all_events()
        )
        assert out.metadata["workload"] == "mpi_io_test"
        # original unchanged (anonymize for release, keep the master)
        assert all(e.user == "jdoe" for e in bundle.all_events())
