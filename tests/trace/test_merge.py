"""Heterogeneous trace aggregation tests (the future-work API)."""

from hypothesis import given, settings, strategies as st

from repro.trace.events import EventLayer, TraceEvent
from repro.trace.merge import interleave, merge_bundles
from repro.trace.records import BarrierStamp, TraceBundle, TraceFile


def ev(name, ts, rank=0, layer=EventLayer.SYSCALL):
    return TraceEvent(
        timestamp=ts, duration=0.0, layer=layer, name=name, rank=rank
    )


def make_bundles():
    lanl = TraceBundle(
        files={
            0: TraceFile([ev("SYS_write", 1.0, 0)], rank=0, framework="lanl-trace"),
            1: TraceFile([ev("SYS_write", 2.0, 1)], rank=1, framework="lanl-trace"),
        },
        barrier_stamps=[BarrierStamp("before x", 0, "h", 1, 0.5, 0.6)],
        metadata={"mode": "ltrace"},
    )
    tracefs = TraceBundle(
        files={0: TraceFile([ev("vfs_write", 1.5, 0, EventLayer.VFS)], framework="tracefs")},
        metadata={"target_mount": "/tmp"},
    )
    return lanl, tracefs


def test_merge_renumbers_sources():
    lanl, tracefs = make_bundles()
    merged = merge_bundles([("lanl", lanl), ("tfs", tracefs)])
    assert merged.n_sources == 3
    assert sorted(merged.files) == [0, 1, 2]
    assert merged.total_events() == 3


def test_merge_tags_frameworks_with_labels():
    lanl, tracefs = make_bundles()
    merged = merge_bundles([("lanl", lanl), ("tfs", tracefs)])
    tags = {tf.framework for tf in merged.files.values()}
    assert tags == {"lanl/lanl-trace", "tfs/tracefs"}


def test_merge_carries_stamps_and_metadata():
    lanl, tracefs = make_bundles()
    merged = merge_bundles([("lanl", lanl), ("tfs", tracefs)])
    assert len(merged.barrier_stamps) == 1
    assert merged.metadata["lanl.mode"] == "ltrace"
    assert merged.metadata["tfs.target_mount"] == "/tmp"
    assert merged.metadata["merged_sources"] == {"lanl": [0, 1], "tfs": [2]}


def test_interleave_orders_by_timestamp():
    lanl, tracefs = make_bundles()
    merged = merge_bundles([("lanl", lanl), ("tfs", tracefs)])
    ordered = interleave(merged)
    assert [e.timestamp for e in ordered] == [1.0, 1.5, 2.0]
    assert [e.name for e in ordered] == ["SYS_write", "vfs_write", "SYS_write"]


def test_merge_empty_list():
    merged = merge_bundles([])
    assert merged.n_sources == 0
    assert interleave(merged) == []


class TestDeterministicOrdering:
    """Merge/interleave output must not depend on dict insertion order,
    and equal timestamps must tie-break stably (by source framework, file
    key, then capture sequence) — the property the TraceBank archive's
    byte-identity contract builds on.
    """

    @given(
        perm=st.permutations(list(range(4))),
        stamps=st.lists(
            st.sampled_from([0.0, 0.5, 0.5, 1.0]), min_size=1, max_size=6
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_interleave_ignores_file_insertion_order(self, perm, stamps):
        def build(order):
            files = {}
            for key in order:
                files[key] = TraceFile(
                    [ev("op%d_%d" % (key, i), ts) for i, ts in enumerate(stamps)],
                    rank=key,
                    framework="fw%d" % (key % 2),
                )
            return TraceBundle(files=files)

        base = interleave(build(list(range(4))))
        shuffled = interleave(build(list(perm)))
        assert shuffled == base

    @given(perm=st.permutations(["alpha", "beta", "gamma"]))
    @settings(max_examples=30, deadline=None)
    def test_merge_metadata_ignores_insertion_order(self, perm):
        def build(keys):
            md = {k: "v-" + k for k in keys}
            return TraceBundle(
                files={0: TraceFile([ev("SYS_write", 1.0)], rank=0)},
                metadata=md,
            )

        base = merge_bundles([("src", build(["alpha", "beta", "gamma"]))])
        shuffled = merge_bundles([("src", build(list(perm)))])
        assert list(base.metadata.items()) == list(shuffled.metadata.items())

    def test_equal_timestamps_tie_break_total(self):
        # Two files, fully tied timestamps: order is (framework, key, seq).
        bundle = TraceBundle(
            files={
                1: TraceFile([ev("b0", 1.0), ev("b1", 1.0)], framework="zz"),
                0: TraceFile([ev("a0", 1.0), ev("a1", 1.0)], framework="aa"),
            }
        )
        assert [e.name for e in interleave(bundle)] == ["a0", "a1", "b0", "b1"]
