"""Heterogeneous trace aggregation tests (the future-work API)."""

from repro.trace.events import EventLayer, TraceEvent
from repro.trace.merge import interleave, merge_bundles
from repro.trace.records import BarrierStamp, TraceBundle, TraceFile


def ev(name, ts, rank=0, layer=EventLayer.SYSCALL):
    return TraceEvent(
        timestamp=ts, duration=0.0, layer=layer, name=name, rank=rank
    )


def make_bundles():
    lanl = TraceBundle(
        files={
            0: TraceFile([ev("SYS_write", 1.0, 0)], rank=0, framework="lanl-trace"),
            1: TraceFile([ev("SYS_write", 2.0, 1)], rank=1, framework="lanl-trace"),
        },
        barrier_stamps=[BarrierStamp("before x", 0, "h", 1, 0.5, 0.6)],
        metadata={"mode": "ltrace"},
    )
    tracefs = TraceBundle(
        files={0: TraceFile([ev("vfs_write", 1.5, 0, EventLayer.VFS)], framework="tracefs")},
        metadata={"target_mount": "/tmp"},
    )
    return lanl, tracefs


def test_merge_renumbers_sources():
    lanl, tracefs = make_bundles()
    merged = merge_bundles([("lanl", lanl), ("tfs", tracefs)])
    assert merged.n_sources == 3
    assert sorted(merged.files) == [0, 1, 2]
    assert merged.total_events() == 3


def test_merge_tags_frameworks_with_labels():
    lanl, tracefs = make_bundles()
    merged = merge_bundles([("lanl", lanl), ("tfs", tracefs)])
    tags = {tf.framework for tf in merged.files.values()}
    assert tags == {"lanl/lanl-trace", "tfs/tracefs"}


def test_merge_carries_stamps_and_metadata():
    lanl, tracefs = make_bundles()
    merged = merge_bundles([("lanl", lanl), ("tfs", tracefs)])
    assert len(merged.barrier_stamps) == 1
    assert merged.metadata["lanl.mode"] == "ltrace"
    assert merged.metadata["tfs.target_mount"] == "/tmp"
    assert merged.metadata["merged_sources"] == {"lanl": [0, 1], "tfs": [2]}


def test_interleave_orders_by_timestamp():
    lanl, tracefs = make_bundles()
    merged = merge_bundles([("lanl", lanl), ("tfs", tracefs)])
    ordered = interleave(merged)
    assert [e.timestamp for e in ordered] == [1.0, 1.5, 2.0]
    assert [e.name for e in ordered] == ["SYS_write", "vfs_write", "SYS_write"]


def test_merge_empty_list():
    merged = merge_bundles([])
    assert merged.n_sources == 0
    assert interleave(merged) == []
