"""Point-to-point and collective communication tests."""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.errors import CollectiveMismatch, RankError
from repro.simfs.localfs import LocalFS
from repro.simfs.vfs import VFS
from repro.simmpi import ANY_SOURCE, ANY_TAG, mpirun
from repro.simmpi.comm import Communicator, MPIRank
from repro.simos.process import SimProcess


def launch(app, nprocs, args=None, **kw):
    cluster = Cluster(
        ClusterConfig(n_nodes=nprocs, clock_skew_stddev=0, clock_drift_stddev=0)
    )
    vfs = VFS(cluster.sim)
    vfs.mount("/", LocalFS(cluster.sim))
    return mpirun(cluster, vfs, app, nprocs=nprocs, args=args or {})


class TestPointToPoint:
    def test_send_recv_delivers_object(self):
        def app(mpi, args):
            if mpi.rank == 0:
                yield from mpi.send(1, {"a": 7, "b": 3.14}, tag=11)
                return "sent"
            data = yield from mpi.recv(source=0, tag=11)
            return data

        job = launch(app, 2)
        assert job.results[0] == "sent"
        assert job.results[1] == {"a": 7, "b": 3.14}

    def test_recv_blocks_until_send(self):
        def app(mpi, args):
            if mpi.rank == 0:
                yield from mpi.proc._charge(1.0)  # think before sending
                yield from mpi.send(1, "late")
                return None
            t0 = mpi.sim.now
            msg = yield from mpi.recv(source=0)
            return (msg, mpi.sim.now - t0)

        job = launch(app, 2)
        msg, waited = job.results[1]
        assert msg == "late"
        assert waited >= 1.0

    def test_wildcard_source_and_tag(self):
        def app(mpi, args):
            if mpi.rank == 0:
                a = yield from mpi.recv(source=ANY_SOURCE, tag=ANY_TAG)
                b = yield from mpi.recv(source=ANY_SOURCE, tag=ANY_TAG)
                return sorted([a, b])
            yield from mpi.send(0, "from-%d" % mpi.rank, tag=mpi.rank)
            return None

        job = launch(app, 3)
        assert job.results[0] == ["from-1", "from-2"]

    def test_tag_matching_skips_other_tags(self):
        def app(mpi, args):
            if mpi.rank == 0:
                yield from mpi.send(1, "first", tag=1)
                yield from mpi.send(1, "second", tag=2)
                return None
            two = yield from mpi.recv(source=0, tag=2)
            one = yield from mpi.recv(source=0, tag=1)
            return (two, one)

        job = launch(app, 2)
        assert job.results[1] == ("second", "first")

    def test_messages_preserve_fifo_per_pair(self):
        def app(mpi, args):
            if mpi.rank == 0:
                for i in range(5):
                    yield from mpi.send(1, i)
                return None
            got = []
            for _ in range(5):
                got.append((yield from mpi.recv(source=0)))
            return got

        job = launch(app, 2)
        assert job.results[1] == [0, 1, 2, 3, 4]

    def test_send_to_bad_rank(self):
        def app(mpi, args):
            if mpi.rank == 0:
                yield from mpi.send(5, "x")
            yield from mpi.barrier()

        with pytest.raises(RankError):
            launch(app, 2)

    def test_payload_bytes_cost_transfer_time(self):
        def app(mpi, args):
            if mpi.rank == 0:
                t0 = mpi.sim.now
                yield from mpi.send(1, "big", nbytes=args["nbytes"])
                return mpi.sim.now - t0
            yield from mpi.recv(source=0)
            return None

        small = launch(app, 2, {"nbytes": 1024}).results[0]
        big = launch(app, 2, {"nbytes": 64 * 1024 * 1024}).results[0]
        assert big > small


class TestCollectives:
    def test_barrier_synchronizes_all(self):
        def app(mpi, args):
            yield from mpi.proc._charge(0.1 * mpi.rank)  # staggered arrival
            yield from mpi.barrier()
            return mpi.sim.now

        job = launch(app, 4)
        # all ranks released at (approximately) the same true time
        assert max(job.results) - min(job.results) < 1e-6
        assert min(job.results) >= 0.3  # waited for the slowest

    def test_bcast_distributes_root_value(self):
        def app(mpi, args):
            value = {"payload": 42} if mpi.rank == 1 else None
            got = yield from mpi.bcast(value, root=1)
            return got

        job = launch(app, 4)
        assert all(r == {"payload": 42} for r in job.results)

    def test_gather_collects_in_rank_order(self):
        def app(mpi, args):
            got = yield from mpi.gather(mpi.rank * 10, root=0)
            return got

        job = launch(app, 4)
        assert job.results[0] == [0, 10, 20, 30]
        assert all(r is None for r in job.results[1:])

    def test_allgather(self):
        def app(mpi, args):
            return (yield from mpi.allgather(chr(ord("a") + mpi.rank)))

        job = launch(app, 3)
        assert all(r == ["a", "b", "c"] for r in job.results)

    def test_reduce_and_allreduce(self):
        def app(mpi, args):
            s = yield from mpi.reduce(mpi.rank + 1, root=0)
            m = yield from mpi.allreduce(mpi.rank, op=max)
            return s, m

        job = launch(app, 4)
        assert job.results[0] == (10, 3)
        assert all(r[1] == 3 for r in job.results)

    def test_scatter(self):
        def app(mpi, args):
            objs = [i * i for i in range(mpi.size)] if mpi.rank == 0 else None
            return (yield from mpi.scatter(objs, root=0))

        job = launch(app, 4)
        assert job.results == [0, 1, 4, 9]

    def test_scatter_wrong_length_fails(self):
        def app(mpi, args):
            objs = [1, 2] if mpi.rank == 0 else None  # too short for 3 ranks
            return (yield from mpi.scatter(objs, root=0))

        with pytest.raises(RankError):
            launch(app, 3)

    def test_mismatched_collectives_raise(self):
        def app(mpi, args):
            if mpi.rank == 0:
                yield from mpi.barrier()
            else:
                yield from mpi.bcast("x", root=1)

        with pytest.raises(CollectiveMismatch):
            launch(app, 2)

    def test_sequential_collectives_keep_order(self):
        def app(mpi, args):
            a = yield from mpi.allreduce(1)
            b = yield from mpi.allreduce(2)
            return (a, b)

        job = launch(app, 3)
        assert all(r == (3, 6) for r in job.results)

    def test_wtime_is_local_clock(self):
        cluster = Cluster(ClusterConfig(n_nodes=2, clock_skew_stddev=0.5, seed=1))
        vfs = VFS(cluster.sim)
        vfs.mount("/", LocalFS(cluster.sim))

        def app(mpi, args):
            yield from mpi.barrier()
            return mpi.wtime()

        job = mpirun(cluster, vfs, app, nprocs=2)
        # exiting the same barrier, yet the reported times differ: skew.
        assert abs(job.results[0] - job.results[1]) > 1e-3

    def test_get_rank_and_size_are_traced_libcalls(self):
        def app(mpi, args):
            r = yield from mpi.get_rank()
            s = yield from mpi.get_size()
            return (r, s, mpi.proc.libcall_count)

        job = launch(app, 2)
        assert job.results[0][:2] == (0, 2)
        assert job.results[0][2] >= 2
