"""Two-phase collective I/O (write_at_all) tests."""

import pytest

from repro.errors import InvalidArgument
from repro.harness.figures import paper_testbed
from repro.harness.testbed import build_testbed
from repro.simmpi import MPIFile, MPI_MODE_CREATE, MPI_MODE_WRONLY, mpirun
from repro.units import KiB
from repro.workloads.patterns import AccessPattern, block_offset

NP = 8


def run_app(app, args=None, nprocs=NP):
    tb = build_testbed(paper_testbed(nprocs=nprocs))
    job = mpirun(tb.cluster, tb.vfs, app, nprocs=nprocs, args=args or {})
    return tb, job


def strided_app(collective, nobj, bs):
    def app(mpi, args):
        f = yield from MPIFile.open(
            mpi, "/pfs/out", MPI_MODE_WRONLY | MPI_MODE_CREATE, collective=True
        )
        total = 0
        if collective:
            extents = [
                (
                    block_offset(
                        AccessPattern.N_TO_1_STRIDED, mpi.rank, mpi.size, j, bs, nobj
                    ),
                    bs,
                )
                for j in range(nobj)
            ]
            total += yield from f.write_at_all(extents=extents)
        else:
            for j in range(nobj):
                off = block_offset(
                    AccessPattern.N_TO_1_STRIDED, mpi.rank, mpi.size, j, bs, nobj
                )
                total += yield from f.write_at(off, bs)
        yield from f.close()
        yield from mpi.barrier()
        return total

    return app


class TestCorrectness:
    def test_file_fully_written(self):
        tb, job = run_app(strided_app(True, nobj=16, bs=64 * KiB))
        assert tb.pfs.ns.lookup("out").size == NP * 16 * 64 * KiB
        assert all(r == 16 * 64 * KiB for r in job.results)

    def test_single_extent_form(self):
        def app(mpi, args):
            f = yield from MPIFile.open(
                mpi, "/pfs/one", MPI_MODE_WRONLY | MPI_MODE_CREATE, collective=True
            )
            n = yield from f.write_at_all(mpi.rank * 64 * KiB, 64 * KiB)
            yield from f.close()
            return n

        tb, job = run_app(app)
        assert tb.pfs.ns.lookup("one").size == NP * 64 * KiB
        assert all(r == 64 * KiB for r in job.results)

    def test_missing_arguments_rejected(self):
        def app(mpi, args):
            f = yield from MPIFile.open(
                mpi, "/pfs/bad", MPI_MODE_WRONLY | MPI_MODE_CREATE, collective=True
            )
            yield from f.write_at_all()

        with pytest.raises(InvalidArgument):
            run_app(app)

    def test_overlapping_extents_merge(self):
        """Overlapping contributions must not double-write or crash."""

        def app(mpi, args):
            f = yield from MPIFile.open(
                mpi, "/pfs/ovl", MPI_MODE_WRONLY | MPI_MODE_CREATE, collective=True
            )
            # every rank writes the same region
            yield from f.write_at_all(0, 128 * KiB)
            yield from f.close()
            return 0

        tb, _ = run_app(app)
        assert tb.pfs.ns.lookup("ovl").size == 128 * KiB

    def test_zero_length_contribution(self):
        """Ranks may contribute nothing (uneven decompositions)."""

        def app(mpi, args):
            f = yield from MPIFile.open(
                mpi, "/pfs/zero", MPI_MODE_WRONLY | MPI_MODE_CREATE, collective=True
            )
            nbytes = 64 * KiB if mpi.rank == 0 else 0
            n = yield from f.write_at_all(0, nbytes)
            yield from f.close()
            return n

        tb, job = run_app(app)
        assert tb.pfs.ns.lookup("zero").size == 64 * KiB
        assert job.results[0] == 64 * KiB and job.results[1] == 0


class TestPerformance:
    def test_collective_beats_independent_on_strided(self):
        """The two-phase payoff: strided small blocks become sequential
        file-domain writes."""
        _, independent = run_app(strided_app(False, nobj=64, bs=64 * KiB))
        _, collective = run_app(strided_app(True, nobj=64, bs=64 * KiB))
        assert collective.elapsed < 0.7 * independent.elapsed

    def test_collective_events_visible_to_tracers(self):
        from repro.frameworks.ptrace import PTrace
        from repro.harness.experiment import run_traced

        def app(mpi, args):
            f = yield from MPIFile.open(
                mpi, "/pfs/t", MPI_MODE_WRONLY | MPI_MODE_CREATE, collective=True
            )
            yield from f.write_at_all(mpi.rank * 64 * KiB, 64 * KiB)
            yield from f.close()
            return 0

        _, traced = run_traced(PTrace, app, {}, config=paper_testbed(nprocs=4), nprocs=4)
        names = {e.name for e in traced.bundle.all_events()}
        assert "SYS_pwrite64" in names  # the aggregated domain writes
