"""MPI-IO tests: file ops, the Figure 1 syscall sequence, nonblocking I/O."""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.errors import InvalidArgument, ReplayError
from repro.harness.testbed import TestbedConfig, build_testbed
from repro.simmpi import (
    MPIFile,
    MPI_MODE_CREATE,
    MPI_MODE_RDONLY,
    MPI_MODE_RDWR,
    MPI_MODE_WRONLY,
    mpirun,
)
from repro.simmpi.mpiio import _amode_to_flags
from repro.simos.interpose import Interposer
from repro.simos import syscalls as sc
from repro.trace.events import EventLayer
from repro.trace.records import TraceFile
from repro.units import KiB


def launch(app, nprocs=2, args=None, setup=None):
    tb = build_testbed(TestbedConfig())
    return mpirun(tb.cluster, tb.vfs, app, nprocs=nprocs, args=args or {}, setup=setup)


class TestAmode:
    def test_modes_translate(self):
        _amode_to_flags(MPI_MODE_RDONLY)
        _amode_to_flags(MPI_MODE_WRONLY | MPI_MODE_CREATE)
        _amode_to_flags(MPI_MODE_RDWR)

    def test_missing_access_mode_rejected(self):
        with pytest.raises(InvalidArgument):
            _amode_to_flags(MPI_MODE_CREATE)


class TestFileOps:
    def test_write_read_roundtrip_sizes(self):
        def app(mpi, args):
            f = yield from MPIFile.open(
                mpi, "/pfs/data", MPI_MODE_RDWR | MPI_MODE_CREATE
            )
            n = yield from f.write_at(mpi.rank * 1000, 1000)
            size = yield from f.get_size()
            got = yield from f.read_at(mpi.rank * 1000, 1000)
            yield from f.close()
            return n, size, got

        job = launch(app, nprocs=2)
        for n, size, got in job.results:
            assert n == 1000 and got == 1000
            assert size in (1000, 2000)  # depends on write interleaving

    def test_collective_open_synchronizes(self):
        def app(mpi, args):
            yield from mpi.proc._charge(0.2 * mpi.rank)
            f = yield from MPIFile.open(
                mpi, "/pfs/x", MPI_MODE_WRONLY | MPI_MODE_CREATE, collective=True
            )
            t = mpi.sim.now
            yield from f.close()
            return t

        job = launch(app, nprocs=3)
        assert max(job.results) - min(job.results) < 1e-6

    def test_independent_open_does_not_synchronize(self):
        def app(mpi, args):
            yield from mpi.proc._charge(0.2 * mpi.rank)
            f = yield from MPIFile.open(
                mpi, "/pfs/x%d" % mpi.rank, MPI_MODE_WRONLY | MPI_MODE_CREATE,
                collective=False,
            )
            t = mpi.sim.now
            yield from f.close()
            return t

        job = launch(app, nprocs=3)
        assert max(job.results) - min(job.results) >= 0.2

    def test_use_after_close_rejected(self):
        def app(mpi, args):
            f = yield from MPIFile.open(
                mpi, "/pfs/x", MPI_MODE_WRONLY | MPI_MODE_CREATE, collective=False
            )
            yield from f.close()
            try:
                yield from f.write_at(0, 10)
            except ReplayError:
                return "rejected"

        job = launch(app, nprocs=1)
        assert job.results[0] == "rejected"

    def test_set_size_and_sync(self):
        def app(mpi, args):
            f = yield from MPIFile.open(
                mpi, "/pfs/x", MPI_MODE_WRONLY | MPI_MODE_CREATE, collective=False
            )
            yield from f.set_size(12345)
            yield from f.sync()
            size = yield from f.get_size()
            yield from f.close()
            return size

        assert launch(app, nprocs=1).results[0] == 12345


class TestFigure1Sequence:
    def test_open_emits_statfs_open_fcntl(self):
        """MPI_File_open's body makes the §Figure-1 syscall sequence."""
        sinks = {}

        def setup(rank, proc, mpirank):
            sink = TraceFile(rank=rank)
            sinks[rank] = sink
            proc.attach(Interposer(sink, per_event_cost=0), EventLayer.SYSCALL)
            proc.attach(Interposer(sink, per_event_cost=0), EventLayer.LIBCALL)

        def app(mpi, args):
            f = yield from MPIFile.open(
                mpi, "/pfs/file", MPI_MODE_WRONLY | MPI_MODE_CREATE, collective=False
            )
            yield from f.write_at(0, 32 * KiB)
            yield from f.close()

        launch(app, nprocs=1, setup=setup)
        names = [e.name for e in sinks[0]]
        # library call present...
        assert "MPI_File_open" in names
        assert "MPI_File_write_at" in names
        # ...with the Figure 1 syscalls underneath, in order
        i_statfs = names.index(sc.SYS_STATFS)
        i_open = names.index(sc.SYS_OPEN)
        i_fcntl = names.index(sc.SYS_FCNTL)
        assert i_statfs < i_open < i_fcntl
        # write_at = seek + write
        assert sc.SYS_LSEEK in names and sc.SYS_WRITE in names

    def test_syscall_only_tracer_misses_library_layer(self):
        sinks = {}

        def setup(rank, proc, mpirank):
            sink = TraceFile(rank=rank)
            sinks[rank] = sink
            proc.attach(Interposer(sink, per_event_cost=0), EventLayer.SYSCALL)

        def app(mpi, args):
            f = yield from MPIFile.open(
                mpi, "/pfs/file", MPI_MODE_WRONLY | MPI_MODE_CREATE, collective=False
            )
            yield from f.close()

        launch(app, nprocs=1, setup=setup)
        names = [e.name for e in sinks[0]]
        assert "MPI_File_open" not in names
        assert sc.SYS_OPEN in names


class TestNonblocking:
    def test_iwrite_then_wait(self):
        def app(mpi, args):
            f = yield from MPIFile.open(
                mpi, "/pfs/nb", MPI_MODE_WRONLY | MPI_MODE_CREATE, collective=False
            )
            req = yield from f.iwrite_at(0, 64 * KiB)
            n = yield from f.wait(req)
            size = yield from f.get_size()
            yield from f.close()
            return n, size, req.done

        job = launch(app, nprocs=1)
        n, size, done = job.results[0]
        assert n == 64 * KiB and size == 64 * KiB and done

    def test_iwrite_overlaps_with_compute(self):
        def app(mpi, args):
            f = yield from MPIFile.open(
                mpi, "/pfs/nb", MPI_MODE_WRONLY | MPI_MODE_CREATE, collective=False
            )
            t0 = mpi.sim.now
            req = yield from f.iwrite_at(0, 1024 * KiB)
            yield from mpi.proc._charge(0.05)  # overlapped compute
            yield from f.wait(req)
            elapsed_overlapped = mpi.sim.now - t0
            yield from f.close()
            return elapsed_overlapped

        overlapped = launch(app, nprocs=1).results[0]

        def app_seq(mpi, args):
            f = yield from MPIFile.open(
                mpi, "/pfs/nb2", MPI_MODE_WRONLY | MPI_MODE_CREATE, collective=False
            )
            t0 = mpi.sim.now
            yield from f.write_at(0, 1024 * KiB)
            yield from mpi.proc._charge(0.05)
            sequential = mpi.sim.now - t0
            yield from f.close()
            return sequential

        sequential = launch(app_seq, nprocs=1).results[0]
        assert overlapped < sequential
