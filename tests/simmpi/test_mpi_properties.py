"""Property-based tests for the simulated MPI runtime."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import Cluster, ClusterConfig
from repro.simfs.localfs import LocalFS
from repro.simfs.vfs import VFS
from repro.simmpi import mpirun


def launch(app, nprocs, args=None):
    cluster = Cluster(
        ClusterConfig(n_nodes=nprocs, clock_skew_stddev=0, clock_drift_stddev=0)
    )
    vfs = VFS(cluster.sim)
    vfs.mount("/", LocalFS(cluster.sim))
    return mpirun(cluster, vfs, app, nprocs=nprocs, args=args or {})


@st.composite
def message_patterns(draw):
    """A random, deliverable message pattern: (sender, receiver, tag) list.

    Every message sent is also received (by-source matching), so the
    pattern always completes.
    """
    n = draw(st.integers(2, 5))
    n_msgs = draw(st.integers(0, 12))
    msgs = [
        (
            draw(st.integers(0, n - 1)),
            draw(st.integers(0, n - 1)),
            draw(st.integers(0, 3)),
        )
        for _ in range(n_msgs)
    ]
    msgs = [(s, r, t) for s, r, t in msgs if s != r]
    return n, msgs


@given(pattern=message_patterns())
@settings(max_examples=40, deadline=None)
def test_every_sent_message_is_received_exactly_once(pattern):
    n, msgs = pattern

    def app(mpi, args):
        yield from mpi.barrier()
        # send all my messages
        for s, r, t in msgs:
            if s == mpi.rank:
                yield from mpi.send(r, (s, r, t), tag=t)
        # receive everything addressed to me (in per-sender order)
        got = []
        for s, r, t in msgs:
            if r == mpi.rank:
                got.append((yield from mpi.recv(source=s, tag=t)))
        yield from mpi.barrier()
        return got

    job = launch(app, n)
    received = [m for rank_msgs in job.results for m in rank_msgs]
    assert sorted(received) == sorted(msgs)


@given(
    n=st.integers(2, 6),
    values=st.lists(st.integers(-1000, 1000), min_size=6, max_size=6),
    n_rounds=st.integers(1, 4),
)
@settings(max_examples=30, deadline=None)
def test_collective_algebra(n, values, n_rounds):
    """Reductions/gathers agree with plain Python over any inputs."""
    vals = values[:n]

    def app(mpi, args):
        out = []
        for _ in range(n_rounds):
            s = yield from mpi.allreduce(vals[mpi.rank])
            m = yield from mpi.allreduce(vals[mpi.rank], op=max)
            g = yield from mpi.allgather(vals[mpi.rank])
            out.append((s, m, g))
        return out

    job = launch(app, n)
    for rank_out in job.results:
        for s, m, g in rank_out:
            assert s == sum(vals)
            assert m == max(vals)
            assert g == vals


@given(
    n=st.integers(2, 5),
    delays=st.lists(st.floats(0.0, 0.5), min_size=5, max_size=5),
)
@settings(max_examples=30, deadline=None)
def test_barrier_is_a_barrier(n, delays):
    """No rank leaves before the slowest arrives, for any arrival skew."""

    def app(mpi, args):
        yield from mpi.proc._charge(delays[mpi.rank])
        arrived = mpi.sim.now
        yield from mpi.barrier()
        left = mpi.sim.now
        return arrived, left

    job = launch(app, n)
    slowest_arrival = max(a for a, _ in job.results)
    for _, left in job.results:
        assert left >= slowest_arrival


@given(n=st.integers(2, 5), root=st.integers(0, 4))
@settings(max_examples=20, deadline=None)
def test_bcast_scatter_duality(n, root):
    root %= n

    def app(mpi, args):
        payload = {"from": mpi.rank} if mpi.rank == root else None
        b = yield from mpi.bcast(payload, root=root)
        objs = list(range(n)) if mpi.rank == root else None
        s = yield from mpi.scatter(objs, root=root)
        return b, s

    job = launch(app, n)
    for rank, (b, s) in enumerate(job.results):
        assert b == {"from": root}
        assert s == rank
