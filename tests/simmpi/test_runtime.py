"""mpirun launcher tests."""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.errors import MPIError
from repro.harness.testbed import build_testbed
from repro.simmpi import mpirun


def test_nprocs_defaults_to_cluster_size():
    tb = build_testbed()

    def app(mpi, args):
        yield from mpi.barrier()
        return mpi.rank

    job = mpirun(tb.cluster, tb.vfs, app)
    assert job.results == list(range(len(tb.cluster.nodes)))


def test_zero_procs_rejected():
    tb = build_testbed()
    with pytest.raises(MPIError):
        mpirun(tb.cluster, tb.vfs, lambda mpi, args: iter(()), nprocs=0)


def test_ranks_round_robin_over_nodes():
    tb = build_testbed()
    n_nodes = len(tb.cluster.nodes)

    def app(mpi, args):
        yield from mpi.barrier()
        return mpi.proc.node.index

    job = mpirun(tb.cluster, tb.vfs, app, nprocs=n_nodes * 2)
    assert job.results[:n_nodes] == job.results[n_nodes:]


def test_elapsed_and_rank_end_times():
    tb = build_testbed()

    def app(mpi, args):
        yield from mpi.proc._charge(0.1 * (mpi.rank + 1))
        return mpi.rank

    job = mpirun(tb.cluster, tb.vfs, app, nprocs=3)
    assert job.elapsed == pytest.approx(0.3)
    assert job.rank_end_times == pytest.approx([0.1, 0.2, 0.3])
    assert job.nprocs == 3


def test_setup_and_teardown_called_per_rank():
    tb = build_testbed()
    setups, teardowns = [], []

    def app(mpi, args):
        yield from mpi.barrier()

    mpirun(
        tb.cluster,
        tb.vfs,
        app,
        nprocs=3,
        setup=lambda r, p, m: setups.append((r, p.pid)),
        teardown=lambda r, p, m: teardowns.append(r),
    )
    assert [s[0] for s in setups] == [0, 1, 2]
    assert sorted(set(s[1] for s in setups)) == [10000, 10001, 10002]
    assert teardowns == [0, 1, 2]


def test_rank_exception_propagates():
    tb = build_testbed()

    def app(mpi, args):
        yield from mpi.barrier()
        if mpi.rank == 1:
            raise ValueError("rank 1 exploded")

    with pytest.raises(ValueError, match="rank 1 exploded"):
        mpirun(tb.cluster, tb.vfs, app, nprocs=2)


def test_args_passed_through():
    tb = build_testbed()

    def app(mpi, args):
        yield from mpi.barrier()
        return args["x"] * 2

    job = mpirun(tb.cluster, tb.vfs, app, nprocs=2, args={"x": 21})
    assert job.results == [42, 42]


def test_run_false_defers_execution():
    tb = build_testbed()
    log = []

    def app(mpi, args):
        yield from mpi.barrier()
        log.append(mpi.rank)

    job = mpirun(tb.cluster, tb.vfs, app, nprocs=2, run=False)
    assert log == []
    tb.sim.run()
    assert sorted(log) == [0, 1]


def test_uid_and_user_propagate_to_processes():
    tb = build_testbed()

    def app(mpi, args):
        yield from mpi.barrier()

    job = mpirun(tb.cluster, tb.vfs, app, nprocs=2, uid=555, user="alice")
    assert all(p.uid == 555 and p.user == "alice" for p in job.procs)
