"""CLI figure commands (slow path, kept out of the main CLI test module)."""

import json

from repro.cli import main


def test_figure_quick(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)  # the default run cache lands in cwd
    assert main(["figure", "4", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "Figure 4" in out
    assert "64KiB" in out and "1MiB" in out
    assert "BW ovh" in out
    assert (tmp_path / ".repro-cache").is_dir()


def test_figure_quick_no_cache(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    assert main(["figure", "4", "--quick", "--no-cache", "--jobs", "2"]) == 0
    assert "Figure 4" in capsys.readouterr().out
    assert not (tmp_path / ".repro-cache").exists()


def test_figures_sweep_writes_bench_artifact(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    assert main(["figures", "--quick", "--jobs", "2"]) == 0
    out = capsys.readouterr().out
    assert "Figure 2" in out and "Figure 3" in out and "Figure 4" in out
    assert "elapsed time overhead" in out
    bench = json.loads((tmp_path / "BENCH_sweep.json").read_text())
    assert bench["schema"] == "repro/bench_sweep/v1"
    assert bench["jobs"] == 2
    assert len(bench["points"]) == 6  # 3 figures x 2 quick block sizes
    for point in bench["points"]:
        assert point["events_executed"] > 0
        assert not point["cached"]  # cold run
    assert bench["cache"]["enabled"] and bench["cache"]["hits"] == 0
    assert bench["elapsed_overhead_range"]["min"] > 0

    # Warm rerun: every point served from the cache, and byte-identical.
    cold_range = bench["elapsed_overhead_range"]
    assert main(["figures", "--quick", "--jobs", "2"]) == 0
    capsys.readouterr()
    warm = json.loads((tmp_path / "BENCH_sweep.json").read_text())
    assert warm["cache"]["hit_rate"] == 1.0
    assert all(p["cached"] for p in warm["points"])
    assert warm["elapsed_overhead_range"] == cold_range
