"""CLI figure command (slow path, kept out of the main CLI test module)."""

from repro.cli import main


def test_figure_quick(capsys):
    assert main(["figure", "4", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "Figure 4" in out
    assert "64KiB" in out and "1MiB" in out
    assert "BW ovh" in out
