"""Requirements -> recommendation engine tests (the Conclusion's logic)."""

import pytest

from repro.core.casestudy import paper_table2
from repro.core.requirements import Recommendation, Requirements, recommend
from repro.core.values import EventKind, TraceFormat


def classifications():
    return list(paper_table2().values())


class TestPaperConclusions:
    def test_replayable_parallel_user_gets_ptrace(self):
        """'For some applications, accurate replayable traces are desired.
        In this case, our taxonomy recommends that //TRACE should be
        considered.' (§5)"""
        recs = recommend(
            Requirements(need_replayable=True, need_parallel_fs=True),
            classifications(),
        )
        assert recs[0].framework_name == "//TRACE"
        assert recs[0].qualifies
        assert not any(r.qualifies for r in recs[1:])

    def test_anonymization_user_rejects_lanl_trace(self):
        """'for a tracing user who requires advanced features such as
        anonymization ... LANL-Trace is inadequate' (§5)"""
        recs = recommend(Requirements(min_anonymization=3), classifications())
        by_name = {r.framework_name: r for r in recs}
        assert not by_name["LANL-Trace"].qualifies
        assert any("anonymization" in v for v in by_name["LANL-Trace"].violations)
        assert by_name["Tracefs"].qualifies

    def test_easy_install_user_avoids_tracefs(self):
        """'one should anticipate considerable installation overhead' (§5)"""
        recs = recommend(Requirements(max_install_difficulty=3), classifications())
        by_name = {r.framework_name: r for r in recs}
        assert not by_name["Tracefs"].qualifies
        assert by_name["LANL-Trace"].qualifies
        assert by_name["//TRACE"].qualifies

    def test_skew_drift_user_gets_lanl_trace_only(self):
        recs = recommend(
            Requirements(need_skew_drift_accounting=True), classifications()
        )
        qualifying = [r.framework_name for r in recs if r.qualifies]
        assert qualifying == ["LANL-Trace"]


class TestConstraintMechanics:
    def test_no_constraints_everything_qualifies(self):
        recs = recommend(Requirements(), classifications())
        assert all(r.qualifies for r in recs)
        assert len(recs) == 3

    def test_qualifiers_sorted_before_disqualified(self):
        recs = recommend(Requirements(need_dependencies=True), classifications())
        assert [r.qualifies for r in recs] == [True, False, False]

    def test_event_kind_requirement(self):
        recs = recommend(
            Requirements(required_event_kinds={EventKind.FS_OPERATIONS}),
            classifications(),
        )
        qualifying = [r.framework_name for r in recs if r.qualifies]
        assert qualifying == ["Tracefs"]

    def test_trace_format_requirement(self):
        recs = recommend(
            Requirements(trace_format=TraceFormat.BINARY), classifications()
        )
        assert [r.framework_name for r in recs if r.qualifies] == ["Tracefs"]

    def test_overhead_bound(self):
        recs = recommend(
            Requirements(max_elapsed_overhead_percent=50.0), classifications()
        )
        by_name = {r.framework_name: r for r in recs}
        assert by_name["Tracefs"].qualifies  # <=12.4%
        assert not by_name["LANL-Trace"].qualifies  # up to 222%
        assert not by_name["//TRACE"].qualifies  # up to 205%

    def test_replay_error_bound(self):
        recs = recommend(
            Requirements(max_replay_error_percent=10.0), classifications()
        )
        assert [r.framework_name for r in recs if r.qualifies] == ["//TRACE"]
        strict = recommend(
            Requirements(max_replay_error_percent=2.0), classifications()
        )
        assert not any(r.qualifies for r in strict)

    def test_granularity_requirement(self):
        recs = recommend(
            Requirements(min_granularity_control=2), classifications()
        )
        assert [r.framework_name for r in recs if r.qualifies] == ["Tracefs"]

    def test_violations_explain_disqualification(self):
        recs = recommend(
            Requirements(need_replayable=True, min_anonymization=1),
            classifications(),
        )
        for r in recs:
            if not r.qualifies:
                assert r.violations
                assert "unsuitable" in r.render()

    def test_validation(self):
        with pytest.raises(ValueError):
            Requirements(min_anonymization=9)
        with pytest.raises(ValueError):
            Requirements(min_granularity_control=-1)

    def test_intrusiveness_bound_all_pass(self):
        # all three are fully passive (Table 2)
        recs = recommend(Requirements(max_intrusiveness=1), classifications())
        assert all(r.qualifies for r in recs)
