"""Classification validation, features schema, tables, comparison."""

import csv
import io

import pytest

from repro.core.classification import FrameworkClassification
from repro.core.compare import compare_classifications
from repro.core.casestudy import (
    lanl_trace_classification,
    paper_table2,
    ptrace_classification,
    tracefs_classification,
)
from repro.core.features import FEATURES, Feature, feature_domain, validate_value
from repro.core.summary_table import render_csv, render_markdown, render_summary_table
from repro.core.values import Likert, NA, OverheadReport, YesNo
from repro.errors import FeatureValueError, MissingFeatureError


class TestFeatureSchema:
    def test_thirteen_features_in_table1_order(self):
        assert len(FEATURES) == 13
        assert FEATURES[0] is Feature.PARALLEL_FS_COMPATIBILITY
        assert FEATURES[-1] is Feature.ELAPSED_TIME_OVERHEAD

    def test_every_feature_has_a_domain(self):
        for f in FEATURES:
            assert feature_domain(f)

    def test_validate_value(self):
        validate_value(Feature.REPLAYABLE_GENERATION, YesNo.YES)
        with pytest.raises(FeatureValueError):
            validate_value(Feature.REPLAYABLE_GENERATION, "yes")
        with pytest.raises(FeatureValueError):
            validate_value(Feature.EASE_OF_INSTALLATION, YesNo.YES)

    def test_na_allowed_only_where_paper_uses_it(self):
        from repro.core.values import NotApplicable

        allowed = {
            f for f in FEATURES if NotApplicable in feature_domain(f)
        }
        assert allowed == {
            Feature.REPLAY_FIDELITY,
            Feature.SKEW_DRIFT_ACCOUNTING,
            Feature.ELAPSED_TIME_OVERHEAD,
        }


class TestClassificationValidation:
    def test_missing_feature_rejected(self):
        values = dict(lanl_trace_classification()._values)
        del values[Feature.ANALYSIS_TOOLS]
        with pytest.raises(MissingFeatureError):
            FrameworkClassification("x", values)

    def test_wrong_value_type_rejected(self):
        values = dict(lanl_trace_classification()._values)
        values[Feature.ANALYSIS_TOOLS] = "nope"
        with pytest.raises(FeatureValueError):
            FrameworkClassification("x", values)

    def test_empty_name_rejected(self):
        with pytest.raises(MissingFeatureError):
            FrameworkClassification("", dict(lanl_trace_classification()._values))

    def test_with_value_is_functional_update(self):
        c = lanl_trace_classification()
        c2 = c.with_value(Feature.EASE_OF_INSTALLATION, Likert(5, "V. Difficult"))
        assert c2.cell(Feature.EASE_OF_INSTALLATION) == "5 (V. Difficult)"
        assert c.cell(Feature.EASE_OF_INSTALLATION) == "2 (Easy)"

    def test_iteration_and_as_dict(self):
        c = tracefs_classification()
        assert len(c) == 13
        d = c.as_dict()
        assert d["Trace data format"] == "Binary"
        assert set(d) == {f.display_name for f in FEATURES}


class TestCaseStudyTable2:
    """The published Table 2 values, verbatim."""

    def test_lanl_trace_column(self):
        c = lanl_trace_classification()
        assert c.cell(Feature.PARALLEL_FS_COMPATIBILITY) == "Yes"
        assert c.cell(Feature.EASE_OF_INSTALLATION) == "2 (Easy)"
        assert c.cell(Feature.ANONYMIZATION) == "No"
        assert c.cell(Feature.EVENT_TYPES) == "Systems calls, library calls"
        assert c.cell(Feature.GRANULARITY_CONTROL).startswith("1 (Simple)")
        assert c.cell(Feature.REPLAYABLE_GENERATION) == "No"
        assert c.cell(Feature.REPLAY_FIDELITY) == "N/A"
        assert c.cell(Feature.REVEALS_DEPENDENCIES) == "No"
        assert c.cell(Feature.INTRUSIVENESS) == "1 (Passive)"
        assert c.cell(Feature.TRACE_FORMAT) == "Human readable"
        assert c.cell(Feature.SKEW_DRIFT_ACCOUNTING) == "Yes"
        assert c.cell(Feature.ELAPSED_TIME_OVERHEAD).startswith("24% - 222%")

    def test_tracefs_column(self):
        c = tracefs_classification()
        assert c.cell(Feature.PARALLEL_FS_COMPATIBILITY) == "No"
        assert c.cell(Feature.EASE_OF_INSTALLATION) == "4 (Difficult)"
        assert c.cell(Feature.ANONYMIZATION).startswith("4 (Advanced)")
        assert c.cell(Feature.EVENT_TYPES) == "File system operations"
        assert c.cell(Feature.GRANULARITY_CONTROL).startswith("5 (V. Advanced)")
        assert c.cell(Feature.TRACE_FORMAT) == "Binary"
        assert c.cell(Feature.SKEW_DRIFT_ACCOUNTING) == "N/A"
        assert "12.4" in c.cell(Feature.ELAPSED_TIME_OVERHEAD)

    def test_ptrace_column(self):
        c = ptrace_classification()
        assert c.framework_name == "//TRACE"
        assert c.cell(Feature.PARALLEL_FS_COMPATIBILITY) == "Yes"
        assert c.cell(Feature.EVENT_TYPES) == "I/O System calls"
        assert c.cell(Feature.GRANULARITY_CONTROL) == "No"
        assert c.cell(Feature.REPLAYABLE_GENERATION) == "Yes"
        assert c.cell(Feature.REPLAY_FIDELITY).startswith("As low as 6%")
        assert c.cell(Feature.REVEALS_DEPENDENCIES) == "Yes"
        assert c.cell(Feature.SKEW_DRIFT_ACCOUNTING) == "No"
        assert "205" in c.cell(Feature.ELAPSED_TIME_OVERHEAD)

    def test_overhead_override(self):
        measured = OverheadReport(8.0, 180.0, note="measured")
        c = lanl_trace_classification(overhead=measured)
        assert "180" in c.cell(Feature.ELAPSED_TIME_OVERHEAD)


class TestRendering:
    def test_text_table_contains_all_rows_and_columns(self):
        table = render_summary_table(list(paper_table2().values()))
        for f in FEATURES:
            assert f.display_name in table
        for name in ("LANL-Trace", "Tracefs", "//TRACE"):
            assert name in table

    def test_single_framework_table(self):
        assert "LANL-Trace" in render_summary_table(lanl_trace_classification())

    def test_markdown_shape(self):
        md = render_markdown(list(paper_table2().values()))
        lines = md.strip().splitlines()
        assert lines[0].startswith("| Feature |")
        assert lines[1].startswith("|---")
        assert len(lines) == 2 + len(FEATURES)

    def test_csv_parses(self):
        text = render_csv(list(paper_table2().values()))
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0] == ["Feature", "LANL-Trace", "Tracefs", "//TRACE"]
        assert len(rows) == 1 + len(FEATURES)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_summary_table([])


class TestComparison:
    def test_diff_counts(self):
        diff = compare_classifications(
            lanl_trace_classification(), ptrace_classification()
        )
        # agree on: parallel-compat, ease, anonymization, intrusiveness,
        # analysis tools, trace format
        assert Feature.PARALLEL_FS_COMPATIBILITY in diff.same
        assert Feature.REPLAYABLE_GENERATION in diff.different
        assert diff.different[Feature.REPLAYABLE_GENERATION] == ("No", "Yes")
        assert diff.n_differences + len(diff.same) == 13

    def test_self_comparison_identical(self):
        c = tracefs_classification()
        diff = compare_classifications(c, c)
        assert diff.n_differences == 0

    def test_render_mentions_differing_features(self):
        diff = compare_classifications(
            lanl_trace_classification(), tracefs_classification()
        )
        text = diff.render()
        assert "Trace data format" in text
        assert "LANL-Trace vs Tracefs" in text
