"""Taxonomy value-domain tests."""

import pytest

from repro.core.values import (
    NA,
    AnonymizationLevel,
    EventKind,
    EventTypes,
    FidelityReport,
    GranularityControl,
    Likert,
    NotApplicable,
    OverheadReport,
    TraceFormat,
    YesNo,
)
from repro.errors import FeatureValueError


class TestNotApplicable:
    def test_singleton(self):
        assert NotApplicable() is NA

    def test_render(self):
        assert NA.render() == "N/A"


class TestYesNo:
    def test_render(self):
        assert YesNo.YES.render() == "Yes"
        assert YesNo.NO.render() == "No"

    def test_truthiness(self):
        assert YesNo.YES
        assert not YesNo.NO


class TestLikert:
    def test_range_enforced(self):
        with pytest.raises(FeatureValueError):
            Likert(0)
        with pytest.raises(FeatureValueError):
            Likert(6)

    def test_render_with_label(self):
        assert Likert(2, "Easy").render() == "2 (Easy)"
        assert Likert(3).render() == "3"

    def test_ordering(self):
        assert Likert(1) < Likert(4)
        assert Likert(2) <= Likert(2, "Easy")


class TestAnonymizationLevel:
    def test_zero_means_unsupported(self):
        a = AnonymizationLevel(0)
        assert not a.supported
        assert a.render() == "No"

    def test_levels_render_with_labels(self):
        assert AnonymizationLevel(1).render() == "1 (Simple)"
        assert AnonymizationLevel(4).render() == "4 (Advanced)"
        assert AnonymizationLevel(5).render() == "5 (V. Advanced)"

    def test_range(self):
        with pytest.raises(FeatureValueError):
            AnonymizationLevel(6)
        with pytest.raises(FeatureValueError):
            AnonymizationLevel(-1)


class TestGranularityControl:
    def test_table2_cells(self):
        assert GranularityControl(1).render() == "1 (Simple)"
        assert GranularityControl(5).render() == "5 (V. Advanced)"
        assert GranularityControl(0).render() == "No"

    def test_supported_flag(self):
        assert GranularityControl(3).supported
        assert not GranularityControl(0).supported


class TestEventTypes:
    def test_render_stable_order(self):
        e = EventTypes({EventKind.LIBRARY_CALLS, EventKind.SYSTEM_CALLS})
        assert e.render() == "Systems calls, library calls"

    def test_empty_rejected(self):
        with pytest.raises(FeatureValueError):
            EventTypes(set())

    def test_membership(self):
        e = EventTypes({EventKind.FS_OPERATIONS})
        assert EventKind.FS_OPERATIONS in e
        assert EventKind.SYSTEM_CALLS not in e


class TestOverheadReport:
    def test_range_render(self):
        assert OverheadReport(24.0, 222.0).render().startswith("24% - 222%")

    def test_max_only(self):
        assert OverheadReport(max_percent=12.4).render() == "<=12.4%"

    def test_min_only(self):
        assert OverheadReport(min_percent=5.0).render() == ">=5.0%"

    def test_point_value(self):
        assert OverheadReport(7.0, 7.0).render() == "7.0%"

    def test_note_appended(self):
        assert "(varies)" in OverheadReport(1.0, 2.0, note="varies").render()

    def test_note_only(self):
        assert OverheadReport(note="unmeasured").render() == "unmeasured"

    def test_inverted_range_rejected(self):
        with pytest.raises(FeatureValueError):
            OverheadReport(10.0, 5.0)


class TestFidelityReport:
    def test_render(self):
        assert FidelityReport(6.0).render() == "As low as 6%"

    def test_negative_rejected(self):
        with pytest.raises(FeatureValueError):
            FidelityReport(-1.0)


def test_trace_format_render():
    assert TraceFormat.BINARY.render() == "Binary"
    assert TraceFormat.HUMAN_READABLE.render() == "Human readable"
