"""Pseudo-app generation, replay engine, and fidelity tests."""

import pytest

from repro.errors import ReplayError
from repro.frameworks.lanltrace import LANLTrace, LANLTraceConfig
from repro.harness.experiment import run_traced, run_untraced
from repro.harness.figures import paper_testbed
from repro.replay import (
    PseudoApp,
    RankScript,
    ReplayOp,
    build_pseudoapp,
    compare_end_to_end,
    compare_traces,
    replay,
)
from repro.trace.events import EventLayer, TraceEvent
from repro.trace.records import TraceBundle, TraceFile
from repro.units import KiB
from repro.workloads import AccessPattern, mpi_io_test

NP = 4
ARGS = {
    "pattern": AccessPattern.N_TO_1_NONSTRIDED,
    "block_size": 128 * KiB,
    "nobj": 16,
    "path": "/pfs/out",
}


def ev(name, ts, dur=0.001, layer=EventLayer.SYSCALL, **kw):
    return TraceEvent(timestamp=ts, duration=dur, layer=layer, name=name, **kw)


class TestReplayOpValidation:
    def test_negative_think_time(self):
        with pytest.raises(ReplayError):
            ReplayOp(kind="write", think_time=-1.0, nbytes=1)

    def test_io_ops_need_nbytes(self):
        with pytest.raises(ReplayError):
            ReplayOp(kind="write", think_time=0.0)
        ReplayOp(kind="sync", think_time=0.0)  # fine


class TestBuildPseudoApp:
    def test_syscall_script_from_events(self):
        tf = TraceFile(
            [
                ev("SYS_open", 0.0, path="/pfs/f", result=3),
                ev("SYS_write", 1.0, nbytes=4096, offset=0, path="/pfs/f", fd=3),
                ev("SYS_write", 2.5, nbytes=4096, offset=4096, path="/pfs/f", fd=3),
                ev("SYS_close", 3.0, fd=3, path="/pfs/f"),
            ],
            rank=0,
        )
        app = build_pseudoapp(
            TraceBundle(files={0: tf}), layer=EventLayer.SYSCALL
        )
        script = app.scripts[0]
        assert [op.kind for op in script.ops] == ["open", "write", "write", "close"]
        # think time between first write end (1.001) and second start (2.5)
        assert script.ops[2].think_time == pytest.approx(1.499)
        assert script.io_bytes == 8192
        assert script.n_io_ops == 2

    def test_deperturbation_subtracts_overhead(self):
        tf = TraceFile(
            [
                ev("SYS_write", 0.0, nbytes=1, offset=0, path="/f"),
                ev("SYS_write", 1.0, nbytes=1, offset=1, path="/f"),
            ],
            rank=0,
        )
        plain = build_pseudoapp(TraceBundle(files={0: tf}), layer=EventLayer.SYSCALL)
        depert = build_pseudoapp(
            TraceBundle(files={0: tf}),
            layer=EventLayer.SYSCALL,
            per_event_overhead=0.2,
        )
        assert depert.scripts[0].ops[1].think_time == pytest.approx(
            plain.scripts[0].ops[1].think_time - 0.2
        )

    def test_sync_markers_survive_any_layer(self):
        tf = TraceFile(
            [
                ev("SYS_write", 0.0, nbytes=1, offset=0, path="/f"),
                ev("MPI_Barrier", 1.0, layer=EventLayer.LIBCALL),
                ev("SYS_write", 2.0, nbytes=1, offset=1, path="/f"),
            ],
            rank=0,
        )
        app = build_pseudoapp(TraceBundle(files={0: tf}), layer=EventLayer.SYSCALL)
        assert [op.kind for op in app.scripts[0].ops] == ["write", "sync", "write"]

    def test_empty_bundle_rejected(self):
        with pytest.raises(ReplayError):
            build_pseudoapp(TraceBundle())

    def test_negative_gaps_clamped(self):
        # overlapping events (clock weirdness) must not produce negative think
        tf = TraceFile(
            [
                ev("SYS_write", 5.0, dur=2.0, nbytes=1, offset=0, path="/f"),
                ev("SYS_write", 5.5, nbytes=1, offset=1, path="/f"),
            ],
            rank=0,
        )
        app = build_pseudoapp(TraceBundle(files={0: tf}), layer=EventLayer.SYSCALL)
        assert all(op.think_time >= 0 for op in app.scripts[0].ops)


class TestReplayEngine:
    def make_app(self):
        return PseudoApp(
            scripts={
                0: RankScript(
                    rank=0,
                    ops=[
                        ReplayOp("open", 0.0, path="/pfs/replay.out"),
                        ReplayOp("write", 0.01, path="/pfs/replay.out", offset=0, nbytes=64 * KiB),
                        ReplayOp("write", 0.01, path="/pfs/replay.out", offset=64 * KiB, nbytes=64 * KiB),
                        ReplayOp("fsync", 0.0, path="/pfs/replay.out"),
                        ReplayOp("close", 0.0, path="/pfs/replay.out"),
                    ],
                ),
                1: RankScript(
                    rank=1,
                    ops=[
                        ReplayOp("write", 0.05, path="/pfs/replay.out", offset=128 * KiB, nbytes=64 * KiB),
                    ],
                ),
            }
        )

    def test_replay_moves_the_bytes(self):
        result = replay(self.make_app())
        assert result.bytes_replayed == 3 * 64 * KiB
        assert result.elapsed > 0.06  # think times at least

    def test_implicit_open_for_write_without_open_op(self):
        result = replay(self.make_app())  # rank 1 writes without open
        stats = result.job.results[1]
        assert stats.bytes_written == 64 * KiB
        assert stats.issued_write_bytes == 64 * KiB
        assert stats.ops_dict() == {"write": 1}  # the implicit open is not an op

    def test_sync_ops_barrier_when_honored(self):
        app = PseudoApp(
            scripts={
                0: RankScript(0, [ReplayOp("sync", 0.5)]),
                1: RankScript(1, [ReplayOp("sync", 0.0)]),
            }
        )
        r = replay(app, honor_sync=True)
        assert r.elapsed >= 0.5  # rank 1 waited for rank 0
        r2 = replay(app, honor_sync=False)
        assert r2.elapsed >= 0.5  # rank 0 still thinks 0.5
        # but rank 1 finished immediately
        assert r2.job.rank_end_times[1] < 0.1

    def test_unknown_op_kind_rejected(self):
        app = PseudoApp(
            scripts={0: RankScript(0, [ReplayOp("sync", 0.0)])}
        )
        app.scripts[0].ops[0] = ReplayOp("sync", 0.0)
        object.__setattr__(app.scripts[0].ops[0], "kind", "explode")
        with pytest.raises(ReplayError):
            replay(app)


class TestDivergenceDetection:
    """Partial captures must raise ReplayDivergence up front, never hang."""

    def test_mismatched_sync_counts_raise_before_launch(self):
        from repro.errors import ReplayDivergence

        app = PseudoApp(
            scripts={
                0: RankScript(0, [ReplayOp("sync", 0.0), ReplayOp("sync", 0.0)]),
                1: RankScript(1, [ReplayOp("sync", 0.0)]),
            }
        )
        with pytest.raises(ReplayDivergence) as err:
            replay(app, honor_sync=True)
        assert err.value.sync_counts == {0: 2, 1: 1}
        assert "rank 0: 2" in str(err.value)

    def test_divergent_app_still_replays_without_sync(self):
        app = PseudoApp(
            scripts={
                0: RankScript(0, [ReplayOp("sync", 0.0), ReplayOp("sync", 0.0)]),
                1: RankScript(1, [ReplayOp("sync", 0.0)]),
            }
        )
        replay(app, honor_sync=False)  # free-running replay is fine

    def test_crash_truncated_bundle_diverges_not_hangs(self):
        """End-to-end: a fault-plane node crash truncates one rank's
        capture; replaying the bundle reports divergence immediately."""
        from repro.errors import ReplayDivergence
        from repro.faults import FaultSchedule, NodeCrash
        from repro.faults.chaos import run_traced_with_faults

        outcome = run_traced_with_faults(
            FaultSchedule.of(NodeCrash(at=0.03, node=1), name="truncate"),
            "lanl-trace",
            "mpi_io_test",
            {"path": "/pfs/diverge.out", "block_size": 64 * KiB, "nobj": 8},
            config=paper_testbed(seed=0, nprocs=2),
            nprocs=2,
            seed=0,
            horizon=120.0,
        )
        assert outcome.status == "node-crash"
        app = build_pseudoapp(outcome.bundle)
        with pytest.raises(ReplayDivergence):
            replay(app, honor_sync=True)


class TestFidelityMetrics:
    def test_end_to_end_error(self):
        f = compare_end_to_end(10.0, 10.6)
        assert f.error_percent == pytest.approx(6.0)
        assert compare_end_to_end(10.0, 9.4).error_percent == pytest.approx(6.0)

    def test_compare_traces_identical(self):
        tf = TraceFile([ev("SYS_write", 0.0, nbytes=10, offset=0)])
        b = TraceBundle(files={0: tf})
        out = compare_traces(b, b)
        assert out["op_count_similarity"] == 1.0
        assert out["byte_similarity"] == 1.0
        assert out["offset_coverage"] == 1.0
        w = out["per_class"]["write"]
        assert w["source_count"] == w["replay_count"] == 1
        assert w["byte_delta"] == 0 and w["count_delta"] == 0

    def test_compare_traces_disjoint(self):
        a = TraceBundle(files={0: TraceFile([ev("SYS_write", 0.0, nbytes=10, offset=0)])})
        b = TraceBundle(files={0: TraceFile([ev("SYS_read", 0.0, nbytes=99, offset=77)])})
        out = compare_traces(a, b)
        assert out["op_count_similarity"] == 0.0
        assert out["offset_coverage"] == 0.0

    def test_compare_traces_empty(self):
        out = compare_traces(TraceBundle(), TraceBundle())
        assert out["byte_similarity"] == 1.0


class TestFullPipelineFromLANLTrace:
    """The paper's 'trivial to imagine' replayer: LANL-Trace raw traces ->
    pseudo-application -> replay, verified with both §3.1 methods."""

    def test_lanl_trace_raw_traces_are_replayable(self):
        config = paper_testbed(nprocs=NP)
        untraced = run_untraced(mpi_io_test, ARGS, config=config, nprocs=NP)
        _, traced = run_traced(
            lambda: LANLTrace(LANLTraceConfig()),
            mpi_io_test, ARGS, config=config, nprocs=NP,
        )
        cfg = LANLTraceConfig()
        app = build_pseudoapp(
            traced.bundle,
            layer=EventLayer.SYSCALL,
            per_event_overhead=cfg.syscall_event_cost,
        )
        result = replay(app, config=config, seed=123)
        # byte volume is reproduced exactly
        assert result.bytes_replayed == sum(
            r.bytes_written for r in traced.job.results
        )
        # end-to-end runtime error within the ballpark the paper reports
        fid = compare_end_to_end(untraced.elapsed, result.elapsed)
        assert fid.error_percent < 25.0

    def test_replayed_trace_matches_original_signature(self):
        config = paper_testbed(nprocs=NP)
        _, traced = run_traced(
            lambda: LANLTrace(LANLTraceConfig()),
            mpi_io_test, ARGS, config=config, nprocs=NP,
        )
        app = build_pseudoapp(traced.bundle, layer=EventLayer.SYSCALL)

        # trace the replay itself (the paper's first verification method)
        from repro.frameworks.ptrace import PTrace
        from repro.harness.testbed import build_testbed
        from repro.simmpi import mpirun
        from repro.replay.replayer import _replay_rank

        tb2 = build_testbed(config, seed=5)
        fw = PTrace()
        job = mpirun(
            tb2.cluster,
            tb2.vfs,
            _replay_rank,
            nprocs=app.nprocs,
            args={"pseudoapp": app, "honor_sync": True},
            setup=fw.setup_rank,
        )
        replay_bundle = fw.finalize(job)
        sim = compare_traces(traced.bundle, replay_bundle)
        assert sim["byte_similarity"] > 0.99
        assert sim["offset_coverage"] > 0.99
