"""The deterministic load generator: plan purity + a live end-to-end run.

The plan (which client sends which bytes where, in what order) must be a
pure function of the parameters — that is what makes BENCH_service.json
comparable across commits.  The end-to-end test then runs a small plan
against a real in-process server and checks the bench report's shape and
the dedup the shared payload pool was designed to provoke.
"""

import json

import pytest

from repro.errors import ServiceError
from repro.service import TenantRegistry, build_plan, make_payload, run_loadgen
from repro.service.loadgen import write_bench
from serviceutil import ServerThread


class TestPlanDeterminism:
    def test_same_seed_same_plan(self):
        a = build_plan(clients=20, requests_per_client=5, seed=42)
        b = build_plan(clients=20, requests_per_client=5, seed=42)
        assert a.ops == b.ops
        assert a.payloads == b.payloads
        assert a.tenants == b.tenants

    def test_different_seed_different_plan(self):
        a = build_plan(clients=20, requests_per_client=5, seed=1)
        b = build_plan(clients=20, requests_per_client=5, seed=2)
        assert a.ops != b.ops

    def test_payloads_deterministic_and_distinct(self):
        assert make_payload(3) == make_payload(3)
        assert make_payload(3) != make_payload(4)

    def test_every_client_opens_with_an_ingest(self):
        plan = build_plan(clients=10, requests_per_client=4, seed=9)
        assert all(ops[0][0] == "ingest" for ops in plan.ops)
        assert plan.total_requests == 40

    def test_bad_parameters_rejected(self):
        with pytest.raises(ServiceError):
            build_plan(clients=0)


class TestLoadgenEndToEnd:
    def test_small_run_reports_and_dedups(self, tmp_path):
        root = tmp_path / "svc"
        plan = build_plan(
            clients=12, requests_per_client=4, tenants=3,
            payload_pool=4, seed=11, payload_events=16,
        )
        with ServerThread(root, queue_capacity=64) as srv:
            result = run_loadgen(srv.host, srv.port, plan)
        assert result.errors == 0
        assert result.requests == plan.total_requests
        # 4 distinct payloads over >= 12 ingests: dedup must show up.
        assert result.dedup_ratio is not None and result.dedup_ratio > 1.0
        report = write_bench(result, str(tmp_path / "BENCH_service.json"))
        on_disk = json.loads((tmp_path / "BENCH_service.json").read_text())
        assert on_disk == report
        assert report["schema"] == "repro/service/bench/v1"
        assert report["req_per_sec"] > 0
        assert report["latency_p99_ms"] >= report["latency_p50_ms"] >= 0
        assert sum(int(v) for v in report["status_counts"].values()) == (
            result.requests
        )
        # The archive the run left behind is verifiable.
        reg = TenantRegistry(root, create=False)
        assert reg.verify()["ok"]
        assert reg.list_tenants() == ["tenant00", "tenant01", "tenant02"]

    def test_backpressure_retries_when_queue_tiny(self, tmp_path):
        root = tmp_path / "svc"
        plan = build_plan(
            clients=16, requests_per_client=3, tenants=2,
            payload_pool=2, ingest_fraction=1.0, seed=5, payload_events=16,
        )
        with ServerThread(root, queue_capacity=1) as srv:
            result = run_loadgen(srv.host, srv.port, plan)
        # With a one-slot queue some 429s are expected; every one must
        # have been retried to completion, never surfaced as an error.
        assert result.errors == 0
        reg = TenantRegistry(root, create=False)
        assert reg.verify()["ok"]
        stats = reg.stats()
        assert stats["runs"] >= 2  # both tenants landed their runs
