"""Tenant namespaces: isolation, shared-pool dedup, name validation, gc.

Isolation is structural — a tenant's bank simply has no path to another
tenant's manifests — so these tests attack it from the angles a filter
based design would get wrong: shared segments, identical content in two
tenants (and hence the *same* content-derived run id), and run-id-prefix
selectors that would match a sibling's runs if selection ever crossed
namespaces.
"""

import pytest

from repro.errors import StoreError, StoreNotFound, TenantNameError
from repro.service import TenantRegistry, validate_tenant_name
from repro.store import Query, run_query
from storeutil import make_bundle, make_trace_file
from repro.trace.records import TraceBundle


def _bundle(rank=0, n=8, name="SYS_write"):
    tf = make_trace_file(rank=rank, n=n, name=name)
    b = TraceBundle(files={rank: tf})
    return b


class TestTenantNames:
    @pytest.mark.parametrize("name", ["alice", "a", "t-1", "org.team_x", "0x9"])
    def test_legal_names(self, name):
        assert validate_tenant_name(name) == name

    @pytest.mark.parametrize(
        "name",
        ["", "Alice", "-lead", ".dot", "a/b", "a\\b", "../../etc", "a" * 65,
         "a b", "é", None, 7],
    )
    def test_illegal_names_rejected(self, name):
        with pytest.raises(TenantNameError):
            validate_tenant_name(name)

    def test_registry_never_creates_bad_dirs(self, tmp_path):
        reg = TenantRegistry(tmp_path / "svc")
        with pytest.raises(TenantNameError):
            reg.bank("../escape")
        assert not (tmp_path / "escape").exists()


class TestSharedPool:
    def test_same_content_dedups_across_tenants(self, tmp_path):
        reg = TenantRegistry(tmp_path / "svc")
        a = reg.bank("alice")
        b = reg.bank("bob")
        ra = a.ingest_bundle(_bundle())
        rb = b.ingest_bundle(_bundle())
        # Content-derived ids: identical bytes -> identical run id,
        # and the second tenant stores zero new segments.
        assert ra.run_id == rb.run_id
        assert ra.new_segments == ra.segments
        assert rb.new_segments == 0
        assert rb.deduped_segments == rb.segments

    def test_stats_reports_cross_tenant_dedup(self, tmp_path):
        reg = TenantRegistry(tmp_path / "svc")
        reg.bank("alice").ingest_bundle(_bundle())
        reg.bank("bob").ingest_bundle(_bundle())
        stats = reg.stats()
        assert stats["tenants"] == 2
        assert stats["runs"] == 2
        assert stats["dedup_ratio"] > 1.5  # two logical copies, one stored
        assert stats["per_tenant"]["alice"]["runs"] == 1
        assert stats["per_tenant"]["bob"]["runs"] == 1

    def test_service_verify_clean_across_namespaces(self, tmp_path):
        reg = TenantRegistry(tmp_path / "svc")
        reg.bank("alice").ingest_bundle(_bundle())
        reg.bank("bob").ingest_bundle(_bundle(rank=1, name="SYS_read"))
        report = reg.verify()
        assert report["ok"], report
        assert set(report["namespaces"]) == {"_root", "alice", "bob"}


class TestIsolation:
    def test_tenant_sees_only_its_own_runs(self, tmp_path):
        reg = TenantRegistry(tmp_path / "svc")
        a = reg.bank("alice")
        b = reg.bank("bob")
        ra = a.ingest_bundle(_bundle(name="SYS_write"))
        rb = b.ingest_bundle(_bundle(rank=1, name="SYS_read"))
        assert [m.run_id for m in a.manifests()] == [ra.run_id]
        assert [m.run_id for m in b.manifests()] == [rb.run_id]
        rep_a = run_query(a, Query.create(agg="ops"))
        assert "SYS_read" not in rep_a["result"]["ops"]
        rep_b = run_query(b, Query.create(agg="ops"))
        assert "SYS_write" not in rep_b["result"]["ops"]

    def test_shared_segments_do_not_leak_runs(self, tmp_path):
        reg = TenantRegistry(tmp_path / "svc")
        a = reg.bank("alice")
        b = reg.bank("bob")
        a.ingest_bundle(_bundle())
        b.ingest_bundle(_bundle())  # same segments, same run id
        # bob's namespace holds exactly one manifest even though every
        # one of its segment files was written by alice's ingest.
        assert len(b.manifests()) == 1
        rep = run_query(b, Query.create(agg="events"))
        assert rep["scan"]["runs_selected"] == 1

    def test_run_id_prefix_selector_stays_in_namespace(self, tmp_path):
        reg = TenantRegistry(tmp_path / "svc")
        a = reg.bank("alice")
        b = reg.bank("bob")
        ra = a.ingest_bundle(_bundle())
        b.ingest_bundle(_bundle(rank=1, name="SYS_read"))
        # alice's run id as a --runs prefix against bob's namespace:
        # the segments exist on disk via the shared pool, but bob's bank
        # must select nothing — not alice's run.
        rep = run_query(b, Query.create(agg="ops", runs=[ra.run_id[:12]]))
        assert rep["scan"]["runs_selected"] == 0
        assert rep["result"]["ops"] == {}
        # ...while the same prefix in alice's own namespace selects hers.
        rep_a = run_query(a, Query.create(agg="ops", runs=[ra.run_id[:12]]))
        assert rep_a["scan"]["runs_selected"] == 1

    def test_unknown_tenant_is_not_created_on_read(self, tmp_path):
        reg = TenantRegistry(tmp_path / "svc")
        with pytest.raises(StoreNotFound):
            reg.bank("ghost", create=False)
        assert reg.list_tenants() == []


class TestTenantGc:
    def test_tenant_bank_refuses_gc(self, tmp_path):
        reg = TenantRegistry(tmp_path / "svc")
        a = reg.bank("alice")
        a.ingest_bundle(_bundle())
        with pytest.raises(StoreError, match="tenant namespace"):
            a.gc()

    def test_root_gc_keeps_tenant_pinned_segments(self, tmp_path):
        reg = TenantRegistry(tmp_path / "svc")
        a = reg.bank("alice")
        result = a.ingest_bundle(_bundle())
        report = reg.gc()
        assert report["removed_segments"] == []
        assert report["kept_segments"] == result.segments
        assert a.verify()["ok"]

    def test_root_gc_removes_truly_unreferenced(self, tmp_path):
        reg = TenantRegistry(tmp_path / "svc")
        a = reg.bank("alice")
        a.ingest_bundle(_bundle())
        # An orphan in the shared pool (no manifest anywhere names it).
        orphan = reg.root_bank.segments_dir / "ff" / ("f" * 64 + ".seg")
        orphan.parent.mkdir(parents=True, exist_ok=True)
        orphan.write_bytes(b"junk")
        report = reg.gc(tmp_ttl_seconds=0.0)
        assert len(report["removed_segments"]) == 1
        assert not orphan.exists()
        assert a.verify()["ok"]
