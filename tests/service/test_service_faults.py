"""Transport faults against a live server: the store must stay clean.

Each scenario misbehaves at the socket level — vanishing mid-upload,
sending corrupt bytes, overfilling the ingest queue — and then audits
the aftermath: ``verify`` clean across every namespace, no orphan
manifests, no surviving WAL entries for rejected requests, queue slots
all returned.
"""

import json
import time

from repro.service import TenantRegistry
from repro.trace.binary_format import encode_trace_file
from serviceutil import ServerThread, http_json, http_request, raw_socket
from storeutil import make_trace_file


def _body(rank=0, n=16):
    return encode_trace_file(make_trace_file(rank=rank, n=n))


def _audit(store_root):
    """Service-wide verify + the WAL dir contents."""
    reg = TenantRegistry(store_root, create=False)
    report = reg.verify()
    wal = sorted((reg.root / "wal").glob("*.wal"))
    return report, wal


class TestClientDisconnect:
    def test_mid_stream_disconnect_leaves_store_clean(self, tmp_path):
        root = tmp_path / "svc"
        with ServerThread(root) as srv:
            sock = raw_socket(srv.host, srv.port)
            head = (
                "POST /v1/t/alice/ingest HTTP/1.1\r\nHost: x\r\n"
                "Content-Length: 100000\r\n\r\n"
            ).encode()
            sock.sendall(head + b"\x00" * 512)  # a fraction of the body
            sock.close()
            # A good request right after proves the server survived.
            status, _h, payload = http_json(
                srv.host, srv.port, "GET", "/healthz"
            )
            assert status == 200 and payload["ok"]
        report, wal = _audit(root)
        assert report["ok"]
        assert wal == []
        # The tenant was never created: the request never completed.
        assert "alice" not in report["namespaces"]

    def test_abrupt_close_between_requests_is_clean(self, tmp_path):
        root = tmp_path / "svc"
        with ServerThread(root) as srv:
            status, _h, result = http_json(
                srv.host, srv.port, "POST",
                "/v1/t/alice/ingest?sync=1&rank=0", _body(),
            )
            assert status == 200
            sock = raw_socket(srv.host, srv.port)
            sock.close()  # connect-then-vanish
            status, _h, runs = http_json(
                srv.host, srv.port, "GET", "/v1/t/alice/runs"
            )
            assert status == 200 and len(runs["runs"]) == 1
        report, wal = _audit(root)
        assert report["ok"] and wal == []


class TestCorruptUploads:
    def test_corrupt_binary_body_typed_400(self, tmp_path):
        root = tmp_path / "svc"
        good = _body()
        corrupt = good[:-7] + b"\xff" * 7  # checksum breakage at the tail
        with ServerThread(root) as srv:
            status, _h, err = http_json(
                srv.host, srv.port, "POST",
                "/v1/t/alice/ingest?sync=1", corrupt,
            )
            assert status == 400
            assert "error" in err
        report, wal = _audit(root)
        assert report["ok"] and wal == []
        for ns, rep in report["namespaces"].items():
            assert rep["runs"] == 0, "orphan manifest in %s" % ns

    def test_truncated_binary_body_typed_400(self, tmp_path):
        root = tmp_path / "svc"
        with ServerThread(root) as srv:
            status, _h, _err = http_json(
                srv.host, srv.port, "POST",
                "/v1/t/alice/ingest?sync=1", _body()[:40],
            )
            assert status == 400
        report, wal = _audit(root)
        assert report["ok"] and wal == []

    def test_empty_body_typed_400(self, tmp_path):
        root = tmp_path / "svc"
        with ServerThread(root) as srv:
            status, _h, _err = http_json(
                srv.host, srv.port, "POST", "/v1/t/alice/ingest?sync=1", b""
            )
            assert status == 400
        report, wal = _audit(root)
        assert report["ok"] and wal == []

    def test_oversize_body_refused_before_read(self, tmp_path):
        root = tmp_path / "svc"
        with ServerThread(root, max_body_bytes=1024) as srv:
            status, _h, _payload = http_request(
                srv.host, srv.port, "POST",
                "/v1/t/alice/ingest?sync=1", b"x" * 4096,
            )
            assert status == 413
        report, wal = _audit(root)
        assert report["ok"] and wal == []


class TestQueueFull:
    def test_429_with_retry_after_and_bounded_wal(self, tmp_path):
        root = tmp_path / "svc"
        capacity = 2
        with ServerThread(root, queue_capacity=capacity) as srv:
            # Park the commit workers so the queue can only fill.
            async def install_gate():
                import asyncio

                srv.app.commit_gate = asyncio.Event()

            srv.run_coro(install_gate())
            body = _body()
            statuses = []
            for i in range(capacity + 2):
                status, headers, _payload = http_request(
                    srv.host, srv.port, "POST",
                    "/v1/t/alice/ingest?rank=%d" % i, body,
                )
                statuses.append((status, headers))
            accepted = [s for s, _ in statuses if s == 202]
            rejected = [(s, h) for s, h in statuses if s == 429]
            assert len(accepted) == capacity
            assert len(rejected) == 2
            for _s, headers in rejected:
                assert float(headers["retry-after"]) > 0
            # Bounded disk/memory: never more WAL entries than capacity.
            wal_now = sorted((root / "wal").glob("*.wal"))
            assert len(wal_now) == capacity
            # Open the gate; everything accepted must commit.
            srv.call_soon(lambda: srv.app.commit_gate.set())
            deadline = time.time() + 10
            while time.time() < deadline:
                _s, _h, health = http_json(srv.host, srv.port, "GET", "/healthz")
                if health["queue_depth"] == 0:
                    break
                time.sleep(0.05)
            assert health["queue_depth"] == 0
            _s, _h, runs = http_json(
                srv.host, srv.port, "GET", "/v1/t/alice/runs"
            )
            assert len(runs["runs"]) == capacity
        report, wal = _audit(root)
        assert report["ok"] and wal == []


class TestPathDecoding:
    def test_plus_in_path_is_not_a_space(self, tmp_path):
        # "+" means space only in query strings; the path must keep it.
        with ServerThread(tmp_path / "svc") as srv:
            status, _h, err = http_json(
                srv.host, srv.port, "GET", "/no+such+route"
            )
            assert status == 404
            assert err["error"]["message"] == "no route /no+such+route"

    def test_percent_decoding_still_applies_to_path(self, tmp_path):
        with ServerThread(tmp_path / "svc") as srv:
            status, _h, err = http_json(
                srv.host, srv.port, "GET", "/no%20such"
            )
            assert status == 404
            assert err["error"]["message"] == "no route /no such"


class TestWalRecovery:
    def test_startup_replays_valid_and_discards_torn(self, tmp_path):
        root = tmp_path / "svc"
        body = _body()
        # First life: accept an upload whose commit never happens.
        with ServerThread(root, queue_capacity=4) as srv:
            async def install_gate():
                import asyncio

                srv.app.commit_gate = asyncio.Event()

            srv.run_coro(install_gate())
            status, _h, _p = http_request(
                srv.host, srv.port, "POST", "/v1/t/alice/ingest", body
            )
            assert status == 202
        # The context exit stops the server without draining; the WAL
        # entry survives the "crash".
        wal = sorted((root / "wal").glob("*.wal"))
        assert len(wal) == 1
        # Plant a torn sibling next to it.
        torn = root / "wal" / "99999999-alice.wal"
        torn.write_bytes(b'{"schema": "repro/service/wal/v1"')
        # Second life: recovery commits the good entry, drops the torn one.
        with ServerThread(root) as srv:
            deadline = time.time() + 10
            runs = []
            while time.time() < deadline:
                status, _h, listing = http_json(
                    srv.host, srv.port, "GET", "/v1/t/alice/runs"
                )
                runs = listing["runs"] if status == 200 else []
                if runs:
                    break
                time.sleep(0.05)
            assert len(runs) == 1
        report, wal = _audit(root)
        assert report["ok"]
        assert wal == []
        assert not torn.exists()
