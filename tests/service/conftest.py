"""Make the service test helpers and the store builders importable."""

import sys
from pathlib import Path

_HERE = Path(__file__).resolve().parent
for p in (str(_HERE), str(_HERE.parent / "store")):
    if p not in sys.path:
        sys.path.insert(0, p)
