"""IngestQueue unit regressions: WAL seq allocation and commit faults.

``write_wal`` runs in executor threads — one per concurrent upload — so
sequence numbers must be race-free: a duplicate seq means a duplicate
WAL path, and the second atomic write would silently overwrite the
first durably-acked entry.  And a *transient* commit failure (ENOSPC,
EMFILE) must leave the entry in the WAL for restart recovery, never
discard a durably-acked upload.
"""

import asyncio
import json
import threading

from repro.errors import TraceError
from repro.service import Request, ServiceApp
from repro.service.ingestq import IngestQueue
from repro.trace.binary_format import encode_trace_file
from storeutil import make_trace_file


def _trace_and_body(rank=0, n=8):
    trace = make_trace_file(rank=rank, n=n)
    return trace, encode_trace_file(trace)


class TestConcurrentWalSeq:
    def test_parallel_write_wal_never_collides(self, tmp_path):
        queue = IngestQueue(tmp_path / "svc", capacity=256)
        trace, body = _trace_and_body()
        n_threads, per_thread = 8, 8
        entries = []
        errors = []
        barrier = threading.Barrier(n_threads)

        def worker():
            try:
                barrier.wait()
                for _ in range(per_thread):
                    entries.append(
                        queue.write_wal("alice", body, trace, 0, {}, "v1")
                    )
            except Exception as exc:  # surfaced below, not swallowed
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert errors == []
        total = n_threads * per_thread
        entry_ids = {e.entry_id for e in entries}
        assert len(entry_ids) == total  # every upload drew a unique seq
        on_disk = sorted((tmp_path / "svc" / "wal").glob("*.wal"))
        assert len(on_disk) == total  # ...and none overwrote another

    def test_write_wal_refuses_existing_path(self, tmp_path):
        queue = IngestQueue(tmp_path / "svc", capacity=4)
        trace, body = _trace_and_body()
        clash = queue.wal_dir / ("%08d-alice.wal" % queue._seq)
        clash.write_bytes(b"pre-existing durably-acked entry")
        try:
            queue.write_wal("alice", body, trace, 0, {}, "v1")
        except Exception:
            pass  # refusing is fine...
        # ...overwriting is not.
        assert clash.read_bytes() == b"pre-existing durably-acked entry"


class TestTransientCommitFailure:
    def test_oserror_defers_entry_to_recovery(self, tmp_path):
        root = tmp_path / "svc"
        trace, body = _trace_and_body()
        req = Request(
            "POST", "/v1/t/alice/ingest",
            {"rank": ["0"], "sync": ["1"]}, {}, body,
        )

        async def first_life():
            app = ServiceApp(root)
            await app.startup()
            try:
                # Every commit fails like a full disk.
                app.queue.commit = lambda entry, bank: (_ for _ in ()).throw(
                    OSError(28, "No space left on device")
                )
                return app, await app.handle(req)
            finally:
                await app.shutdown()

        app, resp = asyncio.run(first_life())
        assert resp.status == 500
        assert json.loads(resp.body)["error"]["type"] == "OSError"
        # Durably-acked entry kept for recovery, not discarded.
        assert app.queue.discarded == 0
        assert app.metrics.snapshot(end_time=0.0)["counters"][
            "service.commit.deferred"
        ] == 1
        wal = sorted((root / "wal").glob("*.wal"))
        assert len(wal) == 1

        async def second_life():
            app2 = ServiceApp(root)
            await app2.startup()
            try:
                await app2.queue.queue.join()  # recovery re-commits
                return await app2.handle(Request("GET", "/v1/t/alice/runs"))
            finally:
                await app2.shutdown()

        resp2 = asyncio.run(second_life())
        assert resp2.status == 200
        assert len(json.loads(resp2.body)["runs"]) == 1
        assert sorted((root / "wal").glob("*.wal")) == []

    def test_data_error_still_discards(self, tmp_path):
        root = tmp_path / "svc"
        trace, body = _trace_and_body()
        req = Request(
            "POST", "/v1/t/alice/ingest",
            {"rank": ["0"], "sync": ["1"]}, {}, body,
        )

        async def main():
            app = ServiceApp(root)
            await app.startup()
            try:
                app.queue.commit = lambda entry, bank: (_ for _ in ()).throw(
                    TraceError("rotted bytes")
                )
                resp = await app.handle(req)
                return app, resp
            finally:
                await app.shutdown()

        app, resp = asyncio.run(main())
        assert resp.status == 400
        assert app.queue.discarded == 1
        assert sorted((root / "wal").glob("*.wal")) == []
