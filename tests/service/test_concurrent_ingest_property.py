"""Property: concurrent interleaved multi-tenant ingest == serial ingest.

Hypothesis deals a random schedule of (tenant, bundle) ingests where the
bundles deliberately overlap (drawn from a small pool, so the same
segments land from different tenants and threads at once), runs the
schedule through a thread pool against one service store and serially
against another, and demands the two archives come out byte-identical:
same shared-pool segment files, same per-tenant manifest bytes, verify
clean, no lost or duplicated runs.  This is the whole service invariant
in one sentence — concurrency must be unobservable in the archive.
"""

import json
from concurrent.futures import ThreadPoolExecutor

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service import TenantRegistry
from repro.trace.records import TraceBundle
from storeutil import make_trace_file

TENANTS = ("alice", "bob", "carol")

# A pool of four distinct bundle shapes; any two schedules overlap.
_POOL = [
    dict(rank=0, n=6, name="SYS_write"),
    dict(rank=0, n=6, name="SYS_read"),
    dict(rank=1, n=4, name="SYS_write"),
    dict(rank=2, n=9, name="SYS_open"),
]


def _bundle(spec_idx: int) -> TraceBundle:
    spec = _POOL[spec_idx]
    tf = make_trace_file(**spec)
    return TraceBundle(files={spec["rank"]: tf})


def _archive_fingerprint(root):
    """Everything observable about an archive, as comparable bytes."""
    reg = TenantRegistry(root, create=False)
    segments = {
        p.name: p.read_bytes()
        for p in reg.root_bank.segments_dir.glob("*/*.seg")
    }
    manifests = {}
    for name in reg.list_tenants():
        bank = reg.bank(name, create=False)
        for mp in sorted(bank.manifests_dir.glob("*.json")):
            manifests["%s/%s" % (name, mp.name)] = mp.read_bytes()
    return segments, manifests


schedules = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=len(TENANTS) - 1),
        st.integers(min_value=0, max_value=len(_POOL) - 1),
    ),
    min_size=2,
    max_size=12,
)


@settings(max_examples=25, deadline=None)
@given(schedule=schedules)
def test_concurrent_ingest_equals_serial(tmp_path_factory, schedule):
    base = tmp_path_factory.mktemp("svc")
    concurrent_root = base / "concurrent"
    serial_root = base / "serial"

    reg_c = TenantRegistry(concurrent_root)
    banks_c = {name: reg_c.bank(name) for name in TENANTS}

    def one_ingest(op):
        tenant_idx, spec_idx = op
        return banks_c[TENANTS[tenant_idx]].ingest_bundle(_bundle(spec_idx))

    with ThreadPoolExecutor(max_workers=min(8, len(schedule))) as pool:
        results = list(pool.map(one_ingest, schedule))

    reg_s = TenantRegistry(serial_root)
    banks_s = {name: reg_s.bank(name) for name in TENANTS}
    for tenant_idx, spec_idx in schedule:
        banks_s[TENANTS[tenant_idx]].ingest_bundle(_bundle(spec_idx))

    seg_c, man_c = _archive_fingerprint(concurrent_root)
    seg_s, man_s = _archive_fingerprint(serial_root)
    # Byte-identical archives: segment pool and every tenant manifest.
    assert seg_c == seg_s
    assert man_c == man_s

    # No lost runs: every (tenant, content) pair in the schedule has its
    # manifest; no duplicated runs: one manifest per distinct pair.
    expected = {
        (TENANTS[t], _run_id_of(results, schedule, (t, s)))
        for t, s in schedule
    }
    assert {
        tuple(key.split("/", 1)) for key in man_c
    } == {(tenant, rid + ".json") for tenant, rid in expected}

    report = reg_c.verify()
    assert report["ok"], json.dumps(report, indent=2)[:2000]


def _run_id_of(results, schedule, op):
    for res, sched_op in zip(results, schedule):
        if tuple(sched_op) == tuple(op):
            return res.run_id
    raise AssertionError("op missing from schedule")
