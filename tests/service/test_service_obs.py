"""Live observability surface of the service: tracing, prom, access log.

Everything here runs against a real server on a background thread
(``ServerThread``): trace-context propagation from a client-sent
``traceparent`` header down to the commit worker's bank spans, the
Prometheus exposition, the canonical JSONL access log, the slowest-trace
exemplar endpoints, and the two CLI entry points (``repro obs top`` /
``repro obs reqtrace``) driven through ``main()``.
"""

import asyncio
import json
import time

import pytest

from repro.cli import main
from repro.obs.perfetto import validate_chrome_trace
from repro.obs.prom import parse_prometheus
from repro.obs.reqtrace import make_context, parse_traceparent
from repro.service import build_plan, run_loadgen
from repro.trace.binary_format import encode_trace_file
from serviceutil import ServerThread, http_json, http_request
from storeutil import make_trace_file


def _body(rank=0, n=16, name="SYS_write"):
    return encode_trace_file(make_trace_file(rank=rank, n=n, name=name))


def _traced_ingest(srv, ctx, tenant="alice", rank=0):
    return http_request(
        srv.host, srv.port, "POST",
        "/v1/t/%s/ingest?rank=%d" % (tenant, rank), _body(rank=rank),
        headers={"Traceparent": ctx.header()},
    )


def _poll_trace(srv, trace_id, want_track="bank", timeout=10.0):
    """Fetch /v1/traces/<id> until the async commit spans have attached."""
    deadline = time.time() + timeout
    while time.time() < deadline:
        status, _h, payload = http_request(
            srv.host, srv.port, "GET", "/v1/traces/%s" % trace_id
        )
        if status == 200:
            report = json.loads(payload)
            if any(s["track"] == want_track for s in report["spans"]):
                return report
        time.sleep(0.02)
    raise AssertionError("trace %s never grew a %s span" % (trace_id, want_track))


class TestMetricsEndpoint:
    def test_end_time_is_real_uptime(self, tmp_path):
        with ServerThread(tmp_path / "svc") as srv:
            http_json(srv.host, srv.port, "GET", "/healthz")
            time.sleep(0.05)
            _s, _h, metrics = http_json(srv.host, srv.port, "GET", "/v1/metrics")
            assert metrics["end_time"] > 0.0
            # Monotone across polls — it is an uptime, not a constant.
            time.sleep(0.05)
            _s, _h, later = http_json(srv.host, srv.port, "GET", "/v1/metrics")
            assert later["end_time"] > metrics["end_time"]

    def test_queue_depth_time_weighted_mean_nonzero_after_traffic(self, tmp_path):
        with ServerThread(tmp_path / "svc") as srv:
            # Park the commit workers so accepted uploads hold depth > 0
            # for a real, measurable interval.
            async def install_gate():
                srv.app.commit_gate = asyncio.Event()

            srv.run_coro(install_gate())
            status, _h, _p = _traced_ingest(srv, make_context("t"))
            assert status == 202
            time.sleep(0.2)
            # A read request samples the (still nonzero) depth.
            http_json(srv.host, srv.port, "GET", "/v1/stats")
            srv.call_soon(lambda: srv.app.commit_gate.set())
            deadline = time.time() + 10
            while time.time() < deadline:
                _s, _h, health = http_json(srv.host, srv.port, "GET", "/healthz")
                if health["queue_depth"] == 0:
                    break
                time.sleep(0.02)
            _s, _h, text = http_request(
                srv.host, srv.port, "GET", "/v1/metrics?format=prom"
            )
            parsed = parse_prometheus(text.decode("utf-8"))
            by_name = {s["name"]: s["value"] for s in parsed["samples"]}
            assert by_name["repro_service_queue_depth_mean"] > 0.0
            assert by_name["repro_end_time_seconds"] > 0.0

    def test_prom_format_parses_with_content_type(self, tmp_path):
        with ServerThread(tmp_path / "svc") as srv:
            status, _h, _p = _traced_ingest(srv, make_context("x"))
            assert status == 202
            status, headers, payload = http_request(
                srv.host, srv.port, "GET", "/v1/metrics?format=prom"
            )
            assert status == 200
            assert headers["content-type"].startswith("text/plain; version=0.0.4")
            parsed = parse_prometheus(payload.decode("utf-8"))
            names = {s["name"] for s in parsed["samples"]}
            assert "repro_service_requests_total" in names
            assert "repro_service_route_seconds_bucket" in names


class TestTracePropagation:
    def test_client_trace_id_adopted_and_crosses_all_tracks(self, tmp_path):
        with ServerThread(tmp_path / "svc") as srv:
            ctx = make_context("repro-loadgen", 7, 0, 0)
            status, headers, _p = _traced_ingest(srv, ctx)
            assert status == 202
            # The response echoes the adopted context.
            echoed = parse_traceparent(headers["traceparent"])
            assert echoed is not None and echoed.trace_id == ctx.trace_id
            report = _poll_trace(srv, ctx.trace_id)
            tracks = [s["track"] for s in report["spans"]]
            assert set(tracks) == {"client", "http", "wal", "commit", "bank"}
            # The synthesized client envelope carries the client's span id.
            client = report["spans"][0]
            assert client["span_id"] == ctx.span_id
            # Explicit parent links chain wal -> commit -> bank.
            by_name = {s["name"]: s for s in report["spans"]}
            assert by_name["commit"]["parent_span_id"] == \
                by_name["wal.append"]["span_id"]
            assert by_name["bank.ingest"]["parent_span_id"] == \
                by_name["commit"]["span_id"]

    def test_rejected_ingest_keeps_its_route(self, tmp_path):
        # A 429'd upload raises out of the handler; the trace/metrics/log
        # must still attribute it to "ingest", not "other".
        with ServerThread(tmp_path / "svc", queue_capacity=1) as srv:
            async def install_gate():
                srv.app.commit_gate = asyncio.Event()

            srv.run_coro(install_gate())
            statuses = []
            for i in range(3):
                ctx = make_context("busy", i)
                statuses.append(_traced_ingest(srv, ctx, rank=i)[0])
            assert 429 in statuses
            rejected = make_context("busy", statuses.index(429))
            trace = srv.app.traces.get(rejected.trace_id)
            assert trace is not None and trace.route == "ingest"
            assert trace.status == 429
            srv.call_soon(lambda: srv.app.commit_gate.set())

    def test_malformed_traceparent_gets_server_side_ids(self, tmp_path):
        with ServerThread(tmp_path / "svc") as srv:
            status, headers, _p = http_request(
                srv.host, srv.port, "POST", "/v1/t/alice/ingest", _body(),
                headers={"Traceparent": "garbage"},
            )
            assert status == 202
            assert parse_traceparent(headers["traceparent"]) is not None

    def test_slowest_listing_and_trace_fetch(self, tmp_path):
        with ServerThread(tmp_path / "svc") as srv:
            ids = []
            for i in range(3):
                ctx = make_context("slow", i)
                ids.append(ctx.trace_id)
                assert _traced_ingest(srv, ctx, rank=i)[0] == 202
            _s, _h, body = http_json(
                srv.host, srv.port, "GET", "/v1/traces/slowest?route=ingest"
            )
            walls = [s["wall_us"] for s in body["slowest"]]
            assert walls == sorted(walls, reverse=True)
            assert {s["trace_id"] for s in body["slowest"]} <= set(ids)
            assert body["ring"]["finished"] >= 3
            status, _h, _p = http_request(
                srv.host, srv.port, "GET",
                "/v1/traces/%s" % body["slowest"][0]["trace_id"],
            )
            assert status == 200

    def test_unknown_trace_404(self, tmp_path):
        with ServerThread(tmp_path / "svc") as srv:
            status, _h, err = http_json(
                srv.host, srv.port, "GET", "/v1/traces/%s" % ("f" * 32)
            )
            assert status == 404
            assert "no retained trace" in err["error"]["message"]


class TestAccessLog:
    def test_one_canonical_line_per_request(self, tmp_path):
        log = tmp_path / "access.jsonl"
        sent = []
        with ServerThread(tmp_path / "svc", access_log=str(log)) as srv:
            for i in range(4):
                ctx = make_context("log", i)
                sent.append(ctx.trace_id)
                assert _traced_ingest(srv, ctx, rank=i)[0] == 202
            http_json(srv.host, srv.port, "GET", "/v1/t/alice/runs")
            served = srv.app.access_lines
        lines = log.read_text("utf-8").splitlines()
        assert len(lines) == served == 5
        records = [json.loads(line) for line in lines]
        # Byte-identical field ordering: every line, same canonical keys.
        keys = [list(r.keys()) for r in records]
        assert all(k == keys[0] for k in keys)
        assert keys[0] == sorted(keys[0])
        assert keys[0] == [
            "bytes_in", "bytes_out", "method", "path", "queue_depth",
            "route", "status", "tenant", "trace_id", "ts", "wall_us",
        ]
        # Every ingest line carries the client-sent trace id.
        logged = [r["trace_id"] for r in records if r["route"] == "ingest"]
        assert logged == sent
        for r in records:
            assert r["status"] in (200, 202)
            assert r["wall_us"] > 0
            assert r["ts"] > 0


class TestLoadgenJoin:
    def test_routes_breakdown_and_deterministic_id_join(self, tmp_path):
        plan = build_plan(
            clients=6, requests_per_client=4, tenants=2,
            payload_pool=4, seed=11, payload_events=16,
        )
        planned_ids = {
            make_context("repro-loadgen", plan.seed, c, op).trace_id
            for c in range(len(plan.ops))
            for op in range(len(plan.ops[c]))
        }
        with ServerThread(tmp_path / "svc") as srv:
            result = run_loadgen(srv.host, srv.port, plan)
            report = result.report()
            assert report["requests"] == plan.total_requests
            assert set(report["routes"]) <= {"ingest", "query", "runs", "dfg"}
            assert "ingest" in report["routes"]
            for route, stats in report["routes"].items():
                assert stats["requests"] > 0
                assert stats["latency_p99_ms"] >= stats["latency_p50_ms"] >= 0
                assert sum(stats["status_counts"].values()) == stats["requests"]
            # Server-side exemplars carry exactly the ids the plan dealt.
            _s, _h, body = http_json(
                srv.host, srv.port, "GET", "/v1/traces/slowest"
            )
            assert body["slowest"], "no exemplars retained after load"
            for summary in body["slowest"]:
                assert summary["trace_id"] in planned_ids


class TestObsCli:
    def test_obs_top_once_renders_dashboard(self, tmp_path, capsys):
        with ServerThread(tmp_path / "svc") as srv:
            assert _traced_ingest(srv, make_context("top"))[0] == 202
            url = "http://%s:%d" % (srv.host, srv.port)
            assert main(["obs", "top", "--url", url, "--once"]) == 0
        out = capsys.readouterr().out
        assert "repro service" in out
        assert "ingest" in out
        assert "queue" in out

    def test_obs_reqtrace_slowest_flame_and_perfetto(self, tmp_path, capsys):
        flame = tmp_path / "slow.flame"
        perfetto = tmp_path / "slow.json"
        with ServerThread(tmp_path / "svc") as srv:
            ctx = make_context("cli", 0)
            assert _traced_ingest(srv, ctx)[0] == 202
            _poll_trace(srv, ctx.trace_id)  # wait for commit spans
            url = "http://%s:%d" % (srv.host, srv.port)
            assert main([
                "obs", "reqtrace", "slowest", "--route", "ingest",
                "--url", url,
                "--flame", str(flame), "--perfetto", str(perfetto),
            ]) == 0
        out = capsys.readouterr().out
        assert "tracks crossed: client -> http -> wal -> commit -> bank" in out
        stacks = flame.read_text("utf-8").splitlines()
        assert stacks and all(line.rsplit(" ", 1)[1].isdigit() for line in stacks)
        chrome = json.loads(perfetto.read_text("utf-8"))
        validate_chrome_trace(chrome)  # raises on failure

    def test_obs_reqtrace_unknown_id_fails_cleanly(self, tmp_path, capsys):
        with ServerThread(tmp_path / "svc") as srv:
            url = "http://%s:%d" % (srv.host, srv.port)
            rc = main(["obs", "reqtrace", "e" * 32, "--url", url])
            assert rc != 0
