"""Shared helpers for the TraceBank-service tests.

``ServerThread`` hosts a real :class:`ServiceServer` (real sockets, real
event loop) on a background thread so synchronous test code can speak
plain HTTP at it; ``http_request`` is the matching one-shot client.
``raw_socket`` hands back a connected plain socket for the fault tests
that need to misbehave at the transport level (half-sent bodies, abrupt
disconnects).
"""

from __future__ import annotations

import asyncio
import http.client
import json
import socket
import threading
from typing import Any, Dict, Optional, Tuple

from repro.service import ServiceApp, ServiceServer


class ServerThread:
    """One live service on a daemon thread; use as a context manager."""

    def __init__(self, store_root, **app_kwargs):
        self.store_root = str(store_root)
        self.app_kwargs = app_kwargs
        self.app: Optional[ServiceApp] = None
        self.host = ""
        self.port = 0
        self.loop: Optional[asyncio.AbstractEventLoop] = None
        self._started = threading.Event()
        self._stop: Optional[asyncio.Event] = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self.loop = asyncio.get_running_loop()
        self.app = ServiceApp(self.store_root, **self.app_kwargs)
        server = ServiceServer(self.app, port=0)
        self.host, self.port = await server.start()
        self._stop = asyncio.Event()
        self._started.set()
        await self._stop.wait()
        await server.stop(drain=False)

    def __enter__(self) -> "ServerThread":
        self._thread.start()
        assert self._started.wait(timeout=10), "server failed to start"
        return self

    def __exit__(self, *exc) -> None:
        assert self.loop is not None and self._stop is not None
        self.loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=10)

    def run_coro(self, coro) -> Any:
        """Run a coroutine on the server's loop from test code."""
        assert self.loop is not None
        return asyncio.run_coroutine_threadsafe(coro, self.loop).result(timeout=10)

    def call_soon(self, fn, *args) -> None:
        assert self.loop is not None
        self.loop.call_soon_threadsafe(fn, *args)


def http_request(
    host: str,
    port: int,
    method: str,
    target: str,
    body: bytes = b"",
    timeout: float = 10.0,
    headers: Optional[Dict[str, str]] = None,
) -> Tuple[int, Dict[str, str], bytes]:
    """One HTTP round trip -> (status, lowercase headers, body bytes)."""
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    send_headers = {"Content-Length": str(len(body))}
    send_headers.update(headers or {})
    try:
        conn.request(method, target, body=body or None, headers=send_headers)
        resp = conn.getresponse()
        payload = resp.read()
        headers = {k.lower(): v for k, v in resp.getheaders()}
        return resp.status, headers, payload
    finally:
        conn.close()


def http_json(
    host: str, port: int, method: str, target: str, body: bytes = b""
) -> Tuple[int, Dict[str, str], Any]:
    status, headers, payload = http_request(host, port, method, target, body)
    return status, headers, json.loads(payload.decode("utf-8"))


def raw_socket(host: str, port: int, timeout: float = 10.0) -> socket.socket:
    sock = socket.create_connection((host, port), timeout=timeout)
    return sock
