"""ServiceApp routing + handlers, exercised without any sockets.

Every test builds the app, runs one coroutine per request through
``app.handle`` and asserts on the typed :class:`Response` — the HTTP
server is a separate, thinner layer with its own fault tests.  The
centrepiece is the byte-identity contract: a service query body must
equal ``repro store query --json`` output over the same namespace.
"""

import asyncio
import json

import pytest

from repro.obs.metrics import canonical_json
from repro.service import Request, ServiceApp, query_from_params
from repro.store import Query, TraceBank, run_query
from repro.trace.binary_format import encode_trace_file
from repro.errors import StoreQueryError
from storeutil import make_trace_file


def _body(rank=0, n=16, name="SYS_write"):
    return encode_trace_file(make_trace_file(rank=rank, n=n, name=name))


def _run(app, *requests):
    """Drive the app through startup, the requests, and shutdown."""

    async def main():
        await app.startup()
        try:
            return [await app.handle(r) for r in requests]
        finally:
            await app.shutdown()

    return asyncio.run(main())


def _ingest_req(tenant, body, sync=True, extra=""):
    target_params = {"rank": ["0"]}
    if sync:
        target_params["sync"] = ["1"]
    for piece in extra.split("&"):
        if piece:
            k, _, v = piece.partition("=")
            target_params.setdefault(k, []).append(v)
    return Request("POST", "/v1/t/%s/ingest" % tenant, target_params, {}, body)


class TestRouting:
    def test_healthz(self, tmp_path):
        app = ServiceApp(tmp_path / "svc")
        (resp,) = _run(app, Request("GET", "/healthz"))
        assert resp.status == 200
        assert json.loads(resp.body)["ok"] is True

    def test_unknown_route_404(self, tmp_path):
        app = ServiceApp(tmp_path / "svc")
        (resp,) = _run(app, Request("GET", "/v2/nope"))
        assert resp.status == 404
        assert json.loads(resp.body)["error"]["type"] == "NotFound"

    def test_wrong_method_405(self, tmp_path):
        app = ServiceApp(tmp_path / "svc")
        r1 = Request("GET", "/v1/t/alice/ingest")
        r2 = Request("POST", "/v1/t/alice/query")
        resp1, resp2 = _run(app, r1, r2)
        assert resp1.status == 405 and resp2.status == 405

    def test_bad_tenant_name_400(self, tmp_path):
        app = ServiceApp(tmp_path / "svc")
        (resp,) = _run(app, _ingest_req("Bad..Name", _body()))
        assert resp.status == 400
        assert json.loads(resp.body)["error"]["type"] == "TenantNameError"

    def test_unknown_tenant_read_404(self, tmp_path):
        app = ServiceApp(tmp_path / "svc")
        (resp,) = _run(app, Request("GET", "/v1/t/ghost/query"))
        assert resp.status == 404


class TestIngest:
    def test_sync_ingest_returns_result(self, tmp_path):
        app = ServiceApp(tmp_path / "svc")
        (resp,) = _run(app, _ingest_req("alice", _body()))
        assert resp.status == 200
        result = json.loads(resp.body)
        assert result["manifest_new"] is True
        assert result["new_segments"] == result["segments"] == 1
        assert result["events"] == 16

    def test_sync_reingest_dedups(self, tmp_path):
        app = ServiceApp(tmp_path / "svc")
        body = _body()
        r1, r2 = _run(app, _ingest_req("alice", body), _ingest_req("alice", body))
        a, b = json.loads(r1.body), json.loads(r2.body)
        assert a["run_id"] == b["run_id"]
        assert b["new_segments"] == 0 and b["manifest_new"] is False

    def test_async_ingest_202_then_committed(self, tmp_path):
        app = ServiceApp(tmp_path / "svc")

        async def main():
            await app.startup()
            resp = await app.handle(_ingest_req("alice", _body(), sync=False))
            assert resp.status == 202
            await app.queue.queue.join()
            runs = await app.handle(Request("GET", "/v1/t/alice/runs"))
            await app.shutdown()
            return resp, runs

        resp, runs = asyncio.run(main())
        assert json.loads(resp.body)["accepted"].endswith("-alice")
        assert len(json.loads(runs.body)["runs"]) == 1

    def test_corrupt_body_400_and_nothing_persisted(self, tmp_path):
        app = ServiceApp(tmp_path / "svc")
        (resp,) = _run(app, _ingest_req("alice", b"\x00garbage\xff" * 10))
        assert resp.status == 400
        bank = TraceBank(tmp_path / "svc" / "tenants" / "alice", create=False)
        assert bank.manifests() == []
        assert list((tmp_path / "svc" / "wal").glob("*.wal")) == []
        assert app.queue.depth == 0

    def test_oversize_body_413(self, tmp_path):
        app = ServiceApp(tmp_path / "svc", max_body_bytes=64)
        (resp,) = _run(app, _ingest_req("alice", _body()))
        assert resp.status == 413
        assert app.queue.depth == 0

    def test_ingest_meta_queryable(self, tmp_path):
        app = ServiceApp(tmp_path / "svc")
        req = _ingest_req("alice", _body(), extra="meta.experiment=x1")
        query = Request(
            "GET", "/v1/t/alice/query",
            {"agg": ["ops"], "where.experiment": ["x1"]},
        )
        miss = Request(
            "GET", "/v1/t/alice/query",
            {"agg": ["ops"], "where.experiment": ["x2"]},
        )
        _resp, hit, missed = _run(app, req, query, miss)
        assert json.loads(hit.body)["scan"]["runs_selected"] == 1
        assert json.loads(missed.body)["scan"]["runs_selected"] == 0


class TestQueryByteIdentity:
    def test_query_body_equals_cli_json(self, tmp_path):
        app = ServiceApp(tmp_path / "svc")
        reqs = [
            _ingest_req("alice", _body(rank=0, name="SYS_write")),
            _ingest_req("alice", _body(rank=1, name="SYS_read")),
            Request("GET", "/v1/t/alice/query", {"agg": ["ops"]}),
            Request(
                "GET", "/v1/t/alice/query",
                {"agg": ["bandwidth"], "ranks": ["0,1"], "window": ["0.1"]},
            ),
        ]
        _a, _b, ops_resp, bw_resp = _run(app, *reqs)
        bank = TraceBank(tmp_path / "svc" / "tenants" / "alice", create=False)
        want_ops = canonical_json(run_query(bank, Query.create(agg="ops"))) + "\n"
        assert ops_resp.body == want_ops.encode()
        want_bw = canonical_json(
            run_query(bank, Query.create(agg="bandwidth", ranks=[0, 1], window=0.1))
        ) + "\n"
        assert bw_resp.body == want_bw.encode()

    def test_bad_query_param_400(self, tmp_path):
        app = ServiceApp(tmp_path / "svc")
        reqs = [
            _ingest_req("alice", _body()),
            Request("GET", "/v1/t/alice/query", {"agg": ["bogus"]}),
            Request("GET", "/v1/t/alice/query", {"ranks": ["not-an-int"]}),
        ]
        _i, bad_agg, bad_rank = _run(app, *reqs)
        assert bad_agg.status == 400 and bad_rank.status == 400

    def test_dfg_served(self, tmp_path):
        app = ServiceApp(tmp_path / "svc")
        reqs = [
            _ingest_req("alice", _body()),
            Request("GET", "/v1/t/alice/dfg", {}),
        ]
        _i, dfg = _run(app, *reqs)
        assert dfg.status == 200
        assert "dfg" in json.loads(dfg.body)["schema"]


class TestQueryFromParams:
    def test_mirrors_cli_flags(self):
        q = query_from_params(
            {
                "agg": ["bytes"],
                "ranks": ["0,2", "5"],
                "ops": ["SYS_write"],
                "layers": ["syscall"],
                "path_glob": ["/pfs/*"],
                "since": ["0.5"],
                "until": ["2.5"],
                "where.kind": ["service"],
                "runs": ["abc"],
                "window": ["0.1"],
                "limit": ["9"],
            }
        )
        want = Query.create(
            agg="bytes", ranks=[0, 2, 5], names=["SYS_write"],
            layers=["syscall"], path_glob="/pfs/*", since=0.5, until=2.5,
            where={"kind": "service"}, runs=["abc"], window=0.1, limit=9,
        )
        assert q == want

    def test_bad_values_typed_errors(self):
        with pytest.raises(StoreQueryError):
            query_from_params({"since": ["soon"]})
        with pytest.raises(StoreQueryError):
            query_from_params({"limit": ["many"]})


class TestStatsAndMetrics:
    def test_stats_include_queue_and_dedup(self, tmp_path):
        app = ServiceApp(tmp_path / "svc")
        body = _body()
        reqs = [
            _ingest_req("alice", body),
            _ingest_req("bob", body),
            Request("GET", "/v1/stats"),
        ]
        _a, _b, stats_resp = _run(app, *reqs)
        stats = json.loads(stats_resp.body)
        assert stats["tenants"] == 2
        assert stats["dedup_ratio"] > 1.5
        assert stats["queue"]["committed"] == 2

    def test_metrics_count_requests(self, tmp_path):
        app = ServiceApp(tmp_path / "svc")
        _run(app, Request("GET", "/healthz"), Request("GET", "/v1/metrics"))
        snap = app.metrics.snapshot(end_time=0.0)
        assert snap["counters"]["service.requests"] >= 2
        assert snap["counters"]["service.route.healthz"] == 1

    def test_tenants_listing(self, tmp_path):
        app = ServiceApp(tmp_path / "svc")
        reqs = [_ingest_req("alice", _body()), Request("GET", "/v1/tenants")]
        _i, listing = _run(app, *reqs)
        assert json.loads(listing.body)["tenants"] == ["alice"]
