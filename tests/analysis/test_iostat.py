"""iostat-style interval statistics tests."""

import pytest

from repro.analysis.iostat import Interval, iostat, render_iostat
from repro.errors import TraceError
from repro.trace.events import EventLayer, TraceEvent
from repro.trace.records import TraceBundle, TraceFile


def io_ev(ts, nbytes=1000, dur=0.005):
    return TraceEvent(
        timestamp=ts, duration=dur, layer=EventLayer.SYSCALL,
        name="SYS_write", nbytes=nbytes,
    )


class TestBuckets:
    def test_empty(self):
        assert iostat([]) == []
        assert "no data events" in render_iostat([])

    def test_interval_validation(self):
        with pytest.raises(TraceError):
            iostat([io_ev(0.0)], interval=0)

    def test_single_bucket(self):
        out = iostat([io_ev(0.0), io_ev(0.01)], interval=1.0)
        assert len(out) == 1
        iv = out[0]
        assert iv.n_ops == 2
        assert iv.nbytes == 2000
        assert iv.bandwidth == pytest.approx(2000.0)
        assert iv.iops == pytest.approx(2.0)
        assert iv.mean_latency == pytest.approx(0.005)

    def test_multiple_buckets_with_gap(self):
        out = iostat([io_ev(0.0), io_ev(0.95)], interval=0.1)
        assert len(out) == 10
        assert out[0].n_ops == 1
        assert all(iv.n_ops == 0 for iv in out[1:9])
        assert out[9].n_ops == 1
        assert out[5].bandwidth == 0.0
        assert out[5].mean_latency == 0.0

    def test_buckets_aligned_to_first_event(self):
        out = iostat([io_ev(5.0), io_ev(5.15)], interval=0.1)
        assert out[0].start == pytest.approx(5.0)
        assert len(out) == 2

    def test_accepts_bundle_and_file(self):
        tf = TraceFile([io_ev(0.0)])
        bundle = TraceBundle(files={0: tf, 1: TraceFile([io_ev(0.02)])})
        assert iostat(tf, interval=1.0)[0].n_ops == 1
        assert iostat(bundle, interval=1.0)[0].n_ops == 2

    def test_non_io_ignored(self):
        meta = TraceEvent(
            timestamp=0.0, duration=0.0, layer=EventLayer.SYSCALL, name="SYS_stat64"
        )
        assert iostat([meta]) == []

    def test_render(self):
        text = render_iostat(iostat([io_ev(0.0, nbytes=1 << 20)], interval=1.0))
        assert "MB/s" in text and "1.00" in text


class TestOnTracedRun:
    def test_bandwidth_series_from_real_trace(self):
        from repro.frameworks.ptrace import PTrace
        from repro.harness.experiment import run_traced
        from repro.units import KiB
        from repro.workloads import AccessPattern, mpi_io_test

        _, traced = run_traced(
            PTrace, mpi_io_test,
            {"pattern": AccessPattern.N_TO_N, "block_size": 64 * KiB,
             "nobj": 32, "path": "/pfs/out"},
            nprocs=2,
        )
        series = iostat(traced.bundle, interval=0.05)
        assert series
        total = sum(iv.nbytes for iv in series)
        assert total == 2 * 32 * 64 * KiB
        # the busy middle beats the edges
        assert max(iv.bandwidth for iv in series) > 0
