"""Skew/drift estimation tests: the LANL-Trace timing-job pipeline."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.skew import ClockEstimate, correct_timestamp, estimate_clocks
from repro.cluster.clock import Clock
from repro.errors import TraceError
from repro.trace.records import BarrierStamp


def stamps_from_clocks(clocks, barrier_times, spread=0.0):
    """Synthesize barrier stamps: all ranks exit at (about) the same true time."""
    stamps = []
    for label_i, t in enumerate(barrier_times):
        for rank, clock in enumerate(clocks):
            exit_true = t + spread * rank
            stamps.append(
                BarrierStamp(
                    barrier_label="barrier %d" % label_i,
                    rank=rank,
                    hostname="h%d" % rank,
                    pid=100 + rank,
                    entered_at=clock.local(exit_true - 0.001),
                    exited_at=clock.local(exit_true),
                )
            )
    return stamps


class TestEstimation:
    def test_reference_rank_is_identity(self):
        clocks = [Clock(), Clock(skew=0.5)]
        est = estimate_clocks(stamps_from_clocks(clocks, [10.0, 20.0]))
        assert est[0].alpha == 0.0 and est[0].beta == 1.0

    def test_pure_skew_recovered(self):
        clocks = [Clock(epoch=1000.0), Clock(epoch=1000.0, skew=0.25)]
        est = estimate_clocks(stamps_from_clocks(clocks, [10.0, 50.0]))
        # rank 1's local reading maps back onto rank 0's timeline
        local = clocks[1].local(30.0)
        ref = clocks[0].local(30.0)
        assert correct_timestamp(est, 1, local) == pytest.approx(ref, abs=1e-9)
        assert not est[1].has_drift

    def test_drift_detected_with_two_barriers(self):
        clocks = [Clock(), Clock(drift=5e-5)]
        est = estimate_clocks(stamps_from_clocks(clocks, [0.0, 100.0]))
        assert est[1].has_drift
        assert est[1].beta == pytest.approx(1.0 / (1.0 + 5e-5), rel=1e-9)

    def test_single_barrier_gives_skew_only(self):
        clocks = [Clock(), Clock(skew=1.0, drift=1e-4)]
        est = estimate_clocks(stamps_from_clocks(clocks, [10.0]))
        assert est[1].beta == 1.0  # cannot see drift from one barrier

    def test_no_usable_stamps_raises(self):
        with pytest.raises(TraceError):
            estimate_clocks([])
        # barrier exists but reference rank absent
        stamps = stamps_from_clocks([Clock(), Clock()], [1.0])
        only_rank1 = [s for s in stamps if s.rank == 1]
        with pytest.raises(TraceError):
            estimate_clocks(only_rank1)

    def test_unknown_rank_correction_raises(self):
        est = {0: ClockEstimate(0, 0.0, 1.0)}
        with pytest.raises(TraceError):
            correct_timestamp(est, 5, 1.0)

    @given(
        skews=st.lists(st.floats(-1.0, 1.0), min_size=2, max_size=6),
        drifts=st.lists(st.floats(-1e-4, 1e-4), min_size=2, max_size=6),
        t_test=st.floats(5.0, 500.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_recovery_property(self, skews, drifts, t_test):
        """Any affine clock family is recovered from two exact barriers."""
        n = min(len(skews), len(drifts))
        clocks = [
            Clock(epoch=1_159_808_000.0, skew=skews[i], drift=drifts[i])
            for i in range(n)
        ]
        est = estimate_clocks(stamps_from_clocks(clocks, [1.0, 600.0]))
        for rank in range(n):
            local = clocks[rank].local(t_test)
            ref = clocks[0].local(t_test)
            assert correct_timestamp(est, rank, local) == pytest.approx(
                ref, abs=1e-5
            )

    def test_barrier_exit_spread_bounds_error(self):
        """Realistic barriers release ranks microseconds apart; the
        estimate degrades gracefully, not catastrophically."""
        clocks = [Clock(), Clock(skew=0.05), Clock(skew=-0.02)]
        stamps = stamps_from_clocks(clocks, [1.0, 30.0], spread=20e-6)
        est = estimate_clocks(stamps)
        for rank in (1, 2):
            local = clocks[rank].local(15.0)
            ref = clocks[0].local(15.0)
            err = abs(correct_timestamp(est, rank, local) - ref)
            assert err < 1e-3  # bounded by the barrier spread, not the skew


class TestEndToEndWithLANLTrace:
    """The full pipeline: timing job stamps -> estimates -> ordering."""

    def test_skew_correction_recovers_event_order(self):
        from repro.analysis.timeline import global_timeline
        from repro.frameworks.lanltrace import LANLTrace, LANLTraceConfig
        from repro.harness.experiment import run_traced
        from repro.harness.testbed import TestbedConfig
        from repro.cluster.cluster import ClusterConfig
        from repro.workloads import mpi_io_test, AccessPattern

        config = TestbedConfig(
            cluster=ClusterConfig(
                n_nodes=4, clock_skew_stddev=0.5, clock_drift_stddev=1e-5, seed=11
            )
        )
        _, traced = run_traced(
            lambda: LANLTrace(LANLTraceConfig(syscall_event_cost=0, libcall_event_cost=0)),
            mpi_io_test,
            {
                "pattern": AccessPattern.N_TO_1_NONSTRIDED,
                "block_size": 65536,
                "nobj": 4,
                "path": "/pfs/out",
            },
            config=config,
            nprocs=4,
        )
        bundle = traced.bundle
        assert bundle.barrier_stamps, "timing job must emit stamps"
        est = estimate_clocks(bundle.barrier_stamps)
        # With 0.5 s skew stddev, raw ordering mixes phases wildly; the
        # corrected timeline must put every rank's open before any close.
        timeline = global_timeline(bundle, est)
        opens = [t for t, e in timeline if e.name == "SYS_open"]
        closes = [t for t, e in timeline if e.name == "SYS_close"]
        assert max(opens) < max(closes)
        # all four ranks' clocks were estimated
        assert set(est) == {0, 1, 2, 3}
