"""Call summaries, bandwidth arithmetic, timelines, data dependencies."""

import pytest

from repro.analysis.bandwidth import (
    events_per_byte,
    overhead_percent,
    payload_bytes,
    trace_bandwidth,
)
from repro.analysis.dependencies import dependency_summary, infer_data_dependencies
from repro.analysis.summary import summarize_calls
from repro.analysis.timeline import global_timeline
from repro.analysis.skew import ClockEstimate
from repro.trace.events import EventLayer, TraceEvent
from repro.trace.records import TraceBundle, TraceFile


def ev(name, ts=0.0, dur=0.001, rank=0, nbytes=None, path=None):
    return TraceEvent(
        timestamp=ts,
        duration=dur,
        layer=EventLayer.SYSCALL,
        name=name,
        rank=rank,
        nbytes=nbytes,
        path=path,
    )


class TestCallSummary:
    def test_counts_and_times(self):
        events = [
            ev("SYS_write", dur=0.01),
            ev("SYS_write", dur=0.02),
            ev("MPI_Barrier", dur=1.0),
        ]
        s = summarize_calls(events)
        assert s["SYS_write"].n_calls == 2
        assert s["SYS_write"].total_time == pytest.approx(0.03)
        assert s["MPI_Barrier"].n_calls == 1
        assert s.total_calls == 3
        assert s.total_time == pytest.approx(1.03)

    def test_rows_sorted_by_name(self):
        s = summarize_calls([ev("b"), ev("a"), ev("c")])
        assert [r.name for r in s.rows()] == ["a", "b", "c"]

    def test_accepts_bundle_and_file(self):
        tf = TraceFile([ev("SYS_read")])
        bundle = TraceBundle(files={0: tf, 1: TraceFile([ev("SYS_read")])})
        assert summarize_calls(tf)["SYS_read"].n_calls == 1
        assert summarize_calls(bundle)["SYS_read"].n_calls == 2

    def test_membership_and_len(self):
        s = summarize_calls([ev("x")])
        assert "x" in s and "y" not in s
        assert len(s) == 1

    def test_store_backed_summary_matches_direct(self, tmp_path):
        from repro.analysis.summary import summarize_store
        from repro.store import Query, TraceBank

        bundle = TraceBundle(
            files={
                0: TraceFile([ev("SYS_write", ts=0.0, dur=0.01, nbytes=4096),
                              ev("SYS_read", ts=0.1, dur=0.02, nbytes=512)]),
                1: TraceFile([ev("SYS_write", ts=0.2, dur=0.03, rank=1)]),
            }
        )
        bank = TraceBank(tmp_path / "store")
        bank.ingest_bundle(bundle)
        direct = summarize_calls(bundle)
        stored = summarize_store(str(bank.root), jobs=2)
        assert [r.name for r in stored.rows()] == [r.name for r in direct.rows()]
        for name in (r.name for r in direct.rows()):
            assert stored[name].n_calls == direct[name].n_calls
            # Shard-order float summation may differ from dict-order: approx.
            assert stored[name].total_time == pytest.approx(direct[name].total_time)

    def test_store_backed_summary_honors_query_filters(self, tmp_path):
        from repro.analysis.summary import summarize_store
        from repro.store import Query, TraceBank

        bank = TraceBank(tmp_path / "store")
        bank.ingest_bundle(
            TraceBundle(files={0: TraceFile([ev("SYS_write"), ev("SYS_read")])})
        )
        s = summarize_store(
            str(bank.root), query=Query.create(names=["SYS_read"])
        )
        assert [r.name for r in s.rows()] == ["SYS_read"]


class TestBandwidthHelpers:
    def test_payload_bytes_counts_io_only(self):
        events = [
            ev("SYS_write", nbytes=100),
            ev("SYS_read", nbytes=50),
            ev("SYS_open", nbytes=None),
            ev("MPI_Barrier"),
        ]
        assert payload_bytes(events) == 150

    def test_trace_bandwidth(self):
        tf = TraceFile(
            [ev("SYS_write", ts=0.0, dur=1.0, nbytes=1000),
             ev("SYS_write", ts=1.0, dur=1.0, nbytes=1000)]
        )
        bundle = TraceBundle(files={0: tf})
        assert trace_bandwidth(bundle) == pytest.approx(1000.0)

    def test_trace_bandwidth_empty(self):
        assert trace_bandwidth(TraceBundle()) == 0.0

    def test_events_per_byte_inverse_in_block_size(self):
        """The paper's §4.1.2 observation, as arithmetic."""

        def density(block):
            tf = TraceFile(
                [ev("SYS_write", ts=i * 0.01, nbytes=block) for i in range(10)]
            )
            return events_per_byte(TraceBundle(files={0: tf}))

        assert density(65536) == pytest.approx(density(131072) * 2)

    def test_overhead_percent(self):
        assert overhead_percent(10.0, 12.4) == pytest.approx(24.0)
        assert overhead_percent(0.0, 5.0) == 0.0


class TestTimeline:
    def test_raw_merge_orders_by_local_time(self):
        bundle = TraceBundle(
            files={
                0: TraceFile([ev("a", ts=2.0, rank=0)], rank=0),
                1: TraceFile([ev("b", ts=1.0, rank=1)], rank=1),
            }
        )
        merged = global_timeline(bundle)
        assert [e.name for _, e in merged] == ["b", "a"]

    def test_corrected_merge_reorders(self):
        # rank 1's clock is 10 seconds ahead; correction moves it back
        bundle = TraceBundle(
            files={
                0: TraceFile([ev("a", ts=2.0, rank=0)], rank=0),
                1: TraceFile([ev("b", ts=11.0, rank=1)], rank=1),
            }
        )
        est = {
            0: ClockEstimate(0, 0.0, 1.0),
            1: ClockEstimate(1, -10.0, 1.0),
        }
        merged = global_timeline(bundle, est)
        assert [e.name for _, e in merged] == ["b", "a"]
        assert merged[0][0] == pytest.approx(1.0)


class TestDataDependencies:
    def test_writer_reader_edge(self):
        bundle = TraceBundle(
            files={
                0: TraceFile(
                    [ev("SYS_write", ts=1.0, rank=0, nbytes=10, path="/pfs/shared")],
                    rank=0,
                ),
                1: TraceFile(
                    [ev("SYS_read", ts=2.0, rank=1, nbytes=10, path="/pfs/shared")],
                    rank=1,
                ),
            }
        )
        g = infer_data_dependencies(bundle)
        assert g.has_edge(0, 1)
        assert g.edges[0, 1]["count"] == 1
        assert "rank 0 -> rank 1" in dependency_summary(g)

    def test_no_edge_for_private_files(self):
        bundle = TraceBundle(
            files={
                0: TraceFile([ev("SYS_write", ts=1.0, rank=0, nbytes=1, path="/a")], rank=0),
                1: TraceFile([ev("SYS_read", ts=2.0, rank=1, nbytes=1, path="/b")], rank=1),
            }
        )
        g = infer_data_dependencies(bundle)
        assert g.number_of_edges() == 0
        assert "no cross-rank" in dependency_summary(g)

    def test_self_dependency_excluded(self):
        bundle = TraceBundle(
            files={
                0: TraceFile(
                    [
                        ev("SYS_write", ts=1.0, rank=0, nbytes=1, path="/f"),
                        ev("SYS_read", ts=2.0, rank=0, nbytes=1, path="/f"),
                    ],
                    rank=0,
                )
            }
        )
        assert infer_data_dependencies(bundle).number_of_edges() == 0

    def test_skew_correction_changes_verdict(self):
        """With skewed clocks the read 'precedes' the write; corrected
        timestamps recover the true writer->reader edge."""
        bundle = TraceBundle(
            files={
                0: TraceFile(
                    # true time 1.0, but clock is 5s behind -> records -4.0
                    [ev("SYS_write", ts=-4.0, rank=0, nbytes=1, path="/f")],
                    rank=0,
                ),
                1: TraceFile(
                    [ev("SYS_read", ts=2.0, rank=1, nbytes=1, path="/f")], rank=1
                ),
            }
        )
        est = {0: ClockEstimate(0, 5.0, 1.0), 1: ClockEstimate(1, 0.0, 1.0)}
        raw = infer_data_dependencies(bundle)
        corrected = infer_data_dependencies(bundle, est)
        assert raw.has_edge(0, 1)  # happens to be right here
        assert corrected.has_edge(0, 1)
