"""I/O phase detection tests."""

import pytest

from repro.analysis.phases import Phase, detect_phases, phase_summary
from repro.trace.events import EventLayer, TraceEvent
from repro.trace.records import TraceFile


def io_ev(ts, nbytes=1000, dur=0.01, name="SYS_write"):
    return TraceEvent(
        timestamp=ts, duration=dur, layer=EventLayer.SYSCALL,
        name=name, nbytes=nbytes,
    )


def meta_ev(ts, name="SYS_stat64"):
    return TraceEvent(timestamp=ts, duration=0.001, layer=EventLayer.SYSCALL, name=name)


class TestDetect:
    def test_empty(self):
        assert detect_phases([]) == []
        assert detect_phases([meta_ev(1.0)]) == []
        assert "no I/O phases" in phase_summary([])

    def test_single_burst(self):
        phases = detect_phases([io_ev(0.0), io_ev(0.02), io_ev(0.04)])
        assert len(phases) == 1
        p = phases[0]
        assert p.kind == "io"
        assert p.n_events == 3
        assert p.bytes_moved == 3000
        assert p.start == 0.0 and p.end == pytest.approx(0.05)

    def test_gap_splits_bursts(self):
        phases = detect_phases(
            [io_ev(0.0), io_ev(0.02), io_ev(1.0), io_ev(1.02)], gap_threshold=0.05
        )
        kinds = [p.kind for p in phases]
        assert kinds == ["io", "compute", "io"]
        compute = phases[1]
        assert compute.start == pytest.approx(0.03)
        assert compute.end == pytest.approx(1.0)
        assert compute.bytes_moved == 0

    def test_metadata_does_not_break_burst(self):
        events = [io_ev(0.0), meta_ev(0.5), io_ev(0.02)]
        phases = detect_phases(events, gap_threshold=0.05)
        assert len(phases) == 1

    def test_unsorted_events_handled(self):
        phases = detect_phases([io_ev(1.0), io_ev(0.0)], gap_threshold=2.0)
        assert len(phases) == 1
        assert phases[0].start == 0.0

    def test_accepts_trace_file(self):
        tf = TraceFile([io_ev(0.0), io_ev(0.02)])
        assert len(detect_phases(tf)) == 1

    def test_bandwidth_property(self):
        p = Phase("io", 0.0, 2.0, bytes_moved=4000, n_events=4)
        assert p.bandwidth == 2000.0
        assert Phase("compute", 0.0, 0.0).bandwidth == 0.0

    def test_summary_rendering(self):
        phases = detect_phases(
            [io_ev(0.0), io_ev(1.0)], gap_threshold=0.05
        )
        text = phase_summary(phases)
        assert "io" in text and "compute" in text
        assert "1 compute gap(s)" in text


class TestOnRealWorkload:
    def test_checkpoint_workload_alternates(self):
        """The checkpoint workload's compute/write structure is visible."""
        from repro.frameworks.ptrace import PTrace
        from repro.harness.experiment import run_traced
        from repro.units import KiB
        from repro.workloads.generators import checkpoint

        _, traced = run_traced(
            PTrace,
            checkpoint,
            {"path": "/pfs/ck", "phases": 3, "compute_time": 0.3,
             "block_size": 64 * KiB, "blocks_per_phase": 8},
            nprocs=2,
        )
        phases = detect_phases(traced.bundle.files[0], gap_threshold=0.1)
        io_phases = [p for p in phases if p.kind == "io"]
        compute_phases = [p for p in phases if p.kind == "compute"]
        assert len(io_phases) == 3
        assert len(compute_phases) == 2
        # compute gaps are at least as long as the configured compute time
        assert all(p.duration >= 0.25 for p in compute_phases)
        # each I/O phase moved the per-phase bytes
        assert all(p.bytes_moved == 8 * 64 * KiB for p in io_phases)
