"""CLI observatory flow: figures --baseline, obs diff/critpath/slice/
diagnose/check."""

import contextlib
import json
import os

import pytest

from repro.cli import main
from repro.obs.baseline import append_history, make_record
from repro.obs.metrics import canonical_json


@contextlib.contextmanager
def chdir(path):
    old = os.getcwd()
    os.chdir(path)
    try:
        yield
    finally:
        os.chdir(old)


@pytest.fixture(scope="module")
def sweep_dir(tmp_path_factory):
    """One quick baselined + archived figures sweep shared by the module."""
    root = tmp_path_factory.mktemp("obs-run")
    with chdir(root):
        assert (
            main(
                [
                    "figures",
                    "--quick",
                    "--jobs",
                    "2",
                    "--no-cache",
                    "--telemetry",
                    "--store",
                    "--baseline",
                    "--bench-out",
                    "",
                ]
            )
            == 0
        )
    return root


def _history_record(elapsed_traced=1.0):
    return make_record(
        [
            {
                "figure": 2,
                "block_size": 65536,
                "elapsed_untraced": 0.5,
                "elapsed_traced": elapsed_traced,
                "overhead_pct": 100.0 * (elapsed_traced / 0.5 - 1.0),
                "events_per_sec": 1e6,
                "wall_seconds": 0.25,
                "wall_time_per_sim_second": 0.2,
            }
        ],
        quick=True,
        nprocs=4,
        jobs=1,
    )


class TestFiguresBaseline:
    def test_history_record_appended(self, sweep_dir):
        lines = (sweep_dir / "BENCH_history.jsonl").read_text().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["schema"] == "repro/bench_history/v1"
        assert record["quick"] is True
        # 3 figures x 2 quick block sizes.
        assert len(record["points"]) == 6
        assert all("elapsed_traced" in p for p in record["points"])

    def test_check_flags_single_record_as_insufficient(self, sweep_dir, capsys):
        with chdir(sweep_dir):
            assert main(["obs", "check"]) == 0
        out = capsys.readouterr().out
        assert "insufficient history" in out
        assert "no regressions detected" in out


class TestObsDiff:
    def test_untraced_vs_traced_names_the_tracer(self, sweep_dir, capsys):
        artifact = sweep_dir / "telemetry" / "fig2_bs65536.telemetry.json"
        assert (
            main(
                [
                    "obs",
                    "diff",
                    str(artifact),
                    str(artifact),
                    "--run-a",
                    "untraced",
                    "--run-b",
                    "traced",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "telemetry diff: fig2_bs65536.telemetry.json:untraced" in out
        assert "dominant self-time delta" in out

    def test_identical_sides_diff_to_zero(self, sweep_dir, capsys):
        artifact = sweep_dir / "telemetry" / "fig2_bs65536.telemetry.json"
        assert main(["obs", "diff", str(artifact), str(artifact)]) == 0
        out = capsys.readouterr().out
        assert "(+0.000000 s)" in out
        assert "(no counter differences)" in out

    def test_formats_and_report_out(self, sweep_dir, capsys, tmp_path):
        artifact = sweep_dir / "telemetry" / "fig4_bs65536.telemetry.json"
        report_path = tmp_path / "diff.json"
        args = [
            "obs", "diff", str(artifact), str(artifact),
            "--run-a", "untraced", "--run-b", "traced",
        ]
        assert main(args + ["--format", "markdown"]) == 0
        assert capsys.readouterr().out.startswith("# telemetry diff")
        assert main(args + ["--format", "json",
                            "--report-out", str(report_path)]) == 0
        out = capsys.readouterr().out
        report = json.loads(report_path.read_text())
        assert report["schema"] == "repro/obs/diff/v1"
        assert out.splitlines()[0] == canonical_json(report)

    def test_store_prefix_sources(self, sweep_dir, capsys):
        from repro.store import TraceBank

        ids = TraceBank(sweep_dir / ".repro-store", create=False).run_ids()
        assert len(ids) == 6  # one archived traced run per sweep point
        assert (
            main(
                [
                    "obs",
                    "diff",
                    ids[0][:12],
                    ids[1][:12],
                    "--store",
                    str(sweep_dir / ".repro-store"),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "telemetry diff: store:%s" % ids[0][:12] in out

    def test_missing_source_is_an_error(self, tmp_path, capsys):
        assert main(["obs", "diff", str(tmp_path / "a.json"),
                     str(tmp_path / "b.json")]) == 1
        assert "error:" in capsys.readouterr().err


class TestObsCritpath:
    def test_report_and_flamegraph_export(self, sweep_dir, capsys, tmp_path):
        artifact = sweep_dir / "telemetry" / "fig2_bs65536.telemetry.json"
        flame = tmp_path / "flame.txt"
        assert main(["obs", "critpath", str(artifact),
                     "--flame", str(flame)]) == 0
        out = capsys.readouterr().out
        assert "critical path (" in out
        assert "straggler:" in out
        assert "self time by layer" in out
        stacks = flame.read_text().splitlines()
        assert stacks and stacks == sorted(stacks)
        assert all(s.rsplit(" ", 1)[1].isdigit() for s in stacks)

    def test_json_report_is_canonical(self, sweep_dir, capsys):
        artifact = sweep_dir / "telemetry" / "fig3_bs65536.telemetry.json"
        assert main(["obs", "critpath", str(artifact), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["schema"] == "repro/obs/critpath/v1"
        assert report["straggler"] is not None


class TestObsSlice:
    def test_store_source_with_all_exports(self, sweep_dir, capsys, tmp_path):
        from repro.store import TraceBank

        store = sweep_dir / ".repro-store"
        run_id = TraceBank(store, create=False).run_ids()[0]
        flame = tmp_path / "slice.folded"
        perfetto = tmp_path / "slice.trace.json"
        report_out = tmp_path / "slice.json"
        assert main([
            "obs", "slice", run_id[:12], "--store", str(store),
            "--flame", str(flame), "--perfetto", str(perfetto),
            "--report-out", str(report_out),
        ]) == 0
        out = capsys.readouterr().out
        assert "causal slice [straggler]" in out
        assert "suspects (ranked):" in out
        report = json.loads(report_out.read_text())
        assert report["schema"] == "repro/obs/slice/v1"
        assert report["source"] == {"kind": "store", "run_id": run_id}
        assert report["chain"]
        assert report["dfg_context"] is not None
        trace = json.loads(perfetto.read_text())
        assert any(e["ph"] == "X" for e in trace["traceEvents"])
        stacks = flame.read_text().splitlines()
        assert stacks == sorted(stacks)

    def test_file_source_with_rank_anchor(self, sweep_dir, capsys):
        artifact = sweep_dir / "telemetry" / "fig2_bs65536.telemetry.json"
        assert main(["obs", "slice", str(artifact), "--rank", "0",
                     "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["anchor"] == {"kind": "rank", "value": 0}
        assert report["track"]["rank"] == 0
        assert report["suspects"]

    def test_path_anchor_needs_a_store_source(self, sweep_dir, capsys):
        from repro.store import TraceBank

        store = sweep_dir / ".repro-store"
        run_id = TraceBank(store, create=False).run_ids()[0]
        assert main(["obs", "slice", run_id[:12], "--store", str(store),
                     "--path", "/pfs/*", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["anchor"]["kind"] == "path"
        artifact = sweep_dir / "telemetry" / "fig2_bs65536.telemetry.json"
        assert main(["obs", "slice", str(artifact), "--path", "/pfs/*"]) == 1
        assert "store-archived" in capsys.readouterr().err

    def test_anchor_flags_are_mutually_exclusive(self, sweep_dir, capsys):
        with pytest.raises(SystemExit):
            main(["obs", "slice", "whatever", "--rank", "0", "--op", "x"])

    def test_unknown_prefix_is_an_error(self, sweep_dir, capsys):
        assert main(["obs", "slice", "zzzzzz", "--store",
                     str(sweep_dir / ".repro-store")]) == 1
        assert "error:" in capsys.readouterr().err


class TestObsDiagnose:
    def test_diagnose_smoke_over_the_sweep_archive(self, sweep_dir, capsys,
                                                   tmp_path):
        # The figure sweep archives six singleton groups (one per figure
        # point): nothing is comparable, so nothing may be flagged.
        report_out = tmp_path / "diagnose.json"
        assert main([
            "obs", "diagnose", "--store", str(sweep_dir / ".repro-store"),
            "--jobs", "2", "--report-out", str(report_out),
            "--fail-on-outlier",
        ]) == 0
        out = capsys.readouterr().out
        assert "diagnosed 6 run(s)" in out
        report = json.loads(report_out.read_text())
        assert report["schema"] == "repro/obs/diagnose/v1"
        assert report["summary"]["outliers"] == 0
        assert report["summary"]["insufficient_groups"] == 6

    def test_json_output_is_canonical(self, sweep_dir, capsys):
        assert main(["obs", "diagnose", "--store",
                     str(sweep_dir / ".repro-store"), "--json"]) == 0
        out = capsys.readouterr().out
        report = json.loads(out)
        assert out.strip() == canonical_json(report)

    def test_missing_store_is_an_error(self, tmp_path, capsys):
        assert main(["obs", "diagnose", "--store",
                     str(tmp_path / "nope")]) == 1
        assert "error:" in capsys.readouterr().err


class TestObsCheck:
    def test_fail_on_regression_gates(self, tmp_path, capsys):
        history = tmp_path / "h.jsonl"
        for _ in range(3):
            append_history(history, _history_record(1.0))
        append_history(history, _history_record(1.3))
        assert main(["obs", "check", "--history", str(history)]) == 0
        assert "REGRESSION" in capsys.readouterr().out
        assert main(["obs", "check", "--history", str(history),
                     "--fail-on-regression"]) == 1

    def test_clean_history_passes_the_gate(self, tmp_path, capsys):
        history = tmp_path / "h.jsonl"
        for _ in range(4):
            append_history(history, _history_record(1.0))
        assert main(["obs", "check", "--history", str(history),
                     "--fail-on-regression", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["summary"]["regressions"] == 0

    def test_missing_history_is_an_error(self, tmp_path, capsys):
        assert main(["obs", "check", "--history",
                     str(tmp_path / "nope.jsonl")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_corrupt_history_is_an_error(self, tmp_path, capsys):
        bad = tmp_path / "h.jsonl"
        bad.write_text("{broken\n")
        assert main(["obs", "check", "--history", str(bad)]) == 1
        assert "unparseable" in capsys.readouterr().err


class TestObserveHint:
    def test_zero_span_payload_gets_guidance(self, tmp_path, capsys):
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.perfetto import to_chrome_trace
        from repro.obs.spans import SpanRecorder

        reg = MetricsRegistry()
        reg.inc("des.events_dispatched", 5)
        payload = {
            "schema": "repro/telemetry/v1",
            "metrics": reg.snapshot(end_time=1.0),
            "trace": to_chrome_trace(SpanRecorder()),
        }
        path = tmp_path / "spanless.telemetry.json"
        path.write_text(canonical_json(payload))
        assert main(["observe", str(path)]) == 0
        assert "no spans recorded" in capsys.readouterr().out
