"""Clock skew/drift model tests."""

import pytest
from hypothesis import given, strategies as st

from repro.cluster.clock import Clock
from repro.errors import SimTimeError


def test_perfect_clock_is_identity_plus_epoch():
    c = Clock(epoch=100.0)
    assert c.local(5.0) == 105.0
    assert c.true(105.0) == 5.0


def test_skew_shifts_constant():
    c = Clock(skew=0.25)
    assert c.local(0.0) == 0.25
    assert c.local(10.0) == 10.25
    # skew does not change over time when drift is zero
    assert c.offset_at(0.0) == pytest.approx(c.offset_at(1000.0))


def test_drift_changes_offset_over_time():
    c = Clock(drift=1e-3)
    # paper: "time drift is the change in time skew over time"
    assert c.offset_at(0.0) == pytest.approx(0.0)
    assert c.offset_at(100.0) == pytest.approx(0.1)
    assert c.offset_at(200.0) > c.offset_at(100.0)


def test_runaway_negative_drift_rejected():
    with pytest.raises(SimTimeError):
        Clock(drift=-1.0)


@given(
    skew=st.floats(-10, 10),
    drift=st.floats(-1e-3, 1e-3),
    epoch=st.floats(0, 2e9),
    t=st.floats(0, 1e6),
)
def test_local_true_are_inverses(skew, drift, epoch, t):
    c = Clock(skew=skew, drift=drift, epoch=epoch)
    assert c.true(c.local(t)) == pytest.approx(t, abs=1e-6, rel=1e-9)


@given(
    drift=st.floats(-1e-4, 1e-4),
    t1=st.floats(0, 1e6),
    t2=st.floats(0, 1e6),
)
def test_clock_is_monotonic(drift, t1, t2):
    c = Clock(skew=1.0, drift=drift, epoch=1e9)
    lo, hi = min(t1, t2), max(t1, t2)
    assert c.local(lo) <= c.local(hi)
