"""Cluster assembly, node cost model, and network transfer tests."""

import pytest

from repro.cluster import Cluster, ClusterConfig, Network, NetworkConfig, NodeParams
from repro.des import Simulator, Timeout
from repro.units import MiB


class TestNodeParams:
    def test_defaults_valid(self):
        p = NodeParams()
        assert p.syscall_cost > 0
        assert p.mem_bandwidth > 0

    def test_negative_costs_rejected(self):
        with pytest.raises(ValueError):
            NodeParams(syscall_cost=-1e-6)
        with pytest.raises(ValueError):
            NodeParams(mem_bandwidth=0)


class TestNode:
    def test_local_clock_used_for_timestamps(self):
        cfg = ClusterConfig(n_nodes=2, clock_skew_stddev=1.0, seed=3)
        cluster = Cluster(cfg)
        a, b = cluster.nodes
        # At true time zero, nodes disagree (with overwhelming probability
        # for a 1-second skew stddev and this fixed seed).
        assert a.now_local() != b.now_local()

    def test_compute_scales_with_cpu_factor(self):
        cluster = Cluster(ClusterConfig(n_nodes=1))
        node = cluster.node(0)
        sim = cluster.sim

        def body():
            yield from node.compute(1.0)
            return sim.now

        assert sim.run_process(body()) == pytest.approx(1.0)

        cluster2 = Cluster(ClusterConfig(n_nodes=1))
        node2 = cluster2.node(0)
        node2.cpu_factor = 2.0

        def body2():
            yield from node2.compute(1.0)
            return cluster2.sim.now

        assert cluster2.sim.run_process(body2()) == pytest.approx(2.0)

    def test_copy_cost_is_linear_and_unscaled(self):
        cluster = Cluster(ClusterConfig(n_nodes=1))
        node = cluster.node(0)
        one = node.copy_cost(1 * MiB)
        node.cpu_factor = 3.0
        assert node.copy_cost(2 * MiB) == pytest.approx(2 * one)


class TestClusterConfig:
    def test_zero_nodes_rejected(self):
        with pytest.raises(ValueError):
            ClusterConfig(n_nodes=0)

    def test_negative_stddev_rejected(self):
        with pytest.raises(ValueError):
            ClusterConfig(clock_skew_stddev=-0.1)

    def test_same_seed_same_clocks(self):
        a = Cluster(ClusterConfig(n_nodes=4, seed=9))
        b = Cluster(ClusterConfig(n_nodes=4, seed=9))
        for na, nb in zip(a.nodes, b.nodes):
            assert na.clock.skew == nb.clock.skew
            assert na.clock.drift == nb.clock.drift

    def test_different_seed_different_clocks(self):
        a = Cluster(ClusterConfig(n_nodes=4, seed=1))
        b = Cluster(ClusterConfig(n_nodes=4, seed=2))
        assert any(
            na.clock.skew != nb.clock.skew for na, nb in zip(a.nodes, b.nodes)
        )

    def test_perfect_clocks_option(self):
        c = Cluster(ClusterConfig(n_nodes=3, clock_skew_stddev=0, clock_drift_stddev=0))
        for node in c.nodes:
            assert node.clock.skew == 0.0
            assert node.clock.drift == 0.0


class TestNetwork:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            NetworkConfig(link_bandwidth=0)
        with pytest.raises(ValueError):
            NetworkConfig(latency=-1)
        with pytest.raises(ValueError):
            NetworkConfig(fabric_streams=0)

    def test_transfer_time_includes_serialization_and_latency(self):
        cluster = Cluster(
            ClusterConfig(
                n_nodes=1,
                network=NetworkConfig(link_bandwidth=100 * MiB, latency=1e-3),
            )
        )
        sim = cluster.sim
        node = cluster.node(0)

        def body():
            yield from cluster.network.transfer(node.nic, 100 * MiB)
            return sim.now

        # 1 second serialization + 1ms latency
        assert sim.run_process(body()) == pytest.approx(1.001)
        assert cluster.network.bytes_moved == 100 * MiB
        assert cluster.network.messages == 1

    def test_same_sender_serializes_on_nic(self):
        cluster = Cluster(
            ClusterConfig(
                n_nodes=1,
                network=NetworkConfig(link_bandwidth=100 * MiB, latency=0.0),
            )
        )
        sim = cluster.sim
        node = cluster.node(0)
        done = []

        def sender(tag):
            yield from cluster.network.transfer(node.nic, 50 * MiB)
            done.append((sim.now, tag))

        sim.spawn(sender("a"), name="a")
        sim.spawn(sender("b"), name="b")
        sim.run()
        # 0.5s each, serialized on the single NIC
        assert done == [(pytest.approx(0.5), "a"), (pytest.approx(1.0), "b")]

    def test_fabric_caps_concurrent_streams(self):
        cfg = ClusterConfig(
            n_nodes=4,
            network=NetworkConfig(link_bandwidth=100 * MiB, latency=0.0, fabric_streams=2),
        )
        cluster = Cluster(cfg)
        sim = cluster.sim
        ends = []

        def sender(i):
            yield from cluster.network.transfer(cluster.node(i).nic, 100 * MiB)
            ends.append(sim.now)

        for i in range(4):
            sim.spawn(sender(i), name="s%d" % i)
        sim.run()
        # 4 one-second transfers through 2 fabric slots: two waves.
        assert sorted(ends) == pytest.approx([1.0, 1.0, 2.0, 2.0])
