"""Shared pytest configuration: hypothesis profiles.

Two profiles, selected with ``--hypothesis-profile`` (built into the
hypothesis pytest plugin):

* ``dev`` (default) — hypothesis defaults: random exploration, local
  example database, normal deadlines.  What you want at a keyboard.
* ``ci`` — fixed derandomized seed and no deadline, so tier-1 CI runs
  are reproducible across machines and immune to deadline flakiness on
  slow shared runners.  GitHub Actions passes ``--hypothesis-profile=ci``.
"""

from hypothesis import settings

settings.register_profile("dev", settings())
settings.register_profile(
    "ci",
    derandomize=True,
    deadline=None,
    print_blob=True,
)
settings.load_profile("dev")
