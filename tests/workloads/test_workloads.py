"""mpi_io_test and other workload driver tests."""

import pytest

from repro.errors import InvalidArgument
from repro.harness.testbed import build_testbed
from repro.simmpi import mpirun
from repro.units import KiB
from repro.workloads import AccessPattern, mpi_io_test
from repro.workloads.generators import checkpoint, io_intensive, metadata_heavy, mmap_mix
from repro.workloads.patterns import total_file_bytes


def run(workload, args, nprocs=4):
    tb = build_testbed()
    job = mpirun(tb.cluster, tb.vfs, workload, nprocs=nprocs, args=args)
    return tb, job


class TestMpiIoTest:
    @pytest.mark.parametrize("pattern", list(AccessPattern))
    def test_writes_expected_bytes_and_file_sizes(self, pattern):
        args = {"pattern": pattern, "block_size": 64 * KiB, "nobj": 4, "path": "/pfs/out"}
        tb, job = run(mpi_io_test, args, nprocs=4)
        for r in job.results:
            assert r.bytes_written == 4 * 64 * KiB
            assert r.n_writes == 4
        if pattern.shared_file:
            assert tb.pfs.ns.lookup("out").size == total_file_bytes(
                pattern, 4, 64 * KiB, 4
            )
        else:
            for rank in range(4):
                assert tb.pfs.ns.lookup("out.%d" % rank).size == 4 * 64 * KiB

    def test_read_back(self):
        args = {
            "pattern": AccessPattern.N_TO_N,
            "block_size": 64 * KiB,
            "nobj": 2,
            "path": "/pfs/out",
            "read_back": True,
        }
        _, job = run(mpi_io_test, args)
        for r in job.results:
            assert r.bytes_read == r.bytes_written

    def test_string_pattern_accepted(self):
        args = {"pattern": "n-to-n", "block_size": 1024, "nobj": 1, "path": "/pfs/out"}
        _, job = run(mpi_io_test, args, nprocs=2)
        assert all(r.bytes_written == 1024 for r in job.results)

    def test_local_timings_reported(self):
        args = {"pattern": AccessPattern.N_TO_N, "block_size": 64 * KiB, "nobj": 2,
                "path": "/pfs/out"}
        _, job = run(mpi_io_test, args, nprocs=2)
        for r in job.results:
            assert r.t_total_local > 0
            assert r.t_io_local > 0

    def test_bad_args_rejected(self):
        with pytest.raises(InvalidArgument):
            run(mpi_io_test, {"block_size": 0})
        with pytest.raises(InvalidArgument):
            run(mpi_io_test, {"nobj": -1})
        with pytest.raises(InvalidArgument):
            run(mpi_io_test, {"barrier_every": -2})

    def test_barrier_every_emits_barriers(self):
        from repro.simos.interpose import Interposer
        from repro.trace.events import EventLayer
        from repro.trace.records import TraceFile

        tb = build_testbed()
        sinks = {}

        def setup(rank, proc, mpirank):
            sink = TraceFile(rank=rank)
            sinks[rank] = sink
            proc.attach(Interposer(sink, per_event_cost=0), EventLayer.LIBCALL)

        args = {"pattern": AccessPattern.N_TO_1_NONSTRIDED, "block_size": 1024,
                "nobj": 8, "barrier_every": 2, "path": "/pfs/out"}
        mpirun(tb.cluster, tb.vfs, mpi_io_test, nprocs=2, args=args, setup=setup)
        barrier_count = sum(1 for e in sinks[0] if e.name == "MPI_Barrier")
        # 2 app barriers + 8/2 = 4 periodic ones
        assert barrier_count == 6

    def test_barriers_false_runs_independently(self):
        args = {"pattern": AccessPattern.N_TO_N, "block_size": 1024, "nobj": 1,
                "path": "/pfs/out", "barriers": False}
        _, job = run(mpi_io_test, args, nprocs=2)
        assert all(r.bytes_written == 1024 for r in job.results)


class TestGenerators:
    def test_io_intensive_full_cycle(self):
        tb, job = run(
            io_intensive,
            {"base": "/tmp/work", "n_files": 3, "file_size": 64 * KiB, "block_size": 16 * KiB},
            nprocs=1,
        )
        r = job.results[0]
        assert r["bytes_written"] == 3 * 64 * KiB
        assert r["bytes_read"] == 3 * 64 * KiB
        # files were deleted afterwards
        assert tb.scratch.ns.readdir("work") == []

    def test_io_intensive_keep(self):
        tb, job = run(
            io_intensive,
            {"base": "/tmp/keepme", "n_files": 2, "file_size": 16 * KiB,
             "block_size": 16 * KiB, "keep": True},
            nprocs=1,
        )
        assert len(tb.scratch.ns.readdir("keepme")) == 2

    def test_checkpoint_writes_phase_files(self):
        tb, job = run(
            checkpoint,
            {"path": "/pfs/ckpt", "phases": 2, "compute_time": 0.01,
             "block_size": 32 * KiB, "blocks_per_phase": 2},
            nprocs=2,
        )
        for r in job.results:
            assert r["bytes_written"] == 2 * 2 * 32 * KiB
        for phase in range(2):
            assert tb.pfs.ns.lookup("ckpt.%d" % phase).size == 2 * 2 * 32 * KiB

    def test_metadata_heavy_leaves_nothing(self):
        tb, job = run(metadata_heavy, {"base": "/tmp/md", "n_files": 5}, nprocs=2)
        assert tb.scratch.ns.readdir("md") == []

    def test_mmap_mix_reports_split(self):
        tb, job = run(
            mmap_mix,
            {"path": "/tmp/mapped", "block_size": 16 * KiB, "n_mmap_writes": 3},
            nprocs=1,
        )
        r = job.results[0]
        assert r["visible_bytes"] == 16 * KiB
        assert r["mmap_bytes"] == 3 * 16 * KiB
        assert tb.scratch.ns.lookup("mapped.0").size == 4 * 16 * KiB


class TestHaloExchange:
    def test_ring_pattern_and_checkpoint(self):
        from repro.workloads.generators import halo_exchange

        tb, job = run(
            halo_exchange,
            {"path": "/pfs/halo", "iterations": 2, "halo_bytes": 8 * KiB,
             "block_size": 32 * KiB},
            nprocs=4,
        )
        for r in job.results:
            assert r["bytes_sent"] == 2 * 2 * 8 * KiB
            assert r["bytes_written"] == 32 * KiB
        assert tb.pfs.ns.lookup("halo").size == 4 * 32 * KiB
