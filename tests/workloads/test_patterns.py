"""Access-pattern arithmetic property tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.patterns import (
    AccessPattern,
    block_offset,
    file_path_for_rank,
    plan_io,
    total_file_bytes,
)


class TestBasics:
    def test_pattern_flags(self):
        assert AccessPattern.N_TO_1_STRIDED.shared_file
        assert AccessPattern.N_TO_1_STRIDED.strided
        assert AccessPattern.N_TO_1_NONSTRIDED.shared_file
        assert not AccessPattern.N_TO_1_NONSTRIDED.strided
        assert not AccessPattern.N_TO_N.shared_file

    def test_file_paths(self):
        assert file_path_for_rank(AccessPattern.N_TO_N, "/pfs/out", 3) == "/pfs/out.3"
        assert (
            file_path_for_rank(AccessPattern.N_TO_1_STRIDED, "/pfs/out", 3)
            == "/pfs/out"
        )

    def test_bad_rank_and_block(self):
        with pytest.raises(ValueError):
            block_offset(AccessPattern.N_TO_N, 5, 4, 0, 1024, 2)
        with pytest.raises(ValueError):
            block_offset(AccessPattern.N_TO_N, 0, 4, 3, 1024, 2)

    def test_strided_interleaves(self):
        # paper Figure 1 command: -strided 1 -size 32768 -nobj 1
        # rank r block j at (j*size + r) * B
        assert block_offset(AccessPattern.N_TO_1_STRIDED, 0, 4, 0, 100, 2) == 0
        assert block_offset(AccessPattern.N_TO_1_STRIDED, 1, 4, 0, 100, 2) == 100
        assert block_offset(AccessPattern.N_TO_1_STRIDED, 0, 4, 1, 100, 2) == 400

    def test_nonstrided_contiguous_regions(self):
        assert block_offset(AccessPattern.N_TO_1_NONSTRIDED, 0, 4, 0, 100, 2) == 0
        assert block_offset(AccessPattern.N_TO_1_NONSTRIDED, 0, 4, 1, 100, 2) == 100
        assert block_offset(AccessPattern.N_TO_1_NONSTRIDED, 1, 4, 0, 100, 2) == 200


@given(
    pattern=st.sampled_from(
        [AccessPattern.N_TO_1_STRIDED, AccessPattern.N_TO_1_NONSTRIDED]
    ),
    size=st.integers(1, 16),
    nobj=st.integers(1, 16),
    block_size=st.sampled_from([512, 4096, 65536]),
)
@settings(max_examples=60, deadline=None)
def test_shared_file_tiled_exactly_once(pattern, size, nobj, block_size):
    """The paper's N-1 patterns write a constant-size file: the union of
    all ranks' blocks must cover it exactly — no overlap, no hole."""
    covered = set()
    for rank in range(size):
        for path, offset, nbytes in plan_io(pattern, rank, size, block_size, nobj, "/f"):
            assert nbytes == block_size
            assert offset % block_size == 0
            block_index = offset // block_size
            assert block_index not in covered, "overlap at block %d" % block_index
            covered.add(block_index)
    assert covered == set(range(size * nobj))
    assert total_file_bytes(pattern, size, block_size, nobj) == size * nobj * block_size


@given(
    size=st.integers(1, 8),
    nobj=st.integers(1, 8),
    block_size=st.sampled_from([512, 65536]),
)
@settings(max_examples=30, deadline=None)
def test_n_to_n_private_contiguous(size, nobj, block_size):
    for rank in range(size):
        plans = list(
            plan_io(AccessPattern.N_TO_N, rank, size, block_size, nobj, "/f")
        )
        assert all(p[0] == "/f.%d" % rank for p in plans)
        offsets = [p[1] for p in plans]
        assert offsets == [i * block_size for i in range(nobj)]
    assert total_file_bytes(AccessPattern.N_TO_N, size, block_size, nobj) == nobj * block_size


@given(size=st.integers(2, 16), nobj=st.integers(2, 16))
@settings(max_examples=30, deadline=None)
def test_strided_blocks_of_one_rank_are_not_adjacent(size, nobj):
    offsets = [
        block_offset(AccessPattern.N_TO_1_STRIDED, 0, size, j, 1, nobj)
        for j in range(nobj)
    ]
    gaps = {b - a for a, b in zip(offsets, offsets[1:])}
    assert gaps == {size}  # always jumps a full round of ranks
