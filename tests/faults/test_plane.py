"""FaultPlane execution: installation, windows, injections, determinism."""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.errors import DeadlockError, FaultError
from repro.faults import (
    DiskErrorStorm,
    DiskSlowdown,
    FaultPlane,
    FaultSchedule,
    LinkDegradation,
    NetworkPartition,
    NodeCrash,
    install_fault_plane,
)
from repro.simfs.faults import InjectedIOError
from repro.simfs.localfs import LocalFS
from repro.simfs.vfs import O_CREAT, O_WRONLY, VFS


def make_cluster(n=3, seed=0):
    return Cluster(
        ClusterConfig(
            n_nodes=n, seed=seed, clock_skew_stddev=0, clock_drift_stddev=0
        )
    )


class TestInstall:
    def test_install_hangs_plane_off_the_simulator(self):
        cluster = make_cluster()
        plane = install_fault_plane(FaultSchedule(), cluster)
        assert cluster.sim.fault_plane is plane

    def test_double_install_rejected(self):
        cluster = make_cluster()
        plane = FaultPlane(FaultSchedule())
        plane.install(cluster)
        with pytest.raises(FaultError, match="already installed"):
            plane.install(cluster)

    def test_crash_target_must_exist(self):
        cluster = make_cluster(n=2)
        sched = FaultSchedule.of(NodeCrash(at=0.1, node=5))
        with pytest.raises(FaultError, match="cluster has 2 node"):
            install_fault_plane(sched, cluster)


class TestNodeCrashWindow:
    def test_down_window_and_restart(self):
        cluster = make_cluster()
        sched = FaultSchedule.of(NodeCrash(at=1.0, node=0, restart_after=2.0))
        plane = install_fault_plane(sched, cluster)
        sim = cluster.sim
        samples = {}

        def probe():
            for t in (0.5, 1.5, 3.5):
                yield sim.timeout(t - sim.now)
                samples[t] = (plane.node_down(0), cluster.node(0).up)

        sim.run_process(probe())
        assert samples[0.5] == (False, True)
        assert samples[1.5] == (True, False)
        assert samples[3.5] == (False, True)  # restarted
        kinds = [kind for (_t, kind, _d) in plane.fault_log]
        assert kinds == ["node_crash", "node_restart"]
        assert plane.counters["node.crashes"] == 1


class TestNetworkFaults:
    def _transfer_duration(self, cluster, node, start_at, nbytes=1024):
        sim = cluster.sim

        def body():
            yield sim.timeout(start_at)
            t0 = sim.now
            yield from cluster.network.transfer(cluster.node(node).nic, nbytes)
            return sim.now - t0

        return sim.run_process(body())

    def test_partition_stalls_until_heal(self):
        cluster = make_cluster()
        sched = FaultSchedule.of(
            NetworkPartition(at=1.0, nodes=(0,), heal_after=1.0)
        )
        plane = install_fault_plane(sched, cluster)
        dur = self._transfer_duration(cluster, node=0, start_at=1.2)
        assert dur >= 0.8  # parked until the heal at t=2.0
        assert plane.counters["net.partition_stalls"] == 1

    def test_other_nodes_unaffected_by_partition(self):
        cluster = make_cluster()
        sched = FaultSchedule.of(
            NetworkPartition(at=1.0, nodes=(0,), heal_after=1.0)
        )
        plane = install_fault_plane(sched, cluster)
        dur = self._transfer_duration(cluster, node=1, start_at=1.2)
        assert dur < 0.5
        assert "net.partition_stalls" not in plane.counters

    def test_unhealed_partition_is_a_named_deadlock(self):
        cluster = make_cluster()
        sched = FaultSchedule.of(NetworkPartition(at=1.0, nodes=(0,)))
        install_fault_plane(sched, cluster)
        sim = cluster.sim

        def body():
            yield sim.timeout(1.2)
            yield from cluster.network.transfer(cluster.node(0).nic, 1024)

        sim.spawn(body(), name="sender")
        with pytest.raises(DeadlockError) as err:
            sim.run_fast()
        assert "partition:node0" in str(err.value)

    def test_link_drops_cost_backoff_retransmits(self):
        cluster = make_cluster()
        sched = FaultSchedule.of(
            LinkDegradation(
                at=0.0, duration=10.0, node=0,
                extra_latency=1e-3, drop_rate=1.0,
                retransmit_timeout=2e-3, max_retransmits=2,
            )
        )
        plane = install_fault_plane(sched, cluster)
        dur = self._transfer_duration(cluster, node=0, start_at=0.5)
        # 1ms latency spike + 2ms and 4ms retransmit timeouts, at least.
        assert dur >= 1e-3 + 2e-3 + 4e-3
        assert plane.counters["net.drops"] == 2
        assert plane.counters["net.latency_spikes"] == 1

    def test_drop_sequence_deterministic_per_seed(self):
        def run(seed):
            cluster = make_cluster(seed=seed)
            sched = FaultSchedule.of(
                LinkDegradation(at=0.0, duration=10.0, node=0, drop_rate=0.5)
            )
            plane = install_fault_plane(sched, cluster)
            for start in (0.1, 0.2, 0.3, 0.4):
                self._transfer_duration(cluster, node=0, start_at=0.0)
            return plane.counters.get("net.drops", 0)

        assert run(5) == run(5)


class TestDiskFaults:
    def _pfs_testbed(self, schedule, seed=0):
        from repro.simos.process import SimProcess

        cluster = make_cluster(seed=seed)
        sim = cluster.sim
        vfs = VFS(sim)
        vfs.mount("/", LocalFS(sim))
        vfs.mount("/pfs", LocalFS(sim))
        plane = install_fault_plane(schedule, cluster, vfs)
        proc = SimProcess(sim, cluster.node(0), vfs, pid=1)
        return sim, plane, proc

    def test_slowdown_applies_only_inside_window(self):
        sched = FaultSchedule.of(
            DiskSlowdown(at=0.0, duration=1.0, extra_latency=0.5, mount="/pfs")
        )
        sim, plane, proc = self._pfs_testbed(sched)

        def body():
            fd = yield from proc.open("/pfs/f", O_WRONLY | O_CREAT)
            t0 = sim.now
            yield from proc.write(fd, 10)
            inside = sim.now - t0
            yield sim.timeout(2.0 - sim.now)  # past the window
            t0 = sim.now
            yield from proc.write(fd, 10)
            return inside, sim.now - t0

        inside, outside = sim.run_process(body())
        assert inside >= 0.5
        assert outside < 0.5
        assert plane.counters["disk.delays"] >= 2  # open + first write
        assert plane.counters["disk.slowdowns"] == 1

    def test_storm_injects_eio_deterministically(self):
        def run(seed):
            sched = FaultSchedule.of(
                DiskErrorStorm(at=0.0, duration=10.0, error_rate=0.5,
                               mount="/pfs", ops=frozenset({"write"}))
            )
            sim, plane, proc = self._pfs_testbed(sched, seed=seed)
            hits = []

            def body():
                fd = yield from proc.open("/pfs/f", O_WRONLY | O_CREAT)
                for _ in range(20):
                    try:
                        yield from proc.write(fd, 10)
                        hits.append(False)
                    except InjectedIOError:
                        hits.append(True)

            sim.run_process(body())
            assert plane.counters["disk.errors"] == sum(hits)
            return hits

        assert run(3) == run(3)
        assert any(run(3)) and not all(run(3))

    def test_non_mount_point_target_rejected(self):
        cluster = make_cluster()
        vfs = VFS(cluster.sim)
        vfs.mount("/", LocalFS(cluster.sim))
        sched = FaultSchedule.of(
            DiskSlowdown(at=0.0, duration=1.0, extra_latency=1e-3,
                         mount="/not-a-mount")
        )
        with pytest.raises(FaultError, match="not a mount point"):
            install_fault_plane(sched, cluster, vfs)


class TestSnapshot:
    def test_snapshot_is_json_ready_and_ordered(self):
        from repro.obs.metrics import canonical_json

        cluster = make_cluster()
        sched = FaultSchedule.of(
            NodeCrash(at=1.0, node=0, restart_after=1.0),
            NetworkPartition(at=0.5, nodes=(1,), heal_after=0.2),
        )
        plane = install_fault_plane(sched, cluster)
        sim = cluster.sim

        def body():
            yield sim.timeout(5.0)

        sim.run_process(body())
        snap = plane.snapshot()
        assert set(snap) == {"schedule", "counters", "log"}
        times = [entry["t"] for entry in snap["log"]]
        assert times == sorted(times)
        assert [e["kind"] for e in snap["log"]] == [
            "partition", "heal", "node_crash", "node_restart"
        ]
        canonical_json(snap)  # must serialize without a custom encoder
