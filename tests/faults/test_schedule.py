"""FaultSchedule: validation, canonicalization, windows, horizon checks."""

import pytest

from repro.errors import FaultError
from repro.faults import (
    FOREVER,
    DiskErrorStorm,
    DiskSlowdown,
    FaultSchedule,
    LinkDegradation,
    NetworkPartition,
    NodeCrash,
)


class TestEventValidation:
    def test_negative_time_rejected(self):
        with pytest.raises(FaultError):
            NodeCrash(at=-0.1, node=0)

    def test_non_positive_windows_rejected(self):
        with pytest.raises(FaultError):
            NodeCrash(at=0.0, node=0, restart_after=0.0)
        with pytest.raises(FaultError):
            DiskSlowdown(at=0.0, duration=-1.0, extra_latency=1e-3)

    def test_negative_node_rejected(self):
        with pytest.raises(FaultError):
            NodeCrash(at=0.0, node=-1)
        with pytest.raises(FaultError):
            LinkDegradation(at=0.0, duration=1.0, node=-2)

    def test_empty_partition_rejected(self):
        with pytest.raises(FaultError):
            NetworkPartition(at=0.0, nodes=())

    def test_partition_nodes_sorted_and_deduped(self):
        ev = NetworkPartition(at=0.0, nodes=(3, 1, 3, 2))
        assert ev.nodes == (1, 2, 3)

    def test_rate_bounds(self):
        with pytest.raises(FaultError):
            LinkDegradation(at=0.0, duration=1.0, node=0, drop_rate=1.5)
        with pytest.raises(FaultError):
            DiskErrorStorm(at=0.0, duration=1.0, error_rate=0.0)
        with pytest.raises(FaultError):
            DiskErrorStorm(at=0.0, duration=1.0, error_rate=1.1)

    def test_unknown_event_type_rejected(self):
        with pytest.raises(FaultError, match="unknown fault event"):
            FaultSchedule.of("not-a-fault")


class TestWindows:
    def test_unrecovered_events_last_forever(self):
        assert NodeCrash(at=1.0, node=0).window == (1.0, FOREVER)
        assert NetworkPartition(at=2.0, nodes=(0,)).window == (2.0, FOREVER)

    def test_recovered_events_close_their_window(self):
        assert NodeCrash(at=1.0, node=0, restart_after=2.0).window == (1.0, 3.0)
        assert NetworkPartition(at=1.0, nodes=(0,), heal_after=0.5).window == (1.0, 1.5)
        assert DiskSlowdown(at=2.0, duration=3.0, extra_latency=1e-3).window == (2.0, 5.0)


class TestCanonicalization:
    def test_listing_order_is_irrelevant(self):
        a = NodeCrash(at=0.5, node=1)
        b = DiskSlowdown(at=0.2, duration=1.0, extra_latency=1e-3)
        assert FaultSchedule.of(a, b) == FaultSchedule.of(b, a)
        assert hash(FaultSchedule.of(a, b)) == hash(FaultSchedule.of(b, a))

    def test_events_sorted_by_time(self):
        sched = FaultSchedule.of(
            NodeCrash(at=0.5, node=1),
            DiskSlowdown(at=0.2, duration=1.0, extra_latency=1e-3),
        )
        assert [e.at for e in sched.events] == [0.2, 0.5]

    def test_select_and_is_empty(self):
        assert FaultSchedule().is_empty
        sched = FaultSchedule.of(
            NodeCrash(at=0.1, node=0),
            NodeCrash(at=0.3, node=1),
            DiskSlowdown(at=0.2, duration=1.0, extra_latency=1e-3),
        )
        crashes = sched.select(NodeCrash)
        assert [e.node for e in crashes] == [0, 1]
        assert len(sched.select(NodeCrash, DiskSlowdown)) == 3
        assert sched.select(NetworkPartition) == ()

    def test_node_down_windows(self):
        sched = FaultSchedule.of(
            NodeCrash(at=0.1, node=0, restart_after=0.2),
            NodeCrash(at=1.0, node=0),
            NodeCrash(at=0.5, node=2, restart_after=0.1),
        )
        windows = sched.node_down_windows()
        assert windows[0] == [(0.1, pytest.approx(0.3)), (1.0, FOREVER)]
        assert windows[2] == [(0.5, pytest.approx(0.6))]
        assert 1 not in windows

    def test_describe(self):
        assert FaultSchedule().describe() == "no faults"
        sched = FaultSchedule.of(NodeCrash(at=0.1, node=0))
        assert sched.describe() == "1 event(s): NodeCrash@0.1"


class TestHorizonValidation:
    def test_none_horizon_always_passes(self):
        FaultSchedule.of(NodeCrash(at=1e9, node=0)).validate_horizon(None)

    def test_in_horizon_passes(self):
        FaultSchedule.of(NodeCrash(at=0.5, node=0)).validate_horizon(1.0)

    def test_late_event_named_in_error(self):
        sched = FaultSchedule.of(
            NodeCrash(at=0.5, node=0), NodeCrash(at=2.0, node=1)
        )
        with pytest.raises(FaultError, match="never fire"):
            sched.validate_horizon(1.0)
        with pytest.raises(FaultError, match="never fire"):
            # at == horizon is also unreachable (the run ends at `horizon`)
            sched.validate_horizon(2.0)
