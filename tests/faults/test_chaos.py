"""Chaos harness: outcome classification, retries, matrix report, CLI."""

import json

import pytest

from repro.errors import FaultError
from repro.faults import (
    CHAOS_FRAMEWORKS,
    CHAOS_MATRICES,
    DiskErrorStorm,
    FaultSchedule,
    NodeCrash,
    build_chaos_specs,
    render_chaos_report,
    run_chaos_matrix,
    run_under_faults,
)
from repro.faults.chaos import _attempt_with_retries
from repro.harness.figures import paper_testbed
from repro.harness.parallel import execute_spec
from repro.units import KiB
from repro.workloads import mpi_io_test

QUICK_ARGS = {"path": "/pfs/x.out", "block_size": 64 * KiB, "nobj": 4}


def _run(schedule, horizon=30.0, **kw):
    params = dict(
        config=paper_testbed(seed=0, nprocs=2), nprocs=2, seed=0,
        horizon=horizon,
    )
    params.update(kw)
    return run_under_faults(
        schedule, None, mpi_io_test, dict(QUICK_ARGS), **params
    )


class TestClassification:
    def test_no_faults_completes(self):
        outcome = _run(FaultSchedule())
        assert outcome.status == "completed"
        assert outcome.error is None
        assert outcome.stats.elapsed > 0
        assert outcome.killed_ranks == []
        assert outcome.faults["counters"] == {}

    def test_node_crash_classified_with_killed_ranks(self):
        outcome = _run(FaultSchedule.of(NodeCrash(at=0.05, node=1)))
        assert outcome.status == "node-crash"
        assert "crashed at t=0.05" in outcome.error
        assert outcome.killed_ranks == [1]
        assert outcome.faults["counters"]["node.crashes"] == 1

    def test_eio_storm_classified_as_io_error(self):
        sched = FaultSchedule.of(
            DiskErrorStorm(at=0.0, duration=10.0, error_rate=1.0, mount="/pfs")
        )
        outcome = _run(sched)
        assert outcome.status == "io-error"
        assert "InjectedIOError" in outcome.error

    def test_too_small_horizon_times_out(self):
        outcome = _run(FaultSchedule(), horizon=0.001)
        assert outcome.status == "timeout"
        assert outcome.pending_ranks  # someone was still running
        assert "0.001" in outcome.error

    def test_late_event_rejected_against_horizon(self):
        with pytest.raises(FaultError, match="never fire"):
            _run(FaultSchedule.of(NodeCrash(at=50.0, node=0)), horizon=1.0)


class TestRetryPolicy:
    def test_timeout_retries_with_doubled_horizon(self):
        outcome, attempts = _attempt_with_retries(
            FaultSchedule(), None, mpi_io_test, dict(QUICK_ARGS),
            paper_testbed(seed=0, nprocs=2), 2, 0,
            horizon=0.02, retries=5,
        )
        assert outcome.status == "completed"
        assert attempts > 1  # 0.02s is not enough; a doubled budget was

    def test_deterministic_failures_do_not_retry(self):
        outcome, attempts = _attempt_with_retries(
            FaultSchedule.of(NodeCrash(at=0.05, node=1)),
            None, mpi_io_test, dict(QUICK_ARGS),
            paper_testbed(seed=0, nprocs=2), 2, 0,
            horizon=30.0, retries=5,
        )
        assert outcome.status == "node-crash"
        assert attempts == 1

    def test_retry_budget_exhausts_to_timeout(self):
        outcome, attempts = _attempt_with_retries(
            FaultSchedule(), None, mpi_io_test, dict(QUICK_ARGS),
            paper_testbed(seed=0, nprocs=2), 2, 0,
            horizon=1e-5, retries=1,
        )
        assert outcome.status == "timeout"
        assert attempts == 2


class TestExecuteFaultSpec:
    def test_spec_with_faults_routes_to_chaos_and_annotates(self):
        specs = build_chaos_specs("smoke", frameworks=("lanl-trace",))
        by_name = {s.faults.name: s for s in specs}
        point = execute_spec(by_name["node-crash"])
        assert point.error is not None
        assert point.error.startswith("untraced: node-crash")
        assert point.chaos["scenario"] == "node-crash"
        assert point.chaos["untraced"]["killed_ranks"] == [1]
        # The traced leg still ran: the partial capture is the artifact.
        assert point.chaos["traced"]["status"] == "node-crash"
        assert point.chaos["traced"]["bundle_metadata"] is not None

    def test_baseline_spec_completes_without_error(self):
        specs = build_chaos_specs("smoke", frameworks=("ptrace",))
        point = execute_spec(specs[0])
        assert point.error is None
        assert point.chaos["scenario"] == "baseline"
        assert point.chaos["untraced"]["status"] == "completed"
        assert point.attempts == 1


class TestMatrix:
    def test_unknown_matrix_named_in_error(self):
        with pytest.raises(FaultError, match="unknown chaos matrix"):
            build_chaos_specs("no-such-matrix")

    def test_specs_cross_frameworks_with_scenarios(self):
        specs = build_chaos_specs("smoke")
        assert len(specs) == len(CHAOS_FRAMEWORKS) * len(CHAOS_MATRICES["smoke"])
        # Framework-major order, scenarios in declaration order inside.
        assert specs[0].framework.name == CHAOS_FRAMEWORKS[0]
        names = [s.faults.name or "baseline" for s in specs]
        per_fw = [sc.schedule.name or "baseline" for sc in CHAOS_MATRICES["smoke"]]
        assert names == per_fw * len(CHAOS_FRAMEWORKS)

    def test_smoke_matrix_report_for_one_framework(self):
        report = run_chaos_matrix("smoke", frameworks=("ptrace",))
        assert report["schema"] == "repro/chaos/v1"
        rows = report["rows"]
        assert [r["scenario"] for r in rows] == [
            "baseline", "node-crash", "partition", "disk-storm", "eio-storm"
        ]
        by_scenario = {r["scenario"]: r for r in rows}
        assert by_scenario["baseline"]["survived"]
        assert by_scenario["baseline"]["overhead_delta"] == 0.0
        assert by_scenario["partition"]["survived"]
        assert by_scenario["partition"]["fault_counters"]["net.partitions"] == 1
        assert not by_scenario["node-crash"]["survived"]
        assert "node-crash" in by_scenario["node-crash"]["error"]
        summary = report["summary"]
        assert summary["points"] == 5
        assert summary["survived"] + summary["failed_annotated"] == 5
        # Render covers both completed and FAILED rows.
        text = render_chaos_report(report)
        assert "Chaos matrix 'smoke'" in text
        assert "FAILED:" in text
        assert text.count("\n") >= 8


class TestChaosCLI:
    def test_chaos_command_writes_report(self, capsys, tmp_path):
        from repro.cli import main

        out = tmp_path / "chaos.json"
        rc = main([
            "chaos", "--matrix", "smoke", "--frameworks", "ptrace",
            "--no-cache", "--report-out", str(out),
        ])
        assert rc == 0
        printed = capsys.readouterr().out
        assert "Chaos matrix 'smoke'" in printed
        report = json.loads(out.read_text())
        assert report["schema"] == "repro/chaos/v1"
        assert report["frameworks"] == ["ptrace"]

    def test_chaos_store_archives_per_scenario_bundles(self, capsys, tmp_path):
        from repro.cli import main
        from repro.store import TraceBank

        store = tmp_path / "chaos-bank"
        rc = main([
            "chaos", "--matrix", "smoke", "--frameworks", "ptrace",
            "--no-cache", "--store", str(store),
            "--report-out", str(tmp_path / "chaos.json"),
        ])
        assert rc == 0
        assert "archived 5 run(s) into the trace store" in capsys.readouterr().out
        bank = TraceBank(store, create=False)
        manifests = bank.manifests()
        assert len(manifests) == 5  # every scenario, crashed ones included
        by_scenario = {str(m.meta.get("scenario")): m for m in manifests}
        assert sorted(by_scenario) == [
            "baseline", "disk-storm", "eio-storm", "node-crash", "partition"
        ]
        assert all(str(m.meta.get("kind")) == "chaos" for m in manifests)
        # The crashed scenario still archives its partial capture.
        assert by_scenario["node-crash"].n_events > 0
        assert by_scenario["node-crash"].n_events < by_scenario["baseline"].n_events
        assert bank.verify()["ok"]
