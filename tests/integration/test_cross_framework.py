"""Cross-framework integration: the survey's comparisons, executed.

These tests run multiple frameworks on identical workloads/machines and
verify the paper's comparative claims hold *simultaneously*, plus the
future-work aggregation story (one run traced by several frameworks at
once, merged onto one timeline).
"""

import pytest

from repro.analysis.summary import summarize_calls
from repro.frameworks.lanltrace import LANLTrace, LANLTraceConfig
from repro.frameworks.netmsg import MsgTrace
from repro.frameworks.ptrace import PTrace
from repro.frameworks.tracefs import Tracefs, TracefsConfig
from repro.harness.experiment import measure_overhead, run_traced
from repro.harness.figures import paper_testbed
from repro.harness.testbed import build_testbed
from repro.simmpi import mpirun
from repro.trace.events import EventLayer
from repro.trace.merge import merge_bundles
from repro.units import KiB
from repro.workloads import AccessPattern, mpi_io_test
from repro.workloads.generators import io_intensive, mmap_mix

NP = 4
PFS_ARGS = {
    "pattern": AccessPattern.N_TO_1_NONSTRIDED,
    "block_size": 128 * KiB,
    "nobj": 16,
    "path": "/pfs/out",
}


class TestOverheadOrdering:
    def test_mechanism_cost_hierarchy(self):
        """ptrace stops >> in-kernel hooks > preload wrappers — the
        survey's central quantitative finding, on one workload."""
        tmp_args = {"base": "/tmp/w", "n_files": 8, "file_size": 128 * KiB,
                    "block_size": 16 * KiB}
        lanl = measure_overhead(
            lambda: LANLTrace(LANLTraceConfig()), io_intensive, tmp_args, nprocs=1
        )
        tracefs = measure_overhead(
            lambda: Tracefs(TracefsConfig(target_mount="/tmp")),
            io_intensive, tmp_args, nprocs=1,
        )
        ptrace = measure_overhead(PTrace, io_intensive, tmp_args, nprocs=1)
        assert ptrace.elapsed_overhead < tracefs.elapsed_overhead
        assert tracefs.elapsed_overhead < lanl.elapsed_overhead
        assert lanl.elapsed_overhead > 5 * tracefs.elapsed_overhead


class TestMmapBlindSpotAcrossFrameworks:
    """§4.1.1/§4.2/§4.3: the same workload's mmap I/O is invisible to
    ptrace-class tracers but visible to VFS-level tracing."""

    ARGS = {"path": "/tmp/mapped", "block_size": 32 * KiB, "n_mmap_writes": 6}

    def _write_events(self, bundle, names):
        return [e for e in bundle.all_events() if e.name in names]

    def test_lanl_trace_misses_mmap(self):
        _, traced = run_traced(
            lambda: LANLTrace(LANLTraceConfig()), mmap_mix, self.ARGS, nprocs=1
        )
        writes = self._write_events(traced.bundle, {"SYS_write"})
        assert len(writes) == 1  # only the explicit write

    def test_ptrace_misses_mmap(self):
        _, traced = run_traced(PTrace, mmap_mix, self.ARGS, nprocs=1)
        writes = self._write_events(traced.bundle, {"SYS_write"})
        assert len(writes) == 1

    def test_tracefs_sees_mmap(self):
        _, traced = run_traced(
            lambda: Tracefs(TracefsConfig(target_mount="/tmp")),
            mmap_mix, self.ARGS, nprocs=1,
        )
        writes = self._write_events(traced.bundle, {"vfs_write"})
        assert len(writes) == 1 + 6


class TestSimultaneousTracing:
    """The §6 aggregation story: several frameworks on ONE run, merged."""

    def test_three_frameworks_one_run(self):
        tb = build_testbed(paper_testbed(nprocs=NP))
        lanl = LANLTrace(LANLTraceConfig())
        ptrace = PTrace()
        msgtrace = MsgTrace()

        def setup(rank, proc, mpirank):
            lanl.setup_rank(rank, proc, mpirank)
            ptrace.setup_rank(rank, proc, mpirank)
            msgtrace.setup_rank(rank, proc, mpirank)

        app = lanl.wrap_app(mpi_io_test)
        job = mpirun(tb.cluster, tb.vfs, app, nprocs=NP, args=PFS_ARGS, setup=setup)

        merged = merge_bundles(
            [
                ("lanl", lanl.finalize(job)),
                ("ptrace", ptrace.finalize(job)),
                ("msg", msgtrace.finalize(job)),
            ]
        )
        assert merged.n_sources == 3 * NP
        layers = {e.layer for e in merged.all_events()}
        assert {EventLayer.SYSCALL, EventLayer.LIBCALL, EventLayer.NET} <= layers

        # all three frameworks saw the same writes (each at its own layer)
        summary = summarize_calls(merged)
        per_rank_writes = 16
        # lanl syscall + ptrace syscall views both record SYS_write
        assert summary["SYS_write"].n_calls == 2 * NP * per_rank_writes
        # msgtrace's NET view recorded the collectives
        net_events = [e for e in merged.all_events() if e.layer is EventLayer.NET]
        assert any(e.name == "MPI_Barrier" for e in net_events)
        assert "MPI_Barrier" in summary

    def test_merged_bundle_supports_skew_correction(self):
        from repro.analysis.skew import estimate_clocks

        tb = build_testbed(paper_testbed(nprocs=NP))
        lanl = LANLTrace(LANLTraceConfig())
        msg = MsgTrace()

        def setup(rank, proc, mpirank):
            lanl.setup_rank(rank, proc, mpirank)
            msg.setup_rank(rank, proc, mpirank)

        job = mpirun(
            tb.cluster, tb.vfs, lanl.wrap_app(mpi_io_test),
            nprocs=NP, args=PFS_ARGS, setup=setup,
        )
        merged = merge_bundles(
            [("lanl", lanl.finalize(job)), ("msg", msg.finalize(job))]
        )
        estimates = estimate_clocks(merged.barrier_stamps)
        assert set(estimates) == set(range(NP))


class TestTracefsReplayability:
    """Tracefs's own future work (§4.2), realized: VFS traces replay."""

    def test_vfs_trace_builds_and_replays(self):
        from repro.replay import build_pseudoapp, replay

        args = {"base": "/tmp/rw", "n_files": 4, "file_size": 64 * KiB,
                "block_size": 16 * KiB, "keep": True}
        _, traced = run_traced(
            lambda: Tracefs(TracefsConfig(target_mount="/tmp")),
            io_intensive, args, nprocs=1,
        )
        app = build_pseudoapp(traced.bundle, layer=EventLayer.VFS)
        script = app.scripts[0]
        kinds = {op.kind for op in script.ops}
        assert {"open", "write", "read"} <= kinds
        assert script.io_bytes == 2 * 4 * 64 * KiB  # writes + read-backs

        result = replay(app)
        assert result.bytes_replayed == script.io_bytes
