"""Run cache: key stability, round-trips, and hit verification."""

import json

import pytest

import repro
from repro.harness.parallel import build_sweep_specs, execute_spec, run_sweep
from repro.harness.runcache import RunCache, spec_key
from repro.units import KiB, MiB
from repro.workloads import AccessPattern


def _spec(seed=0, block=64 * KiB):
    return build_sweep_specs(
        "lanl-trace",
        "mpi_io_test",
        {"pattern": AccessPattern.N_TO_N, "path": "/pfs/out"},
        [block],
        512 * KiB,
        nprocs=2,
        seed=seed,
    )[0]


class TestKeys:
    def test_key_is_stable_across_calls(self):
        assert spec_key(_spec()) == spec_key(_spec())

    def test_key_varies_with_every_input(self):
        base = spec_key(_spec())
        assert spec_key(_spec(seed=1)) != base
        assert spec_key(_spec(block=256 * KiB)) != base

    def test_key_includes_package_version(self, monkeypatch):
        base = spec_key(_spec())
        monkeypatch.setattr(repro, "__version__", "0.0.0-drifted")
        assert spec_key(_spec()) != base


class TestRoundTrip:
    def test_miss_then_hit(self, tmp_path):
        cache = RunCache(tmp_path)
        spec = _spec()
        assert cache.get(spec) is None
        assert cache.misses == 1
        point = execute_spec(spec)
        cache.put(spec, point)
        assert len(cache) == 1
        got = cache.get(spec)
        assert got is not None and cache.hits == 1
        assert got.cached
        assert got.untraced == point.untraced
        assert got.traced == point.traced
        # params round-trip, including the AccessPattern enum
        assert got.params_dict()["pattern"] is AccessPattern.N_TO_N
        assert got.params_dict() == point.params_dict()

    def test_overheads_survive_the_round_trip(self, tmp_path):
        cache = RunCache(tmp_path)
        spec = _spec()
        point = execute_spec(spec)
        cache.put(spec, point)
        got = cache.get(spec)
        assert got.elapsed_overhead == point.elapsed_overhead
        assert got.bandwidth_overhead == point.bandwidth_overhead

    def test_clear(self, tmp_path):
        cache = RunCache(tmp_path)
        spec = _spec()
        cache.put(spec, execute_spec(spec))
        assert cache.clear() == 1
        assert len(cache) == 0
        assert cache.get(spec) is None


class TestHitVerification:
    def _entry_path(self, cache, spec):
        key = spec_key(spec)
        return cache.root / key[:2] / (key + ".json")

    def test_corrupted_payload_is_discarded(self, tmp_path):
        cache = RunCache(tmp_path)
        spec = _spec()
        cache.put(spec, execute_spec(spec))
        path = self._entry_path(cache, spec)
        entry = json.loads(path.read_text())
        entry["payload"]["traced"]["elapsed"] = 0.0  # tampered number
        path.write_text(json.dumps(entry))
        assert cache.get(spec) is None  # checksum mismatch -> miss
        assert not path.exists()  # bad entry evicted

    def test_fingerprint_drift_is_discarded(self, tmp_path):
        cache = RunCache(tmp_path)
        spec = _spec()
        cache.put(spec, execute_spec(spec))
        path = self._entry_path(cache, spec)
        entry = json.loads(path.read_text())
        # A model drift without a version bump: stored fingerprint no longer
        # matches the payload's events_executed.
        entry["fingerprint"]["traced_events"] += 1
        path.write_text(json.dumps(entry))
        assert cache.get(spec) is None

    def test_garbage_file_is_a_miss(self, tmp_path):
        cache = RunCache(tmp_path)
        spec = _spec()
        path = self._entry_path(cache, spec)
        path.parent.mkdir(parents=True)
        path.write_text("not json{")
        assert cache.get(spec) is None


class TestSweepIntegration:
    def test_sweep_report_counts_hits(self, tmp_path):
        cache = RunCache(tmp_path)
        specs = [_spec(), _spec(seed=5)]
        cold = run_sweep(specs, cache=cache)
        assert (cold.report.cache_hits, cold.report.cache_misses) == (0, 2)
        assert cold.report.cache_hit_rate == 0.0
        warm = run_sweep(specs, cache=cache)
        assert (warm.report.cache_hits, warm.report.cache_misses) == (2, 0)
        assert warm.report.cache_hit_rate == 1.0
        assert all(p.cached for p in warm.points)
        for a, b in zip(cold.points, warm.points):
            assert a.untraced == b.untraced and a.traced == b.traced

    def test_archived_hit_against_fresh_store_reexecutes(self, tmp_path):
        # The cache key excludes the store *path* (run ids are
        # content-derived), so a hit can carry a run id ingested into a
        # different archive.  The sweep must not serve a dangling run id:
        # it re-executes so the bundle lands in the new store too.
        from dataclasses import replace

        from repro.store.bank import TraceBank

        cache = RunCache(tmp_path / "cache")
        spec_a = replace(_spec(), store=str(tmp_path / "bank-a"))
        first = run_sweep([spec_a], cache=cache)
        run_id = first.points[0].store_run_id
        assert run_id is not None

        spec_b = replace(spec_a, store=str(tmp_path / "bank-b"))
        second = run_sweep([spec_b], cache=cache)
        assert second.report.cache_hits == 0  # treated as a miss
        assert second.points[0].store_run_id == run_id  # content-derived
        assert TraceBank(tmp_path / "bank-b").manifest(run_id)

        # same store, warm cache: still a hit, no re-execution
        third = run_sweep([spec_b], cache=cache)
        assert third.report.cache_hits == 1
        assert third.points[0].cached
