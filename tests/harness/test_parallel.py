"""Parallel sweep executor: specs, registries, and the determinism contract.

The cache's and executor's correctness contract is that a sweep's output
is byte-identical whether it runs serially, fanned out over worker
processes, or replayed from a warm cache — these tests pin that down on a
small sweep.
"""

import pickle

import pytest

from repro.errors import ReproError
from repro.harness.figures import figure_series, run_figures
from repro.harness.parallel import (
    FRAMEWORK_FACTORIES,
    WORKLOADS,
    FrameworkSpec,
    PointResult,
    RunSpec,
    as_framework_spec,
    build_sweep_specs,
    execute_spec,
    parallel_map,
    run_sweep,
)
from repro.harness.runcache import RunCache, spec_key
from repro.units import KiB, MiB
from repro.workloads import AccessPattern

QUICK = dict(block_sizes=[64 * KiB, 256 * KiB], total_bytes_per_rank=1 * MiB, nprocs=4)


def _quick_specs(seed=0):
    return build_sweep_specs(
        "lanl-trace",
        "mpi_io_test",
        {"pattern": AccessPattern.N_TO_N, "path": "/pfs/out"},
        QUICK["block_sizes"],
        QUICK["total_bytes_per_rank"],
        nprocs=QUICK["nprocs"],
        seed=seed,
    )


class TestSpecs:
    def test_builtin_registries_populated(self):
        assert {"lanl-trace", "tracefs", "ptrace"} <= set(FRAMEWORK_FACTORIES)
        assert "mpi_io_test" in WORKLOADS

    def test_framework_spec_builds_configured_framework(self):
        fw = FrameworkSpec.create("lanl-trace", mode="strace").build()
        assert fw.name == "lanl-trace"
        assert fw.config.mode == "strace"

    def test_spec_is_pickle_safe(self):
        spec = _quick_specs()[0]
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec

    def test_closure_rejected_with_pointed_error(self):
        with pytest.raises(ReproError, match="process boundary"):
            as_framework_spec(lambda: None)

    def test_unknown_factory_name_rejected(self):
        with pytest.raises(ReproError, match="no framework factory"):
            as_framework_spec("no-such-framework")
        with pytest.raises(ReproError, match="no workload"):
            RunSpec.create("lanl-trace", "no-such-workload", {}).workload_fn()

    def test_sweep_specs_hold_bytes_constant(self):
        specs = _quick_specs()
        assert specs[0].args_dict()["nobj"] == 16
        assert specs[1].args_dict()["nobj"] == 4


class TestExecutor:
    def test_execute_spec_returns_plain_numbers(self):
        point = execute_spec(_quick_specs()[0])
        assert isinstance(point, PointResult)
        assert point.traced.elapsed > point.untraced.elapsed > 0
        assert 0 < point.bandwidth_overhead < 1
        assert point.untraced.events_executed > 0
        assert point.traced.events_executed > point.untraced.events_executed
        assert point.wall_seconds > 0
        # the whole result must survive a process boundary
        assert pickle.loads(pickle.dumps(point)) == point

    def test_run_sweep_preserves_spec_order(self):
        specs = _quick_specs()
        points = run_sweep(specs, jobs=1).points
        assert [p.params_dict()["block_size"] for p in points] == QUICK["block_sizes"]

    def test_jobs_must_be_positive(self):
        with pytest.raises(ReproError):
            run_sweep([], jobs=0)


class TestDeterminismContract:
    """Same seed ⇒ identical series for jobs=1, jobs=4, and a warm cache."""

    def test_series_identical_across_jobs_and_cache(self, tmp_path):
        serial = figure_series(4, seed=0, jobs=1, **QUICK)
        pooled = figure_series(4, seed=0, jobs=4, **QUICK)
        assert serial == pooled

        cache = RunCache(tmp_path / "cache")
        cold = figure_series(4, seed=0, jobs=4, cache=cache, **QUICK)
        warm = figure_series(4, seed=0, jobs=1, cache=cache, **QUICK)
        assert cold == serial
        assert warm == serial
        assert cache.hits == len(QUICK["block_sizes"])

    def test_events_fingerprints_identical_across_paths(self, tmp_path):
        specs = _quick_specs(seed=1)
        serial = run_sweep(specs, jobs=1).points
        pooled = run_sweep(specs, jobs=4).points
        cache = RunCache(tmp_path / "cache")
        run_sweep(specs, jobs=2, cache=cache)
        warm = run_sweep(specs, jobs=1, cache=cache).points
        fingerprints = [
            (p.untraced.events_executed, p.traced.events_executed) for p in serial
        ]
        for other in (pooled, warm):
            assert [
                (p.untraced.events_executed, p.traced.events_executed) for p in other
            ] == fingerprints

    def test_run_figures_combined_sweep_matches_per_figure(self):
        sweep = run_figures(figures=(3, 4), seed=0, jobs=2, **QUICK)
        assert sweep.series[3] == figure_series(3, seed=0, **QUICK)
        assert sweep.series[4] == figure_series(4, seed=0, **QUICK)
        assert sweep.report.n_points == 4
        assert len(sweep.bench_points) == 4
        assert all(p["events_executed"] > 0 for p in sweep.bench_points)
        lo, hi = sweep.overhead_range["min"], sweep.overhead_range["max"]
        assert 0 < lo <= hi

    def test_legacy_closure_path_matches_spec_path(self):
        from repro.frameworks.lanltrace import LANLTrace, LANLTraceConfig

        legacy = figure_series(
            4, framework_factory=lambda: LANLTrace(LANLTraceConfig()), **QUICK
        )
        spec = figure_series(4, **QUICK)
        assert legacy == spec


class TestParallelMap:
    def test_preserves_item_order(self):
        items = [-3, -1, -2, -5]
        assert parallel_map(abs, items, jobs=1) == [3, 1, 2, 5]
        assert parallel_map(abs, items, jobs=3) == [3, 1, 2, 5]

    def test_single_item_stays_serial(self):
        assert parallel_map(abs, [-7], jobs=8) == [7]

    def test_empty_and_invalid_jobs(self):
        assert parallel_map(abs, [], jobs=4) == []
        with pytest.raises(ReproError):
            parallel_map(abs, [1], jobs=0)


class TestStoreIntegration:
    """Sweeps with ``store=`` archive every run and stay cache-coherent."""

    def _store_specs(self, store, seed=0):
        return build_sweep_specs(
            "lanl-trace",
            "mpi_io_test",
            {"pattern": AccessPattern.N_TO_N, "path": "/pfs/out"},
            QUICK["block_sizes"],
            QUICK["total_bytes_per_rank"],
            nprocs=QUICK["nprocs"],
            seed=seed,
            store=store,
        )

    def test_sweep_ingests_and_second_sweep_dedups(self, tmp_path):
        from repro.store import TraceBank

        store = str(tmp_path / "bank")
        points = run_sweep(self._store_specs(store), jobs=2).points
        assert all(p.store_run_id for p in points)
        bank = TraceBank(store, create=False)
        assert len(bank.run_ids()) == len(points)
        n_segments = len(bank.disk_segments())

        # Acceptance criterion: re-running the sweep adds zero segments.
        again = run_sweep(self._store_specs(store), jobs=1).points
        assert [p.store_run_id for p in again] == [p.store_run_id for p in points]
        assert len(bank.disk_segments()) == n_segments
        assert len(bank.run_ids()) == len(points)
        assert bank.verify()["ok"]

    def test_store_widens_the_cache_key(self, tmp_path):
        plain = _quick_specs()[0]
        stored = self._store_specs(str(tmp_path / "bank"))[0]
        assert spec_key(plain) != spec_key(stored)
        # ...but the key must not depend on *where* the archive lives.
        moved = self._store_specs(str(tmp_path / "elsewhere"))[0]
        assert spec_key(stored) == spec_key(moved)

    def test_cache_payload_roundtrips_store_run_id(self, tmp_path):
        spec = self._store_specs(str(tmp_path / "bank"))[0]
        cache = RunCache(tmp_path / "cache")
        point = execute_spec(spec)
        assert point.store_run_id
        cache.put(spec, point)
        warm = cache.get(spec)
        assert warm is not None
        assert warm.store_run_id == point.store_run_id
