"""Harness tests: testbed determinism, overhead protocol, reporting."""

import pytest

from repro.core.overhead import elapsed_time_overhead, measure_overhead_report
from repro.frameworks.lanltrace import LANLTrace, LANLTraceConfig
from repro.harness.experiment import (
    OverheadMeasurement,
    RunOutcome,
    measure_overhead,
    run_untraced,
    sweep_block_sizes,
)
from repro.harness.figures import (
    FIGURE_PATTERNS,
    PAPER_BLOCK_SIZES,
    figure_series,
    paper_testbed,
)
from repro.harness.report import render_figure, render_measurements, render_overhead_range
from repro.harness.testbed import TestbedConfig, build_testbed
from repro.units import KiB, MiB
from repro.workloads import AccessPattern, mpi_io_test

SMALL_ARGS = {
    "pattern": AccessPattern.N_TO_N,
    "block_size": 64 * KiB,
    "nobj": 4,
    "path": "/pfs/out",
}


class TestTestbed:
    def test_standard_mounts(self):
        tb = build_testbed()
        assert tb.vfs.resolve("/pfs/x")[0] is tb.pfs
        assert tb.vfs.resolve("/home/x")[0] is tb.nfs
        assert tb.vfs.resolve("/tmp/x")[0] is tb.scratch

    def test_optional_mounts(self):
        tb = build_testbed(TestbedConfig(with_nfs=False, with_scratch=False))
        assert tb.nfs is None and tb.scratch is None

    def test_seed_override(self):
        tb = build_testbed(seed=77)
        assert tb.cluster.config.seed == 77

    def test_identical_seeds_identical_machines(self):
        a, b = build_testbed(seed=5), build_testbed(seed=5)
        for na, nb in zip(a.cluster.nodes, b.cluster.nodes):
            assert na.clock.skew == nb.clock.skew


class TestOverheadProtocol:
    def test_untraced_run_outcome(self):
        out = run_untraced(mpi_io_test, SMALL_ARGS, nprocs=4)
        assert out.elapsed > 0
        assert out.bytes_moved == 4 * 4 * 64 * KiB
        assert out.aggregate_bandwidth > 0

    def test_deterministic_repetition(self):
        a = run_untraced(mpi_io_test, SMALL_ARGS, nprocs=4, seed=3)
        b = run_untraced(mpi_io_test, SMALL_ARGS, nprocs=4, seed=3)
        assert a.elapsed == b.elapsed

    def test_measure_overhead_pairs_identical_machines(self):
        m = measure_overhead(
            lambda: LANLTrace(LANLTraceConfig()),
            mpi_io_test, SMALL_ARGS, nprocs=4,
        )
        assert m.traced.elapsed > m.untraced.elapsed
        assert 0 < m.bandwidth_overhead < 1
        assert m.elapsed_overhead > 0
        assert m.params["block_size"] == 64 * KiB

    def test_overhead_formula(self):
        assert elapsed_time_overhead(10.0, 12.4) == pytest.approx(0.24)
        with pytest.raises(ValueError):
            elapsed_time_overhead(0.0, 1.0)

    def test_sweep_holds_bytes_constant(self):
        ms = sweep_block_sizes(
            lambda: LANLTrace(LANLTraceConfig()),
            mpi_io_test,
            {"pattern": AccessPattern.N_TO_N, "path": "/pfs/out"},
            [64 * KiB, 256 * KiB],
            total_bytes_per_rank=1 * MiB,
            nprocs=2,
        )
        assert ms[0].params["nobj"] == 16
        assert ms[1].params["nobj"] == 4
        for m in ms:
            assert m.untraced.bytes_moved == 2 * 1 * MiB

    def test_payload_counts_reads_and_writes_independently(self):
        from dataclasses import dataclass

        from repro.harness.experiment import _total_payload

        @dataclass
        class ReadOnly:
            bytes_read: int

        @dataclass
        class WriteOnly:
            bytes_written: int

        @dataclass
        class Both:
            bytes_written: int
            bytes_read: int

        job = run_untraced(mpi_io_test, SMALL_ARGS, nprocs=2).job
        job.results[:] = [ReadOnly(100), WriteOnly(10), Both(1, 2), None]
        # A read-only rank contributes its bytes_read even without any
        # bytes_written attribute (regression: it used to count as 0).
        assert _total_payload(job) == 100 + 10 + 3

    def test_read_back_run_moves_payload_both_ways(self):
        args = dict(SMALL_ARGS, read_back=True)
        out = run_untraced(mpi_io_test, args, nprocs=2)
        # 2 ranks x 4 objects x 64KiB, written then read back
        assert out.bytes_moved == 2 * 2 * 4 * 64 * KiB

    def test_run_outcome_records_events_fingerprint(self):
        a = run_untraced(mpi_io_test, SMALL_ARGS, nprocs=2, seed=3)
        b = run_untraced(mpi_io_test, SMALL_ARGS, nprocs=2, seed=3)
        assert a.events_executed > 0
        assert a.events_executed == b.events_executed

    def test_measured_overhead_report_cell(self):
        report = measure_overhead_report(
            lambda: LANLTrace(LANLTraceConfig()),
            block_sizes=[64 * KiB],
            patterns=[AccessPattern.N_TO_N],
            total_bytes_per_rank=512 * KiB,
            nprocs=2,
        )
        assert report.min_percent is not None
        assert report.max_percent >= report.min_percent
        assert "%" in report.render()


class TestFigureSeries:
    def test_figure_patterns_match_paper(self):
        assert FIGURE_PATTERNS[2] is AccessPattern.N_TO_1_STRIDED
        assert FIGURE_PATTERNS[3] is AccessPattern.N_TO_1_NONSTRIDED
        assert FIGURE_PATTERNS[4] is AccessPattern.N_TO_N
        assert 64 * KiB in PAPER_BLOCK_SIZES
        assert 8192 * KiB in PAPER_BLOCK_SIZES

    def test_bad_figure_number(self):
        with pytest.raises(ValueError):
            figure_series(1)

    def test_small_series_has_expected_shape(self):
        series = figure_series(
            4,
            block_sizes=[64 * KiB, 512 * KiB],
            total_bytes_per_rank=2 * MiB,
            nprocs=4,
        )
        assert series.block_sizes() == [64 * KiB, 512 * KiB]
        small, big = series.points
        # overhead falls with block size; bandwidth rises
        assert small.bandwidth_overhead > big.bandwidth_overhead
        assert small.untraced_bandwidth < big.untraced_bandwidth


class TestReporting:
    def test_render_figure(self):
        series = figure_series(
            3, block_sizes=[64 * KiB], total_bytes_per_rank=512 * KiB, nprocs=2
        )
        text = render_figure(series)
        assert "Figure 3" in text
        assert "non-strided" in text
        assert "64KiB" in text

    def test_render_measurements(self):
        m = measure_overhead(
            lambda: LANLTrace(LANLTraceConfig()),
            mpi_io_test, SMALL_ARGS, nprocs=2,
        )
        text = render_measurements([m], label="demo")
        assert "demo" in text and "64KiB" in text

    def test_render_overhead_range(self):
        text = render_overhead_range({"min": 0.24, "max": 2.22}, 24, 222)
        assert "24% - 222%" in text
        assert "paper" in text
