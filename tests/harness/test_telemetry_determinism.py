"""Telemetry determinism: jobs=1 / jobs=N / warm cache byte-identity.

The telemetry contract extends the sweep determinism contract: with a
fixed seed, the exported metric snapshots and span traces must be
byte-identical however the sweep executed, and must never perturb the
simulated history they observe.
"""

import pytest

from repro.harness.parallel import build_sweep_specs, execute_spec, run_sweep
from repro.harness.runcache import RunCache, spec_key
from repro.obs.perfetto import validate_chrome_trace
from repro.obs.metrics import canonical_json
from repro.units import KiB, MiB
from repro.workloads import AccessPattern

QUICK = dict(block_sizes=[64 * KiB, 256 * KiB], total_bytes_per_rank=1 * MiB, nprocs=4)


def _quick_specs(seed=0, telemetry=False):
    return build_sweep_specs(
        "lanl-trace",
        "mpi_io_test",
        {"pattern": AccessPattern.N_TO_N, "path": "/pfs/out"},
        QUICK["block_sizes"],
        QUICK["total_bytes_per_rank"],
        nprocs=QUICK["nprocs"],
        seed=seed,
        telemetry=telemetry,
    )


def _telemetry_bytes(result):
    return canonical_json([p.telemetry for p in result.points])


class TestByteIdentity:
    def test_serial_parallel_and_cache_agree(self, tmp_path):
        specs = _quick_specs(telemetry=True)
        serial = run_sweep(specs, jobs=1)
        fanned = run_sweep(specs, jobs=4)
        cache = RunCache(tmp_path / "cache")
        cold = run_sweep(specs, jobs=2, cache=cache)
        warm = run_sweep(specs, jobs=1, cache=cache)
        assert all(p.cached for p in warm.points)
        reference = _telemetry_bytes(serial)
        assert _telemetry_bytes(fanned) == reference
        assert _telemetry_bytes(cold) == reference
        assert _telemetry_bytes(warm) == reference

    def test_payloads_carry_valid_traces(self):
        point = execute_spec(_quick_specs(telemetry=True)[0])
        assert set(point.telemetry) == {"untraced", "traced"}
        for payload in point.telemetry.values():
            assert payload["schema"] == "repro/telemetry/v1"
            validate_chrome_trace(payload["trace"])
            assert payload["metrics"]["counters"]["des.events_dispatched"] > 0

    def test_different_points_have_different_payloads(self):
        small, large = (execute_spec(s) for s in _quick_specs(telemetry=True))
        assert canonical_json(small.telemetry) != canonical_json(large.telemetry)


class TestObservationIsPassive:
    def test_telemetry_does_not_change_measurements(self):
        plain = execute_spec(_quick_specs()[0])
        observed = execute_spec(_quick_specs(telemetry=True)[0])
        assert plain.telemetry is None
        assert observed.untraced.elapsed == plain.untraced.elapsed
        assert observed.traced.elapsed == plain.traced.elapsed
        assert observed.events_executed == plain.events_executed

    def test_exported_event_count_matches_fingerprint(self):
        spec = _quick_specs(telemetry=True)[0]
        point = execute_spec(spec)
        total = sum(
            payload["metrics"]["counters"]["des.events_dispatched"]
            for payload in point.telemetry.values()
        )
        assert total == point.events_executed


class TestCacheKeying:
    def test_telemetry_widens_the_key(self):
        plain, observed = _quick_specs()[0], _quick_specs(telemetry=True)[0]
        assert spec_key(plain) != spec_key(observed)
        # Same telemetry flag -> same key (the key stays deterministic).
        assert spec_key(observed) == spec_key(_quick_specs(telemetry=True)[0])

    def test_round_trip_preserves_payload_exactly(self, tmp_path):
        cache = RunCache(tmp_path / "cache")
        spec = _quick_specs(telemetry=True)[0]
        fresh = execute_spec(spec)
        cache.put(spec, fresh)
        replayed = cache.get(spec)
        assert replayed is not None
        assert replayed.telemetry == fresh.telemetry
        assert canonical_json(replayed.telemetry) == canonical_json(fresh.telemetry)

    def test_plain_entry_not_served_for_telemetry_spec(self, tmp_path):
        cache = RunCache(tmp_path / "cache")
        plain = _quick_specs()[0]
        cache.put(plain, execute_spec(plain))
        assert cache.get(_quick_specs(telemetry=True)[0]) is None
