"""Telemetry determinism: jobs=1 / jobs=N / warm cache byte-identity.

The telemetry contract extends the sweep determinism contract: with a
fixed seed, the exported metric snapshots and span traces must be
byte-identical however the sweep executed, and must never perturb the
simulated history they observe.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import (
    DiskSlowdown,
    FaultSchedule,
    NetworkPartition,
    NodeCrash,
    run_under_faults,
)
from repro.harness.figures import paper_testbed
from repro.harness.parallel import (
    RunSpec,
    build_sweep_specs,
    execute_spec,
    run_sweep,
)
from repro.harness.runcache import RunCache, spec_key
from repro.obs.perfetto import validate_chrome_trace
from repro.obs.metrics import canonical_json
from repro.units import KiB, MiB
from repro.workloads import AccessPattern, mpi_io_test

QUICK = dict(block_sizes=[64 * KiB, 256 * KiB], total_bytes_per_rank=1 * MiB, nprocs=4)


def _quick_specs(seed=0, telemetry=False):
    return build_sweep_specs(
        "lanl-trace",
        "mpi_io_test",
        {"pattern": AccessPattern.N_TO_N, "path": "/pfs/out"},
        QUICK["block_sizes"],
        QUICK["total_bytes_per_rank"],
        nprocs=QUICK["nprocs"],
        seed=seed,
        telemetry=telemetry,
    )


def _telemetry_bytes(result):
    return canonical_json([p.telemetry for p in result.points])


class TestByteIdentity:
    def test_serial_parallel_and_cache_agree(self, tmp_path):
        specs = _quick_specs(telemetry=True)
        serial = run_sweep(specs, jobs=1)
        fanned = run_sweep(specs, jobs=4)
        cache = RunCache(tmp_path / "cache")
        cold = run_sweep(specs, jobs=2, cache=cache)
        warm = run_sweep(specs, jobs=1, cache=cache)
        assert all(p.cached for p in warm.points)
        reference = _telemetry_bytes(serial)
        assert _telemetry_bytes(fanned) == reference
        assert _telemetry_bytes(cold) == reference
        assert _telemetry_bytes(warm) == reference

    def test_payloads_carry_valid_traces(self):
        point = execute_spec(_quick_specs(telemetry=True)[0])
        assert set(point.telemetry) == {"untraced", "traced"}
        for payload in point.telemetry.values():
            assert payload["schema"] == "repro/telemetry/v1"
            validate_chrome_trace(payload["trace"])
            assert payload["metrics"]["counters"]["des.events_dispatched"] > 0

    def test_different_points_have_different_payloads(self):
        small, large = (execute_spec(s) for s in _quick_specs(telemetry=True))
        assert canonical_json(small.telemetry) != canonical_json(large.telemetry)


class TestObservationIsPassive:
    def test_telemetry_does_not_change_measurements(self):
        plain = execute_spec(_quick_specs()[0])
        observed = execute_spec(_quick_specs(telemetry=True)[0])
        assert plain.telemetry is None
        assert observed.untraced.elapsed == plain.untraced.elapsed
        assert observed.traced.elapsed == plain.traced.elapsed
        assert observed.events_executed == plain.events_executed

    def test_exported_event_count_matches_fingerprint(self):
        spec = _quick_specs(telemetry=True)[0]
        point = execute_spec(spec)
        total = sum(
            payload["metrics"]["counters"]["des.events_dispatched"]
            for payload in point.telemetry.values()
        )
        assert total == point.events_executed


class TestCacheKeying:
    def test_telemetry_widens_the_key(self):
        plain, observed = _quick_specs()[0], _quick_specs(telemetry=True)[0]
        assert spec_key(plain) != spec_key(observed)
        # Same telemetry flag -> same key (the key stays deterministic).
        assert spec_key(observed) == spec_key(_quick_specs(telemetry=True)[0])

    def test_round_trip_preserves_payload_exactly(self, tmp_path):
        cache = RunCache(tmp_path / "cache")
        spec = _quick_specs(telemetry=True)[0]
        fresh = execute_spec(spec)
        cache.put(spec, fresh)
        replayed = cache.get(spec)
        assert replayed is not None
        assert replayed.telemetry == fresh.telemetry
        assert canonical_json(replayed.telemetry) == canonical_json(fresh.telemetry)

    def test_plain_entry_not_served_for_telemetry_spec(self, tmp_path):
        cache = RunCache(tmp_path / "cache")
        plain = _quick_specs()[0]
        cache.put(plain, execute_spec(plain))
        assert cache.get(_quick_specs(telemetry=True)[0]) is None


# -- fault-plane determinism -------------------------------------------------

_CHAOS_ARGS = {"path": "/pfs/chaos.out", "block_size": 64 * KiB, "nobj": 4}


def _fault_spec(schedule):
    return RunSpec.create(
        "lanl-trace",
        "mpi_io_test",
        _CHAOS_ARGS,
        config=paper_testbed(seed=0, nprocs=2),
        nprocs=2,
        seed=0,
        faults=schedule,
        sim_timeout=30.0,
        retries=1,
    )


def _chaos_bytes(result):
    return canonical_json([[p.chaos, p.error, p.attempts] for p in result.points])


#: Schedules whose events all land inside the ~0.13-0.4s run window.
_schedules = st.lists(
    st.one_of(
        st.builds(
            NodeCrash,
            at=st.floats(0.01, 0.1, allow_nan=False),
            node=st.integers(0, 1),
        ),
        st.builds(
            NetworkPartition,
            at=st.floats(0.01, 0.1, allow_nan=False),
            nodes=st.sets(st.integers(0, 1), min_size=1, max_size=1).map(tuple),
            heal_after=st.floats(0.005, 0.05, allow_nan=False),
        ),
        st.builds(
            DiskSlowdown,
            at=st.floats(0.0, 0.1, allow_nan=False),
            duration=st.floats(0.01, 0.3, allow_nan=False),
            extra_latency=st.floats(1e-4, 5e-3, allow_nan=False),
        ),
    ),
    max_size=2,
).map(lambda evs: FaultSchedule.of(*evs, name="prop"))


class TestFaultDeterminism:
    """Identical FaultSchedule + seed => byte-identical fault histories."""

    @settings(max_examples=8, deadline=None)
    @given(schedule=_schedules)
    def test_fault_event_sequence_is_reproducible(self, schedule):
        outcomes = [
            run_under_faults(
                schedule,
                None,
                mpi_io_test,
                dict(_CHAOS_ARGS),
                config=paper_testbed(seed=0, nprocs=2),
                nprocs=2,
                seed=0,
                horizon=30.0,
            )
            for _ in range(2)
        ]
        a, b = outcomes
        assert a.status == b.status
        assert canonical_json(a.faults) == canonical_json(b.faults)
        assert a.stats == b.stats
        assert a.killed_ranks == b.killed_ranks

    def test_chaos_points_identical_across_jobs_and_cache(self, tmp_path):
        schedule = FaultSchedule.of(
            NodeCrash(at=0.05, node=1),
            DiskSlowdown(at=0.0, duration=0.3, extra_latency=1e-3),
            name="determinism",
        )
        specs = [_fault_spec(schedule)]
        serial = run_sweep(specs, jobs=1)
        fanned = run_sweep(specs * 2, jobs=2)  # >1 pending point => real pool
        cache = RunCache(tmp_path / "cache")
        cold = run_sweep(specs, jobs=1, cache=cache)
        warm = run_sweep(specs, jobs=1, cache=cache)
        assert all(p.cached for p in warm.points)
        reference = _chaos_bytes(serial)
        assert canonical_json([[p.chaos, p.error, p.attempts] for p in fanned.points[:1]]) == reference
        assert _chaos_bytes(cold) == reference
        assert _chaos_bytes(warm) == reference

    def test_fault_fields_widen_the_cache_key(self):
        schedule = FaultSchedule.of(NodeCrash(at=0.05, node=1), name="k")
        plain = RunSpec.create(
            "lanl-trace", "mpi_io_test", _CHAOS_ARGS,
            config=paper_testbed(seed=0, nprocs=2), nprocs=2, seed=0,
        )
        faulted = _fault_spec(schedule)
        assert spec_key(plain) != spec_key(faulted)
        # Deterministic: same schedule -> same key.
        assert spec_key(faulted) == spec_key(_fault_spec(schedule))
        # Different schedule -> different key.
        other = FaultSchedule.of(NodeCrash(at=0.06, node=1), name="k")
        assert spec_key(faulted) != spec_key(_fault_spec(other))
