"""Verify must survive the fault plane's corruption corpus.

``repro store verify`` is the archive's last line of defense, so it gets
the same treatment as the codecs: every crash-shaped corruption of a
stored segment must be *reported* (ok=False with a typed error record) —
verify itself must never raise, hang, or call a damaged archive clean.
"""

import pytest

from storeutil import make_bundle

from repro.errors import ReproError
from repro.faults.corrupt import crash_truncation_corpus
from repro.store import TraceBank


@pytest.fixture
def bank(tmp_path):
    bank = TraceBank(tmp_path / "store")
    bank.ingest_bundle(make_bundle(nranks=1, n=12))
    return bank


def test_every_corpus_variant_is_flagged_not_raised(bank):
    sha = bank.disk_segments()[0]
    path = bank.segment_path(sha)
    pristine = path.read_bytes()
    for variant in crash_truncation_corpus(pristine, seed=0, n=24):
        if variant == pristine:
            continue  # identity variant: genuinely clean
        path.write_bytes(variant)
        try:
            report = bank.verify()
        except ReproError as exc:  # pragma: no cover - would be a bug
            pytest.fail("verify raised instead of reporting: %s" % exc)
        assert not report["ok"], "corrupted segment passed verification"
        assert report["errors"], "ok=False but no error records"
        for err in report["errors"]:
            assert err["sha256"] == sha
    path.write_bytes(pristine)
    assert bank.verify()["ok"]


def test_verify_parallel_matches_serial_on_corrupt_archive(bank):
    sha = bank.disk_segments()[0]
    path = bank.segment_path(sha)
    variants = crash_truncation_corpus(path.read_bytes(), seed=1, n=8)
    path.write_bytes(variants[0])
    assert bank.verify(jobs=1) == bank.verify(jobs=3)
