"""Pytest path setup for the store tests' shared ``storeutil`` helpers."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
