"""Query engine tests: filters, aggregates, pushdown, and determinism."""

import pytest

from storeutil import make_bundle, make_event

from repro.errors import StoreQueryError
from repro.obs.metrics import canonical_json
from repro.store import Query, TraceBank, run_query, scan_events
from repro.trace.records import TraceBundle, TraceFile


@pytest.fixture
def bank(tmp_path):
    """Two runs: a 2-rank write run and a 1-rank read run, distinct metadata."""
    bank = TraceBank(tmp_path / "store")
    bank.ingest_bundle(make_bundle(nranks=2, n=8), meta={"kind": "sweep", "tag": "w"})
    reads = TraceBundle(
        files={
            0: TraceFile(
                [make_event(name="SYS_read", ts=10.0 + i * 0.01, rank=0,
                            path="/pfs/in", nbytes=1024)
                 for i in range(4)],
                rank=0,
                framework="tracefs",
            )
        },
        metadata={"framework": "tracefs"},
    )
    bank.ingest_bundle(reads, meta={"kind": "sweep", "tag": "r"})
    return bank


class TestFilters:
    def test_unfiltered_counts_everything(self, bank):
        report = run_query(bank, Query(agg="ops"))
        assert report["scan"]["events_matched"] == 20
        assert report["result"]["ops"]["SYS_write"]["calls"] == 16
        assert report["result"]["ops"]["SYS_read"]["calls"] == 4

    def test_rank_filter_prunes_segments(self, bank):
        report = run_query(bank, Query.create(agg="ops", ranks=[1]))
        assert report["scan"]["segments_pruned"] == 2  # rank-0 shards skipped
        assert report["scan"]["segments_scanned"] == 1
        assert report["result"]["ops"] == {
            "SYS_write": {"calls": 8, "total_time": pytest.approx(0.008)}
        }

    def test_name_filter_uses_pushdown(self, bank):
        report = run_query(bank, Query.create(agg="ops", names=["SYS_read"]))
        assert report["scan"]["segments_scanned"] == 1
        assert list(report["result"]["ops"]) == ["SYS_read"]

    def test_time_window_half_open(self, bank):
        report = run_query(bank, Query.create(agg="ops", since=10.0, until=10.02))
        assert report["scan"]["events_matched"] == 2

    def test_path_glob(self, bank):
        report = run_query(bank, Query.create(agg="ops", path_glob="/pfs/in*"))
        assert report["scan"]["events_matched"] == 4

    def test_layer_filter(self, bank):
        report = run_query(bank, Query.create(agg="ops", layers=["vfs"]))
        assert report["scan"]["events_matched"] == 0
        assert report["scan"]["segments_scanned"] == 0  # all pruned

    def test_where_selects_runs(self, bank):
        report = run_query(bank, Query.create(agg="ops", where={"tag": "r"}))
        assert report["scan"]["runs_selected"] == 1
        assert list(report["result"]["ops"]) == ["SYS_read"]

    def test_where_dotted_key(self, bank):
        report = run_query(
            bank, Query.create(agg="ops", where={"framework": "tracefs"})
        )
        assert report["scan"]["runs_selected"] == 1

    def test_runs_prefix_selection(self, bank):
        run_id = bank.run_ids()[0]
        report = run_query(bank, Query.create(agg="ops", runs=[run_id[:10]]))
        assert report["scan"]["runs_selected"] == 1


class TestAggregates:
    def test_events_rows_globally_ordered(self, bank):
        rows = scan_events(bank, Query())
        stamps = [r["timestamp"] for r in rows]
        assert stamps == sorted(stamps)
        assert rows[0]["name"] == "SYS_write"
        assert rows[-1]["name"] == "SYS_read"

    def test_events_limit_truncates_after_ordering(self, bank):
        report = run_query(bank, Query(agg="events", limit=3))
        assert len(report["result"]["events"]) == 3
        assert report["result"]["truncated"] is True
        full = scan_events(bank, Query())
        assert report["result"]["events"] == full[:3]

    def test_bytes_by_rank(self, bank):
        report = run_query(bank, Query(agg="bytes"))
        ranks = report["result"]["ranks"]
        # rank 0 appears in both runs: 8*4096 + 4*1024 bytes.
        assert ranks["0"] == {"events": 12, "bytes": 8 * 4096 + 4 * 1024}
        assert ranks["1"] == {"events": 8, "bytes": 8 * 4096}
        assert report["result"]["total_bytes"] == 16 * 4096 + 4 * 1024

    def test_bandwidth_buckets(self, bank):
        report = run_query(bank, Query.create(agg="bandwidth", window=0.05,
                                              names=["SYS_read"]))
        buckets = report["result"]["buckets"]
        assert buckets[0]["t0"] <= 10.0 < buckets[0]["t1"] + 1e-9
        assert sum(b["bytes"] for b in buckets) == 4 * 1024
        for b in buckets:
            assert b["bandwidth"] == pytest.approx(b["bytes"] / 0.05)

    def test_ops_totals_match_event_durations(self, bank):
        report = run_query(bank, Query(agg="ops"))
        ops = report["result"]["ops"]
        assert ops["SYS_write"]["total_time"] == pytest.approx(16 * 0.001)


class TestDeterminism:
    def test_jobs_do_not_change_bytes(self, bank):
        for agg in ("events", "ops", "bytes", "bandwidth"):
            q = Query(agg=agg)
            serial = canonical_json(run_query(bank, q, jobs=1))
            parallel = canonical_json(run_query(bank, q, jobs=4))
            assert serial == parallel, agg

    def test_warm_manifest_cache_identical(self, bank):
        q = Query(agg="ops")
        cold = canonical_json(run_query(bank, q))
        assert bank.index.parsed >= 0  # first load already cached on ingest
        warm = canonical_json(run_query(bank, q))
        assert bank.index.reused == 2 and bank.index.parsed == 0
        assert cold == warm

    def test_deleted_cache_identical(self, bank):
        q = Query(agg="ops")
        warm = canonical_json(run_query(bank, q))
        bank.index.invalidate()
        cold = canonical_json(run_query(bank, q))
        assert bank.index.parsed == 2
        assert warm == cold

    def test_report_is_canonical_json_clean(self, bank):
        import json

        report = run_query(bank, Query(agg="ops"))
        assert json.loads(canonical_json(report)) == report


class TestValidation:
    def test_unknown_aggregate(self, bank):
        with pytest.raises(StoreQueryError):
            run_query(bank, Query(agg="median"))

    def test_bad_window(self, bank):
        with pytest.raises(StoreQueryError):
            run_query(bank, Query(agg="bandwidth", window=0.0))

    def test_empty_time_window(self, bank):
        with pytest.raises(StoreQueryError):
            run_query(bank, Query(since=5.0, until=5.0))

    def test_negative_limit(self, bank):
        with pytest.raises(StoreQueryError):
            run_query(bank, Query(agg="events", limit=-1))
