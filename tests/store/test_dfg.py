"""Directly-follows-graph construction over archived segments."""

import pytest

from storeutil import make_event

from repro.obs.metrics import canonical_json
from repro.store import Query, TraceBank, build_dfg, render_dfg_dot, render_dfg_text
from repro.trace.records import TraceBundle, TraceFile


def seq_file(names, rank=0, base_ts=0.0):
    events = [
        make_event(name=n, ts=base_ts + i * 0.01, rank=rank)
        for i, n in enumerate(names)
    ]
    return TraceFile(events, rank=rank, framework="lanl-trace")


def make_bank(tmp_path, files):
    bank = TraceBank(tmp_path / "store")
    bank.ingest_bundle(
        TraceBundle(files={tf.rank: tf for tf in files}, metadata={"workload": "dfg"})
    )
    return bank


class TestGraphShape:
    def test_edge_weights(self, tmp_path):
        bank = make_bank(
            tmp_path, [seq_file(["open", "write", "write", "close"], rank=0)]
        )
        report = build_dfg(bank, Query())
        graph = report["graph"]
        assert graph["nodes"] == {"open": 1, "write": 2, "close": 1}
        assert graph["edges"] == {
            "open": {"write": 1},
            "write": {"write": 1, "close": 1},
        }
        assert graph["starts"] == {"open": 1}
        assert graph["ends"] == {"close": 1}
        assert graph["n_nodes"] == 3
        assert graph["n_edges"] == 3

    def test_edges_never_cross_segments(self, tmp_path):
        # rank 0 ends with "close"; rank 1 starts with "open".  If shard
        # boundaries leaked, a close->open edge would appear.
        bank = make_bank(
            tmp_path,
            [
                seq_file(["open", "close"], rank=0),
                seq_file(["open", "close"], rank=1),
            ],
        )
        graph = build_dfg(bank, Query())["graph"]
        assert graph["edges"] == {"open": {"close": 2}}
        assert graph["starts"] == {"open": 2}
        assert graph["ends"] == {"close": 2}

    def test_filters_apply_before_adjacency(self, tmp_path):
        # Dropping the middle op makes its neighbours adjacent.
        bank = make_bank(tmp_path, [seq_file(["open", "stat", "close"], rank=0)])
        q = Query.create(names=["open", "close"])
        graph = build_dfg(bank, q)["graph"]
        assert graph["edges"] == {"open": {"close": 1}}

    def test_empty_match_is_empty_graph(self, tmp_path):
        bank = make_bank(tmp_path, [seq_file(["open"], rank=0)])
        graph = build_dfg(bank, Query.create(names=["nope"]))["graph"]
        assert graph["nodes"] == {} and graph["edges"] == {}
        assert graph["n_nodes"] == 0 and graph["n_edges"] == 0


class TestEdgeTimes:
    def test_mean_gap_is_idle_time_between_ops(self, tmp_path):
        # seq_file spaces events 0.01 s apart with 0.001 s durations:
        # every directly-follows edge carries a 0.009 s idle gap.
        bank = make_bank(
            tmp_path, [seq_file(["open", "write", "write", "close"], rank=0)]
        )
        times = build_dfg(bank, Query())["graph"]["edge_times"]
        cell = times["open"]["write"]
        assert cell["count"] == 1
        assert cell["mean"] == pytest.approx(0.009)
        assert cell["sum"] == pytest.approx(0.009)
        assert cell["min"] == cell["max"] == pytest.approx(0.009)
        assert times["write"]["write"]["mean"] == pytest.approx(0.009)

    def test_repeated_edge_tracks_min_max_and_mean(self, tmp_path):
        events = [
            make_event(name=n, ts=ts, rank=0)
            for n, ts in [("x", 0.0), ("y", 0.004), ("x", 0.01), ("y", 0.02)]
        ]
        bank = make_bank(
            tmp_path, [TraceFile(events, rank=0, framework="lanl-trace")]
        )
        cell = build_dfg(bank, Query())["graph"]["edge_times"]["x"]["y"]
        # Gaps: 0.004-0.001 = 0.003 and 0.02-0.011 = 0.009.
        assert cell["count"] == 2
        assert cell["min"] == pytest.approx(0.003)
        assert cell["max"] == pytest.approx(0.009)
        assert cell["sum"] == pytest.approx(0.012)
        assert cell["mean"] == pytest.approx(0.006)

    def test_negative_gap_from_overlapping_captures_kept_raw(self, tmp_path):
        events = [
            make_event(name="a", ts=0.0, dur=0.01, rank=0),
            make_event(name="b", ts=0.005, rank=0),
        ]
        bank = make_bank(
            tmp_path, [TraceFile(events, rank=0, framework="lanl-trace")]
        )
        cell = build_dfg(bank, Query())["graph"]["edge_times"]["a"]["b"]
        assert cell["mean"] == pytest.approx(-0.005)

    def test_counts_agree_with_edge_weights(self, tmp_path):
        bank = make_bank(
            tmp_path,
            [seq_file(["open", "write", "write", "close"], rank=r) for r in range(3)],
        )
        graph = build_dfg(bank, Query())["graph"]
        for a, row in graph["edge_times"].items():
            for b, cell in row.items():
                assert cell["count"] == graph["edges"][a][b]

    def test_columnar_and_row_codecs_attribute_identically(self, tmp_path):
        files = {
            r: seq_file(["open", "write", "close"], rank=r) for r in range(2)
        }
        meta = {"workload": "dfg"}
        b1 = TraceBank(tmp_path / "v1")
        b1.ingest_bundle(TraceBundle(files=files, metadata=meta), codec="v1")
        b2 = TraceBank(tmp_path / "v2")
        b2.ingest_bundle(TraceBundle(files=files, metadata=meta), codec="v2")
        g1 = build_dfg(b1, Query())["graph"]
        g2 = build_dfg(b2, Query())["graph"]
        assert canonical_json(g1["edge_times"]) == canonical_json(g2["edge_times"])
        assert canonical_json(g1["edges"]) == canonical_json(g2["edges"])

    def test_render_shows_mean_gap(self, tmp_path):
        bank = make_bank(tmp_path, [seq_file(["open", "close"], rank=0)])
        text = render_dfg_text(build_dfg(bank, Query()))
        assert "(mean gap 0.009000 s)" in text


class TestDeterminismAndRender:
    def test_jobs_do_not_change_bytes(self, tmp_path):
        bank = make_bank(
            tmp_path,
            [seq_file(["open", "write", "close"], rank=r) for r in range(4)],
        )
        q = Query()
        assert canonical_json(build_dfg(bank, q, jobs=1)) == canonical_json(
            build_dfg(bank, q, jobs=4)
        )

    def test_text_render(self, tmp_path):
        bank = make_bank(tmp_path, [seq_file(["open", "write", "close"], rank=0)])
        text = render_dfg_text(build_dfg(bank, Query()))
        assert "3 op(s), 2 edge(s)" in text
        assert "open" in text and "-> " in text
        assert "starts: open x1" in text

    def test_dot_render(self, tmp_path):
        bank = make_bank(tmp_path, [seq_file(["open", "close"], rank=0)])
        dot = render_dfg_dot(build_dfg(bank, Query()))
        assert dot.startswith("digraph dfg {")
        assert '"open" -> "close" [label="1"];' in dot
