"""Directly-follows-graph construction over archived segments."""

from storeutil import make_event

from repro.obs.metrics import canonical_json
from repro.store import Query, TraceBank, build_dfg, render_dfg_dot, render_dfg_text
from repro.trace.records import TraceBundle, TraceFile


def seq_file(names, rank=0, base_ts=0.0):
    events = [
        make_event(name=n, ts=base_ts + i * 0.01, rank=rank)
        for i, n in enumerate(names)
    ]
    return TraceFile(events, rank=rank, framework="lanl-trace")


def make_bank(tmp_path, files):
    bank = TraceBank(tmp_path / "store")
    bank.ingest_bundle(
        TraceBundle(files={tf.rank: tf for tf in files}, metadata={"workload": "dfg"})
    )
    return bank


class TestGraphShape:
    def test_edge_weights(self, tmp_path):
        bank = make_bank(
            tmp_path, [seq_file(["open", "write", "write", "close"], rank=0)]
        )
        report = build_dfg(bank, Query())
        graph = report["graph"]
        assert graph["nodes"] == {"open": 1, "write": 2, "close": 1}
        assert graph["edges"] == {
            "open": {"write": 1},
            "write": {"write": 1, "close": 1},
        }
        assert graph["starts"] == {"open": 1}
        assert graph["ends"] == {"close": 1}
        assert graph["n_nodes"] == 3
        assert graph["n_edges"] == 3

    def test_edges_never_cross_segments(self, tmp_path):
        # rank 0 ends with "close"; rank 1 starts with "open".  If shard
        # boundaries leaked, a close->open edge would appear.
        bank = make_bank(
            tmp_path,
            [
                seq_file(["open", "close"], rank=0),
                seq_file(["open", "close"], rank=1),
            ],
        )
        graph = build_dfg(bank, Query())["graph"]
        assert graph["edges"] == {"open": {"close": 2}}
        assert graph["starts"] == {"open": 2}
        assert graph["ends"] == {"close": 2}

    def test_filters_apply_before_adjacency(self, tmp_path):
        # Dropping the middle op makes its neighbours adjacent.
        bank = make_bank(tmp_path, [seq_file(["open", "stat", "close"], rank=0)])
        q = Query.create(names=["open", "close"])
        graph = build_dfg(bank, q)["graph"]
        assert graph["edges"] == {"open": {"close": 1}}

    def test_empty_match_is_empty_graph(self, tmp_path):
        bank = make_bank(tmp_path, [seq_file(["open"], rank=0)])
        graph = build_dfg(bank, Query.create(names=["nope"]))["graph"]
        assert graph["nodes"] == {} and graph["edges"] == {}
        assert graph["n_nodes"] == 0 and graph["n_edges"] == 0


class TestDeterminismAndRender:
    def test_jobs_do_not_change_bytes(self, tmp_path):
        bank = make_bank(
            tmp_path,
            [seq_file(["open", "write", "close"], rank=r) for r in range(4)],
        )
        q = Query()
        assert canonical_json(build_dfg(bank, q, jobs=1)) == canonical_json(
            build_dfg(bank, q, jobs=4)
        )

    def test_text_render(self, tmp_path):
        bank = make_bank(tmp_path, [seq_file(["open", "write", "close"], rank=0)])
        text = render_dfg_text(build_dfg(bank, Query()))
        assert "3 op(s), 2 edge(s)" in text
        assert "open" in text and "-> " in text
        assert "starts: open x1" in text

    def test_dot_render(self, tmp_path):
        bank = make_bank(tmp_path, [seq_file(["open", "close"], rank=0)])
        dot = render_dfg_dot(build_dfg(bank, Query()))
        assert dot.startswith("digraph dfg {")
        assert '"open" -> "close" [label="1"];' in dot
