"""Property tests: the archive is a lossless, order-faithful view.

For any bundle, ``encode -> ingest -> query`` must agree with scanning
the in-memory bundle directly — across both codec flag settings and any
worker count.  This is the satellite-3 acceptance property: the store is
an *archive*, not a lossy summary.
"""

import tempfile
from pathlib import Path

from hypothesis import given, settings, strategies as st

from storeutil import make_event

from repro.obs.metrics import canonical_json
from repro.store import Query, TraceBank, run_query
from repro.trace.records import TraceBundle, TraceFile

NAMES = ("SYS_read", "SYS_write", "SYS_open")

event_strategy = st.tuples(
    st.sampled_from(NAMES),
    st.floats(min_value=0.0, max_value=4.0, allow_nan=False, width=32),
    st.integers(min_value=0, max_value=1 << 20),  # nbytes
)

bundle_strategy = st.dictionaries(
    keys=st.integers(min_value=0, max_value=3),  # ranks
    values=st.lists(event_strategy, min_size=0, max_size=6),
    min_size=1,
    max_size=3,
)


def build_bundle(spec):
    files = {}
    for rank, rows in spec.items():
        events = [
            make_event(name=name, ts=ts, rank=rank, nbytes=nbytes)
            for name, ts, nbytes in rows
        ]
        files[rank] = TraceFile(events, rank=rank, framework="lanl-trace")
    return TraceBundle(files=files, metadata={"workload": "prop"})


def expected_rows(bundle):
    """The plain in-memory scan: what the events query must reproduce."""
    rows = []
    for rank in bundle.files:
        for seq, e in enumerate(bundle.files[rank].events):
            rows.append((e.timestamp, rank, seq, e.name, e.nbytes))
    rows.sort()
    return rows


class TestArchiveRoundtrip:
    @given(
        spec=bundle_strategy,
        compressed=st.booleans(),
        checksum=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_query_matches_plain_scan(self, spec, compressed, checksum):
        bundle = build_bundle(spec)
        with tempfile.TemporaryDirectory() as tmp:
            bank = TraceBank(Path(tmp) / "store")
            bank.ingest_bundle(bundle, compressed=compressed, checksum=checksum)
            report = run_query(bank, Query(agg="events"))
            got = [
                (r["timestamp"], r["rank"], r["seq"], r["name"], r["nbytes"])
                for r in report["result"]["events"]
            ]
            assert got == expected_rows(bundle)

    @given(spec=bundle_strategy)
    @settings(max_examples=20, deadline=None)
    def test_jobs_never_change_report_bytes(self, spec):
        bundle = build_bundle(spec)
        with tempfile.TemporaryDirectory() as tmp:
            bank = TraceBank(Path(tmp) / "store")
            bank.ingest_bundle(bundle)
            for agg in ("events", "ops", "bytes"):
                q = Query(agg=agg)
                assert canonical_json(run_query(bank, q, jobs=1)) == canonical_json(
                    run_query(bank, q, jobs=4)
                )

    @given(spec=bundle_strategy, compressed=st.booleans(), checksum=st.booleans())
    @settings(max_examples=30, deadline=None)
    def test_load_run_bundle_is_lossless(self, spec, compressed, checksum):
        bundle = build_bundle(spec)
        with tempfile.TemporaryDirectory() as tmp:
            bank = TraceBank(Path(tmp) / "store")
            r = bank.ingest_bundle(bundle, compressed=compressed, checksum=checksum)
            out = bank.load_run_bundle(r.run_id)
            assert sorted(out.files) == sorted(bundle.files)
            for rank in bundle.files:
                assert out.files[rank].events == bundle.files[rank].events

    @given(spec=bundle_strategy)
    @settings(max_examples=20, deadline=None)
    def test_reingest_is_always_a_full_dedup(self, spec):
        bundle = build_bundle(spec)
        with tempfile.TemporaryDirectory() as tmp:
            bank = TraceBank(Path(tmp) / "store")
            first = bank.ingest_bundle(bundle)
            second = bank.ingest_bundle(bundle)
            assert second.run_id == first.run_id
            assert second.new_segments == 0
            assert not second.manifest_new
