"""Content-addressed segment encode/decode and summary pushdown tests."""

import pytest

from storeutil import make_event, make_trace_file

from repro.errors import StoreCorruptionError, TraceError
from repro.store.segments import (
    SegmentMeta,
    content_address,
    decode_segment,
    encode_segment,
    summarize_segment,
)
from repro.trace.events import EventLayer
from repro.trace.records import TraceFile


class TestEncodeDecode:
    def test_roundtrip(self):
        tf = make_trace_file(rank=1, n=5)
        blob, sha = encode_segment(tf)
        assert sha == content_address(blob)
        out = decode_segment(blob, expected_sha=sha)
        assert out.events == tf.events
        assert out.rank == 1

    def test_encoding_is_deterministic(self):
        tf = make_trace_file(n=6)
        assert encode_segment(tf) == encode_segment(tf)

    @pytest.mark.parametrize("compressed", [True, False])
    @pytest.mark.parametrize("checksum", [True, False])
    def test_codec_flags_roundtrip(self, compressed, checksum):
        tf = make_trace_file(n=4)
        blob, sha = encode_segment(tf, compressed=compressed, checksum=checksum)
        assert decode_segment(blob, expected_sha=sha).events == tf.events

    def test_sha_mismatch_is_corruption(self):
        blob, sha = encode_segment(make_trace_file())
        with pytest.raises(StoreCorruptionError):
            decode_segment(blob + b"x", expected_sha=sha)

    def test_undecodable_with_expected_sha_is_corruption(self):
        bad = b"not a trace at all"
        with pytest.raises(StoreCorruptionError):
            decode_segment(bad, expected_sha=content_address(bad))

    def test_undecodable_without_sha_stays_trace_error(self):
        with pytest.raises(TraceError):
            decode_segment(b"not a trace at all")


class TestSegmentMeta:
    def make_meta(self):
        tf = make_trace_file(rank=2, n=10)
        blob, sha = encode_segment(tf)
        return summarize_segment(tf, 2, sha, len(blob))

    def test_summary_numbers(self):
        meta = self.make_meta()
        assert meta.rank == 2
        assert meta.n_events == 10
        assert meta.t_min == pytest.approx(0.0)
        assert meta.t_max == pytest.approx(0.09 + 0.001)
        assert meta.payload_bytes == 10 * 4096
        assert dict(meta.ops) == {"SYS_write": 10}
        assert dict(meta.layers) == {"syscall": 10}

    def test_json_roundtrip(self):
        meta = self.make_meta()
        assert SegmentMeta.from_json(meta.to_json()) == meta

    def test_may_match_rank_and_name(self):
        meta = self.make_meta()
        assert meta.may_match(ranks={2})
        assert not meta.may_match(ranks={0, 1})
        assert meta.may_match(names={"SYS_write"})
        assert not meta.may_match(names={"SYS_read"})
        assert meta.may_match(layers={"syscall"})
        assert not meta.may_match(layers={"vfs"})

    def test_may_match_time_window(self):
        meta = self.make_meta()  # events start in [0.0, 0.09]
        assert meta.may_match(since=0.05)
        assert not meta.may_match(since=1.0)
        assert meta.may_match(until=0.05)
        assert not meta.may_match(until=0.0)

    def test_empty_segment_never_matches(self):
        tf = TraceFile([], rank=0)
        blob, sha = encode_segment(tf)
        meta = summarize_segment(tf, 0, sha, len(blob))
        assert not meta.may_match()

    def test_mixed_layers_counted(self):
        tf = TraceFile(
            [
                make_event(ts=0.0),
                make_event(name="vfs_write", ts=0.1, layer=EventLayer.VFS),
            ],
            rank=0,
        )
        blob, sha = encode_segment(tf)
        meta = summarize_segment(tf, 0, sha, len(blob))
        assert dict(meta.layers) == {"syscall": 1, "vfs": 1}
