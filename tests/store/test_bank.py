"""TraceBank ingest/dedup/verify/gc behavior (the archive's core contract)."""

import pytest

from storeutil import make_bundle, make_trace_file

from repro.errors import StoreCorruptionError, StoreError, StoreNotFound
from repro.faults.corrupt import bit_flip
from repro.store import TraceBank, render_store_summary
from repro.store.manifest import RunManifest


@pytest.fixture
def bank(tmp_path):
    return TraceBank(tmp_path / "store")


class TestIngest:
    def test_ingest_reports_shape(self, bank):
        r = bank.ingest_bundle(make_bundle(nranks=3, n=4))
        assert r.segments == 3
        assert r.new_segments == 3
        assert r.deduped_segments == 0
        assert r.events == 12
        assert r.manifest_new

    def test_reingest_dedups_everything(self, bank):
        bundle = make_bundle()
        first = bank.ingest_bundle(bundle)
        second = bank.ingest_bundle(bundle)
        assert second.run_id == first.run_id
        assert second.new_segments == 0
        assert second.deduped_segments == second.segments == first.segments
        assert not second.manifest_new
        assert len(bank.run_ids()) == 1
        assert len(bank.disk_segments()) == first.segments

    def test_different_meta_is_a_different_run_sharing_segments(self, bank):
        bundle = make_bundle()
        a = bank.ingest_bundle(bundle, meta={"tag": "a"})
        b = bank.ingest_bundle(bundle, meta={"tag": "b"})
        assert a.run_id != b.run_id
        assert b.new_segments == 0  # same bytes, shared on disk
        assert len(bank.run_ids()) == 2
        assert len(bank.disk_segments()) == a.segments

    def test_ingest_trace_file_single_segment(self, bank):
        r = bank.ingest_trace_file(make_trace_file(rank=5))
        m = bank.manifest(r.run_id)
        assert [s.rank for s in m.segments] == [5]
        assert m.meta.get("framework") == "lanl-trace"

    def test_run_id_is_location_independent(self, tmp_path):
        bundle = make_bundle()
        a = TraceBank(tmp_path / "a").ingest_bundle(bundle)
        b = TraceBank(tmp_path / "b").ingest_bundle(bundle)
        assert a.run_id == b.run_id


class TestReads:
    def test_load_run_bundle_roundtrip(self, bank):
        bundle = make_bundle(nranks=2, n=5)
        r = bank.ingest_bundle(bundle)
        out = bank.load_run_bundle(r.run_id)
        assert sorted(out.files) == [0, 1]
        for rank in (0, 1):
            assert out.files[rank].events == bundle.files[rank].events

    def test_manifest_prefix_lookup(self, bank):
        r = bank.ingest_bundle(make_bundle())
        assert bank.manifest(r.run_id[:8]).run_id == r.run_id
        with pytest.raises(StoreError):
            bank.manifest("zzzz")

    def test_iter_run_events_rank_major(self, bank):
        r = bank.ingest_bundle(make_bundle(nranks=2, n=3))
        ranks = [rank for rank, _e in bank.iter_run_events(r.run_id)]
        assert ranks == [0, 0, 0, 1, 1, 1]

    def test_stats_and_summary_render(self, bank):
        bank.ingest_bundle(make_bundle(nranks=2, n=4))
        stats = bank.stats()
        assert stats["runs"] == 1
        assert stats["events"] == 8
        assert stats["segments_unique"] == 2
        assert stats["orphan_segments"] == 0
        text = render_store_summary(stats)
        assert "1 run(s)" in text

    def test_create_false_requires_marker(self, tmp_path):
        with pytest.raises(StoreNotFound):
            TraceBank(tmp_path / "nope", create=False)
        TraceBank(tmp_path / "yes")  # materialize
        TraceBank(tmp_path / "yes", create=False)  # now fine


class TestVerify:
    def test_clean_archive_verifies(self, bank):
        bank.ingest_bundle(make_bundle())
        report = bank.verify()
        assert report["ok"]
        assert report["segments_checked"] == 2
        assert report["errors"] == []

    def test_bit_flip_detected(self, bank):
        r = bank.ingest_bundle(make_bundle())
        sha = bank.manifest(r.run_id).segments[0].sha256
        path = bank.segment_path(sha)
        path.write_bytes(bit_flip(path.read_bytes(), 7))
        report = bank.verify()
        assert not report["ok"]
        assert any(e["error"] == "content hash mismatch" for e in report["errors"])

    def test_missing_segment_detected(self, bank):
        r = bank.ingest_bundle(make_bundle())
        bank.segment_path(bank.manifest(r.run_id).segments[1].sha256).unlink()
        report = bank.verify()
        assert not report["ok"]
        assert any("missing" in e["error"] for e in report["errors"])

    def test_summary_drift_detected(self, bank):
        r = bank.ingest_bundle(make_bundle())
        mpath = bank.manifest_path(r.run_id)
        m = RunManifest.loads(mpath.read_text("utf-8"))
        drifted = m.segments[0].to_json()
        drifted["n_events"] += 1
        body = m.to_json()
        body["segments"][0] = drifted
        mpath.write_text(RunManifest.from_json(body).dumps())
        bank.index.invalidate()
        report = bank.verify()
        assert not report["ok"]
        assert any("drift" in e["error"] for e in report["errors"])

    def test_corrupt_manifest_reported_not_raised(self, bank):
        bank.ingest_bundle(make_bundle())
        (bank.manifests_dir / "deadbeef.json").write_text("{not json")
        report = bank.verify()
        assert not report["ok"]
        assert any("unreadable" in e["error"] for e in report["errors"])

    def test_verify_parallel_matches_serial(self, bank):
        bank.ingest_bundle(make_bundle(nranks=4))
        assert bank.verify(jobs=1) == bank.verify(jobs=3)


class TestGC:
    def test_gc_noop_on_clean_archive(self, bank):
        bank.ingest_bundle(make_bundle())
        report = bank.gc()
        assert report["removed_segments"] == []
        assert report["kept_segments"] == 2

    def test_dropping_a_run_then_gc_reclaims(self, bank):
        keep = bank.ingest_bundle(make_bundle(n=4))
        drop = bank.ingest_bundle(make_bundle(n=6))
        bank.manifest_path(drop.run_id).unlink()
        bank.index.invalidate()
        # ttl=0: no live writer in this test, reclaim fresh orphans now.
        dry = bank.gc(dry_run=True, tmp_ttl_seconds=0.0)
        assert len(dry["removed_segments"]) == 2
        assert len(bank.disk_segments()) == 4  # dry run deleted nothing
        report = bank.gc(tmp_ttl_seconds=0.0)
        assert sorted(report["removed_segments"]) == sorted(dry["removed_segments"])
        assert len(bank.disk_segments()) == 2
        assert bank.verify()["ok"]
        assert bank.run_ids() == [keep.run_id]

    def test_gc_keeps_shared_segments(self, bank):
        bundle = make_bundle()
        bank.ingest_bundle(bundle, meta={"tag": "a"})
        drop = bank.ingest_bundle(bundle, meta={"tag": "b"})
        bank.manifest_path(drop.run_id).unlink()
        report = bank.gc()
        assert report["removed_segments"] == []  # still referenced by run "a"


class TestStoreMarker:
    def test_non_store_json_rejected(self, tmp_path):
        root = tmp_path / "s"
        root.mkdir()
        (root / "STORE.json").write_text('{"schema": "something/else"}')
        with pytest.raises(StoreError):
            TraceBank(root)

    def test_corrupt_marker_rejected(self, tmp_path):
        root = tmp_path / "s"
        root.mkdir()
        (root / "STORE.json").write_text("not json")
        with pytest.raises(StoreCorruptionError):
            TraceBank(root)
