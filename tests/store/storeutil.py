"""Shared builders for the TraceBank archive tests.

Hand-built bundles (no simulator runs) keep these tests fast; every
builder is deterministic so content addresses and run ids are stable
within a test.
"""

from repro.trace.events import EventLayer, TraceEvent
from repro.trace.records import TraceBundle, TraceFile


def make_event(name="SYS_write", ts=0.0, dur=0.001, layer=EventLayer.SYSCALL,
               rank=0, path="/pfs/f", nbytes=4096, offset=0):
    return TraceEvent(
        timestamp=ts,
        duration=dur,
        layer=layer,
        name=name,
        args=(3, nbytes),
        result=nbytes,
        pid=100 + rank,
        rank=rank,
        hostname="host%02d" % rank,
        user="u",
        path=path,
        fd=3,
        nbytes=nbytes,
        offset=offset,
    )


def make_trace_file(rank=0, n=8, base_ts=0.0, name="SYS_write", **kw):
    events = [
        make_event(name=name, ts=base_ts + i * 0.01, rank=rank,
                   offset=i * 4096, **kw)
        for i in range(n)
    ]
    return TraceFile(events, hostname="host%02d" % rank, pid=100 + rank,
                     rank=rank, framework="lanl-trace")


def make_bundle(nranks=2, n=8, **kw):
    return TraceBundle(
        files={r: make_trace_file(rank=r, n=n, **kw) for r in range(nranks)},
        metadata={"framework": "lanl-trace", "workload": "unit"},
    )
