"""Mixed-codec archives: v1 and v2 segments living side by side.

Readers sniff the codec per blob, so one archive can hold row-major and
columnar runs simultaneously — and every maintenance and query path must
treat them uniformly: verify checks both, gc keeps both, queries and
DFGs return byte-identical reports regardless of which codec (or mix)
produced the events, the job count, or manifest-cache temperature.
"""

import json

import pytest

from storeutil import make_bundle, make_trace_file

from repro.errors import StoreError
from repro.obs.metrics import canonical_json
from repro.store import Query, TraceBank, run_query
from repro.store.dfg import build_dfg
from repro.store.segments import decode_segment, encode_segment, segment_codec
from repro.trace.records import TraceBundle


def mixed_bank(tmp_path):
    """An archive holding the same logical bundle under both codecs."""
    bank = TraceBank(tmp_path / "store")
    r1 = bank.ingest_bundle(make_bundle(nranks=3, n=24), codec="v1")
    r2 = bank.ingest_bundle(make_bundle(nranks=3, n=24), codec="v2")
    return bank, r1, r2


def normalized(report, run_id):
    """A query report with its run-id references scrubbed for comparison."""
    rep = json.loads(json.dumps(report))
    rep["query"]["runs"] = None
    events = rep.get("result", {}).get("events")
    if events is not None:
        for row in events:
            assert row.pop("run") == run_id
    return rep


class TestCodecSelection:
    def test_encode_segment_dispatches_on_codec(self):
        tf = make_trace_file(n=6)
        blob1, sha1 = encode_segment(tf, codec="v1")
        blob2, sha2 = encode_segment(tf, codec="v2")
        assert segment_codec(blob1) == "v1"
        assert segment_codec(blob2) == "v2"
        assert sha1 != sha2  # different bytes, different identity
        assert decode_segment(blob1).events == decode_segment(blob2).events

    def test_unknown_codec_rejected(self):
        with pytest.raises(StoreError):
            encode_segment(make_trace_file(n=1), codec="v3")

    def test_manifest_format_key_only_for_v2(self, tmp_path):
        bank, r1, r2 = mixed_bank(tmp_path)
        assert "format" not in bank.manifest(r1.run_id).codec
        assert bank.manifest(r2.run_id).codec["format"] == "v2"

    def test_same_bundle_under_both_codecs_is_two_runs(self, tmp_path):
        _bank, r1, r2 = mixed_bank(tmp_path)
        assert r1.run_id != r2.run_id
        assert r1.events == r2.events


class TestMaintenance:
    def test_verify_checks_both_codecs(self, tmp_path):
        bank, r1, r2 = mixed_bank(tmp_path)
        report = bank.verify(jobs=2)
        assert report["ok"], report["errors"]
        assert report["segments_checked"] == r1.segments + r2.segments

    def test_verify_flags_corrupt_v2_segment(self, tmp_path):
        bank, _r1, r2 = mixed_bank(tmp_path)
        sha = bank.manifest(r2.run_id).segments[0].sha256
        path = bank.segment_path(sha)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        report = bank.verify()
        assert not report["ok"]
        assert any(e["sha256"] == sha for e in report["errors"])

    def test_gc_keeps_referenced_segments_of_both_codecs(self, tmp_path):
        bank, r1, r2 = mixed_bank(tmp_path)
        report = bank.gc()
        assert report["removed_segments"] == []
        assert report["kept_segments"] == r1.segments + r2.segments

    def test_gc_collects_orphaned_v2_run(self, tmp_path):
        bank, r1, r2 = mixed_bank(tmp_path)
        bank.manifest_path(r2.run_id).unlink()
        report = bank.gc(tmp_ttl_seconds=0.0)
        assert len(report["removed_segments"]) == r2.segments
        assert bank.verify()["ok"]
        assert {s.sha256 for s in bank.manifest(r1.run_id).segments} == set(
            bank.disk_segments()
        )


QUERIES = (
    Query.create(agg="ops"),
    Query.create(agg="bytes"),
    Query.create(agg="bandwidth", window=0.02),
    Query.create(agg="events", limit=40),
    Query.create(agg="ops", names=["SYS_write"], ranks=[0, 2]),
    Query.create(agg="events", since=0.05, until=0.2),
    Query.create(agg="events", path_glob="/pfs/*"),
    Query.create(agg="ops", layers=["syscall"]),
    Query.create(agg="ops", names=["not_present"]),
)


class TestCrossCodecIdentity:
    @pytest.mark.parametrize("query", QUERIES, ids=lambda q: canonical_json(q.echo())[:48])
    def test_reports_identical_across_codecs_and_jobs(self, tmp_path, query):
        from dataclasses import replace

        bank, r1, r2 = mixed_bank(tmp_path)
        via_v1 = normalized(
            run_query(bank, replace(query, runs=(r1.run_id,)), jobs=1), r1.run_id
        )
        for jobs in (1, 3):
            via_v2 = normalized(
                run_query(bank, replace(query, runs=(r2.run_id,)), jobs=jobs),
                r2.run_id,
            )
            assert canonical_json(via_v2) == canonical_json(via_v1)

    def test_dfg_identical_across_codecs(self, tmp_path):
        bank, r1, r2 = mixed_bank(tmp_path)
        d1 = build_dfg(bank, Query.create(runs=[r1.run_id]))
        d2 = build_dfg(bank, Query.create(runs=[r2.run_id]), jobs=3)
        d1["query"]["runs"] = d2["query"]["runs"] = None
        assert canonical_json(d1) == canonical_json(d2)

    def test_cold_and_warm_manifest_cache_agree(self, tmp_path):
        bank, _r1, r2 = mixed_bank(tmp_path)
        q = Query.create(agg="ops", runs=[r2.run_id])
        warm = run_query(bank, q)
        (bank.root / "index.json").unlink(missing_ok=True)
        cold = run_query(TraceBank(bank.root, create=False), q)
        assert canonical_json(cold) == canonical_json(warm)

    def test_load_run_bundle_lossless_for_v2(self, tmp_path):
        bank, _r1, r2 = mixed_bank(tmp_path)
        want = make_bundle(nranks=3, n=24)
        got = bank.load_run_bundle(r2.run_id)
        assert sorted(got.files) == sorted(want.files)
        for rank in want.files:
            assert got.files[rank].events == want.files[rank].events

    def test_header_pushdown_prunes_but_never_changes_answers(self, tmp_path):
        # A query whose name filter misses every v2 segment: the columnar
        # path answers from the header alone; the report must still match
        # the v1 scan shapes (zero matches, full shard accounting).
        bank, r1, r2 = mixed_bank(tmp_path)
        from dataclasses import replace

        q = Query.create(agg="bytes", names=["never_recorded"])
        a = run_query(bank, replace(q, runs=(r1.run_id,)))
        b = run_query(bank, replace(q, runs=(r2.run_id,)))
        a["query"]["runs"] = b["query"]["runs"] = None
        assert canonical_json(a) == canonical_json(b)
        assert b["scan"]["events_matched"] == 0


class TestSweepCodecPlumbing:
    def test_run_spec_codec_reaches_the_archive(self, tmp_path):
        from repro.harness.parallel import RunSpec, ingest_spec_bundle

        spec = RunSpec.create(
            "lanl-trace",
            "mpi_io_test",
            {"block_size": 4096},
            store=str(tmp_path / "store"),
            store_codec="v2",
        )
        bundle = TraceBundle(files={0: make_trace_file(n=4)})
        run_id = ingest_spec_bundle(spec, bundle)
        bank = TraceBank(tmp_path / "store", create=False)
        assert bank.manifest(run_id).codec["format"] == "v2"
        sha = bank.manifest(run_id).segments[0].sha256
        assert segment_codec(bank.read_segment_blob(sha)) == "v2"

    def test_cache_key_widens_only_for_v2(self):
        from repro.harness.parallel import RunSpec
        from repro.harness.runcache import spec_key

        base = dict(workload="mpi_io_test", workload_args={"block_size": 1})
        plain = RunSpec.create("lanl-trace", **base)
        v1 = RunSpec.create("lanl-trace", store=".s", **base)
        v1_explicit = RunSpec.create(
            "lanl-trace", store=".s", store_codec="v1", **base
        )
        v2 = RunSpec.create("lanl-trace", store=".s", store_codec="v2", **base)
        assert spec_key(v1) == spec_key(v1_explicit)  # default never widens
        assert spec_key(v2) != spec_key(v1)
        assert spec_key(plain) != spec_key(v1)
