"""telemetry_view: archived TraceBank runs as diffable telemetry payloads."""

import pytest

from storeutil import make_bundle

from repro.errors import StoreError
from repro.obs.compare import compare_payloads
from repro.obs.critpath import critical_path, flamegraph_lines
from repro.obs.metrics import canonical_json
from repro.obs.perfetto import validate_chrome_trace
from repro.store import TraceBank, telemetry_view


@pytest.fixture
def bank(tmp_path):
    return TraceBank(tmp_path / "store")


class TestTelemetryView:
    def test_view_is_a_valid_payload(self, bank):
        run_id = bank.ingest_bundle(make_bundle(nranks=2, n=8)).run_id
        payload = telemetry_view(bank, run_id)
        assert payload["schema"] == "repro/telemetry/v1"
        validate_chrome_trace(payload["trace"])
        assert payload["source"] == {"kind": "store", "run_id": run_id}
        counters = payload["metrics"]["counters"]
        assert counters["os.calls.syscall"] == 16
        assert counters["os.syscall.SYS_write"] == 16
        hists = payload["metrics"]["histograms"]
        assert hists["os.call_seconds"]["count"] == 16
        assert hists["os.io_request_bytes"]["count"] == 16

    def test_prefix_addressing_and_unknown_prefix(self, bank):
        run_id = bank.ingest_bundle(make_bundle()).run_id
        assert telemetry_view(bank, run_id[:8]) == telemetry_view(bank, run_id)
        with pytest.raises(StoreError):
            telemetry_view(bank, "zzzzzzzz")

    def test_view_is_deterministic(self, bank):
        run_id = bank.ingest_bundle(make_bundle(nranks=3, n=4)).run_id
        assert canonical_json(telemetry_view(bank, run_id)) == canonical_json(
            telemetry_view(bank, run_id)
        )

    def test_views_feed_the_observatory(self, bank):
        small = bank.ingest_bundle(make_bundle(nranks=2, n=4)).run_id
        large = bank.ingest_bundle(make_bundle(nranks=2, n=8)).run_id
        diff = compare_payloads(
            telemetry_view(bank, small), telemetry_view(bank, large)
        )
        assert diff["a"]["n_spans"] == 8
        assert diff["b"]["n_spans"] == 16
        rows = {r["name"]: r for r in diff["counters"]}
        assert rows["os.calls.syscall"]["delta"] == 8
        report = critical_path(telemetry_view(bank, large))
        assert report["straggler"] is not None
        assert report["layers"].get("simfs", 0.0) > 0.0  # SYS_write data path
        assert flamegraph_lines(telemetry_view(bank, large))

    def test_each_rank_gets_its_own_track(self, bank):
        run_id = bank.ingest_bundle(make_bundle(nranks=3, n=2)).run_id
        report = critical_path(telemetry_view(bank, run_id))
        assert len(report["tracks"]) == 3
        assert sorted(t["rank"] for t in report["tracks"]) == [0, 1, 2]
        for t in report["tracks"]:
            assert "host%02d" % t["rank"] in t["track"]
