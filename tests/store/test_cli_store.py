"""End-to-end CLI coverage for the ``repro store`` command family."""

import json

import pytest

from storeutil import make_trace_file

from repro.cli import main
from repro.faults.corrupt import bit_flip
from repro.store import TraceBank
from repro.trace.binary_format import encode_trace_file


@pytest.fixture
def store_with_run(tmp_path):
    """A store dir holding one 2-rank manual ingest, built via the CLI."""
    store = tmp_path / "bank"
    traces = []
    for rank in (0, 1):
        p = tmp_path / ("r%d.rtb" % rank)
        p.write_bytes(encode_trace_file(make_trace_file(rank=rank, n=6)))
        traces.append(str(p))
    assert main(["store", "ingest", "--store", str(store)] + traces) == 0
    return store


class TestIngestAndLs:
    def test_ingest_prints_dedup_counts(self, tmp_path, capsys):
        store = tmp_path / "bank"
        p = tmp_path / "t.rtb"
        p.write_bytes(encode_trace_file(make_trace_file(n=4)))
        assert main(["store", "ingest", "--store", str(store), str(p)]) == 0
        out = capsys.readouterr().out
        assert "1 segment(s) (1 new, 0 deduped), 4 event(s)" in out
        # Second identical ingest: nothing new lands on disk.
        assert main(["store", "ingest", "--store", str(store), str(p)]) == 0
        assert "(0 new, 1 deduped)" in capsys.readouterr().out

    def test_ls_lists_runs(self, store_with_run, capsys):
        assert main(["store", "ls", "--store", str(store_with_run)]) == 0
        out = capsys.readouterr().out
        assert "TraceBank archive: 1 run(s), 12 event(s)" in out
        assert "manual" in out

    def test_missing_store_is_an_error_not_a_traceback(self, tmp_path, capsys):
        rc = main(["store", "ls", "--store", str(tmp_path / "nope")])
        assert rc == 1
        assert "error:" in capsys.readouterr().err


class TestQueryAndDfg:
    def test_ops_text_table(self, store_with_run, capsys):
        assert main(["store", "query", "--store", str(store_with_run)]) == 0
        out = capsys.readouterr().out
        assert "Function Name" in out
        assert "SYS_write" in out
        assert "12 event(s)" in out

    def test_json_report_with_filters(self, store_with_run, capsys):
        rc = main(
            ["store", "query", "--store", str(store_with_run),
             "--agg", "bytes", "--ranks", "1", "--json"]
        )
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["schema"] == "repro/store/query/v1"
        assert report["result"]["ranks"] == {"1": {"events": 6, "bytes": 6 * 4096}}

    def test_jobs_flag_byte_identical(self, store_with_run, capsys):
        args = ["store", "query", "--store", str(store_with_run),
                "--agg", "events", "--json"]
        assert main(args) == 0
        serial = capsys.readouterr().out
        assert main(args + ["--jobs", "4"]) == 0
        assert capsys.readouterr().out == serial

    def test_bad_where_is_a_clean_error(self, store_with_run, capsys):
        rc = main(["store", "query", "--store", str(store_with_run),
                   "--where", "malformed"])
        assert rc == 1
        assert "key=value" in capsys.readouterr().err

    def test_dfg_text_and_dot(self, store_with_run, capsys):
        assert main(["store", "dfg", "--store", str(store_with_run)]) == 0
        assert "directly-follows graph" in capsys.readouterr().out
        assert main(["store", "dfg", "--store", str(store_with_run), "--dot"]) == 0
        assert capsys.readouterr().out.startswith("digraph dfg {")


class TestVerifyAndGc:
    def test_verify_ok_exit_zero(self, store_with_run, capsys):
        assert main(["store", "verify", "--store", str(store_with_run)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_verify_corrupt_exit_one(self, store_with_run, capsys):
        bank = TraceBank(store_with_run, create=False)
        sha = bank.disk_segments()[0]
        path = bank.segment_path(sha)
        path.write_bytes(bit_flip(path.read_bytes(), 5))
        assert main(["store", "verify", "--store", str(store_with_run)]) == 1
        assert "CORRUPT" in capsys.readouterr().out

    def test_gc_dry_run_then_real(self, store_with_run, capsys):
        bank = TraceBank(store_with_run, create=False)
        run_id = bank.run_ids()[0]
        bank.manifest_path(run_id).unlink()
        assert main(["store", "gc", "--store", str(store_with_run),
                     "--dry-run", "--ttl-seconds", "0"]) == 0
        assert "would remove 2 unreferenced" in capsys.readouterr().out
        assert main(["store", "gc", "--store", str(store_with_run),
                     "--ttl-seconds", "0"]) == 0
        assert "removed 2 unreferenced" in capsys.readouterr().out
        assert bank.disk_segments() == []

    def test_gc_default_ttl_keeps_fresh_orphans(self, store_with_run, capsys):
        bank = TraceBank(store_with_run, create=False)
        bank.manifest_path(bank.run_ids()[0]).unlink()
        assert main(["store", "gc", "--store", str(store_with_run)]) == 0
        out = capsys.readouterr().out
        assert "removed 0 unreferenced" in out
        assert "2 fresh unreferenced segment(s) kept" in out
        assert len(bank.disk_segments()) == 2


class TestSweepIntegration:
    def test_figure_store_flag_archives_and_queries(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["figure", "2", "--quick", "--store"]) == 0
        out = capsys.readouterr().out
        assert "archived 2 run(s) into the trace store" in out
        assert (tmp_path / ".repro-store" / "STORE.json").is_file()
        assert main(["store", "verify"]) == 0
        assert "OK" in capsys.readouterr().out
        assert main(["store", "query"]) == 0
        assert "Function Name" in capsys.readouterr().out

    def test_observe_and_summarize_on_store_dir(self, store_with_run, capsys):
        assert main(["observe", str(store_with_run)]) == 0
        assert "TraceBank archive" in capsys.readouterr().out
        assert main(["summarize", str(store_with_run)]) == 0
        out = capsys.readouterr().out
        assert "store-backed summary" in out and "SYS_write" in out
