"""verify/gc vs in-flight atomic writes: ``*.tmp`` files are not damage.

A concurrent ingest lands each segment/manifest through ``mkstemp`` +
``os.replace``; between those two steps a ``*.tmp`` file exists in the
archive.  ``verify`` must stay clean (the entry is not corruption),
``gc`` must never unlink a *fresh* tmp (it could be a live writer), and
a *stale* tmp — the residue of a crashed writer — must eventually be
reclaimed.
"""

import os

import pytest

from repro.errors import StoreError
from repro.store import TraceBank
from storeutil import make_bundle


def _plant_tmps(bank):
    seg_shard = bank.segments_dir / "ab"
    seg_shard.mkdir(parents=True, exist_ok=True)
    seg_tmp = seg_shard / "tmp_inflight.tmp"
    seg_tmp.write_bytes(b"partial segment bytes")
    man_tmp = bank.manifests_dir / "tmp_inflight.tmp"
    man_tmp.write_bytes(b'{"half": ')
    return seg_tmp, man_tmp


class TestVerifyWithInFlightTmp:
    def test_verify_clean_and_counts_tmp(self, tmp_path):
        bank = TraceBank(tmp_path / "bank")
        bank.ingest_bundle(make_bundle())
        _plant_tmps(bank)
        report = bank.verify()
        assert report["ok"], report["errors"]
        assert report["orphan_segments"] == []
        assert report["in_flight_tmp"] == 2

    def test_tmp_invisible_to_disk_listing_and_stats(self, tmp_path):
        bank = TraceBank(tmp_path / "bank")
        result = bank.ingest_bundle(make_bundle())
        _plant_tmps(bank)
        assert len(bank.disk_segments()) == result.segments
        assert bank.stats()["orphan_segments"] == 0


class TestGcWithInFlightTmp:
    def test_fresh_tmp_survives_gc(self, tmp_path):
        bank = TraceBank(tmp_path / "bank")
        bank.ingest_bundle(make_bundle())
        seg_tmp, man_tmp = _plant_tmps(bank)
        report = bank.gc()
        assert report["removed_segments"] == []
        assert report["removed_tmp_files"] == []
        assert seg_tmp.exists() and man_tmp.exists()

    def test_stale_tmp_reclaimed(self, tmp_path):
        bank = TraceBank(tmp_path / "bank")
        bank.ingest_bundle(make_bundle())
        seg_tmp, man_tmp = _plant_tmps(bank)
        ancient = 1_000_000.0
        for p in (seg_tmp, man_tmp):
            os.utime(p, (ancient, ancient))
        dry = bank.gc(dry_run=True)
        assert len(dry["removed_tmp_files"]) == 2
        assert seg_tmp.exists() and man_tmp.exists()
        report = bank.gc()
        assert sorted(report["removed_tmp_files"]) == sorted(dry["removed_tmp_files"])
        assert not seg_tmp.exists() and not man_tmp.exists()
        assert bank.verify()["in_flight_tmp"] == 0

    def test_tmp_ttl_zero_reclaims_immediately(self, tmp_path):
        bank = TraceBank(tmp_path / "bank")
        bank.ingest_bundle(make_bundle())
        seg_tmp, _ = _plant_tmps(bank)
        report = bank.gc(tmp_ttl_seconds=0.0)
        assert len(report["removed_tmp_files"]) == 2
        assert not seg_tmp.exists()

    def test_gc_keeps_live_segments_with_tmp_present(self, tmp_path):
        bank = TraceBank(tmp_path / "bank")
        result = bank.ingest_bundle(make_bundle())
        _plant_tmps(bank)
        report = bank.gc(tmp_ttl_seconds=0.0)
        assert report["removed_segments"] == []
        assert report["kept_segments"] == result.segments
        assert bank.verify()["ok"]


class TestGcFreshSegmentGrace:
    """An unreferenced ``.seg`` may belong to an in-flight ingest whose
    manifest has not landed yet; default gc must grant it the same
    ``tmp_ttl_seconds`` grace as tmp files."""

    def test_fresh_unreferenced_segment_survives_default_gc(self, tmp_path):
        bank = TraceBank(tmp_path / "bank")
        drop = bank.ingest_bundle(make_bundle())
        bank.manifest_path(drop.run_id).unlink()
        bank.index.invalidate()
        report = bank.gc()
        assert report["removed_segments"] == []
        assert report["kept_fresh_segments"] == 2
        assert len(bank.disk_segments()) == 2

    def test_aged_unreferenced_segment_is_reclaimed(self, tmp_path):
        bank = TraceBank(tmp_path / "bank")
        drop = bank.ingest_bundle(make_bundle())
        bank.manifest_path(drop.run_id).unlink()
        bank.index.invalidate()
        ancient = 1_000_000.0
        for sha in bank.disk_segments():
            os.utime(bank.segment_path(sha), (ancient, ancient))
        report = bank.gc()
        assert len(report["removed_segments"]) == 2
        assert report["kept_fresh_segments"] == 0
        assert bank.disk_segments() == []
        assert bank.verify()["ok"]
