"""Zoo matrix: determinism contract, signature checks, and bench points."""

import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidArgument
from repro.harness.runcache import RunCache
from repro.obs.baseline import METRIC_SPECS, make_record
from repro.obs.metrics import canonical_json
from repro.zoo import (
    ZOO_SCHEMA,
    bench_points,
    build_zoo_specs,
    check_signature,
    get,
    names,
    render_zoo_report,
    run_zoo_matrix,
)


def _rows(**kw):
    return canonical_json(run_zoo_matrix(smoke=True, **kw)["rows"])


class TestMatrixShape:
    def test_smoke_matrix_runs_every_scenario(self):
        report = run_zoo_matrix(smoke=True, jobs=2)
        assert report["schema"] == ZOO_SCHEMA
        assert [r["scenario"] for r in report["rows"]] == names()
        assert report["summary"]["completed"] == len(names())
        assert all(r["error"] is None for r in report["rows"])

    def test_rows_are_clock_free(self):
        report = run_zoo_matrix(scenarios=["md-storm"], smoke=True)
        row = report["rows"][0]
        assert "wall_seconds" not in row
        assert "wall_seconds" in report["execution"]

    def test_scenario_selection(self):
        report = run_zoo_matrix(scenarios=["ml-epoch"], smoke=True)
        assert [r["scenario"] for r in report["rows"]] == ["ml-epoch"]

    def test_unknown_scenario_rejected(self):
        with pytest.raises(InvalidArgument):
            run_zoo_matrix(scenarios=["nope"], smoke=True)

    def test_empty_selection_rejected(self):
        with pytest.raises(InvalidArgument):
            build_zoo_specs(scenarios=[])

    def test_replay_check_requires_store(self):
        with pytest.raises(InvalidArgument, match="store"):
            run_zoo_matrix(smoke=True, replay_check=True)

    def test_render_lists_every_scenario(self):
        text = render_zoo_report(run_zoo_matrix(smoke=True, jobs=2))
        for name in names():
            assert name in text


class TestByteIdentity:
    """The determinism contract: rows are pure functions of (spec, seed)."""

    @settings(max_examples=3, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_rows_identical_across_jobs_and_cache(self, seed):
        reference = _rows(seed=seed, jobs=1)
        assert _rows(seed=seed, jobs=4) == reference
        with tempfile.TemporaryDirectory() as d:
            cache = RunCache(Path(d) / "cache")
            assert _rows(seed=seed, jobs=2, cache=cache) == reference  # cold
            assert _rows(seed=seed, jobs=1, cache=cache) == reference  # warm

    def test_archived_rows_identical_including_fidelity(self, tmp_path):
        # Run ids are content-derived, so even with archiving + replay
        # check the whole row — fidelity verdict included — is stable.
        a = canonical_json(
            run_zoo_matrix(
                smoke=True, jobs=1, store=str(tmp_path / "a"), replay_check=True
            )["rows"]
        )
        b = canonical_json(
            run_zoo_matrix(
                smoke=True, jobs=4, store=str(tmp_path / "b"), replay_check=True
            )["rows"]
        )
        assert a == b


class TestSignatureCheck:
    def _profile(self, read=(0, 0), write=(0, 0), metadata=(0, 0)):
        classes = {
            "read": {"count": read[0], "bytes": read[1]},
            "write": {"count": write[0], "bytes": write[1]},
            "metadata": {"count": metadata[0], "bytes": metadata[1]},
        }
        return {
            "classes": classes,
            "total_ops": sum(c["count"] for c in classes.values()),
            "total_bytes": sum(c["bytes"] for c in classes.values()),
        }

    def test_write_dominant_ok(self):
        profile = self._profile(write=(4, 4096), read=(1, 512), metadata=(2, 0))
        assert check_signature(get("ckpt-tiered"), profile) == []

    def test_missing_payload_is_a_violation(self):
        violations = check_signature(get("ckpt-tiered"), self._profile(metadata=(3, 0)))
        assert any("saw none" in v for v in violations)

    def test_wrong_dominance_is_a_violation(self):
        profile = self._profile(write=(1, 100), read=(9, 9000))
        violations = check_signature(get("ckpt-tiered"), profile)
        assert any("write-dominant" in v for v in violations)

    def test_metadata_storm_must_not_move_payload(self):
        profile = self._profile(metadata=(10, 0), write=(1, 4096))
        violations = check_signature(get("md-storm"), profile)
        assert any("zero payload" in v for v in violations)

    def test_metadata_dominance_required(self):
        profile = self._profile(metadata=(2, 0), read=(5, 0))
        violations = check_signature(get("md-storm"), profile)
        assert any("metadata-dominant" in v for v in violations)

    def test_all_live_scenarios_match_their_signatures(self, tmp_path):
        report = run_zoo_matrix(smoke=True, jobs=4, store=str(tmp_path / "bank"))
        assert report["summary"]["signature_ok"] == len(names())
        for row in report["rows"]:
            assert row["signature"]["ok"], row["signature"]["violations"]

    def test_signature_cell_absent_without_store(self):
        report = run_zoo_matrix(scenarios=["md-storm"], smoke=True)
        assert report["rows"][0]["signature"] is None


class TestBenchPoints:
    def test_points_feed_the_baseline_gate(self, tmp_path):
        report = run_zoo_matrix(
            smoke=True, jobs=2, store=str(tmp_path / "bank"), replay_check=True
        )
        points = bench_points(report)
        assert [p["figure"] for p in points] == ["zoo/%s" % n for n in names()]
        for p in points:
            assert p["block_size"] == 0
            assert p["zoo_replay_events_per_sec"] > 0
        # and the gate's history format accepts them as a record
        record = make_record(points, quick=True, nprocs=4, jobs=2)
        assert "zoo_replay_events_per_sec" in METRIC_SPECS
        assert record["points"] == points

    def test_no_replay_rate_without_replay_check(self):
        points = bench_points(run_zoo_matrix(scenarios=["md-storm"], smoke=True))
        assert "zoo_replay_events_per_sec" not in points[0]
