"""CLI wiring for the zoo command family: ls/describe/run/matrix/replay."""

import json

import pytest

from repro.cli import main
from repro.zoo import names

STRACE_LINES = """\
101 1700000000.000010 openat(AT_FDCWD, "/data/out.bin", O_WRONLY|O_CREAT, 0644) = 3 <0.000030>
101 1700000000.000100 write(3, "a"..., 4096) = 4096 <0.000020>
101 1700000000.000300 close(3) = 0 <0.000005>
"""


class TestZooListing:
    def test_ls_shows_every_scenario(self, capsys):
        assert main(["zoo", "ls"]) == 0
        out = capsys.readouterr().out
        for name in names():
            assert name in out

    def test_describe_text(self, capsys):
        assert main(["zoo", "describe", "ml-epoch"]) == 0
        out = capsys.readouterr().out
        assert "shuffle_seed" in out and "read" in out

    def test_describe_json(self, capsys):
        assert main(["zoo", "describe", "md-storm", "--json"]) == 0
        desc = json.loads(capsys.readouterr().out)
        assert desc["workload"] == "zoo_metadata_storm"
        assert desc["signature"] == {"dominant": "metadata", "payload": False}

    def test_describe_unknown_fails(self, capsys):
        assert main(["zoo", "describe", "nope"]) == 1
        assert "unknown zoo scenario" in capsys.readouterr().err


class TestZooRun:
    def test_single_scenario_smoke(self, capsys):
        assert main(["zoo", "run", "md-storm", "--smoke"]) == 0
        assert "md-storm" in capsys.readouterr().out


class TestZooMatrix:
    def test_full_smoke_loop(self, tmp_path, capsys):
        """The acceptance command: matrix → archive → replay → bench."""
        store = tmp_path / "bank"
        bench = tmp_path / "BENCH_zoo.json"
        report_path = tmp_path / "zoo.json"
        rc = main(
            [
                "zoo", "matrix", "--smoke", "--jobs", "2",
                "--store", str(store), "--replay-check",
                "--bench-out", str(bench), "--report-out", str(report_path),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert out.count("exact") >= len(names())

        report = json.loads(report_path.read_text())
        assert report["summary"]["replay_exact"] == len(names())
        assert report["summary"]["signature_ok"] == len(names())

        points = json.loads(bench.read_text())["points"]
        assert len(points) == len(names())
        assert all(p["zoo_replay_events_per_sec"] > 0 for p in points)

        # and the archive replays standalone, by run-id prefix
        run_id = report["rows"][0]["store_run_id"]
        rc = main(
            [
                "zoo", "replay", run_id[:10],
                "--store", str(store), "--require-exact",
            ]
        )
        assert rc == 0
        assert "exact: yes" in capsys.readouterr().out

    def test_scenario_subset(self, capsys):
        assert main(["zoo", "matrix", "--smoke", "--scenarios", "md-storm"]) == 0
        out = capsys.readouterr().out
        assert "md-storm" in out and "ml-epoch" not in out


class TestZooReplay:
    def test_strace_file_replay(self, tmp_path, capsys):
        path = tmp_path / "cap.strace"
        path.write_text(STRACE_LINES)
        assert main(["zoo", "replay", str(path), "--require-exact"]) == 0
        out = capsys.readouterr().out
        assert "exact: yes" in out

    def test_missing_source_fails_cleanly(self, tmp_path, capsys):
        assert main(["zoo", "replay", str(tmp_path / "nope")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_report_out(self, tmp_path):
        path = tmp_path / "cap.strace"
        path.write_text(STRACE_LINES)
        out_path = tmp_path / "fid.json"
        assert main(
            ["zoo", "replay", str(path), "--report-out", str(out_path)]
        ) == 0
        report = json.loads(out_path.read_text())
        assert report["schema"] == "repro/replay/fidelity/v1"
        assert report["exact"] is True
