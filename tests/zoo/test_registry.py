"""Zoo scenario registry: lookup, arg merging, and RunSpec lowering."""

import pytest

from repro.errors import InvalidArgument
from repro.harness.parallel import WORKLOADS
from repro.obs.metrics import canonical_json
from repro.units import KiB
from repro.zoo import SCENARIOS, ZOO_NPROCS, ZooScenario, get, names, register


class TestRegistry:
    def test_builtins_are_registered_in_order(self):
        assert names() == ["ckpt-tiered", "ml-epoch", "log-append", "md-storm"]

    def test_every_scenario_workload_is_runnable(self):
        # The pickle-safe harness contract: process-pool workers resolve
        # workloads by registry name, so every zoo workload must be there.
        for sc in SCENARIOS.values():
            assert sc.workload in WORKLOADS

    def test_get_unknown_lists_known_names(self):
        with pytest.raises(InvalidArgument, match="ckpt-tiered"):
            get("no-such-scenario")

    def test_register_rejects_duplicate_name(self):
        with pytest.raises(InvalidArgument, match="already registered"):
            register(SCENARIOS["md-storm"])

    def test_register_rejects_unknown_workload(self):
        with pytest.raises(InvalidArgument, match="unregistered workload"):
            register(
                ZooScenario(
                    name="bogus",
                    title="t",
                    description="d",
                    workload="not_a_workload",
                )
            )

    def test_register_and_lookup_round_trip(self):
        sc = ZooScenario(
            name="tmp-test-scenario",
            title="t",
            description="d",
            workload="zoo_metadata_storm",
        )
        try:
            assert register(sc) is sc
            assert get("tmp-test-scenario") is sc
        finally:
            SCENARIOS.pop("tmp-test-scenario")


class TestScenarioArgs:
    def test_base_args_at_full_scale(self):
        sc = get("ml-epoch")
        args = sc.args(smoke=False)
        assert args["samples_per_rank"] == 96
        assert args["block_size"] == 128 * KiB

    def test_smoke_overrides_base(self):
        sc = get("ml-epoch")
        args = sc.args(smoke=True)
        assert args["samples_per_rank"] == 8
        # keys the smoke set does not mention keep their base values
        assert args["shuffle_seed"] == 0

    def test_explicit_overrides_win(self):
        args = get("md-storm").args(smoke=True, overrides={"n_files": 3})
        assert args["n_files"] == 3
        assert args["subdirs"] == 2

    def test_args_returns_a_fresh_dict(self):
        sc = get("log-append")
        sc.args()["segments"] = 999
        assert sc.args()["segments"] == 6


class TestSpecLowering:
    def test_spec_carries_scenario_shape(self):
        spec = get("ckpt-tiered").spec(seed=7, smoke=True)
        assert spec.nprocs == ZOO_NPROCS
        assert spec.seed == 7
        assert spec.framework.name == "lanl-trace"
        assert spec.workload == "zoo_checkpoint_tiered"
        assert spec.args_dict()["phases"] == 2

    def test_spec_framework_override(self):
        spec = get("md-storm").spec(framework="ptrace")
        assert spec.framework.name == "ptrace"

    def test_describe_is_canonical_json(self):
        for sc in SCENARIOS.values():
            desc = sc.describe()
            assert canonical_json(desc)  # serializable, no exotic types
            assert desc["signature"] == sc.signature_dict()
            assert set(desc["param_space"]) >= set(dict(sc.smoke_args))
