"""Replay pipeline: capture → archive → replay round trips, all sources."""

import pytest

from repro.errors import ReplayError
from repro.harness.parallel import run_sweep
from repro.obs.metrics import canonical_json
from repro.replay.pseudoapp import build_pseudoapp
from repro.replay.fidelity import OP_CLASSES, schedule_profile
from repro.store.bank import TraceBank
from repro.trace.events import EventLayer, TraceEvent
from repro.trace.records import TraceFile
from repro.trace.text_format import encode_trace_file
from repro.zoo import (
    choose_layer,
    get,
    load_source,
    render_fidelity_report,
    replay_pipeline,
    source_elapsed,
)

STRACE = """\
101 1700000000.000010 openat(AT_FDCWD, "/data/out.bin", O_WRONLY|O_CREAT, 0644) = 3 <0.000030>
101 1700000000.000100 write(3, "a"..., 4096) = 4096 <0.000020>
101 1700000000.000200 pwrite64(3, "b"..., 4096, 4096) = 4096 <0.000020>
101 1700000000.000300 fsync(3) = 0 <0.000100>
101 1700000000.000500 close(3) = 0 <0.000005>
102 1700000000.000600 openat(AT_FDCWD, "/data/in.bin", O_RDONLY) = 4 <0.000020>
102 1700000000.000700 read(4, ""..., 8192) = 8192 <0.000030>
102 1700000000.000800 close(4) = 0 <0.000004>
"""


@pytest.fixture(scope="module")
def archive(tmp_path_factory):
    """One archived smoke run of the log-append scenario in a TraceBank."""
    store = str(tmp_path_factory.mktemp("zoo") / "bank")
    spec = get("log-append").spec(smoke=True, store=store)
    result = run_sweep([spec])
    point = result.points[0]
    assert point.error is None and point.store_run_id
    return store, point.store_run_id


class TestArchivedRoundTrip:
    """The acceptance loop: trace a scenario, archive it, replay the
    archive, and get the op schedule back exactly — counts and bytes."""

    def test_afap_replay_is_exact(self, archive):
        store, run_id = archive
        report = replay_pipeline([run_id], store=store, timing="afap")
        assert report["exact"] is True
        assert report["replay"]["timing"] == "afap"
        assert report["source"]["unreplayable"] == {}
        assert report["replay"]["profile"]["skipped"] == {}
        for cls in OP_CLASSES:
            row = report["per_class"][cls]
            assert row["count_delta"] == 0 and row["byte_delta"] == 0
        # a log-append run moves real payload, and the replay issued
        # exactly the bytes the schedule scripted
        assert report["per_class"]["write"]["source_bytes"] > 0
        assert (
            report["replay"]["profile"]["total_bytes"]
            == report["source"]["profile"]["total_bytes"]
        )

    def test_replay_report_matches_archived_schedule(self, archive):
        # The report's source side is exactly what compiling the archived
        # bundle yields — the archive is the single source of truth.
        store, run_id = archive
        report = replay_pipeline([run_id], store=store)
        bundle = TraceBank(store).load_run_bundle(run_id)
        profile = schedule_profile(build_pseudoapp(bundle, layer=EventLayer.SYSCALL))
        assert canonical_json(report["source"]["profile"]) == canonical_json(profile)

    def test_run_id_prefix_resolves(self, archive):
        store, run_id = archive
        report = replay_pipeline([run_id[:8]], store=store)
        assert report["resolution"]["run_id"] == run_id

    def test_timing_policy_does_not_change_the_schedule(self, archive):
        store, run_id = archive
        afap = replay_pipeline([run_id], store=store, timing="afap")
        preserve = replay_pipeline([run_id], store=store, timing="preserve")
        assert canonical_json(afap["per_class"]) == canonical_json(
            preserve["per_class"]
        )
        assert preserve["replay"]["elapsed"] >= afap["replay"]["elapsed"]

    def test_reports_are_deterministic(self, archive):
        store, run_id = archive
        a = replay_pipeline([run_id], store=store)
        b = replay_pipeline([run_id], store=store)
        assert canonical_json(a) == canonical_json(b)

    def test_unknown_timing_rejected(self, archive):
        store, run_id = archive
        with pytest.raises(ReplayError, match="timing"):
            replay_pipeline([run_id], store=store, timing="warp")

    def test_provenance_carries_store_meta(self, archive):
        store, run_id = archive
        report = replay_pipeline([run_id], store=store)
        res = report["resolution"]
        assert res["kind"] == "store"
        assert res["meta"]["workload"] == "zoo_log_append"


class TestStraceSource:
    def test_raw_strace_replays_exactly(self, tmp_path):
        path = tmp_path / "capture.strace"
        path.write_text(STRACE)
        report = replay_pipeline([str(path)])
        assert report["exact"] is True
        assert report["resolution"]["kind"] == "strace"
        assert report["resolution"]["pids"] == 2  # one rank per pid
        w = report["per_class"]["write"]
        assert w["source_count"] == w["replay_count"] == 2
        assert w["source_bytes"] == w["replay_bytes"] == 8192
        r = report["per_class"]["read"]
        assert r["source_bytes"] == r["replay_bytes"] == 8192
        # host paths were re-rooted under a simulated mount by default
        assert report["source"]["profile"]["total_bytes"] == 16384

    def test_strace_timing_span_feeds_end_to_end(self, tmp_path):
        path = tmp_path / "capture.strace"
        path.write_text(STRACE)
        report = replay_pipeline([str(path)], timing="preserve")
        assert "end_to_end" in report
        assert report["end_to_end"]["original_elapsed"] > 0

    def test_unparseable_strace_raises(self, tmp_path):
        path = tmp_path / "empty.strace"
        path.write_text("101 1700000000.0 futex(0x7f) = 0 <0.1>\n")
        # shaped like strace, but nothing replayable inside
        with pytest.raises(ReplayError, match="no replayable"):
            replay_pipeline([str(path)])


class TestLibraryTraceSource:
    def _trace_file(self, tmp_path, rank=0):
        tf = TraceFile(
            [
                TraceEvent(
                    timestamp=1.0 + i,
                    duration=0.001,
                    layer=EventLayer.SYSCALL,
                    name="SYS_pwrite64",
                    path="/pfs/replayed.out",
                    offset=i * 4096,
                    nbytes=4096,
                    result=4096,
                )
                for i in range(3)
            ],
            rank=rank,
            framework="lanl-trace",
        )
        path = tmp_path / ("rank%d.trace" % rank)
        path.write_text(encode_trace_file(tf))
        return path

    def test_text_trace_file_replays(self, tmp_path):
        report = replay_pipeline([str(self._trace_file(tmp_path))])
        assert report["exact"] is True
        assert report["resolution"]["kind"] == "trace-file"
        assert report["per_class"]["write"]["replay_bytes"] == 3 * 4096

    def test_multiple_files_become_ranks(self, tmp_path):
        paths = [str(self._trace_file(tmp_path, rank=r)) for r in (0, 1)]
        report = replay_pipeline(paths)
        assert report["source"]["nprocs"] == 2
        assert report["per_class"]["write"]["replay_bytes"] == 6 * 4096


class TestSourceResolution:
    def test_missing_source_raises(self, tmp_path):
        with pytest.raises(ReplayError, match="neither"):
            load_source([str(tmp_path / "nope.trace")])

    def test_no_sources_raises(self):
        with pytest.raises(ReplayError, match="no trace source"):
            load_source([])

    def test_store_without_archive_treats_source_as_file(self, tmp_path):
        # A store path with no STORE.json must not be auto-created.
        with pytest.raises(ReplayError, match="neither"):
            load_source(["abc123"], store=str(tmp_path / "not-a-bank"))
        assert not (tmp_path / "not-a-bank").exists()

    def test_choose_layer_prefers_syscall(self, archive):
        store, run_id = archive
        bundle = TraceBank(store).load_run_bundle(run_id)
        assert choose_layer(bundle) is EventLayer.SYSCALL

    def test_source_elapsed_prefers_metadata(self, archive):
        store, run_id = archive
        bundle = TraceBank(store).load_run_bundle(run_id)
        span = source_elapsed(bundle)
        assert span is not None and span > 0


class TestRendering:
    def test_fidelity_text_report(self, archive):
        store, run_id = archive
        text = render_fidelity_report(replay_pipeline([run_id], store=store))
        assert "exact: yes" in text
        for cls in OP_CLASSES:
            assert cls in text
