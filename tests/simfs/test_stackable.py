"""Stackable-FS transparency and hook tests."""

import pytest

from repro.des import Simulator
from repro.simfs.localfs import LocalFS
from repro.simfs.stackable import StackableFS
from repro.simfs.vfs import CallerContext, O_CREAT, O_RDONLY, O_WRONLY, VFS


class FakeNode:
    index = 0
    hostname = "n0"

    def now_local(self):
        return 0.0


def ctx():
    return CallerContext(node=FakeNode(), pid=1, uid=1000, user="t")


class RecordingLayer(StackableFS):
    """Test double: records hook invocations and charges fixed time."""

    def __init__(self, sim, lower, cost=1e-3):
        super().__init__(sim, lower)
        self.calls = []
        self.cost = cost

    def before_op(self, ctx, op, args):
        self.calls.append(("before", op))
        yield self.sim.timeout(self.cost)

    def after_op(self, ctx, op, args, result, duration):
        self.calls.append(("after", op, result))
        yield self.sim.timeout(self.cost)


def make_stack():
    sim = Simulator()
    lower = LocalFS(sim, name="lower")
    layer = RecordingLayer(sim, lower)
    return sim, lower, layer


def test_namespace_delegates_to_lower():
    sim, lower, layer = make_stack()
    assert layer.ns is lower.ns


def test_operations_pass_through_with_hooks():
    sim, lower, layer = make_stack()

    def body():
        ino = yield from layer.op_open(ctx(), "f", O_WRONLY | O_CREAT)
        yield from layer.op_write(ctx(), ino, 0, 100, stream="s")
        n = yield from layer.op_read(ctx(), ino, 0, 100, stream="s")
        return n

    assert sim.run_process(body()) == 100
    ops = [c[1] for c in layer.calls if c[0] == "before"]
    assert ops == ["open", "write", "read"]
    # lower namespace actually mutated
    assert lower.ns.lookup("f").size == 100


def test_layer_charges_time():
    sim, lower, layer = make_stack()

    def body():
        t0 = sim.now
        yield from layer.op_mkdir(ctx(), "d")
        return sim.now - t0

    with_layer = sim.run_process(body())

    sim2 = Simulator()
    lower2 = LocalFS(sim2)

    def body2():
        t0 = sim2.now
        yield from lower2.op_mkdir(ctx(), "d")
        return sim2.now - t0

    without = sim2.run_process(body2())
    assert with_layer == pytest.approx(without + 2e-3)


def test_after_hook_sees_result_and_duration():
    sim, lower, layer = make_stack()

    def body():
        ino = yield from layer.op_open(ctx(), "f", O_WRONLY | O_CREAT)
        yield from layer.op_write(ctx(), ino, 0, 42, stream="s")

    sim.run_process(body())
    after_write = [c for c in layer.calls if c[0] == "after" and c[1] == "write"]
    assert after_write == [("after", "write", 42)]


def test_mount_interposition_is_transparent_to_paths():
    sim = Simulator()
    vfs = VFS(sim)
    lower = LocalFS(sim)
    vfs.mount("/data", lower)

    def create_body():
        fs, rel = vfs.resolve("/data/hello")
        yield from fs.op_open(ctx(), rel, O_WRONLY | O_CREAT)

    sim.run_process(create_body())

    # interpose the layer over the same mount
    vfs.unmount("/data")
    layer = RecordingLayer(sim, lower)
    vfs.mount("/data", layer)

    def stat_body():
        fs, rel = vfs.resolve("/data/hello")
        st = yield from fs.op_stat(ctx(), rel)
        return st.ino

    assert sim.run_process(stat_body()) > 0
    assert ("before", "stat") in layer.calls


def test_all_forwarded_operations():
    """Every op in the protocol is forwarded (guards against drift)."""
    sim, lower, layer = make_stack()

    def body():
        yield from layer.op_mkdir(ctx(), "d")
        ino = yield from layer.op_open(ctx(), "d/f", O_WRONLY | O_CREAT)
        yield from layer.op_write(ctx(), ino, 0, 10, stream="s")
        yield from layer.op_fstat(ctx(), ino)
        yield from layer.op_truncate(ctx(), ino, 5)
        yield from layer.op_fsync(ctx(), ino)
        yield from layer.op_stat(ctx(), "d/f")
        yield from layer.op_readdir(ctx(), "d")
        yield from layer.op_rename(ctx(), "d/f", "d/g")
        yield from layer.op_statfs(ctx())
        yield from layer.op_unlink(ctx(), "d/g")

    sim.run_process(body())
    ops = {c[1] for c in layer.calls}
    assert ops == {
        "mkdir", "open", "write", "fstat", "truncate", "fsync",
        "stat", "readdir", "rename", "statfs", "unlink",
    }


def test_parallel_compatibility_mirrors_lower():
    sim = Simulator()
    lower = LocalFS(sim)  # not parallel compatible
    layer = StackableFS(sim, lower)
    assert layer.parallel_compatible == lower.parallel_compatible
