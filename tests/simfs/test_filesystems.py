"""LocalFS, NFS, and ParallelFS behaviour and timing tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import Cluster, ClusterConfig, NetworkConfig
from repro.des import Simulator
from repro.simfs.blockdev import BlockDevice, DiskParams
from repro.simfs.localfs import LocalFS, LocalFSParams
from repro.simfs.nfs import NFS, NFSParams
from repro.simfs.pfs import ParallelFS, PFSParams
from repro.simfs.raid import Raid5Geometry, Raid5Model
from repro.simfs.vfs import CallerContext, O_CREAT, O_WRONLY
from repro.units import KiB, MiB


def make_cluster(n=2):
    return Cluster(ClusterConfig(n_nodes=n, clock_skew_stddev=0, clock_drift_stddev=0))


def ctx_for(cluster, i=0, uid=1000):
    return CallerContext(node=cluster.node(i), pid=1, uid=uid, user="t")


class TestLocalFS:
    def test_device_xor_raid(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            LocalFS(
                sim,
                device=BlockDevice(sim),
                raid=Raid5Model(Raid5Geometry(4)),
            )

    def test_write_charges_device_time(self):
        cluster = make_cluster(1)
        sim = cluster.sim
        fs = LocalFS(sim, device=BlockDevice(sim, DiskParams(stream_bandwidth=60 * MiB)))
        c = ctx_for(cluster)

        def body():
            ino = yield from fs.op_open(c, "f", O_WRONLY | O_CREAT)
            t0 = sim.now
            yield from fs.op_write(c, ino, 0, 60 * MiB, stream=("f", 0))
            return sim.now - t0

        elapsed = sim.run_process(body())
        assert elapsed >= 1.0  # at least the streaming time

    def test_metadata_mutations_cost_journal(self):
        cluster = make_cluster(1)
        sim = cluster.sim
        params = LocalFSParams(meta_op_cost=10e-6, journal_cost=90e-6)
        fs = LocalFS(sim, params=params)
        c = ctx_for(cluster)

        def body():
            t0 = sim.now
            st_ = yield from fs.op_open(c, "f", O_WRONLY | O_CREAT)  # mutating
            t_open = sim.now - t0
            t0 = sim.now
            yield from fs.op_fstat(c, st_)  # read-only metadata
            t_stat = sim.now - t0
            return t_open, t_stat

        t_open, t_stat = sim.run_process(body())
        assert t_open == pytest.approx(100e-6)
        assert t_stat == pytest.approx(10e-6)

    def test_raid_backed_localfs(self):
        cluster = make_cluster(1)
        sim = cluster.sim
        fs = LocalFS(sim, raid=Raid5Model(Raid5Geometry(8, 64 * KiB)))
        c = ctx_for(cluster)

        def body():
            ino = yield from fs.op_open(c, "f", O_WRONLY | O_CREAT)
            yield from fs.op_write(c, ino, 0, 1 * MiB, stream=("f", 0))
            st_ = yield from fs.op_fstat(c, ino)
            return st_.size

        assert sim.run_process(body()) == 1 * MiB


class TestNFS:
    def test_params_validation(self):
        with pytest.raises(ValueError):
            NFSParams(wsize=0)
        with pytest.raises(ValueError):
            NFSParams(server_threads=0)

    def test_namespace_is_backing_namespace(self):
        cluster = make_cluster(1)
        nfs = NFS(cluster.sim, cluster.network)
        assert nfs.ns is nfs.backing.ns

    def test_write_chunked_into_wsize_rpcs(self):
        cluster = make_cluster(1)
        sim = cluster.sim
        nfs = NFS(cluster.sim, cluster.network, params=NFSParams(wsize=64 * KiB))
        c = ctx_for(cluster)
        before = cluster.network.messages

        def body():
            ino = yield from nfs.op_open(c, "f", O_WRONLY | O_CREAT)
            yield from nfs.op_write(c, ino, 0, 256 * KiB + 1, stream=("f", 0))

        sim.run_process(body())
        # open RPC + 5 write RPCs (4 full + 1 remainder)
        assert cluster.network.messages - before == 6

    def test_small_ops_cost_proportionally_more(self):
        def run(block):
            cluster = make_cluster(1)
            sim = cluster.sim
            nfs = NFS(sim, cluster.network)
            c = ctx_for(cluster)

            def body():
                ino = yield from nfs.op_open(c, "f", O_WRONLY | O_CREAT)
                t0 = sim.now
                total = 1 * MiB
                pos = 0
                while pos < total:
                    yield from nfs.op_write(c, ino, pos, block, stream=("f", 0))
                    pos += block
                return total / (sim.now - t0)

            return sim.run_process(body())

        bw_small = run(16 * KiB)
        bw_big = run(512 * KiB)
        assert bw_big > bw_small


class TestParallelFS:
    def test_params_validation(self):
        with pytest.raises(ValueError):
            PFSParams(n_servers=0)
        with pytest.raises(ValueError):
            PFSParams(stripe_width=0)

    def make_pfs(self, cluster, **kw):
        return ParallelFS(cluster.sim, cluster.network, PFSParams(**kw))

    def test_map_stripes_round_robin(self):
        cluster = make_cluster(1)
        pfs = self.make_pfs(cluster, n_servers=4, stripe_width=64 * KiB)
        chunks = pfs.map_stripes(0, 256 * KiB)
        assert [c[0] for c in chunks] == [0, 1, 2, 3]
        assert all(c[2] == 64 * KiB for c in chunks)
        # second stripe row lands back on server 0, offset advanced
        chunks2 = pfs.map_stripes(256 * KiB, 64 * KiB)
        assert chunks2 == [(0, 64 * KiB, 64 * KiB)]

    @given(
        offset=st.integers(0, 2**26),
        nbytes=st.integers(0, 2**22),
        n_servers=st.integers(1, 9),
    )
    @settings(max_examples=60, deadline=None)
    def test_map_stripes_partition_property(self, offset, nbytes, n_servers):
        cluster = make_cluster(1)
        pfs = self.make_pfs(cluster, n_servers=n_servers, stripe_width=64 * KiB)
        chunks = pfs.map_stripes(offset, nbytes)
        assert sum(c[2] for c in chunks) == nbytes
        for server, soff, run in chunks:
            assert 0 <= server < n_servers
            assert soff >= 0 and run > 0

    @given(offsets=st.lists(st.integers(0, 2**20 - 1), min_size=2, max_size=30, unique=True))
    @settings(max_examples=40, deadline=None)
    def test_map_stripes_injective(self, offsets):
        """Two different logical bytes never share a server location."""
        cluster = make_cluster(1)
        pfs = self.make_pfs(cluster, n_servers=5, stripe_width=4096)
        seen = {}
        for off in offsets:
            (server, soff, _run) = pfs.map_stripes(off, 1)[0]
            key = (server, soff)
            assert key not in seen
            seen[key] = off

    def test_large_write_fans_out_to_servers(self):
        cluster = make_cluster(1)
        sim = cluster.sim
        pfs = self.make_pfs(cluster, n_servers=8, stripe_width=64 * KiB)
        c = ctx_for(cluster)

        def body():
            ino = yield from pfs.op_open(c, "f", O_WRONLY | O_CREAT)
            yield from pfs.op_write(c, ino, 0, 1 * MiB, stream=("f", 0))

        sim.run_process(body())
        stats = pfs.server_stats()
        assert sum(s["bytes_served"] for s in stats) == 1 * MiB
        assert sum(1 for s in stats if s["ops_served"] > 0) == 8

    def test_shared_file_pays_lock_cost(self):
        """N-1 writes serialize on the extent lock; private files do not."""

        def run(shared):
            cluster = make_cluster(2)
            sim = cluster.sim
            pfs = ParallelFS(
                sim, cluster.network,
                PFSParams(n_servers=4, extent_lock_time=5e-3),
            )
            c0, c1 = ctx_for(cluster, 0), ctx_for(cluster, 1)

            def writer(c, path, offset):
                ino = yield from pfs.op_open(c, path, O_WRONLY | O_CREAT)
                for j in range(8):
                    yield from pfs.op_write(
                        c, ino, offset + j * 64 * KiB, 64 * KiB, stream=(path, c.node.index)
                    )

            if shared:
                sim.spawn(writer(c0, "shared", 0), name="w0")
                sim.spawn(writer(c1, "shared", 1 * MiB), name="w1")
            else:
                sim.spawn(writer(c0, "f0", 0), name="w0")
                sim.spawn(writer(c1, "f1", 0), name="w1")
            sim.run()
            return sim.now

        assert run(shared=True) > run(shared=False)

    def test_note_close_releases_shared_state(self):
        cluster = make_cluster(2)
        sim = cluster.sim
        pfs = self.make_pfs(cluster, n_servers=2)
        c0, c1 = ctx_for(cluster, 0), ctx_for(cluster, 1)

        def body():
            ino0 = yield from pfs.op_open(c0, "f", O_WRONLY | O_CREAT)
            ino1 = yield from pfs.op_open(c1, "f", O_WRONLY)
            assert pfs._is_shared(ino0)
            pfs.note_close(c1, ino1)
            assert not pfs._is_shared(ino0)
            pfs.note_close(c0, ino0)
            return True

        assert sim.run_process(body())

    def test_strided_pattern_causes_server_seeks(self):
        cluster = make_cluster(1)
        sim = cluster.sim
        pfs = self.make_pfs(cluster, n_servers=2, stripe_width=64 * KiB)
        c = ctx_for(cluster)

        def seq_body():
            ino = yield from pfs.op_open(c, "seq", O_WRONLY | O_CREAT)
            for j in range(8):
                yield from pfs.op_write(c, ino, j * 64 * KiB, 64 * KiB, stream=("seq", 0))

        sim.run_process(seq_body())
        seq_seeks = sum(s["seeks"] for s in pfs.server_stats())

        cluster2 = make_cluster(1)
        pfs2 = ParallelFS(cluster2.sim, cluster2.network, PFSParams(n_servers=2, stripe_width=64 * KiB))
        c2 = ctx_for(cluster2)

        def strided_body():
            ino = yield from pfs2.op_open(c2, "str", O_WRONLY | O_CREAT)
            for j in range(8):
                # jump by 4 stripes each time: lands on same server, far offset
                yield from pfs2.op_write(c2, ino, j * 4 * 64 * KiB, 64 * KiB, stream=("str", 0))

        cluster2.sim.run_process(strided_body())
        strided_seeks = sum(s["seeks"] for s in pfs2.server_stats())
        assert strided_seeks > seq_seeks
