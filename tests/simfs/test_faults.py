"""Fault-injection layer tests, including tracer behaviour under faults."""

import pytest

from repro.des import Simulator
from repro.simfs.faults import FaultInjectingFS, FaultPlan, InjectedIOError
from repro.simfs.localfs import LocalFS
from repro.simfs.vfs import CallerContext, O_CREAT, O_WRONLY


class FakeNode:
    index = 0
    hostname = "n0"

    def now_local(self):
        return 0.0


def ctx():
    return CallerContext(node=FakeNode(), pid=1, uid=1000, user="t")


def make(plan, seed=0):
    sim = Simulator(seed=seed)
    lower = LocalFS(sim)
    return sim, FaultInjectingFS(sim, lower, plan)


class TestPlanValidation:
    def test_rates_bounded(self):
        with pytest.raises(ValueError):
            FaultPlan(error_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(delay_rate=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(delay=-1)

    def test_horizon_must_be_positive(self):
        with pytest.raises(ValueError):
            FaultPlan(horizon=0.0)
        with pytest.raises(ValueError):
            FaultPlan(horizon=-5.0)

    def test_delay_must_fit_inside_horizon(self):
        with pytest.raises(ValueError, match="shorter than the horizon"):
            FaultPlan(delay=2.0, horizon=1.0)
        with pytest.raises(ValueError, match="shorter than the horizon"):
            FaultPlan(delay=1.0, horizon=1.0)  # equal is also a stall risk
        # Valid combinations construct fine.
        assert FaultPlan(delay=0.5, horizon=1.0).horizon == 1.0
        assert FaultPlan(delay=0.5).horizon is None


class TestDrawOrder:
    """Regression: every eligible op draws exactly two coins, delay first.

    The old ``before_op`` short-circuited draws when a rate was 0.0, so
    switching one fault type off shifted the *other* coin sequence and
    broke cross-plan comparisons.  These tests pin the contract.
    """

    def _error_sequence(self, plan, n=40, seed=11):
        sim, fs = make(plan, seed=seed)
        hits = []

        def body():
            ino = yield from fs.op_open(ctx(), "keep", O_WRONLY | O_CREAT)
            for i in range(n):
                try:
                    yield from fs.op_write(ctx(), ino, i * 10, 10, stream="s")
                    hits.append(False)
                except InjectedIOError:
                    hits.append(True)

        sim.run_process(body())
        return hits

    def test_error_sequence_unchanged_by_delay_rate(self):
        """Turning delays on/off must not reshuffle which ops error."""
        plain = self._error_sequence(FaultPlan(error_rate=0.3, ops={"write"}))
        delayed = self._error_sequence(
            FaultPlan(error_rate=0.3, delay_rate=0.2, delay=1e-4, ops={"write"})
        )
        assert plain == delayed
        assert any(plain) and not all(plain)

    def test_two_draws_per_eligible_op(self):
        sim, fs = make(FaultPlan(ops={"write"}))
        before = [fs._rng.random() for _ in range(4)]
        sim2, fs2 = make(FaultPlan(ops={"write"}))

        def body():
            ino = yield from fs2.op_open(ctx(), "f", O_WRONLY | O_CREAT)
            yield from fs2.op_write(ctx(), ino, 0, 10, stream="s")
            return [fs2._rng.random() for _ in range(2)]

        # After one eligible op, the stream must sit exactly two draws in:
        # the next values are draws 3 and 4 of the untouched stream.
        assert sim2.run_process(body()) == before[2:4]

    def test_ineligible_ops_draw_nothing(self):
        sim, fs = make(FaultPlan(error_rate=1.0, ops={"unlink"}))
        probe_sim, probe_fs = make(FaultPlan(error_rate=1.0, ops={"unlink"}))
        expected = probe_fs._rng.random()

        def body():
            ino = yield from fs.op_open(ctx(), "f", O_WRONLY | O_CREAT)
            yield from fs.op_write(ctx(), ino, 0, 10, stream="s")
            return fs._rng.random()

        # open/write are ineligible, so the stream is still at draw 1.
        assert sim.run_process(body()) == expected


class TestInjection:
    def test_zero_rates_transparent(self):
        sim, fs = make(FaultPlan())

        def body():
            ino = yield from fs.op_open(ctx(), "f", O_WRONLY | O_CREAT)
            yield from fs.op_write(ctx(), ino, 0, 100, stream="s")
            return (yield from fs.op_fstat(ctx(), ino)).size

        assert sim.run_process(body()) == 100
        assert fs.errors_injected == 0

    def test_certain_failure(self):
        sim, fs = make(FaultPlan(error_rate=1.0, ops={"write"}))

        def body():
            ino = yield from fs.op_open(ctx(), "f", O_WRONLY | O_CREAT)
            try:
                yield from fs.op_write(ctx(), ino, 0, 100, stream="s")
            except InjectedIOError:
                return "EIO"

        assert sim.run_process(body()) == "EIO"
        assert fs.errors_injected == 1

    def test_op_scoping(self):
        sim, fs = make(FaultPlan(error_rate=1.0, ops={"unlink"}))

        def body():
            ino = yield from fs.op_open(ctx(), "f", O_WRONLY | O_CREAT)
            yield from fs.op_write(ctx(), ino, 0, 100, stream="s")  # unaffected
            return 0

        assert sim.run_process(body()) == 0

    def test_path_scoping(self):
        sim, fs = make(FaultPlan(error_rate=1.0, path_substring="bad"))

        def body():
            yield from fs.op_open(ctx(), "good-file", O_WRONLY | O_CREAT)
            try:
                yield from fs.op_open(ctx(), "bad-file", O_WRONLY | O_CREAT)
            except InjectedIOError:
                return "EIO"

        assert sim.run_process(body()) == "EIO"

    def test_delay_injection_costs_time(self):
        sim, fs = make(FaultPlan(delay_rate=1.0, delay=0.5, ops={"write"}))

        def body():
            ino = yield from fs.op_open(ctx(), "f", O_WRONLY | O_CREAT)
            t0 = sim.now
            yield from fs.op_write(ctx(), ino, 0, 100, stream="s")
            return sim.now - t0

        assert sim.run_process(body()) >= 0.5
        assert fs.delays_injected == 1

    def test_deterministic_per_seed(self):
        def run(seed):
            sim, fs = make(FaultPlan(error_rate=0.3, ops={"write"}), seed=seed)
            failures = []

            def body():
                ino = yield from fs.op_open(ctx(), "f", O_WRONLY | O_CREAT)
                for i in range(30):
                    try:
                        yield from fs.op_write(ctx(), ino, i * 10, 10, stream="s")
                        failures.append(False)
                    except InjectedIOError:
                        failures.append(True)

            sim.run_process(body())
            return failures

        assert run(7) == run(7)
        assert run(7) != run(8)
        assert any(run(7)) and not all(run(7))


class TestTracersUnderFaults:
    def test_traced_run_records_errno_lines(self):
        """strace-style capture of failed calls: '= -1 EIO'."""
        from repro.cluster import Cluster, ClusterConfig
        from repro.simfs.vfs import VFS
        from repro.simos.interpose import Interposer
        from repro.simos.process import SimProcess
        from repro.trace.events import EventLayer
        from repro.trace.records import TraceFile

        cluster = Cluster(ClusterConfig(n_nodes=1, clock_skew_stddev=0, clock_drift_stddev=0))
        sim = cluster.sim
        lower = LocalFS(sim)
        faulty = FaultInjectingFS(sim, lower, FaultPlan(error_rate=1.0, ops={"write"}))
        vfs = VFS(sim)
        vfs.mount("/", faulty)
        proc = SimProcess(sim, cluster.node(0), vfs, pid=1)
        sink = TraceFile()
        proc.attach(Interposer(sink, per_event_cost=0), EventLayer.SYSCALL)

        def body():
            fd = yield from proc.open("/f", O_WRONLY | O_CREAT)
            try:
                yield from proc.write(fd, 100)
            except InjectedIOError:
                pass
            yield from proc.close(fd)

        sim.run_process(body())
        write_events = [e for e in sink if e.name == "SYS_write"]
        assert write_events[0].result == "-1 EIO"

    def test_workload_survives_flaky_storage(self):
        """End-to-end: a retry loop completes on a 20%-failure disk."""
        from repro.cluster import Cluster, ClusterConfig
        from repro.simfs.vfs import VFS
        from repro.simmpi import mpirun

        cluster = Cluster(ClusterConfig(n_nodes=1, seed=3))
        sim = cluster.sim
        faulty = FaultInjectingFS(
            sim, LocalFS(sim), FaultPlan(error_rate=0.2, ops={"write"})
        )
        vfs = VFS(sim)
        vfs.mount("/", faulty)

        def app(mpi, args):
            fd = yield from mpi.proc.open("/out", O_WRONLY | O_CREAT)
            written = 0
            attempts = 0
            while written < 200 and attempts < 500:
                attempts += 1
                try:
                    written += yield from mpi.proc.pwrite(fd, 10, written)
                except InjectedIOError:
                    continue
            yield from mpi.proc.close(fd)
            return written, attempts

        job = mpirun(cluster, vfs, app, nprocs=1)
        written, attempts = job.results[0]
        assert written == 20 * 10
        assert attempts > 20  # some retries actually happened
