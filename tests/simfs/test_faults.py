"""Fault-injection layer tests, including tracer behaviour under faults."""

import pytest

from repro.des import Simulator
from repro.simfs.faults import FaultInjectingFS, FaultPlan, InjectedIOError
from repro.simfs.localfs import LocalFS
from repro.simfs.vfs import CallerContext, O_CREAT, O_WRONLY


class FakeNode:
    index = 0
    hostname = "n0"

    def now_local(self):
        return 0.0


def ctx():
    return CallerContext(node=FakeNode(), pid=1, uid=1000, user="t")


def make(plan, seed=0):
    sim = Simulator(seed=seed)
    lower = LocalFS(sim)
    return sim, FaultInjectingFS(sim, lower, plan)


class TestPlanValidation:
    def test_rates_bounded(self):
        with pytest.raises(ValueError):
            FaultPlan(error_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(delay_rate=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(delay=-1)


class TestInjection:
    def test_zero_rates_transparent(self):
        sim, fs = make(FaultPlan())

        def body():
            ino = yield from fs.op_open(ctx(), "f", O_WRONLY | O_CREAT)
            yield from fs.op_write(ctx(), ino, 0, 100, stream="s")
            return (yield from fs.op_fstat(ctx(), ino)).size

        assert sim.run_process(body()) == 100
        assert fs.errors_injected == 0

    def test_certain_failure(self):
        sim, fs = make(FaultPlan(error_rate=1.0, ops={"write"}))

        def body():
            ino = yield from fs.op_open(ctx(), "f", O_WRONLY | O_CREAT)
            try:
                yield from fs.op_write(ctx(), ino, 0, 100, stream="s")
            except InjectedIOError:
                return "EIO"

        assert sim.run_process(body()) == "EIO"
        assert fs.errors_injected == 1

    def test_op_scoping(self):
        sim, fs = make(FaultPlan(error_rate=1.0, ops={"unlink"}))

        def body():
            ino = yield from fs.op_open(ctx(), "f", O_WRONLY | O_CREAT)
            yield from fs.op_write(ctx(), ino, 0, 100, stream="s")  # unaffected
            return 0

        assert sim.run_process(body()) == 0

    def test_path_scoping(self):
        sim, fs = make(FaultPlan(error_rate=1.0, path_substring="bad"))

        def body():
            yield from fs.op_open(ctx(), "good-file", O_WRONLY | O_CREAT)
            try:
                yield from fs.op_open(ctx(), "bad-file", O_WRONLY | O_CREAT)
            except InjectedIOError:
                return "EIO"

        assert sim.run_process(body()) == "EIO"

    def test_delay_injection_costs_time(self):
        sim, fs = make(FaultPlan(delay_rate=1.0, delay=0.5, ops={"write"}))

        def body():
            ino = yield from fs.op_open(ctx(), "f", O_WRONLY | O_CREAT)
            t0 = sim.now
            yield from fs.op_write(ctx(), ino, 0, 100, stream="s")
            return sim.now - t0

        assert sim.run_process(body()) >= 0.5
        assert fs.delays_injected == 1

    def test_deterministic_per_seed(self):
        def run(seed):
            sim, fs = make(FaultPlan(error_rate=0.3, ops={"write"}), seed=seed)
            failures = []

            def body():
                ino = yield from fs.op_open(ctx(), "f", O_WRONLY | O_CREAT)
                for i in range(30):
                    try:
                        yield from fs.op_write(ctx(), ino, i * 10, 10, stream="s")
                        failures.append(False)
                    except InjectedIOError:
                        failures.append(True)

            sim.run_process(body())
            return failures

        assert run(7) == run(7)
        assert run(7) != run(8)
        assert any(run(7)) and not all(run(7))


class TestTracersUnderFaults:
    def test_traced_run_records_errno_lines(self):
        """strace-style capture of failed calls: '= -1 EIO'."""
        from repro.cluster import Cluster, ClusterConfig
        from repro.simfs.vfs import VFS
        from repro.simos.interpose import Interposer
        from repro.simos.process import SimProcess
        from repro.trace.events import EventLayer
        from repro.trace.records import TraceFile

        cluster = Cluster(ClusterConfig(n_nodes=1, clock_skew_stddev=0, clock_drift_stddev=0))
        sim = cluster.sim
        lower = LocalFS(sim)
        faulty = FaultInjectingFS(sim, lower, FaultPlan(error_rate=1.0, ops={"write"}))
        vfs = VFS(sim)
        vfs.mount("/", faulty)
        proc = SimProcess(sim, cluster.node(0), vfs, pid=1)
        sink = TraceFile()
        proc.attach(Interposer(sink, per_event_cost=0), EventLayer.SYSCALL)

        def body():
            fd = yield from proc.open("/f", O_WRONLY | O_CREAT)
            try:
                yield from proc.write(fd, 100)
            except InjectedIOError:
                pass
            yield from proc.close(fd)

        sim.run_process(body())
        write_events = [e for e in sink if e.name == "SYS_write"]
        assert write_events[0].result == "-1 EIO"

    def test_workload_survives_flaky_storage(self):
        """End-to-end: a retry loop completes on a 20%-failure disk."""
        from repro.cluster import Cluster, ClusterConfig
        from repro.simfs.vfs import VFS
        from repro.simmpi import mpirun

        cluster = Cluster(ClusterConfig(n_nodes=1, seed=3))
        sim = cluster.sim
        faulty = FaultInjectingFS(
            sim, LocalFS(sim), FaultPlan(error_rate=0.2, ops={"write"})
        )
        vfs = VFS(sim)
        vfs.mount("/", faulty)

        def app(mpi, args):
            fd = yield from mpi.proc.open("/out", O_WRONLY | O_CREAT)
            written = 0
            attempts = 0
            while written < 200 and attempts < 500:
                attempts += 1
                try:
                    written += yield from mpi.proc.pwrite(fd, 10, written)
                except InjectedIOError:
                    continue
            yield from mpi.proc.close(fd)
            return written, attempts

        job = mpirun(cluster, vfs, app, nprocs=1)
        written, attempts = job.results[0]
        assert written == 20 * 10
        assert attempts > 20  # some retries actually happened
