"""Caching layer tests: hits, eviction, write policies, consistency."""

import pytest

from repro.des import Simulator
from repro.errors import InvalidArgument
from repro.simfs.cache import CacheParams, CachingFS
from repro.simfs.localfs import LocalFS
from repro.simfs.vfs import CallerContext, O_CREAT, O_RDWR
from repro.units import KiB


class FakeNode:
    index = 0
    hostname = "n0"

    def now_local(self):
        return 0.0


def ctx():
    return CallerContext(node=FakeNode(), pid=1, uid=1000, user="t")


def make(write_back=False, capacity=8 * 64 * KiB):
    sim = Simulator()
    lower = LocalFS(sim)
    cache = CachingFS(
        sim, lower,
        CacheParams(capacity=capacity, block_size=64 * KiB, write_back=write_back),
    )
    return sim, lower, cache


def write_file(sim, fs, nbytes, name="f"):
    def body():
        ino = yield from fs.op_open(ctx(), name, O_RDWR | O_CREAT)
        yield from fs.op_write(ctx(), ino, 0, nbytes, stream="s")
        return ino

    return sim.run_process(body())


def write_file_cold(sim, lower, nbytes, name="f"):
    """Create the file *below* the cache so first reads are cold."""
    return write_file(sim, lower, nbytes, name)


class TestValidation:
    def test_params(self):
        with pytest.raises(InvalidArgument):
            CacheParams(capacity=0)
        with pytest.raises(InvalidArgument):
            CacheParams(capacity=1024, block_size=4096)


class TestReadCaching:
    def test_second_read_hits(self):
        sim, lower, cache = make()
        ino = write_file_cold(sim, lower, 128 * KiB)

        def body():
            t0 = sim.now
            yield from cache.op_read(ctx(), ino, 0, 128 * KiB, stream="s")
            cold = sim.now - t0
            t0 = sim.now
            yield from cache.op_read(ctx(), ino, 0, 128 * KiB, stream="s")
            warm = sim.now - t0
            return cold, warm

        cold, warm = sim.run_process(body())
        assert warm < cold / 5
        assert cache.misses == 2  # first read faulted both blocks in
        assert cache.hits == 2  # second read served from cache
        assert cache.stats()["hit_rate"] == 0.5

    def test_read_result_respects_eof(self):
        sim, lower, cache = make()
        ino = write_file(sim, cache, 100)

        def body():
            n = yield from cache.op_read(ctx(), ino, 50, 1000, stream="s")
            n2 = yield from cache.op_read(ctx(), ino, 500, 10, stream="s")
            return n, n2

        assert sim.run_process(body()) == (50, 0)

    def test_lru_eviction(self):
        sim, lower, cache = make(capacity=2 * 64 * KiB)
        ino = write_file_cold(sim, lower, 4 * 64 * KiB)  # 4 blocks, 2-block cache

        def body():
            # touch blocks 0..3 in order; cache holds only 2
            for b in range(4):
                yield from cache.op_read(ctx(), ino, b * 64 * KiB, 64 * KiB, stream="s")
            # block 0 must have been evicted by now
            return (ino, 0) in cache._blocks, (ino, 3) in cache._blocks

        b0_cached, b3_cached = sim.run_process(body())
        assert not b0_cached and b3_cached
        assert cache.evictions > 0


class TestWritePolicies:
    def test_write_through_reaches_lower(self):
        sim, lower, cache = make(write_back=False)
        ino = write_file(sim, cache, 64 * KiB)
        assert lower.ns.by_ino(ino).size == 64 * KiB

    def test_write_back_defers_lower_io(self):
        sim, lower, cache = make(write_back=True)

        def body():
            ino = yield from cache.op_open(ctx(), "wb", O_RDWR | O_CREAT)
            t0 = sim.now
            yield from cache.op_write(ctx(), ino, 0, 64 * KiB, stream="s")
            fast = sim.now - t0
            # size visible immediately even though lower I/O deferred
            st = yield from cache.op_fstat(ctx(), ino)
            yield from cache.op_fsync(ctx(), ino)
            return ino, fast, st.size

        ino, fast, size = sim.run_process(body())
        assert size == 64 * KiB
        assert fast < 1e-3  # absorbed, no disk time
        assert cache.writebacks == 1  # flushed by fsync

    def test_dirty_eviction_writes_back(self):
        sim, lower, cache = make(write_back=True, capacity=2 * 64 * KiB)

        def body():
            ino = yield from cache.op_open(ctx(), "wb", O_RDWR | O_CREAT)
            for b in range(4):  # dirty 4 blocks through a 2-block cache
                yield from cache.op_write(ctx(), ino, b * 64 * KiB, 64 * KiB, stream="s")
            return ino

        sim.run_process(body())
        assert cache.writebacks >= 2  # evictions flushed dirty data

    def test_truncate_invalidates(self):
        sim, lower, cache = make()
        ino = write_file(sim, cache, 4 * 64 * KiB)

        def body():
            yield from cache.op_read(ctx(), ino, 0, 4 * 64 * KiB, stream="s")
            yield from cache.op_truncate(ctx(), ino, 64 * KiB)
            return [k for k in cache._blocks if k[0] == ino]

        remaining = sim.run_process(body())
        assert all(b < 1 for _, b in remaining)


class TestMetadataPassThrough:
    def test_namespace_shared_with_lower(self):
        sim, lower, cache = make()
        write_file(sim, cache, 10, name="shared")
        assert lower.ns.lookup("shared").size == 10
