"""VFS namespace, mount-table, and permission tests."""

import pytest

from repro.des import Simulator
from repro.errors import (
    BadFileDescriptor,
    FileExists,
    FileNotFound,
    InvalidArgument,
    IsADirectory,
    NotADirectory,
    NotMounted,
    PermissionDenied,
)
from repro.simfs.vfs import (
    CallerContext,
    FileSystem,
    Namespace,
    O_CREAT,
    O_EXCL,
    O_RDONLY,
    O_TRUNC,
    O_WRONLY,
    VFS,
)


class FakeNode:
    index = 0
    hostname = "test"

    def now_local(self):
        return 0.0


def ctx(uid=1000):
    return CallerContext(node=FakeNode(), pid=1, uid=uid, user="tester")


class TestNamespace:
    def test_create_and_lookup(self):
        ns = Namespace()
        inode = ns.create("a.txt", 0o644, 1000, now=1.0)
        assert ns.lookup("a.txt") is inode
        assert ns.by_ino(inode.ino) is inode

    def test_nested_paths_require_directories(self):
        ns = Namespace()
        ns.create("dir", 0o755, 1000, 0.0, is_dir=True)
        f = ns.create("dir/file", 0o644, 1000, 0.0)
        assert ns.lookup("dir/file") is f

    def test_lookup_missing_raises(self):
        ns = Namespace()
        with pytest.raises(FileNotFound):
            ns.lookup("nope")

    def test_file_as_directory_component(self):
        ns = Namespace()
        ns.create("f", 0o644, 1000, 0.0)
        with pytest.raises(NotADirectory):
            ns.lookup("f/child")

    def test_exclusive_create_conflict(self):
        ns = Namespace()
        ns.create("x", 0o644, 1000, 0.0)
        with pytest.raises(FileExists):
            ns.create("x", 0o644, 1000, 0.0, exclusive=True)

    def test_unlink_removes(self):
        ns = Namespace()
        ns.create("x", 0o644, 1000, 0.0)
        ns.unlink("x", 1.0)
        with pytest.raises(FileNotFound):
            ns.lookup("x")

    def test_unlink_nonempty_dir_rejected(self):
        ns = Namespace()
        ns.create("d", 0o755, 1000, 0.0, is_dir=True)
        ns.create("d/f", 0o644, 1000, 0.0)
        with pytest.raises(InvalidArgument):
            ns.unlink("d", 1.0)

    def test_readdir_sorted(self):
        ns = Namespace()
        ns.create("d", 0o755, 1000, 0.0, is_dir=True)
        for name in ("zz", "aa", "mm"):
            ns.create("d/%s" % name, 0o644, 1000, 0.0)
        assert ns.readdir("d") == ["aa", "mm", "zz"]
        with pytest.raises(NotADirectory):
            ns.readdir("d/aa")

    def test_rename_moves_inode(self):
        ns = Namespace()
        f = ns.create("old", 0o644, 1000, 0.0)
        ns.rename("old", "new", 1.0)
        assert ns.lookup("new") is f
        with pytest.raises(FileNotFound):
            ns.lookup("old")

    def test_dotdot_rejected(self):
        ns = Namespace()
        with pytest.raises(InvalidArgument):
            ns.lookup("a/../b")


class TestFileSystemOps:
    def run_op(self, gen):
        sim = Simulator()
        return sim.run_process(gen)

    def make_fs(self):
        return FileSystem(Simulator())

    def test_open_create_write_stat(self):
        sim = Simulator()
        fs = FileSystem(sim)

        def body():
            ino = yield from fs.op_open(ctx(), "f", O_WRONLY | O_CREAT)
            n = yield from fs.op_write(ctx(), ino, 0, 100, stream="s")
            st = yield from fs.op_stat(ctx(), "f")
            return n, st.size

        assert sim.run_process(body()) == (100, 100)

    def test_sparse_write_extends_size(self):
        sim = Simulator()
        fs = FileSystem(sim)

        def body():
            ino = yield from fs.op_open(ctx(), "f", O_WRONLY | O_CREAT)
            yield from fs.op_write(ctx(), ino, 1000, 24, stream="s")
            st = yield from fs.op_fstat(ctx(), ino)
            return st.size

        assert sim.run_process(body()) == 1024

    def test_read_stops_at_eof(self):
        sim = Simulator()
        fs = FileSystem(sim)

        def body():
            ino = yield from fs.op_open(ctx(), "f", O_WRONLY | O_CREAT)
            yield from fs.op_write(ctx(), ino, 0, 100, stream="s")
            full = yield from fs.op_read(ctx(), ino, 0, 100, stream="s")
            partial = yield from fs.op_read(ctx(), ino, 80, 100, stream="s")
            empty = yield from fs.op_read(ctx(), ino, 200, 10, stream="s")
            return full, partial, empty

        assert sim.run_process(body()) == (100, 20, 0)

    def test_truncate_and_o_trunc(self):
        sim = Simulator()
        fs = FileSystem(sim)

        def body():
            ino = yield from fs.op_open(ctx(), "f", O_WRONLY | O_CREAT)
            yield from fs.op_write(ctx(), ino, 0, 500, stream="s")
            yield from fs.op_truncate(ctx(), ino, 100)
            mid = (yield from fs.op_fstat(ctx(), ino)).size
            ino2 = yield from fs.op_open(ctx(), "f", O_WRONLY | O_TRUNC)
            final = (yield from fs.op_fstat(ctx(), ino2)).size
            return mid, final

        assert sim.run_process(body()) == (100, 0)

    def test_open_excl_existing_fails(self):
        sim = Simulator()
        fs = FileSystem(sim)

        def body():
            yield from fs.op_open(ctx(), "f", O_WRONLY | O_CREAT)
            yield from fs.op_open(ctx(), "f", O_WRONLY | O_CREAT | O_EXCL)

        proc = sim.spawn(body(), name="p")
        sim.run()
        assert isinstance(proc.completion.exception, FileExists)

    def test_write_permission_checked(self):
        sim = Simulator()
        fs = FileSystem(sim)

        def body():
            # owner uid 1000 creates read-only file
            yield from fs.op_open(ctx(uid=1000), "f", O_WRONLY | O_CREAT, mode=0o444)
            # even the owner cannot open it for writing
            yield from fs.op_open(ctx(uid=1000), "f", O_WRONLY)

        proc = sim.spawn(body(), name="p")
        sim.run()
        assert isinstance(proc.completion.exception, PermissionDenied)

    def test_root_bypasses_permissions(self):
        sim = Simulator()
        fs = FileSystem(sim)

        def body():
            yield from fs.op_open(ctx(uid=1000), "f", O_WRONLY | O_CREAT, mode=0o400)
            ino = yield from fs.op_open(ctx(uid=0), "f", O_WRONLY)
            return ino

        assert sim.run_process(body()) > 0

    def test_other_user_respects_other_bits(self):
        sim = Simulator()
        fs = FileSystem(sim)

        def body():
            yield from fs.op_open(ctx(uid=1000), "private", O_WRONLY | O_CREAT, mode=0o600)
            yield from fs.op_open(ctx(uid=2000), "private", O_RDONLY)

        proc = sim.spawn(body(), name="p")
        sim.run()
        assert isinstance(proc.completion.exception, PermissionDenied)

    def test_directory_write_rejected(self):
        sim = Simulator()
        fs = FileSystem(sim)

        def body():
            yield from fs.op_mkdir(ctx(), "d")
            yield from fs.op_open(ctx(), "d", O_WRONLY)

        proc = sim.spawn(body(), name="p")
        sim.run()
        assert isinstance(proc.completion.exception, IsADirectory)

    def test_statfs_counts(self):
        sim = Simulator()
        fs = FileSystem(sim)

        def body():
            ino = yield from fs.op_open(ctx(), "f", O_WRONLY | O_CREAT)
            yield from fs.op_write(ctx(), ino, 0, 4096, stream="s")
            return (yield from fs.op_statfs(ctx()))

        out = sim.run_process(body())
        assert out["bytes_used"] == 4096
        assert out["files"] >= 2  # root + file


class TestVFSMounts:
    def test_longest_prefix_wins(self):
        sim = Simulator()
        vfs = VFS(sim)
        outer, inner = FileSystem(sim, "outer"), FileSystem(sim, "inner")
        vfs.mount("/data", outer)
        vfs.mount("/data/fast", inner)
        fs, rel = vfs.resolve("/data/fast/file")
        assert fs is inner and rel == "file"
        fs, rel = vfs.resolve("/data/slow/file")
        assert fs is outer and rel == "slow/file"

    def test_exact_mount_point(self):
        sim = Simulator()
        vfs = VFS(sim)
        fs = FileSystem(sim)
        vfs.mount("/m", fs)
        got, rel = vfs.resolve("/m")
        assert got is fs and rel == ""

    def test_unmounted_path_raises(self):
        sim = Simulator()
        vfs = VFS(sim)
        with pytest.raises(NotMounted):
            vfs.resolve("/nowhere")

    def test_unmount_returns_fs(self):
        sim = Simulator()
        vfs = VFS(sim)
        fs = FileSystem(sim)
        vfs.mount("/m", fs)
        assert vfs.unmount("/m") is fs
        with pytest.raises(NotMounted):
            vfs.unmount("/m")

    def test_relative_paths_rejected(self):
        sim = Simulator()
        vfs = VFS(sim)
        with pytest.raises(InvalidArgument):
            vfs.resolve("relative/path")

    def test_shadow_mount_and_restore(self):
        """Mounting over a prefix shadows it (the Tracefs interposition)."""
        sim = Simulator()
        vfs = VFS(sim)
        lower, upper = FileSystem(sim, "lower"), FileSystem(sim, "upper")
        vfs.mount("/m", lower)
        vfs.mount("/m", upper)
        assert vfs.resolve("/m/x")[0] is upper
        vfs.unmount("/m")
        with pytest.raises(NotMounted):
            vfs.resolve("/m/x")
