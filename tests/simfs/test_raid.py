"""RAID-5 geometry property tests and timing-model behaviour."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.simfs.blockdev import DiskParams
from repro.simfs.raid import Raid5Geometry, Raid5Model
from repro.units import KiB


class TestGeometryValidation:
    def test_minimum_drives(self):
        with pytest.raises(ValueError):
            Raid5Geometry(2)

    def test_stripe_width_positive(self):
        with pytest.raises(ValueError):
            Raid5Geometry(4, 0)

    def test_negative_offset_rejected(self):
        g = Raid5Geometry(4)
        with pytest.raises(ValueError):
            g.locate(-1)
        with pytest.raises(ValueError):
            g.map_extent(0, -1)


class TestParityLayout:
    def test_parity_rotates_over_all_drives(self):
        g = Raid5Geometry(5, 64 * KiB)
        drives = {g.parity_drive(row) for row in range(5)}
        assert drives == set(range(5))

    def test_data_never_lands_on_parity_drive(self):
        g = Raid5Geometry(4, 4096)
        for off in range(0, g.data_per_row * 6, 4096):
            drive, _ = g.locate(off)
            row = off // g.data_per_row
            assert drive != g.parity_drive(row)


@st.composite
def geometries(draw):
    n = draw(st.integers(min_value=3, max_value=16))
    width = draw(st.sampled_from([512, 4096, 64 * KiB]))
    return Raid5Geometry(n, width)


class TestMappingProperties:
    @given(g=geometries(), offset=st.integers(0, 2**30), nbytes=st.integers(0, 2**22))
    @settings(max_examples=60, deadline=None)
    def test_extent_partition(self, g, offset, nbytes):
        """Segments tile the logical extent exactly: no gaps, no overlap."""
        segs = g.map_extent(offset, nbytes)
        assert sum(s.nbytes for s in segs) == nbytes
        pos = offset
        for s in segs:
            assert s.logical_offset == pos
            assert s.nbytes > 0
            pos += s.nbytes
        assert pos == offset + nbytes

    @given(g=geometries(), offset=st.integers(0, 2**30), nbytes=st.integers(1, 2**20))
    @settings(max_examples=60, deadline=None)
    def test_segments_agree_with_locate(self, g, offset, nbytes):
        for s in g.map_extent(offset, nbytes):
            drive, drive_off = g.locate(s.logical_offset)
            assert (drive, drive_off) == (s.drive, s.drive_offset)

    @given(g=geometries(), offsets=st.lists(st.integers(0, 2**26), min_size=2, max_size=50, unique=True))
    @settings(max_examples=40, deadline=None)
    def test_distinct_bytes_distinct_locations(self, g, offsets):
        """The logical->physical map is injective."""
        seen = {}
        for off in offsets:
            loc = g.locate(off)
            assert loc not in seen, "bytes %d and %d collide" % (off, seen.get(loc, -1))
            seen[loc] = off

    @given(g=geometries(), offset=st.integers(0, 2**28), nbytes=st.integers(1, 2**22))
    @settings(max_examples=40, deadline=None)
    def test_rows_touched_consistent(self, g, offset, nbytes):
        rows = g.rows_touched(offset, nbytes)
        seg_rows = {s.logical_offset // g.data_per_row for s in g.map_extent(offset, nbytes)}
        assert seg_rows == set(rows)


class TestFullRowDetection:
    def test_exact_row_is_full(self):
        g = Raid5Geometry(4, 4096)
        assert g.is_full_row_write(0, g.data_per_row, 0)

    def test_partial_row_is_not_full(self):
        g = Raid5Geometry(4, 4096)
        assert not g.is_full_row_write(0, g.data_per_row - 1, 0)
        assert not g.is_full_row_write(1, g.data_per_row, 0)


class TestServiceModel:
    def make(self, n=8):
        return Raid5Model(Raid5Geometry(n, 64 * KiB), DiskParams())

    def test_small_write_pays_rmw_penalty(self):
        m = self.make()
        small = m.service_time(0, 4 * KiB, sequential=True)
        # same bytes, aligned full row: no read-modify-write
        full_row = m.service_time(0, m.geometry.data_per_row, sequential=True)
        # the small write is *slower per byte* by far
        assert small / (4 * KiB) > full_row / m.geometry.data_per_row

    def test_seek_penalty_applied(self):
        m = self.make()
        seq = m.service_time(0, 64 * KiB, sequential=True)
        rnd = m.service_time(0, 64 * KiB, sequential=False)
        assert rnd == pytest.approx(seq + m.disk.seek_time)

    def test_large_extents_gain_drive_parallelism(self):
        m = self.make(n=8)
        t1 = m.service_time(0, 256 * KiB, sequential=True)
        t2 = m.service_time(0, 2048 * KiB, sequential=True)
        # 8x the bytes in well under 8x the time (parallel drives)
        assert t2 < 6 * t1

    def test_zero_byte_write_costs_settle_only(self):
        m = self.make()
        assert m.service_time(0, 0, sequential=True) == pytest.approx(m.disk.settle_time)
