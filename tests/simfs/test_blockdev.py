"""Block-device timing model tests."""

import pytest

from repro.des import Simulator
from repro.simfs.blockdev import BlockDevice, DiskParams
from repro.units import MiB


def test_params_validation():
    with pytest.raises(ValueError):
        DiskParams(seek_time=-1)
    with pytest.raises(ValueError):
        DiskParams(stream_bandwidth=0)


def test_service_time_components():
    p = DiskParams(seek_time=8e-3, settle_time=2e-3, stream_bandwidth=60 * MiB)
    seq = p.service_time(60 * MiB, sequential=True)
    rand = p.service_time(60 * MiB, sequential=False)
    assert seq == pytest.approx(1.0 + 2e-3)
    assert rand == pytest.approx(1.0 + 2e-3 + 8e-3)


def test_sequential_stream_detection():
    sim = Simulator()
    dev = BlockDevice(sim, DiskParams())
    times = []

    def body():
        t = yield from dev.service("streamA", 0, 4096)
        times.append(t)
        t = yield from dev.service("streamA", 4096, 4096)  # continues
        times.append(t)
        t = yield from dev.service("streamA", 100000, 4096)  # jumps
        times.append(t)

    sim.run_process(body())
    assert times[0] > times[1]  # first access seeks, continuation does not
    assert times[2] == pytest.approx(times[0])  # jump seeks again
    assert dev.seeks == 2
    assert dev.ops_served == 3
    assert dev.bytes_served == 3 * 4096


def test_streams_are_independent():
    sim = Simulator()
    dev = BlockDevice(sim, DiskParams())

    def body():
        yield from dev.service(("f1", 0), 0, 4096)
        yield from dev.service(("f2", 1), 0, 4096)  # different stream: seek
        yield from dev.service(("f1", 0), 4096, 4096)  # f1 continues: no seek

    sim.run_process(body())
    assert dev.seeks == 2


def test_disk_serializes_requests():
    sim = Simulator()
    dev = BlockDevice(sim, DiskParams(seek_time=0, settle_time=0.5, stream_bandwidth=60 * MiB))
    ends = []

    def client(name):
        yield from dev.service(name, 0, 0)
        ends.append(sim.now)

    sim.spawn(client("a"), name="a")
    sim.spawn(client("b"), name="b")
    sim.run()
    assert ends == [pytest.approx(0.5), pytest.approx(1.0)]
