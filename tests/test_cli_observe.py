"""CLI telemetry flow: figure --telemetry artifacts and `repro observe`."""

import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def telemetry_dir(tmp_path_factory):
    """One quick telemetry-enabled figure run shared by the module's tests."""
    root = tmp_path_factory.mktemp("telemetry-run")
    import contextlib
    import os

    @contextlib.contextmanager
    def chdir(path):
        old = os.getcwd()
        os.chdir(path)
        try:
            yield
        finally:
            os.chdir(old)

    with chdir(root):
        assert main(["figure", "2", "--quick", "--no-cache", "--telemetry"]) == 0
    return root / "telemetry"


def test_figure_telemetry_writes_artifacts(telemetry_dir, capsys):
    files = sorted(p.name for p in telemetry_dir.iterdir())
    # 2 quick block sizes x (combined + untraced trace + traced trace).
    assert len(files) == 6
    assert "fig2_bs65536.telemetry.json" in files
    assert "fig2_bs65536.untraced.trace.json" in files
    assert "fig2_bs65536.traced.trace.json" in files


def test_observe_combined_artifact(telemetry_dir, capsys):
    path = telemetry_dir / "fig2_bs65536.telemetry.json"
    assert main(["observe", str(path), "--validate"]) == 0
    out = capsys.readouterr().out
    assert "telemetry [untraced]" in out
    assert "telemetry [traced]" in out
    assert "kernel events" in out
    assert "call/op mix:" in out
    assert out.count("trace: valid") == 2


def test_observe_bare_trace(telemetry_dir, capsys):
    path = telemetry_dir / "fig2_bs65536.traced.trace.json"
    assert main(["observe", str(path)]) == 0
    assert "valid Chrome trace:" in capsys.readouterr().out


def test_observe_rejects_non_telemetry_json(tmp_path, capsys):
    bogus = tmp_path / "bogus.json"
    bogus.write_text(json.dumps({"hello": "world"}))
    assert main(["observe", str(bogus)]) == 1
    assert "not a telemetry artifact" in capsys.readouterr().err


def test_observe_rejects_corrupt_trace(tmp_path, capsys):
    bad = tmp_path / "bad.trace.json"
    bad.write_text(json.dumps({"traceEvents": [{"ph": "Z", "name": "x"}]}))
    assert main(["observe", str(bad)]) == 1
    assert "bad phase" in capsys.readouterr().err


def test_observe_missing_file_reports_error(tmp_path, capsys):
    assert main(["observe", str(tmp_path / "nope.json")]) == 1
    assert "error:" in capsys.readouterr().err
