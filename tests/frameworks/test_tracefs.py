"""Tracefs framework tests: mounting, granularity, anonymization, output."""

import pytest

from repro.errors import NotTraceable, PermissionDenied
from repro.frameworks.base import FRAMEWORK_REGISTRY
from repro.frameworks.tracefs import EventCounters, Tracefs, TracefsConfig
from repro.harness.experiment import measure_overhead, run_traced
from repro.harness.testbed import build_testbed
from repro.trace.binary_format import decode_trace_file
from repro.trace.events import EventLayer
from repro.units import KiB
from repro.workloads.generators import io_intensive, mmap_mix

KEY = b"0123456789abcdef"
IO_ARGS = {
    "base": "/tmp/work",
    "n_files": 6,
    "file_size": 128 * KiB,
    "block_size": 32 * KiB,
}


def traced(config=None, args=IO_ARGS, workload=io_intensive, nprocs=1):
    return run_traced(
        lambda: Tracefs(config or TracefsConfig(target_mount="/tmp")),
        workload,
        args,
        nprocs=nprocs,
    )


class TestMounting:
    def test_registered(self):
        assert FRAMEWORK_REGISTRY["tracefs"] is Tracefs

    def test_requires_root(self):
        """§2.2: kernel module => 'dealing with root permissions'."""
        tb = build_testbed()
        with pytest.raises(PermissionDenied):
            Tracefs(TracefsConfig(target_mount="/tmp", as_root=False)).prepare(tb)

    def test_parallel_fs_rejected_out_of_the_box(self):
        """§2.2: 'not compatible out of the box with our parallel file
        system' — and the mount table is left intact."""
        tb = build_testbed()
        with pytest.raises(NotTraceable):
            Tracefs(TracefsConfig(target_mount="/pfs")).prepare(tb)
        fs, _ = tb.vfs.resolve("/pfs/anything")
        assert fs is tb.pfs  # restored

    def test_parallel_port_can_be_forced(self):
        tb = build_testbed()
        fw = Tracefs(TracefsConfig(target_mount="/pfs", force_parallel_port=True))
        fw.prepare(tb)
        fs, _ = tb.vfs.resolve("/pfs/x")
        assert fs is fw.layer

    def test_nfs_and_local_supported(self):
        """The paper validated Tracefs on ext3 and NFS."""
        for mount in ("/tmp", "/home"):
            tb = build_testbed()
            fw = Tracefs(TracefsConfig(target_mount=mount))
            fw.prepare(tb)
            assert tb.vfs.resolve(mount + "/f")[0] is fw.layer

    def test_finalize_unmounts(self):
        _, tr = traced()
        # after finalize, a fresh testbed path check is impossible here,
        # but the bundle metadata records the mount and capture counts
        assert tr.bundle.metadata["target_mount"] == "/tmp"
        assert tr.bundle.metadata["ops_seen"] > 0


class TestCapture:
    def test_vfs_layer_events(self):
        _, tr = traced()
        events = tr.bundle.all_events()
        assert events
        assert all(e.layer is EventLayer.VFS for e in events)
        names = {e.name for e in events}
        assert {"vfs_open", "vfs_write", "vfs_read", "vfs_unlink"} <= names

    def test_counters_aggregate(self):
        _, tr = traced()
        counters = tr.bundle.metadata["counters"]
        assert counters["write"]["calls"] == 6 * 4  # 6 files x 4 blocks
        assert counters["write"]["nbytes"] == 6 * 128 * KiB

    def test_counters_only_mode_records_no_events(self):
        _, tr = traced(TracefsConfig(target_mount="/tmp", counters_only=True))
        assert tr.bundle.total_events() == 0
        assert tr.bundle.metadata["counters"]["write"]["calls"] > 0

    def test_sees_mmap_io_that_ptrace_misses(self):
        """§4.2: VFS capture includes memory-mapped I/O."""
        _, tr = traced(
            args={"path": "/tmp/mapped", "block_size": 16 * KiB, "n_mmap_writes": 5},
            workload=mmap_mix,
        )
        writes = [e for e in tr.bundle.all_events() if e.name == "vfs_write"]
        assert len(writes) == 6  # 1 explicit + 5 mmap stores

    def test_granularity_spec_limits_recording(self):
        cfg = TracefsConfig(target_mount="/tmp", spec="omit stat, fstat, readdir\ntrace *")
        _, tr = traced(cfg)
        names = {e.name for e in tr.bundle.all_events()}
        assert "vfs_stat" not in names
        assert "vfs_write" in names

    def test_spec_size_clause(self):
        cfg = TracefsConfig(
            target_mount="/tmp",
            spec="omit write if size < %d\ntrace *" % (32 * KiB),
        )
        _, tr = traced(
            cfg,
            args=dict(IO_ARGS, block_size=16 * KiB),
        )
        assert not [e for e in tr.bundle.all_events() if e.name == "vfs_write"]


class TestAnonymization:
    def test_field_encryption_applied_at_capture(self):
        cfg = TracefsConfig(
            target_mount="/tmp",
            encrypt_fields=("user", "path"),
            encryption_key=KEY,
        )
        _, tr = traced(cfg)
        for e in tr.bundle.all_events():
            assert e.user.startswith("enc:")
            if e.path is not None:
                assert e.path.startswith("enc:")

    def test_encrypted_fields_recoverable_with_key(self):
        import base64

        from repro.trace.crypto import cbc_decrypt

        cfg = TracefsConfig(
            target_mount="/tmp", encrypt_fields=("user",), encryption_key=KEY
        )
        _, tr = traced(cfg)
        token = tr.bundle.all_events()[0].user
        blob = base64.urlsafe_b64decode(token[4:])
        assert cbc_decrypt(KEY, blob[:8], blob[8:]) == b"jdoe"


class TestBinaryOutput:
    def test_serialized_trace_round_trips(self):
        holder = {}

        def factory():
            fw = Tracefs(TracefsConfig(target_mount="/tmp", compress=True))
            holder["fw"] = fw
            return fw

        run_traced(factory, io_intensive, IO_ARGS, nprocs=1)
        blob = holder["fw"].layer.serialize()
        tf = decode_trace_file(blob)
        assert len(tf) == holder["fw"].layer.ops_recorded
        assert tf.framework == "tracefs"


class TestOverhead:
    def test_full_tracing_within_authors_ceiling(self):
        """§2.2: 'up to 12.4% elapsed time overhead for tracing all file
        system operations on an I/O intensive workload'."""
        m = measure_overhead(
            lambda: Tracefs(TracefsConfig(target_mount="/tmp")),
            io_intensive,
            IO_ARGS,
            nprocs=1,
        )
        assert 0.0 < m.elapsed_overhead <= 0.124

    def test_advanced_features_add_overhead(self):
        base = measure_overhead(
            lambda: Tracefs(TracefsConfig(target_mount="/tmp")),
            io_intensive, IO_ARGS, nprocs=1,
        )
        fancy = measure_overhead(
            lambda: Tracefs(
                TracefsConfig(
                    target_mount="/tmp",
                    checksum=True,
                    encrypt_fields=("user", "path"),
                    encryption_key=KEY,
                )
            ),
            io_intensive, IO_ARGS, nprocs=1,
        )
        assert fancy.elapsed_overhead > base.elapsed_overhead

    def test_counter_mode_cheapest(self):
        full = measure_overhead(
            lambda: Tracefs(TracefsConfig(target_mount="/tmp")),
            io_intensive, IO_ARGS, nprocs=1,
        )
        counters = measure_overhead(
            lambda: Tracefs(TracefsConfig(target_mount="/tmp", counters_only=True)),
            io_intensive, IO_ARGS, nprocs=1,
        )
        assert counters.elapsed_overhead < full.elapsed_overhead

    def test_classification(self):
        from repro.core.features import Feature

        c = Tracefs(TracefsConfig()).classification()
        assert c.framework_name == "Tracefs"
        assert c.cell(Feature.TRACE_FORMAT) == "Binary"


class TestEventCountersUnit:
    def test_counter_arithmetic(self):
        c = EventCounters()
        c.record("write", 100, 0.5)
        c.record("write", 50, 0.25)
        c.record("stat", None, 0.1)
        assert c.calls("write") == 2
        assert c.nbytes("write") == 150
        assert c.total_time("write") == pytest.approx(0.75)
        assert c.calls("unlink") == 0
        assert c.total_calls == 3
        assert "write" in c.render()
        assert c.as_dict()["stat"]["calls"] == 1
