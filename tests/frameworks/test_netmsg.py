"""MsgTrace tests: the taxonomy's extensibility exercise (§6 future work)."""

import numpy as np
import pytest

from repro.core.features import Feature
from repro.core.summary_table import render_summary_table
from repro.core.values import EventKind
from repro.frameworks.base import FRAMEWORK_REGISTRY
from repro.frameworks.netmsg import MsgTrace, MsgTraceConfig
from repro.harness.experiment import measure_overhead, run_traced
from repro.trace.events import EventLayer
from repro.units import KiB
from repro.workloads import AccessPattern, mpi_io_test


def ring_app(mpi, args):
    """Each rank sends a payload to (rank+1) % size, then gathers."""
    nbytes = args.get("nbytes", 64 * KiB)
    dest = (mpi.rank + 1) % mpi.size
    yield from mpi.send(dest, "payload-%d" % mpi.rank, nbytes=nbytes)
    got = yield from mpi.recv()
    yield from mpi.barrier()
    yield from mpi.gather(got, root=0)
    return got


class TestCapture:
    def test_registered(self):
        assert FRAMEWORK_REGISTRY["msgtrace"] is MsgTrace

    def test_records_net_layer_events(self):
        _, traced = run_traced(MsgTrace, ring_app, {}, nprocs=4)
        events = traced.bundle.all_events()
        assert events
        assert all(e.layer is EventLayer.NET for e in events)
        names = {e.name for e in events}
        assert {"MPI_Send", "MPI_Recv", "MPI_Barrier", "MPI_Gather"} <= names

    def test_point_to_point_only_filter(self):
        _, traced = run_traced(
            lambda: MsgTrace(MsgTraceConfig(point_to_point_only=True)),
            ring_app, {}, nprocs=4,
        )
        names = {e.name for e in traced.bundle.all_events()}
        assert names == {"MPI_Send", "MPI_Recv"}

    def test_io_calls_not_captured(self):
        _, traced = run_traced(
            MsgTrace, mpi_io_test,
            {"pattern": AccessPattern.N_TO_N, "block_size": 64 * KiB, "nobj": 2,
             "path": "/pfs/out"},
            nprocs=2,
        )
        names = {e.name for e in traced.bundle.all_events()}
        assert not any(n.startswith("SYS_") for n in names)
        assert not any(n.startswith("MPI_File") for n in names)


class TestCommunicationMatrix:
    def test_ring_topology_recovered(self):
        holder = {}

        def factory():
            fw = MsgTrace()
            holder["fw"] = fw
            return fw

        run_traced(factory, ring_app, {"nbytes": 1000}, nprocs=4)
        matrix = holder["fw"].communication_matrix()
        expected = np.zeros((4, 4), dtype=np.int64)
        for src in range(4):
            expected[src, (src + 1) % 4] = 1000
        assert np.array_equal(matrix, expected)

    def test_matrix_in_bundle_metadata(self):
        _, traced = run_traced(MsgTrace, ring_app, {"nbytes": 500}, nprocs=3)
        matrix = traced.bundle.metadata["comm_matrix"]
        assert matrix[0][1] == 500
        assert matrix[0][0] == 0


class TestTaxonomyExtensibility:
    """The §6 claim: the unchanged taxonomy classifies a non-I/O tracer."""

    def test_classification_is_valid(self):
        c = MsgTrace().classification()
        assert c.framework_name == "MsgTrace"
        assert EventKind.NETWORK_MESSAGES in c[Feature.EVENT_TYPES]
        assert len(c) == 13

    def test_renders_alongside_the_paper_frameworks(self):
        from repro.core.casestudy import paper_table2

        table = render_summary_table(
            list(paper_table2().values()) + [MsgTrace().classification()]
        )
        assert "MsgTrace" in table and "Network messages" in table

    def test_recommendation_engine_handles_it(self):
        from repro.core.casestudy import paper_table2
        from repro.core.requirements import Requirements, recommend

        everyone = list(paper_table2().values()) + [MsgTrace().classification()]
        recs = recommend(
            Requirements(required_event_kinds={EventKind.NETWORK_MESSAGES}), everyone
        )
        assert [r.framework_name for r in recs if r.qualifies] == ["MsgTrace"]

    def test_overhead_is_negligible(self):
        m = measure_overhead(
            MsgTrace, mpi_io_test,
            {"pattern": AccessPattern.N_TO_1_NONSTRIDED, "block_size": 256 * KiB,
             "nobj": 16, "path": "/pfs/out"},
            nprocs=4,
        )
        assert m.elapsed_overhead < 0.01
