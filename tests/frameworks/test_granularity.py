"""Granularity spec language tests."""

import pytest

from repro.errors import FrameworkError
from repro.frameworks.tracefs.granularity import GranularitySpec


class TestParsing:
    def test_empty_spec_traces_everything(self):
        spec = GranularitySpec("")
        assert len(spec) == 0
        assert spec.should_trace("write")
        assert spec.should_trace("stat")

    def test_comments_and_blanks_ignored(self):
        spec = GranularitySpec("# header comment\n\nomit stat  # trailing\n")
        assert len(spec) == 1

    def test_bad_leading_keyword(self):
        with pytest.raises(FrameworkError):
            GranularitySpec("record write")

    def test_unknown_operation(self):
        with pytest.raises(FrameworkError):
            GranularitySpec("trace frobnicate")

    def test_missing_ops(self):
        with pytest.raises(FrameworkError):
            GranularitySpec("trace")

    def test_bad_clause_subject(self):
        with pytest.raises(FrameworkError):
            GranularitySpec("trace write if color = red")

    def test_bad_size_operator(self):
        with pytest.raises(FrameworkError):
            GranularitySpec("trace write if size ~ 5")

    def test_non_integer_bound(self):
        with pytest.raises(FrameworkError):
            GranularitySpec("trace write if size >= big")
        with pytest.raises(FrameworkError):
            GranularitySpec("trace write if uid = root")

    def test_dangling_if(self):
        with pytest.raises(FrameworkError):
            GranularitySpec("trace write if")


class TestMatching:
    def test_omit_specific_ops(self):
        spec = GranularitySpec("omit stat, fstat, readdir")
        assert not spec.should_trace("stat")
        assert not spec.should_trace("readdir")
        assert spec.should_trace("write")  # default trace

    def test_first_match_wins(self):
        spec = GranularitySpec("trace write if size >= 4096\nomit write\ntrace *")
        assert spec.should_trace("write", size=8192)
        assert not spec.should_trace("write", size=100)
        assert spec.should_trace("open")

    def test_star_matches_all_ops(self):
        spec = GranularitySpec("omit *")
        for op in ("open", "write", "stat", "unlink"):
            assert not spec.should_trace(op)

    def test_path_glob(self):
        spec = GranularitySpec('trace write if path glob "/data/*"\nomit write\ntrace *')
        assert spec.should_trace("write", path="/data/file.out")
        assert not spec.should_trace("write", path="/other/file.out")
        assert not spec.should_trace("write", path=None)

    def test_path_exact(self):
        spec = GranularitySpec('omit open if path = "/etc/hosts"')
        assert not spec.should_trace("open", path="/etc/hosts")
        assert spec.should_trace("open", path="/etc/passwd")

    def test_uid_clause(self):
        spec = GranularitySpec("omit * if uid = 0")
        assert not spec.should_trace("write", uid=0)
        assert spec.should_trace("write", uid=1000)

    def test_conjunction(self):
        spec = GranularitySpec(
            'trace write if path glob "/pfs/*" and size >= 1024\nomit write\ntrace *'
        )
        assert spec.should_trace("write", path="/pfs/x", size=2048)
        assert not spec.should_trace("write", path="/pfs/x", size=100)
        assert not spec.should_trace("write", path="/tmp/x", size=2048)

    def test_size_operators(self):
        for op, good, bad in [
            (">=", 10, 9), ("<=", 10, 11), (">", 11, 10), ("<", 9, 10), ("=", 10, 11),
        ]:
            spec = GranularitySpec("trace write if size %s 10\nomit write" % op)
            assert spec.should_trace("write", size=good), op
            assert not spec.should_trace("write", size=bad), op

    def test_multiple_ops_comma_separated(self):
        spec = GranularitySpec("omit read, write")
        assert not spec.should_trace("read")
        assert not spec.should_trace("write")
        assert spec.should_trace("fsync")

    def test_trace_all_constructor(self):
        assert GranularitySpec.trace_all().should_trace("anything-goes-to-default")
