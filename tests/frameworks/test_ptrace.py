"""//TRACE tests: interposition, throttling discovery, replay generation."""

import pytest

from repro.frameworks.base import FRAMEWORK_REGISTRY
from repro.errors import FrameworkError
from repro.frameworks.ptrace import (
    DependencyMap,
    PTrace,
    PTraceCollector,
    PTraceConfig,
    ThrottleSchedule,
    build_replayable,
)
from repro.harness.experiment import measure_overhead, run_traced
from repro.harness.figures import paper_testbed
from repro.trace.events import EventLayer
from repro.units import KiB
from repro.workloads import AccessPattern, mpi_io_test

NP = 4
COUPLED_ARGS = {
    "pattern": AccessPattern.N_TO_1_NONSTRIDED,
    "block_size": 256 * KiB,
    "nobj": 240,
    "path": "/pfs/out",
    "barrier_every": 16,
}
INDEP_ARGS = {
    "pattern": AccessPattern.N_TO_N,
    "block_size": 256 * KiB,
    "nobj": 240,
    "path": "/pfs/out",
    "barriers": False,
}


def tb():
    return paper_testbed(nprocs=NP)


class TestDependencyMapUnit:
    def test_validation(self):
        with pytest.raises(ValueError):
            DependencyMap(0)

    def test_edges_and_queries(self):
        d = DependencyMap(4)
        d.mark_probed(0)
        d.add_dependency(0, 1, 0.8)
        d.add_dependency(0, 2, 0.5)
        assert d.depends_on(1, 0)
        assert not d.depends_on(3, 0)
        assert d.dependents_of(0) == [1, 2]
        assert d.sensitivity(0, 1) == pytest.approx(0.8)
        assert d.sensitivity(0, 3) == 0.0
        assert d.n_edges == 2

    def test_self_edges_ignored(self):
        d = DependencyMap(2)
        d.add_dependency(1, 1, 0.9)
        assert d.n_edges == 0

    def test_density_counts_only_probed_sources(self):
        d = DependencyMap(3)
        d.mark_probed(0)
        d.add_dependency(0, 1, 1.0)
        d.add_dependency(0, 2, 1.0)
        assert d.density() == pytest.approx(1.0)
        d2 = DependencyMap(3)
        assert d2.density() == 0.0

    def test_global_coupling(self):
        d = DependencyMap(4)
        assert not d.is_globally_coupled()
        d.add_dependency(0, 1, 1.0)
        d.add_dependency(2, 3, 1.0)
        assert d.is_globally_coupled()  # 4/4 ranks involved

    def test_render(self):
        d = DependencyMap(2)
        d.mark_probed(0)
        d.add_dependency(0, 1, 0.75)
        out = d.render()
        assert "node 0 -> rank 1" in out


class TestThrottleScheduleUnit:
    def test_validation(self):
        with pytest.raises(FrameworkError):
            ThrottleSchedule(0.0, 1e-3)
        with pytest.raises(FrameworkError):
            ThrottleSchedule(0.1, -1.0)

    def test_three_phase_cycle(self):
        s = ThrottleSchedule(epoch_duration=1.0, delay=5e-3)
        s.register_sampled(7)
        s.register_sampled(9)
        # epoch 0: rest; 1: probe 7; 2: recovery; 3: rest; 4: probe 9...
        assert s.throttled_node(0.5) is None
        assert s.throttled_node(1.5) == 7
        assert s.throttled_node(2.5) is None
        assert s.throttled_node(3.5) is None
        assert s.throttled_node(4.5) == 9
        assert s.throttled_node(7.5) is None  # plan exhausted

    def test_delay_for(self):
        s = ThrottleSchedule(1.0, 3e-3)
        s.register_sampled(0)
        assert s.delay_for(1.5, 0) == 3e-3
        assert s.delay_for(1.5, 1) == 0.0
        assert s.delay_for(0.5, 0) == 0.0

    def test_plan_duration(self):
        s = ThrottleSchedule(0.5, 1e-3, passes=2)
        s.register_sampled(0)
        s.register_sampled(1)
        assert s.plan_duration == pytest.approx((3 * 4 + 1) * 0.5)

    def test_empty_plan_never_throttles(self):
        s = ThrottleSchedule(1.0, 1e-3)
        assert s.throttled_node(1.5) is None


class TestInterposition:
    def test_registered(self):
        assert FRAMEWORK_REGISTRY["ptrace"] is PTrace
        assert FRAMEWORK_REGISTRY["ptrace-collector"] is PTraceCollector

    def test_near_zero_overhead(self):
        """§4.3: overhead '~0%' without throttling."""
        m = measure_overhead(
            PTrace, mpi_io_test,
            dict(COUPLED_ARGS, nobj=32),
            config=tb(), nprocs=NP,
        )
        assert m.elapsed_overhead < 0.02

    def test_captures_io_calls_only(self):
        """'All I/O system calls are captured' — and nothing else."""
        _, traced = run_traced(
            PTrace, mpi_io_test, dict(COUPLED_ARGS, nobj=8), config=tb(), nprocs=NP
        )
        from repro.frameworks.ptrace.framework import IO_TRACED_CALLS, MPI_SYNC_CALLS

        for e in traced.bundle.all_events():
            if e.layer is EventLayer.SYSCALL:
                assert e.name in IO_TRACED_CALLS
            else:
                assert e.name in MPI_SYNC_CALLS

    def test_mpi_sync_markers_optional(self):
        _, traced = run_traced(
            lambda: PTrace(PTraceConfig(record_mpi_sync=False)),
            mpi_io_test, dict(COUPLED_ARGS, nobj=8), config=tb(), nprocs=NP,
        )
        assert all(
            e.layer is EventLayer.SYSCALL for e in traced.bundle.all_events()
        )


class TestDiscovery:
    def collect(self, args, sampling=1.0, **kw):
        coll = PTraceCollector(sampling=sampling, epoch_duration=0.2, **kw)
        holder = {}

        def factory():
            holder["c"] = coll
            return coll

        m = measure_overhead(factory, mpi_io_test, args, config=tb(), nprocs=NP)
        return m, holder["c"].result

    def test_sampling_validation(self):
        with pytest.raises(FrameworkError):
            PTraceCollector(sampling=1.5)

    def test_coupled_app_yields_dense_depmap(self):
        m, res = self.collect(COUPLED_ARGS, sampling=1.0)
        assert res.bundle.metadata["plan_completed"]
        assert res.depmap.n_edges == NP * (NP - 1)
        assert res.depmap.is_globally_coupled()

    def test_independent_app_yields_empty_depmap(self):
        m, res = self.collect(INDEP_ARGS, sampling=1.0)
        assert res.bundle.metadata["plan_completed"]
        assert res.depmap.n_edges == 0
        assert not res.depmap.is_globally_coupled()

    def test_sampling_zero_probes_nothing(self):
        m, res = self.collect(COUPLED_ARGS, sampling=0.0)
        assert res.depmap.n_edges == 0
        assert len(res.depmap.probed) == 0
        assert res.injected_delay == 0.0
        assert m.elapsed_overhead < 0.02

    def test_overhead_scales_with_sampling(self):
        m_full, _ = self.collect(COUPLED_ARGS, sampling=1.0)
        m_half, _ = self.collect(COUPLED_ARGS, sampling=0.5)
        m_none, _ = self.collect(COUPLED_ARGS, sampling=0.0)
        assert m_none.elapsed_overhead < m_half.elapsed_overhead < m_full.elapsed_overhead

    def test_partial_sampling_probes_prefix(self):
        _, res = self.collect(COUPLED_ARGS, sampling=0.5)
        assert res.depmap.probed == {0, 1}
        # every probed node's dependents were found
        for node in (0, 1):
            assert len(res.depmap.dependents_of(node)) == NP - 1


class TestReplayGeneration:
    def test_coupled_trace_gets_syncs(self):
        coll = PTraceCollector(sampling=1.0, epoch_duration=0.2)
        holder = {}

        def factory():
            holder["c"] = coll
            return coll

        run_traced(factory, mpi_io_test, COUPLED_ARGS, config=tb(), nprocs=NP)
        app = build_replayable(holder["c"].result, per_event_overhead=25e-6)
        assert app.metadata["sync_inserted"]
        kinds = {op.kind for s in app.scripts.values() for op in s.ops}
        assert "sync" in kinds and "write" in kinds
        assert app.nprocs == NP
        # replayed volume matches the workload
        assert app.total_io_bytes() == NP * 240 * 256 * KiB

    def test_blind_map_strips_syncs(self):
        coll = PTraceCollector(sampling=0.0, epoch_duration=0.2)
        holder = {}

        def factory():
            holder["c"] = coll
            return coll

        run_traced(factory, mpi_io_test, COUPLED_ARGS, config=tb(), nprocs=NP)
        app = build_replayable(holder["c"].result)
        assert not app.metadata["sync_inserted"]
        kinds = {op.kind for s in app.scripts.values() for op in s.ops}
        assert "sync" not in kinds
