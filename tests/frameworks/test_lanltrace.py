"""LANL-Trace framework tests: attach modes, outputs, timing jobs, overhead."""

import pytest

from repro.frameworks.base import FRAMEWORK_REGISTRY
from repro.errors import FrameworkError
from repro.frameworks.lanltrace import (
    LANLTrace,
    LANLTraceConfig,
    render_aggregate_timing,
    render_call_summary,
    render_raw_trace,
)
from repro.harness.experiment import measure_overhead, run_traced
from repro.harness.figures import paper_testbed
from repro.trace.events import EventLayer
from repro.units import KiB
from repro.workloads import AccessPattern, mpi_io_test

ARGS = {
    "pattern": AccessPattern.N_TO_1_STRIDED,
    "block_size": 32 * KiB,
    "nobj": 4,
    "path": "/pfs/mpi_io_test.out",
}


def traced_run(config=None, nprocs=4, args=ARGS):
    return run_traced(
        lambda: LANLTrace(config or LANLTraceConfig()),
        mpi_io_test,
        args,
        config=paper_testbed(nprocs=nprocs),
        nprocs=nprocs,
    )


class TestConfig:
    def test_registered(self):
        assert FRAMEWORK_REGISTRY["lanl-trace"] is LANLTrace

    def test_bad_mode_rejected(self):
        with pytest.raises(FrameworkError):
            LANLTraceConfig(mode="dtrace")


class TestCapture:
    def test_ltrace_mode_captures_both_layers(self):
        _, traced = traced_run(LANLTraceConfig(mode="ltrace"))
        bundle = traced.bundle
        assert bundle.n_sources == 4
        layers = {e.layer for e in bundle.all_events()}
        assert layers == {EventLayer.SYSCALL, EventLayer.LIBCALL}
        names = {e.name for e in bundle.all_events()}
        assert "MPI_File_write_at" in names and "SYS_write" in names

    def test_strace_mode_syscalls_only(self):
        """§4.1.1: 'system calls only when using strace'."""
        _, traced = traced_run(LANLTraceConfig(mode="strace"))
        layers = {e.layer for e in traced.bundle.all_events()}
        assert layers == {EventLayer.SYSCALL}

    def test_per_rank_trace_files_with_identity(self):
        _, traced = traced_run()
        for rank, tf in traced.bundle.files.items():
            assert tf.rank == rank
            assert tf.pid == 10000 + rank
            assert tf.hostname
            assert len(tf) > 0

    def test_timing_job_stamps_two_barriers_per_rank(self):
        _, traced = traced_run()
        stamps = traced.bundle.barrier_stamps
        labels = {s.barrier_label for s in stamps}
        assert labels == {
            "before /mpi_io_test.exe",
            "after /mpi_io_test.exe",
        }
        assert len(stamps) == 2 * 4

    def test_timing_job_disabled(self):
        _, traced = traced_run(LANLTraceConfig(timing_job=False))
        assert traced.bundle.barrier_stamps == []

    def test_metadata(self):
        _, traced = traced_run()
        md = traced.bundle.metadata
        assert md["framework"] == "lanl-trace"
        assert md["mode"] == "ltrace"
        assert md["nprocs"] == 4


class TestOutputs:
    """The three Figure 1 output types."""

    def test_raw_trace_lines_look_like_figure1(self):
        _, traced = traced_run()
        text = render_raw_trace(traced.bundle, rank=0)
        assert "SYS_open(" in text
        assert "SYS_statfs64(" in text
        lines = text.strip().splitlines()
        # every line: timestamp name(args) = result <duration>
        import re

        for line in lines[:20]:
            assert re.match(r"^\d+\.\d{6} \w+\(.*\) (= .* )?<", line), line

    def test_aggregate_timing_format(self):
        _, traced = traced_run()
        text = render_aggregate_timing(traced.bundle)
        assert "# Barrier before /mpi_io_test.exe" in text
        assert "# Barrier after /mpi_io_test.exe" in text
        assert "Entered barrier at" in text
        assert "Exited barrier at" in text

    def test_call_summary_counts(self):
        _, traced = traced_run()
        text = render_call_summary(traced.bundle)
        assert "SUMMARY COUNT OF TRACED CALL(S)" in text
        assert "MPI_Barrier" in text
        assert "SYS_open" in text
        # the counts columns parse as integers
        for line in text.splitlines()[3:]:
            parts = line.split()
            assert int(parts[1]) > 0

    def test_summary_counts_match_bundle(self):
        from repro.analysis.summary import summarize_calls

        _, traced = traced_run()
        s = summarize_calls(traced.bundle)
        writes_in_bundle = sum(
            1 for e in traced.bundle.all_events() if e.name == "SYS_write"
        )
        assert s["SYS_write"].n_calls == writes_in_bundle == 4 * 4


class TestOverheadBehaviour:
    def test_tracing_slows_the_application(self):
        m = measure_overhead(
            LANLTrace, mpi_io_test, ARGS, config=paper_testbed(nprocs=4), nprocs=4
        )
        assert m.elapsed_overhead > 0.10
        assert m.bandwidth_overhead > 0.05

    def test_strace_cheaper_than_ltrace(self):
        """Fewer seams, fewer events, less overhead."""
        m_ltrace = measure_overhead(
            lambda: LANLTrace(LANLTraceConfig(mode="ltrace")),
            mpi_io_test, ARGS, config=paper_testbed(nprocs=4), nprocs=4,
        )
        m_strace = measure_overhead(
            lambda: LANLTrace(LANLTraceConfig(mode="strace")),
            mpi_io_test, ARGS, config=paper_testbed(nprocs=4), nprocs=4,
        )
        assert m_strace.elapsed_overhead < m_ltrace.elapsed_overhead

    def test_events_intercepted_counter(self):
        holder = {}

        def factory():
            fw = LANLTrace()
            holder["fw"] = fw
            return fw

        run_traced(factory, mpi_io_test, ARGS, config=paper_testbed(nprocs=2), nprocs=2)
        assert holder["fw"].events_intercepted > 0

    def test_classification_reflects_mode(self):
        from repro.core.features import Feature

        lt = LANLTrace(LANLTraceConfig(mode="strace"))
        c = lt.classification()
        assert c.cell(Feature.EVENT_TYPES) == "Systems calls"
        lt2 = LANLTrace(LANLTraceConfig(mode="ltrace"))
        assert "library calls" in lt2.classification().cell(Feature.EVENT_TYPES)
