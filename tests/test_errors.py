"""The exception hierarchy's contracts."""

import pytest

from repro import errors


def test_everything_derives_from_repro_error():
    for name in dir(errors):
        obj = getattr(errors, name)
        if isinstance(obj, type) and issubclass(obj, Exception):
            assert issubclass(obj, errors.ReproError), name


def test_simos_errors_carry_errno_names():
    cases = {
        errors.FileNotFound: "ENOENT",
        errors.FileExists: "EEXIST",
        errors.NotADirectory: "ENOTDIR",
        errors.IsADirectory: "EISDIR",
        errors.BadFileDescriptor: "EBADF",
        errors.PermissionDenied: "EACCES",
        errors.NoSpaceLeft: "ENOSPC",
        errors.InvalidArgument: "EINVAL",
        errors.CrossDeviceLink: "EXDEV",
    }
    for cls, errno_name in cases.items():
        assert cls.errno_name == errno_name
        assert issubclass(cls, errors.SimOSError)


def test_deadlock_error_lists_blocked():
    err = errors.DeadlockError(["a", "b"])
    assert err.blocked == ["a", "b"]
    assert "a" in str(err) and "b" in str(err)


def test_trace_error_family():
    assert issubclass(errors.TraceChecksumError, errors.TraceFormatError)
    assert issubclass(errors.TraceTruncatedError, errors.TraceFormatError)
    assert issubclass(errors.TraceFormatError, errors.TraceError)


def test_catching_the_family_root():
    with pytest.raises(errors.ReproError):
        raise errors.StraceNotAvailable("no strace")
