"""Library-wide API contracts: documentation, exports, determinism."""

import importlib
import pkgutil

import pytest

import repro


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, "repro."):
        if info.name.endswith("__main__"):
            continue  # importing it runs the CLI
        yield importlib.import_module(info.name)


class TestDocumentation:
    def test_every_module_has_a_docstring(self):
        undocumented = [
            m.__name__ for m in _walk_modules() if not (m.__doc__ or "").strip()
        ]
        assert undocumented == []

    def test_every_all_export_exists_and_is_documented(self):
        problems = []
        for mod in _walk_modules():
            for name in getattr(mod, "__all__", []):
                obj = getattr(mod, name, None)
                if obj is None:
                    problems.append("%s.%s missing" % (mod.__name__, name))
                    continue
                if callable(obj) and not isinstance(obj, type):
                    if not (getattr(obj, "__doc__", "") or "").strip():
                        problems.append("%s.%s undocumented" % (mod.__name__, name))
                elif isinstance(obj, type):
                    if not (obj.__doc__ or "").strip():
                        problems.append("%s.%s undocumented" % (mod.__name__, name))
        assert problems == []

    def test_public_classes_have_documented_public_methods(self):
        import inspect

        problems = []
        for mod in _walk_modules():
            for name in getattr(mod, "__all__", []):
                obj = getattr(mod, name, None)
                if not isinstance(obj, type):
                    continue
                for attr, member in vars(obj).items():
                    if attr.startswith("_") or not inspect.isfunction(member):
                        continue
                    if not (member.__doc__ or "").strip():
                        problems.append("%s.%s.%s" % (mod.__name__, name, attr))
        assert problems == []


class TestFrameworkRegistry:
    def test_all_frameworks_registered_and_classifiable(self):
        import repro.frameworks.lanltrace  # noqa: F401
        import repro.frameworks.netmsg  # noqa: F401
        import repro.frameworks.ptrace  # noqa: F401
        import repro.frameworks.tracefs  # noqa: F401
        from repro.frameworks.base import FRAMEWORK_REGISTRY

        assert {"lanl-trace", "tracefs", "ptrace", "ptrace-collector", "msgtrace"} <= set(
            FRAMEWORK_REGISTRY
        )
        for name, cls in FRAMEWORK_REGISTRY.items():
            c = cls().classification()
            assert len(c) == 13, name

    def test_base_framework_defaults(self):
        from repro.frameworks.base import TracingFramework, register_framework

        fw = TracingFramework()
        assert fw.wrap_app("sentinel") == "sentinel"
        fw.prepare(None)  # no-op
        fw.setup_rank(0, None, None)  # no-op
        with pytest.raises(NotImplementedError):
            fw.classification()
        with pytest.raises(ValueError):
            register_framework(TracingFramework)  # name "null" rejected


class TestEndToEndDeterminism:
    def test_figure_point_bit_identical_across_runs(self):
        from repro.harness.figures import figure_series
        from repro.units import KiB, MiB

        def one():
            s = figure_series(
                4, block_sizes=[128 * KiB], total_bytes_per_rank=1 * MiB, nprocs=4
            )
            p = s.points[0]
            return (
                p.untraced_bandwidth,
                p.traced_bandwidth,
                p.bandwidth_overhead,
                p.elapsed_overhead,
            )

        assert one() == one()

    def test_traced_bundle_identical_across_runs(self):
        from repro.frameworks.lanltrace import LANLTrace
        from repro.harness.experiment import run_traced
        from repro.units import KiB
        from repro.workloads import AccessPattern, mpi_io_test

        def one():
            _, traced = run_traced(
                LANLTrace, mpi_io_test,
                {"pattern": AccessPattern.N_TO_N, "block_size": 64 * KiB,
                 "nobj": 4, "path": "/pfs/out"},
                nprocs=2,
            )
            return traced.bundle.all_events()

        assert one() == one()


class TestNFSReadPath:
    def test_read_moves_payload_back_over_the_wire(self):
        from repro.cluster import Cluster, ClusterConfig
        from repro.simfs.nfs import NFS
        from repro.simfs.vfs import CallerContext, O_CREAT, O_RDWR
        from repro.units import KiB

        cluster = Cluster(ClusterConfig(n_nodes=1))
        sim = cluster.sim
        nfs = NFS(sim, cluster.network)
        ctx = CallerContext(node=cluster.node(0), pid=1, uid=1000, user="t")

        def body():
            ino = yield from nfs.op_open(ctx, "f", O_RDWR | O_CREAT)
            yield from nfs.op_write(ctx, ino, 0, 256 * KiB, stream="s")
            before = cluster.network.bytes_moved
            n = yield from nfs.op_read(ctx, ino, 0, 256 * KiB, stream="s")
            reply_bytes = cluster.network.bytes_moved - before
            return n, reply_bytes

        n, reply_bytes = sim.run_process(body())
        assert n == 256 * KiB
        assert reply_bytes >= 256 * KiB  # payload traveled back
