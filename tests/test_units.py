"""Unit tests for byte/time unit helpers."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.units import (
    GiB,
    KiB,
    MiB,
    format_bandwidth,
    format_duration,
    format_size,
    parse_duration,
    parse_size,
)


class TestParseSize:
    def test_plain_int_passthrough(self):
        assert parse_size(4096) == 4096

    def test_negative_int_rejected(self):
        with pytest.raises(ValueError):
            parse_size(-1)

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("0", 0),
            ("512", 512),
            ("512B", 512),
            ("64KiB", 64 * KiB),
            ("64KB", 64 * KiB),  # decimal suffixes alias binary (see module doc)
            ("64k", 64 * KiB),
            ("8192KB", 8192 * KiB),
            ("1.5MiB", int(1.5 * MiB)),
            ("2GiB", 2 * GiB),
            ("2g", 2 * GiB),
            (" 10 MiB ", 10 * MiB),
        ],
    )
    def test_suffixes(self, text, expected):
        assert parse_size(text) == expected

    @pytest.mark.parametrize("bad", ["", "abc", "10XB", "-5KiB", "1.0.0MiB"])
    def test_unparseable(self, bad):
        with pytest.raises(ValueError):
            parse_size(bad)

    def test_fractional_bytes_rejected(self):
        with pytest.raises(ValueError):
            parse_size("0.3B")


class TestFormatSize:
    @pytest.mark.parametrize(
        "n,expected",
        [
            (0, "0B"),
            (512, "512B"),
            (64 * KiB, "64KiB"),
            (8 * MiB, "8MiB"),
            (int(1.5 * MiB), "1.50MiB"),
            (3 * GiB, "3GiB"),
            (-64 * KiB, "-64KiB"),
        ],
    )
    def test_examples(self, n, expected):
        assert format_size(n) == expected

    @given(st.integers(min_value=0, max_value=2**50))
    def test_round_trip_exact_multiples(self, n):
        # Whole multiples of a suffix must render without precision loss;
        # inexact quotients render with a fraction (lossy by design).
        rendered = format_size(n * KiB)
        if "." not in rendered:
            assert parse_size(rendered) == n * KiB


class TestDurations:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("1", 1.0),
            ("1s", 1.0),
            (2.5, 2.5),
            ("15ms", 0.015),
            ("3.2us", 3.2e-6),
            ("10ns", 1e-8),
            ("2min", 120.0),
            ("1h", 3600.0),
        ],
    )
    def test_parse(self, text, expected):
        assert parse_duration(text) == pytest.approx(expected)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            parse_duration(-1.0)
        with pytest.raises(ValueError):
            parse_duration("bogus")

    @pytest.mark.parametrize(
        "seconds,contains",
        [
            (0.0, "0s"),
            (2.0, "s"),
            (0.005, "ms"),
            (3e-6, "us"),
            (5e-9, "ns"),
            (90.0, "min"),
            (7200.0, "h"),
        ],
    )
    def test_format_units(self, seconds, contains):
        assert contains in format_duration(seconds)

    def test_format_negative(self):
        assert format_duration(-1.0).startswith("-")


class TestBandwidth:
    def test_format(self):
        assert format_bandwidth(64 * KiB) == "64KiB/s"

    def test_nonfinite(self):
        assert format_bandwidth(math.inf) == "inf/s"
        assert format_bandwidth(math.nan) == "nan/s"
