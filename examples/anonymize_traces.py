#!/usr/bin/env python3
"""Trace anonymization for public release (paper §3.1 "Anonymization").

LANL releases traces of production applications to collaborators (§4.1);
sensitive fields (usernames, hostnames, paths) must go.  This example
collects a trace with Tracefs and shows both taxonomy levels:

* Tracefs's own **field-selective CBC encryption** (level 4 "Advanced":
  recoverable with the key — "non-zero probability of trace encryption
  being subverted");
* the library's **randomizing anonymizer** (true anonymization: the
  paper's missing level-5 feature) applied before release.

Run:  python examples/anonymize_traces.py
"""

import base64

from repro.frameworks.tracefs import Tracefs, TracefsConfig
from repro.harness.experiment import run_traced
from repro.trace.anonymize import RandomizingAnonymizer, anonymize_bundle
from repro.trace.crypto import cbc_decrypt
from repro.trace.text_format import encode_event
from repro.units import KiB
from repro.workloads.generators import io_intensive

KEY = b"0123456789abcdef"


def main() -> None:
    print("collecting a trace with Tracefs (CBC-encrypting user+path)...")
    _, traced = run_traced(
        lambda: Tracefs(
            TracefsConfig(
                target_mount="/tmp",
                encrypt_fields=("user", "path"),
                encryption_key=KEY,
            )
        ),
        io_intensive,
        {"base": "/tmp/projects/secret-app", "n_files": 3,
         "file_size": 64 * KiB, "block_size": 32 * KiB},
        nprocs=1,
    )
    bundle = traced.bundle
    sample = next(e for e in bundle.all_events() if e.name == "vfs_open")

    print("\n=== Tracefs output (encrypted fields) ===")
    print(encode_event(sample, annotated=False))
    print("user field: %s..." % sample.user[:24])

    blob = base64.urlsafe_b64decode(sample.user[4:])
    print("with the key, the owner can still recover it: %r"
          % cbc_decrypt(KEY, blob[:8], blob[8:]).decode())

    print("\n=== Randomizing anonymization for release (irrecoverable) ===")
    released = anonymize_bundle(bundle, RandomizingAnonymizer())
    sample2 = next(e for e in released.all_events() if e.name == "vfs_open")
    print(encode_event(sample2, annotated=False))
    print("user field: %s (random pseudonym, mapping not stored)" % sample2.user)

    leaked = [
        e for e in released.all_events()
        if "secret-app" in str(e.args) + str(e.path or "") + e.user
    ]
    print("\nevents still mentioning 'secret-app' after release scrub: %d" % len(leaked))
    assert not leaked


if __name__ == "__main__":
    main()
