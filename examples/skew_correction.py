#!/usr/bin/env python3
"""Clock skew & drift accounting (paper §3.1; Figure 1's timing output).

Builds a cluster whose clocks disagree by hundreds of milliseconds and
drift tens of microseconds per second, traces a run with LANL-Trace (the
only surveyed framework that accounts for skew/drift), and shows:

* the raw per-node timestamps disagreeing wildly;
* the barrier timing job output;
* the estimated per-node clock maps and the corrected global timeline.

Run:  python examples/skew_correction.py
"""

from repro.analysis.skew import estimate_clocks
from repro.analysis.timeline import global_timeline
from repro.cluster.cluster import ClusterConfig
from repro.frameworks.lanltrace import LANLTrace, render_aggregate_timing
from repro.harness.experiment import run_traced
from repro.harness.testbed import TestbedConfig
from repro.units import KiB
from repro.workloads import AccessPattern, mpi_io_test

NPROCS = 6
BAD_CLOCKS = TestbedConfig(
    cluster=ClusterConfig(
        n_nodes=NPROCS,
        clock_skew_stddev=0.6,
        clock_drift_stddev=5e-5,
        seed=13,
    )
)


def main() -> None:
    print("running traced job on a cluster with bad clocks...")
    _, traced = run_traced(
        LANLTrace,
        mpi_io_test,
        {"pattern": AccessPattern.N_TO_1_NONSTRIDED, "block_size": 128 * KiB,
         "nobj": 16, "path": "/pfs/out"},
        config=BAD_CLOCKS,
        nprocs=NPROCS,
    )
    bundle = traced.bundle

    print("\n=== the problem: one barrier, six 'simultaneous' local stamps ===")
    print("\n".join(render_aggregate_timing(bundle).splitlines()[:8]))

    print("\n=== estimation from the timing-job stamps ===")
    estimates = estimate_clocks(bundle.barrier_stamps)
    reference_time = bundle.barrier_stamps[0].exited_at
    for rank in sorted(estimates):
        est = estimates[rank]
        offset_ms = 1e3 * (est.to_reference(reference_time) - reference_time)
        print("rank %d: offset vs rank 0 %+9.3f ms, rate %.8f%s"
              % (rank, offset_ms, est.beta,
                 "  (drift detected)" if est.has_drift else ""))

    print("\n=== merged timeline, first write per rank ===")
    raw = global_timeline(bundle)
    corrected = global_timeline(bundle, estimates)

    def first_writes(timeline):
        seen = {}
        for t, e in timeline:
            if e.name == "SYS_write" and e.rank not in seen:
                seen[e.rank] = t
        return seen

    raw_w, cor_w = first_writes(raw), first_writes(corrected)
    print("%-6s %18s %18s" % ("rank", "raw local time", "corrected time"))
    for rank in sorted(raw_w):
        print("%-6d %18.6f %18.6f" % (rank, raw_w[rank], cor_w[rank]))
    print("\nraw spread:       %8.1f ms" % (1e3 * (max(raw_w.values()) - min(raw_w.values()))))
    print("corrected spread: %8.1f ms" % (1e3 * (max(cor_w.values()) - min(cor_w.values()))))


if __name__ == "__main__":
    main()
