#!/usr/bin/env python3
"""//TRACE end-to-end: trace, discover dependencies, generate, replay.

The full //TRACE pipeline of paper §2.3/§4.3:

1. run the application under I/O-call interposition with epoch-rotated
   node throttling (causality discovery);
2. inspect the inter-node dependency map;
3. build the replayable pseudo-application (deperturbed think times +
   dependency-derived synchronization);
4. replay it on a fresh simulated cluster and measure fidelity with the
   paper's end-to-end-time method.

Run:  python examples/replay_study.py
"""

from repro.frameworks.ptrace import PTraceCollector, build_replayable
from repro.harness.experiment import measure_overhead
from repro.harness.figures import paper_testbed
from repro.replay import compare_end_to_end, replay
from repro.units import KiB
from repro.workloads import AccessPattern, mpi_io_test

NPROCS = 4
ARGS = {
    "pattern": AccessPattern.N_TO_1_NONSTRIDED,
    "block_size": 256 * KiB,
    "nobj": 240,
    "path": "/pfs/app.out",
    "barrier_every": 16,
}


def main() -> None:
    testbed = paper_testbed(nprocs=NPROCS)

    print("1. collection run (interposition + throttling discovery)...")
    collector = PTraceCollector(sampling=1.0, epoch_duration=0.2)
    holder = {}

    def factory():
        holder["c"] = collector
        return collector

    measurement = measure_overhead(
        factory, mpi_io_test, ARGS, config=testbed, nprocs=NPROCS
    )
    result = holder["c"].result
    print("   elapsed overhead of collection: %.1f%%"
          % (100 * measurement.elapsed_overhead))
    print("   injected throttle delay: %.2fs" % result.injected_delay)

    print("\n2. discovered dependency map:")
    print(result.depmap.render())

    print("3. generating replayable pseudo-application...")
    app = build_replayable(
        result, per_event_overhead=collector.base.config.per_event_cost
    )
    print("   %d rank scripts, %.0f MiB of scripted I/O, syncs inserted: %s"
          % (app.nprocs, app.total_io_bytes() / 2**20, app.metadata["sync_inserted"]))

    print("\n4. replaying on a fresh cluster...")
    replayed = replay(app, config=testbed, seed=99)
    fidelity = compare_end_to_end(measurement.untraced.elapsed, replayed.elapsed)
    print("   original (untraced): %.2fs" % measurement.untraced.elapsed)
    print("   replay:              %.2fs" % replayed.elapsed)
    print("   fidelity error:      %.1f%%  (paper: 'as low as 6%%')"
          % fidelity.error_percent)


if __name__ == "__main__":
    main()
