#!/usr/bin/env python3
"""The taxonomy case study: classify all three frameworks (paper §4).

Renders Table 2, diffs two frameworks, and runs the requirements →
recommendation engine for three user profiles, reproducing the paper's
Conclusion (§5).

Run:  python examples/classify_frameworks.py
"""

from repro.core import (
    Requirements,
    compare_classifications,
    recommend,
    render_summary_table,
)
from repro.core.casestudy import paper_table2


def main() -> None:
    classifications = list(paper_table2().values())

    print("=== Table 2: classification summary ===\n")
    print(render_summary_table(classifications))

    print("=== LANL-Trace vs //TRACE (cell-level diff) ===\n")
    lanl = classifications[0]
    ptrace = classifications[2]
    print(compare_classifications(lanl, ptrace).render())

    profiles = {
        "researcher who needs accurate replayable traces of a parallel app": Requirements(
            need_replayable=True, need_parallel_fs=True
        ),
        "site releasing anonymized traces to collaborators": Requirements(
            min_anonymization=3
        ),
        "developer who wants quick installation and skew-corrected timings": Requirements(
            max_install_difficulty=3, need_skew_drift_accounting=True
        ),
    }
    for label, reqs in profiles.items():
        print("=== Recommendation for: %s ===" % label)
        for rec in recommend(reqs, classifications):
            print(rec.render())
        print()


if __name__ == "__main__":
    main()
