#!/usr/bin/env python3
"""Trace a real Python workload on this machine (no simulator).

Uses the in-process interposer (:mod:`repro.host.pyio`) — the //TRACE
mechanism one level up, no root or native code required — then feeds the
real trace through the same library tools the simulated frameworks use:
call summary, text encoding, anonymization, and pseudo-app scripting.
Falls back to real ``strace`` wrapping when the binary is installed.

Run:  python examples/host_tracing.py
"""

import os
import tempfile

from repro.analysis.summary import summarize_calls
from repro.host.pyio import PyIOTracer
from repro.host.strace_wrapper import run_under_strace, strace_available
from repro.replay.pseudoapp import build_pseudoapp
from repro.trace.anonymize import RandomizingAnonymizer
from repro.trace.events import EventLayer
from repro.trace.records import TraceBundle
from repro.trace.text_format import encode_event


def real_workload(base: str) -> None:
    """A little I/O-bound program: write, read back, clean up."""
    for i in range(3):
        path = os.path.join(base, "data.%d" % i)
        fd = os.open(path, os.O_WRONLY | os.O_CREAT)
        for _ in range(4):
            os.write(fd, b"x" * 65536)
        os.close(fd)
        fd = os.open(path, os.O_RDONLY)
        while os.read(fd, 65536):
            pass
        os.close(fd)
        os.unlink(path)


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        print("tracing a real Python workload with the in-process interposer...")
        with PyIOTracer() as tracer:
            real_workload(tmp)

    trace = tracer.trace
    print("captured %d real events on %s (pid %d)\n"
          % (len(trace), trace.hostname, trace.pid))

    print("=== first lines, LANL-Trace raw style ===")
    for event in trace.events[:6]:
        print(encode_event(event, annotated=False))

    print("\n=== call summary ===")
    for row in summarize_calls(trace.events).rows():
        print("   %-14s %6d calls   %10.6f s" % (row.name, row.n_calls, row.total_time))

    print("\n=== anonymized for sharing ===")
    anon = trace.map(RandomizingAnonymizer())
    print(encode_event(anon[0], annotated=False))

    print("\n=== scripted as a replayable pseudo-application ===")
    app = build_pseudoapp(TraceBundle(files={0: trace}), layer=EventLayer.SYSCALL)
    script = app.scripts[0]
    print("%d ops, %.1f KiB of I/O, first five kinds: %s"
          % (len(script.ops), script.io_bytes / 1024,
             [op.kind for op in script.ops[:5]]))

    if strace_available():
        print("\nstrace found — also tracing a child process for real:")
        result = run_under_strace(["python3", "-c", "print('hello')"])
        print("strace captured %d events, exit code %d"
              % (result.bundle.total_events(), result.returncode))
    else:
        print("\n(strace not installed on this host; skipping the wrapper demo)")


if __name__ == "__main__":
    main()
