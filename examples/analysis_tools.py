#!/usr/bin/env python3
"""Tour of the trace-analysis toolbox on one traced run.

Traces a checkpoint-style application (compute phases alternating with
N-to-1 write bursts) with //TRACE's cheap interposition plus MsgTrace's
message capture, then runs every analysis tool in the library on the
result:

* call summary (Figure 1's third output);
* compute/I-O phase detection;
* iostat-style interval bandwidth;
* inferred writer→reader data dependencies;
* the inter-rank communication matrix.

Run:  python examples/analysis_tools.py
"""

from repro.analysis.dependencies import dependency_summary, infer_data_dependencies
from repro.analysis.iostat import iostat, render_iostat
from repro.analysis.phases import detect_phases, phase_summary
from repro.analysis.summary import summarize_calls
from repro.frameworks.netmsg import MsgTrace
from repro.frameworks.ptrace import PTrace
from repro.harness.figures import paper_testbed
from repro.harness.testbed import build_testbed
from repro.simmpi import mpirun
from repro.trace.merge import merge_bundles
from repro.units import KiB
from repro.workloads.generators import checkpoint, halo_exchange

NPROCS = 4


def main() -> None:
    print("tracing a checkpoint application (//TRACE + MsgTrace together)...")
    tb = build_testbed(paper_testbed(nprocs=NPROCS))
    ptrace, msgtrace = PTrace(), MsgTrace()

    def setup(rank, proc, mpirank):
        ptrace.setup_rank(rank, proc, mpirank)
        msgtrace.setup_rank(rank, proc, mpirank)

    job = mpirun(
        tb.cluster, tb.vfs, checkpoint,
        nprocs=NPROCS,
        args={"path": "/pfs/ckpt", "phases": 3, "compute_time": 0.3,
              "block_size": 128 * KiB, "blocks_per_phase": 8},
        setup=setup,
    )
    bundle = merge_bundles(
        [("io", ptrace.finalize(job)), ("msg", msgtrace.finalize(job))]
    )
    print("captured %d events over %.2fs\n" % (bundle.total_events(), job.elapsed))

    print("=== call summary ===")
    for row in summarize_calls(bundle).rows():
        print("   %-22s %6d calls   %10.6f s" % (row.name, row.n_calls, row.total_time))

    print("\n=== phase structure (rank 0) ===")
    print(phase_summary(detect_phases(bundle.files[0], gap_threshold=0.1)))

    print("=== iostat (0.25 s intervals, all ranks) ===")
    print(render_iostat(iostat(bundle, interval=0.25)))

    print("=== inferred data dependencies ===")
    print(dependency_summary(infer_data_dependencies(bundle)))

    print("=== communication matrix: halo-exchange run (bytes, src x dst) ===")
    tb2 = build_testbed(paper_testbed(nprocs=NPROCS))
    msg2 = MsgTrace()
    mpirun(
        tb2.cluster, tb2.vfs, halo_exchange,
        nprocs=NPROCS,
        args={"path": "/pfs/halo", "iterations": 3, "halo_bytes": 64 * KiB},
        setup=msg2.setup_rank,
    )
    for row in msg2.communication_matrix():
        print("   " + " ".join("%8d" % v for v in row))


if __name__ == "__main__":
    main()
