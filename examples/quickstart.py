#!/usr/bin/env python3
"""Quickstart: trace an MPI application with LANL-Trace on a simulated cluster.

Builds the paper's testbed (a 32-node cluster with a RAID-5-backed
parallel file system), runs the LANL ``mpi_io_test`` benchmark under
LANL-Trace, and prints the three Figure-1-style outputs plus the measured
elapsed-time overhead.

Run:  python examples/quickstart.py
"""

from repro.frameworks.lanltrace import (
    LANLTrace,
    LANLTraceConfig,
    render_aggregate_timing,
    render_call_summary,
    render_raw_trace,
)
from repro.harness.experiment import measure_overhead
from repro.harness.figures import paper_testbed
from repro.units import KiB, format_bandwidth
from repro.workloads import AccessPattern, mpi_io_test


def main() -> None:
    nprocs = 8
    workload_args = {
        "pattern": AccessPattern.N_TO_1_STRIDED,
        "block_size": 64 * KiB,
        "nobj": 16,
        "path": "/pfs/mpi_io_test.out",
        "barrier_every": 8,
    }

    print("tracing mpi_io_test (%d ranks, strided N-to-1, 64KiB blocks)..." % nprocs)
    measurement = measure_overhead(
        lambda: LANLTrace(LANLTraceConfig()),
        mpi_io_test,
        workload_args,
        config=paper_testbed(nprocs=nprocs),
        nprocs=nprocs,
    )
    bundle = measurement.traced_run.bundle

    print("\n=== Output 1: raw trace data (rank 0, first 12 lines) ===")
    print("\n".join(render_raw_trace(bundle, rank=0).splitlines()[:12]))

    print("\n=== Output 2: aggregate timing information ===")
    print("\n".join(render_aggregate_timing(bundle).splitlines()[:10]))

    print("\n=== Output 3: call summary ===")
    print(render_call_summary(bundle))

    print("=== Overhead (the taxonomy's quantitative element) ===")
    print("untraced bandwidth: %s" % format_bandwidth(measurement.untraced.aggregate_bandwidth))
    print("traced bandwidth:   %s" % format_bandwidth(measurement.traced.aggregate_bandwidth))
    print("elapsed time overhead: %.1f%%" % (100 * measurement.elapsed_overhead))
    print("bandwidth overhead:    %.1f%%" % (100 * measurement.bandwidth_overhead))
    print("\nevents captured: %d across %d ranks"
          % (bundle.total_events(), bundle.n_sources))


if __name__ == "__main__":
    main()
