#!/usr/bin/env python3
"""Regenerate the paper's Figures 2-4 and headline overhead numbers.

The full evaluation sweep: for each access pattern, measures untraced and
LANL-Trace-traced bandwidth across block sizes, prints the figure series
with the paper's anchors, and reports the §4.1.1 elapsed-time overhead
range.  This is the long-running example (a couple of minutes).

Run:  python examples/overhead_sweep.py [--quick]
"""

import sys

from repro.harness.figures import FIGURE_PATTERNS, figure_series
from repro.harness.report import render_figure, render_overhead_range
from repro.units import KiB, MiB

PAPER_ANCHORS = {
    2: (51.3, 5.5),
    3: (64.7, 6.1),
    4: (68.6, 0.6),
}


def main() -> None:
    quick = "--quick" in sys.argv
    if quick:
        blocks = [64 * KiB, 1024 * KiB]
        total = 8 * MiB
        nprocs = 16
    else:
        blocks = [64 * KiB, 256 * KiB, 1024 * KiB, 8192 * KiB]
        total = 32 * MiB
        nprocs = 32

    overheads = []
    for figno in sorted(FIGURE_PATTERNS):
        print("measuring figure %d (%s)..." % (figno, FIGURE_PATTERNS[figno].value))
        series = figure_series(
            figno, block_sizes=blocks, total_bytes_per_rank=total, nprocs=nprocs
        )
        print(render_figure(series))
        small, big = PAPER_ANCHORS[figno]
        print("paper anchors: %.1f%% @64KiB, %.1f%% @8192KiB\n" % (small, big))
        overheads.extend(series.elapsed_overheads())

    bounds = {"min": min(overheads), "max": max(overheads)}
    print(render_overhead_range(bounds, 24, 222))


if __name__ == "__main__":
    main()
