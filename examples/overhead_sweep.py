#!/usr/bin/env python3
"""Regenerate the paper's Figures 2-4 and headline overhead numbers.

The full evaluation sweep: for each access pattern, measures untraced and
LANL-Trace-traced bandwidth across block sizes, prints the figure series
with the paper's anchors, and reports the §4.1.1 elapsed-time overhead
range.  All points run as one flat sweep through the parallel executor —
``--jobs N`` fans them over worker processes, and a deterministic run
cache under ``.repro-cache/`` makes reruns near-instant (``--no-cache``
to bypass).

Run:  python examples/overhead_sweep.py [--quick] [--jobs N] [--no-cache]
"""

import argparse

from repro.harness.figures import run_figures
from repro.harness.report import render_figure, render_overhead_range
from repro.harness.runcache import RunCache
from repro.units import KiB, MiB

PAPER_ANCHORS = {
    2: (51.3, 5.5),
    3: (64.7, 6.1),
    4: (68.6, 0.6),
}


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true", help="small fast sweep")
    ap.add_argument("--jobs", type=int, default=1, help="worker processes")
    ap.add_argument("--no-cache", action="store_true", help="bypass the run cache")
    args = ap.parse_args()

    if args.quick:
        blocks = [64 * KiB, 1024 * KiB]
        total = 8 * MiB
        nprocs = 16
    else:
        blocks = [64 * KiB, 256 * KiB, 1024 * KiB, 8192 * KiB]
        total = 32 * MiB
        nprocs = 32

    cache = None if args.no_cache else RunCache()
    sweep = run_figures(
        figures=(2, 3, 4),
        block_sizes=blocks,
        total_bytes_per_rank=total,
        nprocs=nprocs,
        jobs=args.jobs,
        cache=cache,
    )
    for figno in sorted(sweep.series):
        print(render_figure(sweep.series[figno]))
        small, big = PAPER_ANCHORS[figno]
        print("paper anchors: %.1f%% @64KiB, %.1f%% @8192KiB\n" % (small, big))

    print(render_overhead_range(sweep.overhead_range, 24, 222))
    r = sweep.report
    print(
        "%d points in %.2fs (jobs=%d, cache: %d hit / %d miss)"
        % (r.n_points, r.wall_seconds, r.jobs, r.cache_hits, r.cache_misses)
    )


if __name__ == "__main__":
    main()
