"""The I/O Tracing Frameworks surveyed by the paper (§2, §4).

* :mod:`repro.frameworks.lanltrace` — LANL-Trace: wraps the simulated
  strace/ltrace interposition, three human-readable outputs, barrier
  timing jobs for skew/drift accounting;
* :mod:`repro.frameworks.tracefs` — Tracefs: a stackable tracing file
  system with declarative granularity control, binary output
  (buffering/compression/checksums), and CBC field anonymization;
* :mod:`repro.frameworks.ptrace` — //TRACE: MPI-IO library interposition,
  throttling-based inter-node dependency discovery, replayable trace
  generation with a fidelity/overhead sampling knob.

All implement the :class:`~repro.frameworks.base.TracingFramework`
interface, so the taxonomy harness can measure any of them identically.
"""

from repro.frameworks.base import FRAMEWORK_REGISTRY, TracedRun, TracingFramework, register_framework

__all__ = [
    "FRAMEWORK_REGISTRY",
    "TracedRun",
    "TracingFramework",
    "register_framework",
]
