"""MsgTrace — a message-passing tracer, exercising the paper's future work.

§6: "we believe our methodology can be expanded to define a more global
taxonomy for describing diverse general data collection mechanisms ...
such as path based event tracing in distributed applications [8],[10].
With such a global taxonomy, we would be able [to] survey the entire
Tracing Framework landscape and identify distinct but complementary
tracing mechanisms."

MsgTrace is that exercise: a *fourth* framework, capturing the taxonomy's
third event type — "messages passed between nodes in a cluster" (§3.1) —
rather than I/O.  It interposes the MPI point-to-point and collective
calls at the library seam, records them as NET-layer events with payload
sizes, and derives a communication matrix.  Because it implements the
same :class:`~repro.frameworks.base.TracingFramework` lifecycle, every
taxonomy tool (classification, summary tables, the recommendation engine,
the overhead protocol) applies to it unchanged — which is precisely the
claim the future-work section makes for a common framework.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

import numpy as np

from repro.core.classification import FrameworkClassification
from repro.core.features import Feature
from repro.core.values import (
    NA,
    AnonymizationLevel,
    EventKind,
    EventTypes,
    GranularityControl,
    Likert,
    OverheadReport,
    TraceFormat,
    YesNo,
)
from repro.frameworks.base import TracingFramework, register_framework
from repro.simos.interpose import Interposer
from repro.trace.events import EventLayer, TraceEvent
from repro.trace.records import TraceBundle, TraceFile

__all__ = ["MsgTrace", "MsgTraceConfig", "MESSAGE_CALLS"]

#: The MPI communication calls MsgTrace wraps.
MESSAGE_CALLS = frozenset(
    {
        "MPI_Send",
        "MPI_Recv",
        "MPI_Barrier",
        "MPI_Bcast",
        "MPI_Gather",
        "MPI_Allgather",
        "MPI_Reduce",
        "MPI_Allreduce",
        "MPI_Scatter",
    }
)


@dataclass(frozen=True)
class MsgTraceConfig:
    """Interposition cost calibration (preload-wrapper cheap)."""

    per_event_cost: float = 20e-6
    point_to_point_only: bool = False


class _NetInterposer(Interposer):
    """Records communication calls as NET-layer events."""

    def __init__(self, sink: TraceFile, config: MsgTraceConfig):
        wanted = (
            frozenset({"MPI_Send", "MPI_Recv"})
            if config.point_to_point_only
            else MESSAGE_CALLS
        )
        super().__init__(
            sink,
            per_event_cost=config.per_event_cost,
            filter=lambda name: name in wanted,
            charge_filtered_only=True,
        )

    def record(self, event: TraceEvent) -> None:
        if self.filter is not None and not self.filter(event.name):
            return
        self.events_recorded += 1
        self.sink.append(event.with_fields(layer=EventLayer.NET))


@register_framework
class MsgTrace(TracingFramework):
    """Message tracing as a taxonomy-classifiable framework."""

    name = "msgtrace"

    def __init__(self, config: Optional[MsgTraceConfig] = None):
        self.config = config or MsgTraceConfig()
        self._sinks: Dict[int, TraceFile] = {}
        self._nprocs = 0

    def setup_rank(self, rank: int, proc: Any, mpirank: Any) -> None:
        """Wrap one rank's MPI communication calls."""
        sink = TraceFile(
            hostname=proc.node.hostname, pid=proc.pid, rank=rank, framework=self.name
        )
        self._sinks[rank] = sink
        proc.attach(_NetInterposer(sink, self.config), EventLayer.LIBCALL)
        self._nprocs = max(self._nprocs, rank + 1)

    def finalize(self, job: Any) -> TraceBundle:
        """Bundle per-rank message traces plus the communication matrix."""
        bundle = TraceBundle(
            files=dict(self._sinks),
            metadata={
                "framework": self.name,
                "nprocs": job.nprocs,
                "comm_matrix": self.communication_matrix().tolist(),
            },
        )
        return bundle

    # -- analysis ---------------------------------------------------------------

    def communication_matrix(self) -> np.ndarray:
        """Bytes sent between rank pairs: ``matrix[src, dst]``."""
        n = max(1, self._nprocs)
        matrix = np.zeros((n, n), dtype=np.int64)
        for rank, sink in self._sinks.items():
            for e in sink:
                if e.name == "MPI_Send" and len(e.args) >= 1:
                    dst = e.args[0]
                    if isinstance(dst, int) and 0 <= dst < n:
                        matrix[rank, dst] += e.nbytes or 0
        return matrix

    def classification(self) -> FrameworkClassification:
        """MsgTrace classified by the *unchanged* I/O-tracing taxonomy —
        the future-work claim made concrete."""
        return FrameworkClassification(
            "MsgTrace",
            {
                Feature.PARALLEL_FS_COMPATIBILITY: YesNo.YES,  # FS-agnostic
                Feature.EASE_OF_INSTALLATION: Likert(1, "V. Easy"),
                Feature.ANONYMIZATION: AnonymizationLevel(0),
                Feature.EVENT_TYPES: EventTypes({EventKind.NETWORK_MESSAGES}),
                Feature.GRANULARITY_CONTROL: GranularityControl(
                    2, "all communication calls, or point-to-point only"
                ),
                Feature.REPLAYABLE_GENERATION: YesNo.NO,
                Feature.REPLAY_FIDELITY: NA,
                Feature.REVEALS_DEPENDENCIES: YesNo.YES,  # the comm matrix
                Feature.INTRUSIVENESS: Likert(1, "Passive"),
                Feature.ANALYSIS_TOOLS: YesNo.YES,  # communication_matrix
                Feature.TRACE_FORMAT: TraceFormat.HUMAN_READABLE,
                Feature.SKEW_DRIFT_ACCOUNTING: YesNo.NO,
                Feature.ELAPSED_TIME_OVERHEAD: OverheadReport(
                    max_percent=1.0, note="library interposition of MPI calls"
                ),
            },
        )
