"""Tracefs anonymization hookup.

Thin, documented aliases binding the generic engines of
:mod:`repro.trace.anonymize` to Tracefs's configuration surface: selected
fields (e.g. UID, GID, paths — here ``user``/``path``/``hostname``) are
CBC-encrypted under a secret key at record time (§4.2).

The paper's scoring rationale is encoded in the engines themselves:
encryption is classified "Advanced" (4) and not "V. Advanced" (5) because
"no mechanism is provided for true anonymization (i.e. randomization) of
trace data" — the randomizing engine exists in this library
(:class:`repro.trace.anonymize.RandomizingAnonymizer`) precisely so the
distinction is executable.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.trace.anonymize import FieldSelectiveAnonymizer

__all__ = ["make_field_encryptor"]


def make_field_encryptor(
    fields: Iterable[str], key: bytes
) -> FieldSelectiveAnonymizer:
    """A Tracefs-style CBC field encryptor for the given fields."""
    return FieldSelectiveAnonymizer(fields, mode="encrypt", key=key)
