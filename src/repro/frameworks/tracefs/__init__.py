"""Tracefs (paper §2.2, §4.2; reference [1]).

A stackable tracing file system: mounts over a lower file system (ext3,
NFS, ...) and records VFS operations — the layer that also sees what
ptrace-style tracers miss (memory-mapped I/O).  Features reproduced:

* declarative granularity specs (:mod:`.granularity`) — Table 2's
  "5 (V. Advanced)" control;
* binary output with buffering, compression, checksums
  (:mod:`repro.trace.binary_format`);
* CBC field anonymization (:mod:`.anonymizer`) — Table 2's "4 (Advanced)";
* aggregation via event counters (:mod:`.counters`);
* kernel-module ergonomics: root required, and *no* out-of-the-box
  parallel file system support (mounting over the PFS raises
  :class:`~repro.errors.NotTraceable` unless forced).
"""

from repro.frameworks.tracefs.framework import Tracefs, TracefsConfig, TracefsLayer
from repro.frameworks.tracefs.granularity import GranularitySpec
from repro.frameworks.tracefs.counters import EventCounters

__all__ = [
    "Tracefs",
    "TracefsConfig",
    "TracefsLayer",
    "GranularitySpec",
    "EventCounters",
]
