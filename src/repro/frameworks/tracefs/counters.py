"""Aggregation via event counters.

Tracefs "offers a comprehensive suite of tracing functionality, including
trace data anonymization, aggregation (via event counters), and more"
(§2.2).  Counter mode trades detail for near-zero volume: instead of one
record per operation, per-operation counts and byte totals accumulate in
memory and flush once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["EventCounters"]


@dataclass
class _Counter:
    calls: int = 0
    nbytes: int = 0
    total_time: float = 0.0


class EventCounters:
    """Per-operation aggregate counters."""

    def __init__(self) -> None:
        self._counters: Dict[str, _Counter] = {}

    def record(self, op: str, nbytes: Optional[int], duration: float) -> None:
        """Accumulate one operation into its counter."""
        c = self._counters.setdefault(op, _Counter())
        c.calls += 1
        if nbytes:
            c.nbytes += nbytes
        c.total_time += duration

    def calls(self, op: str) -> int:
        """Call count for ``op`` (0 if never seen)."""
        c = self._counters.get(op)
        return c.calls if c else 0

    def nbytes(self, op: str) -> int:
        """Payload bytes accumulated for ``op``."""
        c = self._counters.get(op)
        return c.nbytes if c else 0

    def total_time(self, op: str) -> float:
        """Total lower-operation time accumulated for ``op``."""
        c = self._counters.get(op)
        return c.total_time if c else 0.0

    @property
    def total_calls(self) -> int:
        return sum(c.calls for c in self._counters.values())

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """Plain-dict export (for bundle metadata / JSON)."""
        return {
            op: {"calls": c.calls, "nbytes": c.nbytes, "total_time": c.total_time}
            for op, c in sorted(self._counters.items())
        }

    def render(self) -> str:
        """Human-readable counter table."""
        lines = ["# Tracefs event counters", "# op  calls  bytes  total_time(s)"]
        for op, c in sorted(self._counters.items()):
            lines.append("%-10s %8d %12d %12.6f" % (op, c.calls, c.nbytes, c.total_time))
        return "\n".join(lines) + "\n"
