"""Tracefs: the stackable tracing file system.

The mechanism is a :class:`TracefsLayer`
(:class:`~repro.simfs.stackable.StackableFS` subclass) interposed into the
mount table by :meth:`Tracefs.prepare` — "Once mounted, any I/O written to
Tracefs can be traced at varying degrees of granularity" (§2.2).  Faithful
behaviours:

* **kernel-module ergonomics** — mounting requires root
  (``as_root=True``), else :class:`~repro.errors.PermissionDenied`; this
  is the installation friction behind Table 2's "4 (Difficult)";
* **no parallel FS support out of the box** — mounting over the parallel
  file system raises :class:`~repro.errors.NotTraceable` unless
  ``force_parallel_port=True`` (the paper found it incompatible with the
  LANL PFS but fine on ext3 and NFS);
* **low, granularity-dependent overhead** — an in-kernel hook charges a
  small per-op cost plus optional checksum/encryption costs, landing under
  the authors' reported 12.4% ceiling for full tracing ("Performance
  overhead varies greatly depending on which functionality is employed");
* **binary buffered output** — events buffer in memory and serialize with
  :mod:`repro.trace.binary_format` at unmount.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, List, Optional

from repro.errors import NotTraceable, PermissionDenied
from repro.frameworks.base import TracingFramework, register_framework
from repro.frameworks.tracefs.counters import EventCounters
from repro.frameworks.tracefs.granularity import GranularitySpec
from repro.simfs.stackable import StackableFS
from repro.simfs.vfs import CallerContext, FileSystem
from repro.trace.anonymize import FieldSelectiveAnonymizer
from repro.trace.binary_format import encode_trace_file
from repro.trace.events import EventLayer, TraceEvent
from repro.trace.records import TraceBundle, TraceFile

__all__ = ["Tracefs", "TracefsConfig", "TracefsLayer"]


@dataclass(frozen=True)
class TracefsConfig:
    """Mount options and cost calibration.

    Cost model: every VFS operation passing through the layer charges
    ``vfs_op_cost`` (hook dispatch + record assembly into the in-kernel
    buffer).  ``checksum_cost`` and ``encrypt_cost`` are the per-event
    prices of the optional output features — "additional overhead for
    advanced features such as encryption and checksum calculation" (§2.2).
    Counter-only aggregation (``counters_only=True``) records no events
    and charges just ``counter_cost``.
    """

    target_mount: str = "/tmp"
    spec: str = ""  # empty = trace everything
    as_root: bool = True
    force_parallel_port: bool = False
    checksum: bool = False
    compress: bool = False
    encrypt_fields: tuple = ()  # e.g. ("user", "path")
    encryption_key: Optional[bytes] = None
    counters_only: bool = False
    vfs_op_cost: float = 150e-6
    record_cost: float = 70e-6
    checksum_cost: float = 90e-6
    encrypt_cost: float = 160e-6
    counter_cost: float = 15e-6
    buffer_records: int = 128


class TracefsLayer(StackableFS):
    """The stackable layer: observes every lower operation."""

    fstype = "tracefs"

    def __init__(self, sim: Any, lower: FileSystem, config: TracefsConfig):
        super().__init__(sim, lower, name="tracefs(%s)" % lower.name)
        self.config = config
        self.spec = GranularitySpec(config.spec)
        self.sink = TraceFile(framework="tracefs")
        self.counters = EventCounters()
        self._anonymizer: Optional[FieldSelectiveAnonymizer] = None
        if config.encrypt_fields:
            self._anonymizer = FieldSelectiveAnonymizer(
                config.encrypt_fields, mode="encrypt", key=config.encryption_key
            )
        self.ops_seen = 0
        self.ops_recorded = 0
        # inode -> absolute path, learned from open ops, so data ops can
        # be attributed to files (and hence replayed).
        self._ino_paths: dict = {}

    # -- cost + capture hooks ------------------------------------------------------

    def before_op(self, ctx: CallerContext, op: str, args: tuple) -> Generator[Any, Any, None]:
        """Charge the entry half of the in-kernel hook cost."""
        # Hook dispatch happens whether or not the op ends up recorded.
        yield self.config.vfs_op_cost / 2.0

    def after_op(
        self, ctx: CallerContext, op: str, args: tuple, result: Any, duration: float
    ) -> Generator[Any, Any, None]:
        """Record (or count) the completed operation and charge its cost."""
        self.ops_seen += 1
        cost = self.config.vfs_op_cost / 2.0
        if op == "open":
            self._note_open(args, result)
        path, size = self._op_path_size(op, args)
        if self.spec.should_trace(op, path=path, size=size, uid=ctx.uid):
            if self.config.counters_only:
                self.counters.record(op, size, duration)
                cost += self.config.counter_cost
            else:
                cost += self.config.record_cost
                event = self._make_event(ctx, op, args, result, duration, path, size)
                if self._anonymizer is not None:
                    event = self._anonymizer(event)
                    cost += self.config.encrypt_cost
                if self.config.checksum:
                    cost += self.config.checksum_cost
                self.sink.append(event)
                self.counters.record(op, size, duration)
                self.ops_recorded += 1
        yield cost

    def _abs(self, relpath: str) -> str:
        return "%s/%s" % (self.config.target_mount.rstrip("/"), relpath)

    def _op_path_size(self, op: str, args: tuple):
        path = None
        size = None
        if op in ("open", "stat", "unlink", "mkdir", "readdir") and args:
            path = self._abs(args[0])
        if op in ("read", "write", "truncate", "fsync", "fstat") and args:
            path = self._ino_paths.get(args[0])
        if op in ("read", "write") and len(args) >= 3:
            size = args[2]
        return path, size

    def _note_open(self, args: tuple, result: Any) -> None:
        if args and isinstance(result, int):
            self._ino_paths[result] = self._abs(args[0])

    def _printable_args(self, op: str, args: tuple) -> tuple:
        """Trace args with paths absolutized (as the VFS caller saw them),
        so downstream anonymizers recognize every path-bearing field."""
        out = []
        for i, a in enumerate(args):
            if not isinstance(a, (str, int)):
                continue
            if isinstance(a, str) and (
                (i == 0 and op in ("open", "stat", "unlink", "mkdir", "readdir", "rename"))
                or (i == 1 and op == "rename")
            ):
                a = self._abs(a)
            out.append(a)
        return tuple(out)

    def _make_event(
        self, ctx: CallerContext, op: str, args: tuple, result: Any,
        duration: float, path, size,
    ) -> TraceEvent:
        rendered_result: Any
        if hasattr(result, "ino"):  # StatResult
            rendered_result = 0
        elif isinstance(result, (list, dict)):
            rendered_result = len(result)
        else:
            rendered_result = result
        return TraceEvent(
            timestamp=ctx.node.now_local() - duration,
            duration=duration,
            layer=EventLayer.VFS,
            name="vfs_%s" % op,
            args=self._printable_args(op, args),
            result=rendered_result,
            pid=ctx.pid,
            rank=None,
            hostname=ctx.node.hostname,
            user=ctx.user,
            path=path,
            nbytes=size,
            offset=args[1] if op in ("read", "write") and len(args) >= 2 else None,
        )

    # -- output ------------------------------------------------------------------------

    def serialize(self) -> bytes:
        """The binary trace (buffered/compressed/checksummed as configured)."""
        return encode_trace_file(
            self.sink,
            compressed=self.config.compress,
            checksum=True,
            block_records=self.config.buffer_records,
        )


@register_framework
class Tracefs(TracingFramework):
    """Tracefs as a measurable framework: mount, run, unmount, bundle."""

    name = "tracefs"

    def __init__(self, config: Optional[TracefsConfig] = None):
        self.config = config or TracefsConfig()
        self.layer: Optional[TracefsLayer] = None
        self._testbed = None

    def prepare(self, testbed: Any) -> None:
        """Interpose the tracing layer over the target mount.

        Reproduces the paper's installation findings: root is required
        (kernel module), and the parallel file system is rejected unless
        explicitly forced.
        """
        if not self.config.as_root:
            raise PermissionDenied(
                "mounting the tracefs kernel module requires root on every "
                "compute node (§2.2: 'dealing with root permissions')"
            )
        lower = testbed.vfs.unmount(self.config.target_mount)
        if not lower.parallel_compatible and lower.fstype == "pfs":
            pass  # unreachable: pfs is parallel_compatible; kept for clarity
        if lower.fstype == "pfs" and not self.config.force_parallel_port:
            testbed.vfs.mount(self.config.target_mount, lower)  # restore
            raise NotTraceable(
                "Tracefs is not compatible 'out of the box' with the parallel "
                "file system (§2.2); set force_parallel_port=True to model a "
                "ported build"
            )
        self.layer = TracefsLayer(testbed.sim, lower, self.config)
        testbed.vfs.mount(self.config.target_mount, self.layer)
        self._testbed = testbed

    def finalize(self, job: Any) -> TraceBundle:
        """Unmount the layer and bundle the captured VFS trace."""
        if self.layer is None:
            raise NotTraceable("Tracefs.finalize before prepare")
        # Unmount: restore the lower file system.
        if self._testbed is not None:
            self._testbed.vfs.unmount(self.config.target_mount)
            self._testbed.vfs.mount(self.config.target_mount, self.layer.lower)
        bundle = TraceBundle(
            files={0: self.layer.sink},
            metadata={
                "framework": self.name,
                "target_mount": self.config.target_mount,
                "counters": self.layer.counters.as_dict(),
                "ops_seen": self.layer.ops_seen,
                "ops_recorded": self.layer.ops_recorded,
                "binary": True,
            },
        )
        return bundle

    def classification(self):
        """Tracefs's taxonomy classification (Table 2, column 2)."""
        from repro.frameworks.tracefs.classification import classify_tracefs

        return classify_tracefs(self.config)
