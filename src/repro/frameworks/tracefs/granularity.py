"""Tracefs's declarative trace-granularity language.

"A flexible declarative syntax is provided for user-level specification of
file system operations to be traced" (§4.2) — the feature that earns
Tracefs "5 (V. Advanced)" granularity control in Table 2.

The spec is a list of rules, first match wins, default *trace*::

    omit stat, fstat, readdir
    trace write, read if path glob "/data/*" and size >= 4096
    omit * if uid = 0
    trace *

Grammar per line::

    rule   := ("trace" | "omit") ops [ "if" clause ("and" clause)* ]
    ops    := "*" | op ("," op)*
    clause := "path" ("=" | "glob") STRING
            | "size" (">=" | "<=" | ">" | "<" | "=") INT
            | "uid" "=" INT

Blank lines and ``#`` comments are ignored.
"""

from __future__ import annotations

import fnmatch
import re
import shlex
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.errors import FrameworkError

__all__ = ["GranularitySpec", "Rule"]

_VFS_OPS = {
    "open",
    "read",
    "write",
    "truncate",
    "fsync",
    "stat",
    "fstat",
    "unlink",
    "mkdir",
    "readdir",
    "rename",
    "statfs",
}

_SIZE_OPS = {
    ">=": lambda a, b: a >= b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    "<": lambda a, b: a < b,
    "=": lambda a, b: a == b,
}


@dataclass(frozen=True)
class Rule:
    """One compiled rule: action + op set + predicate."""

    trace: bool
    ops: Optional[frozenset]  # None = all ops
    predicate: Callable[[Optional[str], Optional[int], Optional[int]], bool]
    source: str

    def matches(self, op: str, path: Optional[str], size: Optional[int], uid: Optional[int]) -> bool:
        """Does this rule apply to the operation?"""
        if self.ops is not None and op not in self.ops:
            return False
        return self.predicate(path, size, uid)


def _parse_clause(tokens: List[str], pos: int, source: str) -> Tuple[Callable, int]:
    if pos >= len(tokens):
        raise FrameworkError("dangling condition in rule: %r" % source)
    subject = tokens[pos]
    if subject == "path":
        if pos + 2 >= len(tokens) or tokens[pos + 1] not in ("=", "glob"):
            raise FrameworkError("bad path clause in rule: %r" % source)
        op, value = tokens[pos + 1], tokens[pos + 2]
        if op == "glob":
            def clause(path, size, uid, pattern=value):
                return path is not None and fnmatch.fnmatch(path, pattern)
        else:
            def clause(path, size, uid, wanted=value):
                return path == wanted
        return clause, pos + 3
    if subject == "size":
        if pos + 2 >= len(tokens) or tokens[pos + 1] not in _SIZE_OPS:
            raise FrameworkError("bad size clause in rule: %r" % source)
        cmp_fn = _SIZE_OPS[tokens[pos + 1]]
        try:
            bound = int(tokens[pos + 2])
        except ValueError:
            raise FrameworkError("size bound must be an integer: %r" % source) from None

        def clause(path, size, uid, cmp_fn=cmp_fn, bound=bound):
            return size is not None and cmp_fn(size, bound)

        return clause, pos + 3
    if subject == "uid":
        if pos + 2 >= len(tokens) or tokens[pos + 1] != "=":
            raise FrameworkError("bad uid clause in rule: %r" % source)
        try:
            wanted = int(tokens[pos + 2])
        except ValueError:
            raise FrameworkError("uid must be an integer: %r" % source) from None

        def clause(path, size, uid, wanted=wanted):
            return uid == wanted

        return clause, pos + 3
    raise FrameworkError("unknown clause subject %r in rule: %r" % (subject, source))


def _parse_rule(line: str) -> Rule:
    tokens = shlex.split(line, comments=False)
    if not tokens or tokens[0] not in ("trace", "omit"):
        raise FrameworkError("rule must start with 'trace' or 'omit': %r" % line)
    trace = tokens[0] == "trace"
    # ops: everything up to "if" (or end), comma separated
    try:
        if_index = tokens.index("if")
    except ValueError:
        if_index = len(tokens)
    ops_text = " ".join(tokens[1:if_index])
    if not ops_text:
        raise FrameworkError("rule names no operations: %r" % line)
    if ops_text.strip() == "*":
        ops = None
    else:
        names = [o.strip() for o in re.split(r"[,\s]+", ops_text) if o.strip()]
        bad = [o for o in names if o not in _VFS_OPS]
        if bad:
            raise FrameworkError(
                "unknown VFS operation(s) %s in rule: %r (known: %s)"
                % (", ".join(bad), line, ", ".join(sorted(_VFS_OPS)))
            )
        ops = frozenset(names)
    clauses: List[Callable] = []
    pos = if_index + 1
    while pos < len(tokens):
        if tokens[pos] == "and":
            pos += 1
            continue
        clause, pos = _parse_clause(tokens, pos, line)
        clauses.append(clause)
    if if_index < len(tokens) and not clauses:
        raise FrameworkError("'if' with no condition in rule: %r" % line)

    def predicate(path, size, uid, clauses=tuple(clauses)):
        return all(c(path, size, uid) for c in clauses)

    return Rule(trace=trace, ops=ops, predicate=predicate, source=line)


class GranularitySpec:
    """A compiled spec: ordered rules, first match wins, default trace."""

    def __init__(self, text: str = ""):
        self.rules: List[Rule] = []
        for raw in text.splitlines():
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            self.rules.append(_parse_rule(line))
        self.source = text

    @classmethod
    def trace_all(cls) -> "GranularitySpec":
        return cls("")

    def should_trace(
        self,
        op: str,
        path: Optional[str] = None,
        size: Optional[int] = None,
        uid: Optional[int] = None,
    ) -> bool:
        """Decide whether one VFS operation is recorded."""
        for rule in self.rules:
            if rule.matches(op, path, size, uid):
                return rule.trace
        return True

    def __len__(self) -> int:
        return len(self.rules)
