"""Tracefs's taxonomy classification (§4.2 / Table 2 column 2)."""

from __future__ import annotations

from typing import Optional

from repro.core.casestudy import tracefs_classification
from repro.core.classification import FrameworkClassification
from repro.core.values import OverheadReport

__all__ = ["classify_tracefs"]


def classify_tracefs(
    config=None, overhead: Optional[OverheadReport] = None
) -> FrameworkClassification:
    """The published classification (configuration does not change any
    Table 2 cell: granularity and anonymization are *capabilities*, scored
    whether or not a particular mount enables them)."""
    return tracefs_classification(overhead=overhead)
