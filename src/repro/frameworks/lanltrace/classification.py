"""LANL-Trace's taxonomy classification (§4.1.1 / Table 2 column 1)."""

from __future__ import annotations

from typing import Optional

from repro.core.casestudy import lanl_trace_classification
from repro.core.classification import FrameworkClassification
from repro.core.features import Feature
from repro.core.values import EventKind, EventTypes, OverheadReport

__all__ = ["classify_lanl_trace"]


def classify_lanl_trace(
    config=None, overhead: Optional[OverheadReport] = None
) -> FrameworkClassification:
    """The published classification, adjusted for the configured mode.

    In strace mode only system calls are captured ("system calls only when
    using strace", §4.1.1); ltrace mode adds library calls.
    """
    c = lanl_trace_classification(overhead=overhead)
    if config is not None and config.mode == "strace":
        c = c.with_value(
            Feature.EVENT_TYPES, EventTypes({EventKind.SYSTEM_CALLS})
        )
    return c
