"""LANL-Trace (paper §2.1, §4.1).

A deliberately simple tracing framework: wrap every rank of an MPI job
with ``ltrace`` (library + system calls) or ``strace`` (system calls
only), bracket the application with barrier timing jobs for skew/drift
accounting, and emit three human-readable outputs (Figure 1): raw trace
data, aggregate timing information, and a call summary.

Simplicity is the trade-off: per-event ptrace stops make the overhead
large and strongly block-size-dependent (Figures 2-4; 24%-222% elapsed
time overhead).
"""

from repro.frameworks.lanltrace.framework import LANLTrace, LANLTraceConfig
from repro.frameworks.lanltrace.outputs import (
    render_aggregate_timing,
    render_call_summary,
    render_raw_trace,
)

__all__ = [
    "LANLTrace",
    "LANLTraceConfig",
    "render_aggregate_timing",
    "render_call_summary",
    "render_raw_trace",
]
