"""LANL-Trace's three human-readable outputs (paper Figure 1).

1. **Raw trace data** — the per-node event stream, one line per call;
2. **Aggregate timing information** — barrier entry/exit stamps "designed
   to allow analysis and replay tools to account for time drift and skew
   amongst the distributed clocks";
3. **Call summary** — per-function call counts and total time.
"""

from __future__ import annotations

from typing import List

from repro.analysis.summary import summarize_calls
from repro.trace.records import TraceBundle
from repro.trace.text_format import encode_event

__all__ = ["render_raw_trace", "render_aggregate_timing", "render_call_summary"]


def render_raw_trace(bundle: TraceBundle, rank: int = 0, annotated: bool = False) -> str:
    """Output type 1: the raw trace of one rank, Figure 1 style."""
    tf = bundle.files[rank]
    lines = [encode_event(e, annotated=annotated) for e in tf.events]
    return "\n".join(lines) + ("\n" if lines else "")


def render_aggregate_timing(bundle: TraceBundle) -> str:
    """Output type 2: barrier stamps, Figure 1 style::

        # Barrier before /mpi_io_test.exe ...
        7: host13.lanl.gov (10378) Entered barrier at 1159808385.170918
        7: host13.lanl.gov (10378) Exited barrier at 1159808385.173167
    """
    out: List[str] = []
    seen_labels: List[str] = []
    for s in bundle.barrier_stamps:
        if s.barrier_label not in seen_labels:
            seen_labels.append(s.barrier_label)
    for label in seen_labels:
        out.append("# Barrier %s" % label)
        for s in bundle.barrier_stamps:
            if s.barrier_label != label:
                continue
            out.append(
                "%d: %s (%d) Entered barrier at %0.6f"
                % (s.rank, s.hostname, s.pid, s.entered_at)
            )
            out.append(
                "%d: %s (%d) Exited barrier at %0.6f"
                % (s.rank, s.hostname, s.pid, s.exited_at)
            )
    return "\n".join(out) + ("\n" if out else "")


def render_call_summary(bundle: TraceBundle) -> str:
    """Output type 3: the summary table, Figure 1 style."""
    summary = summarize_calls(bundle)
    lines = [
        "#                     SUMMARY COUNT OF TRACED CALL(S)",
        "#  Function Name            Number of Calls            Total time (s)",
        "=" * 77,
    ]
    for row in summary.rows():
        lines.append(
            "   %-24s %15d %25.6f" % (row.name, row.n_calls, row.total_time)
        )
    return "\n".join(lines) + "\n"
