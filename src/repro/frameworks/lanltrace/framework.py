"""LANL-Trace orchestration: per-rank tracer attach + timing jobs.

The real tool is a Perl wrapper that launches each rank under
``ltrace -f -tt -T`` (or ``strace``); here the wrap is attaching
:class:`~repro.simos.interpose.Interposer` objects to each rank's seams.

Cost model (the knobs behind Figures 2-4):

* ``syscall_event_cost`` — seconds per intercepted syscall: two ptrace
  stops (context switches into the tracer and back), argument formatting,
  and appending the line to the per-node trace file.
* ``libcall_event_cost`` — the same for PLT-level library events when in
  ltrace mode (cheaper: no kernel round-trip for the stop itself in our
  simplified accounting, but formatting/writing still dominate).
* ``cpu_factor`` — residual whole-process slowdown of running under
  ptrace; this is the "constant factor of untraced application bandwidth"
  the overhead approaches at large block sizes (Figure 3's caption).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List, Optional

from repro.errors import FrameworkError
from repro.frameworks.base import TracingFramework, register_framework
from repro.simos.interpose import Interposer
from repro.trace.events import EventLayer
from repro.trace.records import BarrierStamp, TraceBundle, TraceFile

__all__ = ["LANLTrace", "LANLTraceConfig"]


@dataclass(frozen=True)
class LANLTraceConfig:
    """Tracing mode and cost calibration.

    ``mode`` is the taxonomy's "control of trace granularity" for this
    framework (§4.1.1): "The user may choose between the use of strace,
    which provides system call only tracing, and ltrace, which provides
    tracing of both system calls and linked library calls."
    """

    mode: str = "ltrace"  # "ltrace" | "strace"
    # Calibrated so the Figure 2-4 sweeps land near the paper's anchors
    # (bandwidth overhead ~51-69% at 64 KiB falling to ~0.6-6% at 8 MiB):
    # each intercepted event costs two ptrace stops plus formatting plus a
    # synchronous append of the trace line to the shared home file system.
    syscall_event_cost: float = 4.5e-3
    libcall_event_cost: float = 3.0e-3
    cpu_factor: float = 1.08
    timing_job: bool = True
    command_line: str = "/mpi_io_test.exe"
    # How many trace lines the wrapper buffers before its synchronous
    # append reaches stable storage; a node crash loses up to this many
    # in-flight events from the crashed rank's capture.
    flush_interval_events: int = 32

    def __post_init__(self) -> None:
        if self.mode not in ("ltrace", "strace"):
            raise FrameworkError("LANL-Trace mode must be 'ltrace' or 'strace'")
        if self.flush_interval_events < 1:
            raise FrameworkError("flush_interval_events must be >= 1")


@register_framework
class LANLTrace(TracingFramework):
    """The LANL-Trace framework (see module docstring)."""

    name = "lanl-trace"

    def __init__(self, config: Optional[LANLTraceConfig] = None):
        self.config = config or LANLTraceConfig()
        self._sinks: Dict[int, TraceFile] = {}
        self._stamps: List[BarrierStamp] = []
        self._interposers: List[Interposer] = []
        self._data_loss: Dict[int, int] = {}

    # -- lifecycle ---------------------------------------------------------------

    def setup_rank(self, rank: int, proc: Any, mpirank: Any) -> None:
        """Wrap one rank with strace (or ltrace): attach the seams."""
        sink = TraceFile(
            hostname=proc.node.hostname, pid=proc.pid, rank=rank, framework=self.name
        )
        self._sinks[rank] = sink
        sys_ip = Interposer(
            sink,
            per_event_cost=self.config.syscall_event_cost,
            cpu_factor=self.config.cpu_factor,
        )
        proc.attach(sys_ip, EventLayer.SYSCALL)
        self._interposers.append(sys_ip)
        if self.config.mode == "ltrace":
            lib_ip = Interposer(
                sink,
                per_event_cost=self.config.libcall_event_cost,
                cpu_factor=1.0,  # the ptrace factor is charged once, above
            )
            proc.attach(lib_ip, EventLayer.LIBCALL)
            self._interposers.append(lib_ip)

    def wrap_app(self, app: Callable) -> Callable:
        """Bracket the application with the barrier timing jobs (§4.1.1):

        "LANL-Trace runs a simple MPI job before and after running the
        traced application.  This job reports the observed time for each
        node, does a barrier, and then reports the time again."
        """
        if not self.config.timing_job:
            return app
        framework = self

        def wrapped(mpi, args) -> Generator[Any, Any, Any]:
            yield from framework._timing_job(mpi, "before %s" % framework.config.command_line)
            result = yield from app(mpi, args)
            yield from framework._timing_job(mpi, "after %s" % framework.config.command_line)
            return result

        return wrapped

    def _timing_job(self, mpi: Any, label: str) -> Generator[Any, Any, None]:
        entered = mpi.wtime()
        yield from mpi.barrier()
        exited = mpi.wtime()
        self._stamps.append(
            BarrierStamp(
                barrier_label=label,
                rank=mpi.rank,
                hostname=mpi.proc.node.hostname,
                pid=mpi.proc.pid,
                entered_at=entered,
                exited_at=exited,
            )
        )

    def on_node_crash(self, node_index: int, at: float, ranks: Any) -> None:
        """A crashed node loses its ranks' unflushed trace tails.

        The wrapper's trace lines go through a buffered file append; up to
        ``flush_interval_events`` in-flight events had not reached stable
        storage when the node died, so they vanish from the capture —
        LANL-Trace loses in-flight data on a crash rather than corrupting
        what was already flushed.
        """
        for rank in ranks:
            sink = self._sinks.get(rank)
            if sink is None:
                continue
            lost = min(len(sink.events), self.config.flush_interval_events)
            if lost:
                del sink.events[-lost:]
            self._data_loss[rank] = self._data_loss.get(rank, 0) + lost

    def finalize(self, job: Any) -> TraceBundle:
        """Collect per-rank traces and timing stamps into one bundle."""
        metadata = {
            "framework": self.name,
            "mode": self.config.mode,
            "command_line": self.config.command_line,
            "nprocs": job.nprocs,
        }
        if self._data_loss:
            metadata["data_loss"] = dict(self._data_loss)
        return TraceBundle(
            files=dict(self._sinks),
            barrier_stamps=list(self._stamps),
            metadata=metadata,
        )

    # -- bookkeeping ---------------------------------------------------------------

    @property
    def events_intercepted(self) -> int:
        return sum(ip.events_intercepted for ip in self._interposers)

    def classification(self):
        """LANL-Trace's taxonomy classification (Table 2, column 1)."""
        from repro.frameworks.lanltrace.classification import classify_lanl_trace

        return classify_lanl_trace(self.config)
