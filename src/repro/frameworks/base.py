"""Common interface of every I/O Tracing Framework.

The taxonomy's whole point is that frameworks with very different
mechanisms (ptrace wrappers, kernel stackable layers, library
interposition) can be *measured and classified identically*.  The
interface encodes the lifecycle every mechanism shares:

1. :meth:`~TracingFramework.prepare` — alter the machine before launch
   (Tracefs remounts the target file system under its stackable layer;
   the others do nothing);
2. :meth:`~TracingFramework.setup_rank` — per-rank attach (LANL-Trace
   wraps each process with strace/ltrace; //TRACE preloads its library);
3. :meth:`~TracingFramework.wrap_app` — optionally bracket the
   application (LANL-Trace runs barrier timing jobs before and after);
4. :meth:`~TracingFramework.finalize` — collect everything into a
   :class:`~repro.trace.records.TraceBundle`.

Each framework also reports its taxonomy classification via
``classification()`` (see :mod:`repro.core.classification`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Type

from repro.simmpi.runtime import JobResult
from repro.trace.records import TraceBundle

__all__ = ["TracingFramework", "TracedRun", "FRAMEWORK_REGISTRY", "register_framework"]


@dataclass
class TracedRun:
    """Outcome of one traced application run."""

    framework_name: str
    job: JobResult
    bundle: TraceBundle

    @property
    def elapsed(self) -> float:
        return self.job.elapsed


class TracingFramework:
    """Base lifecycle; subclasses override the hooks they need."""

    #: short identifier, e.g. "lanl-trace"
    name = "null"

    def prepare(self, testbed: Any) -> None:
        """Modify the machine before job launch (mounts, throttles...)."""

    def setup_rank(self, rank: int, proc: Any, mpirank: Any) -> None:
        """Attach to one rank's process before the application starts."""

    def wrap_app(self, app: Callable) -> Callable:
        """Return the application actually launched (default: unchanged)."""
        return app

    def finalize(self, job: JobResult) -> TraceBundle:
        """Assemble the run's trace bundle after the job completed."""
        return TraceBundle(metadata={"framework": self.name})

    def on_node_crash(self, node_index: int, at: float, ranks: Any) -> None:
        """React to the fault plane killing a node hosting traced ranks.

        ``ranks`` lists the rank numbers that were running on the node.
        The default does nothing — a framework whose capture path buffers
        data on the node (LANL-Trace's unflushed trace tail, //TRACE's
        in-memory event window) overrides this to model what that crash
        does to the captured trace.  Called at simulated time ``at``,
        after the node is marked down and its ranks interrupted.
        """

    # -- taxonomy ------------------------------------------------------------

    def classification(self):
        """This framework's taxonomy feature classification.

        Returns a :class:`repro.core.classification.FrameworkClassification`.
        Subclasses must override; the base raises to catch unclassified
        frameworks in tests.
        """
        raise NotImplementedError("framework %r has no classification" % self.name)


#: name -> framework class, for harness/CLI lookup
FRAMEWORK_REGISTRY: Dict[str, Type[TracingFramework]] = {}


def register_framework(cls: Type[TracingFramework]) -> Type[TracingFramework]:
    """Class decorator: add a framework to the registry by its ``name``."""
    if not cls.name or cls.name == "null":
        raise ValueError("framework class %r needs a distinctive name" % cls)
    FRAMEWORK_REGISTRY[cls.name] = cls
    return cls
