"""//TRACE's taxonomy classification (§4.3 / Table 2 column 3)."""

from __future__ import annotations

from typing import Optional

from repro.core.casestudy import ptrace_classification
from repro.core.classification import FrameworkClassification
from repro.core.values import FidelityReport, OverheadReport

__all__ = ["classify_ptrace"]


def classify_ptrace(
    config=None,
    overhead: Optional[OverheadReport] = None,
    fidelity: Optional[FidelityReport] = None,
) -> FrameworkClassification:
    """The published classification, with optional measured overrides."""
    c = ptrace_classification(overhead=overhead)
    if fidelity is not None:
        from repro.core.features import Feature

        c = c.with_value(Feature.REPLAY_FIDELITY, fidelity)
    return c
