"""//TRACE's capture mechanism: I/O-call library interposition.

"System I/O calls are traced using dynamic library interposition [11].
Like strace and ltrace (and thus LANL-Trace), this mechanism cannot track
memory-mapped I/Os" (§4.3).  Interposition is in-process — no ptrace stop,
no context switch — so the per-event cost is tiny and the framework's
overhead without throttling is "~0%".

"All I/O system calls are captured.  This is a side affect of the
framework design objective to capture complete and accurate replayable
traces" — there is deliberately no granularity filter narrowing *which*
I/O calls are kept (Table 2: Control of trace granularity = No).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.frameworks.base import TracingFramework, register_framework
from repro.simos import syscalls as sc
from repro.simos.interpose import Interposer
from repro.trace.events import EventLayer
from repro.trace.records import TraceBundle, TraceFile

__all__ = ["PTrace", "PTraceConfig", "IO_TRACED_CALLS", "MPI_SYNC_CALLS"]

#: The I/O system calls //TRACE interposes (everything file-related).
IO_TRACED_CALLS = frozenset(
    {
        sc.SYS_OPEN,
        sc.SYS_CLOSE,
        sc.SYS_READ,
        sc.SYS_WRITE,
        "SYS_pread64",
        "SYS_pwrite64",
        sc.SYS_LSEEK,
        sc.SYS_FSYNC,
        sc.SYS_STAT,
        sc.SYS_FSTAT,
        sc.SYS_UNLINK,
        sc.SYS_STATFS,
    }
)

#: MPI synchronization points, wrapped for replay-script sync markers.
MPI_SYNC_CALLS = frozenset(
    {"MPI_Barrier", "MPI_Bcast", "MPI_Allreduce", "MPI_Allgather", "MPI_Gather"}
)


@dataclass(frozen=True)
class PTraceConfig:
    """Interposition cost calibration.

    ``per_event_cost`` is an in-process function wrapper: take a
    timestamp, append a row to an in-memory buffer.  Orders of magnitude
    cheaper than a ptrace stop — which is why //TRACE's floor overhead is
    ~0% where LANL-Trace's is tens of percent.
    """

    per_event_cost: float = 25e-6
    cpu_factor: float = 1.0
    record_mpi_sync: bool = True  # sync markers improve replay scripts
    # In-memory event window not yet spilled to the trace store; a node
    # crash loses this many trailing events from the rank's capture.
    event_window: int = 64


@register_framework
class PTrace(TracingFramework):
    """//TRACE's always-on interposition layer.

    (The throttling/discovery pipeline lives in
    :class:`~repro.frameworks.ptrace.throttle.PTraceCollector`, which uses
    this framework for each of its runs.)
    """

    name = "ptrace"  # package-safe spelling of //TRACE
    display_name = "//TRACE"

    def __init__(self, config: Optional[PTraceConfig] = None):
        self.config = config or PTraceConfig()
        self._sinks: Dict[int, TraceFile] = {}
        self._interposers: List[Interposer] = []
        self._partial_ranks: Dict[int, int] = {}

    def setup_rank(self, rank: int, proc: Any, mpirank: Any) -> None:
        """Preload the interposition library onto one rank (attach seams)."""
        sink = TraceFile(
            hostname=proc.node.hostname, pid=proc.pid, rank=rank, framework=self.name
        )
        self._sinks[rank] = sink
        io_ip = Interposer(
            sink,
            per_event_cost=self.config.per_event_cost,
            cpu_factor=self.config.cpu_factor,
            filter=lambda name: name in IO_TRACED_CALLS,
            charge_filtered_only=True,
        )
        proc.attach(io_ip, EventLayer.SYSCALL)
        self._interposers.append(io_ip)
        if self.config.record_mpi_sync:
            sync_ip = Interposer(
                sink,
                per_event_cost=self.config.per_event_cost,
                cpu_factor=1.0,
                filter=lambda name: name in MPI_SYNC_CALLS,
                charge_filtered_only=True,
            )
            proc.attach(sync_ip, EventLayer.LIBCALL)
            self._interposers.append(sync_ip)

    def on_node_crash(self, node_index: int, at: float, ranks: Any) -> None:
        """A crash drops the in-memory event window of the node's ranks.

        The surviving capture is *partial*: its rank scripts end early, so
        a subsequent replay sees mismatched synchronization counts and
        reports :class:`~repro.errors.ReplayDivergence` instead of
        deadlocking on a sync point the crashed rank never recorded.
        """
        for rank in ranks:
            sink = self._sinks.get(rank)
            if sink is None:
                continue
            lost = min(len(sink.events), self.config.event_window)
            if lost:
                del sink.events[-lost:]
            self._partial_ranks[rank] = self._partial_ranks.get(rank, 0) + lost

    def finalize(self, job: Any) -> TraceBundle:
        """Collect per-rank I/O traces into one bundle."""
        metadata = {
            "framework": self.name,
            "display_name": self.display_name,
            "nprocs": job.nprocs,
        }
        if self._partial_ranks:
            metadata["partial_ranks"] = dict(self._partial_ranks)
        return TraceBundle(
            files=dict(self._sinks),
            metadata=metadata,
        )

    @property
    def events_recorded(self) -> int:
        return sum(ip.events_recorded for ip in self._interposers)

    def classification(self):
        """//TRACE's taxonomy classification (Table 2, column 3)."""
        from repro.frameworks.ptrace.classification import classify_ptrace

        return classify_ptrace(self.config)
