"""Inter-node dependency maps.

"//TRACE creates inter-node dependency maps for use in generating accurate
replayable traces of parallel applications" (§4.3).  A dependency edge
``i -> r`` means throttling node ``i``'s I/O measurably stalled rank
``r``'s progress — causal coupling, discovered empirically, never assumed
from program structure.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

import networkx as nx

__all__ = ["DependencyMap"]


class DependencyMap:
    """A weighted digraph of discovered causal dependencies between ranks."""

    def __init__(self, n_ranks: int):
        if n_ranks < 1:
            raise ValueError("need at least one rank")
        self.n_ranks = n_ranks
        self.graph = nx.DiGraph()
        self.graph.add_nodes_from(range(n_ranks))
        #: nodes that were actually throttled (absence of an edge from an
        #: unprobed node is ignorance, not independence)
        self.probed: set = set()

    def mark_probed(self, node: int) -> None:
        """Record that ``node`` was actually throttled (probed)."""
        self.probed.add(node)

    def add_dependency(self, src: int, dst: int, sensitivity: float) -> None:
        """Record that throttling ``src`` stalled ``dst`` (weight in [0,1])."""
        if src == dst:
            return
        self.graph.add_edge(src, dst, sensitivity=float(sensitivity))

    # -- queries --------------------------------------------------------------

    def depends_on(self, dst: int, src: int) -> bool:
        """Was rank ``dst`` observed to stall when ``src`` was throttled?"""
        return self.graph.has_edge(src, dst)

    def dependents_of(self, src: int) -> List[int]:
        """Ranks that stalled when ``src`` was throttled, sorted."""
        return sorted(self.graph.successors(src))

    def sensitivity(self, src: int, dst: int) -> float:
        """Edge weight (throughput-drop fraction), 0 when absent."""
        if not self.graph.has_edge(src, dst):
            return 0.0
        return self.graph.edges[src, dst]["sensitivity"]

    @property
    def n_edges(self) -> int:
        return self.graph.number_of_edges()

    def density(self) -> float:
        """Edges found per probed-source/possible-destination pair."""
        possible = len(self.probed) * (self.n_ranks - 1)
        if possible == 0:
            return 0.0
        found = sum(1 for s, _ in self.graph.edges if s in self.probed)
        return found / possible

    def coupled_ranks(self) -> List[int]:
        """Ranks participating in any discovered dependency."""
        involved = set()
        for s, d in self.graph.edges:
            involved.add(s)
            involved.add(d)
        return sorted(involved)

    def is_globally_coupled(self, min_fraction: float = 0.5) -> bool:
        """Do discovered dependencies span most of the job?

        True when at least ``min_fraction`` of ranks appear in some edge —
        the signature of collectively-synchronized applications.
        """
        if self.n_ranks <= 1:
            return False
        return len(self.coupled_ranks()) >= min_fraction * self.n_ranks

    def render(self) -> str:
        """Human-readable edge list."""
        lines = [
            "# //TRACE dependency map: %d ranks, %d probed, %d edges"
            % (self.n_ranks, len(self.probed), self.n_edges)
        ]
        for s, d in sorted(self.graph.edges):
            lines.append(
                "  node %d -> rank %d (sensitivity %.2f)"
                % (s, d, self.graph.edges[s, d]["sensitivity"])
            )
        return "\n".join(lines) + "\n"
