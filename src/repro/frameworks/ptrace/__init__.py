"""//TRACE (paper §2.3, §4.3; reference [2]).

"//TRACE focuses on generating accurate replayable I/O traces of parallel
applications that use MPI.  To accomplish this they determine inter-node
data dependencies by using I/O throttling."

Reproduced here:

* :mod:`.framework` — the cheap always-on mechanism: dynamic library
  interposition of I/O system calls (near-zero overhead on its own);
* :mod:`.throttle` — the expensive optional mechanism: epoch-rotated
  per-node I/O throttling with progress correlation, discovering which
  ranks causally depend on which nodes.  The ``sampling`` knob is the
  paper's fidelity/overhead trade ("~0% to 205%" elapsed overhead);
* :mod:`.depmap` — inter-node dependency maps (networkx);
* :mod:`.replaygen` — replayable-trace assembly: deperturbed pseudo-app
  plus dependency-derived synchronization.
"""

from repro.frameworks.ptrace.framework import PTrace, PTraceConfig
from repro.frameworks.ptrace.depmap import DependencyMap
from repro.frameworks.ptrace.throttle import (
    CollectionResult,
    PTraceCollector,
    ThrottleSchedule,
)
from repro.frameworks.ptrace.replaygen import build_replayable

__all__ = [
    "PTrace",
    "PTraceConfig",
    "DependencyMap",
    "CollectionResult",
    "PTraceCollector",
    "ThrottleSchedule",
    "build_replayable",
]
