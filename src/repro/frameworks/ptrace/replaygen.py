"""Replayable-trace assembly for //TRACE.

Combines the pieces a collection run produced — the interposed I/O trace
and the discovered dependency map — into a
:class:`~repro.replay.pseudoapp.PseudoApp`:

* think times are deperturbed by the (known, tiny) interposition cost;
* when the dependency map shows global coupling, periodic ``sync`` ops are
  inserted so the replay re-synchronizes where the original application
  did — "//TRACE creates inter-node dependency maps for use in generating
  accurate replayable traces" (§4.3).  With a blind map (low sampling) no
  syncs are inserted and ranks free-run, degrading end-to-end fidelity:
  the paper's accuracy/overhead trade, made executable.
"""

from __future__ import annotations

from typing import Optional

from repro.frameworks.ptrace.depmap import DependencyMap
from repro.frameworks.ptrace.throttle import CollectionResult
from repro.replay.pseudoapp import PseudoApp, RankScript, ReplayOp, build_pseudoapp
from repro.trace.events import EventLayer

__all__ = ["build_replayable"]


def build_replayable(
    collection: CollectionResult,
    per_event_overhead: Optional[float] = None,
    sync_every: int = 8,
) -> PseudoApp:
    """Build the pseudo-application from a collection run.

    ``sync_every``: when the dependency map is globally coupled, a sync op
    is inserted after every ``sync_every`` I/O ops per rank (and the
    trace's own recorded MPI sync markers are kept).
    """
    bundle = collection.bundle
    if per_event_overhead is None:
        per_event_overhead = 0.0
    app = build_pseudoapp(
        bundle,
        layer=EventLayer.SYSCALL,
        per_event_overhead=per_event_overhead,
    )
    depmap: DependencyMap = collection.depmap
    if depmap.is_globally_coupled():
        app = _insert_syncs(app, sync_every)
        app.metadata["sync_inserted"] = True
    else:
        app = _strip_syncs(app)
        app.metadata["sync_inserted"] = False
    app.metadata["depmap_edges"] = depmap.n_edges
    app.metadata["sampling"] = bundle.metadata.get("sampling")
    return app


def _insert_syncs(app: PseudoApp, sync_every: int) -> PseudoApp:
    scripts = {}
    for rank, script in app.scripts.items():
        ops = []
        io_seen = 0
        for op in script.ops:
            ops.append(op)
            if op.kind in ("write", "read"):
                io_seen += 1
                if io_seen % sync_every == 0:
                    ops.append(ReplayOp(kind="sync", think_time=0.0))
        # Terminal sync keeps completion times locked together.
        ops.append(ReplayOp(kind="sync", think_time=0.0))
        scripts[rank] = RankScript(rank=rank, ops=ops)
    return PseudoApp(
        scripts=scripts,
        source_framework=app.source_framework,
        metadata=dict(app.metadata),
    )


def _strip_syncs(app: PseudoApp) -> PseudoApp:
    """Remove sync ops: a blind dependency map cannot justify them."""
    scripts = {
        rank: RankScript(
            rank=rank, ops=[op for op in script.ops if op.kind != "sync"]
        )
        for rank, script in app.scripts.items()
    }
    return PseudoApp(
        scripts=scripts,
        source_framework=app.source_framework,
        metadata=dict(app.metadata),
    )
