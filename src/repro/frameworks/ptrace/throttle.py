"""//TRACE's causality discovery: I/O throttling (§2.3, paper ref [9]).

    "This technique involves a time consuming process of manually slowing
    the response time of a single node to I/O requests associated with a
    particular parallel application and observing the behavior of other
    nodes looking for causal dependencies between nodes."

Mechanism here: the run is divided into fixed *epochs* that alternate
rest / probe.  Probe epoch ``j`` throttles one sampled node (every I/O
call on it is delayed); a progress recorder tracks every rank's payload
throughput per epoch.  A rank whose throughput during node ``i``'s probe
drops well below its rest-epoch baseline causally depends on ``i`` —
barrier-coupled and shared-file-locked applications light up, independent
N-to-N applications do not.

The ``sampling`` knob (fraction of nodes ever probed) is the paper's
fidelity/overhead dial: fewer probes ⇒ less injected delay ⇒ lower
elapsed-time overhead (toward ~0%) but a blinder dependency map; full
sampling on a short run drives overhead toward the paper's 205% end.

The collector is itself a :class:`~repro.frameworks.base.TracingFramework`
so the standard overhead-measurement protocol applies to it unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import FrameworkError
from repro.frameworks.base import TracingFramework, register_framework
from repro.frameworks.ptrace.depmap import DependencyMap
from repro.frameworks.ptrace.framework import IO_TRACED_CALLS, PTrace, PTraceConfig
from repro.simos.interpose import Interposer
from repro.trace.events import EventLayer
from repro.trace.records import TraceBundle, TraceFile

__all__ = ["ThrottleSchedule", "PTraceCollector", "CollectionResult"]


class ThrottleSchedule:
    """Epoch-rotated probe plan shared by every rank's throttle seam.

    Epochs cycle in groups of ``probe_epochs + 2``: a clean *rest* epoch
    (the baseline), then ``probe_epochs`` epochs throttling ``probes[j]``,
    then a *recovery* epoch (dependent ranks stalled by the probe drain
    their barrier waits here, so it belongs to the measurement window, not
    the baseline).  ``probes`` is finalized once all ranks are registered.
    """

    def __init__(
        self,
        epoch_duration: float,
        delay: float,
        passes: int = 1,
        probe_epochs: int = 1,
    ):
        if epoch_duration <= 0:
            raise FrameworkError("epoch_duration must be positive")
        if delay < 0:
            raise FrameworkError("throttle delay must be non-negative")
        if probe_epochs < 1:
            raise FrameworkError("probe_epochs must be >= 1")
        self.epoch_duration = epoch_duration
        self.delay = delay
        self.passes = passes
        #: probe epochs per cycle — the discovery duty cycle.  1 keeps the
        #: gentle rest/probe/recovery rotation; larger values spend most of
        #: the run throttled (the paper's expensive "205%" end of the dial).
        self.probe_epochs = probe_epochs
        self.sampled: List[int] = []
        self._probes: Optional[List[int]] = None

    @property
    def cycle_length(self) -> int:
        """Epochs per probe cycle: rest + probes + recovery."""
        return self.probe_epochs + 2

    def register_sampled(self, node: int) -> None:
        """Add a node to the probe plan."""
        self.sampled.append(node)
        self._probes = None

    @property
    def probes(self) -> List[int]:
        if self._probes is None:
            self._probes = [n for _ in range(self.passes) for n in self.sampled]
        return self._probes

    def epoch(self, now: float) -> int:
        """Epoch index containing simulated time ``now``."""
        return int(now // self.epoch_duration)

    def throttled_node(self, now: float) -> Optional[int]:
        """Which node (if any) the plan throttles at time ``now``.

        Cycle layout: position 0 is clean rest (the baseline), positions
        1..probe_epochs throttle probe ``j``, the final position is
        recovery (stalled dependents drain their waits).
        """
        probes = self.probes
        if not probes:
            return None
        e = self.epoch(now)
        L = self.cycle_length
        j, pos = divmod(e, L)
        if not (1 <= pos <= self.probe_epochs):
            return None
        if j >= len(probes):
            return None
        return probes[j]

    def probe_epoch(self, j: int) -> int:
        """First epoch index at which probe ``j`` fires."""
        return j * self.cycle_length + 1

    def measurement_epochs(self, j: int) -> range:
        """Epochs whose throughput reflects probe ``j`` (probes + recovery)."""
        start = self.probe_epoch(j)
        return range(start, start + self.probe_epochs + 1)

    def is_rest_epoch(self, e: int) -> bool:
        """Is epoch ``e`` a clean baseline epoch?"""
        return e % self.cycle_length == 0

    def delay_for(self, now: float, node: int) -> float:
        """Per-I/O-call delay for ``node`` at time ``now`` (0 if unthrottled)."""
        return self.delay if self.throttled_node(now) == node else 0.0

    @property
    def plan_duration(self) -> float:
        """Time needed to execute the full probe plan."""
        return (self.cycle_length * len(self.probes) + 1) * self.epoch_duration


class _ThrottleSeam(Interposer):
    """Delay injector: slows one node's I/O calls per the schedule."""

    def __init__(self, sim: Any, schedule: ThrottleSchedule, node_index: int):
        super().__init__(TraceFile(), per_event_cost=0.0)
        self.sim = sim
        self.schedule = schedule
        self.node_index = node_index
        self.injected = 0.0

    def entry_cost(self, name: str) -> float:
        if name not in IO_TRACED_CALLS:
            return 0.0
        d = self.schedule.delay_for(self.sim.now, self.node_index)
        self.injected += d
        return d

    def exit_cost(self, name: str) -> float:
        return 0.0

    def record(self, event) -> None:  # the seam only delays, never records
        pass


class _ProgressSeam(Interposer):
    """Per-rank progress recorder: (true time, payload bytes) per I/O call."""

    def __init__(self, sim: Any):
        super().__init__(TraceFile(), per_event_cost=0.0)
        self.sim = sim
        self.samples: List[Tuple[float, int]] = []

    def entry_cost(self, name: str) -> float:
        return 0.0

    def exit_cost(self, name: str) -> float:
        return 0.0

    def record(self, event) -> None:
        if event.nbytes is not None and event.name in IO_TRACED_CALLS:
            self.samples.append((self.sim.now, event.nbytes))


@dataclass
class CollectionResult:
    """Everything //TRACE's discovery run produces."""

    bundle: TraceBundle
    depmap: DependencyMap
    injected_delay: float
    schedule: ThrottleSchedule


@register_framework
class PTraceCollector(TracingFramework):
    """Interposition + throttling discovery, as one measurable framework."""

    name = "ptrace-collector"
    display_name = "//TRACE (with dependency discovery)"

    def __init__(
        self,
        sampling: float = 1.0,
        throttle_delay: float = 10e-3,
        epoch_duration: float = 0.25,
        passes: int = 1,
        probe_epochs: int = 1,
        sensitivity_threshold: float = 0.2,
        config: Optional[PTraceConfig] = None,
    ):
        if not (0.0 <= sampling <= 1.0):
            raise FrameworkError("sampling must be in [0, 1]")
        self.sampling = sampling
        self.threshold = sensitivity_threshold
        self.base = PTrace(config)
        self.schedule = ThrottleSchedule(
            epoch_duration, throttle_delay, passes, probe_epochs
        )
        self._throttles: Dict[int, _ThrottleSeam] = {}
        self._progress: Dict[int, _ProgressSeam] = {}
        self._nprocs = 0
        self.result: Optional[CollectionResult] = None

    # -- lifecycle ------------------------------------------------------------------

    def setup_rank(self, rank: int, proc: Any, mpirank: Any) -> None:
        """Attach interposition plus the throttle and progress seams."""
        self.base.setup_rank(rank, proc, mpirank)
        self._nprocs = max(self._nprocs, rank + 1)
        sim = proc.sim
        # Sample the first ceil(sampling * n) nodes; registration order is
        # rank order, so the sampled set is deterministic.
        throttle = _ThrottleSeam(sim, self.schedule, proc.node.index)
        proc.attach(throttle, EventLayer.SYSCALL)
        self._throttles[rank] = throttle
        progress = _ProgressSeam(sim)
        proc.attach(progress, EventLayer.SYSCALL)
        self._progress[rank] = progress

    def _finalize_sampling(self) -> None:
        n_sampled = math.ceil(self.sampling * self._nprocs)
        self.schedule.sampled.clear()
        for node in range(n_sampled):
            self.schedule.register_sampled(node)

    def wrap_app(self, app):
        """Finalize the sampled-node set on first rank step, then run."""
        # Sampling depends on nprocs, known once all ranks are set up —
        # i.e. by the time any rank takes its first step.
        collector = self

        def wrapped(mpi, args):
            if not collector.schedule.sampled and collector.sampling > 0:
                collector._finalize_sampling()
            result = yield from app(mpi, args)
            return result

        return wrapped

    # -- dependency inference ------------------------------------------------------------

    def _epoch_throughput(self, rank: int) -> Dict[int, float]:
        """Payload bytes per epoch for one rank."""
        d = self.schedule.epoch_duration
        out: Dict[int, float] = {}
        for t, nbytes in self._progress[rank].samples:
            out[int(t // d)] = out.get(int(t // d), 0.0) + nbytes
        return out

    def _infer_depmap(self) -> DependencyMap:
        depmap = DependencyMap(self._nprocs)
        probes = self.schedule.probes
        if not probes:
            return depmap
        per_rank = {r: self._epoch_throughput(r) for r in self._progress}
        for node in probes:
            depmap.mark_probed(node)
        for rank, tputs in per_rank.items():
            if not tputs:
                continue
            active = sorted(tputs)
            first, last = active[0], active[-1]
            # Baseline: clean rest epochs (cycle position 0), interior only.
            rest = [
                v
                for e, v in tputs.items()
                if self.schedule.is_rest_epoch(e) and first < e < last
            ]
            if not rest:
                continue
            baseline = sum(rest) / len(rest)
            if baseline <= 0:
                continue
            by_node: Dict[int, List[float]] = {}
            for j, node in enumerate(probes):
                epochs = self.schedule.measurement_epochs(j)
                if not (first <= epochs[0] and epochs[-1] <= last):
                    continue
                # Measurement window: the probe epochs plus the recovery
                # epoch, where stalled dependents drain their waits.
                window = sum(tputs.get(e, 0.0) for e in epochs) / len(epochs)
                by_node.setdefault(node, []).append(1.0 - window / baseline)
            for node, sensitivities in by_node.items():
                if node == rank:
                    continue
                s = sum(sensitivities) / len(sensitivities)
                if s > self.threshold:
                    depmap.add_dependency(node, rank, min(1.0, s))
        return depmap

    def finalize(self, job: Any) -> TraceBundle:
        """Infer the dependency map and assemble the collection result."""
        bundle = self.base.finalize(job)
        depmap = self._infer_depmap()
        injected = sum(t.injected for t in self._throttles.values())
        # A probe plan longer than the run leaves nodes unprobed (and makes
        # sensitivity noise): surface it rather than silently mis-mapping.
        plan_completed = job.elapsed >= self.schedule.plan_duration
        if not plan_completed:
            executed = max(
                0,
                (self.schedule.epoch(job.elapsed) - 1) // self.schedule.cycle_length,
            )
            depmap.probed.intersection_update(self.schedule.probes[:executed])
        bundle.metadata.update(
            framework=self.name,
            display_name=self.display_name,
            sampling=self.sampling,
            injected_delay=injected,
            depmap_edges=depmap.n_edges,
            plan_completed=plan_completed,
        )
        self.result = CollectionResult(
            bundle=bundle,
            depmap=depmap,
            injected_delay=injected,
            schedule=self.schedule,
        )
        return bundle

    def classification(self):
        """Same Table 2 column as plain //TRACE."""
        return self.base.classification()
