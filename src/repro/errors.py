"""Exception hierarchy for the ``repro`` package.

Every error raised by library code derives from :class:`ReproError` so that
callers can catch the whole family with one ``except`` clause.  Subsystems
define narrower subclasses here (rather than in their own modules) so the
full hierarchy is visible in one place and no import cycles arise between
low-level packages.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


# ---------------------------------------------------------------------------
# Discrete-event simulation kernel
# ---------------------------------------------------------------------------


class SimulationError(ReproError):
    """Base class for errors in the discrete-event simulation kernel."""


class DeadlockError(SimulationError):
    """The event queue drained while simulated processes were still blocked.

    Raised by :meth:`repro.des.simulator.Simulator.run` when no events remain
    but at least one process has not terminated — the simulated system can
    make no further progress.

    ``blocked`` names the culprits (blocked non-daemon processes, with
    their wait reasons).  ``wait_reasons`` covers *every* still-live
    process including daemons, and ``recent_events`` is the tail of the
    telemetry ring buffer (the last dispatched kernel events) when a
    telemetry session was active — together, the post-mortem a silent
    hang would otherwise require a debugger for.
    """

    def __init__(
        self,
        blocked: list[str],
        wait_reasons: list[str] | None = None,
        recent_events: list[str] | None = None,
    ):
        self.blocked = list(blocked)
        self.wait_reasons = list(wait_reasons) if wait_reasons is not None else None
        self.recent_events = (
            list(recent_events) if recent_events is not None else None
        )
        lines = [
            "deadlock: no pending events but %d process(es) still blocked: %s"
            % (len(blocked), ", ".join(blocked))
        ]
        if self.wait_reasons:
            lines.append("blocked processes:")
            lines.extend("  - %s" % r for r in self.wait_reasons)
        if self.recent_events:
            lines.append(
                "last %d dispatched events (oldest first):" % len(self.recent_events)
            )
            lines.extend("  - %s" % e for e in self.recent_events)
        elif self.recent_events is None:
            lines.append(
                "(enable telemetry — repro.obs.tracepoints.session() or the "
                "--telemetry flag — to capture the dispatched-event history)"
            )
        super().__init__("\n".join(lines))


class ProcessError(SimulationError):
    """A simulated process misbehaved (e.g. yielded an unknown command)."""


class SimTimeError(SimulationError):
    """An operation would move simulated time backwards."""


class SimTimeoutError(SimulationError):
    """A bounded run hit its simulated-time horizon with work still pending.

    Raised by :func:`repro.simmpi.runtime.mpirun` (and the chaos harness)
    when a job was given a sim-time budget and ranks were still running
    when it expired.  ``pending_ranks`` names them; ``horizon`` is the
    budget that was exceeded.  The harness uses this as the retry signal
    for its exponential-backoff policy — a timed-out point is re-run with
    a doubled horizon rather than reported as a hang.
    """

    def __init__(self, horizon: float, pending_ranks: list[int] | None = None):
        self.horizon = float(horizon)
        self.pending_ranks = list(pending_ranks) if pending_ranks is not None else []
        msg = "job exceeded its simulated-time horizon of %gs" % self.horizon
        if self.pending_ranks:
            msg += " with rank(s) still running: %s" % ", ".join(
                str(r) for r in self.pending_ranks
            )
        super().__init__(msg)


class FaultError(SimulationError):
    """A fault schedule or fault plane was malformed or misused."""


# ---------------------------------------------------------------------------
# Simulated OS / file system
# ---------------------------------------------------------------------------


class SimOSError(ReproError):
    """Base class for simulated operating-system errors.

    Mirrors POSIX ``errno`` semantics: each subclass carries a symbolic
    ``errno_name`` matching the POSIX constant the real syscall would set.
    """

    errno_name = "EIO"


class FileNotFound(SimOSError):
    """Path does not resolve to an existing file (POSIX ENOENT)."""

    errno_name = "ENOENT"


class FileExists(SimOSError):
    """Exclusive create of a path that already exists (POSIX EEXIST)."""

    errno_name = "EEXIST"


class NotADirectory(SimOSError):
    """A path component used as a directory is not one (POSIX ENOTDIR)."""

    errno_name = "ENOTDIR"


class IsADirectory(SimOSError):
    """File operation applied to a directory (POSIX EISDIR)."""

    errno_name = "EISDIR"


class BadFileDescriptor(SimOSError):
    """Operation on a closed or never-opened descriptor (POSIX EBADF)."""

    errno_name = "EBADF"


class PermissionDenied(SimOSError):
    """Caller lacks permission for the operation (POSIX EACCES)."""

    errno_name = "EACCES"


class NoSpaceLeft(SimOSError):
    """Backing device is full (POSIX ENOSPC)."""

    errno_name = "ENOSPC"


class InvalidArgument(SimOSError):
    """Malformed syscall argument (POSIX EINVAL)."""

    errno_name = "EINVAL"


class CrossDeviceLink(SimOSError):
    """Operation spans two mounts (POSIX EXDEV)."""

    errno_name = "EXDEV"


class NotMounted(SimOSError):
    """Path prefix has no mounted file system."""

    errno_name = "ENODEV"


class NodeCrashed(SimOSError):
    """The node a process runs on was killed by the fault plane.

    Doubles as the interrupt exception thrown into rank processes when
    their node crashes, and as the error any syscall dispatched on a
    down node raises — the closest POSIX analogue is EHOSTDOWN.
    """

    errno_name = "EHOSTDOWN"


# ---------------------------------------------------------------------------
# Simulated MPI
# ---------------------------------------------------------------------------


class MPIError(ReproError):
    """Base class for simulated MPI runtime errors."""


class RankError(MPIError):
    """Rank out of range for the communicator."""


class CollectiveMismatch(MPIError):
    """Ranks disagreed on a collective call (different ops or roots)."""


# ---------------------------------------------------------------------------
# Trace data
# ---------------------------------------------------------------------------


class TraceError(ReproError):
    """Base class for trace encoding/decoding/analysis errors."""


class TraceFormatError(TraceError):
    """Trace bytes/text do not conform to the expected format."""


class TraceChecksumError(TraceFormatError):
    """A binary trace frame failed checksum verification."""


class TraceTruncatedError(TraceFormatError):
    """A binary trace ended mid-record."""


class AnonymizationError(TraceError):
    """Anonymization could not be applied (unknown field, bad key...)."""


# ---------------------------------------------------------------------------
# Trace archive (TraceBank)
# ---------------------------------------------------------------------------


class StoreError(ReproError):
    """Base class for trace-archive (:mod:`repro.store`) errors."""


class StoreNotFound(StoreError):
    """The directory is not a TraceBank archive (no ``STORE.json`` marker)."""


class StoreCorruptionError(StoreError):
    """An archive invariant failed: bad segment checksum, dangling manifest
    reference, or a segment whose recomputed summary disagrees with its
    manifest entry.  ``repro store verify`` reports these without raising;
    direct segment reads raise."""


class StoreQueryError(StoreError):
    """A query/DFG request was malformed (unknown aggregate, bad filter)."""


# ---------------------------------------------------------------------------
# TraceBank service (repro.service)
# ---------------------------------------------------------------------------


class ServiceError(ReproError):
    """Base class for TraceBank-as-a-service (:mod:`repro.service`) errors."""


class TenantNameError(ServiceError):
    """A tenant name is malformed (bad characters, too long, traversal)."""


class IngestQueueFull(ServiceError):
    """The bounded write-ahead ingest queue is at capacity.

    The HTTP layer maps this to ``429 Too Many Requests`` with a
    ``Retry-After`` header — explicit backpressure instead of unbounded
    buffering.  ``retry_after`` is the suggested wait in seconds.
    """

    def __init__(self, depth: int, capacity: int, retry_after: float = 1.0):
        self.depth = int(depth)
        self.capacity = int(capacity)
        self.retry_after = float(retry_after)
        super().__init__(
            "ingest queue full (%d/%d entries); retry in %.3gs"
            % (self.depth, self.capacity, self.retry_after)
        )


# ---------------------------------------------------------------------------
# Telemetry / observability
# ---------------------------------------------------------------------------


class TelemetryError(ReproError):
    """Telemetry export/validation failed (malformed trace, bad payload)."""


# ---------------------------------------------------------------------------
# Frameworks / taxonomy / harness
# ---------------------------------------------------------------------------


class FrameworkError(ReproError):
    """Base class for tracing-framework orchestration errors."""


class NotTraceable(FrameworkError):
    """Framework cannot trace the given workload/cluster combination.

    e.g. Tracefs mounted over a file system it is not compatible with, per
    the paper's finding that Tracefs did not work "out of the box" on the
    LANL parallel file system.
    """


class TaxonomyError(ReproError):
    """Base class for taxonomy schema/classification errors."""


class FeatureValueError(TaxonomyError):
    """A classification assigned a value outside the feature's domain."""


class MissingFeatureError(TaxonomyError):
    """A classification omitted a required taxonomy feature."""


class ReplayError(ReproError):
    """Replayable-trace generation or replay failed."""


class ReplayDivergence(ReplayError):
    """The pseudo-application's rank scripts disagree on synchronization.

    Partial capture (e.g. a node crash truncating a rank's trace) leaves
    ranks with different synchronization-point counts; honoring syncs
    would deadlock the replay.  The replayer detects this up front and
    reports it — replay reports divergence instead of hanging.
    ``sync_counts`` maps rank -> number of sync ops in its script.
    """

    def __init__(self, sync_counts: dict[int, int]):
        self.sync_counts = dict(sync_counts)
        detail = ", ".join(
            "rank %d: %d" % (r, n) for r, n in sorted(self.sync_counts.items())
        )
        super().__init__(
            "replay diverged: rank scripts disagree on synchronization "
            "points (%s) — the trace is partial (crash-truncated capture?); "
            "replay with honor_sync=False or regenerate the trace" % detail
        )


class HostTracingError(ReproError):
    """Real-OS tracing (strace wrapper / in-process interposer) failed."""


class StraceNotAvailable(HostTracingError):
    """The real ``strace`` binary is not installed on this host."""
