"""The workload zoo's scenario generators (see :mod:`repro.zoo`).

Four modern I/O shapes beyond the paper's single ``mpi_io_test``:

* :func:`checkpoint_tiered` — checkpoint/restart through a burst-buffer
  tier: write the checkpoint to node-local scratch, fsync, drain it to
  the PFS, free the buffer, and read the last checkpoint back (restart);
* :func:`ml_epoch` — one ML-training epoch: ranks shard a dataset onto
  the PFS, then issue shuffled random-offset reads across *all* shards
  (the cross-rank random-read storm data loaders produce);
* :func:`log_append` — a log-structured service: append-heavy segment
  writes with periodic fsync, plus compaction passes that read closed
  segments, rewrite them compacted, and unlink the originals;
* :func:`metadata_storm` — create/stat/unlink storms over a directory
  tree, the no-payload regime where per-event tracing costs dominate.

Design constraint shared by all four: **every I/O call is a plain
process-level syscall with a deterministic offset** (``pread``/``pwrite``
or positional ``write`` whose recorded offset is exact), and every MPI
synchronization is a plain barrier.  That makes a traced zoo run fully
compilable by :func:`repro.replay.pseudoapp.build_pseudoapp` — the
capture→archive→replay round trip reproduces the op schedule exactly,
which the fidelity report (and the PR's acceptance test) asserts.

Each generator returns a :class:`ZooRankReport` (an attribute-bearing
dataclass, so the harness's ``_total_payload`` sees the payload bytes)
and takes ``(mpi, args)`` like every other registered workload.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, Generator

from repro.errors import InvalidArgument, SimOSError
from repro.simfs.vfs import O_APPEND, O_CREAT, O_RDONLY, O_WRONLY
from repro.simmpi.comm import MPIRank
from repro.units import KiB

__all__ = [
    "ZooRankReport",
    "checkpoint_tiered",
    "ml_epoch",
    "log_append",
    "metadata_storm",
]


@dataclass(frozen=True)
class ZooRankReport:
    """Per-rank zoo report: the payload and op-mix numbers the tests pin."""

    rank: int
    bytes_written: int
    bytes_read: int
    n_writes: int
    n_reads: int
    n_metadata_ops: int


def _mkdir_p(proc, path: str) -> Generator[Any, Any, int]:
    """Create every missing component of ``path``; returns mkdirs issued.

    Shared directories race across ranks by design — the first rank (in
    deterministic simulator order) wins, later ranks' EEXIST is absorbed.
    Every attempt still dispatches a real ``SYS_mkdir``, so the schedule
    a replay compiles from sees exactly what the application issued.
    """
    issued = 0
    parts = path.strip("/").split("/")
    for depth in range(1, len(parts) + 1):
        prefix = "/" + "/".join(parts[:depth])
        try:
            yield from proc.mkdir(prefix)
        except SimOSError:
            pass
        issued += 1
    return issued


def checkpoint_tiered(
    mpi: MPIRank, args: Dict[str, Any]
) -> Generator[Any, Any, ZooRankReport]:
    """Checkpoint/restart with burst-buffer tiering.

    Per phase: compute, barrier, write the rank's checkpoint to the
    node-local burst buffer (``/tmp``), fsync it down, then *drain* —
    read the buffered checkpoint back and write it to the PFS — and
    unlink the buffer copy.  After the last phase every rank stats and
    re-reads its final PFS checkpoint (the restart path).

    args: ``bb_dir``, ``pfs_dir``, ``phases``, ``block_size``,
    ``blocks_per_phase``, ``compute_time``, ``restart``.
    """
    bb_dir = str(args.get("bb_dir", "/tmp/zoo/bb"))
    pfs_dir = str(args.get("pfs_dir", "/pfs/zoo/ckpt"))
    phases = int(args.get("phases", 3))
    block_size = int(args.get("block_size", 64 * KiB))
    blocks = int(args.get("blocks_per_phase", 4))
    compute_time = float(args.get("compute_time", 0.02))
    restart = bool(args.get("restart", True))
    if phases <= 0 or blocks <= 0 or block_size <= 0:
        raise InvalidArgument("phases, blocks_per_phase and block_size must be positive")
    proc = mpi.proc

    meta = yield from _mkdir_p(proc, bb_dir)
    meta += yield from _mkdir_p(proc, pfs_dir)
    written = read = n_writes = n_reads = 0

    for phase in range(phases):
        yield from proc._charge(compute_time)
        yield from mpi.barrier()

        # Burst-buffer absorb: the checkpoint lands on node-local scratch.
        bb_path = "%s/ckpt.%d.%d" % (bb_dir, phase, mpi.rank)
        fd = yield from proc.open(bb_path, O_WRONLY | O_CREAT)
        for b in range(blocks):
            n = yield from proc.pwrite(fd, block_size, b * block_size)
            written += n
            n_writes += 1
        yield from proc.fsync(fd)
        yield from proc.close(fd)
        meta += 3  # open + fsync + close

        # Drain: stream the buffered checkpoint down to the PFS tier.
        pfs_path = "%s/ckpt.%d.%d" % (pfs_dir, phase, mpi.rank)
        src = yield from proc.open(bb_path, O_RDONLY)
        dst = yield from proc.open(pfs_path, O_WRONLY | O_CREAT)
        for b in range(blocks):
            n = yield from proc.pread(src, block_size, b * block_size)
            read += n
            n_reads += 1
            n = yield from proc.pwrite(dst, block_size, b * block_size)
            written += n
            n_writes += 1
        yield from proc.fsync(dst)
        yield from proc.close(dst)
        yield from proc.close(src)
        yield from proc.unlink(bb_path)  # free the burst buffer
        meta += 6  # 2 opens + fsync + 2 closes + unlink
        yield from mpi.barrier()

    if restart:
        last = "%s/ckpt.%d.%d" % (pfs_dir, phases - 1, mpi.rank)
        yield from proc.stat(last)
        fd = yield from proc.open(last, O_RDONLY)
        for b in range(blocks):
            n = yield from proc.pread(fd, block_size, b * block_size)
            read += n
            n_reads += 1
        yield from proc.close(fd)
        meta += 4  # stat + open + close
        yield from mpi.barrier()

    return ZooRankReport(
        rank=mpi.rank,
        bytes_written=written,
        bytes_read=read,
        n_writes=n_writes,
        n_reads=n_reads,
        n_metadata_ops=meta,
    )


def ml_epoch(mpi: MPIRank, args: Dict[str, Any]) -> Generator[Any, Any, ZooRankReport]:
    """One ML-training epoch: sharded dataset write, then shuffled reads.

    Every rank writes ``shards_per_rank`` dataset shards sequentially,
    barriers, then performs ``samples_per_rank`` random ``pread`` calls
    of ``sample_size`` bytes at shuffled (shard, offset) positions drawn
    across the *whole* dataset — the cross-rank random-read mix a
    shuffling data loader produces.  The shuffle is seeded per rank from
    ``shuffle_seed``, so the access sequence is deterministic.

    args: ``base``, ``shards_per_rank``, ``shard_blocks``, ``block_size``,
    ``samples_per_rank``, ``sample_size``, ``shuffle_seed``.
    """
    base = str(args.get("base", "/pfs/zoo/mldata"))
    shards_per_rank = int(args.get("shards_per_rank", 2))
    shard_blocks = int(args.get("shard_blocks", 4))
    block_size = int(args.get("block_size", 64 * KiB))
    samples = int(args.get("samples_per_rank", 8))
    sample_size = int(args.get("sample_size", 32 * KiB))
    shuffle_seed = int(args.get("shuffle_seed", 0))
    if shards_per_rank <= 0 or shard_blocks <= 0 or block_size <= 0:
        raise InvalidArgument("shard geometry must be positive")
    if sample_size <= 0 or sample_size > shard_blocks * block_size:
        raise InvalidArgument("sample_size must fit inside one shard")
    proc = mpi.proc
    shard_size = shard_blocks * block_size

    meta = yield from _mkdir_p(proc, base)
    written = read = n_writes = n_reads = 0

    # Ingest: this rank's shards, written sequentially.
    for s in range(shards_per_rank):
        path = "%s/shard.%d.%d" % (base, mpi.rank, s)
        fd = yield from proc.open(path, O_WRONLY | O_CREAT)
        for b in range(shard_blocks):
            n = yield from proc.pwrite(fd, block_size, b * block_size)
            written += n
            n_writes += 1
        yield from proc.close(fd)
        meta += 2
    yield from mpi.barrier()  # the whole dataset exists before the epoch

    # Epoch: shuffled random reads over every rank's shards.
    rng = random.Random(shuffle_seed * 100003 + mpi.rank)
    universe = [
        (owner, s) for owner in range(mpi.size) for s in range(shards_per_rank)
    ]
    fds: Dict[str, int] = {}
    for _ in range(samples):
        owner, s = universe[rng.randrange(len(universe))]
        path = "%s/shard.%d.%d" % (base, owner, s)
        fd = fds.get(path)
        if fd is None:
            fd = fds[path] = yield from proc.open(path, O_RDONLY)
            meta += 1
        offset = rng.randrange(0, shard_size - sample_size + 1)
        n = yield from proc.pread(fd, sample_size, offset)
        read += n
        n_reads += 1
    for path in sorted(fds):
        yield from proc.close(fds[path])
        meta += 1
    yield from mpi.barrier()

    return ZooRankReport(
        rank=mpi.rank,
        bytes_written=written,
        bytes_read=read,
        n_writes=n_writes,
        n_reads=n_reads,
        n_metadata_ops=meta,
    )


def log_append(mpi: MPIRank, args: Dict[str, Any]) -> Generator[Any, Any, ZooRankReport]:
    """Log-structured append-heavy service with compaction.

    Each rank owns a log directory and fills ``segments`` segment files
    with ``appends_per_segment`` O_APPEND record writes (fsync every
    ``fsync_every`` records — the commit point).  After every
    ``compact_every`` closed segments a compaction pass stats and reads
    them fully, rewrites the live data into one compacted segment, and
    unlinks the originals.

    args: ``base``, ``segments``, ``appends_per_segment``, ``record_size``,
    ``fsync_every``, ``compact_every``.
    """
    base = str(args.get("base", "/pfs/zoo/log"))
    segments = int(args.get("segments", 4))
    appends = int(args.get("appends_per_segment", 8))
    record_size = int(args.get("record_size", 16 * KiB))
    fsync_every = int(args.get("fsync_every", 4))
    compact_every = int(args.get("compact_every", 2))
    if segments <= 0 or appends <= 0 or record_size <= 0:
        raise InvalidArgument("segments, appends_per_segment, record_size must be positive")
    if fsync_every <= 0 or compact_every <= 0:
        raise InvalidArgument("fsync_every and compact_every must be positive")
    proc = mpi.proc
    mydir = "%s/rank%d" % (base, mpi.rank)

    meta = yield from _mkdir_p(proc, mydir)
    written = read = n_writes = n_reads = 0
    seg_size = appends * record_size
    closed: list = []
    n_compactions = 0

    for seg in range(segments):
        path = "%s/seg.%06d" % (mydir, seg)
        fd = yield from proc.open(path, O_WRONLY | O_CREAT | O_APPEND)
        for a in range(appends):
            n = yield from proc.write(fd, record_size)
            written += n
            n_writes += 1
            if (a + 1) % fsync_every == 0:
                yield from proc.fsync(fd)
                meta += 1
        yield from proc.close(fd)
        meta += 2
        closed.append(path)

        if len(closed) >= compact_every:
            # Compaction: read the closed segments, rewrite live data.
            compacted = "%s/compact.%06d" % (mydir, n_compactions)
            out = yield from proc.open(compacted, O_WRONLY | O_CREAT)
            out_off = 0
            for victim in closed:
                yield from proc.stat(victim)
                src = yield from proc.open(victim, O_RDONLY)
                for a in range(appends):
                    n = yield from proc.pread(src, record_size, a * record_size)
                    read += n
                    n_reads += 1
                yield from proc.close(src)
                meta += 3
                # Half the records are live after compaction.
                live = seg_size // 2
                n = yield from proc.pwrite(out, live, out_off)
                written += n
                n_writes += 1
                out_off += live
            yield from proc.fsync(out)
            yield from proc.close(out)
            meta += 3
            for victim in closed:
                yield from proc.unlink(victim)
                meta += 1
            closed = []
            n_compactions += 1
    yield from mpi.barrier()

    return ZooRankReport(
        rank=mpi.rank,
        bytes_written=written,
        bytes_read=read,
        n_writes=n_writes,
        n_reads=n_reads,
        n_metadata_ops=meta,
    )


def metadata_storm(
    mpi: MPIRank, args: Dict[str, Any]
) -> Generator[Any, Any, ZooRankReport]:
    """Create/stat/unlink storm over a directory tree: no data payload.

    Each rank spreads ``n_files`` zero-byte files over ``subdirs``
    per-rank subdirectories: create+close, stat, then unlink (keeping
    every ``keep_every``-th file so the tree is not empty afterwards).

    args: ``base``, ``n_files``, ``subdirs``, ``keep_every``.
    """
    base = str(args.get("base", "/pfs/zoo/md"))
    n_files = int(args.get("n_files", 16))
    subdirs = int(args.get("subdirs", 2))
    keep_every = int(args.get("keep_every", 4))
    if n_files <= 0 or subdirs <= 0 or keep_every <= 0:
        raise InvalidArgument("n_files, subdirs and keep_every must be positive")
    proc = mpi.proc

    meta = yield from _mkdir_p(proc, base)
    for d in range(subdirs):
        meta += yield from _mkdir_p(proc, "%s/r%d.d%d" % (base, mpi.rank, d))
    for i in range(n_files):
        path = "%s/r%d.d%d/f%04d" % (base, mpi.rank, i % subdirs, i)
        fd = yield from proc.open(path, O_WRONLY | O_CREAT)
        yield from proc.close(fd)
        yield from proc.stat(path)
        meta += 3
        if (i + 1) % keep_every != 0:
            yield from proc.unlink(path)
            meta += 1
    yield from mpi.barrier()

    return ZooRankReport(
        rank=mpi.rank,
        bytes_written=0,
        bytes_read=0,
        n_writes=0,
        n_reads=0,
        n_metadata_ops=meta,
    )
