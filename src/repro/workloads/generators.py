"""Additional synthetic workloads beyond ``mpi_io_test``.

* :func:`io_intensive` — a Postmark-flavoured single-node create / write /
  read / stat / unlink mix, the style of benchmark the Tracefs authors
  used for their "less than 12.4%" overhead claim (§2.2);
* :func:`checkpoint` — compute phases alternating with N-to-1 write
  bursts, the archetypal LANL "killer app" I/O signature (§1);
* :func:`metadata_heavy` — create/stat/unlink storms (no payload), the
  regime where per-event tracing costs dominate completely;
* :func:`halo_exchange` — stencil-style neighbour exchange plus a
  checkpoint write: the communication+I/O mix message tracers care about;
* :func:`mmap_mix` — writes through ``mmap`` after a warm-up ``write``:
  the memory-mapped I/O that ptrace-level tracers cannot see but
  VFS-level tracing (Tracefs) records (§4.1.1 vs §4.2).

All take ``(mpi, args)`` like :func:`repro.workloads.mpi_io_test.mpi_io_test`
and run under :func:`repro.simmpi.mpirun`.
"""

from __future__ import annotations

from typing import Any, Dict, Generator

from repro.simfs.vfs import O_CREAT, O_RDONLY, O_WRONLY
from repro.simmpi.comm import MPIRank
from repro.units import KiB

__all__ = ["io_intensive", "checkpoint", "metadata_heavy", "halo_exchange", "mmap_mix"]


def io_intensive(mpi: MPIRank, args: Dict[str, Any]) -> Generator[Any, Any, Dict[str, int]]:
    """Create/write/read/stat/unlink over many small files.

    args: ``base`` (directory path), ``n_files``, ``file_size``,
    ``block_size``, ``keep`` (skip the unlink pass).
    """
    base = args.get("base", "/tmp/iointensive")
    n_files = int(args.get("n_files", 16))
    file_size = int(args.get("file_size", 256 * KiB))
    block_size = int(args.get("block_size", 64 * KiB))
    keep = bool(args.get("keep", False))
    proc = mpi.proc

    # mkdir -p: create every missing component (first rank wins on shared
    # directories, later EEXIST is fine).
    parts = base.strip("/").split("/")
    for depth in range(1, len(parts) + 1):
        prefix = "/" + "/".join(parts[:depth])
        try:
            yield from proc.mkdir(prefix)
        except Exception:
            pass

    written = read = 0
    for i in range(n_files):
        path = "%s/f%02d.%d" % (base, i, mpi.rank)
        fd = yield from proc.open(path, O_WRONLY | O_CREAT)
        pos = 0
        while pos < file_size:
            n = yield from proc.write(fd, min(block_size, file_size - pos))
            written += n
            pos += n
        yield from proc.close(fd)

        st = yield from proc.stat(path)
        assert st.size == file_size

        fd = yield from proc.open(path, O_RDONLY)
        pos = 0
        while pos < file_size:
            n = yield from proc.read(fd, min(block_size, file_size - pos))
            if n == 0:
                break
            read += n
            pos += n
        yield from proc.close(fd)

        if not keep:
            yield from proc.unlink(path)

    return {"bytes_written": written, "bytes_read": read, "n_files": n_files}


def checkpoint(mpi: MPIRank, args: Dict[str, Any]) -> Generator[Any, Any, Dict[str, int]]:
    """Alternating compute and N-to-1 checkpoint-write phases.

    args: ``path``, ``phases``, ``compute_time`` (per phase, seconds),
    ``block_size``, ``blocks_per_phase``.
    """
    from repro.simmpi.mpiio import MPIFile, MPI_MODE_CREATE, MPI_MODE_WRONLY

    path = args.get("path", "/pfs/checkpoint.dat")
    phases = int(args.get("phases", 3))
    compute_time = float(args.get("compute_time", 0.05))
    block_size = int(args.get("block_size", 256 * KiB))
    blocks = int(args.get("blocks_per_phase", 4))
    # Load imbalance: rank r computes (1 + r * imbalance) x the base time,
    # so barrier waits carry real weight (workload skew is the norm in
    # production codes, and it is what makes synchronization knowledge
    # matter for replay fidelity).
    imbalance = float(args.get("imbalance", 0.0))
    my_compute = compute_time * (1.0 + mpi.rank * imbalance)

    written = 0
    for phase in range(phases):
        # Compute phase: pure CPU (subject to tracer slowdown factor).
        yield from mpi.proc._charge(my_compute)
        yield from mpi.barrier()
        f = yield from MPIFile.open(
            mpi, "%s.%d" % (path, phase), MPI_MODE_WRONLY | MPI_MODE_CREATE,
            collective=True,
        )
        stride = mpi.size * block_size
        for b in range(blocks):
            offset = b * stride + mpi.rank * block_size
            written += yield from f.write_at(offset, block_size)
        yield from f.close()
        yield from mpi.barrier()
    return {"bytes_written": written, "phases": phases}


def metadata_heavy(mpi: MPIRank, args: Dict[str, Any]) -> Generator[Any, Any, Dict[str, int]]:
    """Create/stat/unlink storms with no data payload.

    args: ``base``, ``n_files``.
    """
    base = args.get("base", "/tmp/mdtest")
    n_files = int(args.get("n_files", 64))
    proc = mpi.proc
    try:
        yield from proc.mkdir(base)
    except Exception:
        pass
    for i in range(n_files):
        path = "%s/md.%d.%d" % (base, mpi.rank, i)
        fd = yield from proc.open(path, O_WRONLY | O_CREAT)
        yield from proc.close(fd)
        yield from proc.stat(path)
        yield from proc.unlink(path)
    return {"n_files": n_files}


def halo_exchange(mpi: MPIRank, args: Dict[str, Any]) -> Generator[Any, Any, Dict[str, int]]:
    """Stencil-style halo exchange: neighbours swap boundary data, then
    everyone checkpoints — the canonical communication+I/O mix.

    args: ``path``, ``iterations``, ``halo_bytes``, ``block_size``.
    Rank r exchanges with (r±1) mod size each iteration.
    """
    from repro.simmpi.mpiio import MPIFile, MPI_MODE_CREATE, MPI_MODE_WRONLY

    path = args.get("path", "/pfs/halo.out")
    iterations = int(args.get("iterations", 4))
    halo_bytes = int(args.get("halo_bytes", 64 * KiB))
    block_size = int(args.get("block_size", 128 * KiB))

    right = (mpi.rank + 1) % mpi.size
    left = (mpi.rank - 1) % mpi.size
    sent = 0
    for it in range(iterations):
        # send halos both ways, then receive both
        yield from mpi.send(right, ("halo", mpi.rank, it), tag=1, nbytes=halo_bytes)
        yield from mpi.send(left, ("halo", mpi.rank, it), tag=2, nbytes=halo_bytes)
        sent += 2 * halo_bytes
        yield from mpi.recv(source=left, tag=1)
        yield from mpi.recv(source=right, tag=2)
        yield from mpi.barrier()

    f = yield from MPIFile.open(
        mpi, path, MPI_MODE_WRONLY | MPI_MODE_CREATE, collective=True
    )
    written = yield from f.write_at(mpi.rank * block_size, block_size)
    yield from f.close()
    return {"bytes_sent": sent, "bytes_written": written}


def mmap_mix(mpi: MPIRank, args: Dict[str, Any]) -> Generator[Any, Any, Dict[str, int]]:
    """One visible ``write`` then many invisible ``mmap`` stores.

    args: ``path``, ``block_size``, ``n_mmap_writes``.
    Returns byte counts so tests can assert what each tracer should see.
    """
    path = args.get("path", "/tmp/mapped.dat")
    block_size = int(args.get("block_size", 64 * KiB))
    n_mmap = int(args.get("n_mmap_writes", 8))
    proc = mpi.proc

    fd = yield from proc.open("%s.%d" % (path, mpi.rank), O_WRONLY | O_CREAT)
    visible = yield from proc.write(fd, block_size)
    yield from proc.mmap(fd, (n_mmap + 1) * block_size)
    hidden = 0
    for i in range(n_mmap):
        hidden += yield from proc.mmap_write(fd, (i + 1) * block_size, block_size)
    yield from proc.close(fd)
    return {"visible_bytes": visible, "mmap_bytes": hidden}
