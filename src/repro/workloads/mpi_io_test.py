"""Reimplementation of the LANL ``mpi_io_test`` synthetic benchmark.

This is the application the paper traced for all its measurements ([4],
Figure 1's command line: ``mpi_io_test.exe -type 1 -strided 1 -size 32768
-nobj 1``).  The structure per rank:

1. global barrier (LANL-Trace brackets the app with its own timing
   barriers; the app also self-synchronizes);
2. ``MPI_File_open`` — collective for the shared-file (N-to-1) patterns,
   independent for N-to-N;
3. ``nobj`` explicit-offset writes of ``size`` bytes each, placed by the
   access pattern;
4. optional read-back verification pass;
5. close + final barrier;
6. rank 0 gathers per-rank local timings.

Arguments (a dict, mirroring the real tool's flags):

``pattern``
    an :class:`~repro.workloads.patterns.AccessPattern` (covers the real
    tool's ``-type``/``-strided``);
``block_size`` (``-size``)
    bytes per write;
``nobj`` (``-nobj``)
    writes per rank;
``path``
    target file (or basename for N-to-N);
``read_back``
    also read everything back (default False);
``sync``
    fsync before close (default False).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional

from repro.errors import InvalidArgument
from repro.simmpi.comm import MPIRank
from repro.simmpi.mpiio import (
    MPIFile,
    MPI_MODE_CREATE,
    MPI_MODE_RDONLY,
    MPI_MODE_WRONLY,
)
from repro.workloads.patterns import AccessPattern, file_path_for_rank, plan_io

__all__ = ["mpi_io_test", "MpiIoTestReport"]


@dataclass(frozen=True)
class MpiIoTestReport:
    """Per-rank report returned by the workload.

    Timings are from the rank's *local* clock (``MPI_Wtime``), so summing
    or comparing across ranks inherits skew — as in real life.
    """

    rank: int
    hostname: str
    bytes_written: int
    bytes_read: int
    t_open_local: float
    t_io_local: float
    t_total_local: float
    n_writes: int
    n_reads: int


def _parse_args(args: Dict[str, Any]):
    pattern = args.get("pattern", AccessPattern.N_TO_1_STRIDED)
    if isinstance(pattern, str):
        pattern = AccessPattern(pattern)
    block_size = int(args.get("block_size", 32768))
    nobj = int(args.get("nobj", 1))
    path = args.get("path", "/pfs/mpi_io_test.out")
    read_back = bool(args.get("read_back", False))
    sync = bool(args.get("sync", False))
    barriers = bool(args.get("barriers", True))
    barrier_every = int(args.get("barrier_every", 0))
    if block_size <= 0:
        raise InvalidArgument("block_size must be positive")
    if nobj <= 0:
        raise InvalidArgument("nobj must be positive")
    if barrier_every < 0:
        raise InvalidArgument("barrier_every must be >= 0")
    return pattern, block_size, nobj, path, read_back, sync, barriers, barrier_every


def mpi_io_test(mpi: MPIRank, args: Dict[str, Any]) -> Generator[Any, Any, MpiIoTestReport]:
    """The benchmark body for one rank (pass to :func:`repro.simmpi.mpirun`)."""
    pattern, block_size, nobj, path, read_back, sync, barriers, barrier_every = (
        _parse_args(args)
    )

    if barriers:
        yield from mpi.barrier()
    t_start = mpi.wtime()

    amode = MPI_MODE_WRONLY | MPI_MODE_CREATE
    target = file_path_for_rank(pattern, path, mpi.rank)
    f = yield from MPIFile.open(
        mpi, target, amode, collective=pattern.shared_file and barriers
    )
    t_opened = mpi.wtime()

    bytes_written = 0
    n_writes = 0
    for wpath, offset, nbytes in plan_io(
        pattern, mpi.rank, mpi.size, block_size, nobj, path
    ):
        n = yield from f.write_at(offset, nbytes)
        bytes_written += n
        n_writes += 1
        # The real tool self-synchronizes periodically (Figure 1's call
        # summary counts 29 MPI_Barrier calls for a single short run).
        if barrier_every and n_writes % barrier_every == 0:
            yield from mpi.barrier()

    if sync:
        yield from f.sync()
    yield from f.close()
    t_io_done = mpi.wtime()

    bytes_read = 0
    n_reads = 0
    if read_back:
        rf = yield from MPIFile.open(
            mpi, target, MPI_MODE_RDONLY, collective=pattern.shared_file and barriers
        )
        for rpath, offset, nbytes in plan_io(
            pattern, mpi.rank, mpi.size, block_size, nobj, path
        ):
            n = yield from rf.read_at(offset, nbytes)
            bytes_read += n
            n_reads += 1
        yield from rf.close()

    if barriers:
        yield from mpi.barrier()
    t_end = mpi.wtime()

    report = MpiIoTestReport(
        rank=mpi.rank,
        hostname=mpi.proc.node.hostname,
        bytes_written=bytes_written,
        bytes_read=bytes_read,
        t_open_local=t_opened - t_start,
        t_io_local=t_io_done - t_opened,
        t_total_local=t_end - t_start,
        n_writes=n_writes,
        n_reads=n_reads,
    )
    if barriers:
        # Rank 0 gathers everyone's report, like the real tool's summary.
        yield from mpi.gather(report, root=0)
    return report
