"""Synthetic workloads.

:mod:`repro.workloads.mpi_io_test` reimplements the LANL ``mpi_io_test``
synthetic application (paper reference [4]) the paper used for every
overhead measurement, with the three parallel I/O access patterns of
§4.1.2 defined in :mod:`repro.workloads.patterns`.  Additional workloads
for wider testing live in :mod:`repro.workloads.generators`.
"""

from repro.workloads.patterns import AccessPattern, block_offset, file_path_for_rank, plan_io
from repro.workloads.mpi_io_test import mpi_io_test, MpiIoTestReport

__all__ = [
    "AccessPattern",
    "block_offset",
    "file_path_for_rank",
    "plan_io",
    "mpi_io_test",
    "MpiIoTestReport",
]
