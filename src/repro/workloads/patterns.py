"""The three parallel I/O access patterns of the paper (§4.1.2).

    "First, N processors writing to N files [...].  Second, N processors
    writing to a single file, with each processor writing to a single
    contiguous spot within the file.  This behavior is called non-strided.
    Third, again N processors writing to a single file, this time each
    processor wrote to many spots within the file [...].  This is called
    strided behavior."

(See also paper reference [12] for the N-N / N-1 terminology.)

The offset arithmetic lives here, separate from the workload driver, so it
can be property-tested: for either N-1 pattern, the union of all ranks'
blocks must tile the shared file exactly — every byte written once,
no overlaps, no holes.
"""

from __future__ import annotations

import enum
from typing import Iterator, Tuple

__all__ = ["AccessPattern", "block_offset", "file_path_for_rank", "plan_io"]


class AccessPattern(str, enum.Enum):
    """How N processes place their blocks."""

    N_TO_N = "n-to-n"
    N_TO_1_NONSTRIDED = "n-to-1-nonstrided"
    N_TO_1_STRIDED = "n-to-1-strided"

    @property
    def shared_file(self) -> bool:
        return self is not AccessPattern.N_TO_N

    @property
    def strided(self) -> bool:
        return self is AccessPattern.N_TO_1_STRIDED


def block_offset(
    pattern: AccessPattern, rank: int, size: int, block: int, block_size: int, nobj: int
) -> int:
    """File offset of ``rank``'s ``block``-th write.

    * N-to-N: each rank owns its file; blocks are laid out contiguously.
    * N-to-1 non-strided: rank r owns the contiguous region
      ``[r * nobj * B, (r+1) * nobj * B)``.
    * N-to-1 strided: block j of rank r lands at ``(j * size + r) * B`` —
      round-robin interleaving that keeps "similar data grouped by
      proximity within the file".
    """
    if not (0 <= rank < size):
        raise ValueError("rank %d out of range" % rank)
    if not (0 <= block < nobj):
        raise ValueError("block %d out of range" % block)
    if pattern is AccessPattern.N_TO_N:
        return block * block_size
    if pattern is AccessPattern.N_TO_1_NONSTRIDED:
        return (rank * nobj + block) * block_size
    if pattern is AccessPattern.N_TO_1_STRIDED:
        return (block * size + rank) * block_size
    raise ValueError("unknown pattern %r" % (pattern,))


def file_path_for_rank(pattern: AccessPattern, base_path: str, rank: int) -> str:
    """Target path: the shared file, or a per-rank file for N-to-N."""
    if pattern is AccessPattern.N_TO_N:
        return "%s.%d" % (base_path, rank)
    return base_path


def plan_io(
    pattern: AccessPattern,
    rank: int,
    size: int,
    block_size: int,
    nobj: int,
    base_path: str,
) -> Iterator[Tuple[str, int, int]]:
    """Yield ``(path, offset, nbytes)`` for every write of one rank, in order."""
    path = file_path_for_rank(pattern, base_path, rank)
    for block in range(nobj):
        yield path, block_offset(pattern, rank, size, block, block_size, nobj), block_size


def total_file_bytes(pattern: AccessPattern, size: int, block_size: int, nobj: int) -> int:
    """Size of the (shared or each per-rank) file after a full run."""
    if pattern is AccessPattern.N_TO_N:
        return nobj * block_size
    return size * nobj * block_size
