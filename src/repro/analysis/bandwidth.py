"""Bandwidth and event-rate arithmetic over traces and runs.

Small, well-named helpers for the quantities the paper's figures plot:
aggregate bandwidth, traced-event density ("a constant number of traced
events are generated for each block.  The number of such events is
inversely proportional to block size", §4.1.2), and overhead percentages.
"""

from __future__ import annotations

from typing import Iterable

from repro.simos import syscalls as sc
from repro.trace.events import TraceEvent
from repro.trace.records import TraceBundle

__all__ = [
    "trace_bandwidth",
    "events_per_byte",
    "overhead_percent",
    "payload_bytes",
]


def payload_bytes(events: Iterable[TraceEvent], names: frozenset = sc.IO_DATA_SYSCALLS) -> int:
    """Total payload moved by data syscalls in an event stream."""
    return sum(
        e.nbytes or 0
        for e in events
        if e.name in names and e.nbytes is not None
    )


def trace_bandwidth(bundle: TraceBundle) -> float:
    """Aggregate payload bandwidth implied by a bundle's events.

    Uses the bundle-wide local-time span as the denominator — a *biased*
    view when clocks are skewed, which is precisely why frameworks without
    skew accounting mislead; prefer run elapsed time when available.
    """
    events = bundle.all_events()
    if not events:
        return 0.0
    start = min(e.timestamp for e in events)
    end = max(e.end_timestamp for e in events)
    span = end - start
    if span <= 0:
        return 0.0
    return payload_bytes(events) / span


def events_per_byte(bundle: TraceBundle) -> float:
    """Traced events per payload byte — the paper's 1/block-size density."""
    events = bundle.all_events()
    nbytes = payload_bytes(events)
    if nbytes == 0:
        return 0.0
    return len(events) / nbytes


def overhead_percent(untraced: float, traced: float) -> float:
    """The paper's elapsed-time-overhead formula, in percent."""
    if untraced <= 0:
        return 0.0
    return 100.0 * (traced - untraced) / untraced
