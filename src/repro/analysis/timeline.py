"""Global timeline reconstruction.

Merges per-rank trace files into one event sequence ordered on a common
clock.  Without skew correction, interleaving events by raw local
timestamps mis-orders causally related events on skewed nodes; with the
barrier-stamp estimates from :mod:`repro.analysis.skew`, ordering is
recovered to within the barrier-exit spread.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis.skew import ClockEstimate, correct_timestamp
from repro.trace.events import TraceEvent
from repro.trace.records import TraceBundle

__all__ = ["global_timeline"]


def global_timeline(
    bundle: TraceBundle,
    estimates: Optional[Dict[int, ClockEstimate]] = None,
) -> List[Tuple[float, TraceEvent]]:
    """Merge all sources into ``[(global_time, event), ...]``, sorted.

    With ``estimates`` (from :func:`repro.analysis.skew.estimate_clocks`),
    each event's local timestamp is projected onto the reference clock;
    without, raw local timestamps are used (skew and all).
    """
    merged: List[Tuple[float, TraceEvent]] = []
    for key, tf in bundle.files.items():
        rank = tf.rank if tf.rank is not None else key
        for e in tf.events:
            if estimates is not None:
                t = correct_timestamp(estimates, rank, e.timestamp)
            else:
                t = e.timestamp
            merged.append((t, e))
    merged.sort(key=lambda pair: (pair[0], pair[1].rank or 0))
    return merged
