"""Call summaries: counts and total time per traced function.

Reproduces the third LANL-Trace output of the paper's Figure 1::

    #                     SUMMARY COUNT OF TRACED CALL(S)
    #  Function Name            Number of Calls            Total time (s)
    =====================================================================
       MPIO_Wait                              2                  0.000118
       MPI_Barrier                           29                  2.156431
       ...
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from repro.trace.events import TraceEvent
from repro.trace.records import TraceBundle, TraceFile

__all__ = ["CallSummary", "summarize_calls"]


@dataclass(frozen=True)
class CallSummaryRow:
    name: str
    n_calls: int
    total_time: float


class CallSummary:
    """Aggregated per-function statistics over a set of events."""

    def __init__(self, rows: Dict[str, CallSummaryRow]):
        self._rows = rows

    def __contains__(self, name: str) -> bool:
        return name in self._rows

    def __getitem__(self, name: str) -> CallSummaryRow:
        return self._rows[name]

    def __len__(self) -> int:
        return len(self._rows)

    def names(self) -> List[str]:
        """All function names, sorted."""
        return sorted(self._rows)

    def rows(self) -> List[CallSummaryRow]:
        """Rows sorted by function name (the Figure 1 presentation)."""
        return [self._rows[n] for n in self.names()]

    @property
    def total_calls(self) -> int:
        return sum(r.n_calls for r in self._rows.values())

    @property
    def total_time(self) -> float:
        return sum(r.total_time for r in self._rows.values())


def summarize_calls(source: TraceBundle | TraceFile | Iterable[TraceEvent]) -> CallSummary:
    """Build a :class:`CallSummary` from a bundle, file, or event iterable."""
    if isinstance(source, TraceBundle):
        events: Iterable[TraceEvent] = source.all_events()
    elif isinstance(source, TraceFile):
        events = source.events
    else:
        events = source
    counts: Dict[str, int] = {}
    times: Dict[str, float] = {}
    for e in events:
        counts[e.name] = counts.get(e.name, 0) + 1
        times[e.name] = times.get(e.name, 0.0) + e.duration
    return CallSummary(
        {
            name: CallSummaryRow(name=name, n_calls=counts[name], total_time=times[name])
            for name in counts
        }
    )
