"""Call summaries: counts and total time per traced function.

Reproduces the third LANL-Trace output of the paper's Figure 1::

    #                     SUMMARY COUNT OF TRACED CALL(S)
    #  Function Name            Number of Calls            Total time (s)
    =====================================================================
       MPIO_Wait                              2                  0.000118
       MPI_Barrier                           29                  2.156431
       ...
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional

from repro.trace.events import TraceEvent
from repro.trace.records import TraceBundle, TraceFile

__all__ = ["CallSummary", "summarize_calls", "summarize_store"]


@dataclass(frozen=True)
class CallSummaryRow:
    name: str
    n_calls: int
    total_time: float


class CallSummary:
    """Aggregated per-function statistics over a set of events."""

    def __init__(self, rows: Dict[str, CallSummaryRow]):
        self._rows = rows

    def __contains__(self, name: str) -> bool:
        return name in self._rows

    def __getitem__(self, name: str) -> CallSummaryRow:
        return self._rows[name]

    def __len__(self) -> int:
        return len(self._rows)

    def names(self) -> List[str]:
        """All function names, sorted."""
        return sorted(self._rows)

    def rows(self) -> List[CallSummaryRow]:
        """Rows sorted by function name (the Figure 1 presentation)."""
        return [self._rows[n] for n in self.names()]

    @property
    def total_calls(self) -> int:
        return sum(r.n_calls for r in self._rows.values())

    @property
    def total_time(self) -> float:
        return sum(r.total_time for r in self._rows.values())


def summarize_calls(source: TraceBundle | TraceFile | Iterable[TraceEvent]) -> CallSummary:
    """Build a :class:`CallSummary` from a bundle, file, or event iterable."""
    if isinstance(source, TraceBundle):
        events: Iterable[TraceEvent] = source.all_events()
    elif isinstance(source, TraceFile):
        events = source.events
    else:
        events = source
    counts: Dict[str, int] = {}
    times: Dict[str, float] = {}
    for e in events:
        counts[e.name] = counts.get(e.name, 0) + 1
        times[e.name] = times.get(e.name, 0.0) + e.duration
    return CallSummary(
        {
            name: CallSummaryRow(name=name, n_calls=counts[name], total_time=times[name])
            for name in counts
        }
    )


def summarize_store(
    store_root: str, query: Optional[Any] = None, jobs: int = 1
) -> CallSummary:
    """Build a :class:`CallSummary` from a TraceBank archive's ``ops`` query.

    The store-backed sibling of :func:`summarize_calls`: the same Figure-1
    rows, but computed by the archive's pushdown-pruned parallel scan
    instead of decoding whole bundles in-process.  ``query`` (a
    :class:`repro.store.Query`) restricts which runs/events count; its
    aggregate choice is overridden to ``ops``.
    """
    from dataclasses import replace

    from repro.store.bank import TraceBank
    from repro.store.query import Query, run_query

    q = replace(query, agg="ops") if query is not None else Query(agg="ops")
    report = run_query(TraceBank(store_root, create=False), q, jobs=jobs)
    return CallSummary(
        {
            name: CallSummaryRow(
                name=name, n_calls=cell["calls"], total_time=cell["total_time"]
            )
            for name, cell in report["result"]["ops"].items()
        }
    )
