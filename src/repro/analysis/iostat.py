"""iostat-style interval statistics over traces.

Buckets a trace's data events into fixed time intervals and reports, per
interval: operation count, bytes moved, bandwidth, and mean latency — the
rolling view an operator watches while a job runs, derived after the fact
from any framework's trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Union

from repro.errors import TraceError
from repro.trace.events import TraceEvent
from repro.trace.records import TraceBundle, TraceFile

__all__ = ["Interval", "iostat", "render_iostat"]

_IO_NAMES = {
    "SYS_read",
    "SYS_write",
    "SYS_pread64",
    "SYS_pwrite64",
    "vfs_read",
    "vfs_write",
}


@dataclass(frozen=True)
class Interval:
    """One time bucket's aggregate I/O statistics."""

    start: float
    duration: float
    n_ops: int
    nbytes: int
    total_latency: float

    @property
    def bandwidth(self) -> float:
        return self.nbytes / self.duration if self.duration > 0 else 0.0

    @property
    def iops(self) -> float:
        return self.n_ops / self.duration if self.duration > 0 else 0.0

    @property
    def mean_latency(self) -> float:
        return self.total_latency / self.n_ops if self.n_ops else 0.0


def iostat(
    source: Union[TraceBundle, TraceFile, Iterable[TraceEvent]],
    interval: float = 0.1,
) -> List[Interval]:
    """Bucket data events into fixed intervals (empty buckets included)."""
    if interval <= 0:
        raise TraceError("interval must be positive")
    if isinstance(source, TraceBundle):
        events: Iterable[TraceEvent] = source.all_events()
    elif isinstance(source, TraceFile):
        events = source.events
    else:
        events = list(source)
    io = [e for e in events if e.name in _IO_NAMES and e.nbytes is not None]
    if not io:
        return []
    t0 = min(e.timestamp for e in io)
    t1 = max(e.end_timestamp for e in io)
    n_buckets = max(1, int((t1 - t0) / interval) + 1)
    ops = [0] * n_buckets
    nbytes = [0] * n_buckets
    lat = [0.0] * n_buckets
    for e in io:
        b = min(n_buckets - 1, int((e.timestamp - t0) / interval))
        ops[b] += 1
        nbytes[b] += e.nbytes or 0
        lat[b] += e.duration
    return [
        Interval(
            start=t0 + i * interval,
            duration=interval,
            n_ops=ops[i],
            nbytes=nbytes[i],
            total_latency=lat[i],
        )
        for i in range(n_buckets)
    ]


def render_iostat(intervals: List[Interval]) -> str:
    """Text table in the style of ``iostat -x`` output."""
    if not intervals:
        return "# no data events\n"
    lines = [
        "# %-12s %8s %14s %14s %12s"
        % ("t", "ops", "bytes", "MB/s", "avg-lat(ms)")
    ]
    for iv in intervals:
        lines.append(
            "  %-12.4f %8d %14d %14.2f %12.3f"
            % (
                iv.start,
                iv.n_ops,
                iv.nbytes,
                iv.bandwidth / (1024 * 1024),
                1e3 * iv.mean_latency,
            )
        )
    return "\n".join(lines) + "\n"
