"""I/O phase detection.

HPC applications alternate compute and I/O phases (the checkpoint pattern
motivating the paper's §1 "killer apps").  Given one rank's trace, this
module segments its timeline into ``io`` and ``compute`` phases: an I/O
phase is a maximal burst of data-moving events separated by gaps shorter
than ``gap_threshold``; the gaps between bursts are compute phases.

Phase structure is what trace *consumers* (replayers, schedulers, burst-
buffer sizers) actually want from the raw event stream, which makes this
the natural demo of the taxonomy's "Analysis tools" feature beyond call
counting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Union

from repro.trace.events import TraceEvent
from repro.trace.records import TraceFile

__all__ = ["Phase", "detect_phases", "phase_summary"]

_IO_NAMES = {
    "SYS_read",
    "SYS_write",
    "SYS_pread64",
    "SYS_pwrite64",
    "vfs_read",
    "vfs_write",
    "MPI_File_write_at",
    "MPI_File_read_at",
}


@dataclass(frozen=True)
class Phase:
    """One segment of a rank's timeline."""

    kind: str  # "io" | "compute"
    start: float
    end: float
    bytes_moved: int = 0
    n_events: int = 0

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def bandwidth(self) -> float:
        if self.duration <= 0:
            return 0.0
        return self.bytes_moved / self.duration


def detect_phases(
    source: Union[TraceFile, Iterable[TraceEvent]],
    gap_threshold: float = 0.05,
) -> List[Phase]:
    """Segment one rank's events into alternating io/compute phases.

    Only data-moving events (reads/writes at any layer) count as I/O;
    metadata calls inside a burst do not break it, and gaps longer than
    ``gap_threshold`` between I/O events become compute phases.
    """
    events = source.events if isinstance(source, TraceFile) else list(source)
    io_events = sorted(
        (e for e in events if e.name in _IO_NAMES and e.nbytes is not None),
        key=lambda e: e.timestamp,
    )
    if not io_events:
        return []
    phases: List[Phase] = []
    burst_start = io_events[0].timestamp
    burst_end = io_events[0].end_timestamp
    burst_bytes = io_events[0].nbytes or 0
    burst_events = 1
    for e in io_events[1:]:
        if e.timestamp - burst_end > gap_threshold:
            phases.append(
                Phase("io", burst_start, burst_end, burst_bytes, burst_events)
            )
            phases.append(Phase("compute", burst_end, e.timestamp))
            burst_start = e.timestamp
            burst_bytes = 0
            burst_events = 0
        burst_end = max(burst_end, e.end_timestamp)
        burst_bytes += e.nbytes or 0
        burst_events += 1
    phases.append(Phase("io", burst_start, burst_end, burst_bytes, burst_events))
    return phases


def phase_summary(phases: List[Phase]) -> str:
    """Human-readable phase table."""
    if not phases:
        return "# no I/O phases detected\n"
    lines = ["# %-8s %12s %12s %12s %8s" % ("kind", "start", "duration", "bytes", "events")]
    for p in phases:
        lines.append(
            "  %-8s %12.6f %12.6f %12d %8d"
            % (p.kind, p.start, p.duration, p.bytes_moved, p.n_events)
        )
    io = [p for p in phases if p.kind == "io"]
    compute = [p for p in phases if p.kind == "compute"]
    lines.append(
        "# %d io phase(s) totalling %.6fs, %d compute gap(s) totalling %.6fs"
        % (
            len(io),
            sum(p.duration for p in io),
            len(compute),
            sum(p.duration for p in compute),
        )
    )
    return "\n".join(lines) + "\n"
