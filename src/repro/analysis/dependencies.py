"""Dependency analysis over traces.

Two complementary sources of dependency information exist in this
library, matching the paper's discussion of "Reveals Dependencies"
(§3.1):

* **empirical** — //TRACE's throttling produces a
  :class:`~repro.frameworks.ptrace.depmap.DependencyMap` (causal, needs
  the expensive discovery runs);
* **inferred** — this module: read/write data-flow edges recovered from
  the traces alone (cheap, but only sees dependencies that manifest as
  shared-file access, and inherits clock-skew ordering risk unless a
  skew-corrected timeline is supplied).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.analysis.skew import ClockEstimate, correct_timestamp
from repro.trace.records import TraceBundle

__all__ = ["infer_data_dependencies", "dependency_summary"]

_WRITE_NAMES = {"SYS_write", "SYS_pwrite64", "MPI_File_write_at", "vfs_write"}
_READ_NAMES = {"SYS_read", "SYS_pread64", "MPI_File_read_at", "vfs_read"}


def infer_data_dependencies(
    bundle: TraceBundle,
    estimates: Optional[Dict[int, ClockEstimate]] = None,
) -> nx.DiGraph:
    """Writer→reader edges from shared-file access order.

    An edge ``(a, b)`` with attributes ``path`` and ``count`` means rank
    ``a`` wrote a file that rank ``b`` subsequently read.  Ordering uses
    skew-corrected time when ``estimates`` is given, raw local time
    otherwise.
    """
    accesses: List[Tuple[float, int, str, str]] = []  # (t, rank, kind, path)
    for key, tf in bundle.files.items():
        rank = tf.rank if tf.rank is not None else key
        for e in tf.events:
            if e.path is None:
                continue
            if e.name in _WRITE_NAMES:
                kind = "w"
            elif e.name in _READ_NAMES:
                kind = "r"
            else:
                continue
            t = (
                correct_timestamp(estimates, rank, e.timestamp)
                if estimates is not None
                else e.timestamp
            )
            accesses.append((t, rank, kind, e.path))
    accesses.sort(key=lambda a: a[0])

    graph = nx.DiGraph()
    last_writer: Dict[str, int] = {}
    for _t, rank, kind, path in accesses:
        if kind == "w":
            last_writer[path] = rank
        else:
            writer = last_writer.get(path)
            if writer is not None and writer != rank:
                if graph.has_edge(writer, rank):
                    graph.edges[writer, rank]["count"] += 1
                else:
                    graph.add_edge(writer, rank, path=path, count=1)
    return graph


def dependency_summary(graph: nx.DiGraph) -> str:
    """One-line-per-edge rendering of a dependency digraph."""
    if graph.number_of_edges() == 0:
        return "# no cross-rank data dependencies observed\n"
    lines = ["# inferred data dependencies (writer -> reader)"]
    for a, b, data in sorted(graph.edges(data=True)):
        lines.append(
            "  rank %s -> rank %s  (%d transfer(s), e.g. %s)"
            % (a, b, data.get("count", 1), data.get("path", "?"))
        )
    return "\n".join(lines) + "\n"
