"""Clock skew and drift estimation from barrier timing stamps.

The taxonomy (§3.1) requires frameworks that report per-node timestamps to
"allow for the possibility of drift and skew and provide mechanisms by
which developers and debuggers can account for them".  LANL-Trace's
mechanism is the barrier timing job: every rank reports its local clock
immediately before and after a global barrier, before *and* after the
application (two barriers, separated by the run's duration).

Since all ranks exit one barrier at (nearly) the same true instant, the
exit stamps of one barrier expose pairwise skew; two barriers separated in
time expose drift.  We fit, for each rank, the affine map from its local
clock to a reference rank's clock by least squares over barrier exits::

    ref_time  ~=  alpha_r + beta_r * local_r

``beta_r != 1`` is drift relative to the reference; ``alpha_r`` absorbs
skew.  With the fitted estimates, any local timestamp (e.g. a trace
event's) can be projected onto the common timeline.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List

import numpy as np

from repro.errors import TraceError
from repro.trace.records import BarrierStamp

__all__ = ["ClockEstimate", "estimate_clocks", "correct_timestamp"]


@dataclass(frozen=True)
class ClockEstimate:
    """Affine map from one rank's local clock onto the reference clock."""

    rank: int
    alpha: float  # offset
    beta: float  # rate

    def to_reference(self, local_time: float) -> float:
        """Project a local timestamp onto the reference clock."""
        return self.alpha + self.beta * local_time

    @property
    def has_drift(self) -> bool:
        """Detectable rate difference vs. the reference (beyond ~0.1 ppm)."""
        return abs(self.beta - 1.0) > 1e-7


def _exits_by_barrier(stamps: Iterable[BarrierStamp]) -> Dict[str, Dict[int, float]]:
    by_label: Dict[str, Dict[int, float]] = defaultdict(dict)
    for s in stamps:
        by_label[s.barrier_label][s.rank] = s.exited_at
    return by_label


def estimate_clocks(
    stamps: Iterable[BarrierStamp], reference_rank: int = 0
) -> Dict[int, ClockEstimate]:
    """Fit per-rank clock maps from barrier stamps.

    Needs at least one barrier containing the reference rank; drift
    (beta != 1) is only observable with two or more barriers.
    """
    by_label = _exits_by_barrier(stamps)
    usable = {
        label: exits
        for label, exits in by_label.items()
        if reference_rank in exits and len(exits) >= 2
    }
    if not usable:
        raise TraceError(
            "no barrier stamps include reference rank %d" % reference_rank
        )
    ranks = set()
    for exits in usable.values():
        ranks.update(exits)

    estimates: Dict[int, ClockEstimate] = {
        reference_rank: ClockEstimate(rank=reference_rank, alpha=0.0, beta=1.0)
    }
    for rank in sorted(ranks - {reference_rank}):
        local: List[float] = []
        ref: List[float] = []
        for exits in usable.values():
            if rank in exits:
                local.append(exits[rank])
                ref.append(exits[reference_rank])
        if not local:
            continue
        if len(local) == 1:
            # Single barrier: skew only, assume no drift.
            estimates[rank] = ClockEstimate(
                rank=rank, alpha=ref[0] - local[0], beta=1.0
            )
            continue
        x = np.asarray(local)
        y = np.asarray(ref)
        # Centre for numerical stability (epoch-sized abscissae).
        x0 = x.mean()
        beta, alpha_c = np.polyfit(x - x0, y, 1)
        alpha = alpha_c - beta * x0
        estimates[rank] = ClockEstimate(rank=rank, alpha=float(alpha), beta=float(beta))
    return estimates


def correct_timestamp(
    estimates: Dict[int, ClockEstimate], rank: int, local_time: float
) -> float:
    """Project a rank-local timestamp onto the reference timeline."""
    try:
        est = estimates[rank]
    except KeyError:
        raise TraceError("no clock estimate for rank %d" % rank) from None
    return est.to_reference(local_time)
