"""Trace analysis tools (the taxonomy's "Analysis tools" feature, §3.1).

* :mod:`repro.analysis.summary` — per-function call counts and total time
  (the third LANL-Trace output of Figure 1);
* :mod:`repro.analysis.skew` — estimate per-node clock skew and drift from
  barrier timing stamps and correct local timestamps to a global timeline;
* :mod:`repro.analysis.bandwidth` — bandwidth/overhead arithmetic over
  traces and runs;
* :mod:`repro.analysis.timeline` — merge per-node traces into one
  skew-corrected global event timeline;
* :mod:`repro.analysis.dependencies` — inter-node dependency graphs
  (//TRACE's "Reveals dependencies" output) on networkx;
* :mod:`repro.analysis.phases` — compute/I-O phase segmentation of a
  rank's timeline (burst detection).
"""

from repro.analysis.phases import Phase, detect_phases, phase_summary
from repro.analysis.summary import CallSummary, summarize_calls
from repro.analysis.skew import ClockEstimate, estimate_clocks, correct_timestamp
from repro.analysis.bandwidth import trace_bandwidth, events_per_byte
from repro.analysis.timeline import global_timeline

__all__ = [
    "Phase",
    "detect_phases",
    "phase_summary",
    "CallSummary",
    "summarize_calls",
    "ClockEstimate",
    "estimate_clocks",
    "correct_timestamp",
    "trace_bandwidth",
    "events_per_byte",
    "global_timeline",
]
