"""Command-line interface: ``python -m repro <command>``.

Commands:

``table2 [--format text|markdown|csv]``
    Render the paper's Table 2 (classification of all registered
    frameworks' published values).
``classify NAME``
    One framework's classification as a Table-1-style reference card.
``recommend [constraint flags]``
    Formalize tracing requirements and rank the frameworks (§5).
``figure N [--quick] [--jobs N] [--no-cache] [--telemetry]``
    Regenerate Figure 2, 3 or 4 on the simulated testbed.  With
    ``--telemetry`` every point also exports a metrics snapshot and a
    Perfetto-loadable Chrome trace into ``--telemetry-out`` (default
    ``telemetry/``).
``figures [--quick] [--jobs N] [--no-cache] [--bench-out PATH] [--telemetry]``
    Regenerate Figures 2-4 and the §4.1.1 overhead range as one sweep —
    points fan out over ``--jobs`` worker processes, results are memoized
    in ``.repro-cache/`` (disable with ``--no-cache``), and a
    ``BENCH_sweep.json`` artifact records wall-clock per point, events/sec,
    and the cache hit rate.  ``--progress`` (or a tty stderr) shows live
    ``N/M points, ETA`` lines while the sweep runs.
``chaos [--matrix NAME] [--frameworks ...] [--jobs N] [--report-out PATH]``
    Run a named fault matrix (node crash, network partition, disk storms)
    against the paper's frameworks under the simulator-wide fault plane,
    reporting per-scenario survival and overhead deltas versus the
    no-fault baseline.  Every scenario is bounded by a simulated-time
    horizon with exponential-backoff retries — no hangs — and the matrix
    is byte-deterministic across ``--jobs`` values and warm-cache reruns.
``observe PATH [--validate]``
    Summary report of a telemetry artifact written by ``--telemetry``
    (per-layer call mix, bytes moved, utilizations, span counts);
    ``--validate`` additionally checks the embedded Chrome trace against
    the trace-event schema.
``summarize TRACE``
    Call summary of a trace file (text ``.trace`` or binary ``.bin``).
``convert IN OUT``
    Convert a trace between the human-readable and binary formats
    (direction inferred from file extensions).
``anonymize IN OUT [--mode randomize|encrypt] [--key HEX] [--fields ...]``
    Anonymize a trace file for release.
``obs diff|critpath|slice|diagnose|check``
    The regression observatory.  ``diff`` structurally compares two
    runs' telemetry (counter deltas, histogram divergence, span-tree
    alignment with per-layer self-time deltas) — runs are addressed by
    telemetry file or TraceBank run-id prefix.  ``critpath`` attributes
    self time to stack layers, names the straggler rank chain bounding
    elapsed time, and exports collapsed-stack flamegraph lines.
    ``slice`` extracts the causal slice explaining one run's latency
    around an anchor (the straggler by default, or ``--rank``/``--op``/
    ``--path``): per-layer attributed time in the anchor window, the
    cross-layer bounding chain, overlapping injected faults, and ranked
    suspect layers, with ``--perfetto``/``--flame`` renderings.
    ``diagnose`` runs archive-scale anomaly diagnosis over a TraceBank:
    fingerprints every archived run (DFG shape + per-layer self time),
    clusters by fingerprint distance, flags outliers with median/MAD
    scoring against their peer group (or ``--against`` a pinned
    baseline run), auto-slices each outlier, and prints the ranked
    "suspect layer + op + rank" table — byte-identical for any
    ``--jobs``.  ``check`` gates the latest ``BENCH_history.jsonl``
    record (appended by ``figures --baseline``) with median/MAD change
    detection; ``--fail-on-regression`` exits nonzero when a metric
    regressed.
``store ingest|ls|query|dfg|verify|gc``
    The TraceBank trace archive: ingest trace files or whole sweeps
    (``--store`` on ``figure``/``figures``/``chaos`` auto-archives every
    traced bundle; ``--codec v2`` stores columnar segments that queries
    scan by column projection), list runs, run filtered/aggregated
    queries and
    directly-follows graphs over the archive (``--jobs`` fans shard scans
    over processes with byte-identical output), verify end-to-end
    integrity, and garbage-collect unreferenced segments.
``zoo ls|describe|run|matrix|replay``
    The workload zoo.  ``ls``/``describe`` browse the scenario registry
    (checkpoint/restart with burst-buffer tiering, ML-epoch shuffled
    reads, log-structured append+compaction, metadata storm); ``run``/
    ``matrix`` execute scenarios through the §3.1 harness (same sweep
    flags as ``figures``: ``--jobs``, run cache, ``--store`` archiving,
    ``--baseline`` gate records) and check each archived trace against
    the scenario's declared I/O signature; ``--replay-check`` closes the
    loop by replaying every archived run from its run id and requiring
    an exact fidelity report.  ``replay`` takes any trace source — a
    TraceBank run-id prefix, a raw ``strace -f -T -ttt`` capture, or
    library trace files — compiles it to a pseudo-application, replays
    it on a fresh simulated cluster under a documented timing policy
    (``afap`` or ``preserve``), and prints the per-op-class fidelity
    report.
``service serve|ingest|query|loadgen``
    TraceBank as a service: ``serve`` boots the stdlib-asyncio HTTP API
    (per-tenant namespaces over one shared segment pool, write-ahead
    ingest queue with 429 backpressure); ``ingest``/``query`` are thin
    HTTP clients (a service query answer is byte-identical to ``store
    query --json`` over the same namespace); ``loadgen`` hammers a live
    server with a deterministic multi-client ingest/query mix and writes
    ``BENCH_service.json`` (req/s, p50/p99 latency, dedup ratio).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.core.casestudy import paper_table2
from repro.core.requirements import Requirements, recommend
from repro.core.summary_table import render_csv, render_markdown, render_summary_table
from repro.errors import ReproError
from repro.trace import binary_format, text_format
from repro.trace.anonymize import (
    ANONYMIZABLE_FIELDS,
    FieldSelectiveAnonymizer,
    RandomizingAnonymizer,
)
from repro.trace.records import TraceFile

__all__ = ["main", "build_parser"]


def _load_trace(path: Path) -> TraceFile:
    data = path.read_bytes()
    if data[:4] == binary_format.MAGIC:
        return binary_format.decode_trace_file(data)
    return text_format.decode_trace_file(data.decode("utf-8"))


def _store_trace(tf: TraceFile, path: Path) -> None:
    if path.suffix in (".bin", ".rtb"):
        path.write_bytes(binary_format.encode_trace_file(tf))
    else:
        path.write_text(text_format.encode_trace_file(tf))


def _cmd_table2(args: argparse.Namespace) -> int:
    classifications = list(paper_table2().values())
    if args.include_extensions:
        from repro.frameworks.netmsg import MsgTrace

        classifications.append(MsgTrace().classification())
    renderer = {
        "text": render_summary_table,
        "markdown": render_markdown,
        "csv": render_csv,
    }[args.format]
    print(renderer(classifications), end="")
    return 0


def _cmd_classify(args: argparse.Namespace) -> int:
    # Importing the framework packages populates the registry.
    import repro.frameworks.lanltrace  # noqa: F401
    import repro.frameworks.netmsg  # noqa: F401
    import repro.frameworks.ptrace  # noqa: F401
    import repro.frameworks.tracefs  # noqa: F401
    from repro.frameworks.base import FRAMEWORK_REGISTRY

    table = paper_table2()
    by_alias = {
        "lanl-trace": table["LANL-Trace"],
        "tracefs": table["Tracefs"],
        "ptrace": table["//TRACE"],
        "//trace": table["//TRACE"],
    }
    name = args.name.lower()
    if name in by_alias:
        print(render_summary_table(by_alias[name]), end="")
        return 0
    cls = FRAMEWORK_REGISTRY.get(name)
    if cls is None:
        print(
            "unknown framework %r (known: %s)"
            % (args.name, ", ".join(sorted(set(by_alias) | set(FRAMEWORK_REGISTRY)))),
            file=sys.stderr,
        )
        return 2
    print(render_summary_table(cls().classification()), end="")
    return 0


def _cmd_recommend(args: argparse.Namespace) -> int:
    reqs = Requirements(
        need_parallel_fs=args.parallel_fs,
        min_anonymization=args.min_anonymization,
        need_replayable=args.replayable,
        need_dependencies=args.dependencies,
        need_analysis_tools=args.analysis_tools,
        need_skew_drift_accounting=args.skew_drift,
        min_granularity_control=args.min_granularity,
        max_install_difficulty=args.max_install,
        max_elapsed_overhead_percent=args.max_overhead,
    )
    for rec in recommend(reqs, paper_table2().values()):
        print(rec.render())
    return 0


def _sweep_shape(quick: bool):
    from repro.units import KiB, MiB

    if quick:
        return [64 * KiB, 1024 * KiB], 8 * MiB, 16
    return None, 32 * MiB, 32


def _make_cache(args: argparse.Namespace):
    if args.no_cache:
        return None
    from repro.harness.runcache import RunCache

    return RunCache(args.cache_dir)


def _make_progress(args: argparse.Namespace):
    """A live ``N/M points, ETA`` stderr reporter, or None when unwanted.

    Enabled by ``--progress`` or automatically when stderr is a tty.  The
    callback runs in the parent process only (workers never print), and
    only observes the sweep — results are byte-identical without it.
    """
    import time as _time

    if not (getattr(args, "progress", False) or sys.stderr.isatty()):
        return None
    t0 = _time.perf_counter()

    def progress(done: int, total: int, _point) -> None:
        elapsed = _time.perf_counter() - t0
        if done < total:
            eta = elapsed / done * (total - done) if done else 0.0
            sys.stderr.write(
                "\rsweep: %d/%d points, ETA %.1fs " % (done, total, eta)
            )
        else:
            sys.stderr.write(
                "\rsweep: %d/%d points, %.1fs      \n" % (done, total, elapsed)
            )
        sys.stderr.flush()

    return progress


def _write_telemetry_artifacts(outdir: str, entries) -> List[Path]:
    """Write per-point telemetry artifacts; returns the file paths.

    ``entries`` yields ``(figure_number, block_size, point)`` where the
    point carries a telemetry payload dict.  Each point produces the full
    combined payload (``*.telemetry.json``) plus one directly
    Perfetto-loadable Chrome trace per run (``*.{untraced,traced}.trace.json``).
    All files are canonical JSON, so same-seed re-runs rewrite identical bytes.
    """
    from repro.obs.metrics import canonical_json

    root = Path(outdir)
    root.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    for figno, block_size, point in entries:
        payloads = getattr(point, "telemetry", None)
        if not payloads:
            continue
        stem = "fig%d_bs%d" % (figno, block_size)
        combined = root / (stem + ".telemetry.json")
        combined.write_text(canonical_json(payloads) + "\n")
        written.append(combined)
        for run_name, payload in sorted(payloads.items()):
            trace_path = root / ("%s.%s.trace.json" % (stem, run_name))
            trace_path.write_text(canonical_json(payload["trace"]) + "\n")
            written.append(trace_path)
    return written


def _report_archived(points) -> None:
    """Print the post-sweep archive line for points that carried run ids."""
    run_ids = sorted(
        {p.store_run_id for p in points if getattr(p, "store_run_id", None)}
    )
    if run_ids:
        print("archived %d run(s) into the trace store" % len(run_ids))


def _cmd_figure(args: argparse.Namespace) -> int:
    from repro.harness.figures import figure_series
    from repro.harness.report import render_figure

    blocks, total, nprocs = _sweep_shape(args.quick)
    series = figure_series(
        args.number,
        block_sizes=blocks,
        total_bytes_per_rank=total,
        nprocs=nprocs,
        jobs=args.jobs,
        cache=_make_cache(args),
        telemetry=args.telemetry,
        progress=_make_progress(args),
        store=args.store,
        store_codec=args.codec,
    )
    print(render_figure(series), end="")
    _report_archived(series.measurements)
    if args.telemetry:
        written = _write_telemetry_artifacts(
            args.telemetry_out,
            (
                (args.number, p.block_size, m)
                for p, m in zip(series.points, series.measurements)
            ),
        )
        print("wrote %d telemetry artifact(s) to %s" % (len(written), args.telemetry_out))
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    import json

    from repro.harness.figures import run_figures
    from repro.harness.report import render_figure, render_overhead_range

    blocks, total, nprocs = _sweep_shape(args.quick)
    cache = _make_cache(args)
    sweep = run_figures(
        figures=(2, 3, 4),
        block_sizes=blocks,
        total_bytes_per_rank=total,
        nprocs=nprocs,
        jobs=args.jobs,
        cache=cache,
        telemetry=args.telemetry,
        progress=_make_progress(args),
        store=args.store,
        store_codec=args.codec,
    )
    _report_archived(
        m for figno in sorted(sweep.series) for m in sweep.series[figno].measurements
    )
    for figno in sorted(sweep.series):
        print(render_figure(sweep.series[figno]), end="")
        print()
    print(render_overhead_range(sweep.overhead_range, 24, 222), end="")
    report = sweep.report
    print(
        "\nsweep: %d points, jobs=%d, %.2fs wall, cache %d hit / %d miss"
        % (
            report.n_points,
            report.jobs,
            report.wall_seconds,
            report.cache_hits,
            report.cache_misses,
        )
    )
    bench = {
        "schema": "repro/bench_sweep/v1",
        "command": "figures",
        "quick": bool(args.quick),
        "jobs": report.jobs,
        "nprocs": nprocs,
        "wall_seconds": report.wall_seconds,
        "cache": {
            "enabled": cache is not None,
            "dir": None if cache is None else str(cache.root),
            "hits": report.cache_hits,
            "misses": report.cache_misses,
            "hit_rate": report.cache_hit_rate,
        },
        "points": sweep.bench_points,
        "elapsed_overhead_range": sweep.overhead_range,
    }
    if args.bench_out:
        Path(args.bench_out).write_text(json.dumps(bench, indent=2) + "\n")
        print("wrote %s" % args.bench_out)
    if args.telemetry:
        written = _write_telemetry_artifacts(
            args.telemetry_out,
            (
                (figno, p.block_size, m)
                for figno in sorted(sweep.series)
                for p, m in zip(
                    sweep.series[figno].points, sweep.series[figno].measurements
                )
            ),
        )
        print("wrote %d telemetry artifact(s) to %s" % (len(written), args.telemetry_out))
    if args.baseline:
        from repro.obs.baseline import append_history, make_record

        record = make_record(
            sweep.bench_points,
            quick=bool(args.quick),
            nprocs=nprocs,
            jobs=report.jobs,
            label=args.baseline_label,
        )
        idx = append_history(args.baseline, record)
        print(
            "appended baseline record #%d (%d point(s)) to %s"
            % (idx, len(sweep.bench_points), args.baseline)
        )
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json

    from repro.faults.chaos import (
        CHAOS_FRAMEWORKS,
        render_chaos_report,
        run_chaos_matrix,
    )

    frameworks = tuple(args.frameworks) if args.frameworks else CHAOS_FRAMEWORKS
    report = run_chaos_matrix(
        matrix=args.matrix,
        frameworks=frameworks,
        jobs=args.jobs,
        cache=_make_cache(args),
        progress=_make_progress(args),
        store=args.store,
        store_codec=args.codec,
    )
    print(render_chaos_report(report), end="")
    archived = sorted(
        {r["store_run_id"] for r in report["rows"] if r.get("store_run_id")}
    )
    if archived:
        print("archived %d run(s) into the trace store" % len(archived))
    if args.report_out:
        from repro.obs.metrics import canonical_json

        Path(args.report_out).write_text(canonical_json(report) + "\n")
        print("wrote %s" % args.report_out)
    return 0


def _is_store_dir(path: Path) -> bool:
    """True when ``path`` is a TraceBank archive root (has STORE.json)."""
    return path.is_dir() and (path / "STORE.json").is_file()


def _cmd_zoo_ls(args: argparse.Namespace) -> int:
    from repro.zoo import SCENARIOS

    print("%-14s %-7s %-22s %-9s %s"
          % ("name", "nprocs", "workload", "dominant", "title"))
    print("-" * 96)
    for sc in SCENARIOS.values():
        print(
            "%-14s %-7d %-22s %-9s %s"
            % (sc.name, sc.nprocs, sc.workload,
               sc.signature_dict().get("dominant", "?"), sc.title)
        )
    return 0


def _cmd_zoo_describe(args: argparse.Namespace) -> int:
    from repro.obs.metrics import canonical_json
    from repro.zoo import get

    sc = get(args.scenario)
    if args.json:
        print(canonical_json(sc.describe()))
        return 0
    d = sc.describe()
    print("%s — %s" % (sc.name, sc.title))
    print("  %s" % sc.description)
    print("  workload:  %s  (framework %s, %d ranks)"
          % (d["workload"], d["framework"], d["nprocs"]))
    print("  signature: %s" % ", ".join(
        "%s=%s" % kv for kv in sorted(d["signature"].items())))
    print("  parameters (full scale -> smoke overrides):")
    for k, desc in d["param_space"].items():
        smoke = d["smoke_args"].get(k)
        print("    %-20s %-12s %s"
              % (k,
                 "%s%s" % (d["base_args"].get(k),
                           "" if smoke is None else " -> %s" % smoke),
                 desc))
    return 0


def _run_zoo(args: argparse.Namespace, scenarios) -> int:
    """Shared body of ``zoo run`` and ``zoo matrix``."""
    from repro.obs.metrics import canonical_json
    from repro.zoo import ZOO_NPROCS, bench_points, render_zoo_report, run_zoo_matrix

    report = run_zoo_matrix(
        scenarios=scenarios,
        smoke=args.smoke,
        seed=args.seed,
        jobs=args.jobs,
        cache=_make_cache(args),
        progress=_make_progress(args),
        framework=args.framework,
        store=args.store,
        store_codec=args.codec,
        replay_check=args.replay_check,
    )
    print(render_zoo_report(report), end="")
    ex = report["execution"]
    print(
        "\nzoo: %d point(s), jobs=%d, %.2fs wall, cache %d hit / %d miss"
        % (report["summary"]["points"], ex["jobs"], ex["wall_seconds"],
           ex["cache_hits"], ex["cache_misses"])
    )
    if args.replay_check:
        exact = report["summary"]["replay_exact"]
        print("replay check: %d/%d exact" % (exact, report["summary"]["archived"]))
    if getattr(args, "bench_out", None):
        bench = {
            "schema": "repro/bench_sweep/v1",
            "command": "zoo",
            "quick": bool(args.smoke),
            "jobs": ex["jobs"],
            "nprocs": ZOO_NPROCS,
            "wall_seconds": ex["wall_seconds"],
            "points": bench_points(report),
        }
        import json

        Path(args.bench_out).write_text(json.dumps(bench, indent=2) + "\n")
        print("wrote %s" % args.bench_out)
    if getattr(args, "baseline", None):
        from repro.obs.baseline import append_history, make_record

        record = make_record(
            bench_points(report),
            quick=bool(args.smoke),
            nprocs=ZOO_NPROCS,
            jobs=ex["jobs"],
            label=args.baseline_label,
        )
        idx = append_history(args.baseline, record)
        print("appended baseline record #%d to %s" % (idx, args.baseline))
    if args.report_out:
        Path(args.report_out).write_text(canonical_json(report) + "\n")
        print("wrote %s" % args.report_out)
    if args.replay_check and report["summary"]["replay_exact"] < report["summary"]["archived"]:
        return 1
    return 0


def _cmd_zoo_run(args: argparse.Namespace) -> int:
    return _run_zoo(args, [args.scenario])


def _cmd_zoo_matrix(args: argparse.Namespace) -> int:
    return _run_zoo(args, args.scenarios or None)


def _cmd_zoo_replay(args: argparse.Namespace) -> int:
    from repro.obs.metrics import canonical_json
    from repro.zoo import render_fidelity_report, replay_pipeline

    report = replay_pipeline(
        args.sources,
        store=args.store,
        layer=args.layer,
        timing=args.timing,
        seed=args.seed,
        honor_sync=not args.no_sync,
        per_event_overhead=args.per_event_overhead,
        remap_root=args.remap_root,
    )
    print(render_fidelity_report(report), end="")
    if args.report_out:
        Path(args.report_out).write_text(canonical_json(report) + "\n")
        print("wrote %s" % args.report_out)
    return 0 if report["exact"] or not args.require_exact else 1


def _cmd_observe(args: argparse.Namespace) -> int:
    import json

    from repro.errors import TelemetryError
    from repro.obs.perfetto import validate_chrome_trace
    from repro.obs.report import render_payload_summary

    path = Path(args.path)
    if _is_store_dir(path):
        from repro.store import TraceBank, render_store_summary

        bank = TraceBank(path, create=False)
        print(render_store_summary(bank.stats()), end="")
        for m in bank.manifests():
            print(
                "  %s  %-6s %-12s %4d seg  %6d events"
                % (
                    m.run_id[:12],
                    str(m.meta.get("kind", "?")),
                    str(m.meta.get("framework", "?")),
                    len(m.segments),
                    m.n_events,
                )
            )
        return 0
    obj = json.loads(path.read_text("utf-8"))
    # Accept all three artifact shapes: a combined {untraced, traced} file,
    # a single payload, or a bare Chrome trace (validate-only).
    if isinstance(obj, dict) and obj.get("schema") == "repro/telemetry/v1":
        payloads = {"": obj}
    elif isinstance(obj, dict) and {"untraced", "traced"} <= set(obj):
        payloads = {name: obj[name] for name in ("untraced", "traced")}
    elif isinstance(obj, (list, dict)) and (
        isinstance(obj, list) or "traceEvents" in obj
    ):
        validate_chrome_trace(obj)
        events = obj if isinstance(obj, list) else obj["traceEvents"]
        print("valid Chrome trace: %d events" % len(events))
        return 0
    else:
        raise TelemetryError(
            "%s is not a telemetry artifact (expected a repro/telemetry/v1 "
            "payload, an {untraced, traced} pair, or a Chrome trace)" % args.path
        )
    for i, (label, payload) in enumerate(payloads.items()):
        if i:
            print()
        print(render_payload_summary(payload, label=label), end="")
        if args.validate:
            validate_chrome_trace(payload["trace"])
            print("trace: valid (%d events)" % len(payload["trace"]["traceEvents"]))
    return 0


def _cmd_summarize(args: argparse.Namespace) -> int:
    from repro.analysis.summary import summarize_calls, summarize_store

    path = Path(args.trace)
    if _is_store_dir(path):
        summary = summarize_store(str(path), jobs=args.jobs)
        print("# store-backed summary of %s (%d functions)" % (path, len(summary)))
    else:
        tf = _load_trace(path)
        summary = summarize_calls(tf.events)
        print("# %d events from %s (pid %d, rank %s)"
              % (len(tf), tf.hostname or "?", tf.pid, tf.rank))
    print("%-28s %15s %25s" % ("Function Name", "Number of Calls", "Total time (s)"))
    for row in summary.rows():
        print("%-28s %15d %25.6f" % (row.name, row.n_calls, row.total_time))
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    tf = _load_trace(Path(args.input))
    _store_trace(tf, Path(args.output))
    print("converted %d events: %s -> %s" % (len(tf), args.input, args.output))
    return 0


def _cmd_anonymize(args: argparse.Namespace) -> int:
    tf = _load_trace(Path(args.input))
    fields = frozenset(args.fields) if args.fields else ANONYMIZABLE_FIELDS
    if args.mode == "randomize":
        anonymizer = RandomizingAnonymizer(fields)
    else:
        if not args.key:
            print("encrypt mode requires --key (32 hex chars)", file=sys.stderr)
            return 2
        anonymizer = FieldSelectiveAnonymizer(
            fields, mode="encrypt", key=bytes.fromhex(args.key)
        )
    _store_trace(tf.map(anonymizer), Path(args.output))
    print("anonymized %d events (%s: %s) -> %s"
          % (len(tf), args.mode, ", ".join(sorted(fields)), args.output))
    return 0


# -- obs commands ------------------------------------------------------------


def _load_telemetry_payload(source: str, store: str, run: str):
    """Resolve one diff/critpath source to a telemetry payload + label.

    ``source`` is a telemetry artifact on disk (a bare payload or the
    combined ``{untraced, traced}`` file, where ``run`` picks the side)
    or a TraceBank run-id prefix resolved against ``store`` (the payload
    is then synthesized from the archived events).
    """
    import json

    from repro.errors import TelemetryError

    path = Path(source)
    if path.is_file():
        obj = json.loads(path.read_text("utf-8"))
        if isinstance(obj, dict) and obj.get("schema") == "repro/telemetry/v1":
            return obj, path.name
        if isinstance(obj, dict) and {"untraced", "traced"} <= set(obj):
            return obj[run], "%s:%s" % (path.name, run)
        raise TelemetryError(
            "%s is not a telemetry payload or an {untraced, traced} pair"
            % source
        )
    from repro.store import TraceBank, telemetry_view

    bank = TraceBank(store, create=False)
    payload = telemetry_view(bank, source)
    return payload, "store:%s" % payload["source"]["run_id"][:12]


def _cmd_obs_diff(args: argparse.Namespace) -> int:
    from repro.obs.compare import compare_payloads, render_diff
    from repro.obs.metrics import canonical_json

    run_a = args.run_a or args.run
    run_b = args.run_b or args.run
    payload_a, label_a = _load_telemetry_payload(args.run_a_source, args.store, run_a)
    payload_b, label_b = _load_telemetry_payload(args.run_b_source, args.store, run_b)
    report = compare_payloads(payload_a, payload_b, label_a=label_a, label_b=label_b)
    if args.format == "json":
        print(canonical_json(report))
    else:
        print(render_diff(report, markdown=(args.format == "markdown")), end="")
    if args.report_out:
        Path(args.report_out).write_text(canonical_json(report) + "\n")
        print("wrote %s" % args.report_out)
    return 0


def _cmd_obs_critpath(args: argparse.Namespace) -> int:
    from repro.obs.critpath import (
        critical_path,
        flamegraph_lines,
        render_critical_path,
    )
    from repro.obs.metrics import canonical_json

    payload, _label = _load_telemetry_payload(args.source, args.store, args.run)
    report = critical_path(payload)
    if args.json:
        print(canonical_json(report))
    else:
        print(render_critical_path(report), end="")
    if args.flame:
        lines = flamegraph_lines(payload)
        Path(args.flame).write_text("".join(line + "\n" for line in lines))
        print("wrote %d flamegraph stack(s) to %s" % (len(lines), args.flame))
    return 0


def _cmd_obs_slice(args: argparse.Namespace) -> int:
    from repro.obs.metrics import canonical_json
    from repro.obs.slice import (
        causal_slice,
        render_slice,
        slice_flamegraph_lines,
        slice_from_store,
        slice_trace,
    )

    anchor, value = "straggler", None
    if args.rank is not None:
        anchor, value = "rank", args.rank
    elif args.op is not None:
        anchor, value = "op", args.op
    elif args.path_anchor is not None:
        anchor, value = "path", args.path_anchor

    payload = None
    if Path(args.source).is_file():
        payload, _label = _load_telemetry_payload(args.source, args.store, args.run)
        report = causal_slice(
            payload, anchor=anchor, value=value, max_roots=args.max_roots
        )
    else:
        from repro.store import TraceBank, telemetry_view

        bank = TraceBank(args.store, create=False)
        report = slice_from_store(
            bank, args.source, anchor=anchor, value=value,
            max_roots=args.max_roots,
        )
        if args.flame or args.perfetto:
            payload = telemetry_view(bank, report["source"]["run_id"])
    if args.json:
        print(canonical_json(report))
    else:
        print(render_slice(report), end="")
    if args.report_out:
        Path(args.report_out).write_text(canonical_json(report) + "\n")
        print("wrote %s" % args.report_out)
    if args.perfetto:
        trace = slice_trace(payload, report)
        Path(args.perfetto).write_text(canonical_json(trace) + "\n")
        print("wrote %d trace event(s) to %s"
              % (len(trace["traceEvents"]), args.perfetto))
    if args.flame:
        lines = slice_flamegraph_lines(payload, report)
        Path(args.flame).write_text("".join(line + "\n" for line in lines))
        print("wrote %d flamegraph stack(s) to %s" % (len(lines), args.flame))
    return 0


def _cmd_obs_diagnose(args: argparse.Namespace) -> int:
    from repro.obs.diagnose import diagnose_archive, render_diagnose
    from repro.obs.metrics import canonical_json

    report = diagnose_archive(
        args.store,
        run_prefixes=args.run_prefix or None,
        against=args.against,
        jobs=args.jobs,
        k=args.k,
        eps=args.eps,
        slice_outliers=not args.no_slice,
    )
    if args.json:
        print(canonical_json(report))
    else:
        print(render_diagnose(report), end="")
    if args.report_out:
        Path(args.report_out).write_text(canonical_json(report) + "\n")
        print("wrote %s" % args.report_out)
    if args.fail_on_outlier and report["summary"]["outliers"] > 0:
        return 1
    return 0


def _cmd_obs_check(args: argparse.Namespace) -> int:
    from repro.obs.baseline import check_history, load_history, render_check
    from repro.obs.metrics import canonical_json

    records = load_history(args.history)
    report = check_history(records, k=args.k, min_history=args.min_history)
    if args.json:
        print(canonical_json(report))
    else:
        print(render_check(report), end="")
    if args.report_out:
        Path(args.report_out).write_text(canonical_json(report) + "\n")
        print("wrote %s" % args.report_out)
    if args.fail_on_regression and report["summary"]["regressions"] > 0:
        return 1
    return 0


def _obs_get_json(base_url: str, path: str):
    import json as _json

    from repro.errors import ServiceError

    status, _headers, payload = _http_request(base_url.rstrip("/") + path)
    if status != 200:
        raise ServiceError(
            "GET %s returned %d: %s"
            % (path, status, payload.decode("utf-8", "replace").strip())
        )
    return _json.loads(payload.decode("utf-8"))


def _cmd_obs_top(args: argparse.Namespace) -> int:
    import time as _time

    from repro.obs.reqtrace import render_top

    iterations = 1 if args.once else args.iterations
    prev_counters = None
    i = 0
    while iterations <= 0 or i < iterations:
        if i:
            _time.sleep(args.interval)
        stats = _obs_get_json(args.url, "/v1/stats")
        metrics = _obs_get_json(args.url, "/v1/metrics")
        slowest = _obs_get_json(args.url, "/v1/traces/slowest").get("slowest", [])
        frame = render_top(
            stats, metrics, slowest,
            prev_counters=prev_counters,
            interval=args.interval if prev_counters is not None else None,
        )
        if i:
            print()
        print(frame, end="")
        prev_counters = metrics.get("counters") or {}
        i += 1
    return 0


def _cmd_obs_reqtrace(args: argparse.Namespace) -> int:
    from repro.obs.metrics import canonical_json
    from repro.obs.perfetto import validate_chrome_trace
    from repro.obs.reqtrace import (
        render_trace,
        trace_flamegraph_lines,
        trace_to_chrome,
    )

    trace_id = args.trace_id
    if trace_id == "slowest":
        target = "/v1/traces/slowest"
        if args.route:
            target += "?route=%s" % args.route
        listing = _obs_get_json(args.url, target).get("slowest", [])
        if not listing:
            print("error: the server has no retained traces yet",
                  file=sys.stderr)
            return 1
        trace_id = listing[0]["trace_id"]
    report = _obs_get_json(args.url, "/v1/traces/%s" % trace_id)
    if args.json:
        print(canonical_json(report))
    else:
        print(render_trace(report), end="")
    if args.flame:
        lines = trace_flamegraph_lines(report)
        Path(args.flame).write_text(
            "\n".join(lines) + ("\n" if lines else ""), encoding="utf-8"
        )
        print("wrote %s (%d stack(s))" % (args.flame, len(lines)))
    if args.perfetto:
        chrome = trace_to_chrome(report)
        validate_chrome_trace(chrome)
        Path(args.perfetto).write_text(
            canonical_json(chrome) + "\n", encoding="utf-8"
        )
        print("wrote %s (validated, %d event(s))"
              % (args.perfetto, len(chrome["traceEvents"])))
    return 0


# -- store commands ----------------------------------------------------------


def _store_query_from_args(args: argparse.Namespace):
    from repro.errors import StoreQueryError
    from repro.store import Query

    where = {}
    for item in args.where or []:
        key, sep, value = item.partition("=")
        if not sep or not key:
            raise StoreQueryError("--where expects key=value, got %r" % item)
        where[key] = value
    return Query.create(
        agg=getattr(args, "agg", "ops"),
        ranks=args.ranks,
        names=args.ops,
        layers=args.layers,
        path_glob=args.path_glob,
        since=args.since,
        until=args.until,
        where=where,
        runs=args.runs,
        window=getattr(args, "window", 0.05),
        limit=getattr(args, "limit", None),
    )


def _cmd_store_ingest(args: argparse.Namespace) -> int:
    from repro.store import TraceBank
    from repro.trace.records import TraceBundle

    bank = TraceBank(args.store)
    bundle = TraceBundle()
    for i, name in enumerate(args.traces):
        tf = _load_trace(Path(name))
        rank = tf.rank if tf.rank is not None else i
        bundle.add_file(int(rank), tf)
        if tf.framework:
            bundle.metadata.setdefault("framework", tf.framework)
    meta = {"kind": "manual"}
    for item in args.meta or []:
        key, sep, value = item.partition("=")
        if sep and key:
            meta[key] = value
    result = bank.ingest_bundle(bundle, meta=meta, codec=args.codec)
    print(
        "ingested run %s: %d segment(s) (%d new, %d deduped), %d event(s)"
        % (
            result.run_id[:12],
            result.segments,
            result.new_segments,
            result.deduped_segments,
            result.events,
        )
    )
    return 0


def _cmd_store_ls(args: argparse.Namespace) -> int:
    from repro.store import TraceBank, render_store_summary

    bank = TraceBank(args.store, create=False)
    print(render_store_summary(bank.stats()), end="")
    for m in bank.manifests():
        print(
            "  %s  %-6s %-12s %4d seg  %6d events"
            % (
                m.run_id[:12],
                str(m.meta.get("kind", "?")),
                str(m.meta.get("framework", "?")),
                len(m.segments),
                m.n_events,
            )
        )
    return 0


def _cmd_store_query(args: argparse.Namespace) -> int:
    from repro.obs.metrics import canonical_json
    from repro.store import TraceBank, run_query

    bank = TraceBank(args.store, create=False)
    report = run_query(bank, _store_query_from_args(args), jobs=args.jobs)
    if args.json or args.agg != "ops":
        print(canonical_json(report))
        return 0
    scan = report["scan"]
    print(
        "# %d run(s), %d/%d segment(s) scanned (%d pruned), %d event(s)"
        % (
            scan["runs_selected"],
            scan["segments_scanned"],
            scan["segments_total"],
            scan["segments_pruned"],
            scan["events_matched"],
        )
    )
    print("%-28s %15s %25s" % ("Function Name", "Number of Calls", "Total time (s)"))
    for name, cell in report["result"]["ops"].items():
        print("%-28s %15d %25.6f" % (name, cell["calls"], cell["total_time"]))
    return 0


def _cmd_store_dfg(args: argparse.Namespace) -> int:
    from repro.obs.metrics import canonical_json
    from repro.store import TraceBank, build_dfg, render_dfg_dot, render_dfg_text

    bank = TraceBank(args.store, create=False)
    args.agg = "ops"  # DFG ignores the aggregate; reuse the shared filters
    report = build_dfg(bank, _store_query_from_args(args), jobs=args.jobs)
    if args.json:
        print(canonical_json(report))
    elif args.dot:
        print(render_dfg_dot(report), end="")
    else:
        print(render_dfg_text(report), end="")
    return 0


def _cmd_store_verify(args: argparse.Namespace) -> int:
    from repro.store import TraceBank

    bank = TraceBank(args.store, create=False)
    report = bank.verify(jobs=args.jobs)
    print(
        "verified %d run(s), %d segment(s): %s"
        % (report["runs"], report["segments_checked"],
           "OK" if report["ok"] else "CORRUPT")
    )
    for err in report["errors"]:
        sha = err["sha256"][:12] if err["sha256"] else "-"
        print("  %s %s: %s" % (str(err["run_id"])[:12], sha, err["error"]))
    if report["orphan_segments"]:
        print("  %d orphan segment(s) (not an error; 'store gc' reclaims them)"
              % len(report["orphan_segments"]))
    return 0 if report["ok"] else 1


def _cmd_store_gc(args: argparse.Namespace) -> int:
    from repro.store import TraceBank

    bank = TraceBank(args.store, create=False)
    report = bank.gc(dry_run=args.dry_run, tmp_ttl_seconds=args.ttl_seconds)
    verb = "would remove" if report["dry_run"] else "removed"
    print(
        "%s %d unreferenced segment(s), %d byte(s); %d referenced segment(s) kept"
        % (verb, len(report["removed_segments"]), report["bytes_freed"],
           report["kept_segments"])
    )
    if report["kept_fresh_segments"]:
        print(
            "  %d fresh unreferenced segment(s) kept (younger than the "
            "--ttl-seconds grace; may be a live ingest)"
            % report["kept_fresh_segments"]
        )
    return 0


# -- service commands --------------------------------------------------------


def _split_url(url: str) -> "tuple[str, int]":
    from urllib.parse import urlsplit

    from repro.errors import ServiceError

    parts = urlsplit(url if "//" in url else "http://" + url)
    if not parts.hostname:
        raise ServiceError("bad service URL %r" % url)
    return parts.hostname, parts.port or 80


def _http_request(url: str, method: str = "GET", body: bytes = b""):
    """One stdlib HTTP round trip -> (status, headers, body bytes)."""
    import http.client
    from urllib.parse import urlsplit

    from repro.errors import ServiceError

    parts = urlsplit(url)
    if parts.scheme not in ("http", ""):
        raise ServiceError("only http:// service URLs are supported")
    conn = http.client.HTTPConnection(
        parts.hostname or "127.0.0.1", parts.port or 80, timeout=60
    )
    target = parts.path + ("?" + parts.query if parts.query else "")
    try:
        conn.request(method, target or "/", body=body or None,
                     headers={"Content-Length": str(len(body))})
        resp = conn.getresponse()
        payload = resp.read()
        return resp.status, dict(resp.getheaders()), payload
    except (ConnectionError, OSError) as exc:
        raise ServiceError("cannot reach %s: %s" % (url, exc)) from None
    finally:
        conn.close()


def _cmd_service_serve(args: argparse.Namespace) -> int:
    from repro.service import serve

    serve(
        args.store,
        host=args.host,
        port=args.port,
        queue_capacity=args.queue_capacity,
        max_body_bytes=args.max_body_bytes,
        query_jobs=args.jobs,
        commit_workers=args.workers,
        access_log=args.access_log,
        trace_ring=args.trace_ring,
        slowest_per_route=args.slowest_per_route,
    )
    return 0


def _cmd_service_ingest(args: argparse.Namespace) -> int:
    import json as _json

    for i, name in enumerate(args.traces):
        body = Path(name).read_bytes()
        tf = _load_trace(Path(name))
        rank = tf.rank if tf.rank is not None else i
        target = "%s/v1/t/%s/ingest?sync=1&rank=%d" % (
            args.url.rstrip("/"), args.tenant, int(rank),
        )
        for item in args.meta or []:
            key, sep, value = item.partition("=")
            if sep and key:
                from urllib.parse import quote_plus

                target += "&meta.%s=%s" % (quote_plus(key), quote_plus(value))
        status, _headers, payload = _http_request(target, "POST", body)
        if status != 200:
            print("error: ingest of %s failed (%d): %s"
                  % (name, status, payload.decode("utf-8", "replace").strip()),
                  file=sys.stderr)
            return 1
        result = _json.loads(payload)
        print(
            "ingested run %s into tenant %s: %d segment(s) (%d new, %d deduped)"
            % (
                result["run_id"][:12],
                args.tenant,
                result["segments"],
                result["new_segments"],
                result["deduped_segments"],
            )
        )
    return 0


def _cmd_service_query(args: argparse.Namespace) -> int:
    from urllib.parse import quote_plus

    pairs = [("agg", args.agg)]
    for rank in args.ranks or []:
        pairs.append(("ranks", str(rank)))
    for op in args.ops or []:
        pairs.append(("ops", op))
    for layer in args.layers or []:
        pairs.append(("layers", layer))
    if args.path_glob is not None:
        pairs.append(("path_glob", args.path_glob))
    if args.since is not None:
        pairs.append(("since", repr(args.since)))
    if args.until is not None:
        pairs.append(("until", repr(args.until)))
    for item in args.where or []:
        key, sep, value = item.partition("=")
        if not sep or not key:
            from repro.errors import StoreQueryError

            raise StoreQueryError("--where expects key=value, got %r" % item)
        pairs.append(("where." + key, value))
    for run in args.runs or []:
        pairs.append(("runs", run))
    pairs.append(("window", repr(args.window)))
    if args.limit is not None:
        pairs.append(("limit", str(args.limit)))
    target = "%s/v1/t/%s/query?%s" % (
        args.url.rstrip("/"),
        args.tenant,
        "&".join("%s=%s" % (quote_plus(k), quote_plus(v)) for k, v in pairs),
    )
    status, _headers, payload = _http_request(target)
    if status != 200:
        print("error: query failed (%d): %s"
              % (status, payload.decode("utf-8", "replace").strip()),
              file=sys.stderr)
        return 1
    sys.stdout.write(payload.decode("utf-8"))
    return 0


def _cmd_service_loadgen(args: argparse.Namespace) -> int:
    from repro.obs.metrics import canonical_json
    from repro.service import build_plan, run_loadgen, write_bench

    host, port = _split_url(args.url)
    plan = build_plan(
        clients=args.clients,
        requests_per_client=args.requests,
        tenants=args.tenants,
        payload_pool=args.payloads,
        ingest_fraction=args.ingest_fraction,
        seed=args.seed,
        payload_events=args.payload_events,
    )
    print(
        "loadgen: %d client(s) x %d request(s) against http://%s:%d (seed %d)"
        % (args.clients, args.requests, host, port, args.seed)
    )
    result = run_loadgen(host, port, plan)
    report = write_bench(result, args.out) if args.out else result.report()
    print(canonical_json(report))
    if args.out:
        print("wrote %s" % args.out)
    if args.baseline:
        from repro.obs.baseline import append_history, make_record

        record = make_record(
            [
                {
                    "figure": "service",
                    "block_size": None,
                    "service_req_per_sec": report["req_per_sec"],
                    "service_p99_ms": report["latency_p99_ms"],
                }
            ],
            label=args.baseline_label,
        )
        idx = append_history(args.baseline, record)
        print("appended baseline record #%d to %s" % (idx, args.baseline))
    return 1 if result.errors else 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command tree (see module docstring)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="I/O Tracing Framework Taxonomy (SC'07) — reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("table2", help="render the classification summary table")
    p.add_argument("--format", choices=("text", "markdown", "csv"), default="text")
    p.add_argument(
        "--include-extensions",
        action="store_true",
        help="also classify this library's extension frameworks (MsgTrace)",
    )
    p.set_defaults(fn=_cmd_table2)

    p = sub.add_parser("classify", help="one framework's reference card")
    p.add_argument("name", help="lanl-trace | tracefs | ptrace | msgtrace | ...")
    p.set_defaults(fn=_cmd_classify)

    p = sub.add_parser("recommend", help="rank frameworks against requirements")
    p.add_argument("--parallel-fs", action="store_true")
    p.add_argument("--replayable", action="store_true")
    p.add_argument("--dependencies", action="store_true")
    p.add_argument("--analysis-tools", action="store_true")
    p.add_argument("--skew-drift", action="store_true")
    p.add_argument("--min-anonymization", type=int, default=0, metavar="0..5")
    p.add_argument("--min-granularity", type=int, default=0, metavar="0..5")
    p.add_argument("--max-install", type=int, default=None, metavar="1..5")
    p.add_argument("--max-overhead", type=float, default=None, metavar="PERCENT")
    p.set_defaults(fn=_cmd_recommend)

    def add_sweep_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--quick", action="store_true", help="small fast sweep")
        p.add_argument(
            "--jobs",
            type=int,
            default=1,
            metavar="N",
            help="worker processes for sweep points (default 1)",
        )
        p.add_argument(
            "--no-cache",
            action="store_true",
            help="bypass the deterministic run cache",
        )
        p.add_argument(
            "--cache-dir",
            default=".repro-cache",
            metavar="DIR",
            help="run cache directory (default .repro-cache)",
        )
        p.add_argument(
            "--telemetry",
            action="store_true",
            help="record metrics + Perfetto traces for every sweep point",
        )
        p.add_argument(
            "--telemetry-out",
            default="telemetry",
            metavar="DIR",
            help="directory for --telemetry artifacts (default telemetry/)",
        )
        p.add_argument(
            "--progress",
            action="store_true",
            help="force live 'N/M points, ETA' progress on stderr "
            "(automatic when stderr is a tty)",
        )
        p.add_argument(
            "--store",
            nargs="?",
            const=".repro-store",
            default=None,
            metavar="DIR",
            help="archive every traced bundle into a TraceBank at DIR "
            "(default .repro-store when the flag is given bare)",
        )
        p.add_argument(
            "--codec",
            choices=("v1", "v2"),
            default="v1",
            help="segment codec for --store ingests: v1 row-major, "
            "v2 columnar (fast projected scans); default v1",
        )

    p = sub.add_parser("figure", help="regenerate Figure 2, 3 or 4")
    p.add_argument("number", type=int, choices=(2, 3, 4))
    add_sweep_flags(p)
    p.set_defaults(fn=_cmd_figure)

    p = sub.add_parser(
        "figures", help="regenerate Figures 2-4 + overhead range as one sweep"
    )
    add_sweep_flags(p)
    p.add_argument(
        "--bench-out",
        default="BENCH_sweep.json",
        metavar="PATH",
        help="write the sweep benchmark artifact here ('' to skip)",
    )
    p.add_argument(
        "--baseline",
        nargs="?",
        const="BENCH_history.jsonl",
        default=None,
        metavar="PATH",
        help="append this sweep's headline metrics to the baseline history "
        "(default BENCH_history.jsonl when the flag is given bare); "
        "'repro obs check' gates against it",
    )
    p.add_argument(
        "--baseline-label",
        default=None,
        metavar="TEXT",
        help="free-form label stored on the --baseline record "
        "(a commit id, a date, ...)",
    )
    p.set_defaults(fn=_cmd_figures)

    from repro.faults.chaos import CHAOS_MATRICES

    p = sub.add_parser(
        "chaos", help="run a fault matrix against the frameworks (no hangs)"
    )
    p.add_argument(
        "--matrix",
        # "zoo" materializes lazily from the scenario registry, so it is
        # offered even before the chaos module has built it.
        choices=sorted(set(CHAOS_MATRICES) | {"zoo"}),
        default="smoke",
        help="named fault matrix to run (default smoke; 'zoo' crosses "
        "every workload-zoo scenario with baseline + disk-storm)",
    )
    p.add_argument(
        "--frameworks",
        nargs="*",
        default=None,
        metavar="NAME",
        help="framework subset (default: lanl-trace tracefs ptrace)",
    )
    p.add_argument(
        "--report-out",
        default="CHAOS_report.json",
        metavar="PATH",
        help="write the canonical-JSON chaos report here ('' to skip)",
    )
    add_sweep_flags(p)
    p.set_defaults(fn=_cmd_chaos)

    p = sub.add_parser("observe", help="summarize a --telemetry artifact")
    p.add_argument("path", help="*.telemetry.json or *.trace.json file")
    p.add_argument(
        "--validate",
        action="store_true",
        help="also validate the Chrome trace against the trace-event schema",
    )
    p.set_defaults(fn=_cmd_observe)

    p = sub.add_parser(
        "obs",
        help="the regression observatory (diff/critpath/slice/diagnose/check)",
    )
    obs_sub = p.add_subparsers(dest="obs_command", required=True)

    def add_obs_source_flags(sp: argparse.ArgumentParser) -> None:
        sp.add_argument(
            "--store",
            default=".repro-store",
            metavar="DIR",
            help="TraceBank to resolve run-id-prefix sources against "
            "(default .repro-store)",
        )
        sp.add_argument(
            "--run",
            choices=("untraced", "traced"),
            default="traced",
            help="which side of a combined {untraced, traced} artifact to "
            "load (default traced)",
        )

    sp = obs_sub.add_parser(
        "diff", help="structured telemetry diff between two runs"
    )
    sp.add_argument("run_a_source", metavar="RUN_A",
                    help="telemetry file or store run-id prefix (the base)")
    sp.add_argument("run_b_source", metavar="RUN_B",
                    help="telemetry file or store run-id prefix (the candidate)")
    add_obs_source_flags(sp)
    sp.add_argument("--run-a", choices=("untraced", "traced"), default=None,
                    help="override --run for RUN_A only")
    sp.add_argument("--run-b", choices=("untraced", "traced"), default=None,
                    help="override --run for RUN_B only")
    sp.add_argument("--format", choices=("text", "markdown", "json"),
                    default="text", help="rendering (default text)")
    sp.add_argument("--report-out", default=None, metavar="PATH",
                    help="also write the canonical-JSON diff report here")
    sp.set_defaults(fn=_cmd_obs_diff)

    sp = obs_sub.add_parser(
        "critpath", help="critical-path attribution + flamegraph export"
    )
    sp.add_argument("source", metavar="RUN",
                    help="telemetry file or store run-id prefix")
    add_obs_source_flags(sp)
    sp.add_argument("--flame", default=None, metavar="PATH",
                    help="write collapsed-stack flamegraph lines here")
    sp.add_argument("--json", action="store_true",
                    help="print the canonical-JSON report")
    sp.set_defaults(fn=_cmd_obs_critpath)

    sp = obs_sub.add_parser(
        "slice", help="causal slice explaining one run's latency"
    )
    sp.add_argument("source", metavar="RUN",
                    help="telemetry file or store run-id prefix")
    add_obs_source_flags(sp)
    anchor = sp.add_mutually_exclusive_group()
    anchor.add_argument("--rank", type=int, default=None, metavar="N",
                        help="anchor on rank N's track instead of the "
                        "straggler")
    anchor.add_argument("--op", default=None, metavar="NAME",
                        help="anchor on the slowest instance of op NAME")
    anchor.add_argument("--path", dest="path_anchor", default=None,
                        metavar="GLOB",
                        help="anchor on the events touching paths matching "
                        "GLOB (store sources only)")
    sp.add_argument("--max-roots", type=int, default=32, metavar="N",
                    help="keep at most N bounding-chain roots (default 32)")
    sp.add_argument("--json", action="store_true",
                    help="print the canonical-JSON slice report")
    sp.add_argument("--flame", default=None, metavar="PATH",
                    help="write the slice's collapsed-stack flamegraph here")
    sp.add_argument("--perfetto", default=None, metavar="PATH",
                    help="write the slice's Chrome/Perfetto trace here")
    sp.add_argument("--report-out", default=None, metavar="PATH",
                    help="also write the canonical-JSON slice report here")
    sp.set_defaults(fn=_cmd_obs_slice)

    sp = obs_sub.add_parser(
        "diagnose", help="archive-scale anomaly diagnosis over a TraceBank"
    )
    sp.add_argument("--store", default=".repro-store", metavar="DIR",
                    help="TraceBank archive to diagnose (default .repro-store)")
    sp.add_argument("--run-prefix", action="append", default=None,
                    metavar="PREFIX",
                    help="restrict to runs matching this run-id prefix "
                    "(repeatable)")
    sp.add_argument("--against", default=None, metavar="RUN",
                    help="score every run against this baseline run (run-id "
                    "prefix) instead of its group median")
    sp.add_argument("--jobs", type=int, default=1, metavar="N",
                    help="fingerprint/slice worker processes (default 1; "
                    "the report is byte-identical for any N)")
    sp.add_argument("--k", type=float, default=4.0, metavar="F",
                    help="MAD multiplier in the outlier threshold (default 4)")
    sp.add_argument("--eps", type=float, default=0.25, metavar="F",
                    help="fingerprint-distance clustering radius (default "
                    "0.25)")
    sp.add_argument("--no-slice", action="store_true",
                    help="skip auto-slicing each outlier")
    sp.add_argument("--fail-on-outlier", action="store_true",
                    help="exit nonzero when any run is flagged")
    sp.add_argument("--json", action="store_true",
                    help="print the canonical-JSON diagnosis report")
    sp.add_argument("--report-out", default=None, metavar="PATH",
                    help="also write the canonical-JSON diagnosis report here")
    sp.set_defaults(fn=_cmd_obs_diagnose)

    sp = obs_sub.add_parser(
        "check", help="gate the latest baseline record (median/MAD)"
    )
    sp.add_argument("--history", default="BENCH_history.jsonl", metavar="PATH",
                    help="baseline history written by 'figures --baseline' "
                    "(default BENCH_history.jsonl)")
    sp.add_argument("--fail-on-regression", action="store_true",
                    help="exit nonzero when any metric regressed")
    sp.add_argument("--k", type=float, default=4.0, metavar="F",
                    help="MAD multiplier in the change threshold (default 4)")
    sp.add_argument("--min-history", type=int, default=2, metavar="N",
                    help="prior records required before a series is gated "
                    "(default 2)")
    sp.add_argument("--json", action="store_true",
                    help="print the canonical-JSON report")
    sp.add_argument("--report-out", default=None, metavar="PATH",
                    help="also write the canonical-JSON check report here")
    sp.set_defaults(fn=_cmd_obs_check)

    sp = obs_sub.add_parser(
        "top", help="live operational dashboard over a running service"
    )
    sp.add_argument("--url", default="http://127.0.0.1:8080", metavar="URL",
                    help="service base URL (default http://127.0.0.1:8080)")
    sp.add_argument("--interval", type=float, default=2.0, metavar="SEC",
                    help="seconds between polls (default 2)")
    sp.add_argument("--iterations", type=int, default=0, metavar="N",
                    help="stop after N frames (default 0 = run until ^C)")
    sp.add_argument("--once", action="store_true",
                    help="print a single frame and exit")
    sp.set_defaults(fn=_cmd_obs_top)

    sp = obs_sub.add_parser(
        "reqtrace",
        help="dump/export one service request trace (or the slowest)",
    )
    sp.add_argument("trace_id", metavar="TRACE_ID",
                    help="32-hex trace id, or the literal 'slowest'")
    sp.add_argument("--url", default="http://127.0.0.1:8080", metavar="URL",
                    help="service base URL (default http://127.0.0.1:8080)")
    sp.add_argument("--route", default=None, metavar="ROUTE",
                    help="with 'slowest': restrict to one route "
                    "(ingest/query/runs/dfg/...)")
    sp.add_argument("--json", action="store_true",
                    help="print the canonical-JSON trace report")
    sp.add_argument("--flame", default=None, metavar="PATH",
                    help="write collapsed-stack flamegraph lines here")
    sp.add_argument("--perfetto", default=None, metavar="PATH",
                    help="write the validated Chrome/Perfetto trace here")
    sp.set_defaults(fn=_cmd_obs_reqtrace)

    p = sub.add_parser(
        "summarize", help="call summary of a trace file or trace-store dir"
    )
    p.add_argument("trace", help="trace file, or a TraceBank directory")
    p.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="parallel shard scans for store-backed summaries (default 1)",
    )
    p.set_defaults(fn=_cmd_summarize)

    p = sub.add_parser("convert", help="convert text <-> binary trace formats")
    p.add_argument("input")
    p.add_argument("output", help=".bin/.rtb => binary, anything else => text")
    p.set_defaults(fn=_cmd_convert)

    p = sub.add_parser("anonymize", help="anonymize a trace for release")
    p.add_argument("input")
    p.add_argument("output")
    p.add_argument("--mode", choices=("randomize", "encrypt"), default="randomize")
    p.add_argument("--key", help="hex key for encrypt mode (32 hex chars)")
    p.add_argument(
        "--fields", nargs="*", choices=sorted(ANONYMIZABLE_FIELDS), default=None
    )
    p.set_defaults(fn=_cmd_anonymize)

    p = sub.add_parser(
        "store", help="the TraceBank trace archive (ingest/ls/query/dfg/verify/gc)"
    )
    store_sub = p.add_subparsers(dest="store_command", required=True)

    def add_store_root(sp: argparse.ArgumentParser) -> None:
        sp.add_argument(
            "--store",
            default=".repro-store",
            metavar="DIR",
            help="archive directory (default .repro-store)",
        )

    def add_store_filters(sp: argparse.ArgumentParser) -> None:
        sp.add_argument("--ranks", nargs="*", type=int, default=None, metavar="R",
                        help="only these segment ranks")
        sp.add_argument("--ops", nargs="*", default=None, metavar="NAME",
                        help="only these function names")
        sp.add_argument("--layers", nargs="*", default=None, metavar="LAYER",
                        help="only these capture layers (syscall libcall vfs net)")
        sp.add_argument("--path-glob", default=None, metavar="GLOB",
                        help="only events whose path matches this fnmatch glob")
        sp.add_argument("--since", type=float, default=None, metavar="T",
                        help="only events starting at or after T (sim seconds)")
        sp.add_argument("--until", type=float, default=None, metavar="T",
                        help="only events starting before T (sim seconds)")
        sp.add_argument("--where", nargs="*", default=None, metavar="K=V",
                        help="only runs whose manifest metadata matches "
                        "(dotted keys, string compare)")
        sp.add_argument("--runs", nargs="*", default=None, metavar="PREFIX",
                        help="only runs whose id starts with one of these")
        sp.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="parallel shard scans (default 1; output is "
                        "byte-identical for any N)")

    sp = store_sub.add_parser("ingest", help="archive trace file(s) as one run")
    add_store_root(sp)
    sp.add_argument("traces", nargs="+", help="trace files (text or binary)")
    sp.add_argument("--meta", nargs="*", default=None, metavar="K=V",
                    help="extra run metadata (queryable via --where)")
    sp.add_argument("--codec", choices=("v1", "v2"), default="v1",
                    help="segment codec: v1 row-major, v2 columnar "
                    "(fast projected scans); default v1")
    sp.set_defaults(fn=_cmd_store_ingest)

    sp = store_sub.add_parser("ls", help="list archived runs + archive stats")
    add_store_root(sp)
    sp.set_defaults(fn=_cmd_store_ls)

    sp = store_sub.add_parser("query", help="filtered aggregate over the archive")
    add_store_root(sp)
    add_store_filters(sp)
    sp.add_argument("--agg", choices=("events", "ops", "bytes", "bandwidth"),
                    default="ops", help="aggregate to compute (default ops)")
    sp.add_argument("--window", type=float, default=0.05, metavar="SEC",
                    help="bandwidth bucket width in sim seconds (default 0.05)")
    sp.add_argument("--limit", type=int, default=None, metavar="N",
                    help="truncate the events aggregate after N rows")
    sp.add_argument("--json", action="store_true",
                    help="print the canonical-JSON report (default for "
                    "non-ops aggregates)")
    sp.set_defaults(fn=_cmd_store_query)

    sp = store_sub.add_parser(
        "dfg", help="directly-follows graph over archived events"
    )
    add_store_root(sp)
    add_store_filters(sp)
    sp.add_argument("--dot", action="store_true", help="emit Graphviz DOT")
    sp.add_argument("--json", action="store_true",
                    help="print the canonical-JSON report")
    sp.set_defaults(fn=_cmd_store_dfg)

    sp = store_sub.add_parser("verify", help="end-to-end archive integrity check")
    add_store_root(sp)
    sp.add_argument("--jobs", type=int, default=1, metavar="N",
                    help="parallel segment checks (default 1)")
    sp.set_defaults(fn=_cmd_store_verify)

    sp = store_sub.add_parser("gc", help="remove unreferenced segment files")
    add_store_root(sp)
    sp.add_argument("--dry-run", action="store_true",
                    help="report what would be removed without deleting")
    sp.add_argument("--ttl-seconds", type=float, default=3600.0,
                    help="grace period for in-flight tmp files and fresh "
                         "unreferenced segments (a concurrent ingest may "
                         "not have landed its manifest yet); 0 reclaims "
                         "immediately (default: 3600)")
    sp.set_defaults(fn=_cmd_store_gc)

    p = sub.add_parser(
        "service",
        help="TraceBank as a service (serve/ingest/query/loadgen)",
    )
    service_sub = p.add_subparsers(dest="service_command", required=True)

    def add_service_url(sp: argparse.ArgumentParser) -> None:
        sp.add_argument("--url", default="http://127.0.0.1:8080",
                        metavar="URL",
                        help="service base URL (default http://127.0.0.1:8080)")

    sp = service_sub.add_parser(
        "serve", help="boot the multi-tenant HTTP API over a store root"
    )
    sp.add_argument("--store", default=".repro-store", metavar="DIR",
                    help="service store root (default .repro-store)")
    sp.add_argument("--host", default="127.0.0.1")
    sp.add_argument("--port", type=int, default=8080,
                    help="listen port (0 picks a free one; default 8080)")
    sp.add_argument("--queue-capacity", type=int, default=256, metavar="N",
                    help="max in-flight ingest entries before 429 "
                    "(default 256)")
    sp.add_argument("--max-body-bytes", type=int, default=32 << 20,
                    metavar="N", help="largest accepted upload (default 32MiB)")
    sp.add_argument("--jobs", type=int, default=1, metavar="N",
                    help="parallel shard scans per query (default 1)")
    sp.add_argument("--workers", type=int, default=2, metavar="N",
                    help="concurrent ingest commit workers (default 2)")
    sp.add_argument("--access-log", default=None, metavar="PATH",
                    help="write one canonical JSONL access-log line per "
                    "request here")
    sp.add_argument("--trace-ring", type=int, default=512, metavar="N",
                    help="finished request traces kept in the in-memory "
                    "ring (default 512)")
    sp.add_argument("--slowest-per-route", type=int, default=8, metavar="N",
                    help="slowest traces retained per route past ring "
                    "eviction (default 8)")
    sp.set_defaults(fn=_cmd_service_serve)

    sp = service_sub.add_parser(
        "ingest", help="upload trace file(s) into a tenant namespace"
    )
    add_service_url(sp)
    sp.add_argument("tenant", help="tenant namespace name")
    sp.add_argument("traces", nargs="+", help="trace files (text or binary)")
    sp.add_argument("--meta", nargs="*", default=None, metavar="K=V",
                    help="extra run metadata (queryable via --where)")
    sp.set_defaults(fn=_cmd_service_ingest)

    sp = service_sub.add_parser(
        "query",
        help="query a tenant namespace (byte-identical to 'store query "
        "--json' over the same runs)",
    )
    add_service_url(sp)
    sp.add_argument("tenant", help="tenant namespace name")
    add_store_filters(sp)
    sp.add_argument("--agg", choices=("events", "ops", "bytes", "bandwidth"),
                    default="ops", help="aggregate to compute (default ops)")
    sp.add_argument("--window", type=float, default=0.05, metavar="SEC",
                    help="bandwidth bucket width in sim seconds (default 0.05)")
    sp.add_argument("--limit", type=int, default=None, metavar="N",
                    help="truncate the events aggregate after N rows")
    sp.set_defaults(fn=_cmd_service_query)

    sp = service_sub.add_parser(
        "loadgen",
        help="deterministic multi-client load test against a live server",
    )
    add_service_url(sp)
    sp.add_argument("--clients", type=int, default=100, metavar="N",
                    help="concurrent simulated clients (default 100)")
    sp.add_argument("--requests", type=int, default=10, metavar="N",
                    help="requests per client (default 10)")
    sp.add_argument("--tenants", type=int, default=4, metavar="N",
                    help="tenant namespaces in the mix (default 4)")
    sp.add_argument("--payloads", type=int, default=16, metavar="N",
                    help="distinct trace payloads dealt to ingests — "
                    "smaller pool = more dedup (default 16)")
    sp.add_argument("--payload-events", type=int, default=64, metavar="N",
                    help="events per generated trace payload (default 64)")
    sp.add_argument("--ingest-fraction", type=float, default=0.5, metavar="F",
                    help="fraction of requests that are ingests (default 0.5)")
    sp.add_argument("--seed", type=int, default=7,
                    help="plan RNG seed (default 7)")
    sp.add_argument("--out", default=None, metavar="PATH",
                    help="write the canonical-JSON bench report here "
                    "(e.g. BENCH_service.json)")
    sp.add_argument("--baseline", default=None, metavar="PATH",
                    help="append service_req_per_sec + service_p99_ms to "
                    "this BENCH_history.jsonl for 'repro obs check'")
    sp.add_argument("--baseline-label", default=None, metavar="TEXT",
                    help="free-form label stored with the baseline record")
    sp.set_defaults(fn=_cmd_service_loadgen)

    p = sub.add_parser(
        "zoo",
        help="workload zoo: modern I/O scenarios + trace-driven replay",
    )
    zoo_sub = p.add_subparsers(dest="zoo_command", required=True)

    sp = zoo_sub.add_parser("ls", help="list registered scenarios")
    sp.set_defaults(fn=_cmd_zoo_ls)

    sp = zoo_sub.add_parser(
        "describe", help="one scenario's parameters and I/O signature"
    )
    sp.add_argument("scenario", help="scenario name (see 'zoo ls')")
    sp.add_argument("--json", action="store_true",
                    help="emit the canonical-JSON description")
    sp.set_defaults(fn=_cmd_zoo_describe)

    def add_zoo_run_flags(sp: argparse.ArgumentParser) -> None:
        add_sweep_flags(sp)
        sp.add_argument("--smoke", action="store_true",
                        help="CI-speed parameter scale")
        sp.add_argument("--seed", type=int, default=0,
                        help="testbed + workload seed (default 0)")
        sp.add_argument("--framework", default=None, metavar="NAME",
                        help="tracing framework override "
                        "(default: each scenario's own, lanl-trace)")
        sp.add_argument("--replay-check", action="store_true",
                        help="replay each archived scenario from its run id "
                        "and require an exact fidelity report "
                        "(needs --store; nonzero exit on drift)")
        sp.add_argument("--report-out", default=None, metavar="PATH",
                        help="write the canonical-JSON zoo report here")
        sp.add_argument("--bench-out", default=None, metavar="PATH",
                        help="write BENCH_zoo.json-style gate points here")
        sp.add_argument("--baseline", nargs="?", const="BENCH_history.jsonl",
                        default=None, metavar="PATH",
                        help="append the zoo gate metrics to the baseline "
                        "history ('repro obs check' gates against it)")
        sp.add_argument("--baseline-label", default=None, metavar="TEXT",
                        help="free-form label stored on the --baseline record")

    sp = zoo_sub.add_parser("run", help="run one scenario through the harness")
    sp.add_argument("scenario", help="scenario name (see 'zoo ls')")
    add_zoo_run_flags(sp)
    sp.set_defaults(fn=_cmd_zoo_run)

    sp = zoo_sub.add_parser(
        "matrix", help="run every scenario (or a subset) as one sweep"
    )
    sp.add_argument("--scenarios", nargs="*", default=None, metavar="NAME",
                    help="scenario subset (default: all registered)")
    add_zoo_run_flags(sp)
    sp.set_defaults(fn=_cmd_zoo_matrix)

    sp = zoo_sub.add_parser(
        "replay",
        help="replay a real or archived trace on a simulated cluster",
    )
    sp.add_argument("sources", nargs="+", metavar="SOURCE",
                    help="TraceBank run-id prefix, strace capture, or "
                    "library trace file(s) (one rank per file)")
    sp.add_argument("--store", default=".repro-store", metavar="DIR",
                    help="TraceBank to resolve run-id sources against "
                    "(default .repro-store)")
    sp.add_argument("--timing", choices=("afap", "preserve"), default="afap",
                    help="timing policy: as-fast-as-possible (op-schedule "
                    "replay, default) or inter-arrival-preserving "
                    "(the paper's end-to-end comparison)")
    sp.add_argument("--layer", choices=("auto", "syscall", "libcall", "vfs"),
                    default="auto",
                    help="capture layer to script from (default auto)")
    sp.add_argument("--seed", type=int, default=0,
                    help="replay testbed seed (default 0)")
    sp.add_argument("--no-sync", action="store_true",
                    help="free-run ranks instead of honoring recorded "
                    "synchronization points")
    sp.add_argument("--per-event-overhead", type=float, default=0.0,
                    metavar="SEC",
                    help="deperturbation: tracer cost subtracted per event "
                    "from think times (default 0)")
    sp.add_argument("--remap-root", default=None, metavar="DIR",
                    help="re-root scripted paths under a simulated mount "
                    "(default: /pfs/replay for strace sources, none "
                    "otherwise)")
    sp.add_argument("--require-exact", action="store_true",
                    help="exit nonzero unless the fidelity report is exact")
    sp.add_argument("--report-out", default=None, metavar="PATH",
                    help="write the canonical-JSON fidelity report here")
    sp.set_defaults(fn=_cmd_zoo_replay)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
