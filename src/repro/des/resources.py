"""Contention primitives: FIFO resources and message stores.

:class:`Resource` models a service point with fixed concurrency (a disk, a
file server, a network link's token): processes acquire, hold for however
long their service takes, and release.  FIFO ordering keeps simulations
deterministic and fair, matching the queueing behaviour of real I/O stacks
closely enough for the paper's overhead phenomena.

:class:`Store` is an unbounded FIFO channel used for message passing (MPI
point-to-point delivery, RPC request queues).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Generator, Optional

from repro.des.events import Completion
from repro.errors import SimulationError

__all__ = ["Resource", "Store"]


class Resource:
    """A FIFO server pool with ``capacity`` concurrent slots.

    Typical use inside a process body::

        yield res.acquire()
        try:
            yield service_time
        finally:
            res.release()

    or equivalently ``yield from res.serve(service_time)``.
    """

    def __init__(self, sim: Any, capacity: int = 1, name: str = "resource"):
        if capacity < 1:
            raise SimulationError("resource capacity must be >= 1")
        self._sim = sim
        self.capacity = capacity
        self.name = name
        # Formatted once: acquire() runs per simulated I/O, and a per-call
        # "%s" format shows up in profiles.
        self._acquire_name = "acquire:%s" % name
        self._in_use = 0
        self._waiters: deque[Completion] = deque()
        # Cumulative busy time integral, for utilization reporting.
        self._busy_time = 0.0
        self._last_change = 0.0
        self._total_acquires = 0

    # -- acquisition --------------------------------------------------------

    def acquire(self) -> Completion:
        """Return a completion that settles when a slot is granted."""
        comp = Completion(self._sim, name=self._acquire_name)
        if self._in_use < self.capacity:
            self._grant(comp)
        else:
            self._waiters.append(comp)
        return comp

    def release(self) -> None:
        """Give back one slot; the oldest waiter (if any) is granted next."""
        if self._in_use <= 0:
            raise SimulationError("release of %r with no slot held" % self.name)
        self._account()
        self._in_use -= 1
        if self._waiters:
            self._grant(self._waiters.popleft())

    def _grant(self, comp: Completion) -> None:
        self._account()
        self._in_use += 1
        self._total_acquires += 1
        comp.succeed(self)

    def _account(self) -> None:
        now = self._sim.now
        self._busy_time += self._in_use * (now - self._last_change)
        self._last_change = now

    def serve(self, service_time: float) -> Generator[Any, Any, None]:
        """Sub-activity: acquire, hold for ``service_time``, release.

        Use with ``yield from``.
        """
        yield self.acquire()
        try:
            yield service_time
        finally:
            self.release()

    # -- introspection --------------------------------------------------------

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    @property
    def total_acquires(self) -> int:
        return self._total_acquires

    def utilization(self) -> float:
        """Mean busy fraction over [0, now] (0 if no time has passed)."""
        now = self._sim.now
        self._account()
        if now <= 0:
            return 0.0
        return self._busy_time / (now * self.capacity)


class Store:
    """Unbounded FIFO channel of items between processes.

    ``put`` never blocks; ``get`` returns a completion settling when an item
    is available.  Items are delivered in put order; pending getters are
    served in get order.
    """

    def __init__(self, sim: Any, name: str = "store"):
        self._sim = sim
        self.name = name
        self._get_name = "get:%s" % name
        self._items: deque[Any] = deque()
        self._getters: deque[Completion] = deque()

    def put(self, item: Any) -> None:
        """Deposit an item, waking the oldest pending getter if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Completion:
        """Return a completion that settles with the next item."""
        comp = Completion(self._sim, name=self._get_name)
        if self._items:
            comp.succeed(self._items.popleft())
        else:
            self._getters.append(comp)
        return comp

    def try_get(self) -> Optional[Any]:
        """Non-blocking get: the next item, or None if empty."""
        if self._items:
            return self._items.popleft()
        return None

    def __len__(self) -> int:
        return len(self._items)
