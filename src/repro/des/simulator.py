"""The simulation run loop.

A :class:`Simulator` owns virtual time (seconds, starting at 0.0), the
event queue, and the set of live processes.  ``run()`` drains the queue;
if it drains while non-daemon processes are still blocked, that is a
deadlock in the simulated system and raises
:class:`~repro.errors.DeadlockError` with the culprits' names — silent
hangs are the worst failure mode of a simulated cluster, so they are loud
here.

Two run loops are provided.  :meth:`Simulator.run` validates every event
against backwards time travel; :meth:`Simulator.run_fast` performs that
check only for the first ``check_first`` events and then drops it from
the hot loop.  Both dispatch exactly the same events in exactly the same
order — the fast loop changes per-event overhead, never history — so
``events_executed`` fingerprints are identical between them.
"""

from __future__ import annotations

from heapq import heappop
from typing import Any, Callable, Generator, Optional

from repro.des.events import Completion, Timeout
from repro.des.process import Process
from repro.des.queue import EventQueue
from repro.des.rand import RandomStreams
from repro.errors import DeadlockError, SimTimeError

__all__ = ["Simulator"]


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Root seed for all randomness (see :class:`~repro.des.rand.RandomStreams`).
        Two simulators with the same seed and the same spawn sequence produce
        identical histories.
    """

    __slots__ = ("_now", "_queue", "_live", "random", "seed", "_events_executed")

    def __init__(self, seed: int = 0):
        self._now = 0.0
        self._queue = EventQueue()
        self._live: dict[int, Process] = {}
        self.random = RandomStreams(seed)
        self.seed = seed
        self._events_executed = 0

    # -- time & scheduling --------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Total kernel events dispatched so far (a determinism fingerprint)."""
        return self._events_executed

    @property
    def pending_events(self) -> int:
        """Number of scheduled events not yet dispatched."""
        return len(self._queue)

    @property
    def is_idle(self) -> bool:
        """True when no events remain to dispatch (a ``run()`` would return
        immediately, or raise if non-daemon processes are still blocked)."""
        return not self._queue

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> None:
        """Run ``callback(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimTimeError("cannot schedule into the past (delay=%r)" % delay)
        self._queue.push(self._now + delay, callback, args)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Convenience constructor for the Timeout command."""
        return Timeout(delay, value)

    def completion(self, name: str = "") -> Completion:
        """Create a pending completion bound to this simulator."""
        return Completion(self, name=name)

    # -- processes ------------------------------------------------------------

    def spawn(
        self,
        gen: Generator[Any, Any, Any],
        name: str = "process",
        daemon: bool = False,
    ) -> Process:
        """Start a new simulated process from generator ``gen``.

        The process takes its first step at the current simulated instant
        (not synchronously inside this call).
        """
        proc = Process(self, gen, name=name, daemon=daemon)
        self._live[id(proc)] = proc
        proc._start()
        return proc

    def _process_finished(self, proc: Process) -> None:
        self._live.pop(id(proc), None)

    @property
    def live_processes(self) -> list[Process]:
        """Processes that have been spawned and not yet finished."""
        return list(self._live.values())

    # -- run loop -------------------------------------------------------------

    def _raise_if_deadlocked(self) -> None:
        """Queue is drained: blocked non-daemon processes mean a deadlock."""
        if any(not p.daemon for p in self._live.values()):
            details = [
                "%s (waiting on %s)" % (p.name, p.waiting_on or "nothing?")
                for p in self._live.values()
                if not p.daemon
            ]
            raise DeadlockError(details)

    def run(self, until: Optional[float] = None) -> float:
        """Execute events until the queue drains (or simulated ``until``).

        Returns the final simulated time.  Raises
        :class:`~repro.errors.DeadlockError` if the queue drains while
        non-daemon processes remain blocked.  Stopping at ``until`` leaves
        later events queued (see :attr:`pending_events`); a subsequent
        ``run()`` resumes from them.
        """
        # Hot loop: the queue's raw heap and heappop are hoisted to locals
        # so each event costs two fewer attribute lookups.
        heap = self._queue._heap
        pop = heappop
        executed = 0
        try:
            while heap:
                if until is not None and heap[0][0] > until:
                    self._now = until
                    return until
                t, _seq, callback, args = pop(heap)
                if t < self._now:
                    raise SimTimeError(
                        "event queue went backwards: %r < %r" % (t, self._now)
                    )
                self._now = t
                executed += 1
                callback(*args)
        finally:
            self._events_executed += executed
        self._raise_if_deadlocked()
        return self._now

    def run_fast(self, until: Optional[float] = None, check_first: int = 512) -> float:
        """Like :meth:`run`, with the backwards-time check dropped after the
        first ``check_first`` events.

        The check is a pure sanity assertion — it never alters dispatch
        order — so this loop produces byte-identical histories and
        ``events_executed`` fingerprints while shaving a comparison and a
        branch off every event past the warm-up window.  Scheduling bugs
        that push events into the past are still caught during the window
        (and by :meth:`run`, which the test suite exercises throughout).
        """
        heap = self._queue._heap
        pop = heappop
        executed = 0
        try:
            while heap:
                if until is not None and heap[0][0] > until:
                    self._now = until
                    return until
                t, _seq, callback, args = pop(heap)
                if executed < check_first and t < self._now:
                    raise SimTimeError(
                        "event queue went backwards: %r < %r" % (t, self._now)
                    )
                self._now = t
                executed += 1
                callback(*args)
        finally:
            self._events_executed += executed
        self._raise_if_deadlocked()
        return self._now

    def run_process(self, gen: Generator[Any, Any, Any], name: str = "main") -> Any:
        """Spawn ``gen``, run to completion, and return its result.

        The common entry point for whole-simulation drivers: raises the
        process's exception if it failed.
        """
        proc = self.spawn(gen, name=name)
        self.run()
        return proc.completion.value
