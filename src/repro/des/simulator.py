"""The simulation run loop.

A :class:`Simulator` owns virtual time (seconds, starting at 0.0), the
event queue, and the set of live processes.  ``run()`` drains the queue;
if it drains while non-daemon processes are still blocked, that is a
deadlock in the simulated system and raises
:class:`~repro.errors.DeadlockError` with the culprits' names, every
blocked process's wait reason, and (when telemetry is on) the last
dispatched events — silent hangs are the worst failure mode of a
simulated cluster, so they are loud here.

Two run loops are provided, both draining the calendar-bucket queue
(:mod:`repro.des.queue`) one same-timestamp **batch** at a time: the
heap is touched once per distinct simulated instant, and every event
sharing that instant dispatches from a flat list — zero-delay cascades
(completion settling, process starts) never re-enter heap discipline.
:meth:`Simulator.run` validates every batch against backwards time
travel; :meth:`Simulator.run_fast` performs that check only for the
first ``check_first`` events and then drops it from the hot loop.  Both
dispatch exactly the same events in exactly the same order — batching
changes per-event overhead, never history — so ``events_executed``
fingerprints are identical between them (and with the pre-columnar
one-heap-entry-per-event kernel).

When a telemetry session (:mod:`repro.obs.tracepoints`) is active, both
entry points route to a third loop, :meth:`Simulator._run_observed`,
which additionally feeds the dispatched-event ring buffer and samples
queue depth.  The selection happens once per ``run()`` call, so the
disabled-telemetry hot loops are byte-for-byte the uninstrumented ones —
telemetry off costs nothing per event.

Every loop also accumulates host wall-clock time, exposed as
:attr:`Simulator.wall_seconds`, :attr:`Simulator.events_per_sec` and
:attr:`Simulator.wall_time_per_sim_second` so benchmarks stop re-deriving
those rates ad hoc.  (Wall time is *host* time: it never feeds telemetry
snapshots, which must stay deterministic.)
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Callable, Generator, Optional

from repro.des.events import Completion, Timeout
from repro.des.process import Process
from repro.des.queue import EventQueue
from repro.des.rand import RandomStreams
from repro.errors import DeadlockError, SimTimeError
from repro.obs.tracepoints import STATE as _TELEMETRY

__all__ = ["Simulator"]


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Root seed for all randomness (see :class:`~repro.des.rand.RandomStreams`).
        Two simulators with the same seed and the same spawn sequence produce
        identical histories.
    """

    __slots__ = (
        "_now",
        "_queue",
        "_live",
        "random",
        "seed",
        "_events_executed",
        "_wall_seconds",
        "fault_plane",
    )

    def __init__(self, seed: int = 0):
        self._now = 0.0
        self._queue = EventQueue()
        self._live: dict[int, Process] = {}
        self.random = RandomStreams(seed)
        self.seed = seed
        self._events_executed = 0
        self._wall_seconds = 0.0
        # Set by repro.faults.plane.FaultPlane.install(); subsystems consult
        # it with getattr(sim, "fault_plane", None)-style gates so a plain
        # simulator pays nothing for the fault plane's existence.
        self.fault_plane = None

    # -- time & scheduling --------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Total kernel events dispatched so far (a determinism fingerprint)."""
        return self._events_executed

    @property
    def pending_events(self) -> int:
        """Number of scheduled events not yet dispatched."""
        return len(self._queue)

    @property
    def is_idle(self) -> bool:
        """True when no events remain to dispatch (a ``run()`` would return
        immediately, or raise if non-daemon processes are still blocked)."""
        return not self._queue

    # -- host-time rates ------------------------------------------------------

    @property
    def wall_seconds(self) -> float:
        """Cumulative host wall-clock spent inside this simulator's run loops."""
        return self._wall_seconds

    @property
    def events_per_sec(self) -> float:
        """Dispatch rate: kernel events per host second (0 before any run).

        The denominator is clamped at 1 ns: a sub-resolution run (events
        dispatched, but ``perf_counter`` advanced by ~0 on a coarse
        timer) reports a large finite rate rather than dividing by zero
        or collapsing to 0.0 as if nothing ran.
        """
        if self._events_executed <= 0:
            return 0.0
        return self._events_executed / max(self._wall_seconds, 1e-9)

    @property
    def wall_time_per_sim_second(self) -> float:
        """Host seconds burned per simulated second (0 before time advances)."""
        if self._now <= 0:
            return 0.0
        return self._wall_seconds / self._now

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> None:
        """Run ``callback(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimTimeError("cannot schedule into the past (delay=%r)" % delay)
        self._queue.push(self._now + delay, callback, args)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Convenience constructor for the Timeout command."""
        return Timeout(delay, value)

    def completion(self, name: str = "") -> Completion:
        """Create a pending completion bound to this simulator."""
        return Completion(self, name=name)

    # -- processes ------------------------------------------------------------

    def spawn(
        self,
        gen: Generator[Any, Any, Any],
        name: str = "process",
        daemon: bool = False,
    ) -> Process:
        """Start a new simulated process from generator ``gen``.

        The process takes its first step at the current simulated instant
        (not synchronously inside this call).
        """
        proc = Process(self, gen, name=name, daemon=daemon)
        self._live[id(proc)] = proc
        proc._start()
        return proc

    def _process_finished(self, proc: Process) -> None:
        self._live.pop(id(proc), None)

    @property
    def live_processes(self) -> list[Process]:
        """Processes that have been spawned and not yet finished."""
        return list(self._live.values())

    # -- run loop -------------------------------------------------------------

    def _raise_if_deadlocked(self) -> None:
        """Queue is drained: blocked non-daemon processes mean a deadlock."""
        if any(not p.daemon for p in self._live.values()):
            culprits = [
                "%s (waiting on %s)" % (p.name, p.waiting_on or "nothing?")
                for p in self._live.values()
                if not p.daemon
            ]
            wait_reasons = [
                "%s%s (waiting on %s)"
                % (p.name, " [daemon]" if p.daemon else "", p.waiting_on or "nothing?")
                for p in self._live.values()
            ]
            col = _TELEMETRY.collector
            recent = col.format_ring() if col is not None else None
            raise DeadlockError(
                culprits, wait_reasons=wait_reasons, recent_events=recent
            )

    def run(self, until: Optional[float] = None) -> float:
        """Execute events until the queue drains (or simulated ``until``).

        Returns the final simulated time.  Raises
        :class:`~repro.errors.DeadlockError` if the queue drains while
        non-daemon processes remain blocked.  Stopping at ``until`` leaves
        later events queued (see :attr:`pending_events`); a subsequent
        ``run()`` resumes from them.
        """
        col = _TELEMETRY.collector
        if col is not None:
            return self._run_observed(until, col)
        # Hot loop: the queue's time heap and bucket table are hoisted to
        # locals, and each distinct timestamp is drained as one batch.
        queue = self._queue
        times = queue._times
        buckets = queue._buckets
        release = queue.release_bucket
        executed = 0
        t0_wall = perf_counter()
        try:
            while times:
                t = times[0]
                if until is not None and t > until:
                    self._now = until
                    return until
                if t < self._now:
                    raise SimTimeError(
                        "event queue went backwards: %r < %r" % (t, self._now)
                    )
                self._now = t
                bucket = buckets[t]
                i = bucket[0]
                try:
                    # Callbacks may append same-time events to the live
                    # bucket; re-reading len() each step drains them too.
                    # Buckets are flat [cursor, cb, args, cb, args, ...].
                    while i < len(bucket):
                        callback = bucket[i]
                        args = bucket[i + 1]
                        i += 2
                        executed += 1
                        callback(*args)
                finally:
                    release(t, bucket, i)
        finally:
            self._events_executed += executed
            self._wall_seconds += perf_counter() - t0_wall
        self._raise_if_deadlocked()
        return self._now

    def run_fast(self, until: Optional[float] = None, check_first: int = 512) -> float:
        """Like :meth:`run`, with the backwards-time check dropped after the
        first ``check_first`` events.

        The check is a pure sanity assertion — it never alters dispatch
        order — so this loop produces byte-identical histories and
        ``events_executed`` fingerprints while shaving a comparison and a
        branch off every batch past the warm-up window.  Scheduling bugs
        that push events into the past are still caught during the window
        (and by :meth:`run`, which the test suite exercises throughout).

        The ``until`` horizon is handled by :meth:`~repro.des.queue.
        EventQueue.peek_time`: the boundary batch is peeked, never popped,
        so stopping at a horizon and resuming later costs nothing — no
        pop-then-reschedule churn at the boundary.
        """
        col = _TELEMETRY.collector
        if col is not None:
            return self._run_observed(until, col)
        queue = self._queue
        times = queue._times
        buckets = queue._buckets
        release = queue.release_bucket
        peek_time = queue.peek_time
        executed = 0
        t0_wall = perf_counter()
        try:
            while times:
                if until is not None and peek_time() > until:
                    self._now = until
                    return until
                t = times[0]
                if executed < check_first and t < self._now:
                    raise SimTimeError(
                        "event queue went backwards: %r < %r" % (t, self._now)
                    )
                self._now = t
                bucket = buckets[t]
                i = bucket[0]
                try:
                    while i < len(bucket):
                        callback = bucket[i]
                        args = bucket[i + 1]
                        i += 2
                        executed += 1
                        callback(*args)
                finally:
                    release(t, bucket, i)
        finally:
            self._events_executed += executed
            self._wall_seconds += perf_counter() - t0_wall
        self._raise_if_deadlocked()
        return self._now

    def _run_observed(self, until: Optional[float], col: Any) -> float:
        """Instrumented drain used while a telemetry session is active.

        Dispatches the identical event history as :meth:`run` (the
        backwards-time check is kept on every event — observed runs trade
        speed for visibility), additionally feeding the collector's ring
        buffer and sampling queue depth.  Telemetry reads only simulated
        time, so its output is deterministic.
        """
        queue = self._queue
        pop = queue.pop
        peek_time = queue.peek_time
        ring = col.ring
        every = col.config.queue_sample_every
        executed = 0
        t0_wall = perf_counter()
        try:
            while queue._len:
                if until is not None and peek_time() > until:
                    self._now = until
                    return until
                t, callback, args = pop()
                if t < self._now:
                    raise SimTimeError(
                        "event queue went backwards: %r < %r" % (t, self._now)
                    )
                self._now = t
                executed += 1
                ring.append((t, callback, args))
                if executed % every == 0:
                    col.des_queue_depth(t, queue._len)
                callback(*args)
        finally:
            self._events_executed += executed
            self._wall_seconds += perf_counter() - t0_wall
            col.des_events(executed)
        self._raise_if_deadlocked()
        return self._now

    def run_process(self, gen: Generator[Any, Any, Any], name: str = "main") -> Any:
        """Spawn ``gen``, run to completion, and return its result.

        The common entry point for whole-simulation drivers: raises the
        process's exception if it failed.
        """
        proc = self.spawn(gen, name=name)
        self.run()
        return proc.completion.value
