"""Named, seeded random streams.

All stochastic behaviour in a simulation (disk seek jitter, clock skew
draws, anonymization bytes) must come through a named stream derived from
the simulator's root seed.  Naming the stream decouples consumers: adding a
new random draw in one subsystem does not perturb the sequence another
subsystem sees, so calibrated benchmark numbers stay stable as the code
evolves.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RandomStreams"]


class RandomStreams:
    """Factory of independent, reproducible :class:`numpy.random.Generator` s.

    Each distinct ``name`` maps to a child generator whose seed is derived
    from ``(root_seed, name)`` by hashing, so streams are stable across runs
    and independent of request order.
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        gen = self._streams.get(name)
        if gen is None:
            digest = hashlib.sha256(
                b"%d\x00%s" % (self.seed, name.encode("utf-8"))
            ).digest()
            child_seed = int.from_bytes(digest[:8], "little")
            gen = np.random.default_rng(child_seed)
            self._streams[name] = gen
        return gen

    def __contains__(self, name: str) -> bool:
        return name in self._streams
