"""Discrete-event simulation (DES) kernel.

This is the substrate on which the simulated cluster, operating system,
file systems, and MPI runtime are built.  It is a small, deterministic,
generator-coroutine kernel in the style of SimPy:

* a :class:`~repro.des.simulator.Simulator` owns virtual time and an event
  queue;
* simulated activities are plain Python generators spawned as
  :class:`~repro.des.process.Process` objects;
* processes ``yield`` commands — :class:`~repro.des.events.Timeout`,
  :class:`~repro.des.events.Completion`, :class:`~repro.des.events.AllOf` —
  and are resumed when the command is satisfied;
* contention points (disks, network links, file servers) are modelled with
  :class:`~repro.des.resources.Resource`; message passing between processes
  uses :class:`~repro.des.resources.Store`.

Determinism: given the same seed and the same spawn order, a simulation is
bit-for-bit reproducible.  All randomness must come through
:class:`~repro.des.rand.RandomStreams`.
"""

from repro.des.events import AllOf, AnyOf, Completion, Timeout
from repro.des.process import Process
from repro.des.rand import RandomStreams
from repro.des.resources import Resource, Store
from repro.des.simulator import Simulator

__all__ = [
    "AllOf",
    "AnyOf",
    "Completion",
    "Timeout",
    "Process",
    "RandomStreams",
    "Resource",
    "Store",
    "Simulator",
]
