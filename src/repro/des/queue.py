"""The simulator's time-ordered event queue.

A thin wrapper over :mod:`heapq` keyed by ``(time, sequence)``.  The
monotonically increasing sequence number makes simultaneous events fire in
insertion order, which is what makes whole simulations deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Tuple

__all__ = ["EventQueue"]


class EventQueue:
    """Min-heap of scheduled callbacks ordered by (time, insertion order)."""

    __slots__ = ("_heap", "_counter")

    def __init__(self) -> None:
        self._heap: list[Tuple[float, int, Callable[..., None], tuple]] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, time: float, callback: Callable[..., None], args: tuple = ()) -> None:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        heapq.heappush(self._heap, (time, next(self._counter), callback, args))

    def pop(self) -> Tuple[float, Callable[..., None], tuple]:
        """Remove and return the earliest ``(time, callback, args)``."""
        time, _seq, callback, args = heapq.heappop(self._heap)
        return time, callback, args

    def peek_time(self) -> float:
        """Time of the earliest scheduled event (queue must be non-empty)."""
        return self._heap[0][0]
