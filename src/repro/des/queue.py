"""The simulator's time-ordered event queue (columnar calendar buckets).

The queue is a two-level calendar structure tuned for the dispatch
patterns a discrete-event simulation actually produces:

* ``_times`` — a :mod:`heapq` min-heap of **distinct** timestamps;
* ``_buckets`` — ``time -> bucket`` where a bucket is a flat list:
  slot 0 is the drain cursor and the rest are ``callback, args``
  alternating in insertion order (columnar pairs, no per-event tuple).

Simultaneous events therefore cost one heap operation *per distinct
timestamp* instead of one per event, and **zero allocations** per queued
event: the flat bucket layout appends the callback and its pre-built
args tuple as two list slots instead of wrapping them in a fresh pair
tuple.  Settling completions, zero-delay schedules, and process starts —
the kernel's hottest edges, which all fire "now" — append to an existing
bucket in O(1) and are drained as one batch by the simulator's run loops
without re-touching the heap.

Ordering is exactly the classic ``(time, sequence)`` discipline: the
heap orders distinct times, and FIFO buckets preserve global insertion
order within a time, so histories are byte-identical with the old
one-tuple-per-event heap.  An explicit sequence counter is no longer
needed; FIFO *is* the sequence.

The in-bucket cursor (slot 0) makes partial consumption safe: ``pop``
and the simulator's batch drains advance the cursor, callbacks may
append new same-time events to the live bucket mid-drain (they fire
after every event already queued at that time, exactly as a higher
sequence number used to), and an exception mid-batch leaves the queue
consistent for a subsequent ``run()``.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Callable, Dict, List, Tuple

__all__ = ["EventQueue"]


class EventQueue:
    """Calendar queue of scheduled callbacks ordered by (time, insertion)."""

    __slots__ = ("_times", "_buckets", "_len")

    def __init__(self) -> None:
        self._times: List[float] = []  # heap of distinct timestamps
        # time -> [cursor, cb0, args0, cb1, args1, ...]; cursor starts at 1.
        self._buckets: Dict[float, list] = {}
        self._len = 0

    def __len__(self) -> int:
        return self._len

    def __bool__(self) -> bool:
        return self._len > 0

    def push(self, time: float, callback: Callable[..., None], args: tuple = ()) -> None:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        bucket = self._buckets.get(time)
        if bucket is None:
            heappush(self._times, time)
            self._buckets[time] = [1, callback, args]
        else:
            bucket.append(callback)
            bucket.append(args)
        self._len += 1

    def pop(self) -> Tuple[float, Callable[..., None], tuple]:
        """Remove and return the earliest ``(time, callback, args)``."""
        times = self._times
        t = times[0]
        bucket = self._buckets[t]
        i = bucket[0]
        callback = bucket[i]
        args = bucket[i + 1]
        i += 2
        if i == len(bucket):
            heappop(times)
            del self._buckets[t]
        else:
            bucket[0] = i
        self._len -= 1
        return t, callback, args

    def peek_time(self) -> float:
        """Time of the earliest scheduled event (queue must be non-empty)."""
        return self._times[0]

    # -- batch access (the simulator's fast drain) --------------------------

    def claim_bucket(self) -> Tuple[float, list]:
        """The earliest ``(time, bucket)`` pair, left live in the queue.

        The caller drains ``bucket`` from its cursor (slot 0) onward, two
        slots per event, and finishes with :meth:`release_bucket`.  While
        claimed, the bucket stays in ``_buckets`` so same-time pushes
        append to it and are seen by the drain — that is what makes
        zero-delay cascades free.
        """
        t = self._times[0]
        return t, self._buckets[t]

    def release_bucket(self, time: float, bucket: list, cursor: int) -> None:
        """Finish a claimed bucket: retire it, or persist partial progress.

        ``cursor`` is the next undrained slot; consumed events are
        inferred from how far it moved past the stored cursor.  The
        bucket is removed only when fully drained, so an exception thrown
        by a callback leaves a resumable queue.
        """
        self._len -= (cursor - bucket[0]) >> 1
        if cursor == len(bucket):
            heappop(self._times)
            del self._buckets[time]
        else:
            bucket[0] = cursor
