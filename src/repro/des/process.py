"""Generator-coroutine simulated processes.

A process body is a plain Python generator.  It makes progress by yielding
commands to the kernel:

``yield dt`` (a bare ``float`` or ``int``)
    suspend for ``dt`` simulated seconds — the no-allocation fast path
    the simulated OS/FS/MPI layers use on their hot paths (no
    :class:`~repro.des.events.Timeout` object, no argument-tuple
    allocation);
``yield Timeout(dt)``
    the same, carrying an optional resume value;
``yield completion``
    suspend until the :class:`~repro.des.events.Completion` settles; the
    yield expression evaluates to its value (or raises its failure);
``yield AllOf([...])`` / ``yield AnyOf([...])``
    composite waits.

Sub-activities compose with ``yield from``, so a simulated syscall is just
a generator the caller delegates to.  The generator's ``return`` value
becomes the success value of :attr:`Process.completion`, letting processes
wait on each other like threads being joined.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.des.events import AllOf, AnyOf, Completion, Timeout, _PENDING
from repro.errors import ProcessError

__all__ = ["Process"]

#: Shared resume-args tuple for valueless timeouts (bare-number yields):
#: every such resume sends None, so one tuple serves them all.
_RESUME_NONE = (None,)


class Process:
    """A running simulated activity driven by the kernel.

    Not instantiated directly — use :meth:`repro.des.simulator.Simulator.spawn`.

    Attributes
    ----------
    name:
        Diagnostic name, used in deadlock reports.
    daemon:
        Daemon processes (server loops) are allowed to be abandoned when the
        simulation ends and do not count toward deadlock detection.
    completion:
        Settles with the generator's return value when the process finishes,
        or with its exception if the body raises.
    """

    __slots__ = ("_sim", "_gen", "name", "daemon", "completion", "_waiting_on")

    def __init__(
        self,
        sim: Any,
        gen: Generator[Any, Any, Any],
        name: str = "process",
        daemon: bool = False,
    ):
        if not hasattr(gen, "send") or not hasattr(gen, "throw"):
            raise ProcessError(
                "process body must be a generator, got %r — did you forget a "
                "yield, or pass the function instead of calling it?" % (gen,)
            )
        self._sim = sim
        self._gen = gen
        self.name = name
        self.daemon = daemon
        self.completion = Completion(sim, name="proc:%s" % name)
        # Raw blocking command (Timeout/Completion), a pre-formatted string
        # for composite waits, or None when runnable.
        self._waiting_on: Any = None

    # -- state ------------------------------------------------------------

    @property
    def alive(self) -> bool:
        """True while the body has not yet returned or raised."""
        return not self.completion.done

    @property
    def waiting_on(self) -> Optional[str]:
        """Human-readable description of the current blocking command.

        Formatted lazily: the hot resume path stores the raw command and
        this property renders it only when a deadlock report (or a curious
        test) actually asks.
        """
        w = self._waiting_on
        if w is None or type(w) is str:
            return w
        if isinstance(w, (float, int)):
            return "timeout(%g)" % w
        if isinstance(w, Timeout):
            return "timeout(%g)" % w.delay
        if isinstance(w, Completion):
            return "completion(%s)" % (w.name or "?")
        return repr(w)  # pragma: no cover - no other command is stored raw

    # -- kernel driving ---------------------------------------------------

    def _start(self) -> None:
        sim = self._sim
        sim._queue.push(sim._now, self._resume_send, (None,))

    def _resume_send(self, value: Any) -> None:
        """Resume the generator with ``value`` from the settled command."""
        # Inline of ``not self.alive`` (cancelled/interrupted after
        # scheduling): this runs once per kernel event, so the two
        # property descriptor hops are worth skipping.
        completion = self.completion
        if completion._value is not _PENDING or completion._exception is not None:
            return
        try:
            command = self._gen.send(value)
        except StopIteration as stop:
            self._finish_ok(stop.value)
            return
        except BaseException as exc:
            self._finish_fail(exc)
            return
        self._handle(command)

    def _resume_throw(self, exc: BaseException) -> None:
        """Resume the generator by throwing ``exc`` at the yield point."""
        completion = self.completion
        if completion._value is not _PENDING or completion._exception is not None:
            return
        try:
            command = self._gen.throw(exc)
        except StopIteration as stop:
            self._finish_ok(stop.value)
            return
        except BaseException as raised:
            self._finish_fail(raised)
            return
        self._handle(command)

    def _handle(self, command: Any) -> None:
        """Arrange for the process to be resumed when ``command`` settles."""
        # Fast paths for the two commands that dominate every simulation.
        # The raw command is stored instead of a formatted description
        # (see ``waiting_on``), and a validated Timeout goes straight onto
        # the queue — its delay was range-checked at construction, so the
        # ``schedule()`` wrapper's re-check is redundant.  Exact-type tests
        # keep subclasses on the general isinstance path below.
        cls = command.__class__
        if cls is float or cls is int:
            # Bare-number sleep: no Timeout object, no args tuple — the
            # shared ``_RESUME_NONE`` singleton carries the None resume
            # value for every valueless timeout in the system.
            if command >= 0:
                self._waiting_on = command
                sim = self._sim
                sim._queue.push(sim._now + command, self._resume_send, _RESUME_NONE)
            else:
                exc = ProcessError(
                    "process %r yielded negative sleep %r" % (self.name, command)
                )
                self._sim.schedule(0.0, self._resume_throw, exc)
        elif cls is Timeout:
            self._waiting_on = command
            sim = self._sim
            sim._queue.push(sim._now + command.delay, self._resume_send, (command.value,))
        elif cls is Completion:
            self._waiting_on = command
            command.add_callback(self._on_completion)
        elif isinstance(command, Timeout):
            self._waiting_on = command
            self._sim.schedule(command.delay, self._resume_send, command.value)
        elif isinstance(command, Completion):
            self._waiting_on = command
            command.add_callback(self._on_completion)
        elif isinstance(command, AllOf):
            self._wait_all(command)
        elif isinstance(command, AnyOf):
            self._wait_any(command)
        else:
            exc = ProcessError(
                "process %r yielded unsupported command %r" % (self.name, command)
            )
            # Surface the bug inside the process so its completion fails too.
            self._sim.schedule(0.0, self._resume_throw, exc)

    def _on_completion(self, completion: Completion) -> None:
        if completion.exception is not None:
            self._resume_throw(completion.exception)
        else:
            self._resume_send(completion._value)

    def _wait_all(self, command: AllOf) -> None:
        self._waiting_on = "all_of(%d)" % len(command.completions)
        remaining = [len(command.completions)]
        failed = [False]
        if remaining[0] == 0:
            self._sim.schedule(0.0, self._resume_send, [])
            return

        def on_one(completion: Completion) -> None:
            if failed[0] or not self.alive:
                return
            if completion.exception is not None:
                failed[0] = True
                self._resume_throw(completion.exception)
                return
            remaining[0] -= 1
            if remaining[0] == 0:
                self._resume_send([c._value for c in command.completions])

        for c in command.completions:
            c.add_callback(on_one)

    def _wait_any(self, command: AnyOf) -> None:
        self._waiting_on = "any_of(%d)" % len(command.completions)
        settled = [False]

        def on_one(index: int, completion: Completion) -> None:
            if settled[0] or not self.alive:
                return
            settled[0] = True
            if completion.exception is not None:
                self._resume_throw(completion.exception)
            else:
                self._resume_send((index, completion._value))

        for i, c in enumerate(command.completions):
            c.add_callback(lambda comp, i=i: on_one(i, comp))

    # -- termination ------------------------------------------------------

    def _finish_ok(self, value: Any) -> None:
        self._waiting_on = None
        self._sim._process_finished(self)
        self.completion.succeed(value)

    def _finish_fail(self, exc: BaseException) -> None:
        self._waiting_on = None
        self._sim._process_finished(self)
        self.completion.fail(exc)

    def interrupt(self, exc: Optional[BaseException] = None) -> None:
        """Throw ``exc`` (default :class:`ProcessError`) into the process."""
        if exc is None:
            exc = ProcessError("process %r interrupted" % self.name)
        self._sim.schedule(0.0, self._resume_throw, exc)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "alive" if self.alive else "finished"
        return "<Process %s %s>" % (self.name, state)
