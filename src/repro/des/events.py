"""Event primitives for the DES kernel.

A :class:`Completion` is a one-shot promise living inside a simulation: it
is created pending, succeeds (or fails) exactly once, and notifies
registered callbacks at the simulated instant it settles.  Processes wait on
completions by yielding them.

:class:`Timeout` is the command a process yields to advance its own virtual
time; :class:`AllOf`/:class:`AnyOf` compose completions.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional

from repro.errors import SimulationError

__all__ = ["Completion", "Timeout", "AllOf", "AnyOf"]

_PENDING = object()


class Completion:
    """A one-shot settled-exactly-once promise bound to a simulator.

    Callbacks registered via :meth:`add_callback` run at the simulated time
    the completion settles (scheduled through the simulator, never inline,
    so settle order is deterministic and re-entrancy-safe).
    """

    __slots__ = ("_sim", "_value", "_exception", "_callbacks", "name")

    def __init__(self, sim: "Any", name: str = ""):
        self._sim = sim
        self._value: Any = _PENDING
        self._exception: Optional[BaseException] = None
        self._callbacks: list[Callable[[Completion], None]] = []
        self.name = name

    # -- state ------------------------------------------------------------

    @property
    def done(self) -> bool:
        """True once the completion has succeeded or failed."""
        return self._value is not _PENDING or self._exception is not None

    @property
    def ok(self) -> bool:
        """True if the completion succeeded (False while pending or failed)."""
        return self._value is not _PENDING and self._exception is None

    @property
    def value(self) -> Any:
        """The success value.  Raises if pending or failed."""
        if self._exception is not None:
            raise self._exception
        if self._value is _PENDING:
            raise SimulationError("completion %r is still pending" % (self.name,))
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        """The failure exception, or None."""
        return self._exception

    # -- settling ---------------------------------------------------------

    def succeed(self, value: Any = None) -> "Completion":
        """Settle successfully with ``value`` and schedule callbacks now."""
        if self.done:
            raise SimulationError("completion %r already settled" % (self.name,))
        self._value = value
        self._dispatch()
        return self

    def fail(self, exception: BaseException) -> "Completion":
        """Settle with a failure; waiters have ``exception`` thrown into them."""
        if self.done:
            raise SimulationError("completion %r already settled" % (self.name,))
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._exception = exception
        self._dispatch()
        return self

    def _dispatch(self) -> None:
        # Direct queue push: settling is the kernel's hottest edge, and the
        # zero delay needs no range check.
        callbacks, self._callbacks = self._callbacks, []
        sim = self._sim
        queue, now = sim._queue, sim._now
        for cb in callbacks:
            queue.push(now, cb, (self,))

    # -- waiting ----------------------------------------------------------

    def add_callback(self, callback: Callable[["Completion"], None]) -> None:
        """Run ``callback(self)`` at the simulated time this settles.

        If already settled, the callback is scheduled at the current instant.
        """
        if self.done:
            self._sim.schedule(0.0, callback, self)
        else:
            self._callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "pending"
        if self._exception is not None:
            state = "failed(%r)" % self._exception
        elif self._value is not _PENDING:
            state = "ok(%r)" % (self._value,)
        return "<Completion %s %s>" % (self.name or id(self), state)


class Timeout:
    """Command: suspend the yielding process for ``delay`` simulated seconds.

    ``value`` is what the process receives back when it resumes (defaults
    to None); useful for self-documenting waits.
    """

    __slots__ = ("delay", "value")

    def __init__(self, delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError("negative timeout: %r" % (delay,))
        self.delay = float(delay)
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "Timeout(%g)" % self.delay


class AllOf:
    """Command: resume when *all* the given completions settle successfully.

    The process receives the list of values (in input order).  If any
    completion fails, the first failure (in settle order) is thrown into
    the waiting process.
    """

    __slots__ = ("completions",)

    def __init__(self, completions: Iterable[Completion]):
        self.completions = list(completions)
        for c in self.completions:
            if not isinstance(c, Completion):
                raise TypeError("AllOf requires Completions, got %r" % (c,))


class AnyOf:
    """Command: resume when *any* of the given completions settles.

    The process receives a ``(index, value)`` pair identifying the first
    completion to settle.  A failure of the first settler is propagated.
    """

    __slots__ = ("completions",)

    def __init__(self, completions: Iterable[Completion]):
        self.completions = list(completions)
        if not self.completions:
            raise SimulationError("AnyOf of zero completions would never settle")
        for c in self.completions:
            if not isinstance(c, Completion):
                raise TypeError("AnyOf requires Completions, got %r" % (c,))
