"""Pseudo-application generation from trace data.

A pseudo-application is a per-rank script of I/O operations with the
*think times* (non-I/O gaps) between them, extracted from a trace bundle.
Replaying the script re-issues the same I/O with the same pacing — the
trace becomes distributable and replayable without the original
application's source, inputs, or (sensitive) data: exactly why LANL wants
replayable traces for collaboration (§1).

Two subtleties handled here, both from //TRACE's design:

* **deperturbation** — think times measured under tracing include the
  tracer's own per-event cost; the builder subtracts a caller-supplied
  estimate so the pseudo-app does not replay the tracer's overhead;
* **synchronization points** — when the source application synchronized
  (barriers, collective opens), replays must too, or ranks drift apart.
  Barrier-like events in the trace become ``sync`` ops, which the
  replayer executes as barriers *if* the dependency map says ranks are
  actually coupled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ReplayError
from repro.trace.events import EventLayer, TraceEvent
from repro.trace.records import TraceBundle

__all__ = ["ReplayOp", "RankScript", "PseudoApp", "build_pseudoapp"]

#: event name -> replay op kind
_SYSCALL_KINDS = {
    "SYS_open": "open",
    "SYS_close": "close",
    "SYS_write": "write",
    "SYS_pwrite64": "write",
    "SYS_read": "read",
    "SYS_pread64": "read",
    "SYS_fsync": "fsync",
    # Metadata ops: without them a metadata-heavy trace (create/stat/
    # unlink storms) would replay as an empty schedule.
    "SYS_stat64": "stat",
    "SYS_fstat64": "stat",
    "SYS_unlink": "unlink",
    "SYS_mkdir": "mkdir",
}
_LIBCALL_KINDS = {
    "MPI_File_open": "open",
    "MPI_File_close": "close",
    "MPI_File_write_at": "write",
    "MPI_File_iwrite_at": "write",
    "MPI_File_read_at": "read",
    "MPI_File_sync": "fsync",
}
# Tracefs-style VFS traces are replayable too — the Tracefs authors'
# stated future work ("the framework's developers report replayable trace
# generation as a focus of future work", §4.2), realized here.
_VFS_KINDS = {
    "vfs_open": "open",
    "vfs_write": "write",
    "vfs_read": "read",
    "vfs_fsync": "fsync",
}
_SYNC_LIBCALLS = {"MPI_Barrier", "MPI_Bcast", "MPI_Allreduce", "MPI_Allgather", "MPI_Gather"}


@dataclass(frozen=True)
class ReplayOp:
    """One scripted operation.

    ``think_time`` is the CPU gap *before* this op; ``kind`` is one of
    open/close/write/read/fsync/stat/unlink/mkdir/sync.
    """

    kind: str
    think_time: float
    path: Optional[str] = None
    offset: Optional[int] = None
    nbytes: Optional[int] = None

    def __post_init__(self) -> None:
        if self.think_time < 0:
            raise ReplayError("negative think time")
        if self.kind in ("write", "read") and self.nbytes is None:
            raise ReplayError("%s op needs nbytes" % self.kind)


@dataclass
class RankScript:
    """All of one rank's operations, in issue order."""

    rank: int
    ops: List[ReplayOp] = field(default_factory=list)

    @property
    def io_bytes(self) -> int:
        return sum(op.nbytes or 0 for op in self.ops if op.kind in ("write", "read"))

    @property
    def n_io_ops(self) -> int:
        return sum(1 for op in self.ops if op.kind in ("write", "read"))


@dataclass
class PseudoApp:
    """A complete replayable pseudo-application."""

    scripts: Dict[int, RankScript]
    source_framework: str = ""
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def nprocs(self) -> int:
        return len(self.scripts)

    def total_io_bytes(self) -> int:
        """Payload bytes scripted across all ranks."""
        return sum(s.io_bytes for s in self.scripts.values())


def _event_kind(event: TraceEvent, layer: EventLayer) -> Optional[str]:
    if layer is EventLayer.LIBCALL:
        if event.name in _SYNC_LIBCALLS:
            return "sync"
        return _LIBCALL_KINDS.get(event.name)
    if layer is EventLayer.VFS:
        return _VFS_KINDS.get(event.name)
    return _SYSCALL_KINDS.get(event.name)


class _FdState:
    """Compile-time descriptor table: resolves fd-only events to paths.

    Close and fsync events (and strace read/write lines) carry a file
    descriptor but no path; the open event that produced the descriptor
    carries both the path and — as its result — the fd number.  Walking
    the trace with this table turns fd-addressed events into scriptable
    path-addressed ops, and assigns sequential offsets to positional
    reads/writes that recorded none (strace sources).
    """

    def __init__(self) -> None:
        self.paths: Dict[int, str] = {}
        self.positions: Dict[int, int] = {}

    def opened(self, event: TraceEvent) -> None:
        if event.path is not None and isinstance(event.result, int) and event.result >= 0:
            self.paths[event.result] = event.path
            self.positions[event.result] = 0

    def resolve(self, event: TraceEvent) -> Optional[str]:
        if event.path is not None:
            return event.path
        if event.fd is not None:
            return self.paths.get(event.fd)
        return None

    def offset_for(self, event: TraceEvent, kind: str) -> Optional[int]:
        if event.offset is not None:
            return event.offset
        if kind not in ("read", "write") or event.fd is None:
            return None
        pos = self.positions.get(event.fd, 0)
        self.positions[event.fd] = pos + (event.nbytes or 0)
        return pos

    def closed(self, event: TraceEvent) -> None:
        if event.fd is not None:
            self.paths.pop(event.fd, None)
            self.positions.pop(event.fd, None)


def build_pseudoapp(
    bundle: TraceBundle,
    layer: EventLayer = EventLayer.LIBCALL,
    per_event_overhead: float = 0.0,
    min_think_time: float = 0.0,
) -> PseudoApp:
    """Extract a pseudo-application from a trace bundle.

    ``layer`` selects which capture level to script from (library-level
    for //TRACE-style traces; syscall-level for strace-style LANL-Trace
    raw traces — the paper's "trivial to imagine" replayer).
    ``per_event_overhead`` is subtracted from every think-time gap per
    intervening traced event (deperturbation).

    The returned app's ``metadata["unreplayable"]`` counts the events at
    the scripting layer that could not be compiled into ops (unknown
    names, fd-addressed events whose open predates the capture), per
    event name — the fidelity report surfaces them so a lossy compile is
    never mistaken for an exact one.
    """
    scripts: Dict[int, RankScript] = {}
    unreplayable: Dict[str, int] = {}
    for key in sorted(bundle.files):
        tf = bundle.files[key]
        rank = tf.rank if tf.rank is not None else key
        events = [e for e in tf.events if e.layer is layer]
        if not events and tf.events:
            # Fall back to whatever layer the bundle has (e.g. Tracefs VFS).
            events = list(tf.events)
        script = RankScript(rank=rank)
        fd_state = _FdState()
        prev_end: Optional[float] = None
        pending_gap = 0.0
        for e in tf.events:
            if prev_end is not None:
                pending_gap += max(0.0, e.timestamp - prev_end)
                pending_gap -= per_event_overhead
            prev_end = e.end_timestamp
            if e.layer is not layer and events is not tf.events:
                # Synchronization calls become sync ops regardless of the
                # scripting layer: a syscall-level script still needs to
                # know where the application barriered.
                if e.layer is EventLayer.LIBCALL and e.name in _SYNC_LIBCALLS:
                    kind: Optional[str] = "sync"
                else:
                    continue
            elif e.layer is EventLayer.LIBCALL and e.name in _SYNC_LIBCALLS:
                kind = "sync"
            else:
                kind = _event_kind(e, layer) or (
                    _event_kind(e, EventLayer.SYSCALL) if events is tf.events else None
                )
            if kind is None:
                unreplayable[e.name] = unreplayable.get(e.name, 0) + 1
                continue
            path = e.path if kind == "sync" else fd_state.resolve(e)
            if kind != "sync" and path is None:
                # fd-addressed event whose open predates the capture (or a
                # path-less metadata call): not scriptable, but counted.
                unreplayable[e.name] = unreplayable.get(e.name, 0) + 1
                continue
            offset = fd_state.offset_for(e, kind)
            think = max(min_think_time, pending_gap)
            pending_gap = 0.0
            script.ops.append(
                ReplayOp(
                    kind=kind,
                    think_time=think,
                    path=path,
                    offset=offset,
                    nbytes=e.nbytes,
                )
            )
            if kind == "open":
                fd_state.opened(e)
            elif kind == "close":
                fd_state.closed(e)
        scripts[rank] = script
    if not scripts:
        raise ReplayError("bundle has no trace files to script from")
    return PseudoApp(
        scripts=scripts,
        source_framework=str(bundle.metadata.get("framework", "")),
        metadata={
            "layer": layer.value,
            "per_event_overhead": per_event_overhead,
            "unreplayable": dict(sorted(unreplayable.items())),
        },
    )
