"""Trace replay fidelity measurement (§3.1 "Trace replay fidelity").

The paper gives two verification methods, both implemented:

* "compare the end-to-end run time of both using a utility such as the
  Linux command line time utility" — :func:`compare_end_to_end`;
* "use the I/O Tracing Framework to trace both the pseudo-application and
  the original application and compare the traces generated" —
  :func:`compare_traces`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict

from repro.trace.records import TraceBundle

__all__ = ["FidelityResult", "compare_end_to_end", "compare_traces"]


@dataclass(frozen=True)
class FidelityResult:
    """Fidelity metrics; ``error_percent`` is the paper's headline number."""

    original_elapsed: float
    replay_elapsed: float

    @property
    def error(self) -> float:
        """|T_replay - T_original| / T_original, as a fraction."""
        if self.original_elapsed <= 0:
            return 0.0
        return abs(self.replay_elapsed - self.original_elapsed) / self.original_elapsed

    @property
    def error_percent(self) -> float:
        return 100.0 * self.error


def compare_end_to_end(original_elapsed: float, replay_elapsed: float) -> FidelityResult:
    """End-to-end run-time comparison (the ``time`` utility method)."""
    return FidelityResult(
        original_elapsed=original_elapsed, replay_elapsed=replay_elapsed
    )


_WRITE_LIKE = {"SYS_write", "SYS_pwrite64", "vfs_write"}
_READ_LIKE = {"SYS_read", "SYS_pread64", "vfs_read"}


def _normalize_name(name: str) -> str:
    """Fold equivalent I/O calls into one class.

    A replayer legitimately substitutes ``pwrite`` for ``seek+write``; the
    I/O *signature* the paper cares about is direction, offset, and size —
    not the syscall spelling.
    """
    if name in _WRITE_LIKE:
        return "write"
    if name in _READ_LIKE:
        return "read"
    return name


def compare_traces(original: TraceBundle, replayed: TraceBundle) -> Dict[str, float]:
    """Trace-vs-trace comparison: I/O signature similarity metrics.

    Compares the *data-bearing system/VFS call* footprint (library-level
    duplicates of the same transfer are excluded).  Returns per-metric
    agreement in [0, 1]:

    * ``op_count_similarity`` — multiset overlap of normalized I/O ops;
    * ``byte_similarity`` — min/max ratio of payload bytes moved;
    * ``offset_coverage`` — overlap of the (offset, size) sets accessed.
    """
    from repro.trace.events import EventLayer

    def _io_events(bundle: TraceBundle):
        return [
            e
            for e in bundle.all_events()
            if e.nbytes is not None
            and e.layer in (EventLayer.SYSCALL, EventLayer.VFS)
            and _normalize_name(e.name) in ("read", "write")
        ]

    a, b = _io_events(original), _io_events(replayed)
    names_a = Counter(_normalize_name(e.name) for e in a)
    names_b = Counter(_normalize_name(e.name) for e in b)
    inter = sum((names_a & names_b).values())
    union = sum((names_a | names_b).values())
    op_count_similarity = inter / union if union else 1.0

    bytes_a = sum(e.nbytes for e in a)
    bytes_b = sum(e.nbytes for e in b)
    if bytes_a == bytes_b == 0:
        byte_similarity = 1.0
    elif min(bytes_a, bytes_b) == 0:
        byte_similarity = 0.0
    else:
        byte_similarity = min(bytes_a, bytes_b) / max(bytes_a, bytes_b)

    offs_a = {(e.offset, e.nbytes) for e in a if e.offset is not None}
    offs_b = {(e.offset, e.nbytes) for e in b if e.offset is not None}
    if not offs_a and not offs_b:
        offset_coverage = 1.0
    else:
        offset_coverage = len(offs_a & offs_b) / len(offs_a | offs_b)

    return {
        "op_count_similarity": op_count_similarity,
        "byte_similarity": byte_similarity,
        "offset_coverage": offset_coverage,
    }
