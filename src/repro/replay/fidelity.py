"""Trace replay fidelity measurement (§3.1 "Trace replay fidelity").

The paper gives two verification methods, both implemented:

* "compare the end-to-end run time of both using a utility such as the
  Linux command line time utility" — :func:`compare_end_to_end`;
* "use the I/O Tracing Framework to trace both the pseudo-application and
  the original application and compare the traces generated" —
  :func:`compare_traces`.

Beyond the paper's two scalars, the zoo's replay pipeline needs a
*per-op-class* account: a replay that writes the right bytes but drops
every stat/unlink is not faithful to a metadata storm.  Ops are split
into three classes — ``read``, ``write``, ``metadata`` (open/close/
fsync/stat/unlink/mkdir) — and :func:`fidelity_report` compares the
compiled source schedule against the executed replay class by class,
with byte and count deltas that are exact integers (no ratios that
divide by zero on an empty source trace).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.trace.records import TraceBundle

__all__ = [
    "FidelityResult",
    "OP_CLASSES",
    "classify_kind",
    "compare_end_to_end",
    "compare_profiles",
    "compare_traces",
    "fidelity_report",
    "replay_profile",
    "schedule_profile",
]

#: The fidelity account's op classes, in report order.
OP_CLASSES = ("read", "write", "metadata")

#: replay op kind -> op class (``sync`` is control flow, not an I/O op).
_KIND_CLASS = {
    "read": "read",
    "write": "write",
    "open": "metadata",
    "close": "metadata",
    "fsync": "metadata",
    "stat": "metadata",
    "unlink": "metadata",
    "mkdir": "metadata",
}


def classify_kind(kind: str) -> Optional[str]:
    """The op class of a replay op kind, or None for control ops."""
    return _KIND_CLASS.get(kind)


@dataclass(frozen=True)
class FidelityResult:
    """Fidelity metrics; ``error_percent`` is the paper's headline number."""

    original_elapsed: float
    replay_elapsed: float

    @property
    def error(self) -> float:
        """|T_replay - T_original| / T_original, as a fraction."""
        if self.original_elapsed <= 0:
            return 0.0
        return abs(self.replay_elapsed - self.original_elapsed) / self.original_elapsed

    @property
    def error_percent(self) -> float:
        return 100.0 * self.error


def compare_end_to_end(original_elapsed: float, replay_elapsed: float) -> FidelityResult:
    """End-to-end run-time comparison (the ``time`` utility method)."""
    return FidelityResult(
        original_elapsed=original_elapsed, replay_elapsed=replay_elapsed
    )


_WRITE_LIKE = {"SYS_write", "SYS_pwrite64", "vfs_write"}
_READ_LIKE = {"SYS_read", "SYS_pread64", "vfs_read"}
_METADATA_LIKE = {
    "SYS_open", "SYS_close", "SYS_fsync", "SYS_stat64", "SYS_fstat64",
    "SYS_unlink", "SYS_mkdir",
    "vfs_open", "vfs_fsync",
}


def _normalize_name(name: str) -> str:
    """Fold equivalent I/O calls into one class.

    A replayer legitimately substitutes ``pwrite`` for ``seek+write``; the
    I/O *signature* the paper cares about is direction, offset, and size —
    not the syscall spelling.
    """
    if name in _WRITE_LIKE:
        return "write"
    if name in _READ_LIKE:
        return "read"
    if name in _METADATA_LIKE:
        return "metadata"
    return name


def _empty_profile() -> Dict[str, Dict[str, int]]:
    return {cls: {"count": 0, "bytes": 0} for cls in OP_CLASSES}


def schedule_profile(app: Any) -> Dict[str, Any]:
    """Per-class op counts and issued bytes of a compiled pseudo-app.

    This is the *source side* of the fidelity comparison: what the trace
    says the application did, expressed in the replayer's own op
    vocabulary so both sides of the comparison count the same things.
    """
    classes = _empty_profile()
    kinds: Dict[str, int] = {}
    syncs = 0
    for script in app.scripts.values():
        for op in script.ops:
            if op.kind == "sync":
                syncs += 1
                continue
            kinds[op.kind] = kinds.get(op.kind, 0) + 1
            cls = _KIND_CLASS.get(op.kind)
            if cls is None:
                continue
            classes[cls]["count"] += 1
            if cls in ("read", "write"):
                classes[cls]["bytes"] += int(op.nbytes or 0)
    return {
        "classes": classes,
        "kinds": dict(sorted(kinds.items())),
        "syncs": syncs,
        "total_ops": sum(kinds.values()),
        "total_bytes": classes["read"]["bytes"] + classes["write"]["bytes"],
    }


def replay_profile(result: Any) -> Dict[str, Any]:
    """Per-class executed ops and issued bytes of a finished replay.

    ``result`` is a :class:`~repro.replay.replayer.ReplayResult`; the
    bytes here are *issued* (requested) sizes, matching what the source
    schedule scripted — transferred bytes ride along separately.
    """
    classes = _empty_profile()
    kinds = result.op_counts()
    syncs = kinds.pop("sync", 0)
    issued = result.issued_bytes()
    for kind, n in kinds.items():
        cls = _KIND_CLASS.get(kind)
        if cls is not None:
            classes[cls]["count"] += n
    classes["read"]["bytes"] = issued["read"]
    classes["write"]["bytes"] = issued["write"]
    return {
        "classes": classes,
        "kinds": dict(sorted(kinds.items())),
        "syncs": syncs,
        "skipped": result.skipped_counts(),
        "total_ops": sum(kinds.values()),
        "total_bytes": issued["read"] + issued["write"],
        "transferred_bytes": {
            "read": sum(s.bytes_read for s in result.job.results),
            "write": sum(s.bytes_written for s in result.job.results),
        },
    }


def _ratio(a: int, b: int) -> float:
    """min/max agreement in [0, 1]; two empty sides agree perfectly."""
    if a == 0 and b == 0:
        return 1.0
    if min(a, b) <= 0:
        return 0.0
    return min(a, b) / max(a, b)


def compare_profiles(
    source: Dict[str, Any], replayed: Dict[str, Any]
) -> Dict[str, Any]:
    """Per-class deltas between a source schedule and a replay.

    Deltas are integers (replay minus source) — exact, and safe for an
    empty source trace where any ratio would divide by zero; the
    ``*_similarity`` companions are min/max ratios with the two-empty
    case defined as 1.0.
    """
    per_class: Dict[str, Any] = {}
    for cls in OP_CLASSES:
        s = source["classes"][cls]
        r = replayed["classes"][cls]
        per_class[cls] = {
            "source_count": s["count"],
            "replay_count": r["count"],
            "count_delta": r["count"] - s["count"],
            "count_similarity": _ratio(s["count"], r["count"]),
            "source_bytes": s["bytes"],
            "replay_bytes": r["bytes"],
            "byte_delta": r["bytes"] - s["bytes"],
            "byte_similarity": _ratio(s["bytes"], r["bytes"]),
        }
    exact = all(
        per_class[cls]["count_delta"] == 0 and per_class[cls]["byte_delta"] == 0
        for cls in OP_CLASSES
    ) and not replayed.get("skipped")
    return {"per_class": per_class, "exact": exact}


def fidelity_report(
    app: Any,
    result: Any,
    source_label: str = "",
    original_elapsed: Optional[float] = None,
) -> Dict[str, Any]:
    """The full replay fidelity report: op mix, bytes, and timing.

    ``app`` is the compiled pseudo-application (the source schedule),
    ``result`` the :class:`~repro.replay.replayer.ReplayResult` of
    executing it.  ``original_elapsed``, when known (library traces know
    their span; strace traces their timestamp range), adds the paper's
    end-to-end timing comparison — meaningful under the ``preserve``
    timing policy, reported either way with the policy attached.

    The report is plain JSON data with no host clock anywhere, so it is
    byte-identical across reruns of the same replay.
    """
    source = schedule_profile(app)
    replayed = replay_profile(result)
    cmp = compare_profiles(source, replayed)
    unreplayable = dict(app.metadata.get("unreplayable", {}) or {})
    report: Dict[str, Any] = {
        "schema": "repro/replay/fidelity/v1",
        "source": {
            "label": source_label,
            "framework": app.source_framework,
            "layer": app.metadata.get("layer"),
            "nprocs": app.nprocs,
            "profile": source,
            "unreplayable": unreplayable,
        },
        "replay": {
            "timing": result.timing,
            "elapsed": result.elapsed,
            "bytes_replayed": result.bytes_replayed,
            "events_executed": result.events_executed,
            "profile": replayed,
        },
        "per_class": cmp["per_class"],
        # Exact means: every scheduled op executed, none skipped, issued
        # bytes match the schedule to the byte, and nothing the source
        # captured was dropped on the compile floor.
        "exact": bool(cmp["exact"] and not unreplayable),
    }
    if original_elapsed is not None:
        end_to_end = compare_end_to_end(original_elapsed, result.elapsed)
        report["end_to_end"] = {
            "original_elapsed": end_to_end.original_elapsed,
            "replay_elapsed": end_to_end.replay_elapsed,
            "error_percent": end_to_end.error_percent,
        }
    return report


def compare_traces(original: TraceBundle, replayed: TraceBundle) -> Dict[str, Any]:
    """Trace-vs-trace comparison: I/O signature similarity metrics.

    Compares the *data-bearing system/VFS call* footprint (library-level
    duplicates of the same transfer are excluded).  Returns per-metric
    agreement in [0, 1], plus a ``per_class`` breakdown of counts and
    bytes for the read/write/metadata split:

    * ``op_count_similarity`` — multiset overlap of normalized I/O ops;
    * ``byte_similarity`` — min/max ratio of payload bytes moved;
    * ``offset_coverage`` — overlap of the (offset, size) sets accessed.
    """
    from repro.trace.events import EventLayer

    def _io_events(bundle: TraceBundle):
        return [
            e
            for e in bundle.all_events()
            if e.nbytes is not None
            and e.layer in (EventLayer.SYSCALL, EventLayer.VFS)
            and _normalize_name(e.name) in ("read", "write")
        ]

    def _class_profile(bundle: TraceBundle) -> Dict[str, Dict[str, int]]:
        classes = _empty_profile()
        for e in bundle.all_events():
            if e.layer not in (EventLayer.SYSCALL, EventLayer.VFS):
                continue
            cls = _normalize_name(e.name)
            if cls not in classes:
                continue
            if cls in ("read", "write") and e.nbytes is None:
                continue
            classes[cls]["count"] += 1
            if cls in ("read", "write"):
                classes[cls]["bytes"] += int(e.nbytes)
        return classes

    a, b = _io_events(original), _io_events(replayed)
    names_a = Counter(_normalize_name(e.name) for e in a)
    names_b = Counter(_normalize_name(e.name) for e in b)
    inter = sum((names_a & names_b).values())
    union = sum((names_a | names_b).values())
    op_count_similarity = inter / union if union else 1.0

    bytes_a = sum(e.nbytes for e in a)
    bytes_b = sum(e.nbytes for e in b)
    byte_similarity = _ratio(bytes_a, bytes_b)

    offs_a = {(e.offset, e.nbytes) for e in a if e.offset is not None}
    offs_b = {(e.offset, e.nbytes) for e in b if e.offset is not None}
    if not offs_a and not offs_b:
        offset_coverage = 1.0
    else:
        offset_coverage = len(offs_a & offs_b) / len(offs_a | offs_b)

    prof_a, prof_b = _class_profile(original), _class_profile(replayed)
    per_class = {
        cls: {
            "source_count": prof_a[cls]["count"],
            "replay_count": prof_b[cls]["count"],
            "count_delta": prof_b[cls]["count"] - prof_a[cls]["count"],
            "source_bytes": prof_a[cls]["bytes"],
            "replay_bytes": prof_b[cls]["bytes"],
            "byte_delta": prof_b[cls]["bytes"] - prof_a[cls]["bytes"],
        }
        for cls in OP_CLASSES
    }

    return {
        "op_count_similarity": op_count_similarity,
        "byte_similarity": byte_similarity,
        "offset_coverage": offset_coverage,
        "per_class": per_class,
    }
