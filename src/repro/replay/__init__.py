"""Replayable traces: pseudo-application generation, replay, fidelity.

The taxonomy's "Replayable trace generation" feature (§3.1): "The I/O
Tracing Framework may optionally generate a pseudo-application from
collected trace data with the aim of reproducing the I/O signature of the
original application."  //TRACE is the framework built around this
(§2.3); the paper also notes LANL-Trace's raw traces make "a replayer
being built that reads and replays the raw trace files" trivial to
imagine — both paths are implemented here:

* :mod:`repro.replay.pseudoapp` — turn any trace bundle (from any
  framework) into per-rank replay scripts;
* :mod:`repro.replay.replayer` — execute a pseudo-application on a fresh
  simulated testbed;
* :mod:`repro.replay.fidelity` — the verification methods §3.1 describes:
  end-to-end run-time comparison and trace-vs-trace comparison.
"""

from repro.replay.pseudoapp import PseudoApp, RankScript, ReplayOp, build_pseudoapp
from repro.replay.replayer import RankReplayStats, ReplayResult, TIMING_POLICIES, replay
from repro.replay.fidelity import (
    FidelityResult,
    compare_end_to_end,
    compare_profiles,
    compare_traces,
    fidelity_report,
    replay_profile,
    schedule_profile,
)

__all__ = [
    "PseudoApp",
    "RankScript",
    "ReplayOp",
    "build_pseudoapp",
    "RankReplayStats",
    "ReplayResult",
    "TIMING_POLICIES",
    "replay",
    "FidelityResult",
    "compare_end_to_end",
    "compare_profiles",
    "compare_traces",
    "fidelity_report",
    "replay_profile",
    "schedule_profile",
]
